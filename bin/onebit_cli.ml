(* Command-line interface to the fault-injection library.

   onebit list                      -- programs and candidate counts
   onebit dump PROGRAM              -- print a program's IR
   onebit golden PROGRAM            -- fault-free run summary
   onebit campaign PROGRAM ...      -- run one campaign (-j N, --store DIR)
   onebit plan PROGRAM ...          -- run the 91-campaign plan (CSV)
   onebit experiment PROGRAM ...    -- replay one experiment verbosely
   onebit digests PROGRAM|FILE      -- per-function digests and summaries
   onebit diff-campaign OLD NEW     -- per-cell delta between two CSVs
   onebit lint PROGRAM|FILE         -- dataflow linter (exit 1 on findings)
   onebit engine status|gc          -- inspect / compact a result store
   onebit serve PROGRAM... ...      -- coordinate a campaign fleet
   onebit work --connect ADDR       -- serve shards as a fleet worker *)

open Cmdliner

let find_entry name =
  match Bench_suite.Registry.find name with
  | Some e -> e
  | None ->
      Printf.eprintf "unknown program %s; try `onebit list`\n" name;
      exit 2

let load_workload name =
  let e = find_entry name in
  Core.Workload.make ~name:e.name ~expected_output:(e.reference ()) (e.build ())

(* ---- shared arguments ---- *)

let program_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM")

let tech_conv =
  Arg.conv
    ( (fun s ->
        match Core.Technique.of_string s with
        | Some t -> Ok t
        | None -> Error (`Msg "expected `read' or `write'")),
      fun fmt t -> Format.pp_print_string fmt (Core.Technique.to_string t) )

let technique_arg =
  Arg.(
    value
    & opt tech_conv Core.Technique.Read
    & info [ "t"; "technique" ] ~docv:"TECH"
        ~doc:"Fault-injection technique: $(b,read) or $(b,write).")

let domain_conv =
  Arg.conv
    ( (fun s ->
        match Core.Domain.of_string s with
        | Some d -> Ok d
        | None -> Error (`Msg "expected `reg', `mem' or `code'")),
      fun fmt d -> Format.pp_print_string fmt (Core.Domain.to_string d) )

let domain_arg =
  Arg.(
    value
    & opt (some domain_conv) None
    & info [ "d"; "domain" ] ~docv:"DOMAIN"
        ~doc:
          "Fault domain: $(b,reg) flips a register operand (the paper's \
           model and the default), $(b,mem) flips a bit of a live memory \
           byte between dynamic instructions, $(b,code) flips a bit of a \
           stored-program instruction field.  Overrides $(b,ONEBIT_DOMAIN).")

let win_conv =
  Arg.conv
    ( (fun s ->
        match String.split_on_char ':' s with
        | [ v ] -> (
            match int_of_string_opt v with
            | Some w when w >= 0 -> Ok (Core.Win.Fixed w)
            | _ -> Error (`Msg "expected N or rnd:LO-HI"))
        | [ "rnd"; range ] -> (
            match String.split_on_char '-' range with
            | [ lo; hi ] -> (
                match (int_of_string_opt lo, int_of_string_opt hi) with
                | Some lo, Some hi when 0 <= lo && lo <= hi ->
                    Ok (Core.Win.Rnd (lo, hi))
                | _ -> Error (`Msg "expected rnd:LO-HI"))
            | _ -> Error (`Msg "expected rnd:LO-HI"))
        | _ -> Error (`Msg "expected N or rnd:LO-HI")),
      fun fmt w -> Format.pp_print_string fmt (Core.Win.to_string w) )

let win_arg =
  Arg.(
    value
    & opt win_conv (Core.Win.Fixed 0)
    & info [ "w"; "win" ] ~docv:"WIN"
        ~doc:
          "Dynamic window size between injections: a number, or \
           $(b,rnd:LO-HI) for a uniform draw per injection.")

let mbf_arg =
  Arg.(
    value & opt int 1
    & info [ "m"; "max-mbf" ] ~docv:"N"
        ~doc:"Maximum number of bit-flips per experiment (1 = single-bit).")

let n_arg =
  Arg.(
    value & opt int 1000
    & info [ "n" ] ~docv:"N" ~doc:"Number of experiments in the campaign.")

let seed_arg =
  Arg.(
    value & opt int64 20170626L
    & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed for the campaign PRNG.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for campaign execution (0 = one per core; \
           overrides $(b,ONEBIT_JOBS)).  Results are bit-identical at any \
           value.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Crash-tolerant result store directory (overrides \
           $(b,ONEBIT_STORE)): finished shards are appended durably as \
           they complete, and shards already present are not re-executed, \
           so an interrupted run resumes where it stopped and separate \
           runs reuse each other's work.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable metrics collection and write a Prometheus-style text \
           dump to $(docv) at exit ($(b,-) for stderr; overrides \
           $(b,ONEBIT_METRICS)).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable span tracing and write the spans as JSONL to $(docv) at \
           exit ($(b,-) for stderr; overrides $(b,ONEBIT_TRACE)).")

(* Flag > environment > default: layer the CLI flags over the
   environment-resolved configuration.  The environment sinks are armed
   once at startup (see the main entry point); flag-given sinks are
   added here. *)
let resolve_config ?jobs ?store ?metrics ?trace ?incremental ?coord ?lease_ttl
    ?domain ?adaptive ?ci_target () =
  let cfg =
    Core.Config.override ?jobs ?store ?metrics ?trace ?incremental ?coord
      ?lease_ttl ?domain ?adaptive ?ci_target (Core.Config.of_env ())
  in
  Obs.install_sink ?metrics ?trace ();
  cfg

let with_store store_dir f =
  match store_dir with
  | None -> f None
  | Some dir ->
      let st = Store.open_dir dir in
      Fun.protect ~finally:(fun () -> Store.close st) (fun () -> f (Some st))

(* The --domain flag layers over ONEBIT_DOMAIN, like every other knob. *)
let spec_of ?domain technique max_mbf win =
  let domain =
    match domain with
    | Some d -> d
    | None -> (Core.Config.of_env ()).Core.Config.domain
  in
  if max_mbf <= 1 then Core.Spec.single ~domain technique
  else Core.Spec.multi ~domain technique ~max_mbf ~win

(* Injection locations are domain-specific: a register number, an arena
   address, or a stored-instruction flip-site ordinal. *)
let loc_label (j : Core.Injector.injection) =
  match j.inj_domain with
  | Core.Domain.Reg -> Printf.sprintf "reg=%%%d" j.inj_loc
  | Core.Domain.Mem -> Printf.sprintf "addr=%d" j.inj_loc
  | Core.Domain.Code -> Printf.sprintf "site=%d" j.inj_loc

let incremental_arg =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:
          "Compose the campaign from cached per-function outcome profiles \
           (requires a result store; see also $(b,ONEBIT_INCREMENTAL)).  \
           Only functions whose identity digest has no valid cached \
           profile are re-injected — after editing one function, only its \
           share of the experiments re-runs — and the composed result is \
           bit-identical to a full run.  A reuse summary is printed to \
           stderr.")

let adaptive_arg =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "CI-targeted sequential sampling (see also $(b,ONEBIT_ADAPTIVE)): \
           run the campaign in rounds, stop as soon as the SDC Wilson 95% \
           CI half-width reaches the target ($(b,--ci-target)), and treat \
           $(b,--n) as the cap.  Every experiment run is the one the \
           fixed-N campaign would run, so the result is byte-identical to \
           a fixed-N campaign of the stopping N.")

let ci_target_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "ci-target" ] ~docv:"HW"
        ~doc:
          "Adaptive stopping target: the Wilson 95% CI half-width, as a \
           proportion in (0, 1), at which a cell stops sampling (overrides \
           $(b,ONEBIT_CI); default 0.02).")

(* Incremental composition needs somewhere to cache the profiles. *)
let require_incremental_store = function
  | Some st -> st
  | None ->
      Printf.eprintf
        "--incremental requires a result store; pass --store DIR or set \
         ONEBIT_STORE\n";
      exit 2

let report_incremental (s : Engine.Incremental.stats) =
  Printf.eprintf
    "incremental: reused %d experiments (%d/%d functions), skipped %d \
     experiments as provably benign (%d functions), re-ran %d experiments \
     (%d functions)\n"
    s.exps_reused s.funcs_reused s.funcs_total s.exps_skipped s.funcs_skipped
    s.exps_recomputed s.funcs_recomputed

(* ---- list ---- *)

let list_cmd =
  let run () =
    let body =
      List.map
        (fun (e : Bench_suite.Desc.t) ->
          let w = load_workload e.name in
          [
            e.name;
            e.suite;
            e.package;
            string_of_int w.golden.dyn_count;
            string_of_int w.golden.read_cands;
            string_of_int w.golden.write_cands;
          ])
        Bench_suite.Registry.all
    in
    print_string
      (Report.Table.render
         ~header:
           [ "program"; "suite"; "package"; "dyn-instrs"; "cand-read"; "cand-write" ]
         body)
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List benchmark programs and their candidate counts.")
    Term.(const run $ const ())

(* ---- dump ---- *)

let dump_cmd =
  let run program =
    let e = find_entry program in
    print_string (Ir.Pp.modl (e.build ()))
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print a program's intermediate representation.")
    Term.(const run $ program_arg)

(* ---- golden ---- *)

let golden_cmd =
  let run program =
    let w = load_workload program in
    Printf.printf "program:       %s\n" w.name;
    Printf.printf "status:        finished (output matches native reference)\n";
    Printf.printf "dyn instrs:    %d\n" w.golden.dyn_count;
    Printf.printf "read cands:    %d\n" w.golden.read_cands;
    Printf.printf "write cands:   %d\n" w.golden.write_cands;
    Printf.printf "output bytes:  %d\n" (String.length w.golden.output);
    Printf.printf "hang budget:   %d\n" w.budget
  in
  Cmd.v
    (Cmd.info "golden" ~doc:"Run the fault-free (golden) execution.")
    Term.(const run $ program_arg)

(* ---- campaign ---- *)

let campaign_cmd =
  let run program domain technique max_mbf win n seed csv jobs store_dir
      metrics trace incremental adaptive ci_target =
    let cfg =
      resolve_config ?jobs ?store:store_dir ?metrics ?trace ?domain
        ?incremental:(if incremental then Some true else None)
        ?adaptive:(if adaptive then Some true else None)
        ?ci_target ()
    in
    let w = load_workload program in
    let spec = spec_of ~domain:cfg.Core.Config.domain technique max_mbf win in
    let r =
      with_store cfg.Core.Config.store (fun store ->
          if cfg.Core.Config.adaptive then begin
            if cfg.Core.Config.incremental then begin
              Printf.eprintf
                "--adaptive and --incremental are mutually exclusive\n";
              exit 2
            end;
            let cell =
              {
                Engine.Adaptive.c_workload = w;
                c_spec = spec;
                c_cap = n;
                c_seed = seed;
              }
            in
            let results, stats =
              Engine.Adaptive.run_grid ~jobs:cfg.Core.Config.jobs ?store
                ~log:(fun line -> Printf.eprintf "%s\n%!" line)
                ~target:cfg.Core.Config.ci_target [ cell ]
            in
            let cr = List.hd results in
            Printf.eprintf
              "adaptive: closed at n=%d of cap %d (%s, half-width target \
               %g) after %d rounds; %d experiments saved, %d from store\n"
              cr.Engine.Adaptive.r_closed_at n
              (if cr.Engine.Adaptive.r_met then "CI target met"
               else "cap exhausted")
              cfg.Core.Config.ci_target stats.Engine.Adaptive.g_rounds
              stats.Engine.Adaptive.g_saved stats.Engine.Adaptive.g_from_store;
            cr.Engine.Adaptive.r_result
          end
          else if cfg.Core.Config.incremental then begin
            let store = require_incremental_store store in
            let r, stats =
              Engine.Incremental.run ~jobs:cfg.Core.Config.jobs ~store w spec
                ~n ~seed
            in
            report_incremental stats;
            r
          end
          else
            let progress = Engine.Progress.create () in
            Engine.Progress.with_reporter progress (fun () ->
                Engine.run_campaign ~jobs:cfg.Core.Config.jobs ?store
                  ~progress w spec ~n ~seed))
    in
    if csv then (
      print_endline Core.Csv.header;
      print_endline (Core.Csv.row r))
    else begin
      let ci = Core.Campaign.sdc_ci r in
      Printf.printf "campaign:   %s on %s (n=%d, seed=%Ld)\n"
        (Core.Spec.label spec) program r.n seed;
      Printf.printf "benign:     %d\n" r.benign;
      Printf.printf "detected:   %d" r.detected;
      if r.traps <> [] then
        Printf.printf "  (%s)"
          (String.concat ", "
             (List.map
                (fun (t, c) -> Printf.sprintf "%s:%d" (Vm.Trap.to_string t) c)
                r.traps));
      print_newline ();
      Printf.printf "hang:       %d\n" r.hang;
      Printf.printf "no-output:  %d\n" r.no_output;
      Printf.printf "sdc:        %d  (%.2f%% ±%.2f)\n" r.sdc
        (Core.Campaign.sdc_pct r)
        (100. *. Stats.Proportion.half_width ci);
      Printf.printf "activated:  %s\n"
        (String.concat ", "
           (List.map
              (fun (k, c) -> Printf.sprintf "%d->%d" k c)
              (Stats.Histogram.to_alist r.activation)))
    end
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit a CSV row instead of text.")
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run one fault-injection campaign.")
    Term.(
      const run $ program_arg $ domain_arg $ technique_arg $ mbf_arg $ win_arg
      $ n_arg $ seed_arg $ csv_arg $ jobs_arg $ store_arg $ metrics_arg
      $ trace_arg $ incremental_arg $ adaptive_arg $ ci_target_arg)

(* ---- plan ---- *)

let plan_cmd =
  let run program n seed both technique domain jobs store_dir metrics trace =
    let cfg =
      resolve_config ?jobs ?store:store_dir ?metrics ?trace ?domain ()
    in
    let w = load_workload program in
    let specs =
      (if both then Core.Table1.all_specs else Core.Table1.specs technique)
      |> List.map (fun (s : Core.Spec.t) ->
             { s with domain = cfg.Core.Config.domain })
    in
    with_store cfg.Core.Config.store (fun store ->
        let progress = Engine.Progress.create () in
        Engine.Progress.with_reporter progress (fun () ->
            print_endline Core.Csv.header;
            List.iter
              (fun spec ->
                let r =
                  Engine.run_campaign ~jobs:cfg.Core.Config.jobs ?store
                    ~progress w spec ~n ~seed
                in
                print_endline (Core.Csv.row r))
              specs))
  in
  let both_arg =
    Arg.(
      value & flag
      & info [ "both" ] ~doc:"Run both techniques (182 campaigns).")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Run the paper's campaign plan for one program (91 campaigns per \
          technique), emitting CSV.")
    Term.(
      const run $ program_arg $ n_arg $ seed_arg $ both_arg $ technique_arg
      $ domain_arg $ jobs_arg $ store_arg $ metrics_arg $ trace_arg)

(* ---- experiment ---- *)

let experiment_cmd =
  let run program domain technique max_mbf win index seed =
    let w = load_workload program in
    let spec = spec_of ?domain technique max_mbf win in
    let base = Prng.of_seed seed in
    let rng = Prng.split_at base index in
    (* Re-run with an inspectable injector. *)
    let candidates = Core.Workload.candidates w spec in
    let inj = Core.Injector.create ~spec ~candidates rng in
    let res = Core.Experiment.run_raw w inj in
    let outcome = Core.Outcome.classify ~golden_output:w.golden.output res in
    Printf.printf "experiment %d of %s on %s\n" index (Core.Spec.label spec)
      program;
    Printf.printf "backend:    %s\n"
      (Core.Config.backend_name (Core.Config.active_backend ()));
    Printf.printf "domain:     %s\n"
      (Core.Domain.to_string spec.Core.Spec.domain);
    Printf.printf "outcome:    %s\n" (Core.Outcome.to_string outcome);
    Printf.printf "dyn count:  %d (golden %d)\n" res.dyn_count
      w.golden.dyn_count;
    Printf.printf "activated:  %d of %d\n"
      (Core.Injector.activated inj)
      max_mbf;
    List.iteri
      (fun i (inj : Core.Injector.injection) ->
        Printf.printf "  flip %d: dyn=%d cand=%d %s slot=%d bit=%d\n" i
          inj.inj_dyn inj.inj_cand (loc_label inj) inj.inj_slot inj.inj_bit)
      (Core.Injector.injections inj)
  in
  let index_arg =
    Arg.(
      value & opt int 0
      & info [ "i"; "index" ] ~docv:"I"
          ~doc:"Experiment index within the campaign stream.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Replay a single experiment and show each injection.")
    Term.(
      const run $ program_arg $ domain_arg $ technique_arg $ mbf_arg $ win_arg
      $ index_arg $ seed_arg)

(* ---- reproduce ---- *)

let reproduce_cmd =
  let run program domain technique max_mbf win n seed index =
    if index < 0 || index >= n then begin
      Printf.eprintf "index %d out of range (campaign has n=%d experiments)\n"
        index n;
      exit 2
    end;
    let w = load_workload program in
    let spec = spec_of ?domain technique max_mbf win in
    (* The campaign's own record of experiment [index] ... *)
    let r = Core.Campaign.run ~keep_experiments:true w spec ~n ~seed in
    let stored = r.experiments.(index) in
    (* ... and an independent replay from the same (seed, index); the
       replay bypasses golden-prefix checkpointing so every instruction
       it reports was actually re-executed. *)
    let rng = Prng.split_at (Prng.of_seed seed) index in
    let candidates = Core.Workload.candidates w spec in
    let inj = Core.Injector.create ~spec ~candidates rng in
    let res = Core.Experiment.run_raw ~checkpoint:false w inj in
    let outcome = Core.Outcome.classify ~golden_output:w.golden.output res in
    Printf.printf "reproduce %d of %s on %s (n=%d, seed=%Ld)\n" index
      (Core.Spec.label spec) program n seed;
    Printf.printf "backend:    %s\n"
      (Core.Config.backend_name (Core.Config.active_backend ()));
    (* The campaign above honours ONEBIT_BATCH; the replay never does —
       [run_raw ~checkpoint:false] executes one experiment from the top,
       outside the batch scheduler, whatever the environment says. *)
    Printf.printf
      "replay:     unbatched full execution (checkpoint restore and suffix \
       batching bypassed)\n";
    Printf.printf "domain:     %s\n"
      (Core.Domain.to_string spec.Core.Spec.domain);
    Printf.printf "outcome:    %s\n" (Core.Outcome.to_string outcome);
    Printf.printf "dyn count:  %d (golden %d)\n" res.dyn_count
      w.golden.dyn_count;
    Printf.printf "activated:  %d of %d\n" (Core.Injector.activated inj)
      max_mbf;
    List.iteri
      (fun i (j : Core.Injector.injection) ->
        Printf.printf "  flip %d: dyn=%d cand=%d %s slot=%d bit=%d\n" i
          j.inj_dyn j.inj_cand (loc_label j) j.inj_slot j.inj_bit)
      (Core.Injector.injections inj);
    let injection_equal (a : Core.Injector.injection)
        (b : Core.Injector.injection) =
      Core.Domain.equal a.inj_domain b.inj_domain
      && a.inj_dyn = b.inj_dyn && a.inj_cand = b.inj_cand
      && a.inj_loc = b.inj_loc && a.inj_ty = b.inj_ty
      && a.inj_slot = b.inj_slot && a.inj_bit = b.inj_bit
      && a.inj_weight = b.inj_weight
    in
    let mismatches =
      List.filter_map
        (fun (what, ok) -> if ok then None else Some what)
        [
          (* every injection must land in the spec's fault domain *)
          ( "domain",
            List.for_all
              (fun (j : Core.Injector.injection) ->
                Core.Domain.equal j.inj_domain spec.Core.Spec.domain)
              (Core.Injector.injections inj) );
          ("outcome", stored.outcome = outcome);
          ("activated", stored.activated = Core.Injector.activated inj);
          ("dyn count", stored.dyn_count = res.dyn_count);
          ("output", String.equal stored.output res.output);
          ( "first injection",
            match (stored.first, Core.Injector.first_injection inj) with
            | None, None -> true
            | Some a, Some b -> injection_equal a b
            | _ -> false );
        ]
    in
    if mismatches = [] then
      print_endline "replay matches the stored campaign record"
    else begin
      Printf.eprintf "replay DIVERGES from the stored campaign record: %s\n"
        (String.concat ", " mismatches);
      exit 1
    end
  in
  let index_arg =
    Arg.(
      value & opt int 0
      & info [ "i"; "index" ] ~docv:"I"
          ~doc:"Experiment index within the campaign stream.")
  in
  Cmd.v
    (Cmd.info "reproduce"
       ~doc:
         "Re-run one experiment of a campaign and assert that the replay \
          matches the campaign's stored record exactly (outcome, activation \
          count, first injection, dynamic length, output) and that every \
          injection landed in the requested fault domain.  Prints which \
          execution backend, replay path and domain produced the result — \
          the replay always runs unbatched from the top, regardless of \
          ONEBIT_BATCH/ONEBIT_CHECKPOINT; exits 1 on divergence.")
    Term.(
      const run $ program_arg $ domain_arg $ technique_arg $ mbf_arg $ win_arg
      $ n_arg $ seed_arg $ index_arg)

(* ---- run-ir ---- *)

let run_ir_cmd =
  let run file domain technique max_mbf win n seed csv jobs store_dir metrics
      incremental =
    let cfg =
      resolve_config ?jobs ?store:store_dir ?metrics ?domain
        ?incremental:(if incremental then Some true else None)
        ()
    in
    let text = In_channel.with_open_text file In_channel.input_all in
    let m =
      match Ir.Parse.modl text with
      | Ok m -> m
      | Error msg ->
          Printf.eprintf "%s: %s\n" file msg;
          exit 1
    in
    let w = Core.Workload.make ~name:(Filename.basename file) m in
    if not csv then
      Printf.printf
        "golden: %d dynamic instructions, %d output bytes, %d/%d candidates \
         (read/write)\n"
        w.golden.dyn_count
        (String.length w.golden.output)
        w.golden.read_cands w.golden.write_cands;
    if n > 0 then begin
      let spec = spec_of ~domain:cfg.Core.Config.domain technique max_mbf win in
      let r =
        with_store cfg.Core.Config.store (fun store ->
            if cfg.Core.Config.incremental then begin
              let store = require_incremental_store store in
              let r, stats =
                Engine.Incremental.run ~jobs:cfg.Core.Config.jobs ~store w
                  spec ~n ~seed
              in
              report_incremental stats;
              r
            end
            else
              Engine.run_campaign ~jobs:cfg.Core.Config.jobs ?store w spec ~n
                ~seed)
      in
      if csv then begin
        print_endline Core.Csv.header;
        print_endline (Core.Csv.row r)
      end
      else begin
        Printf.printf "%s over %d experiments:\n" (Core.Spec.label spec) n;
        Printf.printf
          "  benign=%d detected=%d hang=%d no-output=%d sdc=%d (%.1f%%)\n"
          r.benign r.detected r.hang r.no_output r.sdc
          (Core.Campaign.sdc_pct r)
      end
    end
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let n_arg =
    Arg.(
      value & opt int 0
      & info [ "n" ] ~docv:"N"
          ~doc:"Also run an N-experiment campaign (0 = golden run only).")
  in
  let csv_arg =
    Arg.(
      value & flag
      & info [ "csv" ]
          ~doc:
            "Emit the campaign as a CSV row (and suppress the golden \
             summary) so runs can be compared byte-for-byte.")
  in
  Cmd.v
    (Cmd.info "run-ir"
       ~doc:
         "Parse a textual IR file (the `dump' format), run it, and \
          optionally inject faults into it.")
    Term.(
      const run $ file_arg $ domain_arg $ technique_arg $ mbf_arg $ win_arg
      $ n_arg $ seed_arg $ csv_arg $ jobs_arg $ store_arg $ metrics_arg
      $ incremental_arg)

(* ---- digests ---- *)

let digests_cmd =
  let run target =
    let name, m =
      if Sys.file_exists target then begin
        let text = In_channel.with_open_text target In_channel.input_all in
        match Ir.Parse.modl text with
        | Ok m -> (Filename.basename target, m)
        | Error msg ->
            Printf.eprintf "%s: %s\n" target msg;
            exit 2
      end
      else (target, ((find_entry target).build ()))
    in
    (match Ir.Validate.check m with
    | Ok () -> ()
    | Error es ->
        List.iter (fun e -> Printf.eprintf "%s: invalid: %s\n" name e) es;
        exit 2);
    let summaries = Dataflow.Summary.analyse m in
    let rows =
      List.map
        (fun (f : Ir.Func.t) ->
          let s = Dataflow.Summary.find summaries f.f_name in
          [
            f.f_name;
            Ir.Fingerprint.func f;
            Ir.Fingerprint.func_semantic f;
            (match s with Some s -> Dataflow.Summary.digest s | None -> "-");
            (match s with
            | Some s when Dataflow.Summary.sdc_free_single s -> "yes"
            | _ -> "no");
          ])
        m.m_funcs
    in
    print_string
      (Report.Table.render
         ~header:[ "function"; "identity"; "semantic"; "summary"; "sdc-free" ]
         rows);
    print_newline ();
    List.iter
      (fun (f : Ir.Func.t) ->
        match Dataflow.Summary.find summaries f.f_name with
        | Some s -> Printf.printf "%s: %s\n" f.f_name (Dataflow.Summary.render s)
        | None -> ())
      m.m_funcs;
    print_newline ();
    Printf.printf "module:      %s\n" (Ir.Fingerprint.modl m);
    Printf.printf "environment: %s\n" (Ir.Fingerprint.environment m)
  in
  let target_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"PROGRAM|FILE"
          ~doc:"A registry program name, or a path to a textual IR file.")
  in
  Cmd.v
    (Cmd.info "digests"
       ~doc:
         "Print each function's identity and semantic digests and its \
          static propagation summary (one line per function, plus the \
          summary hash), followed by the module and environment digests.  \
          These are the keys the incremental campaign cache validates \
          against; $(b,sdc-free) marks functions whose summary proves a \
          single-bit flip landing inside them cannot cause SDC.")
    Term.(const run $ target_arg)

(* ---- diff-campaign ---- *)

let diff_campaign_cmd =
  let run tolerance old_file new_file =
    (* A grid CSV row: the first five columns identify the campaign cell,
       the next five are the outcome counters.  The technique column
       carries the fault domain as a "mem:"/"code:" prefix (bare for the
       register domain), so the domain is part of the cell key: the same
       (workload, technique, mbf, win, n) cell in different domains never
       compares. *)
    let load file =
      let lines = In_channel.with_open_text file In_channel.input_lines in
      List.filter_map
        (fun line ->
          let line = String.trim line in
          if line = "" || line = Core.Csv.header then None
          else
            match String.split_on_char ',' line with
            | wl :: tech :: mbf :: win :: n :: (_ :: _ :: _ :: _ :: _ :: _ as rest)
              ->
                let counts =
                  List.filteri (fun i _ -> i < 5) rest
                  |> List.map (fun s ->
                         match int_of_string_opt s with
                         | Some v -> v
                         | None ->
                             Printf.eprintf "%s: malformed CSV row: %s\n" file
                               line;
                             exit 2)
                in
                let dom, tech =
                  match String.index_opt tech ':' with
                  | Some i ->
                      ( String.sub tech 0 i,
                        String.sub tech (i + 1) (String.length tech - i - 1) )
                  | None -> ("reg", tech)
                in
                Some ((wl, dom, tech, mbf, win, n), counts)
            | _ ->
                Printf.eprintf "%s: malformed CSV row: %s\n" file line;
                exit 2)
        lines
    in
    let old_rows = load old_file and new_rows = load new_file in
    let outcome_names = [ "benign"; "detected"; "hang"; "no-output"; "sdc" ] in
    let changed = ref 0 and compared = ref 0 in
    let diff_keyed cell_label judge old_rows new_rows =
      List.iter
        (fun (key, nw) ->
          match List.assoc_opt key old_rows with
          | None -> ()
          | Some od ->
              incr compared;
              let parts = judge od nw in
              if parts <> [] then begin
                incr changed;
                Printf.printf "%s: %s\n" (cell_label key)
                  (String.concat ", " parts)
              end)
        new_rows;
      let only_in tag rows others =
        List.iter
          (fun (key, _) ->
            if not (List.mem_assoc key others) then begin
              incr changed;
              Printf.printf "%s: only in %s\n" (cell_label key) tag
            end)
          rows
      in
      only_in "OLD" old_rows new_rows;
      only_in "NEW" new_rows old_rows
    in
    (match tolerance with
    | `Exact ->
        let cell_label (wl, dom, tech, mbf, win, n) =
          let tech = if dom = "reg" then tech else dom ^ ":" ^ tech in
          Printf.sprintf "%s %s m=%s w=%s n=%s" wl tech mbf win n
        in
        let judge od nw =
          List.map2
            (fun name (a, b) ->
              if b = a then None
              else Some (Printf.sprintf "%s %+d" name (b - a)))
            outcome_names (List.combine od nw)
          |> List.filter_map Fun.id
        in
        diff_keyed cell_label judge old_rows new_rows
    | `Ci ->
        (* Statistical drift detection: the cell key drops N so a
           fixed-N campaign compares against an adaptive (or any
           different-N) rerun of the same cell, and an outcome counter
           only counts as drift when the two Wilson 95% intervals are
           disjoint — sampling noise at different N is expected, a
           separated proportion is not. *)
        let rekey file rows =
          List.map
            (fun ((wl, dom, tech, mbf, win, n), counts) ->
              match int_of_string_opt n with
              | Some trials when trials > 0 ->
                  ((wl, dom, tech, mbf, win), (trials, counts))
              | _ ->
                  Printf.eprintf "%s: malformed n column for %s\n" file wl;
                  exit 2)
            rows
        in
        let old_rows = rekey old_file old_rows
        and new_rows = rekey new_file new_rows in
        let cell_label (wl, dom, tech, mbf, win) =
          let tech = if dom = "reg" then tech else dom ^ ":" ^ tech in
          Printf.sprintf "%s %s m=%s w=%s" wl tech mbf win
        in
        let disjoint (n1, k1) (n2, k2) =
          let c1 = Stats.Proportion.wilson ~successes:k1 ~trials:n1 ()
          and c2 = Stats.Proportion.wilson ~successes:k2 ~trials:n2 () in
          c1.Stats.Proportion.hi < c2.Stats.Proportion.lo
          || c2.Stats.Proportion.hi < c1.Stats.Proportion.lo
        in
        let judge (on, oc) (nn, nc) =
          List.map2
            (fun name (ok, nk) ->
              if disjoint (on, ok) (nn, nk) then
                Some
                  (Printf.sprintf "%s %d/%d vs %d/%d (disjoint CIs)" name ok
                     on nk nn)
              else None)
            outcome_names (List.combine oc nc)
          |> List.filter_map Fun.id
        in
        diff_keyed cell_label judge old_rows new_rows);
    Printf.printf "%d cells compared, %d differ\n" !compared !changed;
    if !changed > 0 then exit 1
  in
  let tolerance_arg =
    Arg.(
      value
      & opt (enum [ ("exact", `Exact); ("ci", `Ci) ]) `Exact
      & info [ "tolerance" ] ~docv:"MODE"
          ~doc:
            "$(b,exact) (default) compares counters cell by cell with N in \
             the key; $(b,ci) drops N from the key and reports a drift \
             only when an outcome's old and new Wilson 95% intervals are \
             disjoint — the mode for comparing a fixed-N baseline against \
             an adaptive rerun.")
  in
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW")
  in
  Cmd.v
    (Cmd.info "diff-campaign"
       ~doc:
         "Compare two campaign CSV files (as written by $(b,campaign \
          --csv), $(b,plan) or $(b,run-ir --csv)) cell by cell, keyed on \
          (workload, domain, technique, max_mbf, win_size, n) — the fault \
          domain rides in the technique column as a $(b,mem:)/$(b,code:) \
          prefix.  Prints each outcome-column delta and the cells present \
          in only one file; exits 1 if anything differs.  With \
          $(b,--tolerance ci), N leaves the key and only statistically \
          significant drifts (disjoint Wilson intervals) count.")
    Term.(const run $ tolerance_arg $ old_arg $ new_arg)

(* ---- lint ---- *)

let lint_cmd =
  let run target all =
    let lint_modl label m =
      match Ir.Validate.check m with
      | Error es ->
          List.iter (fun e -> Printf.printf "%s: invalid: %s\n" label e) es;
          List.length es
      | Ok () ->
          let fs = Dataflow.Lint.check m in
          List.iter
            (fun f -> Printf.printf "%s: %s\n" label (Dataflow.Lint.to_string f))
            fs;
          List.length fs
    in
    let total =
      if all then
        List.fold_left
          (fun acc (e : Bench_suite.Desc.t) -> acc + lint_modl e.name (e.build ()))
          0
          (Bench_suite.Registry.all @ Bench_suite.Registry.large)
      else
        match target with
        | None ->
            Printf.eprintf "lint: a PROGRAM argument or --all is required\n";
            exit 2
        | Some t ->
            if Sys.file_exists t then begin
              let text = In_channel.with_open_text t In_channel.input_all in
              match Ir.Parse.modl text with
              | Ok m -> lint_modl (Filename.basename t) m
              | Error msg ->
                  Printf.eprintf "%s: %s\n" t msg;
                  exit 2
            end
            else lint_modl t ((find_entry t).build ())
    in
    if total = 0 then print_endline "clean" else exit 1
  in
  let target_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"PROGRAM|FILE"
          ~doc:"A registry program name, or a path to a textual IR file.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Lint every registry program (including -large variants).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Check a program with the dataflow linter (unreachable code, dead \
          stores, unused registers, constant branches, uncalled functions, \
          call-arity mismatches).  Exits 1 if any finding is reported.")
    Term.(const run $ target_arg $ all_arg)

(* ---- harden ---- *)

let harden_cmd =
  let run program light dump coverage n seed =
    let e = find_entry program in
    let level = if light then `Light else `Full in
    let base_modl = e.build () in
    let hard_modl = Harden.Swift.apply ~level base_modl in
    if dump then print_string (Ir.Pp.modl hard_modl)
    else begin
      let expected = e.reference () in
      let base =
        Core.Workload.make ~name:program ~expected_output:expected base_modl
      in
      let hard =
        Core.Workload.make ~name:(program ^ "+swift") ~expected_output:expected
          hard_modl
      in
      Printf.printf "static overhead:  x%.2f\n"
        (Harden.Swift.static_overhead base_modl hard_modl);
      Printf.printf "dynamic overhead: x%.2f\n"
        (float_of_int hard.golden.dyn_count
        /. float_of_int base.golden.dyn_count);
      if coverage then begin
        (* SWIFT and TMR defend the register domain by construction;
           running the same variants under mem and code flips shows what
           each pass does NOT cover. *)
        let tmr =
          Core.Workload.make ~name:(program ^ "+tmr")
            ~expected_output:expected
            (Harden.Tmr.apply base_modl)
        in
        let rows =
          Harden.Coverage.measure
            ~variants:
              [ (program, base); (program ^ "+swift", hard);
                (program ^ "+tmr", tmr) ]
            ~n ~seed ()
        in
        print_newline ();
        print_string
          (Report.Table.render ~header:Harden.Coverage.header
             (List.map Harden.Coverage.to_cells rows))
      end
      else
        List.iter
          (fun (name, w) ->
            let r = Core.Campaign.run w (Core.Spec.single Write) ~n ~seed in
            Printf.printf
              "%-18s single/write: sdc=%.1f%%  detection=%.1f%%  benign=%.1f%%\n"
              name (Core.Campaign.sdc_pct r)
              (100.
              *. float_of_int (r.detected + r.hang + r.no_output)
              /. float_of_int r.n)
              (100. *. float_of_int r.benign /. float_of_int r.n))
          [ (program, base); (program ^ "+swift", hard) ]
    end
  in
  let light_arg =
    Arg.(
      value & flag
      & info [ "light" ] ~doc:"Use light check placement (outputs/stores only).")
  in
  let dump_arg =
    Arg.(
      value & flag
      & info [ "dump" ] ~doc:"Print the hardened IR instead of measuring it.")
  in
  let coverage_arg =
    Arg.(
      value & flag
      & info [ "coverage" ]
          ~doc:
            "Measure baseline, SWIFT and TMR variants under every fault \
             domain ($(b,reg), $(b,mem), $(b,code)) and print the \
             sdc/detected/benign table — the non-register rows quantify \
             what register-model hardening does not cover.")
  in
  Cmd.v
    (Cmd.info "harden"
       ~doc:
         "Apply SWIFT-style duplication to a program and compare its \
          resilience against the baseline; with $(b,--coverage), also \
          against TMR and across all fault domains.")
    Term.(
      const run $ program_arg $ light_arg $ dump_arg $ coverage_arg $ n_arg
      $ seed_arg)

(* ---- metrics ---- *)

let metrics_cmd =
  let run program =
    Obs.set_enabled true;
    (match program with
    | Some p ->
        (* Loading a workload performs exactly one golden VM run, so the
           vm_* counters show that run's instruction/trap totals. *)
        ignore (load_workload p)
    | None -> ());
    print_string (Obs.render ())
  in
  let program_opt =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"PROGRAM"
          ~doc:
            "Optional program whose golden run populates the VM counters \
             before dumping.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Print the metrics registry as a Prometheus-style text dump.  \
          Without $(i,PROGRAM) every registered metric is shown at zero — \
          a machine-readable catalogue of the instrumentation.")
    Term.(const run $ program_opt)

(* ---- fleet: serve / work ---- *)

let parse_coord_addr s =
  match Fleet.parse_addr s with
  | Ok addr -> addr
  | Error e ->
      Printf.eprintf "%s\n" e;
      exit 2

let ttl_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "ttl" ] ~docv:"SECONDS"
        ~doc:
          "Lease TTL: a shard lease not heartbeated for $(docv) is \
           reassigned to the next worker asking (overrides \
           $(b,ONEBIT_LEASE_TTL); default 30).")

let serve_cmd =
  let run programs domain technique max_mbf win n seed ttl listen workers
      store_dir metrics trace adaptive ci_target =
    let cfg =
      resolve_config ?store:store_dir ?metrics ?trace ?lease_ttl:ttl ?domain
        ?adaptive:(if adaptive then Some true else None)
        ?ci_target ()
    in
    let addr_spec =
      match listen with
      | Some a -> a
      | None ->
          Option.value cfg.Core.Config.coord ~default:"unix:onebit-coord.sock"
    in
    let addr = parse_coord_addr addr_spec in
    let spec = spec_of ~domain:cfg.Core.Config.domain technique max_mbf win in
    let cells =
      List.map
        (fun p ->
          let w = load_workload p in
          {
            Fleet.Proto.c_program = w.Core.Workload.name;
            c_digest = w.Core.Workload.digest;
            c_spec = spec;
            c_n = n;
            c_seed = seed;
          })
        programs
    in
    with_store cfg.Core.Config.store (fun store ->
        let coord =
          Fleet.Coord.create ~ttl:cfg.Core.Config.lease_ttl ?store
            ?ci_target:
              (if cfg.Core.Config.adaptive then
                 Some cfg.Core.Config.ci_target
               else None)
            ~cells ()
        in
        let srv = Fleet.Coord.listen coord addr in
        let addr_s = Fleet.addr_to_string (Fleet.Coord.bound_addr srv) in
        Printf.eprintf "coordinator: %s (%d tasks%s, lease ttl %.1fs)\n%!"
          addr_s
          (Fleet.Coord.total_tasks coord)
          (if cfg.Core.Config.adaptive then
             Printf.sprintf " in round 0, adaptive ci-target %g"
               cfg.Core.Config.ci_target
           else "")
          (Fleet.Coord.ttl coord);
        (* Self-spawned workers connect back over the same address; the
           listener is already bound, so they can never race the accept
           loop. *)
        let children =
          List.init workers (fun _ ->
              Unix.create_process Sys.executable_name
                [| Sys.executable_name; "work"; "--connect"; addr_s |]
                Unix.stdin Unix.stdout Unix.stderr)
        in
        Fleet.Coord.serve srv;
        List.iter (fun pid -> ignore (Unix.waitpid [] pid)) children;
        (match Fleet.Coord.adaptive_summary coord with
        | None -> ()
        | Some rows ->
            List.iter
              (fun ((c : Fleet.Proto.cell), closed_at, met) ->
                Printf.eprintf
                  "adaptive: %s closed at n=%d of cap %d (%s)\n"
                  c.Fleet.Proto.c_program closed_at c.Fleet.Proto.c_n
                  (if met then "CI target met" else "cap exhausted"))
              rows);
        print_endline Core.Csv.header;
        List.iter
          (fun (_, r) -> print_endline (Core.Csv.row r))
          (Fleet.Coord.results coord))
  in
  let programs_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PROGRAM")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Address to listen on: $(b,unix:PATH) or $(b,HOST:PORT) \
             (defaults to $(b,ONEBIT_COORD), else \
             $(b,unix:onebit-coord.sock)).  The same socket answers HTTP \
             GET with the Prometheus metrics dump.")
  in
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Self-spawn $(docv) worker processes connected to this \
             coordinator (0 = external workers only, started separately \
             with $(b,onebit work)).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Coordinate a campaign fleet: lease the campaign's shards to \
          workers, reassign leases whose worker stopped heartbeating, and \
          print the merged CSV — byte-identical to $(b,onebit campaign \
          --csv) for every fleet shape and kill history.  With \
          $(b,--store), completed shards are also persisted and a \
          restarted coordinator resumes at the first missing shard.")
    Term.(
      const run $ programs_arg $ domain_arg $ technique_arg $ mbf_arg
      $ win_arg $ n_arg $ seed_arg $ ttl_arg $ listen_arg $ workers_arg
      $ store_arg $ metrics_arg $ trace_arg $ adaptive_arg $ ci_target_arg)

let work_cmd =
  let run connect id store_dir metrics trace =
    let cfg = resolve_config ?store:store_dir ?metrics ?trace ?coord:connect () in
    let addr_spec =
      match cfg.Core.Config.coord with
      | Some a -> a
      | None ->
          Printf.eprintf
            "work: no coordinator address; pass --connect ADDR or set \
             ONEBIT_COORD\n";
          exit 2
    in
    let addr = parse_coord_addr addr_spec in
    with_store cfg.Core.Config.store (fun store ->
        match
          Fleet.Worker.run ?id ?store ~connect:addr ~load:load_workload ()
        with
        | completed ->
            Printf.eprintf "worker: completed %d shards\n" completed
        | exception Failure e ->
            Printf.eprintf "%s\n" e;
            exit 1
        | exception Unix.Unix_error (err, _, _) ->
            Printf.eprintf "work: cannot reach coordinator %s: %s\n" addr_spec
              (Unix.error_message err);
            exit 1)
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Coordinator address: $(b,unix:PATH) or $(b,HOST:PORT) \
             (overrides $(b,ONEBIT_COORD)).")
  in
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:"Worker identity shown in coordinator state (default \
                $(b,worker-<pid>)).")
  in
  Cmd.v
    (Cmd.info "work"
       ~doc:
         "Serve a fleet coordinator as a worker: lease shards, compute \
          them, heartbeat in-flight leases, report completions; exits when \
          the coordinator reports the grid complete.  With $(b,--store), \
          locally known shards are served without recomputation and fresh \
          ones are persisted (the store is lease-protected against \
          $(b,onebit engine gc) meanwhile).")
    Term.(
      const run $ connect_arg $ id_arg $ store_arg $ metrics_arg $ trace_arg)

(* ---- engine ---- *)

let require_store store_dir =
  match store_dir with
  | Some dir -> dir
  | None ->
      Printf.eprintf
        "engine: a result store is required; pass --store DIR or set \
         ONEBIT_STORE\n";
      exit 2

(* One Drain transaction against a live coordinator. *)
let fleet_state addr_spec =
  let addr = parse_coord_addr addr_spec in
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  match Unix.connect sock addr with
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Printf.eprintf "status: cannot reach coordinator %s: %s\n" addr_spec
        (Unix.error_message err);
      exit 1
  | () ->
      Fun.protect
        ~finally:(fun () ->
          try Unix.close sock with Unix.Unix_error _ -> ())
        (fun () ->
          let oc = Unix.out_channel_of_descr sock in
          let ic = Unix.in_channel_of_descr sock in
          Fleet.Proto.write oc Fleet.Proto.Drain;
          match Fleet.Proto.read ic with
          | Ok (Fleet.Proto.State s) -> s
          | Ok _ | Error _ ->
              Printf.eprintf
                "status: unexpected reply from coordinator %s\n" addr_spec;
              exit 1)

let print_fleet_state addr_spec (s : Fleet.Proto.state) =
  Printf.printf "coordinator: %s\n" addr_spec;
  Printf.printf "cells:       %d\n" s.st_cells;
  Printf.printf "tasks:       %d/%d completed, %d leased, %d reassigned\n"
    s.st_completed s.st_tasks
    (List.length s.st_leases)
    s.st_reassigned;
  if s.st_adaptive then
    Printf.printf "adaptive:    round %d, %d cell%s still open\n" s.st_rounds
      s.st_open
      (if s.st_open = 1 then "" else "s");
  Printf.printf "finished:    %s\n" (if s.st_finished then "yes" else "no");
  if s.st_workers <> [] then begin
    print_newline ();
    print_string
      (Report.Table.render
         ~header:[ "worker"; "done"; "inflight"; "hb-age"; "connected" ]
         (List.map
            (fun (w : Fleet.Proto.worker_info) ->
              [
                w.wi_id;
                string_of_int w.wi_completed;
                string_of_int w.wi_inflight;
                Printf.sprintf "%.1fs" w.wi_heartbeat_age;
                (if w.wi_connected then "yes" else "no");
              ])
            s.st_workers))
  end;
  if s.st_leases <> [] then begin
    print_newline ();
    print_string
      (Report.Table.render
         ~header:[ "task"; "worker"; "remaining" ]
         (List.map
            (fun (l : Fleet.Proto.lease_info) ->
              [
                string_of_int l.li_task;
                l.li_worker;
                Printf.sprintf "%.1fs" l.li_remaining;
              ])
            s.st_leases))
  end

let engine_status_cmd =
  let run store_dir coord =
    let cfg = resolve_config ?store:store_dir ?coord () in
    (match cfg.Core.Config.coord with
    | Some addr_spec ->
        print_fleet_state addr_spec (fleet_state addr_spec);
        if cfg.Core.Config.store <> None then print_newline ()
    | None -> ());
    match cfg.Core.Config.store with
    | None -> if cfg.Core.Config.coord = None then print_endline "no store configured"
    | Some dir ->
    let st = Store.open_dir dir in
    Fun.protect
      ~finally:(fun () -> Store.close st)
      (fun () ->
        let s = Store.stats st in
        Printf.printf "store:      %s\n" (Store.dir st);
        Printf.printf "records:    %d\n" s.records;
        Printf.printf "segments:   %d\n" s.segments;
        Printf.printf "bytes:      %d\n" s.bytes;
        Printf.printf "truncated:  %d\n" s.truncated;
        Printf.printf "corrupt:    %d\n" s.corrupt;
        (* Per-campaign breakdown: shards and experiments held per
           (program, domain, spec, n, seed) stream. *)
        let tbl = Hashtbl.create 16 in
        Store.fold st
          (fun (k : Store.key) _shard () ->
            let id =
              (k.program, k.domain, k.technique, k.max_mbf, k.win, k.n, k.seed)
            in
            let shards, exps =
              Option.value (Hashtbl.find_opt tbl id) ~default:(0, 0)
            in
            Hashtbl.replace tbl id (shards + 1, exps + (k.hi - k.lo)))
          ();
        if Hashtbl.length tbl > 0 then begin
          let rows =
            Hashtbl.fold
              (fun (p, d, t, m, w, n, seed) (shards, exps) acc ->
                let tech = if d = "reg" then t else d ^ ":" ^ t in
                ( [
                    p;
                    Printf.sprintf "%s m=%d w=%s" tech m w;
                    string_of_int n;
                    Int64.to_string seed;
                    string_of_int shards;
                    Printf.sprintf "%d/%d" exps n;
                  ],
                  (p, d, t, m, w, n, seed) )
                :: acc)
              tbl []
            |> List.sort (fun (_, a) (_, b) -> compare a b)
            |> List.map fst
          in
          print_newline ();
          print_string
            (Report.Table.render
               ~header:[ "program"; "spec"; "n"; "seed"; "shards"; "covered" ]
               rows)
        end)
  in
  let coord_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "coord" ] ~docv:"ADDR"
          ~doc:
            "Also query a live fleet coordinator ($(b,unix:PATH) or \
             $(b,HOST:PORT); overrides $(b,ONEBIT_COORD)): live leases, \
             per-worker shard counts, heartbeat ages and the reassignment \
             count.")
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Show result-store statistics and per-campaign coverage; with \
          $(b,--coord) (or $(b,ONEBIT_COORD)), fleet state first.")
    Term.(const run $ store_arg $ coord_arg)

let engine_gc_cmd =
  let run store_dir =
    let dir =
      require_store (resolve_config ?store:store_dir ()).Core.Config.store
    in
    let st = Store.open_dir dir in
    Fun.protect
      ~finally:(fun () -> Store.close st)
      (fun () ->
        let r =
          try Store.gc st
          with Store.Busy pids ->
            Printf.eprintf
              "gc: store %s is in use: writer lease(s) held by live \
               process(es) %s; retry when the run finishes\n"
              dir
              (String.concat ", " (List.map string_of_int pids));
            exit 1
        in
        Printf.printf "live records:   %d\n" r.live_records;
        Printf.printf "dropped dups:   %d\n" r.dropped_duplicates;
        Printf.printf "segments:       %d -> %d\n" r.segments_before
          r.segments_after;
        Printf.printf "bytes:          %d -> %d\n" r.bytes_before r.bytes_after)
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Compact the result store: rewrite all live records into fresh \
          segments, dropping duplicates and corrupt tails.")
    Term.(const run $ store_arg)

let engine_cmd =
  Cmd.group
    (Cmd.info "engine" ~doc:"Inspect and maintain the campaign result store.")
    [ engine_status_cmd; engine_gc_cmd ]

let () =
  (* Arm any ONEBIT_METRICS / ONEBIT_TRACE sinks for every subcommand;
     flag-given sinks are added per-command by [resolve_config]. *)
  Core.Config.install (Core.Config.of_env ());
  let doc = "single/multiple bit-flip fault injection (DSN'17 reproduction)" in
  let info = Cmd.info "onebit" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; dump_cmd; golden_cmd; campaign_cmd; plan_cmd;
            experiment_cmd; reproduce_cmd; run_ir_cmd; digests_cmd;
            diff_campaign_cmd; lint_cmd; harden_cmd; metrics_cmd; engine_cmd;
            serve_cmd; work_cmd;
          ]))
