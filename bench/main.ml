(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table II, Figures 1-5, Tables III-IV, the RQ summary boxes)
   plus Bechamel micro-benchmarks of the interpreter and injector, and the
   ablation studies called out in DESIGN.md.

   Usage:  main.exe [t2|f1|f2|f3|f4|f5|t3|t4|rq|severity|targets|harden|prune-static|incremental|perf|ablate|all]

   Every ONEBIT_* environment variable (N, SEED, PROGRAMS, CAP, PRUNE_N,
   JOBS, SHARD, STORE, PROGRESS, METRICS, TRACE) resolves through
   Core.Config — see its interface or the README table for semantics. *)

let cfg = Core.Config.of_env ()
let () = Core.Config.install cfg
let n_per_campaign = cfg.Core.Config.n
let seed = cfg.Core.Config.seed
let t4_cap = cfg.Core.Config.cap
let prune_n = cfg.Core.Config.prune_n
let jobs = cfg.Core.Config.jobs
let store = Option.map Store.open_dir cfg.Core.Config.store
let progress = Engine.Progress.create ()
let programs = cfg.Core.Config.programs

let runner =
  lazy (Engine.runner ~n:n_per_campaign ~seed ~jobs ?store ~progress ())

let study =
  lazy
    (let t0 = Unix.gettimeofday () in
     let s =
       Analysis.Study.make ~runner:(Lazy.force runner) ?programs ()
     in
     (* Timings go to stderr so stdout is byte-identical across runs and
        worker counts (the CI determinism smoke diffs it). *)
     Printf.printf "# study: %d programs, %d experiments/campaign, seed %Ld\n\n"
       (List.length s.workloads) n_per_campaign seed;
     Printf.eprintf "# study built in %.1fs (jobs=%d%s)\n"
       (Unix.gettimeofday () -. t0)
       jobs
       (match store with
       | Some st -> Printf.sprintf ", store=%s" (Store.dir st)
       | None -> "");
     s)

let tech_name = function
  | Core.Technique.Read -> "inject-on-read"
  | Core.Technique.Write -> "inject-on-write"

let section title =
  Printf.printf "==================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================\n"

(* ------------------------------------------------------------------ *)
(* Table II: candidate instruction counts                              *)
(* ------------------------------------------------------------------ *)

let run_t2 () =
  section "Table II: benchmark programs and fault-injection candidates";
  let rows = Analysis.Table2.compute (Lazy.force study) in
  let body =
    List.map
      (fun (r : Analysis.Table2.row) ->
        [
          r.program;
          r.suite;
          r.package;
          string_of_int r.dyn_count;
          string_of_int r.read_cands;
          string_of_int r.write_cands;
          string_of_int r.pred_reads;
          string_of_int r.pred_writes;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~header:
         [
           "program";
           "suite";
           "package";
           "dyn-instrs";
           "cand-read";
           "cand-write";
           "pred-read";
           "pred-write";
         ]
       body);
  List.iter
    (fun (r : Analysis.Table2.row) ->
      if r.pred_reads <> r.read_cands || r.pred_writes <> r.write_cands then
        Printf.printf
          "!! %s: static candidate prediction diverges from the dynamic count\n"
          r.program)
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 1: single bit-flip outcome classification                    *)
(* ------------------------------------------------------------------ *)

let run_f1 () =
  List.iter
    (fun tech ->
      section
        (Printf.sprintf "Figure 1 (%s): single bit-flip outcome classification"
           (tech_name tech));
      let rows = Analysis.Fig1.compute (Lazy.force study) tech in
      let body =
        List.map
          (fun (r : Analysis.Fig1.row) ->
            let c = r.result in
            let pct v =
              Report.Table.pct (100. *. float_of_int v /. float_of_int c.n)
            in
            let sdc = Core.Campaign.sdc_ci c in
            let p, _, _ = Stats.Proportion.percent sdc in
            [
              r.program;
              pct c.benign;
              pct c.detected;
              pct c.hang;
              pct c.no_output;
              Report.Table.pct_ci p (100. *. Stats.Proportion.half_width sdc);
              pct (c.detected + c.hang + c.no_output);
            ])
          rows
      in
      print_string
        (Report.Table.render
           ~header:
             [
               "program";
               "benign%";
               "hw-exc%";
               "hang%";
               "no-out%";
               "sdc%";
               "detection%";
             ]
           body);
      print_newline ())
    Core.Technique.all

(* ------------------------------------------------------------------ *)
(* Figure 2: multi-bit flips in the same register (win-size = 0)       *)
(* ------------------------------------------------------------------ *)

let run_f2 () =
  List.iter
    (fun tech ->
      section
        (Printf.sprintf
           "Figure 2 (%s): SDC%% vs max-MBF, same register (win-size = 0)"
           (tech_name tech));
      let rows = Analysis.Fig2.compute (Lazy.force study) tech in
      let header =
        "program"
        :: List.map
             (fun (m, _) -> "m=" ^ string_of_int m)
             (match rows with r :: _ -> r.by_mbf | [] -> [])
      in
      let body =
        List.map
          (fun (r : Analysis.Fig2.row) ->
            r.program
            :: List.map
                 (fun (_, c) -> Report.Table.pct (Core.Campaign.sdc_pct c))
                 r.by_mbf)
          rows
      in
      print_string (Report.Table.render ~header body);
      print_newline ())
    Core.Technique.all

(* ------------------------------------------------------------------ *)
(* Figure 3: activated errors at max-MBF = 30                          *)
(* ------------------------------------------------------------------ *)

let run_f3 () =
  List.iter
    (fun tech ->
      section
        (Printf.sprintf
           "Figure 3 (%s): activated errors before crash (max-MBF = 30)"
           (tech_name tech));
      let d = Analysis.Fig3.compute (Lazy.force study) tech in
      let body =
        Stats.Histogram.to_alist d.histogram
        |> List.map (fun (k, c) ->
               [
                 string_of_int k;
                 string_of_int c;
                 Report.Table.pct
                   (100. *. float_of_int c /. float_of_int d.total);
               ])
      in
      print_string
        (Report.Table.render
           ~header:[ "activated"; "experiments"; "share%" ]
           body);
      Printf.printf "buckets: <=5: %.1f%%   6-10: %.1f%%   >10: %.1f%%\n\n"
        (100. *. Analysis.Fig3.share d ~lo:0 ~hi:5)
        (100. *. Analysis.Fig3.share d ~lo:6 ~hi:10)
        (100. *. Analysis.Fig3.share d ~lo:11 ~hi:max_int))
    Core.Technique.all

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5: the multi-register SDC grids                       *)
(* ------------------------------------------------------------------ *)

let run_grid tech figure =
  section
    (Printf.sprintf "Figure %s (%s): SDC%% for bits of multiple registers"
       figure (tech_name tech));
  let rows = Analysis.Grid.compute (Lazy.force study) tech in
  List.iter
    (fun (r : Analysis.Grid.row) ->
      Printf.printf "%s  (single bit-flip: %s%%)\n" r.program
        (Report.Table.pct (Core.Campaign.sdc_pct r.single));
      let header =
        "max-MBF" :: List.map Core.Win.to_string Core.Table1.win_positive
      in
      let body =
        List.map
          (fun m ->
            string_of_int m
            :: List.filter_map
                 (fun ((spec : Core.Spec.t), c) ->
                   if spec.max_mbf = m then
                     Some (Report.Table.pct (Core.Campaign.sdc_pct c))
                   else None)
                 r.cells)
          Core.Table1.max_mbf_values
      in
      print_string (Report.Table.render ~header body);
      print_newline ())
    rows

let run_f4 () = run_grid Core.Technique.Read "4"
let run_f5 () = run_grid Core.Technique.Write "5"

(* ------------------------------------------------------------------ *)
(* Table III: configurations with the highest SDC percentage           *)
(* ------------------------------------------------------------------ *)

let run_t3 () =
  section "Table III: multi-bit configurations with the highest SDC%";
  let rows = Analysis.Table3.compute (Lazy.force study) in
  let body =
    List.map
      (fun (r : Analysis.Table3.row) ->
        [
          r.program;
          string_of_int r.read_best.max_mbf;
          Core.Win.to_string r.read_best.win;
          Report.Table.pct r.read_sdc_pct;
          string_of_int r.write_best.max_mbf;
          Core.Win.to_string r.write_best.win;
          Report.Table.pct r.write_sdc_pct;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~header:
         [
           "program";
           "r-maxMBF";
           "r-win";
           "r-sdc%";
           "w-maxMBF";
           "w-win";
           "w-sdc%";
         ]
       body);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table IV: transition likelihoods (RQ5)                              *)
(* ------------------------------------------------------------------ *)

let run_t4 () =
  section
    "Table IV: likelihood of Transition I (Detection->SDC) and II (Benign->SDC)";
  List.iter
    (fun tech ->
      let rows =
        Analysis.Transition.compute ~cap:t4_cap (Lazy.force study) tech
      in
      Printf.printf "%s:\n" (tech_name tech);
      let body =
        List.map
          (fun (r : Analysis.Transition.row) ->
            [
              r.program;
              Core.Spec.label r.best;
              string_of_int r.n_detection;
              Report.Table.pct (Analysis.Transition.tran1_pct r);
              string_of_int r.n_benign;
              Report.Table.pct (Analysis.Transition.tran2_pct r);
            ])
          rows
      in
      print_string
        (Report.Table.render
           ~header:
             [
               "program"; "replayed-cluster"; "n-det"; "tranI%"; "n-ben";
               "tranII%";
             ]
           body);
      print_newline ())
    Core.Technique.all

(* ------------------------------------------------------------------ *)
(* RQ summary                                                          *)
(* ------------------------------------------------------------------ *)

let run_rq () =
  section "Research-question summary (paper sections IV-B/IV-C)";
  let rq = Analysis.Rq.compute (Lazy.force study) in
  let act name (a : Analysis.Rq.activation_summary) =
    Printf.printf
      "RQ1 (%s): <=5 errors in %.1f%%, 6-10 in %.1f%%, >10 in %.1f%% of max-MBF=30 runs\n"
      name (100. *. a.share_le5) (100. *. a.share_6_10)
      (100. *. a.share_gt10)
  in
  act "inject-on-read" rq.rq1_read;
  act "inject-on-write" rq.rq1_write;
  Printf.printf
    "RQ2: single bit-flip model pessimistic for %d/%d multi-bit campaigns (%.0f%%)\n"
    rq.rq2_campaigns_single_pessimistic rq.rq2_campaigns_total
    (100.
    *. float_of_int rq.rq2_campaigns_single_pessimistic
    /. float_of_int rq.rq2_campaigns_total);
  Printf.printf
    "RQ2: single model pessimistic for %d/15 programs (read), %d/15 (write)\n"
    rq.rq2_programs_read_pessimistic rq.rq2_programs_write_pessimistic;
  let rq3 name (s : Analysis.Rq.rq3_summary) =
    Printf.printf
      "RQ3 (%s): <=3 errors reach peak SDC in %d/%d program/win pairs; worst case %d errors\n"
      name s.pairs_le3 s.pairs_total s.max_needed
  in
  rq3 "inject-on-read" rq.rq3_read;
  rq3 "inject-on-write" rq.rq3_write;
  Printf.printf
    "RQ4: peak-SDC window <=5 dynamic instructions for %d/15 programs (read) vs %d/15 (write)\n"
    (Analysis.Rq.winsize_at_most rq.rq4_read_best_wins 5)
    (Analysis.Rq.winsize_at_most rq.rq4_write_best_wins 5);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let run_perf () =
  section "Performance micro-benchmarks (Bechamel)";
  let open Bechamel in
  let entry = Option.get (Bench_suite.Registry.find "crc32") in
  let workload = Core.Workload.make ~name:"crc32" (entry.build ()) in
  let golden_run_seed =
    Test.make ~name:"golden-run(crc32,seed)"
      (Staged.stage (fun () ->
           ignore (Vm.Exec.run ~budget:Vm.Exec.golden_budget workload.prog)))
  in
  let golden_run_compiled =
    Test.make ~name:"golden-run(crc32,compiled)"
      (Staged.stage (fun () ->
           ignore (Vm.Code.run ~budget:Vm.Exec.golden_budget workload.code)))
  in
  let one_exp tech name =
    let counter = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           incr counter;
           let rng = Prng.of_seed (Int64.of_int !counter) in
           ignore
             (Core.Experiment.run workload
                (Core.Spec.multi tech ~max_mbf:3 ~win:(Fixed 10))
                rng)))
  in
  (* Non-register domains time-target on the dynamic axis instead of
     read/write candidates; benchmarking them shows what Mem's byte
     flips and Code's image forks cost per experiment. *)
  let one_exp_domain domain name =
    let counter = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           incr counter;
           let rng = Prng.of_seed (Int64.of_int !counter) in
           ignore
             (Core.Experiment.run workload
                (Core.Spec.multi ~domain Core.Technique.Write ~max_mbf:3
                   ~win:(Fixed 10))
                rng)))
  in
  let tests =
    [
      golden_run_seed;
      golden_run_compiled;
      one_exp Core.Technique.Read "experiment(crc32,read,m=3)";
      one_exp Core.Technique.Write "experiment(crc32,write,m=3)";
      one_exp_domain Core.Domain.Mem "experiment(crc32,mem,m=3)";
      one_exp_domain Core.Domain.Code "experiment(crc32,code,m=3)";
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.5) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Bechamel.Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
        | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
      results
  in
  List.iter
    (fun t -> benchmark (Test.make_grouped ~name:"perf" [ t ]))
    tests;
  print_newline ();
  (* -- decode-once pipeline vs the seed interpreter -- *)
  let pipeline_progs = [ "crc32"; "qsort"; "fft" ] in
  section "Compiled pipeline: golden-run interpreter throughput, seed vs compiled";
  (* Time-boxed repetition: run each backend for ~0.5s of wall clock and
     report dynamic instructions per second. *)
  let rate run =
    ignore (run ()) (* warm-up *);
    let t0 = Unix.gettimeofday () in
    let instrs = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.5 do
      instrs := !instrs + (run () : Vm.Exec.result).dyn_count
    done;
    float_of_int !instrs /. (Unix.gettimeofday () -. t0)
  in
  Printf.printf "%-10s %14s %14s %9s\n" "program" "seed instr/s"
    "compiled" "speedup";
  List.iter
    (fun name ->
      let e = Option.get (Bench_suite.Registry.find name) in
      let p = Vm.Program.load (e.build ()) in
      let code = Vm.Code.compile p in
      let seed_rate =
        rate (fun () -> Vm.Exec.run ~budget:Vm.Exec.golden_budget p)
      in
      let comp_rate =
        rate (fun () -> Vm.Code.run ~budget:Vm.Exec.golden_budget code)
      in
      Printf.printf "%-10s %14.3e %14.3e %8.2fx\n" name seed_rate comp_rate
        (comp_rate /. seed_rate))
    pipeline_progs;
  print_newline ();
  section "Compiled pipeline: end-to-end campaign wall-clock, seed vs compiled";
  let saved_backend = Core.Config.active_backend () in
  let ck_saved_on = Core.Config.checkpointing ()
  and ck_saved_k = Core.Config.checkpoint_interval () in
  (* Checkpointing off here: this table isolates decode-once vs the seed
     interpreter; prefix reuse is measured separately below. *)
  Core.Config.set_checkpoint false;
  let pipeline_spec = Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 10) in
  let n_pipeline = 300 in
  Printf.printf "%-10s %10s %10s %9s   (%s over %d experiments)\n" "program"
    "seed" "compiled" "speedup"
    (Core.Spec.label pipeline_spec)
    n_pipeline;
  List.iter
    (fun name ->
      let e = Option.get (Bench_suite.Registry.find name) in
      let w =
        Core.Workload.make ~name ~expected_output:(e.reference ())
          (e.build ())
      in
      let campaign backend =
        Core.Config.set_backend backend;
        let t0 = Unix.gettimeofday () in
        let r = Core.Campaign.run w pipeline_spec ~n:n_pipeline ~seed:5L in
        (Unix.gettimeofday () -. t0, r)
      in
      ignore (campaign Core.Config.Compiled) (* warm-up *);
      let seed_t, seed_r = campaign Core.Config.Seed in
      let comp_t, comp_r = campaign Core.Config.Compiled in
      Printf.printf "%-10s %9.2fs %9.2fs %8.2fx   %s\n" name seed_t comp_t
        (seed_t /. comp_t)
        (if Core.Campaign.equal_result seed_r comp_r then
           "bit-identical results"
         else "!! MISMATCH"))
    pipeline_progs;
  Core.Config.set_backend saved_backend;
  print_newline ();
  section "Checkpointed prefix reuse: campaign wall-clock, checkpoint off vs on";
  Printf.printf "%-10s %10s %10s %9s   (%s over %d experiments)\n" "program"
    "off" "on" "speedup"
    (Core.Spec.label pipeline_spec)
    n_pipeline;
  let ck_rows =
    List.map
      (fun name ->
        let e = Option.get (Bench_suite.Registry.find name) in
        let w =
          Core.Workload.make ~name ~expected_output:(e.reference ())
            (e.build ())
        in
        let campaign on =
          Core.Config.set_checkpoint on;
          let t0 = Unix.gettimeofday () in
          let r = Core.Campaign.run w pipeline_spec ~n:n_pipeline ~seed:5L in
          (Unix.gettimeofday () -. t0, r)
        in
        (* Warm-up also records the checkpoint set, so the timed "on" run
           measures steady-state reuse, not the one-off recording. *)
        ignore (campaign true);
        let off_t, off_r = campaign false in
        let on_t, on_r = campaign true in
        let identical = Core.Campaign.equal_result off_r on_r in
        Printf.printf "%-10s %9.2fs %9.2fs %8.2fx   %s\n" name off_t on_t
          (off_t /. on_t)
          (if identical then "bit-identical results" else "!! MISMATCH");
        (name, off_t, on_t, identical))
      pipeline_progs
  in
  Core.Config.set_checkpoint ~interval:ck_saved_k ck_saved_on;
  let ck_points, ck_restores = Vm.Checkpoint.stats () in
  (let oc = open_out "BENCH_5.json" in
   Printf.fprintf oc
     "{\n\
     \  \"pr\": 5,\n\
     \  \"bench\": \"campaign_wall_clock_checkpoint\",\n\
     \  \"spec\": %S,\n\
     \  \"n\": %d,\n\
     \  \"seed\": 5,\n\
     \  \"checkpoints_recorded\": %d,\n\
     \  \"restores\": %d,\n\
     \  \"programs\": [\n"
     (Core.Spec.label pipeline_spec)
     n_pipeline ck_points ck_restores;
   List.iteri
     (fun i (name, off_t, on_t, identical) ->
       Printf.fprintf oc
         "    {\"program\": %S, \"off_s\": %.4f, \"on_s\": %.4f, \
          \"speedup\": %.3f, \"bit_identical\": %b}%s\n"
         name off_t on_t (off_t /. on_t) identical
         (if i = List.length ck_rows - 1 then "" else ","))
     ck_rows;
   output_string oc "  ]\n}\n";
   close_out oc);
  Printf.printf "(wrote BENCH_5.json)\n";
  print_newline ();
  section "Suffix batching: campaign wall-clock, batch off vs on (checkpoint on)";
  Printf.printf "%-10s %10s %10s %9s %12s %12s   (%s over %d experiments)\n"
    "program" "off" "on" "speedup" "full(off)" "full(on)"
    (Core.Spec.label pipeline_spec)
    n_pipeline;
  let batch_saved = Core.Config.batching () in
  Core.Config.set_checkpoint true;
  let groups0, members0 = Core.Batch.stats () in
  let batch_rows =
    List.map
      (fun name ->
        let e = Option.get (Bench_suite.Registry.find name) in
        let w =
          Core.Workload.make ~name ~expected_output:(e.reference ())
            (e.build ())
        in
        let campaign batch =
          Core.Config.set_batch batch;
          let f0, u0 = Vm.Memory.restore_stats () in
          let t0 = Unix.gettimeofday () in
          let r = Core.Campaign.run w pipeline_spec ~n:n_pipeline ~seed:5L in
          let t = Unix.gettimeofday () -. t0 in
          let f1, u1 = Vm.Memory.restore_stats () in
          (t, r, f1 - f0, u1 - u0)
        in
        (* Warm-up records the checkpoint set outside the timed runs. *)
        ignore (campaign true);
        let off_t, off_r, off_full, _ = campaign false in
        let on_t, on_r, on_full, on_undo = campaign true in
        let identical = Core.Campaign.equal_result off_r on_r in
        Printf.printf "%-10s %9.2fs %9.2fs %8.2fx %12d %12d   %s\n" name off_t
          on_t (off_t /. on_t) off_full on_full
          (if identical then "bit-identical results" else "!! MISMATCH");
        (name, off_t, on_t, off_full, on_full, on_undo, identical))
      pipeline_progs
  in
  let groups1, members1 = Core.Batch.stats () in
  Core.Config.set_batch batch_saved;
  Core.Config.set_checkpoint ~interval:ck_saved_k ck_saved_on;
  let groups = groups1 - groups0 and members = members1 - members0 in
  Printf.printf
    "groups=%d  batched experiments=%d  mean group size=%.1f\n" groups members
    (if groups = 0 then 0. else float_of_int members /. float_of_int groups);
  (let oc = open_out "BENCH_9.json" in
   let total_off = List.fold_left (fun a (_, _, _, f, _, _, _) -> a + f) 0 batch_rows
   and total_on = List.fold_left (fun a (_, _, _, _, f, _, _) -> a + f) 0 batch_rows in
   Printf.fprintf oc
     "{\n\
     \  \"pr\": 9,\n\
     \  \"bench\": \"campaign_wall_clock_suffix_batching\",\n\
     \  \"spec\": %S,\n\
     \  \"n\": %d,\n\
     \  \"seed\": 5,\n\
     \  \"full_restores_unbatched\": %d,\n\
     \  \"full_restores_batched\": %d,\n\
     \  \"restore_reduction\": %.2f,\n\
     \  \"groups\": %d,\n\
     \  \"batched_experiments\": %d,\n\
     \  \"mean_group_size\": %.2f,\n\
     \  \"programs\": [\n"
     (Core.Spec.label pipeline_spec)
     n_pipeline total_off total_on
     (if total_on = 0 then 0.
      else float_of_int total_off /. float_of_int total_on)
     groups members
     (if groups = 0 then 0. else float_of_int members /. float_of_int groups);
   List.iteri
     (fun i (name, off_t, on_t, off_full, on_full, on_undo, identical) ->
       Printf.fprintf oc
         "    {\"program\": %S, \"off_s\": %.4f, \"on_s\": %.4f, \
          \"speedup\": %.3f, \"full_restores_off\": %d, \
          \"full_restores_on\": %d, \"undo_resets_on\": %d, \
          \"bit_identical\": %b}%s\n"
         name off_t on_t (off_t /. on_t) off_full on_full on_undo identical
         (if i = List.length batch_rows - 1 then "" else ","))
     batch_rows;
   output_string oc "  ]\n}\n";
   close_out oc);
  Printf.printf "(wrote BENCH_9.json)\n";
  print_newline ();
  section
    "Adaptive sequential sampling: fixed-N grid vs CI-targeted rounds";
  (* The mini-grid of the adaptive study: three programs x three fault
     domains, one cell per pair.  The fixed-N baseline spends the cap on
     every cell; the adaptive sampler stops each cell at the first shard
     boundary whose SDC Wilson half-width reaches the target, and every
     experiment it runs is the fixed-N campaign's prefix. *)
  let adaptive_cap = 600 and adaptive_target = 0.06 in
  let adaptive_progs = [ "crc32"; "qsort"; "nn" ] in
  let adaptive_domains =
    [ Core.Domain.Reg; Core.Domain.Mem; Core.Domain.Code ]
  in
  let adaptive_cells =
    List.concat_map
      (fun name ->
        let e = Option.get (Bench_suite.Registry.find name) in
        let w =
          Core.Workload.make ~name ~expected_output:(e.reference ())
            (e.build ())
        in
        List.map
          (fun domain ->
            {
              Engine.Adaptive.c_workload = w;
              c_spec = Core.Spec.single ~domain Read;
              c_cap = adaptive_cap;
              c_seed = 5L;
            })
          adaptive_domains)
      adaptive_progs
  in
  let t0 = Unix.gettimeofday () in
  let fixed_results =
    List.map
      (fun (c : Engine.Adaptive.cell) ->
        Engine.run_campaign ~jobs:1 c.c_workload c.c_spec ~n:c.c_cap
          ~seed:c.c_seed)
      adaptive_cells
  in
  let fixed_t = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let adaptive_results, adaptive_stats =
    Engine.Adaptive.run_grid ~jobs:1 ~target:adaptive_target adaptive_cells
  in
  let adaptive_t = Unix.gettimeofday () -. t0 in
  Printf.printf "%-10s %-6s %8s %9s %8s %6s   (target +/-%g, cap %d)\n"
    "program" "domain" "fixed-N" "adaptive" "hw" "met" adaptive_target
    adaptive_cap;
  let adaptive_rows =
    List.map2
      (fun (cr : Engine.Adaptive.cell_result) fixed ->
        (* The prefix assert: the adaptive cell's merged result must be
           byte-identical to a fixed-N campaign of the stopping N. *)
        let prefix =
          Engine.run_campaign ~jobs:1 cr.r_cell.c_workload cr.r_cell.c_spec
            ~n:cr.r_closed_at ~seed:cr.r_cell.c_seed
        in
        let identical = Core.Campaign.equal_result prefix cr.r_result in
        let hw =
          Stats.Proportion.(
            half_width
              (wilson ~successes:cr.r_result.Core.Campaign.sdc
                 ~trials:cr.r_result.Core.Campaign.n ()))
        in
        ignore fixed;
        Printf.printf "%-10s %-6s %8d %9d %8.4f %6s   %s\n"
          cr.r_cell.c_workload.Core.Workload.name
          (Core.Domain.to_string cr.r_cell.c_spec.Core.Spec.domain)
          adaptive_cap cr.r_closed_at hw
          (if cr.r_met then "yes" else "no")
          (if identical then "bit-identical prefix" else "!! MISMATCH");
        (cr, hw, identical))
      adaptive_results fixed_results
  in
  let total_fixed = adaptive_cap * List.length adaptive_cells in
  let total_adaptive =
    List.fold_left
      (fun a (cr, _, _) -> a + cr.Engine.Adaptive.r_closed_at)
      0 adaptive_rows
  in
  let exp_ratio = float_of_int total_fixed /. float_of_int total_adaptive in
  Printf.printf
    "experiments: fixed-N %d, adaptive %d (%.2fx fewer, %d saved)\n"
    total_fixed total_adaptive exp_ratio adaptive_stats.g_saved;
  Printf.printf "wall-clock:  fixed-N %.2fs, adaptive %.2fs (%.2fx)\n" fixed_t
    adaptive_t (fixed_t /. adaptive_t);
  (let oc = open_out "BENCH_10.json" in
   Printf.fprintf oc
     "{\n\
     \  \"pr\": 10,\n\
     \  \"bench\": \"adaptive_vs_fixed_n\",\n\
     \  \"ci_target\": %g,\n\
     \  \"cap\": %d,\n\
     \  \"seed\": 5,\n\
     \  \"rounds\": %d,\n\
     \  \"experiments_fixed\": %d,\n\
     \  \"experiments_adaptive\": %d,\n\
     \  \"experiments_saved\": %d,\n\
     \  \"experiment_ratio\": %.3f,\n\
     \  \"fixed_s\": %.4f,\n\
     \  \"adaptive_s\": %.4f,\n\
     \  \"wall_clock_ratio\": %.3f,\n\
     \  \"cells\": [\n"
     adaptive_target adaptive_cap adaptive_stats.g_rounds total_fixed
     total_adaptive adaptive_stats.g_saved exp_ratio fixed_t adaptive_t
     (fixed_t /. adaptive_t);
   List.iteri
     (fun i ((cr : Engine.Adaptive.cell_result), hw, identical) ->
       Printf.fprintf oc
         "    {\"program\": %S, \"domain\": %S, \"cap\": %d, \
          \"closed_at\": %d, \"half_width\": %.5f, \"met\": %b, \
          \"prefix_bit_identical\": %b}%s\n"
         cr.r_cell.c_workload.Core.Workload.name
         (Core.Domain.to_string cr.r_cell.c_spec.Core.Spec.domain)
         adaptive_cap cr.r_closed_at hw cr.r_met identical
         (if i = List.length adaptive_rows - 1 then "" else ","))
     adaptive_rows;
   output_string oc "  ]\n}\n";
   close_out oc);
  Printf.printf "(wrote BENCH_10.json)\n";
  print_newline ();
  section "Engine scaling: one campaign, sequential vs parallel";
  let spec = Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 10) in
  let n = 800 in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let r = Engine.run_campaign ~jobs workload spec ~n ~seed:7L in
    (Unix.gettimeofday () -. t0, r)
  in
  let cores = Domain.recommended_domain_count () in
  let seq_t, seq_r = time 1 in
  Printf.printf "jobs=1   %6.2fs  (sdc=%d, %d core%s available)\n" seq_t
    seq_r.sdc cores
    (if cores = 1 then "" else "s");
  List.iter
    (fun jobs ->
      let par_t, par_r = time jobs in
      Printf.printf "jobs=%-3d %6.2fs  speedup x%.2f  (%s)%s\n" jobs par_t
        (seq_t /. par_t)
        (if Core.Campaign.equal_result seq_r par_r then
           "bit-identical to sequential"
         else "!! MISMATCH")
        (if jobs > cores then "  [oversubscribed]" else ""))
    [ 2; 4; 8 ];
  print_newline ();
  section "Observability overhead: Table III grid with collection off vs on";
  (* The t3 workload shape: the full 91-spec read grid on one program.
     Results must be bit-identical with collection on or off, and the
     overhead of the (enabled) instrumentation should stay under ~2% —
     the disabled probes are strictly cheaper still (one atomic load and
     a branch each). *)
  let specs = Core.Table1.specs Core.Technique.Read in
  let n_obs = 25 in
  let grid () =
    List.map (fun spec -> Core.Campaign.run workload spec ~n:n_obs ~seed:11L)
      specs
  in
  let was_enabled = Obs.enabled () in
  (* Interleave the off/on repetitions so clock drift (thermal, noisy
     neighbours, GC state) hits both sides alike, and take the best of
     each: the minimum is the least-disturbed run. *)
  let timed enabled =
    Obs.set_enabled enabled;
    let t0 = Unix.gettimeofday () in
    let r = grid () in
    (Unix.gettimeofday () -. t0, r)
  in
  ignore (timed false) (* warm-up *);
  let reps = 5 in
  let off_t = ref infinity and on_t = ref infinity in
  let off_r = ref None and on_r = ref None in
  for _ = 1 to reps do
    let t, r = timed false in
    if t < !off_t then off_t := t;
    off_r := Some r;
    let t, r = timed true in
    if t < !on_t then on_t := t;
    on_r := Some r
  done;
  Obs.set_enabled was_enabled;
  let off_t = !off_t and on_t = !on_t in
  let off_r = Option.get !off_r and on_r = Option.get !on_r in
  let identical = List.for_all2 Core.Campaign.equal_result off_r on_r in
  let overhead = 100. *. (on_t -. off_t) /. off_t in
  Printf.printf "off: %.3fs   on: %.3fs   (%d campaigns x %d experiments)\n"
    off_t on_t (List.length specs) n_obs;
  Printf.printf "results: %s\n"
    (if identical then "bit-identical with collection on and off"
     else "!! MISMATCH: collection influenced campaign results");
  Printf.printf "enabled-collection overhead: %+.2f%%  %s\n" overhead
    (if overhead < 2.0 then "(OK, target < 2%)"
     else "(!! above the ~2% target)");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* SDC severity grading                                                *)
(* ------------------------------------------------------------------ *)

let run_severity () =
  List.iter
    (fun tech ->
      section
        (Printf.sprintf "SDC severity (%s): how much output a corruption damages"
           (tech_name tech));
      let rows = Analysis.Severity.compute (Lazy.force study) tech in
      let body =
        List.map
          (fun (r : Analysis.Severity.row) ->
            [
              r.program;
              string_of_int r.n_sdc;
              Report.Table.pct (100. *. r.mean_extent);
              Report.Table.pct (100. *. r.mean_onset);
              string_of_int r.single_byte;
              string_of_int r.wholesale;
            ])
          rows
      in
      print_string
        (Report.Table.render
           ~header:
             [ "program"; "n-sdc"; "extent%"; "onset%"; "1-byte"; ">50%" ]
           body);
      let bits = Analysis.Severity.by_bit (Lazy.force study) tech in
      let body =
        List.map
          (fun (r : Analysis.Severity.bit_row) ->
            [
              Printf.sprintf "bits %d-%d" (8 * r.bit_bucket)
                ((8 * r.bit_bucket) + 7);
              string_of_int r.n;
              Report.Table.pct
                (100. *. float_of_int r.sdc /. float_of_int (max 1 r.n));
              Report.Table.pct
                (100. *. float_of_int r.detected /. float_of_int (max 1 r.n));
            ])
          bits
      in
      print_string
        (Report.Table.render
           ~header:[ "flipped bits"; "n"; "sdc%"; "detection%" ]
           body);
      print_newline ())
    Core.Technique.all

(* ------------------------------------------------------------------ *)
(* Register-class sensitivity (the paper's explanatory mechanism)      *)
(* ------------------------------------------------------------------ *)

let run_targets () =
  List.iter
    (fun tech ->
      section
        (Printf.sprintf
           "Target classes (%s): outcome mix by flipped register kind"
           (tech_name tech));
      let pooled = Analysis.Targets.pooled (Lazy.force study) tech in
      let body =
        List.map
          (fun (r : Analysis.Targets.row) ->
            [
              Analysis.Targets.cls_name r.cls;
              string_of_int r.n;
              Report.Table.pct (Analysis.Targets.sdc_pct r);
              Report.Table.pct (Analysis.Targets.detection_pct r);
              Report.Table.pct
                (100. *. float_of_int r.benign /. float_of_int r.n);
            ])
          pooled
      in
      print_string
        (Report.Table.render
           ~header:[ "class"; "n"; "sdc%"; "detection%"; "benign%" ]
           body);
      print_newline ())
    Core.Technique.all

(* ------------------------------------------------------------------ *)
(* Hardening coverage (the paper's future-work experiment)             *)
(* ------------------------------------------------------------------ *)

let run_harden () =
  section
    "Hardening: SWIFT-style duplication coverage under single vs multi-bit \
     models";
  let rows = Analysis.Coverage.compute ~n:n_per_campaign ~seed () in
  let header =
    [
      "program"; "variant"; "technique"; "dyn-cost";
      "sdc%:single"; "sdc%:m2w1"; "sdc%:m3w1";
      "det%:single"; "det%:m2w1"; "det%:m3w1";
      "ben%:single"; "ben%:m2w1"; "ben%:m3w1";
    ]
  in
  let body =
    List.map
      (fun (r : Analysis.Coverage.row) ->
        let sdc =
          List.map
            (fun (_, c) -> Report.Table.pct (Core.Campaign.sdc_pct c))
            r.results
        in
        let det =
          List.map
            (fun (_, (c : Core.Campaign.result)) ->
              Report.Table.pct
                (100.
                *. float_of_int (c.detected + c.hang + c.no_output)
                /. float_of_int c.n))
            r.results
        in
        let ben =
          List.map
            (fun (_, (c : Core.Campaign.result)) ->
              Report.Table.pct
                (100. *. float_of_int c.benign /. float_of_int c.n))
            r.results
        in
        [
          r.program;
          Analysis.Coverage.variant_name r.variant;
          (match r.technique with Core.Technique.Read -> "read" | Write -> "write");
          Printf.sprintf "x%.2f" r.dyn_overhead;
        ]
        @ sdc @ det @ ben)
      rows
  in
  print_string (Report.Table.render ~header body);
  print_newline ();
  (* Per-domain coverage: SWIFT and TMR defend the register-operand
     model; the mem/code rows measure how much of that protection
     survives flips in live memory and in the stored program. *)
  section "Hardening: SWIFT vs TMR detection coverage per fault domain";
  let e = Option.get (Bench_suite.Registry.find "crc32") in
  let expected = e.reference () in
  let base_modl = e.build () in
  let variants =
    [
      ("crc32", Core.Workload.make ~name:"crc32" ~expected_output:expected
                  base_modl);
      ( "crc32+swift",
        Core.Workload.make ~name:"crc32+swift" ~expected_output:expected
          (Harden.Swift.apply base_modl) );
      ( "crc32+tmr",
        Core.Workload.make ~name:"crc32+tmr" ~expected_output:expected
          (Harden.Tmr.apply base_modl) );
    ]
  in
  let rows =
    Harden.Coverage.measure ~variants ~n:n_per_campaign ~seed ()
  in
  print_string
    (Report.Table.render ~header:Harden.Coverage.header
       (List.map Harden.Coverage.to_cells rows));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablations (design decisions from DESIGN.md)                         *)
(* ------------------------------------------------------------------ *)

let run_ablate () =
  section "Ablation: Wald vs Wilson intervals at bench sample sizes";
  let s = Lazy.force study in
  let w = List.hd s.workloads in
  let c = Core.Runner.campaign s.runner w (Core.Spec.single Read) in
  let wald = Core.Campaign.sdc_ci c in
  let wilson = Stats.Proportion.wilson ~successes:c.sdc ~trials:c.n () in
  Printf.printf
    "%s single/read: sdc=%d/%d  wald=[%.3f,%.3f]  wilson=[%.3f,%.3f]\n"
    c.workload_name c.sdc c.n wald.lo wald.hi wilson.lo wilson.hi;
  section "Ablation: win-size=0 distinct-bit sampling (m=2)";
  let spec = Core.Spec.multi Read ~max_mbf:2 ~win:(Fixed 0) in
  let r = Core.Runner.campaign s.runner w spec in
  Printf.printf
    "%s m=2/w=0: sdc%%=%.1f with distinct bits (with replacement, ~1/width of pairs would cancel to the golden value)\n"
    r.workload_name (Core.Campaign.sdc_pct r);
  section "Ablation: unweighted vs equivalence-class-weighted SDC estimates";
  List.iter
    (fun tech ->
      List.iter
        (fun (wl : Core.Workload.t) ->
          let c = Core.Runner.campaign s.runner wl (Core.Spec.single tech) in
          Printf.printf "%-16s %-16s unweighted=%.1f%%  weighted=%.1f%%\n"
            wl.name (tech_name tech) (Core.Campaign.sdc_pct c)
            (Core.Campaign.weighted_sdc_pct c))
        (match s.workloads with a :: b :: c :: _ -> [ a; b; c ] | l -> l))
    Core.Technique.all;
  section "Ablation: win-size spacing measured on faulty vs golden timeline";
  let spacing_spec = Core.Spec.multi Write ~max_mbf:5 ~win:(Fixed 10) in
  List.iter
    (fun (label, spacing) ->
      let c =
        Core.Campaign.run ~spacing w spacing_spec
          ~n:(Core.Runner.n s.runner) ~seed:2L
      in
      Printf.printf
        "%-7s spacing: sdc%%=%.1f detection%%=%.1f mean-activated=%.2f\n" label
        (Core.Campaign.sdc_pct c)
        (100.
        *. float_of_int (c.detected + c.hang + c.no_output)
        /. float_of_int c.n)
        (let h = c.activation in
         float_of_int
           (List.fold_left
              (fun acc (k, cnt) -> acc + (k * cnt))
              0
              (Stats.Histogram.to_alist h))
         /. float_of_int (Stats.Histogram.total h)))
    [ ("faulty", `Faulty); ("golden", `Golden) ];
  section "Ablation: hang-budget factor";
  List.iter
    (fun factor ->
      let entry = Option.get (Bench_suite.Registry.find w.Core.Workload.name) in
      let wl =
        Core.Workload.make ~hang_factor:factor ~name:w.Core.Workload.name
          (entry.build ())
      in
      let c =
        Core.Campaign.run wl (Core.Spec.single Read)
          ~n:(Core.Runner.n s.runner) ~seed:1L
      in
      Printf.printf "hang_factor=%-3d  hang=%d/%d  sdc%%=%.1f\n" factor c.hang
        c.n (Core.Campaign.sdc_pct c))
    [ 2; 10; 100 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* PS: static pruning of the single-bit error space                    *)
(* ------------------------------------------------------------------ *)

let run_prune_static () =
  section
    (Printf.sprintf
       "PS: static error-space pruning (%d validation injections/technique)"
       prune_n);
  let rows =
    Analysis.Prune_static.compute ~validate_n:prune_n (Lazy.force study)
  in
  let body =
    List.map
      (fun (r : Analysis.Prune_static.row) ->
        let s = r.summary in
        [
          r.program;
          string_of_int (s.read_total + s.write_total);
          Report.Table.pct (100. *. Analysis.Prune_static.read_fraction s);
          Report.Table.pct (100. *. Analysis.Prune_static.write_fraction s);
          Report.Table.pct (100. *. Analysis.Prune_static.pruned_fraction s);
          string_of_int (r.read_checked + r.write_checked);
          string_of_int r.misclassified;
        ])
      rows
  in
  print_string
    (Report.Table.render
       ~header:
         [
           "program";
           "error-space";
           "pruned-read%";
           "pruned-write%";
           "pruned%";
           "validated";
           "misclass";
         ]
       body);
  let checked, bad =
    List.fold_left
      (fun (c, b) (r : Analysis.Prune_static.row) ->
        (c + r.read_checked + r.write_checked, b + r.misclassified))
      (0, 0) rows
  in
  Printf.printf
    "# soundness: %d injections at provably-benign sites, %d misclassified%s\n\n"
    checked bad
    (if bad = 0 then " (all benign, as proved)" else " !! UNSOUND")

(* ------------------------------------------------------------------ *)
(* Incremental composition: cold vs warm per-function profile cache    *)
(* ------------------------------------------------------------------ *)

let run_incremental () =
  section "Incremental composition: per-function profile cache";
  let entry = Option.get (Bench_suite.Registry.find "qsort") in
  let w =
    Core.Workload.make ~name:"qsort" ~expected_output:(entry.reference ())
      (entry.build ())
  in
  let spec = Core.Spec.single Core.Technique.Read in
  let n = n_per_campaign in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "onebit-bench-inc-%d" (Unix.getpid ()))
  in
  let st = Store.open_dir dir in
  Fun.protect ~finally:(fun () -> Store.close st) @@ fun () ->
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let full, t_full = time (fun () -> Core.Campaign.run w spec ~n ~seed) in
  let (r_cold, s_cold), t_cold =
    time (fun () -> Engine.Incremental.run ~jobs ~store:st w spec ~n ~seed)
  in
  let (r_warm, s_warm), t_warm =
    time (fun () -> Engine.Incremental.run ~jobs ~store:st w spec ~n ~seed)
  in
  Printf.printf "# campaign: qsort %s, n=%d, %d functions\n"
    (Core.Spec.label spec) n s_cold.funcs_total;
  Printf.printf "cold: recomputed %d functions / %d experiments\n"
    s_cold.funcs_recomputed s_cold.exps_recomputed;
  Printf.printf "warm: reused %d functions / %d experiments\n"
    s_warm.funcs_reused s_warm.exps_reused;
  Printf.printf "composed == full campaign: %b\n\n"
    (Core.Campaign.equal_result r_cold full
    && Core.Campaign.equal_result r_warm full);
  (* timings to stderr: stdout stays byte-identical across runs *)
  Printf.eprintf "# incremental: full %.2fs, cold %.2fs, warm %.3fs\n" t_full
    t_cold t_warm

(* ------------------------------------------------------------------ *)
(* Fleet: coordinator/worker shard leasing vs the in-process campaign  *)
(* ------------------------------------------------------------------ *)

let run_fleet () =
  section "Fleet: socket leasing overhead vs in-process campaign";
  let entry = Option.get (Bench_suite.Registry.find "qsort") in
  let w =
    Core.Workload.make ~name:"qsort" ~expected_output:(entry.reference ())
      (entry.build ())
  in
  let spec =
    Core.Spec.multi Core.Technique.Read ~max_mbf:3 ~win:(Core.Win.Fixed 10)
  in
  let n = n_per_campaign in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let direct, t_direct = time (fun () -> Core.Campaign.run w spec ~n ~seed) in
  let fleet k =
    let cells =
      [
        {
          Fleet.Proto.c_program = w.Core.Workload.name;
          c_digest = w.Core.Workload.digest;
          c_spec = spec;
          c_n = n;
          c_seed = seed;
        };
      ]
    in
    let c = Fleet.Coord.create ~cells () in
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "onebit-bench-fleet-%d-%d.sock" (Unix.getpid ()) k)
    in
    let srv = Fleet.Coord.listen c (Unix.ADDR_UNIX path) in
    let server = Thread.create (fun () -> Fleet.Coord.serve srv) () in
    let workers =
      List.init k (fun i ->
          Thread.create
            (fun () ->
              ignore
                (Fleet.Worker.run
                   ~id:(Printf.sprintf "bench-w%d" i)
                   ~connect:(Fleet.Coord.bound_addr srv)
                   ~load:(fun _ -> w)
                   ()
                  : int))
            ())
    in
    List.iter Thread.join workers;
    Thread.join server;
    snd (List.hd (Fleet.Coord.results c))
  in
  Printf.printf "# campaign: qsort %s, n=%d\n" (Core.Spec.label spec) n;
  let timings =
    List.map
      (fun k ->
        let r, t = time (fun () -> fleet k) in
        Printf.printf "fleet x%d == in-process campaign: %b\n" k
          (Core.Campaign.equal_result r direct);
        (k, t))
      [ 1; 2; 4 ]
  in
  print_newline ();
  (* timings to stderr: stdout stays byte-identical across runs *)
  Printf.eprintf "# fleet: direct %.2fs" t_direct;
  List.iter
    (fun (k, t) ->
      Printf.eprintf ", x%d %.2fs (%.2fx direct)" k t (t /. t_direct))
    timings;
  Printf.eprintf "\n"

(* ------------------------------------------------------------------ *)

let print_cache_stats () =
  let s = Core.Runner.cache_stats (Lazy.force runner) in
  Printf.printf "# cache: %s\n" (Core.Runner.pp_stats s);
  match store with
  | Some st ->
      let ss = Store.stats st in
      Printf.printf
        "# store: %d records in %d segment(s), %d bytes (%d truncated, %d \
         corrupt dropped at open)\n"
        ss.records ss.segments ss.bytes ss.truncated ss.corrupt
  | None -> ()

let run_all () =
  run_t2 ();
  run_f1 ();
  run_f2 ();
  run_f3 ();
  run_f4 ();
  run_f5 ();
  run_t3 ();
  run_t4 ();
  run_rq ();
  run_severity ();
  run_targets ();
  run_harden ();
  run_prune_static ();
  run_incremental ();
  run_fleet ();
  print_cache_stats ()

let () =
  let t0 = Unix.gettimeofday () in
  let cmd = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  Engine.Progress.with_reporter progress (fun () ->
      (* Force the study eagerly so its banner precedes the section
         headers. *)
      (match cmd with
      | "perf" | "incremental" | "fleet" -> ()
      | _ -> ignore (Lazy.force study));
      match cmd with
      | "t2" -> run_t2 ()
      | "f1" -> run_f1 ()
      | "f2" -> run_f2 ()
      | "f3" -> run_f3 ()
      | "f4" -> run_f4 ()
      | "f5" -> run_f5 ()
      | "t3" -> run_t3 ()
      | "t4" -> run_t4 ()
      | "rq" -> run_rq ()
      | "severity" -> run_severity ()
      | "targets" -> run_targets ()
      | "harden" -> run_harden ()
      | "prune-static" -> run_prune_static ()
      | "incremental" -> run_incremental ()
      | "fleet" -> run_fleet ()
      | "perf" -> run_perf ()
      | "ablate" -> run_ablate ()
      | "all" -> run_all ()
      | other ->
          Printf.eprintf
            "unknown command %s (expected \
             t2|f1|f2|f3|f4|f5|t3|t4|rq|severity|targets|harden|prune-static|incremental|fleet|perf|ablate|all)\n"
            other;
          exit 2);
  (match store with Some st -> Store.close st | None -> ());
  Printf.eprintf "# total elapsed: %.1fs\n" (Unix.gettimeofday () -. t0)
