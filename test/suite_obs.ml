(* Tests for the observability layer (onebit.obs) and the unified
   runtime configuration (Core.Config).

   The load-bearing properties: recording never influences the
   instrumented computation (campaign results are bit-identical with
   collection on or off), histogram merging is associative and
   commutative (so shard-wise accumulation is order-independent), the
   registry snapshot does not depend on how work was spread over
   domains, and spans obey per-domain stack discipline.

   Metrics/trace collection is process-global, so every test that
   enables it restores the previous state on the way out. *)

let with_collection ~metrics ~trace f =
  let m0 = Obs.Metrics.enabled () and t0 = Obs.Trace.enabled () in
  Obs.Metrics.set_enabled metrics;
  Obs.Trace.set_enabled trace;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled m0;
      Obs.Trace.set_enabled t0)
    f

let workload =
  lazy
    (let e = Option.get (Bench_suite.Registry.find "crc32") in
     Core.Workload.make ~name:e.name ~expected_output:(e.reference ())
       (e.build ()))

(* ---- metrics registry ---- *)

let test_counter_gating () =
  with_collection ~metrics:false ~trace:false (fun () ->
      let reg = Obs.Metrics.create () in
      let c = Obs.Metrics.counter ~registry:reg "t_gate_total" in
      Obs.Metrics.incr c;
      Obs.Metrics.add c 41;
      Alcotest.(check (option int))
        "disabled probes record nothing" (Some 0)
        (match Obs.Metrics.find ~registry:reg "t_gate_total" with
        | Some (Obs.Metrics.Counter n) -> Some n
        | _ -> None);
      Obs.Metrics.set_enabled true;
      Obs.Metrics.incr c;
      Obs.Metrics.add c 41;
      Alcotest.(check (option int))
        "enabled probes record" (Some 42)
        (match Obs.Metrics.find ~registry:reg "t_gate_total" with
        | Some (Obs.Metrics.Counter n) -> Some n
        | _ -> None))

let test_registration_idempotent () =
  let reg = Obs.Metrics.create () in
  let a = Obs.Metrics.counter ~registry:reg "t_idem_total" in
  let b = Obs.Metrics.counter ~registry:reg "t_idem_total" in
  with_collection ~metrics:true ~trace:false (fun () ->
      Obs.Metrics.incr a;
      Obs.Metrics.incr b);
  (match Obs.Metrics.find ~registry:reg "t_idem_total" with
  | Some (Obs.Metrics.Counter n) ->
      Alcotest.(check int) "same handle, one series" 2 n
  | _ -> Alcotest.fail "counter not found");
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument
       "Obs.Metrics: t_idem_total already registered with another kind")
    (fun () -> ignore (Obs.Metrics.gauge ~registry:reg "t_idem_total"))

let test_labels_are_distinct_series () =
  let reg = Obs.Metrics.create () in
  let a = Obs.Metrics.counter ~registry:reg ~labels:[ ("k", "a") ] "t_lbl" in
  let b = Obs.Metrics.counter ~registry:reg ~labels:[ ("k", "b") ] "t_lbl" in
  with_collection ~metrics:true ~trace:false (fun () ->
      Obs.Metrics.incr a;
      Obs.Metrics.add b 2);
  let v lbl =
    match Obs.Metrics.find ~registry:reg ~labels:[ ("k", lbl) ] "t_lbl" with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> -1
  in
  Alcotest.(check int) "series a" 1 (v "a");
  Alcotest.(check int) "series b" 2 (v "b")

(* ---- histogram merge: associativity/commutativity (qcheck) ---- *)

let bounds = [| 1.0; 10.0; 100.0 |]

let hvalue_gen =
  (* Integer-valued sums keep float addition exact, so merge equality
     can be checked exactly. *)
  QCheck.Gen.map2
    (fun counts sum ->
      { Obs.Metrics.le = bounds; counts; sum = float_of_int sum })
    QCheck.Gen.(array_size (return 4) (int_range 0 1000))
    (QCheck.Gen.int_range 0 100_000)

let pp_hvalue (h : Obs.Metrics.hvalue) =
  Printf.sprintf "{counts=[%s]; sum=%g}"
    (String.concat ";" (Array.to_list (Array.map string_of_int h.counts)))
    h.sum

let hvalue_eq (a : Obs.Metrics.hvalue) (b : Obs.Metrics.hvalue) =
  a.le = b.le && a.counts = b.counts && a.sum = b.sum

let prop_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative and commutative"
    ~count:200
    (QCheck.make
       QCheck.Gen.(triple hvalue_gen hvalue_gen hvalue_gen)
       ~print:(fun (a, b, c) ->
         String.concat " " [ pp_hvalue a; pp_hvalue b; pp_hvalue c ]))
    (fun (a, b, c) ->
      let open Obs.Metrics in
      hvalue_eq (merge_hvalue (merge_hvalue a b) c)
        (merge_hvalue a (merge_hvalue b c))
      && hvalue_eq (merge_hvalue a b) (merge_hvalue b a)
      && hvalue_total (merge_hvalue a b) = hvalue_total a + hvalue_total b)

let test_merge_bucket_mismatch () =
  let h1 = { Obs.Metrics.le = bounds; counts = [| 0; 0; 0; 0 |]; sum = 0. } in
  let h2 =
    { Obs.Metrics.le = [| 5.0 |]; counts = [| 0; 0 |]; sum = 0. }
  in
  Alcotest.check_raises "bucket mismatch rejected"
    (Invalid_argument "Obs.Metrics.merge_hvalue: bucket mismatch") (fun () ->
      ignore (Obs.Metrics.merge_hvalue h1 h2))

(* ---- snapshot determinism: 1 domain vs 4 domains ---- *)

let record_spread ~domains =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg "t_spread_total" in
  let h =
    Obs.Metrics.histogram ~registry:reg ~buckets:[| 50.0; 200.0 |] "t_spread_h"
  in
  let total = 400 in
  let work lo hi =
    for i = lo to hi - 1 do
      Obs.Metrics.incr c;
      Obs.Metrics.observe h (float_of_int i)
    done
  in
  let chunk = total / domains in
  let spawned =
    List.init (domains - 1) (fun k ->
        let lo = (k + 1) * chunk in
        let hi = if k = domains - 2 then total else lo + chunk in
        Domain.spawn (fun () -> work lo hi))
  in
  work 0 chunk;
  List.iter Domain.join spawned;
  Obs.Metrics.snapshot ~registry:reg ()

let test_snapshot_domain_independent () =
  with_collection ~metrics:true ~trace:false (fun () ->
      let s1 = record_spread ~domains:1 in
      let s4 = record_spread ~domains:4 in
      Alcotest.(check int) "same sample count" (List.length s1)
        (List.length s4);
      List.iter2
        (fun (a : Obs.Metrics.sample) (b : Obs.Metrics.sample) ->
          Alcotest.(check string) "sample name" a.name b.name;
          match (a.value, b.value) with
          | Obs.Metrics.Counter x, Obs.Metrics.Counter y ->
              Alcotest.(check int) "counter value" x y
          | Obs.Metrics.Histogram x, Obs.Metrics.Histogram y ->
              (* Observations are integer-valued, so the sums are exact
                 and must match bit-for-bit across distributions. *)
              Alcotest.(check bool) "histogram value" true (hvalue_eq x y)
          | _ -> Alcotest.fail "sample kind mismatch")
        s1 s4;
      (* Rendering snapshots is deterministic too. *)
      Alcotest.(check string) "rendered dump identical"
        (Obs.Metrics.render s1) (Obs.Metrics.render s4))

let test_render_shape () =
  with_collection ~metrics:true ~trace:false (fun () ->
      let reg = Obs.Metrics.create () in
      let c = Obs.Metrics.counter ~registry:reg ~labels:[ ("kind", "x\"y") ]
          "t_render_total"
      in
      let h = Obs.Metrics.histogram ~registry:reg ~buckets:[| 1.0 |] "t_r_h" in
      let g = Obs.Metrics.gauge ~registry:reg "t_r_gauge" in
      Obs.Metrics.incr c;
      Obs.Metrics.observe h 0.5;
      Obs.Metrics.observe h 2.0;
      Obs.Metrics.set g 1.5;
      let text = Obs.Metrics.render (Obs.Metrics.snapshot ~registry:reg ()) in
      List.iter
        (fun needle ->
          let found =
            let nl = String.length needle and tl = String.length text in
            let rec go i =
              i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) ("dump contains " ^ needle) true found)
        [
          "# TYPE t_r_h histogram";
          "t_r_h_bucket{le=\"1\"} 1";
          "t_r_h_bucket{le=\"+Inf\"} 2";
          "t_r_h_sum 2.5";
          "t_r_h_count 2";
          "# TYPE t_r_gauge gauge";
          "t_r_gauge 1.5";
          "t_render_total{kind=\"x\\\"y\"} 1";
        ])

(* ---- spans ---- *)

let test_span_nesting () =
  with_collection ~metrics:false ~trace:true (fun () ->
      Obs.Trace.clear ();
      Obs.Trace.with_span "outer" (fun () ->
          Obs.Trace.with_span "inner" (fun () -> ());
          (* The end event must be recorded on the exception path too. *)
          try Obs.Trace.with_span "raising" (fun () -> raise Exit)
          with Exit -> ());
      let evs = Obs.Trace.events () in
      Alcotest.(check int) "three spans, six events" 6 (List.length evs);
      Alcotest.(check bool) "well-formed" true (Obs.Trace.well_formed evs);
      let names = List.map (fun (e : Obs.Trace.event) -> e.name) evs in
      Alcotest.(check (list string)) "nesting order"
        [ "outer"; "inner"; "inner"; "raising"; "raising"; "outer" ]
        names;
      Obs.Trace.clear ();
      Alcotest.(check int) "clear empties the buffer" 0
        (List.length (Obs.Trace.events ())))

let test_span_well_formed_rejects () =
  let ev name ph = { Obs.Trace.name; ph; ts = 0.0; dom = 0 } in
  Alcotest.(check bool) "unmatched end" false
    (Obs.Trace.well_formed [ ev "a" 'E' ]);
  Alcotest.(check bool) "left open" false
    (Obs.Trace.well_formed [ ev "a" 'B' ]);
  Alcotest.(check bool) "crossed spans" false
    (Obs.Trace.well_formed [ ev "a" 'B'; ev "b" 'B'; ev "a" 'E'; ev "b" 'E' ]);
  Alcotest.(check bool) "interleaved domains fine" true
    (Obs.Trace.well_formed
       [
         { Obs.Trace.name = "a"; ph = 'B'; ts = 0.0; dom = 0 };
         { Obs.Trace.name = "b"; ph = 'B'; ts = 0.0; dom = 1 };
         { Obs.Trace.name = "a"; ph = 'E'; ts = 0.0; dom = 0 };
         { Obs.Trace.name = "b"; ph = 'E'; ts = 0.0; dom = 1 };
       ])

let test_span_disabled_is_free () =
  with_collection ~metrics:false ~trace:false (fun () ->
      Obs.Trace.clear ();
      Obs.Trace.with_span "ghost" (fun () -> ());
      Alcotest.(check int) "no events recorded" 0
        (List.length (Obs.Trace.events ())))

let test_span_json () =
  let e = { Obs.Trace.name = "a\"b"; ph = 'B'; ts = 1.5; dom = 3 } in
  Alcotest.(check string) "json escaping"
    "{\"name\":\"a\\\"b\",\"ph\":\"B\",\"ts\":1.500000,\"dom\":3}"
    (Obs.Trace.json_of_event e)

(* ---- campaign differential: collection must not change results ---- *)

let test_campaign_bit_identical () =
  let w = Lazy.force workload in
  let spec = Core.Spec.multi Core.Technique.Read ~max_mbf:3 ~win:(Fixed 10) in
  let run () = Core.Campaign.run w spec ~n:60 ~seed:5L in
  let r_off = with_collection ~metrics:false ~trace:false run in
  let r_on = with_collection ~metrics:true ~trace:true run in
  Alcotest.(check bool) "results bit-identical" true
    (Core.Campaign.equal_result r_off r_on);
  Alcotest.(check string) "CSV rows byte-identical" (Core.Csv.row r_off)
    (Core.Csv.row r_on)

let test_engine_campaign_bit_identical () =
  let w = Lazy.force workload in
  let spec = Core.Spec.multi Core.Technique.Write ~max_mbf:2 ~win:(Fixed 5) in
  let run () =
    Engine.run_campaign ~jobs:4 ~shard_size:16 w spec ~n:96 ~seed:9L
  in
  let r_off = with_collection ~metrics:false ~trace:false run in
  let r_on = with_collection ~metrics:true ~trace:false run in
  Alcotest.(check bool) "parallel results bit-identical" true
    (Core.Campaign.equal_result r_off r_on)

let test_vm_instruction_counter () =
  with_collection ~metrics:true ~trace:false (fun () ->
      let before =
        match Obs.Metrics.find "onebit_vm_instructions_total" with
        | Some (Obs.Metrics.Counter n) -> n
        | _ -> 0
      in
      let w = Lazy.force workload in
      let res = Vm.Exec.run ~budget:w.budget w.prog in
      let after =
        match Obs.Metrics.find "onebit_vm_instructions_total" with
        | Some (Obs.Metrics.Counter n) -> n
        | _ -> 0
      in
      Alcotest.(check int) "counter advances by dyn_count" res.dyn_count
        (after - before))

(* ---- unified snapshot ---- *)

let test_snapshot_add_count_read () =
  let d =
    {
      Obs.Snapshot.mem_hits = 1;
      dispatched = 2;
      shards_from_store = 3;
      shards_executed = 4;
      experiments_from_store = 5;
      experiments_executed = 6;
    }
  in
  Alcotest.(check bool) "zero is neutral" true
    (Obs.Snapshot.add Obs.Snapshot.zero d = d);
  with_collection ~metrics:true ~trace:false (fun () ->
      let before = Obs.Snapshot.read () in
      Obs.Snapshot.count d;
      let after = Obs.Snapshot.read () in
      Alcotest.(check bool) "count folds into the registry" true
        (Obs.Snapshot.add before d = after))

let test_snapshot_pp () =
  Alcotest.(check string) "legacy four-field rendering"
    "1 memory hit, 2 campaigns dispatched, 0 shards from store, 1 shard \
     executed"
    (Obs.Snapshot.pp
       {
         Obs.Snapshot.mem_hits = 1;
         dispatched = 2;
         shards_from_store = 0;
         shards_executed = 1;
         experiments_from_store = 0;
         experiments_executed = 0;
       });
  Alcotest.(check string) "experiment totals appended when nonzero"
    "0 memory hits, 0 campaigns dispatched, 2 shards from store, 1 shard \
     executed, 50 experiments from store, 25 experiments executed"
    (Obs.Snapshot.pp
       {
         Obs.Snapshot.mem_hits = 0;
         dispatched = 0;
         shards_from_store = 2;
         shards_executed = 1;
         experiments_from_store = 50;
         experiments_executed = 25;
       })

let test_runner_engine_unified () =
  (* The engine's run_stats and the runner's snapshot are literally the
     same record type now; field punning across them must typecheck and
     the engine stats must flow into the runner's view. *)
  let w = Lazy.force workload in
  let runner = Engine.runner ~n:48 ~seed:3L ~jobs:2 ~shard_size:16 () in
  let spec = Core.Spec.single Core.Technique.Read in
  let _ = Core.Runner.campaign runner w spec in
  let _ = Core.Runner.campaign runner w spec in
  let s = Core.Runner.snapshot runner in
  Alcotest.(check int) "one dispatch" 1 s.Obs.Snapshot.dispatched;
  Alcotest.(check int) "one memory hit" 1 s.Obs.Snapshot.mem_hits;
  Alcotest.(check int) "three shards executed" 3 s.Obs.Snapshot.shards_executed;
  let rs : Engine.run_stats = s in
  Alcotest.(check int) "same record type" 3 rs.shards_executed

(* ---- Core.Config ---- *)

let getenv_of alist name = List.assoc_opt name alist

let test_config_defaults () =
  let c = Core.Config.of_env ~getenv:(getenv_of []) () in
  Alcotest.(check bool) "empty env resolves to defaults" true
    (c = Core.Config.default)

let test_config_env_parsing () =
  let open Core.Config in
  let resolve alist = of_env ~getenv:(getenv_of alist) () in
  Alcotest.(check int) "N parses" 7 (resolve [ ("ONEBIT_N", "7") ]).n;
  Alcotest.(check int) "unparsable N falls back" 100
    (resolve [ ("ONEBIT_N", "many") ]).n;
  Alcotest.(check int64) "seed parses" 42L
    (resolve [ ("ONEBIT_SEED", "42") ]).seed;
  Alcotest.(check (option (list string))) "programs split on comma"
    (Some [ "a"; "b" ])
    (resolve [ ("ONEBIT_PROGRAMS", "a,b") ]).programs;
  Alcotest.(check int) "positive jobs literal" 3
    (resolve [ ("ONEBIT_JOBS", "3") ]).jobs;
  Alcotest.(check int) "jobs=0 means one per core"
    (Domain.recommended_domain_count ())
    (resolve [ ("ONEBIT_JOBS", "0") ]).jobs;
  Alcotest.(check int) "unparsable jobs means one per core"
    (Domain.recommended_domain_count ())
    (resolve [ ("ONEBIT_JOBS", "lots") ]).jobs;
  Alcotest.(check int) "unset jobs means sequential" 1 (resolve []).jobs;
  Alcotest.(check int) "non-positive shard ignored" 25
    (resolve [ ("ONEBIT_SHARD", "-4") ]).shard_size;
  Alcotest.(check (option string)) "empty store means none" None
    (resolve [ ("ONEBIT_STORE", "") ]).store;
  Alcotest.(check (option string)) "store path kept" (Some "/tmp/s")
    (resolve [ ("ONEBIT_STORE", "/tmp/s") ]).store;
  Alcotest.(check bool) "progress yes" true
    (resolve [ ("ONEBIT_PROGRESS", "yes") ]).progress;
  Alcotest.(check bool) "progress 0 is off" false
    (resolve [ ("ONEBIT_PROGRESS", "0") ]).progress;
  Alcotest.(check (option string)) "metrics sink" (Some "-")
    (resolve [ ("ONEBIT_METRICS", "-") ]).metrics;
  Alcotest.(check (option string)) "trace sink" (Some "/tmp/t.jsonl")
    (resolve [ ("ONEBIT_TRACE", "/tmp/t.jsonl") ]).trace

let test_config_override_precedence () =
  let open Core.Config in
  let env =
    of_env
      ~getenv:
        (getenv_of
           [ ("ONEBIT_N", "7"); ("ONEBIT_JOBS", "3"); ("ONEBIT_STORE", "/e") ])
      ()
  in
  let c = override ~n:9 ~store:"/flag" env in
  Alcotest.(check int) "flag beats env" 9 c.n;
  Alcotest.(check int) "env survives when no flag" 3 c.jobs;
  Alcotest.(check (option string)) "flag store beats env" (Some "/flag")
    c.store;
  let c = override ~jobs:0 env in
  Alcotest.(check int) "flag jobs=0 means one per core"
    (Domain.recommended_domain_count ())
    c.jobs;
  let c = override ~shard_size:(-1) env in
  Alcotest.(check int) "non-positive shard_size flag ignored"
    env.shard_size c.shard_size;
  Alcotest.(check int) "resolve_jobs literal" 5 (resolve_jobs 5);
  Alcotest.(check int) "resolve_jobs 0"
    (Domain.recommended_domain_count ())
    (resolve_jobs 0)

let test_deprecated_wrappers_follow_config () =
  (* The deprecated Engine wrappers are thin views over Core.Config's
     environment resolution; with a clean environment both sides must
     agree. *)
  let c = Core.Config.of_env () in
  Alcotest.(check int) "shard wrapper"
    c.Core.Config.shard_size
    ((fun () -> (Core.Config.of_env ()).Core.Config.shard_size) ());
  Alcotest.(check int) "jobs wrapper" c.Core.Config.jobs
    ((fun () -> (Core.Config.of_env ()).Core.Config.jobs) ())

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "counter gating" `Quick test_counter_gating;
        Alcotest.test_case "registration idempotent" `Quick
          test_registration_idempotent;
        Alcotest.test_case "labelled series distinct" `Quick
          test_labels_are_distinct_series;
        QCheck_alcotest.to_alcotest prop_merge_associative;
        Alcotest.test_case "merge bucket mismatch" `Quick
          test_merge_bucket_mismatch;
        Alcotest.test_case "snapshot independent of domain spread" `Quick
          test_snapshot_domain_independent;
        Alcotest.test_case "prometheus render shape" `Quick test_render_shape;
        Alcotest.test_case "span nesting well-formed" `Quick test_span_nesting;
        Alcotest.test_case "well_formed rejects bad streams" `Quick
          test_span_well_formed_rejects;
        Alcotest.test_case "disabled tracing records nothing" `Quick
          test_span_disabled_is_free;
        Alcotest.test_case "span json escaping" `Quick test_span_json;
        Alcotest.test_case "campaign bit-identical on/off" `Quick
          test_campaign_bit_identical;
        Alcotest.test_case "parallel campaign bit-identical on/off" `Quick
          test_engine_campaign_bit_identical;
        Alcotest.test_case "vm instruction counter exact" `Quick
          test_vm_instruction_counter;
        Alcotest.test_case "snapshot add/count/read" `Quick
          test_snapshot_add_count_read;
        Alcotest.test_case "snapshot pp" `Quick test_snapshot_pp;
        Alcotest.test_case "runner/engine stats unified" `Quick
          test_runner_engine_unified;
      ] );
    ( "config",
      [
        Alcotest.test_case "defaults" `Quick test_config_defaults;
        Alcotest.test_case "env parsing" `Quick test_config_env_parsing;
        Alcotest.test_case "override precedence" `Quick
          test_config_override_precedence;
        Alcotest.test_case "wrappers follow config" `Quick
          test_deprecated_wrappers_follow_config;
      ] );
  ]
