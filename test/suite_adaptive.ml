(* Tests for CI-targeted adaptive sequential sampling: the allocation
   state machine's invariants, the load-bearing prefix property (every
   adaptive result is byte-identical to the fixed-N campaign of its
   stopping N), store-backed resume after a mid-round kill, fleet
   adaptive == in-process adaptive, and the nn fixed-point inference
   workload's known answers. *)

module A = Engine.Adaptive
module Proto = Fleet.Proto
module Coord = Fleet.Coord

let mk_workload name =
  let e = Option.get (Bench_suite.Registry.find name) in
  Core.Workload.make ~name:e.name ~expected_output:(e.reference ())
    (e.build ())

let qsort = lazy (mk_workload "qsort")
let crc32 = lazy (mk_workload "crc32")

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "onebit-adaptive-test-%d-%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir d 0o755;
    d

let result_eq =
  Alcotest.testable
    (Fmt.of_to_string (fun (r : Core.Campaign.result) ->
         Printf.sprintf "<result n=%d sdc=%d>" r.n r.sdc))
    Core.Campaign.equal_result

(* ---- the allocation state machine ---- *)

(* Drive a controller against synthetic cells with fixed true SDC
   proportions: obs reports round(p * granted prefix). *)
let drive_synthetic ?round_budget ~target ~shard_size ~caps ~ps ~on_step () =
  let ctl = A.Control.create ?round_budget ~target ~shard_size caps in
  let obs i =
    let t = A.Control.closed_at ctl i in
    (t, int_of_float (Float.round (ps.(i) *. float_of_int t)))
  in
  let steps = ref 0 in
  while (not (A.Control.finished ctl)) && !steps < 10_000 do
    incr steps;
    let grants = A.Control.step ctl ~obs in
    on_step ctl grants
  done;
  Alcotest.(check bool) "terminates" true (A.Control.finished ctl);
  ctl

let test_control_closes_all () =
  let caps = [| 2000; 2000; 2000 |] and ps = [| 0.5; 0.9; 0.02 |] in
  let ctl =
    drive_synthetic ~target:0.05 ~shard_size:25 ~caps ~ps
      ~on_step:(fun _ _ -> ())
      ()
  in
  for i = 0 to 2 do
    Alcotest.(check bool) "closed" true (A.Control.closed ctl i);
    Alcotest.(check bool) "met" true (A.Control.met ctl i);
    Alcotest.(check bool) "hw at target" true
      (A.Control.half_width ctl i <= 0.05)
  done;
  (* Certainty orders the stopping points: the extreme proportion needs
     far fewer trials than the coin-flip cell. *)
  Alcotest.(check bool) "extreme p stops earlier" true
    (A.Control.closed_at ctl 2 < A.Control.closed_at ctl 0)

let test_control_cap_exhausts () =
  let ctl =
    drive_synthetic ~target:0.002 ~shard_size:25 ~caps:[| 100 |]
      ~ps:[| 0.5 |]
      ~on_step:(fun _ _ -> ())
      ()
  in
  Alcotest.(check bool) "closed" true (A.Control.closed ctl 0);
  Alcotest.(check bool) "not met" false (A.Control.met ctl 0);
  Alcotest.(check int) "ran to the cap" 100 (A.Control.closed_at ctl 0)

let prop_control_closing_monotone =
  (* Once a cell closes it stays closed, its stopping N never moves, and
     no later round grants it anything. *)
  QCheck.Test.make ~name:"control: closing is monotone" ~count:60
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 5)
           (pair (int_range 1 40) (int_range 0 100)))
        (int_range 1 20))
    (fun (cells, hw10) ->
      QCheck.assume (cells <> []);
      let caps = Array.of_list (List.map (fun (c, _) -> c * 50) cells) in
      let ps =
        Array.of_list (List.map (fun (_, p) -> float_of_int p /. 100.) cells)
      in
      let target = float_of_int hw10 /. 100. in
      let was_closed = Array.make (Array.length caps) false in
      let closed_at = Array.make (Array.length caps) (-1) in
      let ok = ref true in
      ignore
        (drive_synthetic ~target ~shard_size:25 ~caps ~ps
           ~on_step:(fun ctl grants ->
             List.iter
               (fun (i, _) -> if was_closed.(i) then ok := false)
               grants;
             Array.iteri
               (fun i was ->
                 let now = A.Control.closed ctl i in
                 if was && not now then ok := false;
                 if was && A.Control.closed_at ctl i <> closed_at.(i) then
                   ok := false;
                 if now && not was then begin
                   was_closed.(i) <- true;
                   closed_at.(i) <- A.Control.closed_at ctl i
                 end)
               was_closed)
           ());
      !ok)

let test_control_round_budget () =
  (* A tight round budget still terminates and still closes everything;
     it only spreads the grants over more rounds. *)
  let ctl_free =
    drive_synthetic ~target:0.05 ~shard_size:25 ~caps:[| 1000; 1000 |]
      ~ps:[| 0.4; 0.1 |]
      ~on_step:(fun _ _ -> ())
      ()
  in
  let budget_grants = ref 0 in
  let ctl_tight =
    drive_synthetic ~round_budget:50 ~target:0.05 ~shard_size:25
      ~caps:[| 1000; 1000 |] ~ps:[| 0.4; 0.1 |]
      ~on_step:(fun _ grants ->
        let exps =
          List.fold_left
            (fun a (_, rs) ->
              List.fold_left (fun a (lo, hi) -> a + hi - lo) a rs)
            0 grants
        in
        (* First round grants the per-cell initial batch to every open
           cell; after that the budget caps each round at two shards. *)
        if !budget_grants > 0 then
          Alcotest.(check bool) "round within budget" true (exps <= 50);
        incr budget_grants)
      ()
  in
  Alcotest.(check bool) "more rounds under budget" true
    (A.Control.rounds ctl_tight >= A.Control.rounds ctl_free);
  for i = 0 to 1 do
    Alcotest.(check bool) "met" true (A.Control.met ctl_tight i)
  done

(* ---- prefix identity on real and random programs ---- *)

let check_prefix_identity w spec ~cap ~target ~seed =
  let cells = [ { A.c_workload = w; c_spec = spec; c_cap = cap; c_seed = seed } ] in
  let results, stats = A.run_grid ~jobs:1 ~shard_size:10 ~target cells in
  let cr = List.hd results in
  let fixed =
    Engine.run_campaign ~jobs:1 w spec ~n:cr.A.r_closed_at ~seed
  in
  Alcotest.check result_eq "adaptive == fixed-N prefix" fixed cr.A.r_result;
  Alcotest.(check int) "saved = cap - closed_at"
    (cap - cr.A.r_closed_at) stats.A.g_saved;
  cr

let test_prefix_identity_qsort () =
  let w = Lazy.force qsort in
  let cr =
    check_prefix_identity w
      (Core.Spec.single Core.Technique.Read)
      ~cap:400 ~target:0.06 ~seed:20170626L
  in
  Alcotest.(check bool) "stopped before the cap" true (cr.A.r_closed_at < 400);
  Alcotest.(check bool) "met" true cr.A.r_met

let prop_prefix_identity_random_programs =
  QCheck.Test.make
    ~name:"adaptive result == fixed-N prefix on random programs" ~count:15
    (QCheck.make Suite_differential.case_gen)
    (fun (ops, seeds) ->
      let seeds = if seeds = [] then [ 1L ] else seeds in
      let ops = Suite_differential.sanitize ops seeds in
      let m = Suite_differential.build_program ops seeds in
      let expected = Suite_differential.expected_output ops seeds in
      let w = Core.Workload.make ~name:"adaptive-rand" ~expected_output:expected m in
      let spec = Core.Spec.single Core.Technique.Read in
      let cells =
        [ { A.c_workload = w; c_spec = spec; c_cap = 120; c_seed = 99L } ]
      in
      let results, _ = A.run_grid ~jobs:1 ~shard_size:10 ~target:0.12 cells in
      let cr = List.hd results in
      let fixed =
        Engine.run_campaign ~jobs:1 w spec ~n:cr.A.r_closed_at ~seed:99L
      in
      Core.Campaign.equal_result fixed cr.A.r_result)

(* ---- store-backed resume ---- *)

let test_resume_mid_round () =
  let w = Lazy.force qsort in
  let spec = Core.Spec.single Core.Technique.Read in
  let cap = 300 and target = 0.06 and seed = 20170626L in
  let cells = [ { A.c_workload = w; c_spec = spec; c_cap = cap; c_seed = seed } ] in
  let baseline, _ = A.run_grid ~jobs:1 ~shard_size:25 ~target cells in
  let baseline = List.hd baseline in
  (* A run killed mid-round leaves a strict prefix of completed shards
     in the store, keyed by the cap.  Fabricate exactly that. *)
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  List.iter
    (fun (lo, hi) ->
      let shard = Core.Campaign.run_shard w spec ~seed ~lo ~hi in
      Store.add st
        (Store.key ~program:w.Core.Workload.name ~digest:w.Core.Workload.digest
           ~spec ~n:cap ~seed ~lo ~hi)
        shard)
    [ (0, 25); (25, 50); (50, 75) ];
  let resumed, stats = A.run_grid ~jobs:1 ~shard_size:25 ~store:st ~target cells in
  let resumed = List.hd resumed in
  Alcotest.check result_eq "resumed == uninterrupted" baseline.A.r_result
    resumed.A.r_result;
  Alcotest.(check int) "same stopping N" baseline.A.r_closed_at
    resumed.A.r_closed_at;
  Alcotest.(check bool) "partial work reused" true (stats.A.g_from_store > 0);
  Alcotest.(check int) "prefix covers the grants"
    resumed.A.r_closed_at
    (stats.A.g_executed + stats.A.g_from_store);
  (* Second resume: the store now holds the whole schedule, so nothing
     executes and the result is still identical. *)
  let again, stats2 = A.run_grid ~jobs:1 ~shard_size:25 ~store:st ~target cells in
  Alcotest.check result_eq "replay == uninterrupted" baseline.A.r_result
    (List.hd again).A.r_result;
  Alcotest.(check int) "replay runs nothing" 0 stats2.A.g_executed;
  Store.close st;
  (* The adaptive records are a prefix-compatible subset of a fixed-N(cap)
     run's: a fixed-N campaign over the same store recomputes nothing it
     already holds and completes the remainder. *)
  let st = Store.open_dir dir in
  let full = Engine.run_campaign ~jobs:1 ~store:st w spec ~n:cap ~seed in
  Store.close st;
  Alcotest.check result_eq "store merges into the fixed-N run"
    (Engine.run_campaign ~jobs:1 w spec ~n:cap ~seed)
    full

(* ---- fleet adaptive == in-process adaptive ---- *)

let drive_fleet ~workers ~shard_size ~ci_target w spec ~cap ~seed =
  let cell =
    {
      Proto.c_program = w.Core.Workload.name;
      c_digest = w.Core.Workload.digest;
      c_spec = spec;
      c_n = cap;
      c_seed = seed;
    }
  in
  let c =
    Coord.create ~ttl:10. ~shard_size ~ci_target ~cells:[ cell ] ()
  in
  let now = ref 0. in
  let rec drive () =
    if not (Coord.finished c) then begin
      let grants = ref [] in
      List.iter
        (fun wk ->
          let rec go () =
            now := !now +. 0.01;
            match
              Coord.handle c ~now:!now ~conn:wk
                (Proto.Lease { worker = "w" ^ string_of_int wk })
            with
            | Proto.Grant { task; _ } ->
                grants := (wk, task) :: !grants;
                go ()
            | Proto.Wait _ | Proto.Done -> ()
            | m -> Alcotest.fail (Proto.to_line m)
          in
          go ())
        (List.init workers (fun i -> i + 1));
      List.iter
        (fun (wk, (task : Proto.task)) ->
          let shard =
            Core.Campaign.run_shard w spec ~seed ~lo:task.t_lo ~hi:task.t_hi
          in
          now := !now +. 0.01;
          ignore
            (Coord.handle c ~now:!now ~conn:wk
               (Proto.Complete
                  { worker = "w" ^ string_of_int wk; task = task.t_id; shard })))
        (List.rev !grants);
      drive ()
    end
  in
  drive ();
  c

let test_fleet_matches_inprocess () =
  let w = Lazy.force crc32 in
  let spec = Core.Spec.single Core.Technique.Read in
  let cap = 400 and target = 0.06 and seed = 20170626L in
  let results, _ =
    A.run_grid ~jobs:1 ~shard_size:25 ~target
      [ { A.c_workload = w; c_spec = spec; c_cap = cap; c_seed = seed } ]
  in
  let inproc = List.hd results in
  List.iter
    (fun workers ->
      let c =
        drive_fleet ~workers ~shard_size:25 ~ci_target:target w spec ~cap ~seed
      in
      let _, fleet_r = List.hd (Coord.results c) in
      Alcotest.check result_eq
        (Printf.sprintf "fleet(%d workers) == in-process" workers)
        inproc.A.r_result fleet_r;
      match Coord.adaptive_summary c with
      | Some [ (_, closed_at, met) ] ->
          Alcotest.(check int) "summary closed_at" inproc.A.r_closed_at
            closed_at;
          Alcotest.(check bool) "summary met" inproc.A.r_met met
      | _ -> Alcotest.fail "expected a one-cell adaptive summary")
    [ 1; 3 ]

let test_fleet_state_reports_adaptive () =
  let w = Lazy.force crc32 in
  let spec = Core.Spec.single Core.Technique.Read in
  let c =
    drive_fleet ~workers:2 ~shard_size:25 ~ci_target:0.06 w spec ~cap:400
      ~seed:20170626L
  in
  let s = Coord.state c ~now:1000. in
  Alcotest.(check bool) "adaptive flag" true s.Proto.st_adaptive;
  Alcotest.(check bool) "rounds counted" true (s.Proto.st_rounds > 0);
  Alcotest.(check int) "no open cells at the end" 0 s.Proto.st_open;
  Alcotest.(check bool) "finished" true s.Proto.st_finished

(* ---- the nn fixed-point inference workload ---- *)

let test_nn_known_answers () =
  List.iter
    (fun (name, labels) ->
      let e = Option.get (Bench_suite.Registry.find name) in
      (* Workload.make re-runs the golden execution and insists the VM
         output equal the OCaml reference byte for byte. *)
      let w =
        Core.Workload.make ~name:e.name ~expected_output:(e.reference ())
          (e.build ())
      in
      let preds = Bench_suite.Nn.predictions w.Core.Workload.golden.output in
      Alcotest.(check (list int))
        (name ^ " classifies its inputs")
        labels preds)
    [ ("nn", Bench_suite.Nn.labels); ("nn-large", Bench_suite.Nn.labels_large) ]

let test_nn_largest_arena () =
  let arena_bytes (e : Bench_suite.Desc.t) =
    let p = Vm.Program.load (e.build ()) in
    List.fold_left (fun a (_, _, sz) -> a + sz) 0 p.Vm.Program.globals
  in
  let nn = Option.get (Bench_suite.Registry.find "nn") in
  let nn_bytes = arena_bytes nn in
  List.iter
    (fun (e : Bench_suite.Desc.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "nn arena (%d) > %s" nn_bytes e.name)
        true
        (nn_bytes > arena_bytes e))
    (Bench_suite.Registry.all @ Bench_suite.Registry.large)

let test_nn_all_domains_injectable () =
  let w = mk_workload "nn" in
  List.iter
    (fun domain ->
      let spec = Core.Spec.single ~domain Core.Technique.Read in
      let r = Core.Campaign.run w spec ~n:10 ~seed:7L in
      Alcotest.(check int)
        (Core.Domain.to_string domain ^ " outcomes account for every run")
        10
        (r.benign + r.detected + r.hang + r.no_output + r.sdc))
    [ Core.Domain.Reg; Core.Domain.Mem; Core.Domain.Code ]

let suites =
  [
    ( "adaptive",
      [
        Alcotest.test_case "control closes all cells" `Quick
          test_control_closes_all;
        Alcotest.test_case "control cap exhaustion" `Quick
          test_control_cap_exhausts;
        QCheck_alcotest.to_alcotest prop_control_closing_monotone;
        Alcotest.test_case "control round budget" `Quick
          test_control_round_budget;
        Alcotest.test_case "prefix identity (qsort)" `Slow
          test_prefix_identity_qsort;
        QCheck_alcotest.to_alcotest prop_prefix_identity_random_programs;
        Alcotest.test_case "resume after mid-round kill" `Slow
          test_resume_mid_round;
        Alcotest.test_case "fleet == in-process" `Slow
          test_fleet_matches_inprocess;
        Alcotest.test_case "fleet state reports adaptive" `Slow
          test_fleet_state_reports_adaptive;
      ] );
    ( "nn workload",
      [
        Alcotest.test_case "known answers" `Quick test_nn_known_answers;
        Alcotest.test_case "largest arena in the suite" `Quick
          test_nn_largest_arena;
        Alcotest.test_case "all domains injectable" `Slow
          test_nn_all_domains_injectable;
      ] );
  ]
