(* End-to-end semantics tests for the VM: arithmetic, memory, traps,
   control flow, calls, candidate counting and fault hooks. *)

module B = Ir.Build

let run = Thelpers.run_main
let check_status = Alcotest.check Thelpers.status_testable

let test_arith_loop () =
  let r =
    run (fun f ->
        let acc = B.local_init f I32 (B.ci 0) in
        B.for_ f ~from_:(B.ci 0) ~below:(B.ci 100) (fun i ->
            B.set f acc (B.add f I32 (B.r acc) i));
        B.output f I32 (B.r acc))
  in
  check_status "finished" Finished r.status;
  Alcotest.(check string) "sum 0..99" (Thelpers.le32 4950) r.output

let test_signed_unsigned_ops () =
  let r =
    run (fun f ->
        (* -7 sdiv 2 = -3 (truncation); masked to 32 bits *)
        let a = B.sdiv f I32 (B.ci (-7)) (B.ci 2) in
        B.output f I32 a;
        (* 0xFFFFFFF9 udiv 2 = 0x7FFFFFFC *)
        let b = B.udiv f I32 (B.ci (-7)) (B.ci 2) in
        B.output f I32 b;
        (* -7 srem 2 = -1 *)
        let c = B.srem f I32 (B.ci (-7)) (B.ci 2) in
        B.output f I32 c;
        (* shifts *)
        let d = B.shl f I32 (B.ci 1) (B.ci 31) in
        B.output f I32 d;
        let e = B.ashr f I32 d (B.ci 31) in
        B.output f I32 e;
        let g = B.lshr f I32 d (B.ci 31) in
        B.output f I32 g)
  in
  check_status "finished" Finished r.status;
  let expect =
    String.concat ""
      (List.map Thelpers.le32 [ -3; 0x7FFFFFFC; -1; 0x80000000; -1; 1 ])
  in
  Alcotest.(check string) "values" expect r.output

let test_icmp_semantics () =
  let r =
    run (fun f ->
        (* 0xFFFFFFFF is -1 signed but big unsigned *)
        let big = B.ci 0xFFFFFFFF in
        let slt = B.slt f I32 big (B.ci 0) in
        B.output f I1 slt;
        let ult = B.ult f I32 big (B.ci 0) in
        B.output f I1 ult;
        let uge = B.uge f I32 big (B.ci 1) in
        B.output f I1 uge)
  in
  Alcotest.(check string) "slt=1 ult=0 uge=1" "\001\000\001" r.output

let test_float_ops_and_builtins () =
  let r =
    run (fun f ->
        let x = B.fadd f (B.cf 1.5) (B.cf 2.25) in
        B.output f F64 x;
        let s = B.call1 f "sqrt" [ B.cf 2.0 ] in
        B.output f F64 s;
        let c = B.fmul f (B.cf 3.0) (B.call1 f "cos" [ B.cf 0.0 ]) in
        B.output f F64 c)
  in
  check_status "finished" Finished r.status;
  let expect =
    Thelpers.le64_of_float 3.75
    ^ Thelpers.le64_of_float (sqrt 2.0)
    ^ Thelpers.le64_of_float 3.0
  in
  Alcotest.(check string) "float stream" expect r.output

let test_memory_roundtrip () =
  let m = B.create () in
  B.global_i32s m "data" [| 10; 20; 30; 40 |];
  B.global_zeros m "scratch" 64;
  B.func m "main" ~params:[] ~ret:None (fun f ->
      (* copy data reversed into scratch, then output scratch *)
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 4) (fun i ->
          let src = B.gep f ~base:(B.glob "data") ~index:i ~scale:4 in
          let v = B.load f I32 src in
          let ri = B.sub f I32 (B.ci 3) i in
          let dst = B.gep f ~base:(B.glob "scratch") ~index:ri ~scale:4 in
          B.store f I32 ~value:v ~addr:dst);
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 4) (fun i ->
          let p = B.gep f ~base:(B.glob "scratch") ~index:i ~scale:4 in
          B.output f I32 (B.load f I32 p)));
  let prog = Vm.Program.load (B.finish m) in
  let r = Vm.Exec.run ~budget:100000 prog in
  check_status "finished" Finished r.status;
  let expect = String.concat "" (List.map Thelpers.le32 [ 40; 30; 20; 10 ]) in
  Alcotest.(check string) "reversed" expect r.output

let test_byte_and_halfword_access () =
  let m = B.create () in
  B.global_u8s m "bytes" [| 0xAB; 0x01; 0xFF; 0x7F |];
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 4) (fun i ->
          let p = B.gep f ~base:(B.glob "bytes") ~index:i ~scale:1 in
          B.output f I8 (B.load f I8 p));
      let h = B.load f I16 (B.glob "bytes") in
      B.output f I16 h);
  let prog = Vm.Program.load (B.finish m) in
  let r = Vm.Exec.run ~budget:100000 prog in
  Alcotest.(check string) "bytes then halfword" "\xAB\x01\xFF\x7F\xAB\x01" r.output

let test_segfault_null () =
  let r = run (fun f -> ignore (B.load f I32 (B.ci 0))) in
  check_status "segfault" (Trapped Segfault) r.status

let test_segfault_guard_gap () =
  let m = B.create () in
  B.global_i32s m "a" [| 1 |];
  B.func m "main" ~params:[] ~ret:None (fun f ->
      (* read past the end of the global, into the guard gap *)
      let p = B.off f (B.glob "a") 8 in
      ignore (B.load f I32 p));
  let prog = Vm.Program.load (B.finish m) in
  let r = Vm.Exec.run ~budget:1000 prog in
  check_status "segfault" (Trapped Segfault) r.status

let test_segfault_out_of_arena () =
  let r = run (fun f -> ignore (B.load f I32 (B.ci 0x7FFFFFF0))) in
  check_status "segfault" (Trapped Segfault) r.status

let test_misaligned () =
  let m = B.create () in
  B.global_i32s m "a" [| 1; 2 |];
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let p = B.off f (B.glob "a") 2 in
      ignore (B.load f I32 p));
  let prog = Vm.Program.load (B.finish m) in
  let r = Vm.Exec.run ~budget:1000 prog in
  check_status "misaligned" (Trapped Misaligned) r.status

let test_div_by_zero () =
  let r =
    run (fun f ->
        let z = B.local_init f I32 (B.ci 0) in
        ignore (B.sdiv f I32 (B.ci 5) (B.r z)))
  in
  check_status "div by zero" (Trapped Div_by_zero) r.status

let test_abort () =
  let r = run (fun f -> B.abort_ f) in
  check_status "abort" (Trapped Abort_called) r.status

let test_hang_budget () =
  let r =
    run ~budget:1000 (fun f ->
        B.while_ f ~cond:(fun () -> B.eq f I32 (B.ci 0) (B.ci 0)) ~body:(fun () -> ()))
  in
  check_status "hung" Hung r.status;
  Alcotest.(check bool) "stopped near budget" true (r.dyn_count <= 1001)

let test_recursion_and_stack_overflow () =
  (* fib via recursion *)
  let m = B.create () in
  B.func m "fib" ~params:[ I32 ] ~ret:(Some I32) (fun f ->
      let n = B.param f 0 in
      B.if_ f
        (B.slt f I32 n (B.ci 2))
        ~then_:(fun () -> B.ret f (Some n))
        ~else_:(fun () ->
          let a = B.call1 f "fib" [ B.sub f I32 n (B.ci 1) ] in
          let b = B.call1 f "fib" [ B.sub f I32 n (B.ci 2) ] in
          B.ret f (Some (B.add f I32 a b))));
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.output f I32 (B.call1 f "fib" [ B.ci 15 ]));
  let prog = Vm.Program.load (B.finish m) in
  let r = Vm.Exec.run ~budget:1_000_000 prog in
  check_status "finished" Finished r.status;
  Alcotest.(check string) "fib 15" (Thelpers.le32 610) r.output;
  (* unbounded recursion traps *)
  let m2 = B.create () in
  B.func m2 "inf" ~params:[ I32 ] ~ret:(Some I32) (fun f ->
      B.ret f (Some (B.call1 f "inf" [ B.param f 0 ])));
  B.func m2 "main" ~params:[] ~ret:None (fun f ->
      ignore (B.call1 f "inf" [ B.ci 0 ]));
  let prog2 = Vm.Program.load (B.finish m2) in
  let r2 = Vm.Exec.run ~budget:1_000_000 prog2 in
  check_status "stack overflow" (Trapped Stack_overflow) r2.status

let test_select_and_casts () =
  let r =
    run (fun f ->
        let c = B.sgt f I32 (B.ci 5) (B.ci 3) in
        let v = B.select f I32 ~cond:c (B.ci 111) (B.ci 222) in
        B.output f I32 v;
        let t = B.cast f Trunc ~from_ty:I32 ~to_ty:I8 (B.ci 0x1FF) in
        B.output f I8 t;
        let sx = B.cast f Sext ~from_ty:I8 ~to_ty:I32 (B.ci 0x80) in
        B.output f I32 sx;
        let zx = B.cast f Zext ~from_ty:I8 ~to_ty:I32 (B.ci 0x80) in
        B.output f I32 zx;
        let fi = B.cast f Fptosi ~from_ty:F64 ~to_ty:I32 (B.cf (-3.9)) in
        B.output f I32 fi;
        let if_ = B.cast f Sitofp ~from_ty:I32 ~to_ty:F64 (B.ci (-5)) in
        B.output f F64 if_)
  in
  let expect =
    Thelpers.le32 111 ^ "\xFF" ^ Thelpers.le32 (-128) ^ Thelpers.le32 0x80
    ^ Thelpers.le32 (-3)
    ^ Thelpers.le64_of_float (-5.0)
  in
  Alcotest.(check string) "select/cast stream" expect r.output

let test_candidate_counts () =
  (* mov imm -> write candidate only; output reg -> read candidate only *)
  let r =
    run (fun f ->
        let a = B.local_init f I32 (B.ci 1) in
        (* Mov imm: write candidate *)
        let b = B.add f I32 (B.r a) (B.ci 2) in
        (* add: read+write *)
        B.output f I32 b (* output: read only *))
  in
  (* dyn: mov, add, output, ret = 4 *)
  Alcotest.(check int) "dyn" 4 r.dyn_count;
  Alcotest.(check int) "read cands" 2 r.read_cands;
  Alcotest.(check int) "write cands" 2 r.write_cands

let test_hooks_fire_and_flip () =
  (* flip bit 1 of the source of the output instruction: 1 -> 3 *)
  let m = B.create () in
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let a = B.local_init f I32 (B.ci 1) in
      B.output f I32 (B.r a));
  let prog = Vm.Program.load (B.finish m) in
  let fired = ref 0 in
  let hooks =
    {
      Vm.Exec.pre =
        (fun ~dyn:_ frame (m : Vm.Meta.t) ->
          incr fired;
          let reg = m.srcs.(0) in
          frame.ints.(reg) <- Ir.Bits.flip I32 ~bit:1 frame.ints.(reg));
      post = (fun ~dyn:_ _ _ -> ());
      at = Vm.Exec.no_hook;
    }
  in
  let r = Vm.Exec.run ~hooks ~budget:1000 prog in
  Alcotest.(check int) "pre fired once (output only)" 1 !fired;
  Alcotest.(check string) "flipped output" (Thelpers.le32 3) r.output

let test_post_hook_flips_dst () =
  let m = B.create () in
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let a = B.add f I32 (B.ci 4) (B.ci 4) in
      B.output f I32 a);
  let prog = Vm.Program.load (B.finish m) in
  let hooks =
    {
      Vm.Exec.pre = (fun ~dyn:_ _ _ -> ());
      post =
        (fun ~dyn:_ frame (m : Vm.Meta.t) ->
          if m.dst >= 0 then
            frame.ints.(m.dst) <- Ir.Bits.flip I32 ~bit:0 frame.ints.(m.dst));
      at = Vm.Exec.no_hook;
    }
  in
  let r = Vm.Exec.run ~hooks ~budget:1000 prog in
  Alcotest.(check string) "8 -> 9" (Thelpers.le32 9) r.output

let test_determinism_across_runs () =
  let m = B.create () in
  B.global_i32s m "d" (Array.init 32 (fun i -> (i * 37) land 0xFF));
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let acc = B.local_init f I32 (B.ci 0) in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 32) (fun i ->
          let p = B.gep f ~base:(B.glob "d") ~index:i ~scale:4 in
          B.set f acc (B.bxor f I32 (B.r acc) (B.load f I32 p)));
      B.output f I32 (B.r acc));
  let prog = Vm.Program.load (B.finish m) in
  let r1 = Vm.Exec.run ~budget:100000 prog in
  let r2 = Vm.Exec.run ~budget:100000 prog in
  Alcotest.(check string) "same output" r1.output r2.output;
  Alcotest.(check int) "same dyn count" r1.dyn_count r2.dyn_count;
  (* memory template is untouched by runs *)
  let r3 = Vm.Exec.run ~budget:100000 prog in
  Alcotest.(check string) "template unpolluted" r1.output r3.output

let test_memory_isolated_between_runs () =
  let m = B.create () in
  B.global_i32s m "cell" [| 5 |];
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let v = B.load f I32 (B.glob "cell") in
      B.output f I32 v;
      B.store f I32 ~value:(B.add f I32 v (B.ci 1)) ~addr:(B.glob "cell"));
  let prog = Vm.Program.load (B.finish m) in
  let r1 = Vm.Exec.run ~budget:1000 prog in
  let r2 = Vm.Exec.run ~budget:1000 prog in
  Alcotest.(check string) "both runs see 5" (r1.output : string) r2.output

let test_global_addr_lookup () =
  let m = B.create () in
  B.global_i32s m "a" [| 1 |];
  B.global_i32s m "b" [| 2 |];
  B.func m "main" ~params:[] ~ret:None (fun f -> B.ret f None);
  let prog = Vm.Program.load (B.finish m) in
  let a = Vm.Program.global_addr prog "a" in
  let b = Vm.Program.global_addr prog "b" in
  Alcotest.(check bool) "a below b with guard gap" true (b - a >= 4 + 64);
  Alcotest.(check bool) "null page respected" true (a >= 4096);
  Alcotest.(check bool) "unknown raises" true
    (match Vm.Program.global_addr prog "zz" with
    | exception Not_found -> true
    | _ -> false)

let suites =
  [
    ( "vm",
      [
        Alcotest.test_case "arith loop" `Quick test_arith_loop;
        Alcotest.test_case "signed/unsigned ops" `Quick test_signed_unsigned_ops;
        Alcotest.test_case "icmp semantics" `Quick test_icmp_semantics;
        Alcotest.test_case "float ops and builtins" `Quick
          test_float_ops_and_builtins;
        Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
        Alcotest.test_case "byte/halfword access" `Quick
          test_byte_and_halfword_access;
        Alcotest.test_case "segfault: null" `Quick test_segfault_null;
        Alcotest.test_case "segfault: guard gap" `Quick test_segfault_guard_gap;
        Alcotest.test_case "segfault: out of arena" `Quick
          test_segfault_out_of_arena;
        Alcotest.test_case "misaligned" `Quick test_misaligned;
        Alcotest.test_case "div by zero" `Quick test_div_by_zero;
        Alcotest.test_case "abort" `Quick test_abort;
        Alcotest.test_case "hang budget" `Quick test_hang_budget;
        Alcotest.test_case "recursion + stack overflow" `Quick
          test_recursion_and_stack_overflow;
        Alcotest.test_case "select and casts" `Quick test_select_and_casts;
        Alcotest.test_case "candidate counts" `Quick test_candidate_counts;
        Alcotest.test_case "read hook flips" `Quick test_hooks_fire_and_flip;
        Alcotest.test_case "write hook flips" `Quick test_post_hook_flips_dst;
        Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
        Alcotest.test_case "memory isolation" `Quick
          test_memory_isolated_between_runs;
        Alcotest.test_case "global layout" `Quick test_global_addr_lookup;
      ] );
  ]
