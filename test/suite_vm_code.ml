(* Differential tests for the compiled execution pipeline (Vm.Code): the
   decode-once micro-op VM must be bit-identical to the seed interpreter
   (Vm.Exec) on golden runs, under fault injection, and across whole
   campaigns — same outputs, statuses, dynamic counts, candidate
   ordinals and injection logs. *)

let golden_equal name (a : Vm.Exec.result) (b : Vm.Exec.result) =
  Alcotest.(check bool) (name ^ " status") true (a.status = b.status);
  Alcotest.(check string) (name ^ " output") a.output b.output;
  Alcotest.(check int) (name ^ " dyn") a.dyn_count b.dyn_count;
  Alcotest.(check int) (name ^ " read cands") a.read_cands b.read_cands;
  Alcotest.(check int) (name ^ " write cands") a.write_cands b.write_cands

(* Every registry program (small and large inputs): golden runs, block
   profiles and packed site tables agree between backends. *)
let test_registry_golden () =
  List.iter
    (fun (d : Bench_suite.Desc.t) ->
      let p = Vm.Program.load (d.build ()) in
      let code = Vm.Code.compile p in
      let profile_of run =
        let profile =
          Array.map
            (fun (f : Vm.Program.lfunc) -> Array.make (Array.length f.blocks) 0)
            p.funcs
        in
        let block_hook ~fidx ~bidx =
          profile.(fidx).(bidx) <- profile.(fidx).(bidx) + 1
        in
        (run ~block_hook, profile)
      in
      let seed, sp =
        profile_of (fun ~block_hook ->
            Vm.Exec.run ~block_hook ~budget:Vm.Exec.golden_budget p)
      in
      let comp, cp =
        profile_of (fun ~block_hook ->
            Vm.Code.run ~block_hook ~budget:Vm.Exec.golden_budget code)
      in
      golden_equal d.name seed comp;
      Alcotest.(check bool) (d.name ^ " profile") true (sp = cp))
    (Bench_suite.Registry.all @ Bench_suite.Registry.large)

(* The packed per-block site tables must reproduce what a walk over the
   loaded program's metadata counts. *)
let test_site_tables () =
  let d = Option.get (Bench_suite.Registry.find "crc32") in
  let p = Vm.Program.load (d.build ()) in
  let code = Vm.Code.compile p in
  let reads = Vm.Code.site_reads code and writes = Vm.Code.site_writes code in
  Array.iteri
    (fun fidx (f : Vm.Program.lfunc) ->
      Array.iteri
        (fun bidx (b : Vm.Program.lblock) ->
          let r = ref 0 and w = ref 0 in
          Array.iter
            (fun (m : Vm.Meta.t) ->
              if Array.length m.srcs > 0 then incr r;
              if m.dst >= 0 then incr w)
            b.metas;
          Alcotest.(check int) "site reads" !r reads.(fidx).(bidx);
          Alcotest.(check int) "site writes" !w writes.(fidx).(bidx))
        f.blocks)
    p.funcs

(* Random straight-line programs (the generator of the seed-vs-evaluator
   differential suite) through both backends. *)
let prop_random_programs =
  QCheck.Test.make ~name:"compiled pipeline matches seed interpreter"
    ~count:300
    (QCheck.make Suite_differential.case_gen)
    (fun (ops, seeds) ->
      let seeds = if seeds = [] then [ 1L ] else seeds in
      let ops = Suite_differential.sanitize ops seeds in
      let m = Suite_differential.build_program ops seeds in
      let p = Vm.Program.load m in
      let seed = Vm.Exec.run ~budget:Vm.Exec.golden_budget p in
      let comp =
        Vm.Code.run ~budget:Vm.Exec.golden_budget (Vm.Code.compile p)
      in
      seed.status = comp.status
      && String.equal seed.output comp.output
      && seed.dyn_count = comp.dyn_count
      && seed.read_cands = comp.read_cands
      && seed.write_cands = comp.write_cands)

(* ---- fault-injection differential ---- *)

let injection_equal (a : Core.Injector.injection) (b : Core.Injector.injection)
    =
  a.inj_dyn = b.inj_dyn && a.inj_cand = b.inj_cand && a.inj_loc = b.inj_loc && Core.Domain.equal a.inj_domain b.inj_domain
  && a.inj_ty = b.inj_ty && a.inj_slot = b.inj_slot && a.inj_bit = b.inj_bit
  && a.inj_weight = b.inj_weight

let workload =
  lazy
    (let d = Option.get (Bench_suite.Registry.find "crc32") in
     Core.Workload.make ~name:d.name ~expected_output:(d.reference ())
       (d.build ()))

(* One experiment, same (spec, seed, index), run through hooks on the
   seed interpreter and through the event schedule on the compiled
   pipeline: runs and full injection logs must be bit-identical. *)
let check_experiment w spec ~spacing ~base i =
  let mk () =
    let cands = Core.Workload.candidates w spec in
    Core.Injector.create ~spec ~candidates:cands ~spacing
      (Prng.split_at base i)
  in
  let inj_s = mk () in
  let r_s =
    Vm.Exec.run
      ~hooks:(Core.Injector.hooks inj_s)
      ~budget:w.Core.Workload.budget w.prog
  in
  let inj_c = mk () in
  let r_c =
    Vm.Code.run
      ~events:(Core.Injector.events inj_c)
      ~budget:w.Core.Workload.budget w.code
  in
  let label = Printf.sprintf "%s #%d" (Core.Spec.label spec) i in
  golden_equal label r_s r_c;
  Alcotest.(check int)
    (label ^ " activated")
    (Core.Injector.activated inj_s)
    (Core.Injector.activated inj_c);
  let log_s = Core.Injector.injections inj_s
  and log_c = Core.Injector.injections inj_c in
  Alcotest.(check int) (label ^ " log length") (List.length log_s)
    (List.length log_c);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) (label ^ " injection") true (injection_equal a b))
    log_s log_c

let test_experiments_differential () =
  let w = Lazy.force workload in
  let base = Prng.of_seed 424242L in
  let specs =
    [
      Core.Spec.single Read;
      Core.Spec.single Write;
      Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 0);
      Core.Spec.multi Write ~max_mbf:3 ~win:(Fixed 0);
      Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 1);
      Core.Spec.multi Write ~max_mbf:3 ~win:(Fixed 1);
      Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 100);
      Core.Spec.multi Write ~max_mbf:3 ~win:(Fixed 100);
      Core.Spec.multi Read ~max_mbf:4 ~win:(Rnd (2, 50));
    ]
  in
  List.iter
    (fun spec ->
      List.iter
        (fun spacing ->
          for i = 0 to 14 do
            check_experiment w spec ~spacing ~base i
          done)
        [ `Faulty; `Golden ])
    specs

(* Whole campaigns through the backend switch: results (counters, trap
   breakdown, activation histogram, per-experiment records) must be
   equal. *)
let test_campaign_differential () =
  let w = Lazy.force workload in
  let saved = Core.Config.active_backend () in
  Fun.protect
    ~finally:(fun () -> Core.Config.set_backend saved)
    (fun () ->
      List.iter
        (fun spec ->
          let run b =
            Core.Config.set_backend b;
            Core.Campaign.run ~keep_experiments:true w spec ~n:60 ~seed:99L
          in
          let a = run Core.Config.Seed in
          let b = run Core.Config.Compiled in
          Alcotest.(check bool)
            (Core.Spec.label spec ^ " campaign equal")
            true
            (Core.Campaign.equal_result a b))
        [
          Core.Spec.single Read;
          Core.Spec.multi Write ~max_mbf:3 ~win:(Fixed 10);
          Core.Spec.multi Read ~max_mbf:5 ~win:(Rnd (2, 10));
        ])

(* ---- decode cache ---- *)

let test_decode_cache () =
  let d = Option.get (Bench_suite.Registry.find "fft") in
  let m = d.build () in
  let digest = Digest.to_hex (Digest.string (Ir.Pp.modl m)) in
  let decodes0, hits0 = Vm.Code.cache_stats () in
  let c1 = Vm.Code.compile ~digest (Vm.Program.load m) in
  let c2 = Vm.Code.compile ~digest (Vm.Program.load (d.build ())) in
  let decodes1, hits1 = Vm.Code.cache_stats () in
  Alcotest.(check bool) "cache returns same code" true (c1 == c2);
  Alcotest.(check bool) "at most one decode" true (decodes1 <= decodes0 + 1);
  Alcotest.(check bool) "at least one hit" true (hits1 >= hits0 + 1);
  (* uncached compiles always decode *)
  let p = Vm.Program.load m in
  let _ = Vm.Code.compile p and _ = Vm.Code.compile p in
  let decodes2, _ = Vm.Code.cache_stats () in
  Alcotest.(check int) "uncached compiles decode" (decodes1 + 2) decodes2

let suites =
  [
    ( "vm_code",
      [
        Alcotest.test_case "registry golden differential" `Quick
          test_registry_golden;
        Alcotest.test_case "packed site tables" `Quick test_site_tables;
        QCheck_alcotest.to_alcotest prop_random_programs;
        Alcotest.test_case "experiment differential" `Quick
          test_experiments_differential;
        Alcotest.test_case "campaign differential" `Quick
          test_campaign_differential;
        Alcotest.test_case "decode cache" `Quick test_decode_cache;
      ] );
  ]
