(* Tests for the analysis layer over a small three-program study.  The
   study is shared (and its runner cache with it) across all cases, so the
   whole suite costs one grid computation per technique. *)

let study =
  lazy (Analysis.Study.make ~n:40 ~seed:77L ~programs:[ "spmv"; "bfs"; "qsort" ] ())

let n_programs = 3

let test_study_accessors () =
  let s = Lazy.force study in
  Alcotest.(check (list string)) "names" [ "spmv"; "bfs"; "qsort" ]
    (Analysis.Study.names s);
  Alcotest.(check bool) "workload lookup" true
    ((Analysis.Study.workload s "bfs").name = "bfs");
  Alcotest.(check bool) "unknown program raises" true
    (match Analysis.Study.workload s "zz" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unknown program in make raises" true
    (match Analysis.Study.make ~programs:[ "zz" ] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_table2 () =
  let s = Lazy.force study in
  let rows = Analysis.Table2.compute s in
  Alcotest.(check int) "one row per program" n_programs (List.length rows);
  List.iter
    (fun (r : Analysis.Table2.row) ->
      let w = Analysis.Study.workload s r.program in
      Alcotest.(check int) "read cands match workload" w.golden.read_cands
        r.read_cands;
      Alcotest.(check bool) "asymmetry" true (r.read_cands > r.write_cands);
      Alcotest.(check int) "static read prediction exact" r.read_cands
        r.pred_reads;
      Alcotest.(check int) "static write prediction exact" r.write_cands
        r.pred_writes)
    rows

let test_fig1 () =
  let s = Lazy.force study in
  List.iter
    (fun tech ->
      let rows = Analysis.Fig1.compute s tech in
      Alcotest.(check int) "row count" n_programs (List.length rows);
      List.iter
        (fun (r : Analysis.Fig1.row) ->
          let c = r.result in
          Alcotest.(check int) "sums to n" c.n
            (c.benign + c.detected + c.hang + c.no_output + c.sdc);
          Alcotest.(check bool) "single-bit spec" true
            (Core.Spec.is_single c.spec))
        rows)
    Core.Technique.all

let test_fig2 () =
  let s = Lazy.force study in
  let rows = Analysis.Fig2.compute s Core.Technique.Write in
  Alcotest.(check int) "row count" n_programs (List.length rows);
  List.iter
    (fun (r : Analysis.Fig2.row) ->
      Alcotest.(check int) "11 points (1 + 10 mbf values)" 11
        (List.length r.by_mbf);
      Alcotest.(check int) "first point is single" 1 (fst (List.hd r.by_mbf));
      List.iter
        (fun (m, (c : Core.Campaign.result)) ->
          Alcotest.(check int) "mbf matches spec" m c.spec.max_mbf;
          if m > 1 then
            Alcotest.(check bool) "win = 0" true
              (Core.Win.equal c.spec.win (Fixed 0)))
        r.by_mbf)
    rows

let test_fig3 () =
  let s = Lazy.force study in
  let d = Analysis.Fig3.compute s Core.Technique.Read in
  (* programs x positive windows x n experiments *)
  Alcotest.(check int) "total experiments" (n_programs * 8 * 40) d.total;
  let all =
    Analysis.Fig3.share d ~lo:0 ~hi:5
    +. Analysis.Fig3.share d ~lo:6 ~hi:10
    +. Analysis.Fig3.share d ~lo:11 ~hi:max_int
  in
  Alcotest.(check bool) "shares sum to 1" true (Float.abs (all -. 1.0) < 1e-9);
  Alcotest.(check bool) "activation capped at 30" true
    (Stats.Histogram.max_key d.histogram <= 30)

let test_grid () =
  let s = Lazy.force study in
  let rows = Analysis.Grid.compute s Core.Technique.Write in
  Alcotest.(check int) "row count" n_programs (List.length rows);
  List.iter
    (fun (r : Analysis.Grid.row) ->
      Alcotest.(check int) "80 clusters" 80 (List.length r.cells);
      let spec, best = Analysis.Grid.best_multi r in
      Alcotest.(check bool) "best is max" true
        (List.for_all
           (fun (_, c) ->
             Core.Campaign.sdc_pct c <= Core.Campaign.sdc_pct best)
           r.cells);
      Alcotest.(check bool) "best spec is multi" true
        (not (Core.Spec.is_single spec));
      (* with an enormous slack everything is pessimistic *)
      Alcotest.(check bool) "slack monotonicity" true
        (Analysis.Grid.single_is_pessimistic ~slack_pp:100.0 r);
      List.iter
        (fun win ->
          match Analysis.Grid.min_mbf_reaching_best r ~win with
          | Some m ->
              Alcotest.(check bool) "min mbf in range" true (m >= 2 && m <= 30)
          | None -> Alcotest.fail "expected a minimum max-MBF")
        Core.Table1.win_positive)
    rows

let test_table3 () =
  let s = Lazy.force study in
  let rows = Analysis.Table3.compute s in
  Alcotest.(check int) "row count" n_programs (List.length rows);
  List.iter
    (fun (r : Analysis.Table3.row) ->
      Alcotest.(check bool) "read best is multi" true (r.read_best.max_mbf >= 2);
      Alcotest.(check bool) "write best is multi" true
        (r.write_best.max_mbf >= 2);
      Alcotest.(check bool) "sdc pcts in range" true
        (r.read_sdc_pct >= 0. && r.read_sdc_pct <= 100.
        && r.write_sdc_pct >= 0.
        && r.write_sdc_pct <= 100.))
    rows

let test_transition () =
  let s = Lazy.force study in
  let rows = Analysis.Transition.compute ~cap:25 s Core.Technique.Write in
  Alcotest.(check int) "row count" n_programs (List.length rows);
  List.iter
    (fun (r : Analysis.Transition.row) ->
      Alcotest.(check bool) "cap respected" true
        (r.n_detection <= 25 && r.n_benign <= 25);
      Alcotest.(check bool) "tran1 bounded" true
        (r.tran1 >= 0 && r.tran1 <= r.n_detection);
      Alcotest.(check bool) "tran2 bounded" true
        (r.tran2 >= 0 && r.tran2 <= r.n_benign);
      Alcotest.(check bool) "pcts valid" true
        (Analysis.Transition.tran1_pct r >= 0.
        && Analysis.Transition.tran1_pct r <= 100.))
    rows

let test_rq () =
  let s = Lazy.force study in
  let rq = Analysis.Rq.compute s in
  let near_one a = Float.abs (a -. 1.0) < 1e-9 in
  Alcotest.(check bool) "rq1 read shares sum" true
    (near_one
       (rq.rq1_read.share_le5 +. rq.rq1_read.share_6_10
      +. rq.rq1_read.share_gt10));
  Alcotest.(check int) "rq2 totals" (n_programs * 80 * 2)
    rq.rq2_campaigns_total;
  Alcotest.(check bool) "rq2 covered <= total" true
    (rq.rq2_campaigns_single_pessimistic <= rq.rq2_campaigns_total);
  Alcotest.(check int) "rq3 pairs" (n_programs * 8) rq.rq3_read.pairs_total;
  Alcotest.(check bool) "rq3 le3 <= total" true
    (rq.rq3_read.pairs_le3 <= rq.rq3_read.pairs_total);
  Alcotest.(check int) "rq4 lists sized" n_programs
    (List.length rq.rq4_read_best_wins);
  Alcotest.(check bool) "winsize_at_most monotone" true
    (Analysis.Rq.winsize_at_most rq.rq4_write_best_wins 1000
    >= Analysis.Rq.winsize_at_most rq.rq4_write_best_wins 5)

let test_grid_deterministic_via_cache () =
  let s = Lazy.force study in
  let a = Analysis.Grid.compute s Core.Technique.Write in
  let b = Analysis.Grid.compute s Core.Technique.Write in
  List.iter2
    (fun (ra : Analysis.Grid.row) (rb : Analysis.Grid.row) ->
      Alcotest.(check int) "same single sdc" ra.single.sdc rb.single.sdc)
    a b

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "study accessors" `Quick test_study_accessors;
        Alcotest.test_case "table2" `Quick test_table2;
        Alcotest.test_case "fig1" `Quick test_fig1;
        Alcotest.test_case "fig2" `Quick test_fig2;
        Alcotest.test_case "fig3" `Slow test_fig3;
        Alcotest.test_case "grid (fig4/5)" `Slow test_grid;
        Alcotest.test_case "table3" `Slow test_table3;
        Alcotest.test_case "transition (table4)" `Slow test_transition;
        Alcotest.test_case "rq summary" `Slow test_rq;
        Alcotest.test_case "grid deterministic" `Slow
          test_grid_deterministic_via_cache;
      ] );
  ]
