(* Fault-domain tests: the Mem (live arena byte) and Code (stored
   program) domains must behave identically on both execution backends,
   across worker counts and checkpointing, and their store/CSV encoding
   must stay readable by — and byte-compatible with — the pre-domain
   register-only format. *)

let injection_equal (a : Core.Injector.injection) (b : Core.Injector.injection)
    =
  Core.Domain.equal a.inj_domain b.inj_domain
  && a.inj_dyn = b.inj_dyn && a.inj_cand = b.inj_cand
  && a.inj_loc = b.inj_loc && a.inj_ty = b.inj_ty && a.inj_slot = b.inj_slot
  && a.inj_bit = b.inj_bit && a.inj_weight = b.inj_weight

let result_equal label (a : Vm.Exec.result) (b : Vm.Exec.result) =
  Alcotest.(check bool) (label ^ " status") true (a.status = b.status);
  Alcotest.(check string) (label ^ " output") a.output b.output;
  Alcotest.(check int) (label ^ " dyn") a.dyn_count b.dyn_count

let workload =
  lazy
    (let d = Option.get (Bench_suite.Registry.find "crc32") in
     Core.Workload.make ~name:d.name ~expected_output:(d.reference ())
       (d.build ()))

let domain_specs domain =
  [
    Core.Spec.single ~domain Read;
    Core.Spec.single ~domain Write;
    (* win-0 multi: k distinct bits of the same byte / flip site *)
    Core.Spec.multi ~domain Read ~max_mbf:3 ~win:(Fixed 0);
    (* windowed multi: flips spaced on the dynamic axis *)
    Core.Spec.multi ~domain Write ~max_mbf:3 ~win:(Fixed 10);
    Core.Spec.multi ~domain Read ~max_mbf:4 ~win:(Rnd (2, 50));
  ]

(* One experiment, same (spec, seed, index), through the seed
   interpreter and the compiled micro-op VM via [Experiment.run_raw]
   (which owns the per-domain target binding): runs and full injection
   logs must be bit-identical. *)
let check_backend_pair w spec ~base i =
  let saved = Core.Config.active_backend () in
  Fun.protect
    ~finally:(fun () -> Core.Config.set_backend saved)
    (fun () ->
      let run backend =
        Core.Config.set_backend backend;
        let inj =
          Core.Injector.create ~spec
            ~candidates:(Core.Workload.candidates w spec)
            (Prng.split_at base i)
        in
        let r = Core.Experiment.run_raw ~checkpoint:false w inj in
        (r, Core.Injector.injections inj, Core.Injector.activated inj)
      in
      let r_s, log_s, act_s = run Core.Config.Seed in
      let r_c, log_c, act_c = run Core.Config.Compiled in
      let label = Printf.sprintf "%s #%d" (Core.Spec.label spec) i in
      result_equal label r_s r_c;
      Alcotest.(check int) (label ^ " activated") act_s act_c;
      Alcotest.(check int) (label ^ " log length") (List.length log_s)
        (List.length log_c);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) (label ^ " injection") true
            (injection_equal a b);
          Alcotest.(check bool)
            (label ^ " domain tag")
            true
            (Core.Domain.equal a.Core.Injector.inj_domain
               spec.Core.Spec.domain))
        log_s log_c)

let test_backend_differential domain () =
  let w = Lazy.force workload in
  let base = Prng.of_seed 77L in
  List.iter
    (fun spec ->
      for i = 0 to 11 do
        check_backend_pair w spec ~base i
      done)
    (domain_specs domain)

(* Random programs (the seed-vs-evaluator generator) under Mem and Code
   injection: both backends, full injection-log equality.  Random
   straight-line programs may map no memory at all — then the Mem domain
   must degrade to a golden run on both backends, which the equality
   check still covers. *)
let prop_random_programs domain =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "random programs: %s domain matches across backends"
         (Core.Domain.to_string domain))
    ~count:120
    (QCheck.make Suite_differential.case_gen)
    (fun (ops, seeds) ->
      let seeds = if seeds = [] then [ 1L ] else seeds in
      let ops = Suite_differential.sanitize ops seeds in
      let m = Suite_differential.build_program ops seeds in
      let w = Core.Workload.make ~name:"random" m in
      let base = Prng.of_seed 4242L in
      List.iter
        (fun spec ->
          for i = 0 to 3 do
            check_backend_pair w spec ~base i
          done)
        [
          Core.Spec.single ~domain Read;
          Core.Spec.multi ~domain Read ~max_mbf:3 ~win:(Fixed 0);
          Core.Spec.multi ~domain Read ~max_mbf:2 ~win:(Fixed 5);
        ];
      true)

(* Campaign determinism: same counters at any worker count, with
   checkpointing on or off, store or not. *)
let test_campaign_determinism domain () =
  let w = Lazy.force workload in
  let spec = Core.Spec.multi ~domain Write ~max_mbf:2 ~win:(Fixed 0) in
  let n = 40 and seed = 7L in
  let saved_ck = Core.Config.checkpointing () in
  Fun.protect
    ~finally:(fun () -> Core.Config.set_checkpoint saved_ck)
    (fun () ->
      Core.Config.set_checkpoint false;
      let r1 = Engine.run_campaign ~jobs:1 w spec ~n ~seed in
      let r4 = Engine.run_campaign ~jobs:4 w spec ~n ~seed in
      Alcotest.(check bool) "jobs=1 == jobs=4" true
        (Core.Campaign.equal_result r1 r4);
      Core.Config.set_checkpoint ~interval:64 true;
      let rck = Engine.run_campaign ~jobs:2 w spec ~n ~seed in
      Alcotest.(check bool) "checkpointing on == off" true
        (Core.Campaign.equal_result r1 rck))

(* Regression: a stored-program flip can patch a call site while that
   very call is in flight in a restored checkpoint stack (qsort is
   recursive, so golden prefixes routinely snapshot mid-call).  The
   in-flight call must complete with its pre-flip destination — exactly
   as non-checkpoint execution, which destructures the call record at
   dispatch — so checkpointing on/off must stay bit-identical. *)
let test_code_resume_in_flight_calls () =
  let d = Option.get (Bench_suite.Registry.find "qsort") in
  let w =
    Core.Workload.make ~name:d.name ~expected_output:(d.reference ())
      (d.build ())
  in
  let spec = Core.Spec.single ~domain:Core.Domain.Code Write in
  let saved_ck = Core.Config.checkpointing () in
  Fun.protect
    ~finally:(fun () -> Core.Config.set_checkpoint saved_ck)
    (fun () ->
      Core.Config.set_checkpoint false;
      let off = Engine.run_campaign ~jobs:1 w spec ~n:80 ~seed:11L in
      Core.Config.set_checkpoint ~interval:64 true;
      let on = Engine.run_campaign ~jobs:2 w spec ~n:80 ~seed:11L in
      Alcotest.(check bool) "ckpt resume == full run" true
        (Core.Campaign.equal_result off on))

(* ---- store keys ---- *)

let with_tmp_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "onebit-domain-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_all_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.map (fun f ->
         In_channel.with_open_bin (Filename.concat dir f) In_channel.input_all)
  |> String.concat ""

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Register-domain store records serialise WITHOUT a domain member — the
   exact bytes a pre-domain build wrote — so an old store loads as
   register records; mem/code keys carry a trailing "dom" member and
   never collide with them. *)
let test_store_key_encoding () =
  let w = Lazy.force workload in
  let mk_key spec =
    Store.key ~program:w.Core.Workload.name ~digest:w.Core.Workload.digest
      ~spec ~n:20 ~seed:5L ~lo:0 ~hi:10
  in
  let reg_spec = Core.Spec.single Read in
  let mem_spec = Core.Spec.single ~domain:Core.Domain.Mem Read in
  let shard = Core.Campaign.run_shard w reg_spec ~seed:5L ~lo:0 ~hi:10 in
  with_tmp_store (fun dir ->
      let st = Store.open_dir dir in
      Store.add st (mk_key reg_spec) shard;
      Store.close st;
      let bytes = read_all_segments dir in
      Alcotest.(check bool) "reg key has no dom member" false
        (contains ~sub:"\"dom\"" bytes);
      (* reopening reads the record back under the same key — and since
         the reg encoding is byte-identical to the pre-domain format,
         this is also the legacy-store load path *)
      let st = Store.open_dir dir in
      Alcotest.(check bool) "reg key round-trips" true
        (Store.lookup st (mk_key reg_spec) <> None);
      Alcotest.(check bool) "mem key does not hit the reg record" true
        (Store.lookup st (mk_key mem_spec) = None);
      let mshard = Core.Campaign.run_shard w mem_spec ~seed:5L ~lo:0 ~hi:10 in
      Store.add st (mk_key mem_spec) mshard;
      Store.close st;
      let bytes = read_all_segments dir in
      Alcotest.(check bool) "mem key is dom-tagged" true
        (contains ~sub:"\"dom\":\"mem\"" bytes);
      let st = Store.open_dir dir in
      Alcotest.(check bool) "mem key round-trips" true
        (Store.lookup st (mk_key mem_spec) <> None);
      Alcotest.(check bool) "reg record survives alongside" true
        (Store.lookup st (mk_key reg_spec) <> None);
      Store.close st)

(* ---- CSV and labels ---- *)

let test_csv_and_labels () =
  let w = Lazy.force workload in
  let run spec = Core.Campaign.run w spec ~n:10 ~seed:3L in
  let reg_row = Core.Csv.row (run (Core.Spec.single Write)) in
  let mem_row =
    Core.Csv.row (run (Core.Spec.single ~domain:Core.Domain.Mem Write))
  in
  let code_row =
    Core.Csv.row (run (Core.Spec.single ~domain:Core.Domain.Code Write))
  in
  (* reg rows keep the bare technique cell of pre-domain CSVs *)
  Alcotest.(check bool) "reg row bare technique" true
    (contains ~sub:",inject-on-write," reg_row
    && not (contains ~sub:"reg:" reg_row));
  Alcotest.(check bool) "mem row prefixed" true
    (contains ~sub:",mem:inject-on-write," mem_row);
  Alcotest.(check bool) "code row prefixed" true
    (contains ~sub:",code:inject-on-write," code_row);
  Alcotest.(check string) "reg label unchanged" "write/single"
    (Core.Spec.label (Core.Spec.single Write));
  Alcotest.(check string) "mem label" "mem/single"
    (Core.Spec.label (Core.Spec.single ~domain:Core.Domain.Mem Write));
  Alcotest.(check string) "code label" "code/m=3/w=7"
    (Core.Spec.label
       (Core.Spec.multi ~domain:Core.Domain.Code Read ~max_mbf:3
          ~win:(Fixed 7)));
  (* the domain string round-trips through its parser, including the
     lenient aliases *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "domain to/of_string" true
        (Core.Domain.of_string (Core.Domain.to_string d) = Some d))
    Core.Domain.all

let suites =
  [
    ( "domain",
      [
        Alcotest.test_case "mem: backends bit-identical" `Quick
          (test_backend_differential Core.Domain.Mem);
        Alcotest.test_case "code: backends bit-identical" `Quick
          (test_backend_differential Core.Domain.Code);
        QCheck_alcotest.to_alcotest (prop_random_programs Core.Domain.Mem);
        QCheck_alcotest.to_alcotest (prop_random_programs Core.Domain.Code);
        Alcotest.test_case "mem: campaign deterministic" `Quick
          (test_campaign_determinism Core.Domain.Mem);
        Alcotest.test_case "code: campaign deterministic" `Quick
          (test_campaign_determinism Core.Domain.Code);
        Alcotest.test_case "code: resume completes in-flight calls" `Quick
          test_code_resume_in_flight_calls;
        Alcotest.test_case "store keys: legacy-compatible encoding" `Quick
          test_store_key_encoding;
        Alcotest.test_case "csv rows and spec labels" `Quick
          test_csv_and_labels;
      ] );
  ]
