(* Tests for the compositional / incremental campaign subsystem:
   function fingerprints (identity vs semantic vs environment digests),
   static propagation summaries and their sdc-free prediction, the
   experiment partition, profile storage, and the load-bearing equality —
   a campaign composed from per-function profiles is bit-identical to a
   full run, whether the profiles were just computed or reused from a
   store across a semantic-preserving edit. *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "onebit-inc-test-%d-%d" (Unix.getpid ()) !counter)

let with_store f =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  Fun.protect ~finally:(fun () -> Store.close st) (fun () -> f st)

let replace ~sub ~by s =
  let b = Buffer.create (String.length s) in
  let n = String.length s and ns = String.length sub in
  let i = ref 0 in
  while !i < n do
    if !i + ns <= n && String.sub s !i ns = sub then begin
      Buffer.add_string b by;
      i := !i + ns
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let parse_exn text =
  match Ir.Parse.modl text with Ok m -> m | Error e -> failwith e

let fixture_text =
  lazy (In_channel.with_open_text "fixtures/inc.ir" In_channel.input_all)

let fixture_modl = lazy (parse_exn (Lazy.force fixture_text))

(* The label-renamed variant: same behaviour, same semantic digest, a
   different identity digest for [scale] only. *)
let renamed_modl =
  lazy (parse_exn (replace ~sub:"scale_body" ~by:"renamed_b" (Lazy.force fixture_text)))

let fixture_workload = lazy (Core.Workload.make ~name:"inc" (Lazy.force fixture_modl))

let func_exn m name = Option.get (Ir.Func.find_func m name)

let fidx_of (m : Ir.Func.modl) name =
  let rec go i = function
    | [] -> invalid_arg "fidx_of"
    | (f : Ir.Func.t) :: _ when f.f_name = name -> i
    | _ :: fs -> go (i + 1) fs
  in
  go 0 m.m_funcs

(* ---- fingerprints ---- *)

let test_identity_vs_semantic () =
  let m = Lazy.force fixture_modl and m' = Lazy.force renamed_modl in
  let scale = func_exn m "scale" and scale' = func_exn m' "scale" in
  Alcotest.(check bool) "identity digest changes on label rename" false
    (Ir.Fingerprint.func scale = Ir.Fingerprint.func scale');
  Alcotest.(check string) "semantic digest survives label rename"
    (Ir.Fingerprint.func_semantic scale)
    (Ir.Fingerprint.func_semantic scale');
  List.iter
    (fun name ->
      Alcotest.(check string)
        (name ^ " identity digest untouched")
        (Ir.Fingerprint.func (func_exn m name))
        (Ir.Fingerprint.func (func_exn m' name)))
    [ "mix"; "main" ];
  Alcotest.(check string) "environment digest survives label rename"
    (Ir.Fingerprint.environment m)
    (Ir.Fingerprint.environment m');
  Alcotest.(check bool) "module digest does change" false
    (Ir.Fingerprint.modl m = Ir.Fingerprint.modl m')

let test_semantic_tracks_behaviour () =
  let m = Lazy.force fixture_modl in
  let m' = parse_exn (replace ~sub:"65535" ~by:"65534" (Lazy.force fixture_text)) in
  let scale = func_exn m "scale" and scale' = func_exn m' "scale" in
  Alcotest.(check bool) "identity digest changes on constant edit" false
    (Ir.Fingerprint.func scale = Ir.Fingerprint.func scale');
  Alcotest.(check bool) "semantic digest changes on constant edit" false
    (Ir.Fingerprint.func_semantic scale = Ir.Fingerprint.func_semantic scale');
  Alcotest.(check bool) "environment digest changes on constant edit" false
    (Ir.Fingerprint.environment m = Ir.Fingerprint.environment m')

let test_reachable () =
  let m = Lazy.force fixture_modl in
  Alcotest.(check (list string))
    "all three reachable from main" [ "scale"; "mix"; "main" ]
    (Ir.Fingerprint.reachable m);
  Alcotest.(check (list string))
    "mix alone from mix" [ "mix" ]
    (Ir.Fingerprint.reachable ~entry:"mix" m)

(* ---- summaries ---- *)

let summaries = lazy (Dataflow.Summary.analyse (Lazy.force fixture_modl))

let summary_exn name =
  Option.get (Dataflow.Summary.find (Lazy.force summaries) name)

let test_summary_fixture () =
  let scale = summary_exn "scale" in
  Alcotest.(check int) "scale returns a register: full corrupt mask"
    0xffffffff scale.ret_corrupt;
  Alcotest.(check bool) "scale loops" true scale.may_loop;
  Alcotest.(check bool) "scale touches no memory" false scale.corrupts_memory;
  Alcotest.(check bool) "scale emits nothing" false scale.emits_output;
  (* the `and 65535' bounds the demand on the accumulator, hence on the
     parameter feeding it *)
  Alcotest.(check (array int)) "scale param demand refined" [| 0xffff |]
    scale.params_demanded;
  let mix = summary_exn "mix" in
  Alcotest.(check (array int)) "mix param demands refined by the and"
    [| 0xffffff; 0xffffff |] mix.params_demanded;
  let main = summary_exn "main" in
  Alcotest.(check int) "main is void" 0 main.ret_corrupt;
  Alcotest.(check bool) "main stores (transitively)" true main.corrupts_memory;
  Alcotest.(check bool) "main outputs" true main.emits_output;
  Alcotest.(check (list string)) "main callees" [ "scale"; "mix" ] main.callees;
  Alcotest.(check (list string)) "main globals" [ "buf" ] main.globals;
  Alcotest.(check bool) "none of the three is sdc-free" false
    (List.exists Dataflow.Summary.sdc_free_single (Lazy.force summaries));
  List.iter
    (fun s ->
      Alcotest.(check string)
        (s.Dataflow.Summary.fn ^ " digest = md5 of render")
        (Digest.to_hex (Digest.string (Dataflow.Summary.render s)))
        (Dataflow.Summary.digest s))
    (Lazy.force summaries)

(* A helper with a void return and no side effects is statically
   sdc-free under single-bit campaigns; verify the prediction against an
   actual campaign partition. *)
let sdc_free_module () =
  let module B = Ir.Build in
  let m = B.create () in
  B.global_i32s m "g" [| 3; 5; 7; 9 |];
  B.func m "sink" ~params:[ Ir.Ty.I32 ] ~ret:None (fun f ->
      let x = B.add f Ir.Ty.I32 (B.param f 0) (B.ci 1) in
      let y = B.mul f Ir.Ty.I32 x x in
      ignore (B.bxor f Ir.Ty.I32 y (B.ci 5));
      B.ret f None);
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 4) (fun i ->
          let v = B.load f Ir.Ty.I32 (B.gep f ~base:(B.glob "g") ~index:i ~scale:4) in
          B.callv f "sink" [ v ];
          B.output f Ir.Ty.I32 v));
  B.finish m

let test_sdc_free_verified () =
  let m = sdc_free_module () in
  let s = Option.get (Dataflow.Summary.find (Dataflow.Summary.analyse m) "sink") in
  Alcotest.(check bool) "sink statically sdc-free" true
    (Dataflow.Summary.sdc_free_single s);
  let w = Core.Workload.make ~name:"sdcfree" m in
  let seed = 41L and n = 80 in
  List.iter
    (fun technique ->
      let spec = Core.Spec.single technique in
      let parts = Engine.Incremental.partition w spec ~n ~seed in
      let sink = parts.(fidx_of m "sink") in
      Alcotest.(check bool) "some experiments land in sink" true
        (Array.length sink > 0);
      let p = Core.Campaign.run_profile w spec ~seed ~indices:sink in
      Alcotest.(check int)
        ("no SDC from sink under single/" ^ Core.Technique.to_string technique)
        0 p.p_sdc)
    [ Core.Technique.Read; Core.Technique.Write ]

(* ---- lint: interprocedural rules ---- *)

let test_lint_uncalled () =
  let module B = Ir.Build in
  let m = B.create () in
  B.func m "orphan" ~params:[] ~ret:(Some Ir.Ty.I32) (fun f ->
      B.ret f (Some (B.ci 7)));
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.output f Ir.Ty.I32 (B.ci 1);
      B.ret f None);
  let fs = Dataflow.Lint.check_module (B.finish m) in
  Alcotest.(check int) "one finding" 1 (List.length fs);
  let f = List.hd fs in
  Alcotest.(check string) "rule" "uncalled-function"
    (Dataflow.Lint.rule_name f.rule);
  Alcotest.(check string) "names the orphan" "orphan" f.fn

let test_lint_arity () =
  (* Validate rejects arity mismatches, so build the module by hand. *)
  let open Ir in
  let ret_block = { Func.b_name = "entry"; b_instrs = [||]; b_term = Instr.Ret None } in
  let callee =
    { Func.f_name = "callee"; f_params = [ Ty.I32 ]; f_ret = None;
      f_blocks = [| ret_block |]; f_reg_ty = [| Ty.I32 |] }
  in
  let call_block =
    { Func.b_name = "entry";
      b_instrs = [| Instr.Call { dst = None; callee = "callee"; args = [] } |];
      b_term = Instr.Ret None }
  in
  let main =
    { Func.f_name = "main"; f_params = []; f_ret = None;
      f_blocks = [| call_block |]; f_reg_ty = [||] }
  in
  let m = { Func.m_funcs = [ callee; main ]; m_globals = [] } in
  let fs = Dataflow.Lint.check_module m in
  Alcotest.(check bool) "arity mismatch reported" true
    (List.exists
       (fun (f : Dataflow.Lint.finding) ->
         Dataflow.Lint.rule_name f.rule = "call-arity-mismatch")
       fs)

let test_lint_registry_clean_interproc () =
  List.iter
    (fun (e : Bench_suite.Desc.t) ->
      Alcotest.(check (list string))
        (e.name ^ " lints clean interprocedurally") []
        (List.map Dataflow.Lint.to_string
           (Dataflow.Lint.check_module (e.build ()))))
    Bench_suite.Registry.all

(* ---- partition ---- *)

let test_partition_tiles () =
  let w = Lazy.force fixture_workload in
  let n = 60 and seed = 7L in
  List.iter
    (fun spec ->
      let parts = Engine.Incremental.partition w spec ~n ~seed in
      Array.iter
        (fun part ->
          Alcotest.(check bool) "indices strictly increasing" true
            (Array.for_all
               (fun i -> i >= 0 && i < n)
               part
            && Array.length part < 2
               || Array.for_all
                    (fun i -> part.(i) < part.(i + 1))
                    (Array.init (Array.length part - 1) Fun.id)))
        parts;
      let all = Array.concat (Array.to_list parts) in
      Array.sort compare all;
      Alcotest.(check (array int)) "partition tiles [0, n)"
        (Array.init n Fun.id) all)
    [ Core.Spec.single Read; Core.Spec.multi Write ~max_mbf:4 ~win:(Fixed 3) ]

(* ---- incremental == full ---- *)

let check_equal_result what a b =
  Alcotest.(check bool) what true (Core.Campaign.equal_result a b)

let test_incremental_equals_full () =
  let w = Lazy.force fixture_workload in
  let spec = Core.Spec.single Read and n = 60 and seed = 11L in
  let full = Core.Campaign.run w spec ~n ~seed in
  with_store (fun st ->
      let r1, s1 = Engine.Incremental.run ~store:st w spec ~n ~seed in
      check_equal_result "cold composed result equals full run" r1 full;
      Alcotest.(check int) "cold run recomputes everything" n s1.exps_recomputed;
      Alcotest.(check int) "cold run reuses nothing" 0 s1.exps_reused;
      let r2, s2 = Engine.Incremental.run ~store:st w spec ~n ~seed in
      check_equal_result "warm composed result equals full run" r2 full;
      Alcotest.(check int) "warm run reuses everything" n s2.exps_reused;
      Alcotest.(check int) "warm run recomputes nothing" 0 s2.funcs_recomputed)

let test_edit_reruns_only_edited () =
  let spec = Core.Spec.single Read and n = 60 and seed = 11L in
  (* Same program twice under the same name, with scale's block label
     renamed in between: only scale's identity digest changes. *)
  let wa = Core.Workload.make ~name:"work" (Lazy.force fixture_modl) in
  let wb = Core.Workload.make ~name:"work" (Lazy.force renamed_modl) in
  with_store (fun st ->
      let _, s1 = Engine.Incremental.run ~store:st wa spec ~n ~seed in
      Alcotest.(check int) "cold: all three computed" 3 s1.funcs_recomputed;
      let r2, s2 = Engine.Incremental.run ~store:st wb spec ~n ~seed in
      Alcotest.(check int) "edit: only scale recomputed" 1 s2.funcs_recomputed;
      Alcotest.(check int) "edit: the other two reused" 2 s2.funcs_reused;
      let parts =
        Engine.Incremental.partition wb spec ~n ~seed
      in
      let scale_share =
        Array.length parts.(fidx_of (Lazy.force renamed_modl) "scale")
      in
      Alcotest.(check int) "edit: exactly scale's share re-ran" scale_share
        s2.exps_recomputed;
      check_equal_result "edited composed result equals full run" r2
        (Core.Campaign.run wb spec ~n ~seed))

let test_real_edit_recomputes_all () =
  let spec = Core.Spec.single Write and n = 40 and seed = 3L in
  let mb = parse_exn (replace ~sub:"65535" ~by:"65534" (Lazy.force fixture_text)) in
  let wa = Core.Workload.make ~name:"work" (Lazy.force fixture_modl) in
  let wb = Core.Workload.make ~name:"work" mb in
  with_store (fun st ->
      let _ = Engine.Incremental.run ~store:st wa spec ~n ~seed in
      (* The constant edit changes scale's semantic digest, hence the
         environment digest: every cached profile is invalid. *)
      let r, s = Engine.Incremental.run ~store:st wb spec ~n ~seed in
      Alcotest.(check int) "nothing reused" 0 s.funcs_reused;
      check_equal_result "still equals the full run" r
        (Core.Campaign.run wb spec ~n ~seed))

(* ---- provably-benign skip ---- *)

(* Under a single-flip campaign, [sink] in [sdc_free_module] satisfies
   the whole skip predicate (sdc-free, trap-free, loop-free, worst-case
   path within budget): its partition must be synthesized, not run, and
   the composed result must still equal the full campaign exactly. *)
let test_skip_benign () =
  let m = sdc_free_module () in
  let w = Core.Workload.make ~name:"sdcfree" m in
  let n = 80 and seed = 41L in
  List.iter
    (fun technique ->
      let spec = Core.Spec.single technique in
      let full = Core.Campaign.run w spec ~n ~seed in
      let parts = Engine.Incremental.partition w spec ~n ~seed in
      let sink = parts.(fidx_of m "sink") in
      let share = Array.length sink in
      Alcotest.(check bool) "sink owns some experiments" true (share > 0);
      with_store (fun st ->
          let r1, s1 = Engine.Incremental.run ~store:st w spec ~n ~seed in
          let t = Core.Technique.to_string technique in
          check_equal_result ("skip-composed equals full (" ^ t ^ ")") r1 full;
          Alcotest.(check int) (t ^ ": one function skipped") 1
            s1.funcs_skipped;
          Alcotest.(check int) (t ^ ": sink's share skipped") share
            s1.exps_skipped;
          Alcotest.(check int)
            (t ^ ": the rest recomputed")
            (n - share) s1.exps_recomputed;
          (* The synthesized profile is cached and equals what running
             the partition would have produced. *)
          let key =
            Store.profile_key ~program:"sdcfree" ~func:"sink"
              ~fdigest:(Ir.Fingerprint.func (func_exn m "sink"))
              ~env:(Ir.Fingerprint.environment m)
              ~spec ~n ~seed
          in
          let executed = Core.Campaign.run_profile w spec ~seed ~indices:sink in
          Alcotest.(check bool)
            (t ^ ": synthesized profile equals executed partition") true
            (match Store.lookup_profile st key with
            | Some q -> Core.Campaign.equal_profile executed q
            | None -> false);
          (* Warm runs keep skipping (the proof is cheaper than the
             store) and keep composing exactly. *)
          let r2, s2 = Engine.Incremental.run ~store:st w spec ~n ~seed in
          check_equal_result ("warm skip-composed equals full (" ^ t ^ ")") r2
            full;
          Alcotest.(check int) (t ^ ": warm still skips sink") share
            s2.exps_skipped;
          Alcotest.(check int) (t ^ ": warm reuses the rest") (n - share)
            s2.exps_reused))
    [ Core.Technique.Read; Core.Technique.Write ]

(* A sink that loads from memory can trap under a flipped address, so
   the skip predicate must refuse it even though its partition happens
   to produce no SDC. *)
let test_skip_refuses_trapping () =
  let module B = Ir.Build in
  let m = B.create () in
  B.global_i32s m "g" [| 3; 5; 7; 9 |];
  B.func m "sink" ~params:[ Ir.Ty.I32 ] ~ret:None (fun f ->
      let v =
        B.load f Ir.Ty.I32 (B.gep f ~base:(B.glob "g") ~index:(B.ci 0) ~scale:4)
      in
      ignore (B.add f Ir.Ty.I32 v (B.param f 0));
      B.ret f None);
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 4) (fun i ->
          let v =
            B.load f Ir.Ty.I32 (B.gep f ~base:(B.glob "g") ~index:i ~scale:4)
          in
          B.callv f "sink" [ v ];
          B.output f Ir.Ty.I32 v));
  let m = B.finish m in
  let s = Option.get (Dataflow.Summary.find (Dataflow.Summary.analyse m) "sink") in
  Alcotest.(check bool) "sink may trap" true s.Dataflow.Summary.may_trap;
  let w = Core.Workload.make ~name:"trapsink" m in
  let spec = Core.Spec.single Read and n = 60 and seed = 17L in
  let full = Core.Campaign.run w spec ~n ~seed in
  with_store (fun st ->
      let r, s = Engine.Incremental.run ~store:st w spec ~n ~seed in
      check_equal_result "composed equals full" r full;
      Alcotest.(check int) "nothing skipped" 0 s.funcs_skipped;
      Alcotest.(check int) "no experiments skipped" 0 s.exps_skipped;
      Alcotest.(check int) "everything executed" n s.exps_recomputed)

(* ---- store: profile records ---- *)

let test_store_profile_roundtrip () =
  let w = Lazy.force fixture_workload in
  let spec = Core.Spec.single Read and seed = 5L in
  let p = Core.Campaign.run_profile w spec ~seed ~indices:[| 0; 3; 9; 12 |] in
  let key =
    Store.profile_key ~program:"inc" ~func:"scale" ~fdigest:"aa" ~env:"bb"
      ~spec ~n:20 ~seed
  in
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  Store.add_profile st key p;
  Alcotest.(check bool) "immediate lookup" true
    (match Store.lookup_profile st key with
    | Some q -> Core.Campaign.equal_profile p q
    | None -> false);
  Store.close st;
  let st = Store.open_dir dir in
  Fun.protect
    ~finally:(fun () -> Store.close st)
    (fun () ->
      Alcotest.(check bool) "survives reopen" true
        (match Store.lookup_profile st key with
        | Some q -> Core.Campaign.equal_profile p q
        | None -> false);
      Alcotest.(check int) "fold_profiles sees it" 1
        (Store.fold_profiles st (fun _ _ acc -> acc + 1) 0);
      Alcotest.(check int) "fold sees no shard" 0
        (Store.fold st (fun _ _ acc -> acc + 1) 0);
      let _ = Store.gc st in
      Alcotest.(check bool) "survives gc" true
        (match Store.lookup_profile st key with
        | Some q -> Core.Campaign.equal_profile p q
        | None -> false))

(* ---- properties ---- *)

(* A three-function program family parameterised by constants, for the
   digest-locality and composition properties. *)
let family (a, b, c) =
  let module B = Ir.Build in
  let m = B.create () in
  B.global_i32s m "g" [| 3; 5; 7; 9 |];
  B.func m "h1" ~params:[ Ir.Ty.I32 ] ~ret:(Some Ir.Ty.I32) (fun f ->
      let x = B.add f Ir.Ty.I32 (B.param f 0) (B.ci a) in
      let y = B.mul f Ir.Ty.I32 x (B.ci (b + 1)) in
      B.ret f (Some (B.band f Ir.Ty.I32 y (B.ci 0xffff))));
  B.func m "h2" ~params:[ Ir.Ty.I32; Ir.Ty.I32 ] ~ret:(Some Ir.Ty.I32) (fun f ->
      let x = B.bxor f Ir.Ty.I32 (B.param f 0) (B.param f 1) in
      let v =
        B.load f Ir.Ty.I32
          (B.gep f ~base:(B.glob "g") ~index:(B.ci (c land 3)) ~scale:4)
      in
      B.ret f (Some (B.add f Ir.Ty.I32 x v)));
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 4) (fun i ->
          let v = B.load f Ir.Ty.I32 (B.gep f ~base:(B.glob "g") ~index:i ~scale:4) in
          let s = B.call1 f "h1" [ v ] in
          let t = B.call1 f "h2" [ s; i ] in
          B.output f Ir.Ty.I32 t));
  B.finish m

let prop_digest_locality =
  QCheck.Test.make ~name:"editing one function moves only its digest" ~count:12
    QCheck.(triple (int_range 1 1000) (int_range 1 1000) (int_range 0 7))
    (fun (a, b, c) ->
      let m1 = family (a, b, c) and m2 = family (a + 1, b, c) in
      let d m name = Ir.Fingerprint.func (func_exn m name) in
      d m1 "h1" <> d m2 "h1"
      && d m1 "h2" = d m2 "h2"
      && d m1 "main" = d m2 "main"
      && Ir.Fingerprint.environment m1 <> Ir.Fingerprint.environment m2)

let prop_incremental_equals_full =
  QCheck.Test.make ~name:"composed incremental result equals full campaign"
    ~count:6
    QCheck.(
      triple (int_range 1 1000) (int_range 1 1000)
        (pair (int_range 0 7) bool))
    (fun (a, b, (c, write)) ->
      let m = family (a, b, c) in
      let w = Core.Workload.make ~name:"fam" m in
      let technique = if write then Core.Technique.Write else Read in
      let spec = Core.Spec.multi technique ~max_mbf:2 ~win:(Fixed 4) in
      let n = 30 and seed = Int64.of_int (a + b) in
      let full = Core.Campaign.run w spec ~n ~seed in
      with_store (fun st ->
          let r1, _ = Engine.Incremental.run ~store:st w spec ~n ~seed in
          let r2, s2 = Engine.Incremental.run ~store:st w spec ~n ~seed in
          Core.Campaign.equal_result r1 full
          && Core.Campaign.equal_result r2 full
          && s2.exps_reused = n))

let suites =
  [
    ( "incremental",
      [
        Alcotest.test_case "fingerprint: identity vs semantic" `Quick
          test_identity_vs_semantic;
        Alcotest.test_case "fingerprint: semantic tracks behaviour" `Quick
          test_semantic_tracks_behaviour;
        Alcotest.test_case "fingerprint: reachability" `Quick test_reachable;
        Alcotest.test_case "summary: fixture facts" `Quick test_summary_fixture;
        Alcotest.test_case "summary: sdc-free verified by injection" `Slow
          test_sdc_free_verified;
        Alcotest.test_case "lint: uncalled function" `Quick test_lint_uncalled;
        Alcotest.test_case "lint: call arity" `Quick test_lint_arity;
        Alcotest.test_case "lint: registry clean (interproc)" `Quick
          test_lint_registry_clean_interproc;
        Alcotest.test_case "partition tiles the campaign" `Quick
          test_partition_tiles;
        Alcotest.test_case "incremental == full (cold + warm)" `Slow
          test_incremental_equals_full;
        Alcotest.test_case "label edit re-runs only that function" `Slow
          test_edit_reruns_only_edited;
        Alcotest.test_case "semantic edit invalidates everything" `Slow
          test_real_edit_recomputes_all;
        Alcotest.test_case "provably-benign partitions are skipped" `Slow
          test_skip_benign;
        Alcotest.test_case "skip refuses trapping functions" `Quick
          test_skip_refuses_trapping;
        Alcotest.test_case "store: profile roundtrip" `Quick
          test_store_profile_roundtrip;
        QCheck_alcotest.to_alcotest prop_digest_locality;
        QCheck_alcotest.to_alcotest prop_incremental_equals_full;
      ] );
  ]
