(* Tests for the fault-injection core: specs and Table I, the injector
   state machine, experiments, campaigns, the runner cache and CSV. *)

let spmv = lazy (Option.get (Bench_suite.Registry.find "spmv"))

let workload =
  lazy
    (let e = Lazy.force spmv in
     Core.Workload.make ~name:e.name ~expected_output:(e.reference ())
       (e.build ()))

let qsort_workload =
  lazy
    (let e = Option.get (Bench_suite.Registry.find "qsort") in
     Core.Workload.make ~name:e.name ~expected_output:(e.reference ())
       (e.build ()))

(* ---- specs and the plan ---- *)

let test_technique_strings () =
  Alcotest.(check (option bool))
    "read" (Some true)
    (Option.map (( = ) Core.Technique.Read) (Core.Technique.of_string "read"));
  Alcotest.(check bool) "unknown" true (Core.Technique.of_string "zap" = None)

let test_win_sample () =
  let g = Prng.of_seed 1L in
  Alcotest.(check int) "fixed" 7 (Core.Win.sample (Fixed 7) g);
  for _ = 1 to 200 do
    let v = Core.Win.sample (Rnd (11, 100)) g in
    Alcotest.(check bool) "rnd in range" true (v >= 11 && v <= 100)
  done;
  Alcotest.(check string) "to_string fixed" "0" (Core.Win.to_string (Fixed 0));
  Alcotest.(check string) "to_string rnd" "RND(2-10)"
    (Core.Win.to_string (Rnd (2, 10)))

let test_spec_validation () =
  Alcotest.(check bool) "single is single" true
    (Core.Spec.is_single (Core.Spec.single Read));
  Alcotest.check_raises "multi with mbf 1"
    (Invalid_argument "Spec.multi: max_mbf must be >= 2") (fun () ->
      ignore (Core.Spec.multi Read ~max_mbf:1 ~win:(Fixed 0)));
  Alcotest.(check string) "label" "write/m=3/w=RND(2-10)"
    (Core.Spec.label (Core.Spec.multi Write ~max_mbf:3 ~win:(Rnd (2, 10))))

let test_table1_shape () =
  Alcotest.(check int) "10 mbf values" 10
    (List.length Core.Table1.max_mbf_values);
  Alcotest.(check int) "9 windows" 9 (List.length Core.Table1.win_values);
  Alcotest.(check int) "8 positive windows" 8
    (List.length Core.Table1.win_positive);
  Alcotest.(check int) "91 specs per technique" 91
    (List.length (Core.Table1.specs Read));
  Alcotest.(check int) "182 campaigns per program" 182
    (List.length Core.Table1.all_specs);
  let labels = List.map Core.Spec.label Core.Table1.all_specs in
  Alcotest.(check int) "no duplicate specs" 182
    (List.length (List.sort_uniq compare labels))

(* ---- outcome classification ---- *)

let fake_result status output : Vm.Exec.result =
  { status; output; dyn_count = 10; read_cands = 5; write_cands = 5 }

let test_classify () =
  let golden = "abcd" in
  let chk name expected r =
    Alcotest.(check string)
      name expected
      (Core.Outcome.to_string (Core.Outcome.classify ~golden_output:golden r))
  in
  chk "benign" "benign" (fake_result Finished "abcd");
  chk "sdc" "sdc" (fake_result Finished "abcx");
  chk "no output" "no-output" (fake_result Finished "");
  chk "partial output is sdc" "sdc" (fake_result Finished "ab");
  chk "hang" "hang" (fake_result Hung "ab");
  chk "trap" "detected:segfault" (fake_result (Trapped Segfault) "ab");
  (* empty golden, empty output: benign *)
  Alcotest.(check bool) "empty golden benign" true
    (Core.Outcome.classify ~golden_output:"" (fake_result Finished "")
    = Core.Outcome.Benign)

let test_outcome_categories () =
  Alcotest.(check bool) "sdc" true (Core.Outcome.is_sdc Sdc);
  Alcotest.(check bool) "hang is detection" true
    (Core.Outcome.is_detection Hang);
  Alcotest.(check bool) "no-output is detection" true
    (Core.Outcome.is_detection No_output);
  Alcotest.(check bool) "benign is not detection" false
    (Core.Outcome.is_detection Benign);
  Alcotest.(check bool) "sdc is not detection" false
    (Core.Outcome.is_detection Sdc)

(* ---- workload ---- *)

let test_workload_golden () =
  let w = Lazy.force workload in
  Alcotest.(check bool) "budget > golden" true (w.budget > w.golden.dyn_count);
  Alcotest.(check int) "read candidates" w.golden.read_cands
    (Core.Workload.candidates w (Core.Spec.single Read));
  Alcotest.(check int) "write candidates" w.golden.write_cands
    (Core.Workload.candidates w (Core.Spec.single Write))

let test_workload_rejects_bad_reference () =
  let e = Lazy.force spmv in
  Alcotest.(check bool) "mismatching expected output rejected" true
    (match
       Core.Workload.make ~name:"x" ~expected_output:"bogus" (e.build ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_workload_rejects_trapping_main () =
  let module B = Ir.Build in
  let m = B.create () in
  B.func m "main" ~params:[] ~ret:None (fun f -> B.abort_ f);
  Alcotest.(check bool) "trapping golden rejected" true
    (match Core.Workload.make ~name:"trap" (B.finish m) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- injector / experiment ---- *)

let test_single_always_activates_one () =
  let w = Lazy.force workload in
  let base = Prng.of_seed 99L in
  for i = 0 to 49 do
    let e = Core.Experiment.run w (Core.Spec.single Read) (Prng.split_at base i) in
    Alcotest.(check int) "activated = 1" 1 e.activated
  done

let test_experiment_deterministic () =
  let w = Lazy.force workload in
  let spec = Core.Spec.multi Write ~max_mbf:5 ~win:(Rnd (2, 10)) in
  let run i =
    Core.Experiment.run w spec (Prng.split_at (Prng.of_seed 5L) i)
  in
  for i = 0 to 19 do
    let a = run i and b = run i in
    Alcotest.(check string) "same outcome"
      (Core.Outcome.to_string a.outcome)
      (Core.Outcome.to_string b.outcome);
    Alcotest.(check int) "same activation" a.activated b.activated;
    Alcotest.(check int) "same dyn count" a.dyn_count b.dyn_count
  done

let test_activation_bounded_by_mbf () =
  let w = Lazy.force workload in
  List.iter
    (fun mbf ->
      let spec = Core.Spec.multi Read ~max_mbf:mbf ~win:(Fixed 1) in
      let base = Prng.of_seed 17L in
      for i = 0 to 29 do
        let e = Core.Experiment.run w spec (Prng.split_at base i) in
        Alcotest.(check bool) "1 <= activated <= mbf" true
          (e.activated >= 1 && e.activated <= mbf)
      done)
    [ 2; 5; 30 ]

let test_win0_multi_distinct_bits_same_target () =
  let w = Lazy.force workload in
  let spec = Core.Spec.multi Write ~max_mbf:8 ~win:(Fixed 0) in
  let candidates = Core.Workload.candidates w spec in
  let base = Prng.of_seed 23L in
  for i = 0 to 19 do
    let rng = Prng.split_at base i in
    let inj = Core.Injector.create ~spec ~candidates rng in
    ignore (Vm.Exec.run ~hooks:(Core.Injector.hooks inj) ~budget:w.budget w.prog);
    let injections = Core.Injector.injections inj in
    Alcotest.(check bool) "some flips" true (List.length injections >= 1);
    let dyns = List.map (fun (j : Core.Injector.injection) -> j.inj_dyn) injections in
    let regs = List.map (fun (j : Core.Injector.injection) -> j.inj_loc) injections in
    let bits = List.map (fun (j : Core.Injector.injection) -> j.inj_bit) injections in
    Alcotest.(check int) "single dyn instruction" 1
      (List.length (List.sort_uniq compare dyns));
    Alcotest.(check int) "single register" 1
      (List.length (List.sort_uniq compare regs));
    Alcotest.(check int) "distinct bits" (List.length bits)
      (List.length (List.sort_uniq compare bits))
  done

let test_win_spacing_respected () =
  let w = Lazy.force qsort_workload in
  let win = 10 in
  let spec = Core.Spec.multi Read ~max_mbf:6 ~win:(Fixed win) in
  let candidates = Core.Workload.candidates w spec in
  let base = Prng.of_seed 31L in
  for i = 0 to 19 do
    let rng = Prng.split_at base i in
    let inj = Core.Injector.create ~spec ~candidates rng in
    ignore (Vm.Exec.run ~hooks:(Core.Injector.hooks inj) ~budget:w.budget w.prog);
    let dyns =
      List.map (fun (j : Core.Injector.injection) -> j.inj_dyn)
        (Core.Injector.injections inj)
    in
    let rec pairs = function
      | a :: (b :: _ as tl) ->
          Alcotest.(check bool) "spacing >= win" true (b - a >= win);
          pairs tl
      | [ _ ] | [] -> ()
    in
    pairs dyns
  done

let test_forced_first_replays_location () =
  let w = Lazy.force workload in
  let spec = Core.Spec.single Read in
  let rng = Prng.split_at (Prng.of_seed 3L) 0 in
  let e = Core.Experiment.run w spec rng in
  let inj = Option.get e.first in
  let forced = (inj.inj_cand, inj.inj_slot, inj.inj_bit) in
  let e2 = Core.Experiment.run_at w spec ~first:forced (Prng.of_seed 999L) in
  let inj2 = Option.get e2.first in
  Alcotest.(check int) "same candidate" inj.inj_cand inj2.inj_cand;
  Alcotest.(check int) "same bit" inj.inj_bit inj2.inj_bit;
  Alcotest.(check int) "same register" inj.inj_loc inj2.inj_loc;
  Alcotest.(check string) "same outcome (single-bit replay)"
    (Core.Outcome.to_string e.outcome)
    (Core.Outcome.to_string e2.outcome)

let test_injector_rejects_bad_input () =
  let spec = Core.Spec.single Read in
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Injector.create: no candidates") (fun () ->
      ignore (Core.Injector.create ~spec ~candidates:0 (Prng.of_seed 1L)));
  Alcotest.check_raises "forced out of range"
    (Invalid_argument "Injector.create: forced candidate out of range")
    (fun () ->
      ignore
        (Core.Injector.create ~spec ~candidates:10 ~first:(10, 0, 0)
           (Prng.of_seed 1L)))

let test_spacing_modes_diverge_but_both_work () =
  let w = Lazy.force qsort_workload in
  let spec = Core.Spec.multi Write ~max_mbf:5 ~win:(Fixed 10) in
  let a = Core.Campaign.run ~spacing:`Faulty w spec ~n:80 ~seed:6L in
  let b = Core.Campaign.run ~spacing:`Golden w spec ~n:80 ~seed:6L in
  Alcotest.(check int) "faulty sums" a.n
    (a.benign + a.detected + a.hang + a.no_output + a.sdc);
  Alcotest.(check int) "golden sums" b.n
    (b.benign + b.detected + b.hang + b.no_output + b.sdc);
  (* golden spacing pre-commits the schedule, so activations can only be
     fewer or equal in aggregate when crashes delay candidates *)
  Alcotest.(check bool) "activation bounded" true
    (Stats.Histogram.max_key a.activation <= 5
    && Stats.Histogram.max_key b.activation <= 5)

let test_weights_recorded () =
  let w = Lazy.force workload in
  (* read weights are the live distance (>= 1); write weights are 1 *)
  let base = Prng.of_seed 41L in
  for i = 0 to 29 do
    let er = Core.Experiment.run w (Core.Spec.single Read) (Prng.split_at base i) in
    let iw = (Option.get er.first).inj_weight in
    Alcotest.(check bool) "read weight >= 1" true (iw >= 1);
    let ew = Core.Experiment.run w (Core.Spec.single Write) (Prng.split_at base i) in
    Alcotest.(check int) "write weight = 1" 1 (Option.get ew.first).inj_weight
  done

let test_weighted_estimator () =
  let w = Lazy.force workload in
  let c = Core.Campaign.run w (Core.Spec.single Read) ~n:120 ~seed:8L in
  let wp = Core.Campaign.weighted_sdc_pct c in
  Alcotest.(check bool) "weighted pct in range" true (wp >= 0. && wp <= 100.);
  Alcotest.(check bool) "weights accumulated" true
    (c.weighted_total >= float_of_int c.n);
  Alcotest.(check bool) "weighted sdc <= total" true
    (c.weighted_sdc <= c.weighted_total);
  (* under inject-on-write the two estimators coincide *)
  let cw = Core.Campaign.run w (Core.Spec.single Write) ~n:120 ~seed:8L in
  Alcotest.(check bool) "write: weighted = unweighted" true
    (Float.abs (Core.Campaign.weighted_sdc_pct cw -. Core.Campaign.sdc_pct cw)
    < 1e-9)

(* ---- campaign ---- *)

let test_campaign_counts_sum () =
  let w = Lazy.force workload in
  let r = Core.Campaign.run w (Core.Spec.single Write) ~n:80 ~seed:7L in
  Alcotest.(check int) "outcomes sum to n" r.n
    (r.benign + r.detected + r.hang + r.no_output + r.sdc);
  Alcotest.(check int) "activation total = n" r.n
    (Stats.Histogram.total r.activation);
  let trap_sum = List.fold_left (fun a (_, c) -> a + c) 0 r.traps in
  Alcotest.(check int) "trap breakdown sums to detected" r.detected trap_sum

let test_campaign_deterministic () =
  let w = Lazy.force workload in
  let spec = Core.Spec.multi Read ~max_mbf:3 ~win:(Rnd (2, 10)) in
  let a = Core.Campaign.run w spec ~n:60 ~seed:21L in
  let b = Core.Campaign.run w spec ~n:60 ~seed:21L in
  Alcotest.(check int) "same sdc" a.sdc b.sdc;
  Alcotest.(check int) "same benign" a.benign b.benign;
  Alcotest.(check int) "same detected" a.detected b.detected

let test_campaign_seed_sensitivity () =
  let w = Lazy.force workload in
  let spec = Core.Spec.single Read in
  let a = Core.Campaign.run w spec ~n:100 ~seed:1L in
  let b = Core.Campaign.run w spec ~n:100 ~seed:2L in
  (* With different seeds the injected locations differ; identical full
     outcome vectors would indicate a seeding bug. *)
  Alcotest.(check bool) "different seeds differ somewhere" true
    ((a.benign, a.detected, a.hang, a.no_output, a.sdc)
    <> (b.benign, b.detected, b.hang, b.no_output, b.sdc)
    || a.sdc <> b.sdc)

let test_campaign_keeps_experiments () =
  let w = Lazy.force workload in
  let r =
    Core.Campaign.run ~keep_experiments:true w (Core.Spec.single Read) ~n:40
      ~seed:3L
  in
  Alcotest.(check int) "kept all" 40 (Array.length r.experiments);
  Array.iter
    (fun (e : Core.Experiment.t) ->
      Alcotest.(check bool) "first injection recorded" true (e.first <> None))
    r.experiments;
  let r2 = Core.Campaign.run w (Core.Spec.single Read) ~n:40 ~seed:3L in
  Alcotest.(check int) "unkept empty" 0 (Array.length r2.experiments);
  Alcotest.(check int) "same aggregate" r.sdc r2.sdc

let test_campaign_rejects_zero_n () =
  let w = Lazy.force workload in
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Campaign.run: n must be positive") (fun () ->
      ignore (Core.Campaign.run w (Core.Spec.single Read) ~n:0 ~seed:1L))

(* ---- runner ---- *)

let test_runner_caches () =
  let w = Lazy.force workload in
  let runner = Core.Runner.create ~n:30 () in
  let a = Core.Runner.campaign runner w (Core.Spec.single Read) in
  let b = Core.Runner.campaign runner w (Core.Spec.single Read) in
  Alcotest.(check bool) "cached (physically equal)" true (a == b);
  Alcotest.(check int) "cache size" 1 (Core.Runner.cache_size runner);
  let _ = Core.Runner.campaign_kept runner w (Core.Spec.single Read) in
  Alcotest.(check int) "kept cached separately" 2
    (Core.Runner.cache_size runner)

let test_runner_distinct_seeds_per_spec () =
  let w = Lazy.force workload in
  let runner = Core.Runner.create ~n:50 () in
  let a = Core.Runner.campaign runner w (Core.Spec.single Read) in
  let b =
    Core.Runner.campaign runner w (Core.Spec.multi Read ~max_mbf:2 ~win:(Fixed 1))
  in
  Alcotest.(check bool) "different campaign seeds" true (a.seed <> b.seed)

(* ---- csv ---- *)

let test_csv_row_shape () =
  let w = Lazy.force workload in
  let r = Core.Campaign.run w (Core.Spec.multi Write ~max_mbf:2 ~win:(Fixed 4)) ~n:30 ~seed:5L in
  let header_cols = String.split_on_char ',' Core.Csv.header in
  let row_cols = String.split_on_char ',' (Core.Csv.row r) in
  Alcotest.(check int) "same column count" (List.length header_cols)
    (List.length row_cols);
  Alcotest.(check string) "workload column" "spmv" (List.hd row_cols)

let prop_campaign_sums =
  QCheck.Test.make ~name:"campaign outcome counts always sum to n" ~count:8
    QCheck.(pair (int_range 1 6) (int_range 0 1000))
    (fun (mbf, seed) ->
      let w = Lazy.force workload in
      let spec =
        if mbf = 1 then Core.Spec.single Read
        else Core.Spec.multi Read ~max_mbf:mbf ~win:(Fixed 2)
      in
      let r = Core.Campaign.run w spec ~n:20 ~seed:(Int64.of_int seed) in
      r.benign + r.detected + r.hang + r.no_output + r.sdc = r.n)

let suites =
  [
    ( "core",
      [
        Alcotest.test_case "technique strings" `Quick test_technique_strings;
        Alcotest.test_case "win sample" `Quick test_win_sample;
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
        Alcotest.test_case "table1 shape (182 campaigns)" `Quick
          test_table1_shape;
        Alcotest.test_case "outcome classify" `Quick test_classify;
        Alcotest.test_case "outcome categories" `Quick test_outcome_categories;
        Alcotest.test_case "workload golden" `Quick test_workload_golden;
        Alcotest.test_case "workload rejects bad reference" `Quick
          test_workload_rejects_bad_reference;
        Alcotest.test_case "workload rejects trapping main" `Quick
          test_workload_rejects_trapping_main;
        Alcotest.test_case "single bit always activates 1" `Quick
          test_single_always_activates_one;
        Alcotest.test_case "experiment deterministic" `Quick
          test_experiment_deterministic;
        Alcotest.test_case "activation bounded by max-MBF" `Quick
          test_activation_bounded_by_mbf;
        Alcotest.test_case "win=0: distinct bits, same target" `Quick
          test_win0_multi_distinct_bits_same_target;
        Alcotest.test_case "win spacing respected" `Quick
          test_win_spacing_respected;
        Alcotest.test_case "forced first replays location" `Quick
          test_forced_first_replays_location;
        Alcotest.test_case "injector rejects bad input" `Quick
          test_injector_rejects_bad_input;
        Alcotest.test_case "spacing modes" `Quick
          test_spacing_modes_diverge_but_both_work;
        Alcotest.test_case "weights recorded" `Quick test_weights_recorded;
        Alcotest.test_case "weighted estimator" `Quick test_weighted_estimator;
        Alcotest.test_case "campaign counts sum" `Quick test_campaign_counts_sum;
        Alcotest.test_case "campaign deterministic" `Quick
          test_campaign_deterministic;
        Alcotest.test_case "campaign seed sensitivity" `Quick
          test_campaign_seed_sensitivity;
        Alcotest.test_case "campaign keeps experiments" `Quick
          test_campaign_keeps_experiments;
        Alcotest.test_case "campaign rejects n=0" `Quick
          test_campaign_rejects_zero_n;
        Alcotest.test_case "runner caches" `Quick test_runner_caches;
        Alcotest.test_case "runner seeds per spec" `Quick
          test_runner_distinct_seeds_per_spec;
        Alcotest.test_case "csv row shape" `Quick test_csv_row_shape;
        QCheck_alcotest.to_alcotest prop_campaign_sums;
      ] );
  ]
