let () =
  Alcotest.run "onebit"
    (Suite_prng.suites @ Suite_stats.suites @ Suite_ir.suites @ Suite_vm.suites
   @ Suite_bench.suites @ Suite_core.suites @ Suite_analysis.suites
   @ Suite_report.suites @ Suite_harden.suites @ Suite_parse.suites @ Suite_differential.suites @ Suite_targets.suites @ Suite_edge.suites @ Suite_severity.suites @ Suite_dataflow.suites @ Suite_store.suites @ Suite_engine.suites
   @ Suite_obs.suites @ Suite_vm_code.suites @ Suite_checkpoint.suites
   @ Suite_incremental.suites @ Suite_fleet.suites @ Suite_domain.suites
   @ Suite_batch.suites @ Suite_adaptive.suites)
