(* Tests for the multicore campaign engine: the work-stealing deque, the
   domain pool, determinism under parallelism (the load-bearing property:
   any worker count yields a bit-identical Campaign.result), and
   resume-after-kill through the result store. *)

let workload =
  lazy
    (let e = Option.get (Bench_suite.Registry.find "spmv") in
     Core.Workload.make ~name:e.name ~expected_output:(e.reference ())
       (e.build ()))

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "onebit-engine-test-%d-%d" (Unix.getpid ()) !counter)

(* ---- deque ---- *)

let test_deque_lifo_fifo () =
  let d = Engine.Deque.create ~capacity:4 () in
  for i = 1 to 100 do
    Engine.Deque.push_bottom d i
  done;
  Alcotest.(check int) "length" 100 (Engine.Deque.length d);
  Alcotest.(check (option int)) "owner pops newest" (Some 100)
    (Engine.Deque.pop_bottom d);
  Alcotest.(check (option int)) "thief steals oldest" (Some 1)
    (Engine.Deque.steal_top d);
  Alcotest.(check (option int)) "steal again" (Some 2)
    (Engine.Deque.steal_top d);
  Alcotest.(check (option int)) "pop again" (Some 99)
    (Engine.Deque.pop_bottom d);
  let rec drain n =
    match Engine.Deque.pop_bottom d with
    | Some _ -> drain (n + 1)
    | None -> n
  in
  Alcotest.(check int) "rest drains" 96 (drain 0);
  Alcotest.(check (option int)) "empty pop" None (Engine.Deque.pop_bottom d);
  Alcotest.(check (option int)) "empty steal" None (Engine.Deque.steal_top d)

(* ---- pool ---- *)

let test_pool_runs_every_task () =
  let hits = Array.make 64 0 in
  let tasks =
    Array.init 64 (fun i ->
        fun ~worker:_ -> hits.(i) <- hits.(i) + 1)
  in
  Engine.Pool.run ~jobs:4 tasks;
  Alcotest.(check bool) "each task ran exactly once" true
    (Array.for_all (( = ) 1) hits)

let test_pool_propagates_failure () =
  let tasks =
    Array.init 16 (fun i ->
        fun ~worker:_ -> if i = 7 then failwith "boom")
  in
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      Engine.Pool.run ~jobs:4 tasks)

(* ---- shards ---- *)

let test_shards_tile () =
  Alcotest.(check (list (pair int int)))
    "exact tiling"
    [ (0, 25); (25, 50); (50, 60) ]
    (Engine.shards_of ~n:60 ~shard_size:25);
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Engine.shards_of: n must be positive") (fun () ->
      ignore (Engine.shards_of ~n:0 ~shard_size:25))

(* ---- determinism under parallelism ---- *)

let test_parallel_equals_sequential () =
  let w = Lazy.force workload in
  let spec = Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 5) in
  let n = 120 and seed = 99L in
  let seq = Core.Campaign.run w spec ~n ~seed in
  let par = Engine.run_campaign ~jobs:4 w spec ~n ~seed in
  Alcotest.(check bool) "jobs=4 bit-identical" true
    (Core.Campaign.equal_result seq par)

let test_keep_experiments_parallel () =
  let w = Lazy.force workload in
  let spec = Core.Spec.single Write in
  let n = 60 and seed = 3L in
  let seq = Core.Campaign.run ~keep_experiments:true w spec ~n ~seed in
  let par =
    Engine.run_campaign ~jobs:4 ~keep_experiments:true w spec ~n ~seed
  in
  Alcotest.(check int) "experiments kept" n (Array.length par.experiments);
  Alcotest.(check bool) "records identical" true
    (Core.Campaign.equal_result seq par)

let prop_jobs_invariant =
  QCheck.Test.make ~name:"jobs=1 and jobs=8 give identical results" ~count:6
    QCheck.(
      quad (int_range 10 60) (int_range 1 4) (int_range 0 8)
        (int_range 0 10000))
    (fun (n, max_mbf, win, seed_int) ->
      let w = Lazy.force workload in
      let spec =
        if max_mbf = 1 then Core.Spec.single Read
        else Core.Spec.multi Read ~max_mbf ~win:(Fixed win)
      in
      let seed = Int64.of_int seed_int in
      let a = Engine.run_campaign ~jobs:1 ~shard_size:7 w spec ~n ~seed in
      let b = Engine.run_campaign ~jobs:8 ~shard_size:7 w spec ~n ~seed in
      Core.Campaign.equal_result a b)

(* ---- store integration ---- *)

let test_store_satisfies_second_run () =
  let w = Lazy.force workload in
  let spec = Core.Spec.single Read in
  let n = 100 and seed = 11L in
  let store = Store.open_dir (temp_dir ()) in
  let r1, s1 = Engine.run_campaign_stats ~jobs:2 ~store w spec ~n ~seed in
  Alcotest.(check int) "first run executes all shards" 4 s1.shards_executed;
  let r2, s2 = Engine.run_campaign_stats ~jobs:2 ~store w spec ~n ~seed in
  Alcotest.(check int) "second run executes nothing" 0 s2.shards_executed;
  Alcotest.(check int) "second run reads 4 shards" 4 s2.shards_from_store;
  Alcotest.(check int) "experiment accounting" n s2.experiments_from_store;
  Alcotest.(check bool) "stored result identical" true
    (Core.Campaign.equal_result r1 r2);
  Store.close store

let test_resume_after_kill () =
  let w = Lazy.force workload in
  let spec = Core.Spec.single Write in
  let n = 100 and seed = 5L in
  let reference = Core.Campaign.run w spec ~n ~seed in
  let dir = temp_dir () in
  let store = Store.open_dir dir in
  ignore (Engine.run_campaign_stats ~store w spec ~n ~seed);
  Store.close store;
  (* Simulate a kill after two durable records: keep the first two lines
     of the segment and append half of the third, as an interrupted
     append would leave it. *)
  let seg =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> function
    | [ f ] -> Filename.concat dir f
    | l -> Alcotest.failf "expected one segment, got %d" (List.length l)
  in
  let lines =
    In_channel.with_open_bin seg In_channel.input_all
    |> String.split_on_char '\n'
  in
  let l1, l2, l3 =
    match lines with
    | a :: b :: c :: _ -> (a, b, c)
    | _ -> Alcotest.fail "expected at least 3 records"
  in
  Out_channel.with_open_bin seg (fun oc ->
      Out_channel.output_string oc
        (l1 ^ "\n" ^ l2 ^ "\n" ^ String.sub l3 0 (String.length l3 / 2)));
  (* Reopen: the half-record is a truncated tail, the two whole records
     are live, and the engine re-executes only the missing shards. *)
  let store = Store.open_dir dir in
  Alcotest.(check int) "truncated tail detected" 1 (Store.stats store).truncated;
  Alcotest.(check int) "two records survive" 2 (Store.stats store).records;
  let r, rs = Engine.run_campaign_stats ~jobs:2 ~store w spec ~n ~seed in
  Alcotest.(check int) "two shards from store" 2 rs.shards_from_store;
  Alcotest.(check int) "two shards re-executed" 2 rs.shards_executed;
  Alcotest.(check bool) "resumed result identical" true
    (Core.Campaign.equal_result reference r);
  (* And the store is whole again. *)
  let _, rs' = Engine.run_campaign_stats ~store w spec ~n ~seed in
  Alcotest.(check int) "store repaired" 4 rs'.shards_from_store;
  Store.close store

let test_runner_cache_stats () =
  let w = Lazy.force workload in
  let store = Store.open_dir (temp_dir ()) in
  let runner = Engine.runner ~n:50 ~seed:2L ~jobs:2 ~store () in
  let spec = Core.Spec.single Read in
  ignore (Core.Runner.campaign runner w spec);
  ignore (Core.Runner.campaign runner w spec);
  let s = Core.Runner.cache_stats runner in
  Alcotest.(check int) "one dispatch" 1 s.dispatched;
  Alcotest.(check int) "one memory hit" 1 s.mem_hits;
  Alcotest.(check int) "shards executed" 2 s.shards_executed;
  Alcotest.(check int) "no store hits yet" 0 s.store_shard_hits;
  (* A fresh runner over the same store answers from disk. *)
  let runner' = Engine.runner ~n:50 ~seed:2L ~jobs:2 ~store () in
  ignore (Core.Runner.campaign runner' w spec);
  let s' = Core.Runner.cache_stats runner' in
  Alcotest.(check int) "store hits" 2 s'.store_shard_hits;
  Alcotest.(check int) "nothing executed" 0 s'.shards_executed;
  Store.close store

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "deque LIFO/FIFO" `Quick test_deque_lifo_fifo;
        Alcotest.test_case "pool runs every task" `Quick
          test_pool_runs_every_task;
        Alcotest.test_case "pool propagates failure" `Quick
          test_pool_propagates_failure;
        Alcotest.test_case "shards tile [0,n)" `Quick test_shards_tile;
        Alcotest.test_case "parallel = sequential" `Quick
          test_parallel_equals_sequential;
        Alcotest.test_case "keep_experiments parallel" `Quick
          test_keep_experiments_parallel;
        QCheck_alcotest.to_alcotest prop_jobs_invariant;
        Alcotest.test_case "store satisfies second run" `Quick
          test_store_satisfies_second_run;
        Alcotest.test_case "resume after kill" `Quick test_resume_after_kill;
        Alcotest.test_case "runner cache stats" `Quick test_runner_cache_stats;
      ] );
  ]
