(* Differential tests for the checkpoint-tree suffix batcher
   (Core.Batch): a shard executed as checkpoint groups — one full
   page-restore amortised per group, O(dirty) baseline resets between
   members, sorted event queue — must be byte-identical to the
   one-at-a-time path for every domain, technique, window, multiplicity
   and jobs count, down to the full injection logs; and `onebit
   reproduce`'s replay contract (unbatched full execution) must hold
   against batched campaign records. *)

let with_batch on f =
  let saved = Core.Config.batching () in
  Core.Config.set_batch on;
  Fun.protect ~finally:(fun () -> Core.Config.set_batch saved) f

let with_checkpoint ?interval on f =
  let saved_on = Core.Config.checkpointing ()
  and saved_k = Core.Config.checkpoint_interval () in
  Core.Config.set_checkpoint ?interval on;
  Fun.protect
    ~finally:(fun () -> Core.Config.set_checkpoint ~interval:saved_k saved_on)
    f

let injection_equal (a : Core.Injector.injection) (b : Core.Injector.injection)
    =
  Core.Domain.equal a.inj_domain b.inj_domain
  && a.inj_dyn = b.inj_dyn && a.inj_cand = b.inj_cand
  && a.inj_loc = b.inj_loc && a.inj_ty = b.inj_ty && a.inj_slot = b.inj_slot
  && a.inj_bit = b.inj_bit && a.inj_weight = b.inj_weight

let experiment_equal (a : Core.Experiment.t) (b : Core.Experiment.t) =
  a.outcome = b.outcome && a.activated = b.activated
  && a.dyn_count = b.dyn_count
  && String.equal a.output b.output
  && (match (a.first, b.first) with
     | None, None -> true
     | Some x, Some y -> injection_equal x y
     | _ -> false)

let registry_workload name =
  let d = Option.get (Bench_suite.Registry.find name) in
  Core.Workload.make ~name ~expected_output:(d.reference ()) (d.build ())

(* The unbatched reference for one experiment index: a private injector
   through [Experiment.run_raw] (one-at-a-time path, checkpointing still
   on), returning the packaged experiment plus the full injection log. *)
let reference w spec ~base i =
  let inj =
    Core.Injector.create ~spec
      ~candidates:(Core.Workload.candidates w spec)
      (Prng.split_at base i)
  in
  let res = Core.Experiment.run_raw w inj in
  let e =
    {
      Core.Experiment.outcome =
        Core.Outcome.classify ~golden_output:w.Core.Workload.golden.output res;
      activated = Core.Injector.activated inj;
      first = Core.Injector.first_injection inj;
      dyn_count = res.dyn_count;
      output = res.output;
    }
  in
  (e, Core.Injector.injections inj)

(* Batched vs unbatched over a set of indices, full-log equality. *)
let check_indices label w spec ~seed ~interval indices =
  with_checkpoint ~interval true (fun () ->
      let batched =
        with_batch true (fun () ->
            Core.Batch.run_indices_logged w spec ~seed ~indices)
      in
      match batched with
      | None ->
          (* no checkpoint set for this workload: nothing to compare *)
          ()
      | Some batched ->
          let base = Prng.of_seed seed in
          Array.iteri
            (fun k i ->
              let e_b, log_b = batched.(k) in
              let e_u, log_u =
                with_batch false (fun () -> reference w spec ~base i)
              in
              let what = Printf.sprintf "%s #%d" label i in
              Alcotest.(check bool)
                (what ^ " experiment") true (experiment_equal e_u e_b);
              Alcotest.(check bool)
                (what ^ " injection log") true
                (List.equal injection_equal log_u log_b))
            indices)

let all_domain_specs domain =
  [
    Core.Spec.single ~domain Read;
    Core.Spec.single ~domain Write;
    Core.Spec.multi ~domain Read ~max_mbf:3 ~win:(Fixed 0);
    Core.Spec.multi ~domain Write ~max_mbf:3 ~win:(Fixed 1);
    Core.Spec.multi ~domain Read ~max_mbf:3 ~win:(Fixed 100);
    Core.Spec.multi ~domain Write ~max_mbf:4 ~win:(Fixed 0);
    Core.Spec.multi ~domain Read ~max_mbf:4 ~win:(Fixed 1);
    Core.Spec.multi ~domain Write ~max_mbf:4 ~win:(Fixed 100);
  ]

(* Registry programs x all domains x techniques x win in {0,1,100} x
   m in {1,3,4}: tiny intervals force many distinct restore points, so
   groups form, split and interleave with the ord = -1 pseudo-group. *)
let test_registry_differential () =
  let groups0, members0 = Core.Batch.stats () in
  List.iter
    (fun (name, interval) ->
      let w = registry_workload name in
      List.iter
        (fun domain ->
          List.iter
            (fun spec ->
              check_indices
                (name ^ " " ^ Core.Spec.label spec)
                w spec ~seed:20260808L ~interval
                (Array.init 12 (fun k -> k)))
            (all_domain_specs domain))
        Core.Domain.all)
    [ ("crc32", 64); ("qsort", 128) ];
  let groups1, members1 = Core.Batch.stats () in
  Alcotest.(check bool) "groups actually formed" true (groups1 > groups0);
  Alcotest.(check bool)
    "groups amortise (fewer groups than members)" true
    (members1 - members0 > groups1 - groups0)

(* Random programs under the same product of axes (reduced index count
   to keep the suite fast). *)
let prop_random_differential =
  QCheck.Test.make ~name:"batched run matches unbatched (random programs)"
    ~count:40
    (QCheck.make Suite_differential.case_gen)
    (fun (ops, seeds) ->
      let seeds = if seeds = [] then [ 1L ] else seeds in
      let ops = Suite_differential.sanitize ops seeds in
      let m = Suite_differential.build_program ops seeds in
      (match Core.Workload.make ~name:"rand" m with
      | exception Invalid_argument _ -> ()
      | w ->
          List.iter
            (fun domain ->
              List.iter
                (fun (technique, max_mbf, win) ->
                  let spec =
                    if max_mbf = 1 then Core.Spec.single ~domain technique
                    else
                      Core.Spec.multi ~domain technique ~max_mbf
                        ~win:(Fixed win)
                  in
                  check_indices
                    ("rand " ^ Core.Spec.label spec)
                    w spec ~seed:7L ~interval:2 [| 0; 1; 2; 3 |])
                [
                  (Core.Technique.Read, 1, 0);
                  (Core.Technique.Write, 3, 0);
                  (Core.Technique.Read, 3, 1);
                  (Core.Technique.Write, 3, 100);
                  (Core.Technique.Read, 4, 1);
                  (Core.Technique.Write, 4, 100);
                ])
            Core.Domain.all);
      true)

(* Whole campaigns across the batch switch — sequential and through the
   engine at jobs in {1,4} — must be equal down to kept experiments. *)
let test_campaign_switch () =
  List.iter
    (fun domain ->
      let w = registry_workload "qsort" in
      let spec = Core.Spec.multi ~domain Read ~max_mbf:3 ~win:(Fixed 10) in
      with_checkpoint ~interval:100 true (fun () ->
          let off =
            with_batch false (fun () ->
                Core.Campaign.run ~keep_experiments:true w spec ~n:60 ~seed:99L)
          in
          let on =
            with_batch true (fun () ->
                Core.Campaign.run ~keep_experiments:true w spec ~n:60 ~seed:99L)
          in
          Alcotest.(check bool)
            (Core.Domain.to_string domain ^ " campaign equal across switch")
            true
            (Core.Campaign.equal_result off on);
          List.iter
            (fun jobs ->
              let eng =
                with_batch true (fun () ->
                    Engine.run_campaign ~jobs ~shard_size:10
                      ~keep_experiments:true w spec ~n:60 ~seed:99L)
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s batched engine jobs=%d equals unbatched"
                   (Core.Domain.to_string domain)
                   jobs)
                true
                (Core.Campaign.equal_result off eng))
            [ 1; 4 ]))
    Core.Domain.all

(* Restore amortisation is observable: a batched campaign performs
   strictly fewer full restores than experiments, and baseline resets
   appear; unbatched performs no baseline resets. *)
let test_restore_amortisation () =
  let w = registry_workload "crc32" in
  let spec = Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 10) in
  with_checkpoint ~interval:64 true (fun () ->
      (* Warm up golden/checkpoint recording outside the measured span. *)
      ignore (Core.Workload.ensure_checkpoints w);
      let full0, undo0 = Vm.Memory.restore_stats () in
      let _ =
        with_batch false (fun () -> Core.Campaign.run w spec ~n:100 ~seed:5L)
      in
      let full1, undo1 = Vm.Memory.restore_stats () in
      Alcotest.(check int) "unbatched: no baseline resets" 0 (undo1 - undo0);
      let _ =
        with_batch true (fun () -> Core.Campaign.run w spec ~n:100 ~seed:5L)
      in
      let full2, undo2 = Vm.Memory.restore_stats () in
      Alcotest.(check bool) "batched: baseline resets appear" true
        (undo2 - undo1 > 0);
      Alcotest.(check bool) "batched: fewer full restores" true
        (full2 - full1 < full1 - full0);
      Alcotest.(check int)
        "batched: every resumed member restored once either way"
        (full1 - full0)
        ((full2 - full1) + (undo2 - undo1)))

(* Memory baseline overlay semantics (the intra-group step). *)
let test_memory_baseline () =
  let region = Bytes.init 64 (fun i -> Char.chr (i land 0xFF)) in
  let tmpl =
    Vm.Memory.create_template ~size:4096 ~regions:[ (1024, region) ]
  in
  let m = Vm.Memory.with_undo tmpl in
  (* Build a mid-run image and snapshot it. *)
  Vm.Memory.write_int m ~width:4 ~addr:1024 0xBEEF;
  Vm.Memory.write_int m ~width:8 ~addr:1056 42;
  let snap = Vm.Memory.snapshot_pages m in
  Vm.Memory.reset m;
  (* Install as baseline; arena must equal the snapshot image. *)
  Vm.Memory.set_baseline m snap;
  Alcotest.(check int) "baseline word" 0xBEEF
    (Vm.Memory.read_int m ~width:4 ~addr:1024);
  Alcotest.check_raises "snapshot refused under baseline"
    (Invalid_argument "Memory.snapshot_pages: baseline overlay installed")
    (fun () -> ignore (Vm.Memory.snapshot_pages m));
  (* Dirty baseline and non-baseline pages, then rewind to baseline. *)
  Vm.Memory.write_int m ~width:4 ~addr:1024 7;
  Vm.Memory.write_int m ~width:1 ~addr:1060 9;
  Vm.Memory.reset_to_baseline m;
  Alcotest.(check int) "baseline page rewound to overlay" 0xBEEF
    (Vm.Memory.read_int m ~width:4 ~addr:1024);
  Alcotest.(check int) "baseline second word intact" 42
    (Vm.Memory.read_int m ~width:8 ~addr:1056);
  (* reset_to_baseline must reproduce restore_pages exactly. *)
  let m2 = Vm.Memory.with_undo tmpl in
  Vm.Memory.restore_pages m2 snap;
  Alcotest.(check bool) "baseline reset == restore_pages" true
    (Bytes.equal
       (Vm.Memory.peek_bytes m ~addr:0 ~len:4096)
       (Vm.Memory.peek_bytes m2 ~addr:0 ~len:4096));
  (* A plain reset drops the overlay and returns to the template. *)
  Vm.Memory.reset m;
  Alcotest.(check bool) "reset returns to template" true
    (Bytes.equal
       (Vm.Memory.peek_bytes m ~addr:0 ~len:4096)
       (Vm.Memory.peek_bytes tmpl ~addr:0 ~len:4096));
  Alcotest.check_raises "no baseline after reset"
    (Invalid_argument "Memory.reset_to_baseline: no baseline installed")
    (fun () -> Vm.Memory.reset_to_baseline m)

(* Satellite regression: a record from a batched campaign reproduces
   field-for-field through the unbatched full-execution replay path —
   what `onebit reproduce` runs regardless of ONEBIT_BATCH. *)
let test_reproduce_from_batched_record () =
  List.iter
    (fun domain ->
      let w = registry_workload "crc32" in
      let spec = Core.Spec.multi ~domain Write ~max_mbf:3 ~win:(Fixed 10) in
      let n = 30 and seed = 13L in
      let r =
        with_checkpoint ~interval:64 true (fun () ->
            with_batch true (fun () ->
                Core.Campaign.run ~keep_experiments:true w spec ~n ~seed))
      in
      List.iter
        (fun index ->
          let stored = r.Core.Campaign.experiments.(index) in
          let inj =
            Core.Injector.create ~spec
              ~candidates:(Core.Workload.candidates w spec)
              (Prng.split_at (Prng.of_seed seed) index)
          in
          (* The replay path: full execution, no checkpoint restore, no
             batching, whatever the process-wide switches say. *)
          let res =
            with_batch true (fun () ->
                Core.Experiment.run_raw ~checkpoint:false w inj)
          in
          let outcome =
            Core.Outcome.classify ~golden_output:w.golden.output res
          in
          let what =
            Printf.sprintf "%s #%d" (Core.Spec.label spec) index
          in
          Alcotest.(check bool) (what ^ " outcome") true
            (stored.outcome = outcome);
          Alcotest.(check int) (what ^ " activated") stored.activated
            (Core.Injector.activated inj);
          Alcotest.(check int) (what ^ " dyn") stored.dyn_count res.dyn_count;
          Alcotest.(check string) (what ^ " output") stored.output res.output;
          Alcotest.(check bool) (what ^ " first injection") true
            (match (stored.first, Core.Injector.first_injection inj) with
            | None, None -> true
            | Some a, Some b -> injection_equal a b
            | _ -> false))
        [ 0; 7; 19; 29 ])
    Core.Domain.all

let suites =
  [
    ( "batch",
      [
        Alcotest.test_case "registry differential (all domains)" `Quick
          test_registry_differential;
        QCheck_alcotest.to_alcotest prop_random_differential;
        Alcotest.test_case "campaign equal across batch switch" `Quick
          test_campaign_switch;
        Alcotest.test_case "restore amortisation observable" `Quick
          test_restore_amortisation;
        Alcotest.test_case "memory baseline overlay" `Quick
          test_memory_baseline;
        Alcotest.test_case "reproduce from batched record" `Quick
          test_reproduce_from_batched_record;
      ] );
  ]
