(* Lint gate for the bench suite: every registry program, including the
   [-large] variants, must validate and lint clean.  Run it standalone or
   via the [@lint] dune alias (`dune build @lint`). *)

let () =
  let bad = ref 0 in
  List.iter
    (fun (e : Bench_suite.Desc.t) ->
      let m = e.build () in
      match Ir.Validate.check m with
      | Error es ->
          List.iter (fun s -> Printf.printf "%s: invalid: %s\n" e.name s) es;
          bad := !bad + List.length es
      | Ok () ->
          let fs = Dataflow.Lint.check m in
          List.iter
            (fun f -> Printf.printf "%s: %s\n" e.name (Dataflow.Lint.to_string f))
            fs;
          bad := !bad + List.length fs)
    (Bench_suite.Registry.all @ Bench_suite.Registry.large);
  if !bad > 0 then begin
    Printf.printf "lint: %d finding(s)\n" !bad;
    exit 1
  end
  else print_endline "lint: all registry programs clean"
