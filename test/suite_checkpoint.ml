(* Differential tests for golden-prefix checkpoint reuse (Vm.Checkpoint +
   Vm.Code.resume): an experiment that restores the fault-free prefix
   from a checkpoint must be bit-identical — same outcome, output,
   dynamic count, candidate ordinals and full injection log — to one
   that re-executes the program from dynamic instruction 0, for every
   technique, window size and multiplicity, and the dirty-page undo log
   must rewind memory exactly even after traps. *)

let with_checkpoint ?interval on f =
  let saved_on = Core.Config.checkpointing ()
  and saved_k = Core.Config.checkpoint_interval () in
  Core.Config.set_checkpoint ?interval on;
  Fun.protect
    ~finally:(fun () -> Core.Config.set_checkpoint ~interval:saved_k saved_on)
    f

let injection_equal (a : Core.Injector.injection) (b : Core.Injector.injection)
    =
  a.inj_dyn = b.inj_dyn && a.inj_cand = b.inj_cand && a.inj_loc = b.inj_loc && Core.Domain.equal a.inj_domain b.inj_domain
  && a.inj_ty = b.inj_ty && a.inj_slot = b.inj_slot && a.inj_bit = b.inj_bit
  && a.inj_weight = b.inj_weight

let result_equal name (a : Vm.Exec.result) (b : Vm.Exec.result) =
  Alcotest.(check bool) (name ^ " status") true (a.status = b.status);
  Alcotest.(check string) (name ^ " output") a.output b.output;
  Alcotest.(check int) (name ^ " dyn") a.dyn_count b.dyn_count;
  Alcotest.(check int) (name ^ " read cands") a.read_cands b.read_cands;
  Alcotest.(check int) (name ^ " write cands") a.write_cands b.write_cands

(* One experiment through [run_raw] with checkpointing off, then on:
   identical runs and identical full injection logs. *)
let check_experiment w spec ~interval ~base i =
  let mk () =
    let cands = Core.Workload.candidates w spec in
    Core.Injector.create ~spec ~candidates:cands (Prng.split_at base i)
  in
  let inj_full = mk () in
  let r_full =
    with_checkpoint false (fun () -> Core.Experiment.run_raw w inj_full)
  in
  let inj_ck = mk () in
  let r_ck =
    with_checkpoint ~interval true (fun () ->
        Core.Experiment.run_raw w inj_ck)
  in
  let label =
    Printf.sprintf "%s k=%d #%d" (Core.Spec.label spec) interval i
  in
  result_equal label r_full r_ck;
  Alcotest.(check int)
    (label ^ " activated")
    (Core.Injector.activated inj_full)
    (Core.Injector.activated inj_ck);
  let log_f = Core.Injector.injections inj_full
  and log_c = Core.Injector.injections inj_ck in
  Alcotest.(check int)
    (label ^ " log length")
    (List.length log_f) (List.length log_c);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) (label ^ " injection") true (injection_equal a b))
    log_f log_c

let registry_workload name =
  let d = Option.get (Bench_suite.Registry.find name) in
  Core.Workload.make ~name ~expected_output:(d.reference ())
    (d.build ())

(* Registry programs across both techniques, win sizes {0,1,100} and
   multiplicities {1,3,4}: qsort's recursion exercises mid-call-stack
   checkpoints, fft the float register files and large dirty sets.
   Small intervals force restores near every possible stack shape. *)
let test_registry_differential () =
  let restores0 = snd (Vm.Checkpoint.stats ()) in
  List.iter
    (fun (name, interval) ->
      let w = registry_workload name in
      let base = Prng.of_seed 20260806L in
      let specs =
        [
          Core.Spec.single Read;
          Core.Spec.single Write;
          Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 0);
          Core.Spec.multi Write ~max_mbf:3 ~win:(Fixed 0);
          Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 1);
          Core.Spec.multi Write ~max_mbf:3 ~win:(Fixed 1);
          Core.Spec.multi Read ~max_mbf:4 ~win:(Fixed 100);
          Core.Spec.multi Write ~max_mbf:4 ~win:(Fixed 100);
        ]
      in
      List.iter
        (fun spec ->
          for i = 0 to 9 do
            check_experiment w spec ~interval ~base i
          done)
        specs)
    [ ("crc32", 64); ("qsort", 128); ("fft", 512) ];
  let restores1 = snd (Vm.Checkpoint.stats ()) in
  Alcotest.(check bool)
    "checkpoints actually restored" true
    (restores1 > restores0)

(* Random straight-line programs x techniques x win in {0,1,100} x
   m in {1,3,4}, checkpoint on vs off.  A tiny interval makes even these
   short programs cross capture thresholds. *)
let prop_random_differential =
  QCheck.Test.make ~name:"checkpointed run matches full execution" ~count:60
    (QCheck.make Suite_differential.case_gen)
    (fun (ops, seeds) ->
      let seeds = if seeds = [] then [ 1L ] else seeds in
      let ops = Suite_differential.sanitize ops seeds in
      let m = Suite_differential.build_program ops seeds in
      match Core.Workload.make ~name:"rand" m with
      | exception Invalid_argument _ ->
          true (* golden trapped/hung or no candidates: no workload *)
      | w ->
          let base = Prng.of_seed 7L in
          List.for_all
            (fun technique ->
              List.for_all
                (fun (max_mbf, win) ->
                  let spec =
                    if max_mbf = 1 then Core.Spec.single technique
                    else Core.Spec.multi technique ~max_mbf ~win
                  in
                  List.for_all
                    (fun i ->
                      let mk () =
                        let cands =
                          Core.Workload.candidates w spec
                        in
                        Core.Injector.create ~spec ~candidates:cands
                          (Prng.split_at base i)
                      in
                      let i1 = mk () in
                      let r1 =
                        with_checkpoint false (fun () ->
                            Core.Experiment.run_raw w i1)
                      in
                      let i2 = mk () in
                      let r2 =
                        with_checkpoint ~interval:2 true (fun () ->
                            Core.Experiment.run_raw w i2)
                      in
                      r1.Vm.Exec.status = r2.Vm.Exec.status
                      && String.equal r1.output r2.output
                      && r1.dyn_count = r2.dyn_count
                      && r1.read_cands = r2.read_cands
                      && r1.write_cands = r2.write_cands
                      && List.equal injection_equal
                           (Core.Injector.injections i1)
                           (Core.Injector.injections i2))
                    [ 0; 1; 2 ])
                [
                  (1, Core.Win.Fixed 0);
                  (3, Fixed 0);
                  (3, Fixed 1);
                  (3, Fixed 100);
                  (4, Fixed 1);
                ])
            [ Core.Technique.Read; Core.Technique.Write ])

(* Whole campaigns across the checkpoint switch, including a workload
   created while checkpointing was off (recording then happens lazily on
   first checkpointed use). *)
let test_campaign_differential () =
  let w = with_checkpoint false (fun () -> registry_workload "qsort") in
  List.iter
    (fun spec ->
      let off =
        with_checkpoint false (fun () ->
            Core.Campaign.run ~keep_experiments:true w spec ~n:60 ~seed:99L)
      in
      let on =
        with_checkpoint ~interval:100 true (fun () ->
            Core.Campaign.run ~keep_experiments:true w spec ~n:60 ~seed:99L)
      in
      Alcotest.(check bool)
        (Core.Spec.label spec ^ " campaign equal")
        true
        (Core.Campaign.equal_result off on))
    [
      Core.Spec.single Read;
      Core.Spec.multi Write ~max_mbf:3 ~win:(Fixed 10);
      Core.Spec.multi Read ~max_mbf:5 ~win:(Rnd (2, 10));
    ]

(* The engine at several worker counts with checkpointing on must match
   the sequential full-execution campaign. *)
let test_engine_differential () =
  let w = registry_workload "crc32" in
  let spec = Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 10) in
  let off =
    with_checkpoint false (fun () ->
        Core.Campaign.run ~keep_experiments:true w spec ~n:80 ~seed:3L)
  in
  List.iter
    (fun jobs ->
      let on =
        with_checkpoint ~interval:200 true (fun () ->
            Engine.run_campaign ~jobs ~shard_size:10 ~keep_experiments:true w
              spec ~n:80 ~seed:3L)
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d equals full sequential" jobs)
        true
        (Core.Campaign.equal_result off on))
    [ 1; 4 ]

(* ---- dirty-page undo log ---- *)

let test_memory_undo () =
  let region = Bytes.init 64 (fun i -> Char.chr (i land 0xFF)) in
  let tmpl =
    Vm.Memory.create_template ~size:4096 ~regions:[ (1024, region) ]
  in
  let m = Vm.Memory.with_undo tmpl in
  Alcotest.(check bool) "tracks undo" true (Vm.Memory.tracks_undo m);
  Alcotest.(check int) "clean at start" 0 (Vm.Memory.dirty_pages m);
  Vm.Memory.write_int m ~width:4 ~addr:1024 0xDEAD;
  Vm.Memory.write_int m ~width:8 ~addr:1056 77;
  Alcotest.(check bool) "dirty after writes" true (Vm.Memory.dirty_pages m > 0);
  (* Snapshot the touched pages, dirty some more, then restore. *)
  let snap = Vm.Memory.snapshot_pages m in
  Vm.Memory.write_int m ~width:4 ~addr:1028 123456;
  Vm.Memory.restore_pages m snap;
  Alcotest.(check int) "restored word" 0xDEAD
    (Vm.Memory.read_int m ~width:4 ~addr:1024);
  Alcotest.(check int) "second restored word" 77
    (Vm.Memory.read_int m ~width:8 ~addr:1056);
  Alcotest.(check int) "untouched word back to template"
    (Vm.Memory.read_int tmpl ~width:4 ~addr:1028)
    (Vm.Memory.read_int m ~width:4 ~addr:1028);
  (* Reset rewinds to the template image even after a trapped access. *)
  Vm.Memory.write_int m ~width:1 ~addr:1025 0xFF;
  (try Vm.Memory.write_int m ~width:4 ~addr:200 1 with
  | Vm.Trap.Trap Vm.Trap.Segfault -> ());
  (try Vm.Memory.write_int m ~width:4 ~addr:1026 1 with
  | Vm.Trap.Trap Vm.Trap.Misaligned -> ());
  Vm.Memory.reset m;
  Alcotest.(check int) "clean after reset" 0 (Vm.Memory.dirty_pages m);
  Alcotest.(check bool) "arena equals template" true
    (Bytes.equal
       (Vm.Memory.peek_bytes m ~addr:0 ~len:4096)
       (Vm.Memory.peek_bytes tmpl ~addr:0 ~len:4096));
  (* Guard semantics survive reset/restore: unmapped and misaligned
     accesses still trap. *)
  Alcotest.check_raises "guard page intact"
    (Vm.Trap.Trap Vm.Trap.Segfault) (fun () ->
      ignore (Vm.Memory.read_int m ~width:4 ~addr:0));
  Alcotest.check_raises "alignment intact"
    (Vm.Trap.Trap Vm.Trap.Misaligned) (fun () ->
      ignore (Vm.Memory.read_int m ~width:4 ~addr:1026))

(* Working memories are reused and rewound exactly across experiments
   that trap (Segfault from wild addresses is common under address-bit
   flips): hammer one workload through many checkpointed experiments,
   then check its per-domain working memory replays the golden run. *)
let test_working_memory_after_traps () =
  let w = registry_workload "qsort" in
  let spec = Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 1) in
  let seen_trap = ref false in
  with_checkpoint ~interval:64 true (fun () ->
      let base = Prng.of_seed 11L in
      for i = 0 to 59 do
        let e = Core.Experiment.run w spec (Prng.split_at base i) in
        match e.outcome with
        | Detected _ -> seen_trap := true
        | _ -> ()
      done;
      Alcotest.(check bool) "some experiments trapped" true !seen_trap;
      (* A golden replay on the same working memory must still be exact. *)
      let mem =
        Vm.Checkpoint.working_mem ~digest:w.digest
          w.prog.Vm.Program.mem_template
      in
      Vm.Memory.reset mem;
      let g = Vm.Code.run ~mem ~budget:Vm.Exec.golden_budget w.code in
      Alcotest.(check string) "golden output after trapped runs"
        w.golden.output g.output;
      Alcotest.(check int) "golden dyn after trapped runs"
        w.golden.dyn_count g.dyn_count)

(* Checkpoint selection: the chosen point never overshoots the target
   ordinal, and recording monotonically orders both ordinal axes. *)
let test_select () =
  let w = registry_workload "crc32" in
  with_checkpoint ~interval:50 true (fun () ->
      match Core.Workload.ensure_checkpoints w with
      | None -> Alcotest.fail "no checkpoint set recorded"
      | Some set ->
          let pts = set.Vm.Checkpoint.points in
          Alcotest.(check bool) "has points" true (Array.length pts > 0);
          Array.iteri
            (fun i (p : Vm.Checkpoint.point) ->
              if i > 0 then begin
                let q = pts.(i - 1) in
                Alcotest.(check bool) "rc monotone" true (p.ck_rc >= q.ck_rc);
                Alcotest.(check bool) "wc monotone" true (p.ck_wc >= q.ck_wc);
                Alcotest.(check bool) "dyn monotone" true
                  (p.ck_dyn > q.ck_dyn)
              end)
            pts;
          List.iter
            (fun target ->
              match Vm.Checkpoint.select set ~axis:`Read ~target with
              | Some p ->
                  Alcotest.(check bool) "at or before target" true
                    (p.ck_rc <= target)
              | None ->
                  Alcotest.(check bool) "only before first point" true
                    (pts.(0).ck_rc > target))
            [ 0; 1; 49; 50; 51; 1000; max_int ])

let suites =
  [
    ( "checkpoint",
      [
        Alcotest.test_case "registry experiment differential" `Quick
          test_registry_differential;
        QCheck_alcotest.to_alcotest prop_random_differential;
        Alcotest.test_case "campaign differential" `Quick
          test_campaign_differential;
        Alcotest.test_case "engine differential" `Quick
          test_engine_differential;
        Alcotest.test_case "memory undo log" `Quick test_memory_undo;
        Alcotest.test_case "working memory after traps" `Quick
          test_working_memory_after_traps;
        Alcotest.test_case "point selection" `Quick test_select;
      ] );
  ]
