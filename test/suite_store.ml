(* Tests for the crash-tolerant result store: canonical JSON, roundtrips,
   reopen persistence, damage handling (truncated tails vs corrupt
   records), segment rotation and gc compaction. *)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "onebit-store-test-%d-%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    dir

let shard ~lo ~hi : Core.Campaign.shard =
  let n = hi - lo in
  {
    lo;
    hi;
    s_benign = n - 2;
    s_detected = 1;
    s_hang = 0;
    s_no_output = 0;
    s_sdc = 1;
    s_traps = [ (Vm.Trap.Segfault, 1) ];
    s_activation = [ (0, 2); (1, n - 2) ];
    s_weighted_sdc = 1.5;
    s_weighted_total = float_of_int n;
    s_experiments = [||];
  }

let key ~lo ~hi =
  Store.key ~program:"p" ~digest:"d3adb33f" ~spec:(Core.Spec.single Read)
    ~n:100 ~seed:7L ~lo ~hi

let equal_shard (a : Core.Campaign.shard) (b : Core.Campaign.shard) =
  a.lo = b.lo && a.hi = b.hi && a.s_benign = b.s_benign
  && a.s_detected = b.s_detected && a.s_hang = b.s_hang
  && a.s_no_output = b.s_no_output && a.s_sdc = b.s_sdc
  && a.s_traps = b.s_traps && a.s_activation = b.s_activation
  && a.s_weighted_sdc = b.s_weighted_sdc
  && a.s_weighted_total = b.s_weighted_total

(* ---- canonical JSON ---- *)

let test_jsonx_roundtrip () =
  let open Store.Jsonx in
  let j =
    Obj
      [
        ("s", Str "he\"llo\n\t\\");
        ("i", Int (-42));
        ("f", Float 0.1);
        ("g", Float 3.0);
        ("a", Arr [ Null; Bool true; Bool false; Int 0 ]);
        ("o", Obj [ ("nested", Arr []) ]);
      ]
  in
  let s = to_string j in
  (match of_string s with
  | Ok j' ->
      Alcotest.(check string) "reserialises identically" s (to_string j')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (of_string "{\"x\":"));
  Alcotest.(check bool) "trailing junk rejected" true
    (Result.is_error (of_string "{} x"))

(* ---- roundtrip and reopen ---- *)

let test_roundtrip_reopen () =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  let k = key ~lo:0 ~hi:25 and s = shard ~lo:0 ~hi:25 in
  Alcotest.(check bool) "absent before add" true (Store.lookup st k = None);
  Store.add st k s;
  (match Store.lookup st k with
  | Some s' -> Alcotest.(check bool) "same shard" true (equal_shard s s')
  | None -> Alcotest.fail "lookup after add");
  Store.close st;
  (* A fresh open must see the record. *)
  let st = Store.open_dir dir in
  (match Store.lookup st k with
  | Some s' -> Alcotest.(check bool) "survives reopen" true (equal_shard s s')
  | None -> Alcotest.fail "lookup after reopen");
  let stats = Store.stats st in
  Alcotest.(check int) "one record" 1 stats.records;
  Alcotest.(check int) "no damage" 0 (stats.truncated + stats.corrupt);
  Store.close st

let test_add_is_idempotent () =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  let k = key ~lo:0 ~hi:25 and s = shard ~lo:0 ~hi:25 in
  Store.add st k s;
  let bytes_once = (Store.stats st).bytes in
  Store.add st k s;
  Alcotest.(check int) "second add writes nothing" bytes_once
    (Store.stats st).bytes;
  Store.close st

(* ---- damage handling ---- *)

let segment_of dir =
  match
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort compare
  with
  | [ f ] -> Filename.concat dir f
  | l -> Alcotest.failf "expected one segment, got %d" (List.length l)

let test_truncated_tail_dropped () =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  Store.add st (key ~lo:0 ~hi:25) (shard ~lo:0 ~hi:25);
  Store.add st (key ~lo:25 ~hi:50) (shard ~lo:25 ~hi:50);
  Store.close st;
  (* Chop the file mid-way through the second record, as a kill during
     append would. *)
  let path = segment_of dir in
  let text = In_channel.with_open_bin path In_channel.input_all in
  let cut = String.index text '\n' + 10 in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub text 0 cut));
  let st = Store.open_dir dir in
  let stats = Store.stats st in
  Alcotest.(check int) "first record kept" 1 stats.records;
  Alcotest.(check int) "tail counted as truncated" 1 stats.truncated;
  Alcotest.(check int) "not counted as corrupt" 0 stats.corrupt;
  Alcotest.(check bool) "victim gone" true
    (Store.lookup st (key ~lo:25 ~hi:50) = None);
  Alcotest.(check bool) "survivor intact" true
    (Store.lookup st (key ~lo:0 ~hi:25) <> None);
  Store.close st

let test_bad_checksum_rejected () =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  Store.add st (key ~lo:0 ~hi:25) (shard ~lo:0 ~hi:25);
  Store.close st;
  (* Flip one digit inside the record body: the line still parses as
     JSON but no longer matches its checksum. *)
  let path = segment_of dir in
  let text = In_channel.with_open_bin path In_channel.input_all in
  let find_sub hay needle =
    let nl = String.length needle in
    let rec go i =
      if i + nl > String.length hay then Alcotest.fail "marker not found"
      else if String.sub hay i nl = needle then i
      else go (i + 1)
    in
    go 0
  in
  let i = find_sub text "\"b\":" + 4 in
  let b = Bytes.of_string text in
  Bytes.set b i (if Bytes.get b i = '9' then '8' else '9');
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b);
  let st = Store.open_dir dir in
  let stats = Store.stats st in
  Alcotest.(check int) "record rejected" 0 stats.records;
  Alcotest.(check int) "counted as corrupt" 1 stats.corrupt;
  Alcotest.(check int) "not counted as truncated" 0 stats.truncated;
  Store.close st

(* ---- rotation and gc ---- *)

let test_rotation_and_gc () =
  let dir = temp_dir () in
  (* Tiny segments force a rotation every record or two. *)
  let st = Store.open_dir ~segment_bytes:300 dir in
  for i = 0 to 7 do
    let lo = i * 25 and hi = (i + 1) * 25 in
    Store.add st (key ~lo ~hi) (shard ~lo ~hi)
  done;
  let stats = Store.stats st in
  Alcotest.(check int) "all records present" 8 stats.records;
  Alcotest.(check bool) "rotated into several segments" true
    (stats.segments > 1);
  Store.close st;
  let st = Store.open_dir ~segment_bytes:300 dir in
  Alcotest.(check int) "all records survive reopen" 8 (Store.stats st).records;
  let report = Store.gc st in
  Alcotest.(check int) "gc keeps everything live" 8 report.live_records;
  Alcotest.(check int) "gc compacts to one segment" 1 report.segments_after;
  Alcotest.(check int) "records intact after gc" 8 (Store.stats st).records;
  Store.close st;
  let st = Store.open_dir dir in
  Alcotest.(check int) "records survive gc + reopen" 8 (Store.stats st).records;
  for i = 0 to 7 do
    let lo = i * 25 and hi = (i + 1) * 25 in
    Alcotest.(check bool)
      (Printf.sprintf "shard %d readable" i)
      true
      (match Store.lookup st (key ~lo ~hi) with
      | Some s -> equal_shard s (shard ~lo ~hi)
      | None -> false)
  done;
  Store.close st

let test_fold_visits_all () =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  for i = 0 to 3 do
    let lo = i * 25 and hi = (i + 1) * 25 in
    Store.add st (key ~lo ~hi) (shard ~lo ~hi)
  done;
  let seen = Store.fold st (fun (k : Store.key) _ acc -> k.lo :: acc) [] in
  Alcotest.(check (list int))
    "every lo visited once" [ 0; 25; 50; 75 ]
    (List.sort compare seen);
  Store.close st

let suites =
  [
    ( "store",
      [
        Alcotest.test_case "jsonx roundtrip" `Quick test_jsonx_roundtrip;
        Alcotest.test_case "roundtrip + reopen" `Quick test_roundtrip_reopen;
        Alcotest.test_case "add idempotent" `Quick test_add_is_idempotent;
        Alcotest.test_case "truncated tail dropped" `Quick
          test_truncated_tail_dropped;
        Alcotest.test_case "bad checksum rejected" `Quick
          test_bad_checksum_rejected;
        Alcotest.test_case "rotation + gc" `Quick test_rotation_and_gc;
        Alcotest.test_case "fold visits all" `Quick test_fold_visits_all;
      ] );
  ]
