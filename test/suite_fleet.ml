(* Tests for the distributed campaign fleet: the wire codec, the
   coordinator's lease state machine (expiry, reassignment, duplicate
   completion, worker death at every interesting point), the store's
   writer leases, and the load-bearing property — a fleet's merged
   result is identical to [Campaign.run] for any fleet shape and kill
   history. *)

module Proto = Fleet.Proto
module Coord = Fleet.Coord

let workload =
  lazy
    (let e = Option.get (Bench_suite.Registry.find "spmv") in
     Core.Workload.make ~name:e.name ~expected_output:(e.reference ())
       (e.build ()))

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "onebit-fleet-test-%d-%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir d 0o755;
    d

let cell_of ?(n = 75) w spec =
  {
    Proto.c_program = w.Core.Workload.name;
    c_digest = w.Core.Workload.digest;
    c_spec = spec;
    c_n = n;
    c_seed = 20170626L;
  }

let spec = Core.Spec.multi Read ~max_mbf:3 ~win:(Fixed 5)

let compute w (task : Proto.task) =
  Core.Campaign.run_shard w spec ~seed:20170626L ~lo:task.t_lo ~hi:task.t_hi

let result_eq = Alcotest.testable (Fmt.of_to_string (fun _ -> "<result>"))
    Core.Campaign.equal_result

(* ---- codec round-trip (qcheck, every message type) ---- *)

(* Names exercise the JSON string escaper. *)
let gen_name =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" cs)
      (list_size (int_range 1 8)
         (oneofl [ "a"; "z"; "_"; "-"; "."; "/"; "\""; "\\"; "m"; "7" ])))

let gen_tech = QCheck.Gen.oneofl [ Core.Technique.Read; Core.Technique.Write ]

let gen_win =
  QCheck.Gen.(
    oneof
      [
        map (fun w -> Core.Win.Fixed w) (int_bound 100);
        map2 (fun lo len -> Core.Win.Rnd (lo, lo + len)) (int_bound 50)
          (int_bound 50);
      ])

let gen_spec =
  QCheck.Gen.(
    oneof
      [
        map Core.Spec.single gen_tech;
        map3
          (fun t m win -> Core.Spec.multi t ~max_mbf:(m + 2) ~win)
          gen_tech (int_bound 8) gen_win;
      ])

let gen_seed = QCheck.Gen.(map Int64.of_int int)

let gen_cell =
  QCheck.Gen.(
    map
      (fun (p, d, spec, n, seed) ->
        { Proto.c_program = p; c_digest = d; c_spec = spec; c_n = n; c_seed = seed })
      (tup5 gen_name gen_name gen_spec (int_range 1 100_000) gen_seed))

let gen_task =
  QCheck.Gen.(
    map
      (fun (id, cell, lo, len) ->
        { Proto.t_id = id; t_cell = cell; t_lo = lo; t_hi = lo + len + 1 })
      (tup4 (int_bound 10_000) (int_bound 50) (int_bound 100_000) (int_bound 99)))

let gen_pos_float = QCheck.Gen.(map abs_float (float_bound_exclusive 10_000.))

(* Real shards with non-trivial trap/activation payloads, computed once;
   the Complete codec ships them in their store representation. *)
let shard_pool =
  lazy
    (let w = Lazy.force workload in
     List.map
       (fun (lo, hi) ->
         Core.Campaign.run_shard w spec ~seed:20170626L ~lo ~hi)
       [ (0, 25); (25, 50); (50, 60) ])

let gen_shard = QCheck.Gen.(map (fun i -> List.nth (Lazy.force shard_pool) i) (int_bound 2))

let gen_worker_info =
  QCheck.Gen.(
    map
      (fun (id, completed, inflight, hb, conn) ->
        {
          Proto.wi_id = id;
          wi_completed = completed;
          wi_inflight = inflight;
          wi_heartbeat_age = hb;
          wi_connected = conn;
        })
      (tup5 gen_name (int_bound 1000) (int_bound 16) gen_pos_float bool))

let gen_lease_info =
  QCheck.Gen.(
    map
      (fun (task, w, remaining) ->
        { Proto.li_task = task; li_worker = w; li_remaining = remaining })
      (tup3 (int_bound 10_000) gen_name gen_pos_float))

let gen_state =
  QCheck.Gen.(
    map
      (fun ( cells,
             tasks,
             completed,
             reassigned,
             (finished, workers, leases, (adaptive, rounds, open_)) ) ->
        {
          Proto.st_cells = cells;
          st_tasks = tasks;
          st_completed = completed;
          st_reassigned = reassigned;
          st_finished = finished;
          st_workers = workers;
          st_leases = leases;
          st_adaptive = adaptive;
          st_rounds = rounds;
          st_open = open_;
        })
      (tup5 (int_bound 50) (int_bound 10_000) (int_bound 10_000) (int_bound 100)
         (tup4 bool
            (list_size (int_bound 4) gen_worker_info)
            (list_size (int_bound 4) gen_lease_info)
            (tup3 bool (int_bound 100) (int_bound 50)))))

let gen_msg =
  QCheck.Gen.(
    oneof
      [
        map2 (fun w pid -> Proto.Hello { worker = w; pid }) gen_name (int_bound 100_000);
        map2
          (fun ttl cells -> Proto.Welcome { proto = Proto.version; ttl; cells })
          gen_pos_float
          (map Array.of_list (list_size (int_bound 3) gen_cell));
        map (fun w -> Proto.Lease { worker = w }) gen_name;
        map2 (fun task ttl -> Proto.Grant { task; ttl }) gen_task gen_pos_float;
        map (fun b -> Proto.Wait { backoff = b }) gen_pos_float;
        return Proto.Done;
        map2 (fun w task -> Proto.Heartbeat { worker = w; task }) gen_name
          (int_bound 10_000);
        map3
          (fun w task shard -> Proto.Complete { worker = w; task; shard })
          gen_name (int_bound 10_000) gen_shard;
        map (fun dup -> Proto.Ack { dup }) bool;
        return Proto.Drain;
        map (fun s -> Proto.State s) gen_state;
        map (fun e -> Proto.Error e) gen_name;
      ])

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"fleet codec round-trips every message type"
    ~count:300 (QCheck.make gen_msg) (fun msg ->
      match Proto.of_line (Proto.to_line msg) with
      | Ok msg' -> Proto.equal msg msg'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let test_codec_rejects_garbage () =
  let bad l = match Proto.of_line l with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "not json" true (bad "{nope");
  Alcotest.(check bool) "no tag" true (bad {|{"w":"a"}|});
  Alcotest.(check bool) "unknown tag" true (bad {|{"t":"frobnicate"}|});
  Alcotest.(check bool) "missing field" true (bad {|{"t":"hello","w":"a"}|})

(* ---- coordinator state machine ---- *)

(* 75 experiments at shard size 25: tasks 0,1,2. *)
let make_coord ?store ?(ttl = 10.) () =
  let w = Lazy.force workload in
  (w, Coord.create ~ttl ?store ~shard_size:25 ~cells:[ cell_of w spec ] ())

let lease c ~now ~conn worker =
  match Coord.handle c ~now ~conn (Proto.Lease { worker }) with
  | Proto.Grant { task; _ } -> `Grant task
  | Proto.Wait { backoff } -> `Wait backoff
  | Proto.Done -> `Done
  | m -> Alcotest.failf "unexpected lease reply %s" (Proto.to_line m)

let complete c ~now ~conn worker (task : Proto.task) shard =
  match
    Coord.handle c ~now ~conn (Proto.Complete { worker; task = task.t_id; shard })
  with
  | Proto.Ack { dup } -> dup
  | m -> Alcotest.failf "unexpected complete reply %s" (Proto.to_line m)

let reference w ~n = Core.Campaign.run w spec ~n ~seed:20170626L

let test_lease_expiry_reassignment () =
  let w, c = make_coord () in
  let t0 =
    match lease c ~now:0. ~conn:1 "a" with
    | `Grant t -> t
    | _ -> Alcotest.fail "no grant"
  in
  Alcotest.(check int) "first task" 0 t0.Proto.t_id;
  (* b works through tasks 1 and 2 promptly; with only a's live lease
     outstanding, b must wait, not steal. *)
  let t1 = match lease c ~now:1. ~conn:2 "b" with
    | `Grant t -> t | _ -> Alcotest.fail "no grant" in
  ignore (complete c ~now:1.5 ~conn:2 "b" t1 (compute w t1) : bool);
  let t2 = match lease c ~now:2. ~conn:2 "b" with
    | `Grant t -> t | _ -> Alcotest.fail "no grant" in
  ignore (complete c ~now:2.5 ~conn:2 "b" t2 (compute w t2) : bool);
  (match lease c ~now:3. ~conn:2 "b" with
  | `Wait backoff -> Alcotest.(check bool) "positive backoff" true (backoff > 0.)
  | _ -> Alcotest.fail "expected wait");
  (* A heartbeat extends a's deadline: at t=12 (past the original t=10
     expiry, within the extended one) the lease still holds. *)
  (match Coord.handle c ~now:8. ~conn:1 (Proto.Heartbeat { worker = "a"; task = 0 }) with
  | Proto.Ack { dup = false } -> ()
  | m -> Alcotest.failf "unexpected heartbeat reply %s" (Proto.to_line m));
  (match lease c ~now:12. ~conn:2 "b" with
  | `Wait _ -> ()
  | _ -> Alcotest.fail "extended lease must not be reassigned");
  (* Past the extended deadline it is reassigned. *)
  let t0' = match lease c ~now:18.5 ~conn:2 "b" with
    | `Grant t -> t | _ -> Alcotest.fail "expected reassignment" in
  Alcotest.(check int) "expired lease reassigned" 0 t0'.Proto.t_id;
  Alcotest.(check int) "reassignment counted" 1
    (Coord.state c ~now:19.).Proto.st_reassigned;
  Alcotest.(check bool) "fresh" false
    (complete c ~now:20. ~conn:2 "b" t0' (compute w t0'));
  Alcotest.(check bool) "finished" true (Coord.finished c);
  (* a's late completion of the task it lost is an exact no-op. *)
  Alcotest.(check bool) "stale completion is dup" true
    (complete c ~now:21. ~conn:1 "a" t0 (compute w t0));
  Alcotest.check result_eq "fleet result = Campaign.run" (reference w ~n:75)
    (snd (List.hd (Coord.results c)))

let test_duplicate_complete_idempotent () =
  let w, c = make_coord () in
  let rec drain acc now =
    match lease c ~now ~conn:1 "a" with
    | `Grant t ->
        ignore (complete c ~now ~conn:1 "a" t (compute w t) : bool);
        drain (t :: acc) (now +. 0.1)
    | `Done -> acc
    | `Wait _ -> Alcotest.fail "unexpected wait"
  in
  let tasks = drain [] 0. in
  Alcotest.(check int) "three tasks" 3 (List.length tasks);
  (* Re-complete every task: all dups, counters unchanged, result same. *)
  List.iter
    (fun t ->
      Alcotest.(check bool) "dup ack" true
        (complete c ~now:5. ~conn:1 "a" t (compute w t)))
    tasks;
  let s = Coord.state c ~now:6. in
  Alcotest.(check int) "completed stays 3" 3 s.Proto.st_completed;
  Alcotest.check result_eq "result unchanged" (reference w ~n:75)
    (snd (List.hd (Coord.results c)))

(* Worker death at the three interesting points: before any lease,
   mid-shard, and after the coordinator processed Complete but before
   the worker saw the ack.  Reassignment is immediate on disconnect —
   no TTL wait. *)
let test_kill_points () =
  let w, c = make_coord () in
  (* a: killed before leasing anything — costs nothing. *)
  ignore (Coord.handle c ~now:0. ~conn:1 (Proto.Hello { worker = "a"; pid = 1 }));
  Coord.disconnect c ~now:0.5 ~conn:1;
  (* b: leases the whole grid, then is killed mid-shard.  Disconnect
     orphans every lease immediately — no TTL wait (ttl here is 10). *)
  let tb0 = match lease c ~now:1. ~conn:2 "b" with
    | `Grant t -> t | _ -> Alcotest.fail "no grant" in
  let tb1 = match lease c ~now:1.1 ~conn:2 "b" with
    | `Grant t -> t | _ -> Alcotest.fail "no grant" in
  let tb2 = match lease c ~now:1.2 ~conn:2 "b" with
    | `Grant t -> t | _ -> Alcotest.fail "no grant" in
  Alcotest.(check (list int)) "b holds the grid" [ 0; 1; 2 ]
    [ tb0.Proto.t_id; tb1.Proto.t_id; tb2.Proto.t_id ];
  Coord.disconnect c ~now:1.5 ~conn:2;
  (* c: picks up the orphaned tasks in order, completes two, then dies
     after the coordinator processed the second Complete but before the
     ack reached it. *)
  let tc0 = match lease c ~now:2. ~conn:3 "c" with
    | `Grant t -> t | _ -> Alcotest.fail "orphaned lease not reassigned" in
  Alcotest.(check int) "task 0 reassigned to c" 0 tc0.Proto.t_id;
  ignore (complete c ~now:2.5 ~conn:3 "c" tc0 (compute w tc0) : bool);
  let tc1 = match lease c ~now:3. ~conn:3 "c" with
    | `Grant t -> t | _ -> Alcotest.fail "no grant" in
  Alcotest.(check int) "task 1 reassigned to c" 1 tc1.Proto.t_id;
  ignore (complete c ~now:3.5 ~conn:3 "c" tc1 (compute w tc1) : bool);
  Coord.disconnect c ~now:3.6 ~conn:3;
  (* d mops up the one task still outstanding. *)
  let td = match lease c ~now:4. ~conn:4 "d" with
    | `Grant t -> t | _ -> Alcotest.fail "no grant" in
  Alcotest.(check int) "only task 2 left" 2 td.Proto.t_id;
  ignore (complete c ~now:4.5 ~conn:4 "d" td (compute w td) : bool);
  (match lease c ~now:5. ~conn:4 "d" with
  | `Done -> ()
  | _ -> Alcotest.fail "expected done");
  (* b's ghost resends task 0 from beyond the grave: exact no-op. *)
  Alcotest.(check bool) "ghost completion is dup" true
    (complete c ~now:5.5 ~conn:5 "b" tb0 (compute w tb0));
  let s = Coord.state c ~now:6. in
  Alcotest.(check int) "all three reassigned" 3 s.Proto.st_reassigned;
  Alcotest.(check bool) "finished" true s.Proto.st_finished;
  Alcotest.check result_eq "kill history does not change the result"
    (reference w ~n:75)
    (snd (List.hd (Coord.results c)))

(* ---- fleet shapes x random programs (the determinism property) ---- *)

(* Simulate k workers in lease/complete lockstep against the pure state
   machine: all workers lease (so k leases are outstanding and grants
   interleave), then all complete, until the grid drains. *)
let run_sim c w k =
  let now = ref 0. in
  let alive = ref true in
  while !alive do
    let grants =
      List.init k (fun i ->
          now := !now +. 0.01;
          match lease c ~now:!now ~conn:(i + 1) (Printf.sprintf "w%d" i) with
          | `Grant t -> Some (i, t)
          | `Wait _ | `Done -> None)
      |> List.filter_map Fun.id
    in
    if grants = [] then alive := false
    else
      List.iter
        (fun (i, t) ->
          now := !now +. 0.01;
          ignore
            (complete c ~now:!now ~conn:(i + 1) (Printf.sprintf "w%d" i) t
               (Core.Campaign.run_shard w spec ~seed:20170626L ~lo:t.Proto.t_lo
                  ~hi:t.Proto.t_hi)
              : bool))
        grants
  done

let prop_fleet_shape_independence =
  QCheck.Test.make
    ~name:"merged fleet result = Campaign.run (random programs x 1/2/4 workers)"
    ~count:8
    (QCheck.make Suite_differential.case_gen)
    (fun (ops, seeds) ->
      let seeds = if seeds = [] then [ 1L ] else seeds in
      let ops = Suite_differential.sanitize ops seeds in
      let w =
        Core.Workload.make ~name:"fleet-rand"
          (Suite_differential.build_program ops seeds)
      in
      let n = 40 in
      let expected = Core.Campaign.run w spec ~n ~seed:20170626L in
      List.for_all
        (fun k ->
          let c =
            Coord.create ~ttl:1000. ~shard_size:7
              ~cells:
                [
                  {
                    Proto.c_program = w.Core.Workload.name;
                    c_digest = w.Core.Workload.digest;
                    c_spec = spec;
                    c_n = n;
                    c_seed = 20170626L;
                  };
                ]
              ()
          in
          run_sim c w k;
          Coord.finished c
          && Core.Campaign.equal_result expected (snd (List.hd (Coord.results c))))
        [ 1; 2; 4 ])

(* ---- sockets: a real coordinator server and real workers ---- *)

let test_socket_fleet () =
  let w = Lazy.force workload in
  let c = Coord.create ~ttl:5. ~shard_size:25 ~cells:[ cell_of w spec ] () in
  let sock_path = Filename.concat (temp_dir ()) "coord.sock" in
  let srv = Coord.listen c (Unix.ADDR_UNIX sock_path) in
  let addr = Coord.bound_addr srv in
  let server = Thread.create (fun () -> Coord.serve srv) () in
  let load name =
    Alcotest.(check string) "worker asked for the right program"
      w.Core.Workload.name name;
    w
  in
  let workers =
    List.init 2 (fun i ->
        Thread.create
          (fun () ->
            Fleet.Worker.run ~id:(Printf.sprintf "sock-w%d" i) ~connect:addr
              ~load ())
          ())
  in
  List.iter Thread.join workers;
  Thread.join server;
  Alcotest.(check bool) "finished" true (Coord.finished c);
  Alcotest.check result_eq "socket fleet result = Campaign.run"
    (reference w ~n:75)
    (snd (List.hd (Coord.results c)))

let test_parse_addr () =
  (match Fleet.parse_addr "unix:/tmp/x.sock" with
  | Ok (Unix.ADDR_UNIX "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix: prefix");
  (match Fleet.parse_addr "./rel.sock" with
  | Ok (Unix.ADDR_UNIX "./rel.sock") -> ()
  | _ -> Alcotest.fail "bare path");
  (match Fleet.parse_addr "127.0.0.1:8080" with
  | Ok (Unix.ADDR_INET (_, 8080)) -> ()
  | _ -> Alcotest.fail "host:port");
  (match Fleet.parse_addr "tcp:127.0.0.1:77777" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad port must be rejected");
  Alcotest.(check string) "round trip" "unix:/tmp/x.sock"
    (Fleet.addr_to_string (Unix.ADDR_UNIX "/tmp/x.sock"))

(* ---- coordinator store: durable completions and restart resume ---- *)

let test_coord_store_resume () =
  let w = Lazy.force workload in
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  Fun.protect ~finally:(fun () -> Store.close st) @@ fun () ->
  let c1 = Coord.create ~ttl:10. ~store:st ~shard_size:25
      ~cells:[ cell_of w spec ] () in
  (* Complete only task 0, then "crash" the coordinator. *)
  let t0 = match lease c1 ~now:0. ~conn:1 "a" with
    | `Grant t -> t | _ -> Alcotest.fail "no grant" in
  ignore (complete c1 ~now:1. ~conn:1 "a" t0 (compute w t0) : bool);
  (* A restarted coordinator resumes with task 0 already done... *)
  let c2 = Coord.create ~ttl:10. ~store:st ~shard_size:25
      ~cells:[ cell_of w spec ] () in
  Alcotest.(check int) "one shard prefilled" 1
    (Coord.state c2 ~now:0.).Proto.st_completed;
  run_sim c2 w 2;
  Alcotest.check result_eq "resumed fleet result = Campaign.run"
    (reference w ~n:75)
    (snd (List.hd (Coord.results c2)));
  (* ... and a fleet store is interchangeable with an engine-run store:
     the single-process engine reuses every fleet shard. *)
  let _, stats =
    Engine.run_campaign_stats ~jobs:1 ~shard_size:25 ~store:st w spec ~n:75
      ~seed:20170626L
  in
  Alcotest.(check int) "engine reuses all fleet shards" 3
    stats.Obs.Snapshot.shards_from_store

(* ---- store writer leases and gc refusal ---- *)

let test_store_leases_and_gc () =
  let dir = temp_dir () in
  let st = Store.open_dir dir in
  Fun.protect ~finally:(fun () -> Store.close st) @@ fun () ->
  let w = Lazy.force workload in
  let key =
    Store.key ~program:w.name ~digest:w.digest ~spec ~n:75 ~seed:20170626L
      ~lo:0 ~hi:25
  in
  Store.add st key (Core.Campaign.run_shard w spec ~seed:20170626L ~lo:0 ~hi:25);
  (* Own lease never blocks gc (the engine holds one while running). *)
  Store.lease st;
  Alcotest.(check (list int)) "own lease listed" [ Unix.getpid () ]
    (Store.live_leases st);
  ignore (Store.gc st : Store.gc_report);
  Store.release_lease st;
  Alcotest.(check (list int)) "released" [] (Store.live_leases st);
  (* A live foreign pid's lease makes gc refuse.  Pid 1 is always alive
     (and not ours), so plant its marker by hand. *)
  let leases_dir = Filename.concat dir "leases" in
  if not (Sys.file_exists leases_dir) then Unix.mkdir leases_dir 0o755;
  let plant pid =
    Out_channel.with_open_text
      (Filename.concat leases_dir (Printf.sprintf "lease-%d" pid))
      (fun _ -> ())
  in
  plant 1;
  Alcotest.check_raises "gc refuses under a live foreign lease"
    (Store.Busy [ 1 ])
    (fun () -> ignore (Store.gc st : Store.gc_report));
  Sys.remove (Filename.concat leases_dir "lease-1");
  (* A dead pid's marker is stale: swept, and gc proceeds. *)
  plant 999_999_999;
  Alcotest.(check (list int)) "stale marker swept" [] (Store.live_leases st);
  let r = Store.gc st in
  Alcotest.(check int) "record survived the compactions" 1 r.Store.live_records

let suites =
  [
    ( "fleet",
      [
        QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        Alcotest.test_case "codec rejects malformed input" `Quick
          test_codec_rejects_garbage;
        Alcotest.test_case "lease expiry and heartbeat extension" `Quick
          test_lease_expiry_reassignment;
        Alcotest.test_case "duplicate completion is idempotent" `Quick
          test_duplicate_complete_idempotent;
        Alcotest.test_case "worker death at every point" `Quick
          test_kill_points;
        QCheck_alcotest.to_alcotest prop_fleet_shape_independence;
        Alcotest.test_case "socket server end to end" `Quick test_socket_fleet;
        Alcotest.test_case "address parsing" `Quick test_parse_addr;
        Alcotest.test_case "coordinator store resume" `Quick
          test_coord_store_resume;
        Alcotest.test_case "store writer leases gate gc" `Quick
          test_store_leases_and_gc;
      ] );
  ]
