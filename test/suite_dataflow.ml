(* Tests for onebit.dataflow: CFG construction, liveness, reaching
   definitions, demanded-bits, the static candidate predictor, error-space
   pruning (including its dynamic soundness validation) and the linter. *)

open Ir.Instr

(* ---- hand-built fixtures ---- *)

let block name instrs term : Ir.Func.block =
  { b_name = name; b_instrs = Array.of_list instrs; b_term = term }

let func ?(name = "f") ?(params = []) ?(ret = None) reg_ty blocks : Ir.Func.t =
  {
    f_name = name;
    f_params = params;
    f_ret = ret;
    f_blocks = Array.of_list blocks;
    f_reg_ty = Array.of_list reg_ty;
  }

let modl fs : Ir.Func.modl = { m_funcs = fs; m_globals = [] }

(* entry -> then|else -> join; %2 assigned in both arms, printed at join *)
let diamond =
  func
    [ Ir.Ty.I32; I1; I32 ]
    [
      block "entry"
        [
          Mov { ty = I32; dst = 0; a = Imm 5 };
          Icmp { op = Slt; ty = I32; dst = 1; a = Reg 0; b = Imm 10 };
        ]
        (Cbr { cond = Reg 1; if_true = 1; if_false = 2 });
      block "then" [ Mov { ty = I32; dst = 2; a = Imm 1 } ] (Br 3);
      block "else" [ Mov { ty = I32; dst = 2; a = Imm 2 } ] (Br 3);
      block "join" [ Output { ty = I32; value = Reg 2 } ] (Ret None);
    ]

(* entry -> head -> body -> head | exit; counter %0 live around the loop *)
let loop =
  func
    [ Ir.Ty.I32; I1 ]
    [
      block "entry" [ Mov { ty = I32; dst = 0; a = Imm 0 } ] (Br 1);
      block "head"
        [ Icmp { op = Slt; ty = I32; dst = 1; a = Reg 0; b = Imm 10 } ]
        (Cbr { cond = Reg 1; if_true = 2; if_false = 3 });
      block "body" [ Binop { op = Add; ty = I32; dst = 0; a = Reg 0; b = Imm 1 } ] (Br 1);
      block "exit" [ Output { ty = I32; value = Reg 0 } ] (Ret None);
    ]

(* a non-empty block no path reaches *)
let orphan_tail =
  func [ Ir.Ty.I32 ]
    [
      block "entry" [ Output { ty = I32; value = Imm 7 } ] (Ret None);
      block "orphan" [ Mov { ty = I32; dst = 0; a = Imm 1 } ] (Br 0);
    ]

let test_cfg_diamond () =
  let cfg = Dataflow.Cfg.of_func diamond in
  Alcotest.(check int) "nblocks" 4 cfg.nblocks;
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ]
    (Array.to_list cfg.succs.(0) |> List.sort compare);
  Alcotest.(check (list int)) "join preds" [ 1; 2 ]
    (Array.to_list cfg.preds.(3) |> List.sort compare);
  Alcotest.(check bool) "all reachable" true
    (Array.for_all (fun b -> b) cfg.reachable);
  Alcotest.(check int) "rpo covers all blocks" 4 (Array.length cfg.rpo);
  Alcotest.(check int) "rpo starts at entry" 0 cfg.rpo.(0);
  Alcotest.(check (list int)) "rpo is a permutation" [ 0; 1; 2; 3 ]
    (Array.to_list cfg.rpo |> List.sort compare);
  Alcotest.(check (list int)) "no unreachable blocks" []
    (Dataflow.Cfg.unreachable_blocks cfg)

let test_cfg_dedup_and_orphan () =
  let both_arms =
    func [ Ir.Ty.I1 ]
      [
        block "entry"
          [ Mov { ty = I1; dst = 0; a = Imm 1 } ]
          (Cbr { cond = Reg 0; if_true = 1; if_false = 1 });
        block "exit" [] (Ret None);
      ]
  in
  let cfg = Dataflow.Cfg.of_func both_arms in
  Alcotest.(check (list int)) "equal Cbr arms deduplicated" [ 1 ]
    (Array.to_list cfg.succs.(0));
  let cfg = Dataflow.Cfg.of_func orphan_tail in
  Alcotest.(check bool) "orphan not reachable" false cfg.reachable.(1);
  Alcotest.(check (list int)) "orphan listed" [ 1 ]
    (Dataflow.Cfg.unreachable_blocks cfg)

let test_liveness_diamond () =
  let cfg = Dataflow.Cfg.of_func diamond in
  let lv = Dataflow.Liveness.analyse cfg in
  let mem s r = Dataflow.Bitset.mem s r in
  Alcotest.(check bool) "%2 live into join" true
    (mem (Dataflow.Liveness.live_in lv 3) 2);
  Alcotest.(check bool) "%2 dead into then (redefined)" false
    (mem (Dataflow.Liveness.live_in lv 1) 2);
  Alcotest.(check bool) "%0 live before the icmp" true
    (mem (Dataflow.Liveness.live_before lv ~bidx:0 ~idx:1) 0);
  Alcotest.(check bool) "%0 dead before its own def" false
    (mem (Dataflow.Liveness.live_before lv ~bidx:0 ~idx:0) 0);
  Alcotest.(check bool) "%1 live before the branch" true
    (mem (Dataflow.Liveness.live_before lv ~bidx:0 ~idx:2) 1);
  Alcotest.(check bool) "nothing live at exit" true
    (Dataflow.Bitset.is_empty (Dataflow.Liveness.live_after lv ~bidx:3 ~idx:1))

let test_liveness_loop () =
  let cfg = Dataflow.Cfg.of_func loop in
  let lv = Dataflow.Liveness.analyse cfg in
  let mem s r = Dataflow.Bitset.mem s r in
  Alcotest.(check bool) "counter live around the back edge" true
    (mem (Dataflow.Liveness.live_out lv 2) 0);
  Alcotest.(check bool) "counter live into the head" true
    (mem (Dataflow.Liveness.live_in lv 1) 0);
  Alcotest.(check bool) "cond dead after the branch consumed it" false
    (mem (Dataflow.Liveness.live_in lv 2) 1)

let test_reaching_diamond () =
  let cfg = Dataflow.Cfg.of_func diamond in
  let rd = Dataflow.Reaching.analyse cfg in
  let defs = Dataflow.Reaching.reaching_of_reg rd ~bidx:3 ~idx:0 ~reg:2 in
  Alcotest.(check int) "two defs of %2 reach the join" 2 (List.length defs);
  Alcotest.(check bool) "neither is the entry pseudo-def" true
    (List.for_all (fun d -> not (Dataflow.Reaching.is_entry d)) defs);
  let defs0 = Dataflow.Reaching.reaching_of_reg rd ~bidx:0 ~idx:0 ~reg:0 in
  Alcotest.(check bool) "only the pseudo-def reaches the entry point" true
    (match defs0 with [ d ] -> Dataflow.Reaching.is_entry d | _ -> false)

(* ---- demanded bits ---- *)

let test_bitmask_masks () =
  (* %1 = %0 land 0xFF, printed: only the low byte of %0 is demanded *)
  let f =
    func
      [ Ir.Ty.I32; I32 ]
      [
        block "entry"
          [
            Mov { ty = I32; dst = 0; a = Imm 123 };
            Binop { op = And; ty = I32; dst = 1; a = Reg 0; b = Imm 0xFF };
            Output { ty = I32; value = Reg 1 };
          ]
          (Ret None);
      ]
  in
  let bm = Dataflow.Bitmask.analyse f in
  Alcotest.(check int) "and with imm masks the demand" 0xFF
    (Dataflow.Bitmask.demand_before bm ~bidx:0 ~idx:1).(0);
  (* %1 = %0 lsr 4, printed: bit j of %1 comes from bit j+4 of %0 *)
  let f =
    func
      [ Ir.Ty.I32; I32 ]
      [
        block "entry"
          [
            Mov { ty = I32; dst = 0; a = Imm 123 };
            Binop { op = Lshr; ty = I32; dst = 1; a = Reg 0; b = Imm 4 };
            Output { ty = I32; value = Reg 1 };
          ]
          (Ret None);
      ]
  in
  let bm = Dataflow.Bitmask.analyse f in
  Alcotest.(check int) "lshr shifts the demand up" 0xFFFFFFF0
    (Dataflow.Bitmask.demand_before bm ~bidx:0 ~idx:1).(0);
  (* %1 = %0 + 1; %2 = %1 land 0x10: carries propagate upward only, so
     the add demands bits 0..4 of %0 *)
  let f =
    func
      [ Ir.Ty.I32; I32; I32 ]
      [
        block "entry"
          [
            Mov { ty = I32; dst = 0; a = Imm 123 };
            Binop { op = Add; ty = I32; dst = 1; a = Reg 0; b = Imm 1 };
            Binop { op = And; ty = I32; dst = 2; a = Reg 1; b = Imm 0x10 };
            Output { ty = I32; value = Reg 2 };
          ]
          (Ret None);
      ]
  in
  let bm = Dataflow.Bitmask.analyse f in
  Alcotest.(check int) "add spreads demand downward" 0x1F
    (Dataflow.Bitmask.demand_before bm ~bidx:0 ~idx:1).(0);
  Alcotest.(check int) "dead register has zero demand" 0
    (Dataflow.Bitmask.demand_after bm ~bidx:0 ~idx:2).(1)

let test_prune_demands () =
  let f =
    func
      [ Ir.Ty.I32; I32 ]
      [
        block "entry"
          [
            Mov { ty = I32; dst = 0; a = Imm 7 };
            Binop { op = And; ty = I32; dst = 1; a = Reg 0; b = Imm 1 };
            Output { ty = I32; value = Reg 1 };
          ]
          (Ret None);
      ]
  in
  let t = Dataflow.Prune.analyse f in
  Alcotest.(check int) "write demand = bit 0 only" 1
    (Dataflow.Prune.write_demand t ~bidx:0 ~idx:0);
  Alcotest.(check int) "read demand at the and" 1
    (Dataflow.Prune.read_demand t ~bidx:0 ~idx:1 ~reg:0);
  Alcotest.(check bool) "bit 0 must run" true
    (Dataflow.Prune.classify_write t ~bidx:0 ~idx:0 ~bit:0 = Must_run);
  Alcotest.(check bool) "bit 5 provably benign" true
    (Dataflow.Prune.classify_write t ~bidx:0 ~idx:0 ~bit:5 = Provably_benign);
  Alcotest.(check bool) "read flip of a live bit must run" true
    (Dataflow.Prune.classify_read t ~bidx:0 ~idx:1 ~reg:0 ~bit:0 = Must_run);
  Alcotest.(check int) "31 of 32 bits benign at the write" 31
    (Dataflow.Prune.benign_bits Ir.Ty.I32 ~demand:1)

let test_prune_forwarding () =
  (* in the loop head, the icmp's destination is next read by the Cbr *)
  let t = Dataflow.Prune.analyse loop in
  Alcotest.(check (option int)) "icmp forwards to the terminator" (Some 1)
    (Dataflow.Prune.forwarded_write t ~bidx:1 ~idx:0);
  (* in the diamond, %2's write is read only in another block *)
  let t = Dataflow.Prune.analyse diamond in
  Alcotest.(check (option int)) "cross-block use does not forward" None
    (Dataflow.Prune.forwarded_write t ~bidx:1 ~idx:0)

(* ---- the linter ---- *)

let rules fs = List.map (fun (f : Dataflow.Lint.finding) -> f.rule) fs

let test_lint_fixtures () =
  Alcotest.(check bool) "diamond lints clean" true
    (Dataflow.Lint.check_func diamond = []);
  Alcotest.(check bool) "loop lints clean" true
    (Dataflow.Lint.check_func loop = []);
  Alcotest.(check bool) "orphan tail reported" true
    (rules (Dataflow.Lint.check_func orphan_tail)
    = [ Dataflow.Lint.Unreachable_code ]);
  (* dead store: the add's result is never read; the sdiv by constant 0 is
     not removable (it traps), so it must NOT be reported *)
  let dead_store =
    func
      [ Ir.Ty.I32; I32; I32 ]
      [
        block "entry"
          [
            Mov { ty = I32; dst = 0; a = Imm 1 };
            Binop { op = Add; ty = I32; dst = 1; a = Reg 0; b = Imm 1 };
            Binop { op = Sdiv; ty = I32; dst = 2; a = Reg 0; b = Imm 0 };
            Output { ty = I32; value = Reg 0 };
          ]
          (Ret None);
      ]
  in
  (match Dataflow.Lint.check_func dead_store with
  | [ { rule = Dead_store; detail; _ } ] ->
      Alcotest.(check bool) "names %1" true
        (Thelpers.contains detail "%1")
  | fs ->
      Alcotest.failf "expected exactly the %%1 dead store, got %d finding(s)"
        (List.length fs));
  let constant_branch =
    func [ Ir.Ty.I1 ]
      [
        block "entry"
          [ Mov { ty = I1; dst = 0; a = Imm 1 } ]
          (Cbr { cond = Reg 0; if_true = 1; if_false = 2 });
        block "a" [ Output { ty = I32; value = Imm 1 } ] (Ret None);
        block "b" [ Output { ty = I32; value = Imm 2 } ] (Ret None);
      ]
  in
  Alcotest.(check bool) "constant branch reported" true
    (List.mem Dataflow.Lint.Constant_branch
       (rules (Dataflow.Lint.check_func constant_branch)))

let test_lint_broken_fixture () =
  let text =
    In_channel.with_open_text "fixtures/broken.ir" In_channel.input_all
  in
  match Ir.Parse.modl text with
  | Error msg -> Alcotest.failf "broken.ir should parse and validate: %s" msg
  | Ok m ->
      let rs = rules (Dataflow.Lint.check m) in
      List.iter
        (fun r ->
          Alcotest.(check bool) (Dataflow.Lint.rule_name r) true
            (List.mem r rs))
        [
          Dataflow.Lint.Unreachable_code;
          Dataflow.Lint.Dead_store;
          Dataflow.Lint.Read_never_written;
          Dataflow.Lint.Constant_branch;
        ]

let test_lint_registry_clean () =
  List.iter
    (fun (e : Bench_suite.Desc.t) ->
      match Dataflow.Lint.check (e.build ()) with
      | [] -> ()
      | fs ->
          Alcotest.failf "%s: %s" e.name
            (String.concat "; " (List.map Dataflow.Lint.to_string fs)))
    (Bench_suite.Registry.all @ Bench_suite.Registry.large)

(* ---- validator strengthening ---- *)

let test_validate_cfg_facts () =
  let expect_err needle f =
    match Ir.Validate.check (modl [ f ]) with
    | Ok () -> Alcotest.failf "expected an error mentioning %S" needle
    | Error es ->
        Alcotest.(check bool) needle true
          (List.exists (fun e -> Thelpers.contains e needle) es)
  in
  (* entry terminating in unreachable without an abort *)
  expect_err "without an abort" (func [] [ block "entry" [] Unreachable ]);
  (* read on a reachable path before any definition *)
  expect_err "read before initialisation"
    (func [ Ir.Ty.I32; I32 ]
       [
         block "entry"
           [
             Binop { op = Add; ty = I32; dst = 1; a = Reg 0; b = Imm 1 };
             Output { ty = I32; value = Reg 1 };
           ]
           (Ret None);
       ]);
  (* defined on only one arm of a diamond *)
  expect_err "read before initialisation"
    (func
       [ Ir.Ty.I1; I32 ]
       [
         block "entry"
           [ Mov { ty = I1; dst = 0; a = Imm 1 } ]
           (Cbr { cond = Reg 0; if_true = 1; if_false = 2 });
         block "a" [ Mov { ty = I32; dst = 1; a = Imm 1 } ] (Br 3);
         block "b" [] (Br 3);
         block "join" [ Output { ty = I32; value = Reg 1 } ] (Ret None);
       ]);
  (* ... but defined on both arms is fine *)
  Alcotest.(check bool) "diamond def on both arms validates" true
    (Ir.Validate.check (modl [ diamond ]) = Ok ());
  (* reads in unreachable blocks are not flagged *)
  Alcotest.(check bool) "unreachable read tolerated" true
    (Ir.Validate.check (modl [ orphan_tail ]) = Ok ());
  (* branch out of range must not crash the must-init pass *)
  expect_err "out of range" (func [] [ block "entry" [] (Br 7) ])

(* ---- static candidate predictor vs the dynamic Table II counts ---- *)

let test_candidates_exact () =
  List.iter
    (fun (e : Bench_suite.Desc.t) ->
      let w = Core.Workload.make ~name:e.name (e.build ()) in
      let c = Dataflow.Candidates.predict (e.build ()) ~profile:w.profile in
      Alcotest.(check int)
        (e.name ^ " reads") w.golden.read_cands c.reads;
      Alcotest.(check int)
        (e.name ^ " writes") w.golden.write_cands c.writes)
    Bench_suite.Registry.all

(* ---- liveness soundness against the dynamic trace ---- *)

let check_trace_live (w : Core.Workload.t) =
  let m = (Option.get (Bench_suite.Registry.find w.name)).build () in
  let lvs =
    Array.of_list
      (List.map
         (fun f -> Dataflow.Liveness.analyse (Dataflow.Cfg.of_func f))
         m.m_funcs)
  in
  let bad = ref 0 in
  let hooks =
    {
      Vm.Exec.pre =
        (fun ~dyn:_ _ (mt : Vm.Meta.t) ->
          Array.iter
            (fun reg ->
              if
                not
                  (Dataflow.Bitset.mem
                     (Dataflow.Liveness.live_before lvs.(mt.fidx)
                        ~bidx:mt.bidx ~idx:mt.idx)
                     reg)
              then incr bad)
            mt.srcs);
      post = (fun ~dyn:_ _ _ -> ());
      at = Vm.Exec.no_hook;
    }
  in
  ignore (Vm.Exec.run ~hooks ~budget:w.budget w.prog);
  Alcotest.(check int) (w.name ^ ": dynamic reads of dead registers") 0 !bad

let test_liveness_vs_trace () =
  List.iter
    (fun name ->
      check_trace_live
        (Core.Workload.make ~name
           ((Option.get (Bench_suite.Registry.find name)).build ())))
    [ "crc32"; "qsort"; "fft" ]

(* ---- pruning study: soundness and coverage ---- *)

let prune_study =
  lazy
    (Analysis.Study.make ~n:5 ~seed:3L ~programs:[ "crc32"; "histo"; "sha" ] ())

let test_prune_static_sound () =
  let rows =
    Analysis.Prune_static.compute ~validate_n:25 (Lazy.force prune_study)
  in
  Alcotest.(check int) "three programs" 3 (List.length rows);
  List.iter
    (fun (r : Analysis.Prune_static.row) ->
      Alcotest.(check int) (r.program ^ ": no misclassification") 0
        r.misclassified;
      Alcotest.(check bool) (r.program ^ ": benign read sites validated") true
        (r.read_checked > 0);
      let frac = Analysis.Prune_static.pruned_fraction r.summary in
      Alcotest.(check bool) (r.program ^ ": pruned fraction positive") true
        (frac > 0.0 && frac < 1.0))
    rows

(* A forwarded write experiment must reproduce the outcome of the read
   experiment it is predicted by: same register, same bit, the next read
   of the destination in the same block execution. *)
let test_forwarding_differential () =
  let name = "crc32" in
  let e = Option.get (Bench_suite.Registry.find name) in
  let w = Core.Workload.make ~name (e.build ()) in
  let m = e.build () in
  let prunes = Array.of_list (List.map Dataflow.Prune.analyse m.m_funcs) in
  let reads = ref [] and writes = ref [] in
  let hooks =
    {
      Vm.Exec.pre = (fun ~dyn _ mt -> reads := (dyn, mt) :: !reads);
      post = (fun ~dyn _ mt -> writes := (dyn, mt) :: !writes);
      at = Vm.Exec.no_hook;
    }
  in
  ignore (Vm.Exec.run ~hooks ~budget:w.budget w.prog);
  let reads = Array.of_list (List.rev !reads) in
  let writes = Array.of_list (List.rev !writes) in
  let outcome_t = Alcotest.testable (fun fmt o ->
      Format.pp_print_string fmt (Core.Outcome.to_string o)) ( = )
  in
  (* find a handful of forwarded write events spread over the run *)
  let checked = ref 0 in
  let step = max 1 (Array.length writes / 7) in
  let i = ref 0 in
  while !checked < 5 && !i < Array.length writes do
    let dyn_w, (mw : Vm.Meta.t) = writes.(!i) in
    (match Dataflow.Prune.forwarded_write prunes.(mw.fidx) ~bidx:mw.bidx ~idx:mw.idx with
    | None -> ()
    | Some j ->
        (* the matching read event: first occurrence of point j after the
           write, necessarily in the same block execution *)
        let rec find k =
          if k >= Array.length reads then None
          else
            let dyn_r, (mr : Vm.Meta.t) = reads.(k) in
            if
              dyn_r > dyn_w && mr.fidx = mw.fidx && mr.bidx = mw.bidx
              && mr.idx = j
            then Some (k, mr)
            else find (k + 1)
        in
        (match find 0 with
        | None -> Alcotest.fail "forwarded write with no subsequent read"
        | Some (r_ord, mr) ->
            let slot =
              let s = ref (-1) in
              Array.iteri
                (fun k reg -> if reg = mw.dst && !s < 0 then s := k)
                mr.srcs;
              !s
            in
            Alcotest.(check bool) "destination appears in the read" true
              (slot >= 0);
            let ty =
              (List.nth m.m_funcs mw.fidx).f_reg_ty.(mw.dst)
            in
            List.iter
              (fun bit ->
                let ow =
                  (Core.Experiment.run_at w (Core.Spec.single Write)
                     ~first:(!i, -1, bit)
                     (Prng.of_seed 11L))
                    .outcome
                in
                let orr =
                  (Core.Experiment.run_at w (Core.Spec.single Read)
                     ~first:(r_ord, slot, bit)
                     (Prng.of_seed 12L))
                    .outcome
                in
                Alcotest.check outcome_t "write outcome = forwarded read" orr
                  ow)
              [ 0; Dataflow.Prune.flip_width ty - 1 ];
            incr checked));
    i := !i + step
  done;
  Alcotest.(check bool) "found forwarded writes to check" true (!checked >= 3)

(* ---- qcheck: random programs ---- *)

(* Reuses the random straight-line program generator of the VM
   differential suite: any dynamically-executed read must be statically
   live at its program point. *)
let prop_liveness_sound =
  QCheck.Test.make ~name:"liveness covers every dynamic read" ~count:150
    (QCheck.make Suite_differential.case_gen) (fun (ops, seeds) ->
      let seeds = if seeds = [] then [ 1L ] else seeds in
      let ops = Suite_differential.sanitize ops seeds in
      let m = Suite_differential.build_program ops seeds in
      let f = List.hd m.m_funcs in
      let lv = Dataflow.Liveness.analyse (Dataflow.Cfg.of_func f) in
      let ok = ref true in
      let hooks =
        {
          Vm.Exec.pre =
            (fun ~dyn:_ _ (mt : Vm.Meta.t) ->
              Array.iter
                (fun reg ->
                  if
                    not
                      (Dataflow.Bitset.mem
                         (Dataflow.Liveness.live_before lv ~bidx:mt.bidx
                            ~idx:mt.idx)
                         reg)
                  then ok := false)
                mt.srcs);
          post = (fun ~dyn:_ _ _ -> ());
      at = Vm.Exec.no_hook;
        }
      in
      ignore (Vm.Exec.run ~hooks ~budget:1_000_000 (Vm.Program.load m));
      !ok)

(* Injections forced at provably-benign read sites of a real program must
   classify Benign, whatever site and bit the generator picks. *)
let benign_env =
  lazy
    (let name = "histo" in
     let e = Option.get (Bench_suite.Registry.find name) in
     let w = Core.Workload.make ~name (e.build ()) in
     let m = e.build () in
     let prunes = Array.of_list (List.map Dataflow.Prune.analyse m.m_funcs) in
     let tys =
       Array.of_list
         (List.map (fun (f : Ir.Func.t) -> f.f_reg_ty) m.m_funcs)
     in
     let pool = ref [] in
     let ord = ref 0 in
     let hooks =
       {
         Vm.Exec.pre =
           (fun ~dyn:_ _ (mt : Vm.Meta.t) ->
             let i = !ord in
             incr ord;
             Array.iteri
               (fun slot reg ->
                 let ty = tys.(mt.fidx).(reg) in
                 let demand =
                   Dataflow.Prune.read_demand prunes.(mt.fidx) ~bidx:mt.bidx
                     ~idx:mt.idx ~reg
                 in
                 for bit = 0 to Dataflow.Prune.flip_width ty - 1 do
                   if Dataflow.Prune.is_benign ty ~demand ~bit then
                     pool := (i, slot, bit) :: !pool
                 done)
               mt.srcs);
         post = (fun ~dyn:_ _ _ -> ());
      at = Vm.Exec.no_hook;
       }
     in
     ignore (Vm.Exec.run ~hooks ~budget:w.budget w.prog);
     (w, Array.of_list !pool))

let prop_benign_sites_inject_benign =
  QCheck.Test.make ~name:"provably-benign sites always inject Benign"
    ~count:60
    (QCheck.make QCheck.Gen.(pair nat nat))
    (fun (site_i, seed_i) ->
      let w, pool = Lazy.force benign_env in
      let ord, slot, bit = pool.(site_i mod Array.length pool) in
      let e =
        Core.Experiment.run_at w (Core.Spec.single Read) ~first:(ord, slot, bit)
          (Prng.of_seed (Int64.of_int (seed_i + 1)))
      in
      e.outcome = Core.Outcome.Benign)

let suites =
  [
    ( "dataflow",
      [
        Alcotest.test_case "cfg: diamond" `Quick test_cfg_diamond;
        Alcotest.test_case "cfg: dedup + orphan" `Quick test_cfg_dedup_and_orphan;
        Alcotest.test_case "liveness: diamond" `Quick test_liveness_diamond;
        Alcotest.test_case "liveness: loop" `Quick test_liveness_loop;
        Alcotest.test_case "reaching: diamond" `Quick test_reaching_diamond;
        Alcotest.test_case "bitmask transfer functions" `Quick test_bitmask_masks;
        Alcotest.test_case "prune demands" `Quick test_prune_demands;
        Alcotest.test_case "prune forwarding" `Quick test_prune_forwarding;
        Alcotest.test_case "lint fixtures" `Quick test_lint_fixtures;
        Alcotest.test_case "lint broken.ir" `Quick test_lint_broken_fixture;
        Alcotest.test_case "lint: registry clean" `Quick test_lint_registry_clean;
        Alcotest.test_case "validate: cfg facts" `Quick test_validate_cfg_facts;
        Alcotest.test_case "candidates exact (15 programs)" `Slow
          test_candidates_exact;
        Alcotest.test_case "liveness vs dynamic trace" `Slow
          test_liveness_vs_trace;
        Alcotest.test_case "prune-static soundness" `Slow
          test_prune_static_sound;
        Alcotest.test_case "forwarded-write differential" `Slow
          test_forwarding_differential;
        QCheck_alcotest.to_alcotest prop_liveness_sound;
        QCheck_alcotest.to_alcotest prop_benign_sites_inject_benign;
      ] );
  ]
