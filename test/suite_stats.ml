(* Tests for proportion estimators, histograms and running moments. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let test_wald_midpoint () =
  let ci = Stats.Proportion.wald ~successes:50 ~trials:100 () in
  Alcotest.(check bool) "p = 0.5" true (feq ci.p 0.5);
  (* Standard error at p=0.5, n=100 is 0.05; the 95% half-width is ~0.098. *)
  Alcotest.(check bool) "half width" true
    (feq ~eps:1e-6 (Stats.Proportion.half_width ci) 0.09799819946)

let test_wald_clamps () =
  let ci = Stats.Proportion.wald ~successes:0 ~trials:10 () in
  Alcotest.(check bool) "lo = 0" true (feq ci.lo 0.);
  let ci = Stats.Proportion.wald ~successes:10 ~trials:10 () in
  Alcotest.(check bool) "hi = 1" true (feq ci.hi 1.)

let test_wilson_known_value () =
  (* Wilson interval for 8/10 at 95%: (0.4901, 0.9433) approximately. *)
  let ci = Stats.Proportion.wilson ~successes:8 ~trials:10 () in
  Alcotest.(check bool) "lo" true (Float.abs (ci.lo -. 0.4901) < 0.001);
  Alcotest.(check bool) "hi" true (Float.abs (ci.hi -. 0.9433) < 0.001)

let test_rejects_zero_trials () =
  Alcotest.check_raises "wald" (Invalid_argument "Proportion.wald: trials must be positive")
    (fun () -> ignore (Stats.Proportion.wald ~successes:0 ~trials:0 ()))

let prop_wilson_contains_p =
  QCheck.Test.make ~name:"wilson: lo <= p' <= hi and ordered" ~count:500
    QCheck.(pair (int_range 0 100) (int_range 1 100))
    (fun (s0, n) ->
      let s = min s0 n in
      let ci = Stats.Proportion.wilson ~successes:s ~trials:n () in
      ci.lo <= ci.hi && ci.lo >= 0. && ci.hi <= 1.)

let prop_wald_narrows =
  QCheck.Test.make ~name:"wald: width shrinks with n" ~count:200
    (QCheck.int_range 10 1000) (fun n ->
      let w_small =
        Stats.Proportion.(half_width (wald ~successes:(n / 2) ~trials:n ()))
      in
      let w_big =
        Stats.Proportion.(
          half_width (wald ~successes:(n * 2) ~trials:(4 * n) ()))
      in
      w_big < w_small +. 1e-12)

(* --- campaign-size planner (the adaptive sampler's stopping maths) --- *)

let test_needed_trials_known () =
  (* At p = 0.5 and a 5-point target, the classic answer is a few hundred
     trials; check the planner against plan_half_width directly. *)
  let n = Stats.Proportion.needed_trials ~p:0.5 ~half_width:0.05 () in
  Alcotest.(check bool) "hw(n) <= target" true
    (Stats.Proportion.plan_half_width ~p:0.5 n <= 0.05);
  Alcotest.(check bool) "hw(n-1) > target" true
    (Stats.Proportion.plan_half_width ~p:0.5 (n - 1) > 0.05);
  Alcotest.(check bool) "ballpark" true (n > 300 && n < 450)

let test_needed_trials_rejects () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Proportion.needed_trials: p must be in [0, 1]")
    (fun () ->
      ignore (Stats.Proportion.needed_trials ~p:1.5 ~half_width:0.05 ()));
  Alcotest.check_raises "half_width must be positive"
    (Invalid_argument "Proportion.needed_trials: half_width must be positive")
    (fun () -> ignore (Stats.Proportion.needed_trials ~p:0.5 ~half_width:0. ()))

let test_met_stopping_rule () =
  let ci = Stats.Proportion.wilson ~successes:50 ~trials:100 () in
  let hw = Stats.Proportion.half_width ci in
  Alcotest.(check bool) "met at own width" true
    (Stats.Proportion.met ci ~target:hw);
  Alcotest.(check bool) "not met below" false
    (Stats.Proportion.met ci ~target:(hw /. 2.))

let prop_plan_monotone_in_n =
  QCheck.Test.make ~name:"plan_half_width: strictly decreasing in n"
    ~count:300
    QCheck.(pair (float_range 0. 1.) (int_range 1 5000))
    (fun (p, n) ->
      Stats.Proportion.plan_half_width ~p (n + 1)
      < Stats.Proportion.plan_half_width ~p n)

let prop_needed_trials_inverse =
  QCheck.Test.make
    ~name:"needed_trials: least n reaching the target half-width" ~count:300
    QCheck.(pair (float_range 0. 1.) (float_range 0.005 0.4))
    (fun (p, hw) ->
      let n = Stats.Proportion.needed_trials ~p ~half_width:hw () in
      n >= 1
      && Stats.Proportion.plan_half_width ~p n <= hw
      && (n = 1 || Stats.Proportion.plan_half_width ~p (n - 1) > hw))

let prop_wilson_within_clamp_bounds =
  QCheck.Test.make
    ~name:"wilson: interval inside [0,1] and contains point estimate"
    ~count:500
    QCheck.(pair (int_range 0 200) (int_range 1 200))
    (fun (s0, n) ->
      let s = min s0 n in
      let ci = Stats.Proportion.wilson ~successes:s ~trials:n () in
      (* At s = 0 or s = n the bound lands on the point estimate up to
         one rounding error, hence the epsilon. *)
      let eps = 1e-12 in
      0. <= ci.lo
      && ci.lo <= ci.p +. eps
      && ci.p <= ci.hi +. eps
      && ci.hi <= 1.)

let prop_plan_matches_measured_at_half =
  (* At s = n/2 the measured Wilson half-width is the planner's value at
     the realised proportion — the planner is the campaign's estimator,
     not an approximation of it. *)
  QCheck.Test.make ~name:"plan_half_width agrees with measured wilson"
    ~count:200
    (QCheck.int_range 2 2000)
    (fun n ->
      let s = n / 2 in
      let p = float_of_int s /. float_of_int n in
      let measured =
        Stats.Proportion.(half_width (wilson ~successes:s ~trials:n ()))
      in
      let planned = Stats.Proportion.plan_half_width ~p n in
      (* The measured interval clamps to [0,1]; at mid p nothing clamps. *)
      Float.abs (measured -. planned) < 1e-9)

let test_histogram_basic () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 1; 1; 2; 5; 30 ];
  Alcotest.(check int) "count 1" 2 (Stats.Histogram.count h 1);
  Alcotest.(check int) "count 2" 1 (Stats.Histogram.count h 2);
  Alcotest.(check int) "count absent" 0 (Stats.Histogram.count h 3);
  Alcotest.(check int) "total" 5 (Stats.Histogram.total h);
  Alcotest.(check int) "max key" 30 (Stats.Histogram.max_key h);
  Alcotest.(check int) "range 1-5" 4 (Stats.Histogram.range_count h ~lo:1 ~hi:5);
  Alcotest.(check (list (pair int int)))
    "alist" [ (1, 2); (2, 1); (5, 1); (30, 1) ]
    (Stats.Histogram.to_alist h)

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add a) [ 0; 1 ];
  List.iter (Stats.Histogram.add b) [ 1; 9 ];
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "merged total" 4 (Stats.Histogram.total m);
  Alcotest.(check int) "merged count 1" 2 (Stats.Histogram.count m 1);
  (* inputs unchanged *)
  Alcotest.(check int) "a unchanged" 2 (Stats.Histogram.total a)

let test_histogram_empty () =
  let h = Stats.Histogram.create () in
  Alcotest.(check int) "empty max key" (-1) (Stats.Histogram.max_key h);
  Alcotest.(check (list (pair int int))) "empty alist" [] (Stats.Histogram.to_alist h)

let test_running_moments () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "n" 8 (Stats.Running.n r);
  Alcotest.(check bool) "mean" true (feq (Stats.Running.mean r) 5.0);
  (* sample variance of this classic dataset is 32/7 *)
  Alcotest.(check bool) "variance" true
    (feq (Stats.Running.variance r) (32. /. 7.))

let prop_running_matches_naive =
  QCheck.Test.make ~name:"running mean matches naive mean" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1e3) 1e3))
    (fun xs ->
      let r = Stats.Running.create () in
      List.iter (Stats.Running.add r) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Stats.Running.mean r -. naive) < 1e-6)

let suites =
  [
    ( "stats",
      [
        Alcotest.test_case "wald midpoint" `Quick test_wald_midpoint;
        Alcotest.test_case "wald clamps" `Quick test_wald_clamps;
        Alcotest.test_case "wilson known value" `Quick test_wilson_known_value;
        Alcotest.test_case "rejects zero trials" `Quick test_rejects_zero_trials;
        QCheck_alcotest.to_alcotest prop_wilson_contains_p;
        QCheck_alcotest.to_alcotest prop_wald_narrows;
        Alcotest.test_case "needed_trials known value" `Quick
          test_needed_trials_known;
        Alcotest.test_case "needed_trials rejects" `Quick
          test_needed_trials_rejects;
        Alcotest.test_case "met stopping rule" `Quick test_met_stopping_rule;
        QCheck_alcotest.to_alcotest prop_plan_monotone_in_n;
        QCheck_alcotest.to_alcotest prop_needed_trials_inverse;
        QCheck_alcotest.to_alcotest prop_wilson_within_clamp_bounds;
        QCheck_alcotest.to_alcotest prop_plan_matches_measured_at_half;
        Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
        Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
        Alcotest.test_case "running moments" `Quick test_running_moments;
        QCheck_alcotest.to_alcotest prop_running_matches_naive;
      ] );
  ]
