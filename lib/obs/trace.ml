(* Lightweight span tracing.

   A span is a begin/end event pair; spans nest per domain (begin A,
   begin B, end B, end A).  Events carry a wall-clock timestamp and the
   recording domain's id and are kept in one mutex-guarded buffer —
   spans are coarse (campaigns, shards, dispatches), so contention on
   the buffer is negligible next to the work they bracket.  Export is
   JSONL, one event per line, in recording order. *)

type event = { name : string; ph : char; (* 'B' | 'E' *) ts : float; dom : int }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let lock = Mutex.create ()
let buf : event list ref = ref [] (* newest first *)

let record name ph =
  let e =
    {
      name;
      ph;
      ts = Unix.gettimeofday ();
      dom = (Domain.self () :> int);
    }
  in
  Mutex.lock lock;
  buf := e :: !buf;
  Mutex.unlock lock

type span = { s_name : string; s_live : bool }

let null = { s_name = ""; s_live = false }

let begin_ name =
  if enabled () then begin
    record name 'B';
    { s_name = name; s_live = true }
  end
  else null

let end_ s = if s.s_live && enabled () then record s.s_name 'E'

let with_span name f =
  let s = begin_ name in
  Fun.protect ~finally:(fun () -> end_ s) f

let events () =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> List.rev !buf)

let clear () =
  Mutex.lock lock;
  buf := [];
  Mutex.unlock lock

(* Per-domain stack discipline: every E matches the most recent open B
   of its domain, and nothing is left open. *)
let well_formed evs =
  let stacks = Hashtbl.create 8 in
  let ok =
    List.for_all
      (fun e ->
        let st = Option.value (Hashtbl.find_opt stacks e.dom) ~default:[] in
        match e.ph with
        | 'B' ->
            Hashtbl.replace stacks e.dom (e.name :: st);
            true
        | 'E' -> (
            match st with
            | top :: rest when String.equal top e.name ->
                Hashtbl.replace stacks e.dom rest;
                true
            | _ -> false)
        | _ -> false)
      evs
  in
  ok && Hashtbl.fold (fun _ st acc -> acc && st = []) stacks true

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_event e =
  Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.6f,\"dom\":%d}"
    (escape e.name) e.ph e.ts e.dom

let export_jsonl oc =
  List.iter
    (fun e ->
      output_string oc (json_of_event e);
      output_char oc '\n')
    (events ())
