(** Unified runner/engine execution statistics.

    The single value type behind [Core.Runner.cache_stats] and the
    engine's per-run statistics.  Producers record deltas into the
    default metrics registry with {!count}; {!read} recovers the
    process-wide totals, so code and a metrics dump always agree. *)

type t = {
  mem_hits : int;
      (** campaigns answered from a runner's in-memory cache *)
  dispatched : int;  (** campaigns handed to a dispatch function *)
  shards_from_store : int;  (** shards answered by a durable store *)
  shards_executed : int;  (** shards actually executed *)
  experiments_from_store : int;
  experiments_executed : int;
}

val zero : t
val add : t -> t -> t

val count : t -> unit
(** Fold a delta into the obs counters
    ([onebit_runner_*_total], [onebit_engine_*_total]) of the default
    registry.  No-op while collection is disabled. *)

val read : unit -> t
(** The process-wide totals accumulated by {!count}. *)

val pp : t -> string
(** One-line human-readable rendering; experiment totals are printed
    only when nonzero, so a runner-only snapshot reads exactly like the
    legacy [Core.Runner.pp_stats] output. *)
