(** Lock-free-per-domain metrics registry.

    Metrics shard their mutable state over a fixed number of slots
    indexed by domain id, so recording is one uncontended atomic
    operation in the common case and never takes a lock; snapshots fold
    the per-domain slots together, making the read-out independent of
    how work was distributed over domains.  Registration is idempotent
    (same name and labels return the same handle) and cheap enough to do
    at module-initialisation time.

    All recording is gated on a process-global enabled flag: a disabled
    probe costs one atomic load and a branch, which is what keeps
    always-present instrumentation essentially free (measured by
    [bench/main.exe perf]). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Switch collection on/off.  Registration, snapshots and rendering
    work regardless; only recording is gated. *)

type t
(** A registry. *)

val create : unit -> t
val default : t
(** The process-wide registry that all built-in instrumentation uses. *)

type counter
type gauge
type histogram

val counter :
  ?registry:t -> ?labels:(string * string) list -> string -> counter
(** Monotonic integer counter.  Idempotent: registering the same
    (name, labels) twice returns the same handle; re-registering a name
    with a different metric kind raises [Invalid_argument]. *)

val gauge : ?registry:t -> ?labels:(string * string) list -> string -> gauge
(** Float-valued gauge (set or accumulate). *)

val histogram :
  ?registry:t ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string -> histogram
(** Fixed-bucket histogram; [buckets] are strictly increasing upper
    bounds (default {!default_buckets}, a latency scale in seconds); an
    implicit +inf bucket is appended. *)

val default_buckets : float array

val count_buckets : float array
(** Decade-scale bounds (1 .. 1e8) for count-valued observations —
    skipped instructions, copied pages — where the latency default is
    meaningless. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val gadd : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hvalue = {
  le : float array;  (** bucket upper bounds *)
  counts : int array;  (** per-bucket counts; one extra final +inf slot *)
  sum : float;  (** sum of observed values *)
}

type value = Counter of int | Gauge of float | Histogram of hvalue

type sample = {
  name : string;
  labels : (string * string) list;
  value : value;
}

val snapshot : ?registry:t -> unit -> sample list
(** A consistent-enough read of every metric, sorted by (name, labels)
    so the output is deterministic for deterministic workloads. *)

val find :
  ?registry:t -> ?labels:(string * string) list -> string -> value option

val hvalue_total : hvalue -> int
(** Total observation count (sum of [counts]). *)

val merge_hvalue : hvalue -> hvalue -> hvalue
(** Bucket-wise sum; raises [Invalid_argument] on bucket mismatch.
    Associative and commutative on integer counts; sums are float
    additions (exact while the observations are integer-valued). *)

val merge_value : value -> value -> value
(** Kind-wise merge: counters and gauges add, histograms
    {!merge_hvalue}; raises [Invalid_argument] on kind mismatch. *)

val render : sample list -> string
(** Prometheus-style text exposition: [# TYPE] comments, one
    [name{labels} value] line per sample, histograms expanded into
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count]. *)
