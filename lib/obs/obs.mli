(** onebit.obs — observability layer.

    {!Metrics} is a lock-free-per-domain registry of counters, gauges
    and fixed-bucket histograms; {!Trace} records nested begin/end
    spans exported as JSONL; {!Snapshot} is the unified runner/engine
    statistics value.  Recording never influences the instrumented
    computation — campaign results are bit-identical with collection on
    or off — and disabled probes cost one atomic load and a branch.

    Collection is off by default.  [Core.Config.install] (or
    {!install_sink} directly) switches it on and arranges for dumps at
    process exit; the [ONEBIT_METRICS] / [ONEBIT_TRACE] variables and
    the [--metrics] / [--trace] CLI flags are the user-facing spellings. *)

module Metrics = Metrics
module Trace = Trace
module Snapshot = Snapshot

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Gate for metrics collection (tracing has its own flag,
    {!Trace.set_enabled}). *)

val render : unit -> string
(** Prometheus-style text dump of the default registry. *)

val http_response : unit -> string
(** {!render} wrapped in a minimal [HTTP/1.1 200] response
    ([text/plain; version=0.0.4], [Connection: close]) — what a
    Prometheus scrape of an embedded metrics endpoint expects. *)

val dump_metrics : string -> unit
(** Write {!render} to a file path ("-" or "stderr" for stderr). *)

val dump_trace : string -> unit
(** Write the recorded trace events as JSONL to a file path ("-" or
    "stderr" for stderr). *)

val install_sink : ?metrics:string -> ?trace:string -> unit -> unit
(** Enable collection (and tracing if [trace] is given) and register an
    at-exit writer for each given path.  May be called more than once;
    every installed sink is written at exit.  A call with neither path
    is a no-op. *)
