(* Lock-free-per-domain metrics registry.

   Every metric shards its mutable state across a fixed number of slots;
   a domain always writes the slot indexed by its own id, so in the
   common case (at most [nslots] live domains) an update is one
   uncontended atomic on a cell no other domain is writing.  Two domains
   whose ids collide modulo [nslots] share a slot, which stays correct —
   the cells are atomics — merely contended.  Reading (snapshotting)
   folds the slots together, so a snapshot is a sum of per-domain
   contributions and is independent of how work was spread over domains.

   Registration (name -> metric) takes a mutex, but happens once per
   metric at module-initialisation time; the record/observe operations on
   the returned handles never lock.  All recording operations are gated
   on a global enabled flag so that a disabled probe costs one atomic
   load and a branch. *)

let nslots = 64 (* power of two; slot = domain id land (nslots - 1) *)
let slot () = (Domain.self () :> int) land (nslots - 1)

(* Global collection gate.  Handles can be created and read regardless;
   only the write path is switched off. *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type counter = int Atomic.t array
type gauge = float Atomic.t

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds; +inf implicit *)
  cells : int Atomic.t array array;  (* nslots x (nbounds + 1) *)
  sums : float Atomic.t array;  (* nslots *)
}

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

type t = {
  lock : Mutex.t;
  tbl : (string * (string * string) list, metric) Hashtbl.t;
}

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 64 }
let default = create ()

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

(* Decade scale for count-valued observations (instructions skipped,
   pages copied, ...) where the latency scale above is meaningless. *)
let count_buckets = [| 1.0; 10.0; 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 |]

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let register t name labels make check =
  let key = (name, canonical_labels labels) in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some m -> (
          match check m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Obs.Metrics: %s already registered with another kind" name))
      | None ->
          let m, v = make () in
          Hashtbl.replace t.tbl key m;
          v)

let counter ?(registry = default) ?(labels = []) name : counter =
  register registry name labels
    (fun () ->
      let c = Array.init nslots (fun _ -> Atomic.make 0) in
      (M_counter c, c))
    (function M_counter c -> Some c | _ -> None)

let gauge ?(registry = default) ?(labels = []) name : gauge =
  register registry name labels
    (fun () ->
      let g = Atomic.make 0.0 in
      (M_gauge g, g))
    (function M_gauge g -> Some g | _ -> None)

let histogram ?(registry = default) ?(labels = []) ?(buckets = default_buckets)
    name : histogram =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing")
    buckets;
  register registry name labels
    (fun () ->
      let h =
        {
          bounds = Array.copy buckets;
          cells =
            Array.init nslots (fun _ ->
                Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0));
          sums = Array.init nslots (fun _ -> Atomic.make 0.0);
        }
      in
      (M_histogram h, h))
    (function M_histogram h -> Some h | _ -> None)

(* ---- recording (lock-free; no-ops while disabled) ---- *)

let add (c : counter) n = if enabled () then ignore (Atomic.fetch_and_add c.(slot ()) n)
let incr (c : counter) = add c 1

let rec float_add cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then float_add cell x

let set (g : gauge) x = if enabled () then Atomic.set g x
let gadd (g : gauge) x = if enabled () then float_add g x

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe (h : histogram) v =
  if enabled () then begin
    let s = slot () in
    Atomic.incr h.cells.(s).(bucket_index h.bounds v);
    float_add h.sums.(s) v
  end

(* ---- snapshots ---- *)

type hvalue = {
  le : float array;  (* bucket upper bounds; counts has one extra +inf slot *)
  counts : int array;
  sum : float;
}

type value = Counter of int | Gauge of float | Histogram of hvalue

type sample = {
  name : string;
  labels : (string * string) list;
  value : value;
}

let hvalue_total h = Array.fold_left ( + ) 0 h.counts

let read_metric = function
  | M_counter c -> Counter (Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c)
  | M_gauge g -> Gauge (Atomic.get g)
  | M_histogram h ->
      let counts = Array.make (Array.length h.bounds + 1) 0 in
      Array.iter
        (Array.iteri (fun i a -> counts.(i) <- counts.(i) + Atomic.get a))
        h.cells;
      let sum =
        Array.fold_left (fun acc a -> acc +. Atomic.get a) 0.0 h.sums
      in
      Histogram { le = Array.copy h.bounds; counts; sum }

let snapshot ?(registry = default) () =
  Mutex.lock registry.lock;
  let items =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry.lock)
      (fun () ->
        Hashtbl.fold
          (fun (name, labels) m acc -> { name; labels; value = read_metric m } :: acc)
          registry.tbl [])
  in
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    items

let find ?(registry = default) ?(labels = []) name =
  let key = (name, canonical_labels labels) in
  Mutex.lock registry.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.lock)
    (fun () -> Option.map read_metric (Hashtbl.find_opt registry.tbl key))

(* ---- merge (used by shard-level aggregation and tested for
   associativity; counts are integers, sums are float additions of the
   observed values) ---- *)

let merge_hvalue a b =
  if a.le <> b.le then invalid_arg "Obs.Metrics.merge_hvalue: bucket mismatch";
  {
    le = a.le;
    counts = Array.map2 ( + ) a.counts b.counts;
    sum = a.sum +. b.sum;
  }

let merge_value a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram x, Histogram y -> Histogram (merge_hvalue x y)
  | _ -> invalid_arg "Obs.Metrics.merge_value: kind mismatch"

(* ---- Prometheus-style text rendering ---- *)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
      ^ "}"

let render_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let type_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let render samples =
  let buf = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun s ->
      if s.name <> !last_name then begin
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.name (type_name s.value));
        last_name := s.name
      end;
      match s.value with
      | Counter n ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.name (render_labels s.labels) n)
      | Gauge x ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name (render_labels s.labels)
               (render_float x))
      | Histogram h ->
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i < Array.length h.le then render_float h.le.(i) else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.name
                   (render_labels (s.labels @ [ ("le", le) ]))
                   !cum))
            h.counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.name (render_labels s.labels)
               (render_float h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name (render_labels s.labels)
               (hvalue_total h)))
    samples;
  Buffer.contents buf
