(* onebit.obs — observability layer: metrics, span tracing, unified
   execution statistics, and sink plumbing.

   The library is deliberately dependency-free (stdlib + unix) so every
   other layer — vm, core, engine, store — can instrument itself without
   cycles.  Recording never influences the instrumented computation:
   campaign results are bit-identical with collection on or off (pinned
   by test/suite_obs.ml and reported by `bench/main.exe perf`). *)

module Metrics = Metrics
module Trace = Trace
module Snapshot = Snapshot

let enabled = Metrics.enabled
let set_enabled = Metrics.set_enabled

let render () = Metrics.render (Metrics.snapshot ())

let http_response () =
  let body = render () in
  Printf.sprintf
    "HTTP/1.1 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

let write_text path text =
  match path with
  | "-" | "stderr" ->
      output_string stderr text;
      flush stderr
  | path ->
      Out_channel.with_open_text path (fun oc -> output_string oc text)

let dump_metrics path = write_text path (render ())

let dump_trace path =
  match path with
  | "-" | "stderr" ->
      Trace.export_jsonl stderr;
      flush stderr
  | path -> Out_channel.with_open_text path Trace.export_jsonl

let sinks : (string option * string option) list ref = ref []

let install_sink ?metrics ?trace () =
  match (metrics, trace) with
  | None, None -> ()
  | _ ->
      set_enabled true;
      (match trace with Some _ -> Trace.set_enabled true | None -> ());
      if !sinks = [] then
        at_exit (fun () ->
            List.iter
              (fun (m, t) ->
                (match m with Some p -> dump_metrics p | None -> ());
                match t with Some p -> dump_trace p | None -> ())
              (List.rev !sinks));
      sinks := (metrics, trace) :: !sinks
