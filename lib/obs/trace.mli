(** Lightweight span tracing.

    A span brackets a unit of work with begin/end events; spans nest
    per domain.  Recording is gated on its own enabled flag (separate
    from metrics) and a disabled {!begin_} returns {!null}, which
    {!end_} ignores, so disabled tracing costs one atomic load.  Events
    are exported as JSONL, one object per line:
    [{"name":…,"ph":"B"|"E","ts":…,"dom":…}]. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

type span

val null : span
(** The inert span returned while tracing is disabled. *)

val begin_ : string -> span
val end_ : span -> unit

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the end event is
    recorded even if [f] raises. *)

type event = { name : string; ph : char; ts : float; dom : int }

val events : unit -> event list
(** All recorded events, oldest first. *)

val clear : unit -> unit

val well_formed : event list -> bool
(** Per-domain stack discipline: every end matches its domain's most
    recent open begin, and no span is left open. *)

val json_of_event : event -> string
val export_jsonl : out_channel -> unit
