(* Unified runner/engine execution statistics.

   One value type replaces the bespoke mutable records that used to live
   in Core.Runner (memo-cache hits) and Engine (store/shard accounting).
   Producers fold deltas into the obs counters below with [count]; [read]
   recovers the process-wide totals from the default registry, so the
   same numbers are visible in a metrics dump and in code. *)

type t = {
  mem_hits : int;  (* campaigns answered from a runner's in-memory cache *)
  dispatched : int;  (* campaigns handed to a dispatch function *)
  shards_from_store : int;  (* shards answered by a durable store *)
  shards_executed : int;  (* shards actually executed *)
  experiments_from_store : int;
  experiments_executed : int;
}

let zero =
  {
    mem_hits = 0;
    dispatched = 0;
    shards_from_store = 0;
    shards_executed = 0;
    experiments_from_store = 0;
    experiments_executed = 0;
  }

let add a b =
  {
    mem_hits = a.mem_hits + b.mem_hits;
    dispatched = a.dispatched + b.dispatched;
    shards_from_store = a.shards_from_store + b.shards_from_store;
    shards_executed = a.shards_executed + b.shards_executed;
    experiments_from_store = a.experiments_from_store + b.experiments_from_store;
    experiments_executed = a.experiments_executed + b.experiments_executed;
  }

let names =
  [
    "onebit_runner_mem_hits_total";
    "onebit_runner_dispatched_total";
    "onebit_engine_shards_from_store_total";
    "onebit_engine_shards_executed_total";
    "onebit_engine_experiments_from_store_total";
    "onebit_engine_experiments_executed_total";
  ]

let counters = lazy (List.map (fun n -> Metrics.counter n) names)

let count d =
  match Lazy.force counters with
  | [ mem; disp; sfs; sx; efs; ex ] ->
      if d.mem_hits <> 0 then Metrics.add mem d.mem_hits;
      if d.dispatched <> 0 then Metrics.add disp d.dispatched;
      if d.shards_from_store <> 0 then Metrics.add sfs d.shards_from_store;
      if d.shards_executed <> 0 then Metrics.add sx d.shards_executed;
      if d.experiments_from_store <> 0 then
        Metrics.add efs d.experiments_from_store;
      if d.experiments_executed <> 0 then Metrics.add ex d.experiments_executed
  | _ -> assert false

let read () =
  ignore (Lazy.force counters);
  let v n =
    match Metrics.find n with Some (Metrics.Counter c) -> c | _ -> 0
  in
  match List.map v names with
  | [ mem; disp; sfs; sx; efs; ex ] ->
      {
        mem_hits = mem;
        dispatched = disp;
        shards_from_store = sfs;
        shards_executed = sx;
        experiments_from_store = efs;
        experiments_executed = ex;
      }
  | _ -> assert false

let pp s =
  let p n word rest =
    Printf.sprintf "%d %s%s%s" n word (if n = 1 then "" else "s") rest
  in
  let base =
    [
      p s.mem_hits "memory hit" "";
      p s.dispatched "campaign" " dispatched";
      p s.shards_from_store "shard" " from store";
      p s.shards_executed "shard" " executed";
    ]
  in
  let extra =
    (if s.experiments_from_store > 0 then
       [ p s.experiments_from_store "experiment" " from store" ]
     else [])
    @
    if s.experiments_executed > 0 then
      [ p s.experiments_executed "experiment" " executed" ]
    else []
  in
  String.concat ", " (base @ extra)
