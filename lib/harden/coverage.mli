(** Fault-coverage comparison of hardening passes across fault domains.

    SWIFT ({!Swift}) and TMR ({!Tmr}) target the register-operand fault
    model; their guarantees do not extend to flips landing in live
    memory (SWIFT explicitly assumes ECC-protected memory — a corrupted
    load feeds original and shadow alike) or in the stored program
    (neither pass duplicates instructions' encodings).  Running the same
    baseline/hardened variants under each {!Core.Domain} puts numbers on
    that blind spot. *)

type row = {
  cv_variant : string;  (** e.g. ["fib"], ["fib+swift"], ["fib+tmr"] *)
  cv_domain : Core.Domain.t;
  cv_n : int;
  cv_sdc : float;  (** silent data corruptions, % of [cv_n] *)
  cv_detected : float;
      (** detected + hang + no-output, % of [cv_n] — everything the run
          visibly stopped or flagged *)
  cv_benign : float;  (** masked faults, % of [cv_n] *)
}

val measure :
  ?technique:Core.Technique.t ->
  ?domains:Core.Domain.t list ->
  variants:(string * Core.Workload.t) list ->
  n:int ->
  seed:int64 ->
  unit ->
  row list
(** One [n]-experiment single-flip campaign per (variant, domain), with
    [technique] (default [Write]; ignored at runtime by the non-register
    domains) and [domains] defaulting to {!Core.Domain.all}.  Rows come
    back variant-major in the order given. *)

val header : string list
(** Column titles matching {!to_cells}. *)

val to_cells : row -> string list
(** One table row: variant, domain, n, and the three percentages. *)
