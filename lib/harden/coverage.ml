(* Per-domain fault-coverage measurement for the hardening passes.

   SWIFT and TMR were designed against the register-operand fault model:
   SWIFT assumes ECC-protected memory (loads copy the loaded value into
   the shadow, so a flipped arena byte corrupts both copies identically
   and no check fires), and neither pass protects the stored program.
   Measuring the same variants under the Mem and Code domains quantifies
   exactly that blind spot — which is why the rows carry the domain. *)

type row = {
  cv_variant : string;
  cv_domain : Core.Domain.t;
  cv_n : int;
  cv_sdc : float;
  cv_detected : float;  (* detected + hang + no-output, like `onebit harden` *)
  cv_benign : float;
}

let pct part whole = 100. *. float_of_int part /. float_of_int (max 1 whole)

let measure ?(technique = Core.Technique.Write) ?(domains = Core.Domain.all)
    ~variants ~n ~seed () =
  List.concat_map
    (fun (name, w) ->
      List.map
        (fun domain ->
          let spec = Core.Spec.single ~domain technique in
          let r = Core.Campaign.run w spec ~n ~seed in
          {
            cv_variant = name;
            cv_domain = domain;
            cv_n = r.Core.Campaign.n;
            cv_sdc = Core.Campaign.sdc_pct r;
            cv_detected = pct (r.detected + r.hang + r.no_output) r.n;
            cv_benign = pct r.benign r.n;
          })
        domains)
    variants

let header = [ "variant"; "domain"; "n"; "sdc%"; "detected%"; "benign%" ]

let to_cells r =
  [
    r.cv_variant;
    Core.Domain.to_string r.cv_domain;
    string_of_int r.cv_n;
    Printf.sprintf "%.1f" r.cv_sdc;
    Printf.sprintf "%.1f" r.cv_detected;
    Printf.sprintf "%.1f" r.cv_benign;
  ]
