type t = {
  outcome : Outcome.t;
  activated : int;
  first : Injector.injection option;
  dyn_count : int;
  output : string;
}

let m_experiments = Obs.Metrics.counter "onebit_injector_experiments_total"
let m_activations = Obs.Metrics.counter "onebit_injector_activations_total"

let run_raw (workload : Workload.t) inj =
  match Config.active_backend () with
  | Config.Seed ->
      Vm.Exec.run
        ~hooks:(Injector.hooks inj)
        ~budget:workload.budget workload.prog
  | Config.Compiled ->
      Vm.Code.run
        ~events:(Injector.events inj)
        ~budget:workload.budget workload.code

let run_inj workload (spec : Spec.t) inj =
  let res = run_raw workload inj in
  ignore spec;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_experiments;
    Obs.Metrics.add m_activations (Injector.activated inj)
  end;
  {
    outcome = Outcome.classify ~golden_output:workload.golden.output res;
    activated = Injector.activated inj;
    first = Injector.first_injection inj;
    dyn_count = res.dyn_count;
    output = res.output;
  }

let run ?spacing workload spec rng =
  let candidates = Workload.candidates workload spec.Spec.technique in
  let inj = Injector.create ~spec ~candidates ?spacing rng in
  run_inj workload spec inj

let run_at workload spec ~first rng =
  let candidates = Workload.candidates workload spec.Spec.technique in
  let inj = Injector.create ~spec ~candidates ~first rng in
  run_inj workload spec inj
