type t = {
  outcome : Outcome.t;
  activated : int;
  first : Injector.injection option;
  dyn_count : int;
  output : string;
}

let m_experiments = Obs.Metrics.counter "onebit_injector_experiments_total"
let m_activations = Obs.Metrics.counter "onebit_injector_activations_total"

(* Compiled-backend run with golden-prefix checkpoint reuse: restore the
   nearest checkpoint at-or-before the first flip's candidate ordinal
   (known at injector creation) and execute only the suffix.  Even when
   no checkpoint precedes the target, the per-domain undo-tracking
   working memory replaces the per-experiment arena clone — reset costs
   O(dirty pages).  Results are bit-identical to full execution: the
   prefix fires no events and consumes no injector randomness. *)
let run_checkpointed (workload : Workload.t) inj ev set =
  let mem =
    Vm.Checkpoint.working_mem ~digest:workload.Workload.digest
      workload.prog.Vm.Program.mem_template
  in
  let point =
    match (set, Injector.first_target inj) with
    | Some set, Some target ->
        Vm.Checkpoint.select set ~axis:ev.Vm.Code.watch ~target
    | _ -> None
  in
  match point with
  | Some p ->
      Vm.Code.resume ~events:ev ~mem ~point:p ~budget:workload.budget
        workload.code
  | None ->
      Vm.Memory.reset mem;
      Vm.Code.run ~events:ev ~mem ~budget:workload.budget workload.code

let run_raw ?(checkpoint = true) (workload : Workload.t) inj =
  match Config.active_backend () with
  | Config.Seed ->
      Vm.Exec.run
        ~hooks:(Injector.hooks inj)
        ~budget:workload.budget workload.prog
  | Config.Compiled ->
      let ev = Injector.events inj in
      if checkpoint && Config.checkpointing () then
        run_checkpointed workload inj ev (Workload.ensure_checkpoints workload)
      else Vm.Code.run ~events:ev ~budget:workload.budget workload.code

let run_inj workload inj =
  let res = run_raw workload inj in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_experiments;
    Obs.Metrics.add m_activations (Injector.activated inj)
  end;
  {
    outcome = Outcome.classify ~golden_output:workload.Workload.golden.output res;
    activated = Injector.activated inj;
    first = Injector.first_injection inj;
    dyn_count = res.dyn_count;
    output = res.output;
  }

let run ?spacing workload spec rng =
  let candidates = Workload.candidates workload spec.Spec.technique in
  let inj = Injector.create ~spec ~candidates ?spacing rng in
  run_inj workload inj

let run_at workload spec ~first rng =
  let candidates = Workload.candidates workload spec.Spec.technique in
  let inj = Injector.create ~spec ~candidates ~first rng in
  run_inj workload inj
