type t = {
  outcome : Outcome.t;
  activated : int;
  first : Injector.injection option;
  dyn_count : int;
  output : string;
}

let m_experiments = Obs.Metrics.counter "onebit_injector_experiments_total"
let m_activations = Obs.Metrics.counter "onebit_injector_activations_total"

(* Per-domain experiment counters, dense over Domain.all so the metrics
   smoke can assert every series exists. *)
let m_domain =
  Array.of_list
    (List.map
       (fun d ->
         Obs.Metrics.counter
           ~labels:[ ("domain", Domain.to_string d) ]
           "onebit_inj_domain_total")
       Domain.all)

(* Compiled-backend run with golden-prefix checkpoint reuse: restore the
   nearest checkpoint at-or-before the first flip's target — candidate
   ordinal (Reg) or dynamic index (Mem/Code), i.e. the event schedule's
   watch axis — and execute only the suffix.  Even when no checkpoint
   precedes the target, the per-domain undo-tracking working memory
   replaces the per-experiment arena clone — reset costs O(dirty pages).
   Results are bit-identical to full execution: the prefix fires no
   events and consumes no injector randomness.  [code] is the code to
   execute — the workload's pristine code, or the Code domain's private
   fork (same structure, so restored frames line up). *)
let run_checkpointed (workload : Workload.t) inj ev code set =
  let mem =
    Vm.Checkpoint.working_mem ~digest:workload.Workload.digest
      workload.prog.Vm.Program.mem_template
  in
  (* Mem flips land in the working memory; they dirty their page, so the
     next experiment's reset/restore undoes them like any store. *)
  (match Injector.domain inj with
  | Domain.Mem -> Injector.bind_mem inj ~addrs:workload.Workload.mem_addrs ~mem
  | Domain.Reg | Domain.Code -> ());
  let point =
    match (set, Injector.first_target inj) with
    | Some set, Some target ->
        Vm.Checkpoint.select set ~axis:ev.Vm.Code.watch ~target
    | _ -> None
  in
  match point with
  | Some p ->
      Vm.Code.resume ~events:ev ~mem ~point:p ~orig:workload.Workload.code
        ~budget:workload.budget code
  | None ->
      Vm.Memory.reset mem;
      Vm.Code.run ~events:ev ~mem ~budget:workload.budget code

let run_raw ?(checkpoint = true) (workload : Workload.t) inj =
  match Config.active_backend () with
  | Config.Seed -> (
      let hooks = Injector.hooks inj in
      match Injector.domain inj with
      | Domain.Reg ->
          Vm.Exec.run ~hooks ~budget:workload.budget workload.prog
      | Domain.Mem ->
          let mem = Vm.Memory.clone workload.prog.Vm.Program.mem_template in
          Injector.bind_mem inj ~addrs:workload.Workload.mem_addrs ~mem;
          Vm.Exec.run ~hooks ~mem ~budget:workload.budget workload.prog
      | Domain.Code ->
          (* The interpreter executes the injector's private image
             directly: a flip mutates the image's instruction arrays in
             place and is visible from the next fetch. *)
          let image = Vm.Codeflip.image workload.prog in
          Injector.bind_code inj ~sites:workload.Workload.code_sites ~image ();
          Vm.Exec.run ~hooks ~budget:workload.budget image)
  | Config.Compiled -> (
      let ev = Injector.events inj in
      let code =
        match Injector.domain inj with
        | Domain.Code ->
            (* Mutated experiments run on a throwaway fork; each image
               flip is mirrored as a micro-op patch — the decode-cache
               invalidation.  The digest-keyed cache only ever holds
               pristine code. *)
            let image = Vm.Codeflip.image workload.prog in
            let fork = Vm.Code.fork workload.code in
            Injector.bind_code inj ~sites:workload.Workload.code_sites ~image
              ~apply:(fun ~fidx ~bidx ~idx p ->
                Vm.Code.patch fork ~fidx ~bidx ~idx p)
              ();
            fork
        | Domain.Reg | Domain.Mem -> workload.code
      in
      if checkpoint && Config.checkpointing () then
        run_checkpointed workload inj ev code
          (Workload.ensure_checkpoints workload)
      else
        match Injector.domain inj with
        | Domain.Mem ->
            let mem = Vm.Memory.clone workload.prog.Vm.Program.mem_template in
            Injector.bind_mem inj ~addrs:workload.Workload.mem_addrs ~mem;
            Vm.Code.run ~events:ev ~mem ~budget:workload.budget code
        | Domain.Reg | Domain.Code ->
            Vm.Code.run ~events:ev ~budget:workload.budget code)

(* Classification + bookkeeping shared by the one-at-a-time path below
   and the batched scheduler ([Batch]): both must count and classify
   identically for results and metrics to be byte-identical across the
   batch switch. *)
let conclude (workload : Workload.t) inj (res : Vm.Exec.result) =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_experiments;
    Obs.Metrics.add m_activations (Injector.activated inj);
    Obs.Metrics.incr m_domain.(Domain.index (Injector.domain inj))
  end;
  {
    outcome = Outcome.classify ~golden_output:workload.Workload.golden.output res;
    activated = Injector.activated inj;
    first = Injector.first_injection inj;
    dyn_count = res.dyn_count;
    output = res.output;
  }

let run_inj workload inj = conclude workload inj (run_raw workload inj)

let run ?spacing workload spec rng =
  let candidates = Workload.candidates workload spec in
  let inj = Injector.create ~spec ~candidates ?spacing rng in
  run_inj workload inj

let run_at workload spec ~first rng =
  let candidates = Workload.candidates workload spec in
  let inj = Injector.create ~spec ~candidates ~first rng in
  run_inj workload inj
