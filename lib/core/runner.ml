type stats = {
  mutable mem_hits : int;
  mutable dispatched : int;
  mutable store_shard_hits : int;
  mutable shards_executed : int;
}

type dispatch =
  stats ->
  keep_experiments:bool ->
  Workload.t -> Spec.t -> n:int -> seed:int64 -> Campaign.result

type t = {
  n : int;
  seed : int64;
  cache : (string, Campaign.result) Hashtbl.t;
  dispatch : dispatch;
  stats : stats;
}

let sequential : dispatch =
 fun _stats ~keep_experiments workload spec ~n ~seed ->
  Campaign.run ~keep_experiments workload spec ~n ~seed

let create ?(n = 200) ?(seed = 20170626L) ?(dispatch = sequential) () =
  {
    n;
    seed;
    cache = Hashtbl.create 512;
    dispatch;
    stats =
      { mem_hits = 0; dispatched = 0; store_shard_hits = 0; shards_executed = 0 };
  }

let n t = t.n

let derived_seed t workload_name spec =
  (* Stable, collision-resistant enough for seeding: hash the identifying
     string into the base seed. *)
  let s = workload_name ^ "|" ^ Spec.label spec in
  let h = ref t.seed in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let run_key kept workload_name spec n =
  Printf.sprintf "%s|%s|%d|%b" workload_name (Spec.label spec) n kept

let get t ~kept workload spec =
  let key = run_key kept workload.Workload.name spec t.n in
  match Hashtbl.find_opt t.cache key with
  | Some r ->
      t.stats.mem_hits <- t.stats.mem_hits + 1;
      Obs.Snapshot.count { Obs.Snapshot.zero with mem_hits = 1 };
      r
  | None ->
      t.stats.dispatched <- t.stats.dispatched + 1;
      Obs.Snapshot.count { Obs.Snapshot.zero with dispatched = 1 };
      let seed = derived_seed t workload.Workload.name spec in
      let r =
        let dispatch () =
          t.dispatch t.stats ~keep_experiments:kept workload spec ~n:t.n ~seed
        in
        if Obs.Trace.enabled () then
          Obs.Trace.with_span ("dispatch " ^ key) dispatch
        else dispatch ()
      in
      Hashtbl.replace t.cache key r;
      r

let campaign t workload spec = get t ~kept:false workload spec
let campaign_kept t workload spec = get t ~kept:true workload spec
let cache_size t = Hashtbl.length t.cache
let cache_stats t = t.stats

let snapshot_of_stats s =
  {
    Obs.Snapshot.zero with
    mem_hits = s.mem_hits;
    dispatched = s.dispatched;
    shards_from_store = s.store_shard_hits;
    shards_executed = s.shards_executed;
  }

let snapshot t = snapshot_of_stats t.stats
let pp_stats s = Obs.Snapshot.pp (snapshot_of_stats s)
