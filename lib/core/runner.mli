(** Memoising campaign runner.

    The analyses reuse many campaigns (the Fig. 4/5 grids feed Table III,
    whose best configurations feed Table IV), so the runner caches results
    keyed by (workload, spec, n, seed).  Results are deterministic, which
    makes the cache semantically transparent.

    The runner itself is a thin client: campaigns it has not memoised are
    delegated to a {!dispatch} function.  The default dispatch runs the
    campaign sequentially in-process; [Engine.dispatch] substitutes a
    parallel, store-backed execution engine without the analyses having to
    change. *)

type t

type stats = {
  mutable mem_hits : int;  (** campaigns answered from the in-memory cache *)
  mutable dispatched : int;  (** campaigns handed to the dispatch function *)
  mutable store_shard_hits : int;
      (** shards answered by a durable result store (engine dispatch only) *)
  mutable shards_executed : int;
      (** shards actually executed (engine dispatch only) *)
}
(** Legacy mutable per-runner accounting.  The fields remain writable
    because engine dispatches fill them in, but readers should prefer
    {!snapshot}, the unified [Obs.Snapshot.t] view shared with the
    engine; the same totals also appear in a metrics dump as the
    [onebit_runner_*_total] counters. *)

type dispatch =
  stats ->
  keep_experiments:bool ->
  Workload.t -> Spec.t -> n:int -> seed:int64 -> Campaign.result
(** How a cache miss is computed.  The dispatch receives the runner's
    {!stats} record so an engine can account store hits and executed
    shards where the caller can see them. *)

val sequential : dispatch
(** The default: a plain in-process {!Campaign.run}. *)

val create : ?n:int -> ?seed:int64 -> ?dispatch:dispatch -> unit -> t
(** Default experiment count per campaign and base seed (defaults: 200
    experiments, seed 20170626 — the DSN'17 conference date).  The seed of
    a given campaign is derived from the base seed, the workload name and
    the spec label, so distinct campaigns never share experiment streams. *)

val n : t -> int

val campaign : t -> Workload.t -> Spec.t -> Campaign.result
(** Run (or recall) one campaign. *)

val campaign_kept : t -> Workload.t -> Spec.t -> Campaign.result
(** Like {!campaign} but with per-experiment records retained; cached
    separately, and never answered from a durable store (experiment
    records are not persisted). *)

val cache_size : t -> int

val cache_stats : t -> stats
(** The live counters (not a copy): hits and misses of the in-memory
    cache, plus store/shard accounting filled in by engine dispatches. *)

val snapshot : t -> Obs.Snapshot.t
(** The runner's accounting as the unified snapshot value (the same
    shape the engine reports); experiment totals are zero because the
    runner counts whole campaigns, not experiments. *)

val pp_stats : stats -> string
(** One-line human-readable rendering of {!cache_stats}.  Alias for
    [Obs.Snapshot.pp] over the converted record. *)
