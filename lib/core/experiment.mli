(** One fault-injection experiment: a single faulty run of a workload. *)

type t = {
  outcome : Outcome.t;
  activated : int;  (** flips actually performed (RQ1) *)
  first : Injector.injection option;
      (** the first injection, or [None] if even it was never reached
          (cannot happen for the first injection by construction, but kept
          total for robustness) *)
  dyn_count : int;  (** dynamic length of the faulty run *)
  output : string;  (** the faulty run's output stream *)
}

val run_raw : ?checkpoint:bool -> Workload.t -> Injector.t -> Vm.Exec.result
(** Execute one faulty run of the workload under an injector, on the
    active backend ({!Config.active_backend}): seed interpreter with
    {!Injector.hooks}, or compiled pipeline with {!Injector.events}.
    Building block for {!run}/{!run_at} and the CLI's replay commands.

    Handles the injector's domain binding: [Reg] runs the pristine
    program; [Mem] binds a run-private memory (a template clone, or the
    checkpoint working memory); [Code] binds a private program image —
    executed directly by the interpreter, mirrored into a
    {!Vm.Code.fork} via {!Vm.Code.patch} on the compiled backend.  Both
    backends stay bit-identical in every domain.

    On the compiled backend, when [checkpoint] (default [true]) and
    {!Config.checkpointing} are both set, the golden prefix up to the
    first flip is restored from the workload's checkpoint set instead of
    re-executed, and the run reuses the calling domain's undo-tracking
    working memory — bit-identical results, O(dirty-page) reset.  Pass
    [~checkpoint:false] to force full execution ([onebit reproduce]
    does, so a replay re-runs every instruction it reports). *)

val conclude : Workload.t -> Injector.t -> Vm.Exec.result -> t
(** Classify a finished faulty run against the workload's golden output
    and package it with the injector's activation record, bumping the
    experiment/activation/domain metrics.  Shared by {!run}'s
    one-at-a-time path and the batched scheduler ({!Batch}) so both
    count and classify identically. *)

val run :
  ?spacing:[ `Faulty | `Golden ] -> Workload.t -> Spec.t -> Prng.t -> t
(** Run one experiment with a private generator ([?spacing] as in
    {!Injector.create}). *)

val run_at : Workload.t -> Spec.t -> first:int * int * int -> Prng.t -> t
(** Like {!run} but forcing the first injection's (candidate ordinal,
    slot, bit) — the RQ5 location-replay mode. *)
