(* Checkpoint-tree suffix batching.

   Checkpointing (PR 5) made the golden prefix of every experiment free;
   this scheduler makes the suffix cheap too.  An experiment's first-flip
   time is drawn at injector creation ([Injector.first_target]), so its
   restore point ([Checkpoint.select]) is known before anything runs.
   Instead of one full page-restore per experiment, a shard's experiments
   are sorted by restore point into a single event queue, consecutive
   experiments sharing a point form a group, and each group pays one full
   restore ([Memory.set_baseline]); members rewind between runs with an
   O(dirty) baseline reset ([Memory.reset_to_baseline]).

   Determinism argument: each experiment's result is a pure function of
   its injector (seeded by [Prng.split_at base index], independent of
   every other experiment) and the memory image at its start of
   execution.  [reset_to_baseline] leaves the arena byte-for-byte as
   [restore_pages] with the group's snapshot would, and the decoded code
   is immutable (Code-domain members run private forks), so each member
   observes exactly the state the one-at-a-time path would.  Results are
   collected into a position-indexed array and folded in original index
   order, making campaign results, injection logs, CSV and store records
   byte-identical with batching on or off. *)

let m_groups = Obs.Metrics.counter "onebit_batch_groups_total"
let m_members = Obs.Metrics.counter "onebit_batch_experiments_total"

let m_group_size =
  Obs.Metrics.histogram ~buckets:Obs.Metrics.count_buckets
    "onebit_batch_group_size"

(* Plain atomics so tests and the bench harness see group formation even
   with metrics collection disabled. *)
let groups_total = Atomic.make 0
let members_total = Atomic.make 0
let stats () = (Atomic.get groups_total, Atomic.get members_total)

(* One planned experiment.  Only the restore point survives planning:
   the injector created to learn [first_target] is dropped (it dies in
   the minor heap) and an identical one is re-created at run time from
   the same private generator — [Injector.create] is a fraction of a
   microsecond, while keeping ~shard-size injectors live across the
   planning/run boundary measurably promotes them all to the major
   heap. *)
type plan = {
  index : int;  (* campaign experiment index *)
  point : Vm.Checkpoint.point option;
  ord : int;  (* point's ck_dyn, or -1 for "no checkpoint precedes" *)
}

(* The checkpoint-selection axis is a function of the spec alone —
   candidate ordinals of the technique for Reg, raw dynamic indices for
   Mem/Code — so planning need not build the event schedule to know it
   (it must match [Injector.events]'s watch field, which the compiled
   loop drives). *)
let axis_of (spec : Spec.t) =
  match spec.Spec.domain with
  | Domain.Reg -> (
      match spec.technique with
      | Technique.Read -> `Read
      | Technique.Write -> `Write)
  | Domain.Mem | Domain.Code -> `Dyn

let run_one (w : Workload.t) mem p inj ev =
  (* Per-member setup mirrors [Experiment.run_raw]'s compiled checkpoint
     path: domain bindings first, then run.  The memory has already been
     positioned at the group's restore image (or template state for the
     ord = -1 group) by the group driver. *)
  let code =
    match Injector.domain inj with
    | Domain.Code ->
        let image = Vm.Codeflip.image w.Workload.prog in
        let fork = Vm.Code.fork w.Workload.code in
        Injector.bind_code inj ~sites:w.Workload.code_sites ~image
          ~apply:(fun ~fidx ~bidx ~idx patch ->
            Vm.Code.patch fork ~fidx ~bidx ~idx patch)
          ();
        fork
    | Domain.Reg | Domain.Mem -> w.Workload.code
  in
  (match Injector.domain inj with
  | Domain.Mem -> Injector.bind_mem inj ~addrs:w.Workload.mem_addrs ~mem
  | Domain.Reg | Domain.Code -> ());
  match p.point with
  | Some point ->
      Vm.Code.resume_prepared ~events:ev ~mem ~point ~orig:w.Workload.code
        ~budget:w.Workload.budget code
  | None -> Vm.Code.run ~events:ev ~mem ~budget:w.Workload.budget code

let run_plans ?spacing (w : Workload.t) spec ~seed plans out conclude =
  let n = Array.length plans in
  let base = Prng.of_seed seed in
  let candidates = Workload.candidates w spec in
  let mem =
    Vm.Checkpoint.working_mem ~digest:w.Workload.digest
      w.Workload.prog.Vm.Program.mem_template
  in
  (* The sorted event queue: experiments ordered by restore point (the
     ord = -1 "run from the top" pseudo-group first), original index as
     the tie-break so equal-point members keep a deterministic order. *)
  let perm = Array.init n (fun k -> k) in
  Array.sort
    (fun a b ->
      let c = compare plans.(a).ord plans.(b).ord in
      if c <> 0 then c else compare a b)
    perm;
  let cur_size = ref 0 in
  let group_ord = ref min_int in
  let flush () =
    let size = !cur_size in
    if size > 0 then begin
      Atomic.incr groups_total;
      ignore (Atomic.fetch_and_add members_total size);
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_groups;
        Obs.Metrics.add m_members size;
        Obs.Metrics.observe m_group_size (float_of_int size)
      end
    end;
    cur_size := 0
  in
  Array.iter
    (fun k ->
      let p = plans.(k) in
      (match p.point with
      | None ->
          (* No checkpoint precedes the target: full execution from a
             template-state memory (the legacy fallback); nothing is
             shared, so each such member is its own group of one. *)
          flush ();
          Vm.Memory.reset mem
      | Some point ->
          if p.ord = !group_ord then
            (* Same group: O(dirty) rewind to the shared restore image. *)
            Vm.Memory.reset_to_baseline mem
          else begin
            (* New group: one full restore, remembered as the baseline.
               Sorting makes ords non-decreasing, so a point ordinal
               never recurs after its group has been flushed. *)
            flush ();
            group_ord := p.ord;
            Vm.Memory.set_baseline mem point.Vm.Checkpoint.ck_pages
          end);
      incr cur_size;
      (* Re-create the member's injector exactly as planning (and the
         one-at-a-time path) did: same private generator, same single
         first-flip draw, so the run is bit-identical. *)
      let inj =
        Injector.create ~spec ~candidates ?spacing (Prng.split_at base p.index)
      in
      let ev = Injector.events inj in
      out.(k) <- Some (conclude w inj (run_one w mem p inj ev)))
    perm;
  flush ();
  (* Leave the working memory in template state with the overlay dropped,
     as the one-at-a-time path's next [reset]/[restore_pages] expects. *)
  if n > 0 then Vm.Memory.reset mem

let plan_indices ?spacing (w : Workload.t) spec ~seed ~indices =
  if
    Config.active_backend () <> Config.Compiled
    || (not (Config.checkpointing ()))
    || not (Config.batching ())
  then None
  else
    match Workload.ensure_checkpoints w with
    | None -> None
    | Some set ->
        let base = Prng.of_seed seed in
        let candidates = Workload.candidates w spec in
        let axis = axis_of spec in
        Some
          (Array.map
             (fun i ->
               if i < 0 then invalid_arg "Batch: negative experiment index";
               let rng = Prng.split_at base i in
               let inj = Injector.create ~spec ~candidates ?spacing rng in
               let point =
                 match Injector.first_target inj with
                 | Some target -> Vm.Checkpoint.select set ~axis ~target
                 | None -> None
               in
               let ord =
                 match point with
                 | Some p -> p.Vm.Checkpoint.ck_dyn
                 | None -> -1
               in
               { index = i; point; ord })
             indices)

let run_with ?spacing w spec ~seed ~indices conclude =
  match plan_indices ?spacing w spec ~seed ~indices with
  | None -> None
  | Some plans ->
      let out = Array.make (Array.length plans) None in
      run_plans ?spacing w spec ~seed plans out conclude;
      Some
        (Array.map (function Some e -> e | None -> assert false) out)

let run_indices ?spacing w spec ~seed ~indices =
  run_with ?spacing w spec ~seed ~indices Experiment.conclude

let run_indices_logged ?spacing w spec ~seed ~indices =
  run_with ?spacing w spec ~seed ~indices (fun w inj res ->
      (Experiment.conclude w inj res, Injector.injections inj))
