let header =
  "workload,technique,max_mbf,win_size,n,benign,detected,hang,no_output,sdc,sdc_pct,sdc_ci95"

(* Non-register domains prefix the technique column ("mem:inject-on-read");
   register-domain rows keep the bare technique, byte-identical to CSVs
   written before fault domains existed. *)
let technique_cell (spec : Spec.t) =
  match spec.domain with
  | Domain.Reg -> Technique.to_string spec.technique
  | d -> Domain.to_string d ^ ":" ^ Technique.to_string spec.technique

let row (r : Campaign.result) =
  let ci = Campaign.sdc_ci r in
  Printf.sprintf "%s,%s,%d,%s,%d,%d,%d,%d,%d,%d,%.4f,%.4f" r.workload_name
    (technique_cell r.spec) r.spec.max_mbf
    (Win.to_string r.spec.win)
    r.n r.benign r.detected r.hang r.no_output r.sdc (Campaign.sdc_pct r)
    (100. *. Stats.Proportion.half_width ci)

let write oc results =
  output_string oc header;
  output_char oc '\n';
  List.iter
    (fun r ->
      output_string oc (row r);
      output_char oc '\n')
    results
