(** Checkpoint-tree suffix batching: plan-then-run experiment groups.

    An experiment's first-flip time is drawn at injector creation
    ({!Injector.first_target}), so its golden-prefix restore point
    ({!Vm.Checkpoint.select}) is known before anything runs.  The
    planner sorts a shard's experiments by restore point into a single
    event queue; consecutive experiments sharing a point form a group
    that pays {e one} full page-restore ({!Vm.Memory.set_baseline}),
    with O(dirty-page) baseline resets between members
    ({!Vm.Memory.reset_to_baseline}).  Decoded micro-ops are shared by
    construction (the digest-keyed decode cache); Code-domain members
    still run private forks.

    Results are byte-identical to the one-at-a-time path: each
    experiment is a pure function of its private generator
    ([Prng.split_at seed index]) and the memory image at its start,
    and both paths produce exactly the selected point's image.  The
    batch differential suite and the CI batching smoke enforce this. *)

val run_indices :
  ?spacing:[ `Faulty | `Golden ] ->
  Workload.t ->
  Spec.t ->
  seed:int64 ->
  indices:int array ->
  Experiment.t array option
(** Run the experiments with the given campaign indices as checkpoint
    groups, returning results positionally (result [k] is experiment
    [indices.(k)], regardless of execution order).  [None] when batching
    does not apply — seed backend, checkpointing or batching disabled
    ({!Config.batching}), or no checkpoint set for this workload — in
    which case the caller falls back to {!Experiment.run} per index,
    which is bit-identical. *)

val run_indices_logged :
  ?spacing:[ `Faulty | `Golden ] ->
  Workload.t ->
  Spec.t ->
  seed:int64 ->
  indices:int array ->
  (Experiment.t * Injector.injection list) array option
(** {!run_indices} but also returning each experiment's full injection
    log — the batch differential suite compares these field-for-field
    against unbatched runs. *)

val stats : unit -> int * int
(** [(groups, batched experiments)] since process start; counted even
    when metrics collection is disabled.  Obs mirrors:
    [onebit_batch_groups_total], [onebit_batch_experiments_total] and
    the [onebit_batch_group_size] histogram. *)
