(** A workload: a loaded program plus its fault-free (golden) run.

    The golden run provides the reference output for SDC detection, the
    candidate counts the injector samples time-location pairs from
    (Table II), and the dynamic instruction count the watchdog budget is
    derived from. *)

type t = {
  name : string;
  modl : Ir.Func.modl;
      (** the source module the workload was made from; retained so the
          incremental scheduler can compute per-function fingerprints
          ([Ir.Fingerprint]) and propagation summaries *)
  prog : Vm.Program.t;
  code : Vm.Code.t;
      (** the program's compiled form, decoded once at workload creation
          (digest-keyed, so repeated loads of the same IR share it) and
          used by the [Compiled] backend ({!Config.active_backend}) *)
  golden : Vm.Exec.result;
  profile : int array array;
      (** golden-run execution count of each (function, block), indexed
          [fidx].[bidx]; feeds the static candidate predictor
          ([Dataflow.Candidates]) and the pruning study *)
  budget : int;  (** watchdog budget for faulty runs *)
  digest : string;
      (** md5 hex digest of the printed IR; campaign results are only
          reusable across processes when the program text is unchanged, so
          the digest is part of every result-store key *)
  mem_addrs : int array;
      (** mapped arena addresses of the memory template, in address
          order — the [Mem] fault domain's location space *)
  code_sites : Vm.Codeflip.sites;
      (** the program's static instruction-field table — the [Code]
          fault domain's location space *)
}

val make : ?hang_factor:int -> ?expected_output:string -> name:string ->
  Ir.Func.modl -> t
(** Load the module, execute the golden run and derive the budget
    ([hang_factor] x golden dynamic count, default 10 — one order of
    magnitude, as LLFI's watchdog).

    @raise Invalid_argument if the golden run does not finish normally, or
    if [expected_output] is given and differs from the golden output. *)

val candidates : t -> Spec.t -> int
(** The spec's time-axis size: the number of dynamic injection
    candidates for its technique ([Reg] domain), or the golden dynamic
    instruction count ([Mem]/[Code] — their flips land between dynamic
    instructions). *)

val ensure_checkpoints : t -> Vm.Checkpoint.set option
(** The workload's golden-prefix checkpoint set ({!Vm.Checkpoint}),
    recording it on first use — one instrumented golden run per digest,
    process-wide, shared across engine domains.  [None] when
    checkpointing is disabled ({!Config.checkpointing}) or the active
    backend is the seed interpreter.  Cheap after the first call
    (lock-free cache lookup), so callers may invoke it per experiment;
    the engine calls it once up front so worker domains never contend on
    the recording lock. *)
