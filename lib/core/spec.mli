(** A fault-model specification: one error cluster of the study.

    The paper clusters the multiple-bit error space by (max-MBF, win-size);
    together with the technique and the fault {!Domain} this identifies a
    campaign's fault model.  [max_mbf = 1] is the single bit-flip model
    (win-size is irrelevant and normalised to [Fixed 0]).

    For the [Mem] and [Code] domains the injection time axis is the
    dynamic-instruction index rather than read/write candidates, so the
    [technique] field is ignored at runtime there (it stays in the record
    so specs keep a total order and stable serialisation). *)

type t = {
  technique : Technique.t;
  max_mbf : int;
  win : Win.t;
  domain : Domain.t;  (** where flips land; [Reg] is the paper's model *)
}

val single : ?domain:Domain.t -> Technique.t -> t
(** [domain] defaults to [Reg] — existing call sites are unchanged. *)

val multi : ?domain:Domain.t -> Technique.t -> max_mbf:int -> win:Win.t -> t
(** @raise Invalid_argument if [max_mbf < 2]. *)

val is_single : t -> bool

val label : t -> string
(** e.g. ["read/m=3/w=RND(2-10)"]; non-register domains lead with the
    domain instead of the technique (["mem/single"], ["code/m=3/w=0"]),
    so register-domain labels are byte-identical to pre-domain ones. *)

val equal : t -> t -> bool
