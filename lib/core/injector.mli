(** The bit-flip injector: LLFI's time-location model extended to
    multiple bit-flips (§III-C) and to pluggable fault domains.

    One injector instance drives one experiment.  The state machine —
    when flips happen — is domain-independent: the {e first} injection's
    time is drawn uniformly over the domain's candidate space at
    creation, and subsequent injections are placed in the {e faulty}
    execution ([w > 0]: the next flip hits the first event at dynamic
    index [>= d + w]; [w = 0]: all [max-MBF] flips land at once on the
    same target, capped by its width).  A flip only counts as
    {e activated} if its event is actually reached, which is how crashes
    truncate multi-bit injections (RQ1).

    What differs per {!Domain.t} is the location sampler and effector:

    - [Reg] — the paper's model.  Time is a candidate ordinal of the
      spec's technique (inject-on-read / inject-on-write); location is a
      uniform register operand slot and a uniform bit of that register's
      live value.
    - [Mem] — time is a raw dynamic-instruction index; location is a
      uniform bit of a uniform mapped arena byte, flipped between
      dynamic instructions.  Requires {!bind_mem}.
    - [Code] — time is a dynamic-instruction index; location is a
      uniform bit of the program's encoded-instruction field space
      ({!Vm.Codeflip}), mutating the stored program from that point on.
      An undecodable flip raises {!Vm.Trap.Trap}[ Ill_instr] out of the
      run.  Requires {!bind_code}.

    The Mem/Code techniques carry no read/write distinction — the
    spec's technique is ignored at runtime for those domains. *)

type injection = {
  inj_domain : Domain.t;  (** domain that performed this flip *)
  inj_dyn : int;  (** dynamic index of the targeted event *)
  inj_cand : int;
      (** first injection only (else -1): the candidate ordinal (Reg) or
          the scheduled dynamic index (Mem/Code) *)
  inj_loc : int;
      (** flipped location: register (Reg), arena byte address (Mem), or
          site ordinal (Code) *)
  inj_ty : Ir.Ty.t;
      (** the flipped value's type: the register's type (Reg, Ptr =
          address), [I8] (Mem), [I64] (Code — an encoded word) *)
  inj_slot : int;  (** operand slot (Reg read), -1 otherwise *)
  inj_bit : int;
      (** bit flipped: within the register (Reg), the byte (Mem), or the
          site's field space (Code) *)
  inj_weight : int;
      (** size of the injection's pre-injection equivalence class: for
          inject-on-read, the dynamic distance since the register was
          last written (Barbosa et al.'s weight, §III-A1 of the paper);
          1 for inject-on-write and for the Mem/Code domains *)
}

type t

val create :
  spec:Spec.t ->
  candidates:int ->
  ?spacing:[ `Faulty | `Golden ] ->
  ?first:int * int * int ->
  Prng.t ->
  t
(** [create ~spec ~candidates rng] prepares an injector; [candidates] is
    the domain's time-axis size — the golden candidate count for
    [spec.technique] (Reg) or the golden dynamic instruction count
    (Mem/Code, see {!Workload.candidates}).  [?first] forces the first
    injection's (time target, slot, bit) — used by the
    location-sensitivity study (RQ5) to replay a single-bit location
    under a multi-bit model; for Mem/Code the slot is ignored and the
    bit (byte bit / global field-space ordinal) is honoured when in
    range.  Requires [candidates > 0].

    A [Mem]/[Code] injector must be bound ({!bind_mem} / {!bind_code})
    before its hooks or events run. *)

val domain : t -> Domain.t

val bind_mem : t -> addrs:int array -> mem:Vm.Memory.t -> unit
(** Attach the Mem-domain target: the mapped-address table (static per
    workload, {!Vm.Memory.mapped_addrs} of the template) and the live
    memory this run executes against.  Re-bind per run — the memory is
    run-private (a clone or the checkpoint working memory; flips mark
    pages dirty, so page-restore undoes them). *)

val bind_code :
  t ->
  sites:Vm.Codeflip.sites ->
  image:Vm.Program.t ->
  ?apply:(fidx:int -> bidx:int -> idx:int -> Vm.Codeflip.patch -> unit) ->
  unit ->
  unit
(** Attach the Code-domain target: the site table (static per workload)
    and this run's private program image.  The seed backend executes the
    image directly; the compiled backend additionally passes [apply]
    (typically {!Vm.Code.patch} on a {!Vm.Code.fork}) to mirror each
    flip into the decoded micro-ops — its decode-cache invalidation. *)

val hooks : t -> Vm.Exec.hooks
(** VM hooks implementing the injection state machine (seed backend):
    [pre]/[post] for Reg, the [at] dynamic-stream hook for Mem/Code. *)

val events : t -> Vm.Code.events
(** The same state machine as a run-until-event schedule for the
    compiled backend ({!Vm.Code.run}): yields the next target candidate
    ordinal or dynamic index.  PRNG draws happen in the same order as
    under {!hooks}, so the two backends produce bit-identical
    injections.  Use an injector instance with exactly one of
    [hooks]/[events]. *)

val first_target : t -> int option
(** The first flip's scheduled time target, drawn (or forced) at
    {!create} — [Some] until the first flip fires.  A candidate ordinal
    for Reg, a dynamic index for Mem/Code (the checkpoint axes [`Read] /
    [`Write] / [`Dyn]).  Execution is fault-free and consumes no
    injector randomness before that point, which is what lets
    {!Experiment} resume from a golden-prefix checkpoint at-or-before it
    ({!Vm.Checkpoint}). *)

val activated : t -> int
(** Number of flips actually performed so far. *)

val injections : t -> injection list
(** All performed injections, in order. *)

val first_injection : t -> injection option
