(** The bit-flip injector: LLFI's time-location model extended to multiple
    bit-flips (§III-C).

    One injector instance drives one experiment.  The {e first} injection
    is a time-location pair drawn over the golden run's candidate set: a
    uniform candidate ordinal, a uniform register operand slot of that
    instruction, and a uniform bit of that register.  Because execution is
    deterministic up to the first flip, the ordinal computed against the
    golden run is reached exactly in the faulty run.

    Subsequent injections are placed in the {e faulty} execution: after an
    injection at dynamic index [d] with window [w > 0], the next flip hits
    the first candidate instruction at dynamic index [>= d + w].  With
    [w = 0] all [max-MBF] flips target distinct bits of the same register
    operand at the same dynamic instruction (capped by the register width).
    A flip only counts as {e activated} if its instruction is actually
    reached, which is how crashes truncate multi-bit injections (RQ1). *)

type injection = {
  inj_dyn : int;  (** dynamic index of the targeted instruction *)
  inj_cand : int;  (** candidate ordinal (first injection only, else -1) *)
  inj_reg : int;  (** register flipped *)
  inj_ty : Ir.Ty.t;  (** the flipped register's type (Ptr = address) *)
  inj_slot : int;  (** operand slot (read) or -1 (write: destination) *)
  inj_bit : int;
  inj_weight : int;
      (** size of the injection's pre-injection equivalence class: for
          inject-on-read, the dynamic distance since the register was last
          written (Barbosa et al.'s weight, §III-A1 of the paper); 1 for
          inject-on-write *)
}

type t

val create :
  spec:Spec.t ->
  candidates:int ->
  ?spacing:[ `Faulty | `Golden ] ->
  ?first:int * int * int ->
  Prng.t ->
  t
(** [create ~spec ~candidates rng] prepares an injector; [candidates] is
    the golden candidate count for [spec.technique].  [?first] forces the
    first injection's (candidate ordinal, slot, bit) — used by the
    location-sensitivity study (RQ5) to replay a single-bit location under
    a multi-bit model.  Requires [candidates > 0]. *)

val hooks : t -> Vm.Exec.hooks
(** VM hooks implementing the injection state machine (seed backend). *)

val events : t -> Vm.Code.events
(** The same state machine as a run-until-event schedule for the
    compiled backend ({!Vm.Code.run}): yields the next target candidate
    ordinal (first flip, known at creation) or dynamic index (subsequent
    flips, scheduled from the window size when the previous one lands).
    PRNG draws happen in the same order as under {!hooks}, so the two
    backends produce bit-identical injections.  Use an injector instance
    with exactly one of [hooks]/[events]. *)

val first_target : t -> int option
(** The first flip's scheduled candidate ordinal, drawn (or forced) at
    {!create} — [Some] until the first flip fires.  Execution is
    fault-free and consumes no injector randomness before that ordinal,
    which is what lets {!Experiment} resume from a golden-prefix
    checkpoint at-or-before it ({!Vm.Checkpoint}). *)

val activated : t -> int
(** Number of flips actually performed so far. *)

val injections : t -> injection list
(** All performed injections, in order. *)

val first_injection : t -> injection option
