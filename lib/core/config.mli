(** Unified runtime configuration — the single source of truth for every
    [ONEBIT_*] environment variable.

    Resolution precedence is CLI flag > environment > default:
    {!of_env} reads the environment, {!override} layers explicit (flag)
    values on top, and no other module in the repository may call
    [Sys.getenv] on an [ONEBIT_*] name.

    Variables covered:
    - [ONEBIT_N] — experiments per campaign (bench; default 100)
    - [ONEBIT_SEED] — base campaign seed (default 20170626)
    - [ONEBIT_PROGRAMS] — comma-separated program subset (bench)
    - [ONEBIT_CAP] — Table IV replay cap (default 400)
    - [ONEBIT_PRUNE_N] — prune-static validation injections (default 40)
    - [ONEBIT_JOBS] — worker domains; 0 or unparsable = one per core,
      unset = 1
    - [ONEBIT_SHARD] — experiments per shard (default 25)
    - [ONEBIT_STORE] — result-store directory (empty = none)
    - [ONEBIT_PROGRESS] — 1/true/yes = live stderr reporter
    - [ONEBIT_METRICS] — metrics dump path, written at exit
      ("-"/"stderr" = stderr); setting it enables collection
    - [ONEBIT_TRACE] — JSONL span-trace path, written at exit; setting
      it enables collection and tracing
    - [ONEBIT_BACKEND] — execution backend: "seed" (per-instruction
      interpreter) or "compiled" (decode-once micro-op pipeline, the
      default); the two are bit-identical, the knob exists for
      differential testing and benchmarking
    - [ONEBIT_CHECKPOINT] — golden-prefix checkpoint reuse on the
      compiled backend: "on"/"off", a bare capture interval ("512",
      implying on), or "on,512".  Default on with interval 1024;
      results are bit-identical either way (the knob exists for
      benchmarking and differential testing)
    - [ONEBIT_BATCH] — checkpoint-tree suffix batching: group a shard's
      experiments by their selected restore point and amortise one full
      page-restore across each group ("on"/"off"/boolean spellings;
      default on).  Applies only when the compiled backend and
      checkpointing are active; results are byte-identical either way
    - [ONEBIT_COORD] — fleet coordinator address ([unix:PATH] or
      [HOST:PORT]; empty = none), the default for [onebit work] and
      [onebit engine status --coord]
    - [ONEBIT_LEASE_TTL] — fleet lease TTL in seconds (default 30)
    - [ONEBIT_DOMAIN] — fault domain: "reg" (dynamic register
      operands, the paper's model and the default), "mem" (live arena
      bytes), or "code" (stored-program bits, the icache analog)
    - [ONEBIT_ADAPTIVE] — CI-targeted sequential sampling
      ([Engine.Adaptive]): allocate experiments round by round across
      the campaign grid and stop each cell once its SDC estimate is
      tight enough ("1"/"true"/"yes"/"on"; default off)
    - [ONEBIT_CI] — adaptive stopping target: the Wilson 95% CI
      half-width (a proportion, e.g. 0.02 = ±2 points) at which a
      cell's SDC estimate closes (default 0.02) *)

type backend = Seed | Compiled
(** Which VM executes workloads: the seed interpreter ({!Vm.Exec.run})
    or the compiled micro-op pipeline ({!Vm.Code.run}). *)

val backend_name : backend -> string
(** ["seed"] or ["compiled"]. *)

val backend_of_string : string -> backend option
(** Lenient: ["seed"]/["interp"]/["interpreter"] and
    ["compiled"]/["code"]/["vm"], case-insensitive; [None] otherwise. *)

val checkpoint_of_string : string -> (bool * int option) option
(** Lenient ONEBIT_CHECKPOINT syntax: ["on"]/["off"] (or the usual
    boolean spellings), a bare positive interval (implying on), or
    ["on,K"]/["off,K"]; [None] otherwise. *)

type t = {
  n : int;
  seed : int64;
  programs : string list option;
  cap : int;
  prune_n : int;
  jobs : int;  (** resolved: always >= 1 *)
  shard_size : int;
  store : string option;
  progress : bool;
  metrics : string option;
  trace : string option;
  backend : backend;
  checkpoint : bool;
      (** reuse golden-prefix checkpoints on the compiled backend *)
  checkpoint_interval : int;  (** capture every K candidate instructions *)
  batch : bool;
      (** group experiments by selected checkpoint and amortise restores
          ([ONEBIT_BATCH]; default on; byte-identical either way) *)
  incremental : bool;
      (** compose campaigns from cached per-function profiles
          ([Engine.Incremental]); resolved from ONEBIT_INCREMENTAL
          (["1"]/["true"]/["yes"]/["on"]) or [--incremental] *)
  coord : string option;
      (** fleet coordinator address ([ONEBIT_COORD]; empty = none) *)
  lease_ttl : float;  (** fleet lease TTL in seconds ([ONEBIT_LEASE_TTL]) *)
  domain : Domain.t;  (** fault domain ([ONEBIT_DOMAIN]; default [Reg]) *)
  adaptive : bool;
      (** CI-targeted sequential sampling ([ONEBIT_ADAPTIVE] or
          [--adaptive]; default off).  [n] becomes the per-cell cap. *)
  ci_target : float;
      (** adaptive stopping target: Wilson 95% CI half-width at which a
          cell's SDC estimate closes ([ONEBIT_CI]; default 0.02) *)
}

val default : t

val of_env : ?getenv:(string -> string option) -> unit -> t
(** Resolve from the environment ([getenv] defaults to
    [Sys.getenv_opt]; injectable for tests). *)

val override :
  ?n:int ->
  ?seed:int64 ->
  ?programs:string list ->
  ?cap:int ->
  ?prune_n:int ->
  ?jobs:int ->
  ?shard_size:int ->
  ?store:string ->
  ?progress:bool ->
  ?metrics:string ->
  ?trace:string ->
  ?backend:backend ->
  ?checkpoint:bool ->
  ?checkpoint_interval:int ->
  ?batch:bool ->
  ?incremental:bool ->
  ?coord:string ->
  ?lease_ttl:float ->
  ?domain:Domain.t ->
  ?adaptive:bool ->
  ?ci_target:float ->
  t -> t
(** Layer explicit values (CLI flags) over a resolved configuration.
    [jobs <= 0] means one worker per recommended domain; a
    non-positive [shard_size] or [lease_ttl] is ignored, as is a
    [ci_target] outside (0, 1). *)

val resolve_jobs : int -> int
(** [resolve_jobs j] is [j] if positive, else the recommended domain
    count. *)

val install : t -> unit
(** Arm the observability sinks described by [metrics]/[trace]
    (enables collection and registers at-exit dump writers; a no-op if
    neither is set) and make [t.backend]/[t.checkpoint] the
    process-wide active backend and checkpointing state. *)

val active_backend : unit -> backend
(** The process-wide backend {!Experiment} and {!Workload} dispatch on.
    Resolved lazily from [ONEBIT_BACKEND] on first read unless
    {!set_backend} or {!install} has fixed it. *)

val set_backend : backend -> unit
(** Fix the process-wide backend (benchmarks and differential tests
    flip this between timed sections). *)

val checkpointing : unit -> bool
(** Whether {!Experiment} may reuse golden-prefix checkpoints (compiled
    backend only).  Resolved lazily from [ONEBIT_CHECKPOINT] on first
    read unless {!set_checkpoint} or {!install} has fixed it. *)

val checkpoint_interval : unit -> int
(** The capture interval in candidate instructions (default 1024). *)

val set_checkpoint : ?interval:int -> bool -> unit
(** Fix the process-wide checkpointing state; [interval], when given
    and positive, also fixes the capture interval.  Benchmarks and the
    differential suite flip this between timed sections — results are
    bit-identical either way. *)

val batching : unit -> bool
(** Whether {!Campaign} may group experiments by selected checkpoint
    and amortise restores ({!Batch}).  Resolved lazily from
    [ONEBIT_BATCH] on first read unless {!set_batch} or {!install} has
    fixed it.  Only consulted when the compiled backend and
    checkpointing are both active. *)

val set_batch : bool -> unit
(** Fix the process-wide batching state (benchmarks and the batch
    differential suite flip this between sections — results are
    byte-identical either way). *)
