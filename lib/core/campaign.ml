type result = {
  workload_name : string;
  spec : Spec.t;
  n : int;
  seed : int64;
  benign : int;
  detected : int;
  hang : int;
  no_output : int;
  sdc : int;
  traps : (Vm.Trap.t * int) list;
  activation : Stats.Histogram.t;
  experiments : Experiment.t array;
  weighted_sdc : float;
  weighted_total : float;
}

type shard = {
  lo : int;
  hi : int;
  s_benign : int;
  s_detected : int;
  s_hang : int;
  s_no_output : int;
  s_sdc : int;
  s_traps : (Vm.Trap.t * int) list;
  s_activation : (int * int) list;
  s_weighted_sdc : float;
  s_weighted_total : float;
  s_experiments : Experiment.t array;
}

type profile = {
  p_exps : int;
  p_benign : int;
  p_detected : int;
  p_hang : int;
  p_no_output : int;
  p_sdc : int;
  p_traps : (Vm.Trap.t * int) list;
  p_activation : (int * int) list;
  p_weighted_sdc : float;
  p_weighted_total : float;
}

let sort_traps traps = List.sort compare traps

(* Shared outcome accumulator behind [run_shard] and [run_profile]: both
   classify the same experiment stream, only the index sets differ. *)
type acc = {
  mutable a_exps : int;
  mutable a_benign : int;
  mutable a_detected : int;
  mutable a_hang : int;
  mutable a_no_output : int;
  mutable a_sdc : int;
  a_traps : (Vm.Trap.t, int) Hashtbl.t;
  a_activation : Stats.Histogram.t;
  mutable a_weighted_sdc : float;
  mutable a_weighted_total : float;
}

let acc_create () =
  {
    a_exps = 0;
    a_benign = 0;
    a_detected = 0;
    a_hang = 0;
    a_no_output = 0;
    a_sdc = 0;
    a_traps = Hashtbl.create 8;
    a_activation = Stats.Histogram.create ();
    a_weighted_sdc = 0.0;
    a_weighted_total = 0.0;
  }

let acc_add acc (e : Experiment.t) =
  acc.a_exps <- acc.a_exps + 1;
  (match e.outcome with
  | Benign -> acc.a_benign <- acc.a_benign + 1
  | Detected trap ->
      acc.a_detected <- acc.a_detected + 1;
      Hashtbl.replace acc.a_traps trap
        (1 + Option.value ~default:0 (Hashtbl.find_opt acc.a_traps trap))
  | Hang -> acc.a_hang <- acc.a_hang + 1
  | No_output -> acc.a_no_output <- acc.a_no_output + 1
  | Sdc -> acc.a_sdc <- acc.a_sdc + 1);
  Stats.Histogram.add acc.a_activation e.activated;
  match e.first with
  | Some inj ->
      let w = float_of_int inj.inj_weight in
      acc.a_weighted_total <- acc.a_weighted_total +. w;
      if Outcome.is_sdc e.outcome then
        acc.a_weighted_sdc <- acc.a_weighted_sdc +. w
  | None -> ()

let acc_traps acc =
  sort_traps (Hashtbl.fold (fun t c l -> (t, c) :: l) acc.a_traps [])

let acc_profile acc =
  {
    p_exps = acc.a_exps;
    p_benign = acc.a_benign;
    p_detected = acc.a_detected;
    p_hang = acc.a_hang;
    p_no_output = acc.a_no_output;
    p_sdc = acc.a_sdc;
    p_traps = acc_traps acc;
    p_activation = Stats.Histogram.to_alist acc.a_activation;
    p_weighted_sdc = acc.a_weighted_sdc;
    p_weighted_total = acc.a_weighted_total;
  }

let empty_profile = acc_profile (acc_create ())

(* Execute a set of campaign indices, preferring the batched scheduler
   ([Batch]: experiments grouped by restore point, one full page-restore
   amortised per group) and falling back to the bit-identical
   one-at-a-time path when batching does not apply.  Results come back
   positionally — [k] holds experiment [indices.(k)] — and are always
   folded into accumulators in index order, so campaign results are
   byte-identical across the batch switch. *)
let run_indices ?spacing workload spec ~seed ~indices =
  match Batch.run_indices ?spacing workload spec ~seed ~indices with
  | Some exps -> exps
  | None ->
      let base = Prng.of_seed seed in
      Array.map
        (fun i ->
          let rng = Prng.split_at base i in
          Experiment.run ?spacing workload spec rng)
        indices

let run_shard ?(keep_experiments = false) ?spacing workload spec ~seed ~lo ~hi =
  if lo < 0 || hi <= lo then invalid_arg "Campaign.run_shard: bad range";
  let acc = acc_create () in
  let indices = Array.init (hi - lo) (fun k -> lo + k) in
  let exps = run_indices ?spacing workload spec ~seed ~indices in
  Array.iter (acc_add acc) exps;
  let s_experiments = if keep_experiments then exps else [||] in
  {
    lo;
    hi;
    s_benign = acc.a_benign;
    s_detected = acc.a_detected;
    s_hang = acc.a_hang;
    s_no_output = acc.a_no_output;
    s_sdc = acc.a_sdc;
    s_traps = acc_traps acc;
    s_activation = Stats.Histogram.to_alist acc.a_activation;
    s_weighted_sdc = acc.a_weighted_sdc;
    s_weighted_total = acc.a_weighted_total;
    s_experiments;
  }

let run_profile ?spacing workload spec ~seed ~indices =
  Array.iter
    (fun i ->
      if i < 0 then invalid_arg "Campaign.run_profile: negative index")
    indices;
  let acc = acc_create () in
  Array.iter (acc_add acc) (run_indices ?spacing workload spec ~seed ~indices);
  acc_profile acc

let merge_profiles a b =
  let traps = Hashtbl.create 8 in
  let bump (t, c) =
    Hashtbl.replace traps t
      (c + Option.value ~default:0 (Hashtbl.find_opt traps t))
  in
  List.iter bump a.p_traps;
  List.iter bump b.p_traps;
  let activation = Stats.Histogram.create () in
  List.iter
    (fun (k, c) -> Stats.Histogram.add_count activation k c)
    (a.p_activation @ b.p_activation);
  {
    p_exps = a.p_exps + b.p_exps;
    p_benign = a.p_benign + b.p_benign;
    p_detected = a.p_detected + b.p_detected;
    p_hang = a.p_hang + b.p_hang;
    p_no_output = a.p_no_output + b.p_no_output;
    p_sdc = a.p_sdc + b.p_sdc;
    p_traps = sort_traps (Hashtbl.fold (fun t c l -> (t, c) :: l) traps []);
    p_activation = Stats.Histogram.to_alist activation;
    p_weighted_sdc = a.p_weighted_sdc +. b.p_weighted_sdc;
    p_weighted_total = a.p_weighted_total +. b.p_weighted_total;
  }

let result_of_profiles ~workload_name spec ~n ~seed profiles =
  if n <= 0 then invalid_arg "Campaign.result_of_profiles: n must be positive";
  let total = List.fold_left (fun acc p -> acc + p.p_exps) 0 profiles in
  if total <> n then
    invalid_arg
      (Printf.sprintf
         "Campaign.result_of_profiles: profiles cover %d experiments but n \
          = %d"
         total n);
  let p = List.fold_left merge_profiles empty_profile profiles in
  let activation = Stats.Histogram.create () in
  List.iter
    (fun (k, c) -> Stats.Histogram.add_count activation k c)
    p.p_activation;
  {
    workload_name;
    spec;
    n;
    seed;
    benign = p.p_benign;
    detected = p.p_detected;
    hang = p.p_hang;
    no_output = p.p_no_output;
    sdc = p.p_sdc;
    traps = p.p_traps;
    activation;
    experiments = [||];
    weighted_sdc = p.p_weighted_sdc;
    weighted_total = p.p_weighted_total;
  }

let merge ~workload_name spec ~n ~seed shards =
  if n <= 0 then invalid_arg "Campaign.merge: n must be positive";
  let shards = List.sort (fun a b -> compare a.lo b.lo) shards in
  let covered =
    List.fold_left
      (fun pos s ->
        if s.lo <> pos then
          invalid_arg
            (Printf.sprintf
               "Campaign.merge: shard gap/overlap at %d (next shard starts \
                at %d)"
               pos s.lo);
        s.hi)
      0 shards
  in
  if covered <> n then
    invalid_arg
      (Printf.sprintf "Campaign.merge: shards cover [0, %d) but n = %d"
         covered n);
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 shards in
  let sumf f = List.fold_left (fun acc s -> acc +. f s) 0.0 shards in
  let traps = Hashtbl.create 8 in
  let activation = Stats.Histogram.create () in
  List.iter
    (fun s ->
      List.iter
        (fun (t, c) ->
          Hashtbl.replace traps t
            (c + Option.value ~default:0 (Hashtbl.find_opt traps t)))
        s.s_traps;
      List.iter
        (fun (k, c) -> Stats.Histogram.add_count activation k c)
        s.s_activation)
    shards;
  {
    workload_name;
    spec;
    n;
    seed;
    benign = sum (fun s -> s.s_benign);
    detected = sum (fun s -> s.s_detected);
    hang = sum (fun s -> s.s_hang);
    no_output = sum (fun s -> s.s_no_output);
    sdc = sum (fun s -> s.s_sdc);
    traps = sort_traps (Hashtbl.fold (fun t c acc -> (t, c) :: acc) traps []);
    activation;
    experiments = Array.concat (List.map (fun s -> s.s_experiments) shards);
    weighted_sdc = sumf (fun s -> s.s_weighted_sdc);
    weighted_total = sumf (fun s -> s.s_weighted_total);
  }

let run ?(keep_experiments = false) ?spacing workload spec ~n ~seed =
  if n <= 0 then invalid_arg "Campaign.run: n must be positive";
  merge ~workload_name:workload.Workload.name spec ~n ~seed
    [ run_shard ~keep_experiments ?spacing workload spec ~seed ~lo:0 ~hi:n ]

let sdc_ci r = Stats.Proportion.wald ~successes:r.sdc ~trials:r.n ()

let detection_ci r =
  Stats.Proportion.wald ~successes:(r.detected + r.hang + r.no_output) ~trials:r.n ()

let benign_ci r = Stats.Proportion.wald ~successes:r.benign ~trials:r.n ()
let sdc_pct r = 100. *. float_of_int r.sdc /. float_of_int r.n

let weighted_sdc_pct r =
  if r.weighted_total <= 0.0 then 0.0
  else 100. *. r.weighted_sdc /. r.weighted_total

let equal_profile (a : profile) (b : profile) = a = b

let equal_result a b =
  let experiment_equal (x : Experiment.t) (y : Experiment.t) =
    x.outcome = y.outcome && x.activated = y.activated
    && x.dyn_count = y.dyn_count
    && String.equal x.output y.output
  in
  String.equal a.workload_name b.workload_name
  && Spec.equal a.spec b.spec && a.n = b.n && a.seed = b.seed
  && a.benign = b.benign && a.detected = b.detected && a.hang = b.hang
  && a.no_output = b.no_output && a.sdc = b.sdc && a.traps = b.traps
  && Stats.Histogram.to_alist a.activation
     = Stats.Histogram.to_alist b.activation
  && a.weighted_sdc = b.weighted_sdc
  && a.weighted_total = b.weighted_total
  && Array.length a.experiments = Array.length b.experiments
  && Array.for_all2 experiment_equal a.experiments b.experiments
