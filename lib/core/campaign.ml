type result = {
  workload_name : string;
  spec : Spec.t;
  n : int;
  seed : int64;
  benign : int;
  detected : int;
  hang : int;
  no_output : int;
  sdc : int;
  traps : (Vm.Trap.t * int) list;
  activation : Stats.Histogram.t;
  experiments : Experiment.t array;
  weighted_sdc : float;
  weighted_total : float;
}

type shard = {
  lo : int;
  hi : int;
  s_benign : int;
  s_detected : int;
  s_hang : int;
  s_no_output : int;
  s_sdc : int;
  s_traps : (Vm.Trap.t * int) list;
  s_activation : (int * int) list;
  s_weighted_sdc : float;
  s_weighted_total : float;
  s_experiments : Experiment.t array;
}

let sort_traps traps = List.sort compare traps

let run_shard ?(keep_experiments = false) ?spacing workload spec ~seed ~lo ~hi =
  if lo < 0 || hi <= lo then invalid_arg "Campaign.run_shard: bad range";
  let base = Prng.of_seed seed in
  let benign = ref 0
  and detected = ref 0
  and hang = ref 0
  and no_output = ref 0
  and sdc = ref 0 in
  let traps = Hashtbl.create 8 in
  let activation = Stats.Histogram.create () in
  let weighted_sdc = ref 0.0 and weighted_total = ref 0.0 in
  let kept = if keep_experiments then Array.make (hi - lo) None else [||] in
  for i = lo to hi - 1 do
    let rng = Prng.split_at base i in
    let e = Experiment.run ?spacing workload spec rng in
    (match e.outcome with
    | Benign -> incr benign
    | Detected trap ->
        incr detected;
        Hashtbl.replace traps trap
          (1 + Option.value ~default:0 (Hashtbl.find_opt traps trap))
    | Hang -> incr hang
    | No_output -> incr no_output
    | Sdc -> incr sdc);
    Stats.Histogram.add activation e.activated;
    (match e.first with
    | Some inj ->
        let w = float_of_int inj.inj_weight in
        weighted_total := !weighted_total +. w;
        if Outcome.is_sdc e.outcome then weighted_sdc := !weighted_sdc +. w
    | None -> ());
    if keep_experiments then kept.(i - lo) <- Some e
  done;
  let s_experiments =
    if keep_experiments then
      Array.map (function Some e -> e | None -> assert false) kept
    else [||]
  in
  {
    lo;
    hi;
    s_benign = !benign;
    s_detected = !detected;
    s_hang = !hang;
    s_no_output = !no_output;
    s_sdc = !sdc;
    s_traps =
      sort_traps (Hashtbl.fold (fun t c acc -> (t, c) :: acc) traps []);
    s_activation = Stats.Histogram.to_alist activation;
    s_weighted_sdc = !weighted_sdc;
    s_weighted_total = !weighted_total;
    s_experiments;
  }

let merge ~workload_name spec ~n ~seed shards =
  if n <= 0 then invalid_arg "Campaign.merge: n must be positive";
  let shards = List.sort (fun a b -> compare a.lo b.lo) shards in
  let covered =
    List.fold_left
      (fun pos s ->
        if s.lo <> pos then
          invalid_arg
            (Printf.sprintf
               "Campaign.merge: shard gap/overlap at %d (next shard starts \
                at %d)"
               pos s.lo);
        s.hi)
      0 shards
  in
  if covered <> n then
    invalid_arg
      (Printf.sprintf "Campaign.merge: shards cover [0, %d) but n = %d"
         covered n);
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 shards in
  let sumf f = List.fold_left (fun acc s -> acc +. f s) 0.0 shards in
  let traps = Hashtbl.create 8 in
  let activation = Stats.Histogram.create () in
  List.iter
    (fun s ->
      List.iter
        (fun (t, c) ->
          Hashtbl.replace traps t
            (c + Option.value ~default:0 (Hashtbl.find_opt traps t)))
        s.s_traps;
      List.iter
        (fun (k, c) -> Stats.Histogram.add_count activation k c)
        s.s_activation)
    shards;
  {
    workload_name;
    spec;
    n;
    seed;
    benign = sum (fun s -> s.s_benign);
    detected = sum (fun s -> s.s_detected);
    hang = sum (fun s -> s.s_hang);
    no_output = sum (fun s -> s.s_no_output);
    sdc = sum (fun s -> s.s_sdc);
    traps = sort_traps (Hashtbl.fold (fun t c acc -> (t, c) :: acc) traps []);
    activation;
    experiments = Array.concat (List.map (fun s -> s.s_experiments) shards);
    weighted_sdc = sumf (fun s -> s.s_weighted_sdc);
    weighted_total = sumf (fun s -> s.s_weighted_total);
  }

let run ?(keep_experiments = false) ?spacing workload spec ~n ~seed =
  if n <= 0 then invalid_arg "Campaign.run: n must be positive";
  merge ~workload_name:workload.Workload.name spec ~n ~seed
    [ run_shard ~keep_experiments ?spacing workload spec ~seed ~lo:0 ~hi:n ]

let sdc_ci r = Stats.Proportion.wald ~successes:r.sdc ~trials:r.n ()

let detection_ci r =
  Stats.Proportion.wald ~successes:(r.detected + r.hang + r.no_output) ~trials:r.n ()

let benign_ci r = Stats.Proportion.wald ~successes:r.benign ~trials:r.n ()
let sdc_pct r = 100. *. float_of_int r.sdc /. float_of_int r.n

let weighted_sdc_pct r =
  if r.weighted_total <= 0.0 then 0.0
  else 100. *. r.weighted_sdc /. r.weighted_total

let equal_result a b =
  let experiment_equal (x : Experiment.t) (y : Experiment.t) =
    x.outcome = y.outcome && x.activated = y.activated
    && x.dyn_count = y.dyn_count
    && String.equal x.output y.output
  in
  String.equal a.workload_name b.workload_name
  && Spec.equal a.spec b.spec && a.n = b.n && a.seed = b.seed
  && a.benign = b.benign && a.detected = b.detected && a.hang = b.hang
  && a.no_output = b.no_output && a.sdc = b.sdc && a.traps = b.traps
  && Stats.Histogram.to_alist a.activation
     = Stats.Histogram.to_alist b.activation
  && a.weighted_sdc = b.weighted_sdc
  && a.weighted_total = b.weighted_total
  && Array.length a.experiments = Array.length b.experiments
  && Array.for_all2 experiment_equal a.experiments b.experiments
