(* Fault domains: where a bit flip lands.

   [Reg] is the paper's model — a transient flip of a dynamic register
   operand at a read or write candidate.  [Mem] flips a bit of a live
   arena byte between dynamic instructions (data memory / caches).
   [Code] flips a bit of the stored program — an instruction field of
   the loaded IR, the instruction-cache analog — with decode-cache
   invalidation semantics on the compiled backend.

   Note: this module shadows [Stdlib.Domain] inside [Core]; the few
   call sites that need OCaml's multicore domains qualify them as
   [Stdlib.Domain]. *)

type t = Reg | Mem | Code

let to_string = function Reg -> "reg" | Mem -> "mem" | Code -> "code"

(* Lenient, like every Config resolver: aliases accepted, unknown
   values rejected as [None]. *)
let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "reg" | "register" | "registers" -> Some Reg
  | "mem" | "memory" -> Some Mem
  | "code" | "icache" | "program" -> Some Code
  | _ -> None

let all = [ Reg; Mem; Code ]
let index = function Reg -> 0 | Mem -> 1 | Code -> 2
let equal (a : t) (b : t) = a = b
