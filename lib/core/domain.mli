(** Fault domains: where an injected bit flip lands.

    The paper's model flips dynamic register operands ([Reg], the
    default everywhere).  The two additional domains extend the study to
    stored state, per ROADMAP item 4 / the paper's future-work section:

    - [Mem] — a uniform bit of a uniform mapped arena byte, flipped
      between dynamic instructions: the data-memory/cache analog.
    - [Code] — a uniform bit of a uniform instruction field of the
      stored program, flipped between dynamic instructions: the
      instruction-cache analog.  On the compiled backend the flip
      patches a private fork of the decoded micro-op arrays
      (decode-cache invalidation); flips that produce an undecodable
      field raise {!Vm.Trap.Trap}[ Ill_instr].

    This module shadows [Stdlib.Domain] inside [lib/core]; qualify
    OCaml's multicore domains as [Stdlib.Domain] there. *)

type t = Reg | Mem | Code

val to_string : t -> string
(** ["reg"], ["mem"], ["code"] — the store/CSV/CLI spelling. *)

val of_string : string -> t option
(** Lenient inverse of {!to_string}: also accepts ["register(s)"],
    ["memory"], ["icache"], ["program"], case-insensitive. *)

val all : t list

val index : t -> int
(** Position in {!all}; a dense index for array-backed per-domain
    tables (e.g. the injection counters). *)

val equal : t -> t -> bool
