(* Unified runtime configuration.

   Every ONEBIT_* environment variable is resolved here and nowhere
   else; CLI flags override by way of [override].  Precedence is
   flag > environment > default, and each resolver preserves the
   historical lenient parsing (an unparsable value falls back rather
   than failing, ONEBIT_JOBS=0 means one worker per core, an empty
   ONEBIT_STORE means no store). *)

type backend = Seed | Compiled

let backend_name = function Seed -> "seed" | Compiled -> "compiled"

(* Lenient, like every other resolver: unknown values fall back. *)
let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "seed" | "interp" | "interpreter" -> Some Seed
  | "compiled" | "code" | "vm" -> Some Compiled
  | _ -> None

(* ONEBIT_CHECKPOINT accepts "on"/"off" (and the usual boolean spellings),
   a bare positive interval ("512", implying on), or "on,512"/"off,512".
   Anything else falls back to the default, like every other resolver. *)
let checkpoint_of_string s =
  let bool_tok = function
    | "on" | "true" | "yes" | "1" -> Some true
    | "off" | "false" | "no" | "0" -> Some false
    | _ -> None
  in
  let int_tok t =
    match int_of_string_opt t with Some k when k > 0 -> Some k | _ -> None
  in
  match
    String.split_on_char ',' (String.lowercase_ascii (String.trim s))
    |> List.map String.trim
  with
  | [ t ] -> (
      match bool_tok t with
      | Some b -> Some (b, None)
      | None -> (
          match int_tok t with Some k -> Some (true, Some k) | None -> None))
  | [ t; k ] -> (
      match (bool_tok t, int_tok k) with
      | Some b, Some k -> Some (b, Some k)
      | _ -> None)
  | _ -> None

type t = {
  n : int;
  seed : int64;
  programs : string list option;
  cap : int;
  prune_n : int;
  jobs : int;
  shard_size : int;
  store : string option;
  progress : bool;
  metrics : string option;
  trace : string option;
  backend : backend;
  checkpoint : bool;
  checkpoint_interval : int;
  batch : bool;
  incremental : bool;
  coord : string option;
  lease_ttl : float;
  domain : Domain.t;
  adaptive : bool;
  ci_target : float;
}

let default =
  {
    n = 100;
    seed = 20170626L;
    programs = None;
    cap = 400;
    prune_n = 40;
    jobs = 1;
    shard_size = 25;
    store = None;
    progress = false;
    metrics = None;
    trace = None;
    backend = Compiled;
    checkpoint = true;
    checkpoint_interval = 1024;
    batch = true;
    incremental = false;
    coord = None;
    lease_ttl = 30.;
    domain = Domain.Reg;
    adaptive = false;
    ci_target = 0.02;
  }

(* [jobs] semantics shared by env and flags: a positive value is taken
   literally, 0 (or an unparsable env value) means one worker per
   recommended domain.  ([Core.Domain] is the fault domain; OCaml's
   multicore domains are reached as [Stdlib.Domain].) *)
let resolve_jobs j =
  if j > 0 then j else Stdlib.Domain.recommended_domain_count ()

let of_env ?(getenv = Sys.getenv_opt) () =
  let int name fallback =
    match Option.bind (getenv name) int_of_string_opt with
    | Some v -> v
    | None -> fallback
  in
  let path name =
    match getenv name with Some p when p <> "" -> Some p | _ -> None
  in
  {
    n = int "ONEBIT_N" default.n;
    seed =
      (match Option.bind (getenv "ONEBIT_SEED") Int64.of_string_opt with
      | Some s -> s
      | None -> default.seed);
    programs = Option.map (String.split_on_char ',') (getenv "ONEBIT_PROGRAMS");
    cap = int "ONEBIT_CAP" default.cap;
    prune_n = int "ONEBIT_PRUNE_N" default.prune_n;
    jobs =
      (match getenv "ONEBIT_JOBS" with
      | None -> default.jobs
      | Some s -> (
          match int_of_string_opt s with
          | Some j when j > 0 -> j
          | Some _ | None -> Stdlib.Domain.recommended_domain_count ()));
    shard_size =
      (match Option.bind (getenv "ONEBIT_SHARD") int_of_string_opt with
      | Some s when s > 0 -> s
      | Some _ | None -> default.shard_size);
    store = path "ONEBIT_STORE";
    progress =
      (match getenv "ONEBIT_PROGRESS" with
      | Some ("1" | "true" | "yes") -> true
      | Some _ | None -> false);
    metrics = path "ONEBIT_METRICS";
    trace = path "ONEBIT_TRACE";
    backend =
      (match Option.bind (getenv "ONEBIT_BACKEND") backend_of_string with
      | Some b -> b
      | None -> default.backend);
    checkpoint =
      (match Option.bind (getenv "ONEBIT_CHECKPOINT") checkpoint_of_string with
      | Some (on, _) -> on
      | None -> default.checkpoint);
    checkpoint_interval =
      (match Option.bind (getenv "ONEBIT_CHECKPOINT") checkpoint_of_string with
      | Some (_, Some k) -> k
      | Some (_, None) | None -> default.checkpoint_interval);
    batch =
      (match getenv "ONEBIT_BATCH" with
      | Some s -> (
          match String.lowercase_ascii (String.trim s) with
          | "on" | "true" | "yes" | "1" -> true
          | "off" | "false" | "no" | "0" -> false
          | _ -> default.batch)
      | None -> default.batch);
    incremental =
      (match getenv "ONEBIT_INCREMENTAL" with
      | Some ("1" | "true" | "yes" | "on") -> true
      | Some _ | None -> default.incremental);
    coord = path "ONEBIT_COORD";
    lease_ttl =
      (match Option.bind (getenv "ONEBIT_LEASE_TTL") float_of_string_opt with
      | Some ttl when ttl > 0. -> ttl
      | Some _ | None -> default.lease_ttl);
    domain =
      (match Option.bind (getenv "ONEBIT_DOMAIN") Domain.of_string with
      | Some d -> d
      | None -> default.domain);
    adaptive =
      (match getenv "ONEBIT_ADAPTIVE" with
      | Some ("1" | "true" | "yes" | "on") -> true
      | Some _ | None -> default.adaptive);
    ci_target =
      (match Option.bind (getenv "ONEBIT_CI") float_of_string_opt with
      | Some t when t > 0. && t < 1. -> t
      | Some _ | None -> default.ci_target);
  }

let override ?n ?seed ?programs ?cap ?prune_n ?jobs ?shard_size ?store
    ?progress ?metrics ?trace ?backend ?checkpoint ?checkpoint_interval ?batch
    ?incremental ?coord ?lease_ttl ?domain ?adaptive ?ci_target t =
  let opt v fallback = Option.value v ~default:fallback in
  {
    n = opt n t.n;
    seed = opt seed t.seed;
    programs = (match programs with Some p -> Some p | None -> t.programs);
    cap = opt cap t.cap;
    prune_n = opt prune_n t.prune_n;
    jobs = (match jobs with Some j -> resolve_jobs j | None -> t.jobs);
    shard_size =
      (match shard_size with Some s when s > 0 -> s | Some _ -> t.shard_size | None -> t.shard_size);
    store = (match store with Some d -> Some d | None -> t.store);
    progress = opt progress t.progress;
    metrics = (match metrics with Some p -> Some p | None -> t.metrics);
    trace = (match trace with Some p -> Some p | None -> t.trace);
    backend = opt backend t.backend;
    checkpoint = opt checkpoint t.checkpoint;
    checkpoint_interval =
      (match checkpoint_interval with
      | Some k when k > 0 -> k
      | Some _ | None -> t.checkpoint_interval);
    batch = opt batch t.batch;
    incremental = opt incremental t.incremental;
    coord = (match coord with Some c -> Some c | None -> t.coord);
    lease_ttl =
      (match lease_ttl with
      | Some ttl when ttl > 0. -> ttl
      | Some _ | None -> t.lease_ttl);
    domain = opt domain t.domain;
    adaptive = opt adaptive t.adaptive;
    ci_target =
      (match ci_target with
      | Some c when c > 0. && c < 1. -> c
      | Some _ | None -> t.ci_target);
  }

(* Process-wide active backend: what [Experiment]/[Workload] dispatch on
   when no configuration is threaded through explicitly.  Resolved
   lazily from the environment on first read so library users who never
   touch Config still honour ONEBIT_BACKEND. *)
let active = ref None
let set_backend b = active := Some b

let active_backend () =
  match !active with
  | Some b -> b
  | None ->
      let b = (of_env ()).backend in
      active := Some b;
      b

(* Process-wide checkpointing switch, mirroring [active_backend]: what
   [Experiment]/[Workload] consult when no configuration is threaded
   through explicitly.  Lazily resolved from ONEBIT_CHECKPOINT. *)
let ck_active = ref None

let checkpoint_state () =
  match !ck_active with
  | Some st -> st
  | None ->
      let c = of_env () in
      let st = (c.checkpoint, c.checkpoint_interval) in
      ck_active := Some st;
      st

let set_checkpoint ?interval on =
  let k =
    match interval with
    | Some k when k > 0 -> k
    | Some _ | None -> snd (checkpoint_state ())
  in
  ck_active := Some (on, k)

let checkpointing () = fst (checkpoint_state ())
let checkpoint_interval () = snd (checkpoint_state ())

(* Process-wide suffix-batching switch, same shape as the checkpoint
   switch: lazily resolved from ONEBIT_BATCH, settable by flags/tests.
   Batching is a pure scheduling change — results are byte-identical on
   or off — so this only trades restore amortisation for per-experiment
   dispatch. *)
let batch_active = ref None

let batching () =
  match !batch_active with
  | Some b -> b
  | None ->
      let b = (of_env ()).batch in
      batch_active := Some b;
      b

let set_batch b = batch_active := Some b

let install t =
  set_backend t.backend;
  set_checkpoint ~interval:t.checkpoint_interval t.checkpoint;
  set_batch t.batch;
  Obs.install_sink ?metrics:t.metrics ?trace:t.trace ()
