type t = {
  technique : Technique.t;
  max_mbf : int;
  win : Win.t;
  domain : Domain.t;
}

let single ?(domain = Domain.Reg) technique =
  { technique; max_mbf = 1; win = Fixed 0; domain }

let multi ?(domain = Domain.Reg) technique ~max_mbf ~win =
  if max_mbf < 2 then invalid_arg "Spec.multi: max_mbf must be >= 2";
  { technique; max_mbf; win; domain }

let is_single t = t.max_mbf = 1

(* Reg-domain labels are exactly the historical ones ("read/single"), so
   store keys, runner memo keys and derived seeds are unchanged for
   every pre-redesign campaign; Mem/Code prefix the domain instead of
   the technique (sampling there is technique-independent). *)
let label t =
  let head =
    match t.domain with
    | Domain.Reg -> (
        match t.technique with Technique.Read -> "read" | Write -> "write")
    | d -> Domain.to_string d
  in
  if is_single t then Printf.sprintf "%s/single" head
  else Printf.sprintf "%s/m=%d/w=%s" head t.max_mbf (Win.to_string t.win)

let equal a b =
  a.technique = b.technique && a.max_mbf = b.max_mbf && Win.equal a.win b.win
  && Domain.equal a.domain b.domain
