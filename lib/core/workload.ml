type t = {
  name : string;
  modl : Ir.Func.modl;
      (* the source module, retained for per-function fingerprints *)
  prog : Vm.Program.t;
  code : Vm.Code.t;
      (* decoded once here, shared immutably across engine domains *)
  golden : Vm.Exec.result;
  profile : int array array;
      (* golden-run execution count of each (function, block) *)
  budget : int;
  digest : string;
      (* md5 of the printed IR; part of every result-store key *)
  mem_addrs : int array;
      (* mapped arena addresses of the template — the Mem domain's
         location space *)
  code_sites : Vm.Codeflip.sites;
      (* static instruction-field table — the Code domain's location
         space.  Both eager: building them is one pass over static
         state, and sharing them across engine domains must not race. *)
}

let make ?(hang_factor = 10) ?expected_output ~name m =
  let prog = Vm.Program.load m in
  let digest = Ir.Fingerprint.modl m in
  let code = Vm.Code.compile ~digest prog in
  let profile =
    Array.map
      (fun (f : Vm.Program.lfunc) -> Array.make (Array.length f.blocks) 0)
      prog.funcs
  in
  let block_hook ~fidx ~bidx =
    profile.(fidx).(bidx) <- profile.(fidx).(bidx) + 1
  in
  let golden =
    match Config.active_backend () with
    | Config.Seed -> Vm.Exec.run ~block_hook ~budget:Vm.Exec.golden_budget prog
    | Config.Compiled ->
        Vm.Code.run ~block_hook ~budget:Vm.Exec.golden_budget code
  in
  (match golden.status with
  | Finished -> ()
  | Trapped trap ->
      invalid_arg
        (Printf.sprintf "Workload.make: %s golden run trapped (%s)" name
           (Vm.Trap.to_string trap))
  | Hung -> invalid_arg ("Workload.make: " ^ name ^ " golden run hung"));
  (match expected_output with
  | Some expected when not (String.equal expected golden.output) ->
      invalid_arg ("Workload.make: " ^ name ^ " golden output mismatch")
  | Some _ | None -> ());
  if golden.read_cands = 0 || golden.write_cands = 0 then
    invalid_arg ("Workload.make: " ^ name ^ " has no injection candidates");
  {
    name;
    modl = m;
    prog;
    code;
    golden;
    profile;
    budget = (hang_factor * golden.dyn_count) + 1000;
    digest;
    mem_addrs = Vm.Memory.mapped_addrs prog.mem_template;
    code_sites = Vm.Codeflip.sites prog;
  }

(* The spec's time-axis size: candidate ordinals of the technique for
   the Reg domain, raw dynamic instructions for Mem/Code (their flips
   land between dynamic instructions, so every instruction is a
   candidate). *)
let candidates t (spec : Spec.t) =
  match spec.domain with
  | Domain.Reg -> (
      match spec.technique with
      | Technique.Read -> t.golden.read_cands
      | Technique.Write -> t.golden.write_cands)
  | Domain.Mem | Domain.Code -> t.golden.dyn_count

(* Record golden-prefix checkpoints for this workload, once per digest
   process-wide (engine domains share the set like they share compiled
   code).  Lazy rather than part of [make] so the recording run — one
   extra instrumented golden execution — is only paid when a checkpointed
   experiment actually runs, and so flipping ONEBIT_CHECKPOINT on after
   workload creation still works.  [None] when checkpointing is off or
   the backend is the seed interpreter, which bypass checkpoints
   entirely. *)
let ensure_checkpoints t =
  if Config.active_backend () <> Config.Compiled || not (Config.checkpointing ())
  then None
  else
    Vm.Checkpoint.ensure t.digest ~record:(fun () ->
        let r =
          Vm.Checkpoint.recorder ~interval:(Config.checkpoint_interval ())
        in
        let g = Vm.Code.run ~record:r ~budget:Vm.Exec.golden_budget t.code in
        match g.Vm.Exec.status with
        | Finished -> Some (Vm.Checkpoint.finish r)
        | Trapped _ | Hung -> None)
