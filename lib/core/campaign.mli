(** A fault-injection campaign: [n] independent experiments of one fault
    model on one workload (§III-E).

    Each experiment [i] uses the private generator [Prng.split_at base i],
    so campaigns are deterministic in [(seed, i)] and any experiment can be
    replayed in isolation. *)

type result = {
  workload_name : string;
  spec : Spec.t;
  n : int;
  seed : int64;
  benign : int;
  detected : int;  (** by hardware exception *)
  hang : int;
  no_output : int;
  sdc : int;
  traps : (Vm.Trap.t * int) list;  (** breakdown of [detected] *)
  activation : Stats.Histogram.t;  (** activated flips per experiment *)
  experiments : Experiment.t array;  (** empty unless [keep_experiments] *)
  weighted_sdc : float;
      (** sum of first-injection equivalence-class weights over SDC
          experiments (see {!Injector.injection}) *)
  weighted_total : float;  (** sum of weights over all experiments *)
}

type shard = {
  lo : int;  (** first experiment index of the shard (inclusive) *)
  hi : int;  (** one past the last experiment index (exclusive) *)
  s_benign : int;
  s_detected : int;
  s_hang : int;
  s_no_output : int;
  s_sdc : int;
  s_traps : (Vm.Trap.t * int) list;  (** canonically sorted *)
  s_activation : (int * int) list;  (** key-sorted histogram alist *)
  s_weighted_sdc : float;
  s_weighted_total : float;
  s_experiments : Experiment.t array;  (** empty unless kept *)
}
(** The partial result of experiments [lo..hi-1] of a campaign.  Shards
    are the unit of parallel dispatch ({!Engine}) and of durable storage
    ({!Store}): because experiment [i] always runs on the private
    generator [Prng.split_at base i], a shard's content depends only on
    [(workload, spec, seed, lo, hi)] — never on which worker ran it or
    in what order. *)

type profile = {
  p_exps : int;  (** experiments folded into this profile *)
  p_benign : int;
  p_detected : int;
  p_hang : int;
  p_no_output : int;
  p_sdc : int;
  p_traps : (Vm.Trap.t * int) list;  (** canonically sorted *)
  p_activation : (int * int) list;  (** key-sorted histogram alist *)
  p_weighted_sdc : float;
  p_weighted_total : float;
}
(** Outcome counts of an arbitrary subset of a campaign's experiments —
    the unit the compositional cache stores per function.  Unlike a
    {!shard} it is not tied to a contiguous index range: the incremental
    scheduler partitions the campaign's experiment indices by the
    function owning each experiment's first flip, and a profile holds
    one partition's counts. *)

val run_shard :
  ?keep_experiments:bool ->
  ?spacing:[ `Faulty | `Golden ] ->
  Workload.t -> Spec.t -> seed:int64 -> lo:int -> hi:int -> shard
(** Run experiments [lo..hi-1].  Requires [0 <= lo < hi]. *)

val empty_profile : profile

val run_profile :
  ?spacing:[ `Faulty | `Golden ] ->
  Workload.t -> Spec.t -> seed:int64 -> indices:int array -> profile
(** Run exactly the experiments at [indices] (each on its private
    generator [Prng.split_at base i], as always) and fold their
    outcomes.  Runs the same experiments [run_shard] would, so profiles
    over a partition of [0, n) carry exactly the full campaign's
    counts. *)

val merge_profiles : profile -> profile -> profile
(** Pointwise sum; exact and order-independent (the weighted estimators
    add small integers represented as floats). *)

val result_of_profiles :
  workload_name:string -> Spec.t -> n:int -> seed:int64 -> profile list ->
  result
(** Compose a campaign result from profiles that together cover exactly
    [n] experiments.  Counters, trap breakdowns, activation histograms
    and weighted sums are folded pointwise, so if the profiles partition
    [0, n) the composed result equals [run]'s (minus kept experiments,
    which profiles do not carry).

    @raise Invalid_argument if the profile sizes do not sum to [n]. *)

val equal_profile : profile -> profile -> bool

val merge :
  workload_name:string -> Spec.t -> n:int -> seed:int64 -> shard list ->
  result
(** Reassemble a campaign result from shards.  The shards must tile
    [0, n) exactly (any order); counters are summed, trap breakdowns and
    activation histograms are folded pointwise, and kept experiments are
    concatenated in index order.  All sums are exact (the weighted
    estimators add small integers represented as floats), so the merged
    result is identical whatever the sharding — this is what makes
    engine runs reproducible at any worker count.

    @raise Invalid_argument if the shards leave a gap or overlap. *)

val run :
  ?keep_experiments:bool ->
  ?spacing:[ `Faulty | `Golden ] ->
  Workload.t -> Spec.t -> n:int -> seed:int64 -> result
(** Requires [n > 0].  [?spacing] as in {!Injector.create}.  Equivalent
    to running the single shard [0, n) and merging it. *)

val equal_result : result -> result -> bool
(** Structural equality, including the trap breakdown, the activation
    histogram and (outcome, activated, dyn_count, output) of any kept
    experiments.  Backs the jobs-independence property tests. *)

val sdc_ci : result -> Stats.Proportion.ci
val detection_ci : result -> Stats.Proportion.ci
(** Detected + Hang + No_output, the paper's Detection super-category. *)

val benign_ci : result -> Stats.Proportion.ci
val sdc_pct : result -> float
(** SDC percentage (0..100). *)

val weighted_sdc_pct : result -> float
(** Equivalence-class-weighted SDC percentage.  The paper deliberately
    reports unweighted percentages (§III-A1: the aim is comparing fault
    models, not absolute dependability); the weighted estimator is what
    pre-injection-analysis tools would report, provided for the ablation
    study. *)
