type injection = {
  inj_dyn : int;
  inj_cand : int;
  inj_reg : int;
  inj_ty : Ir.Ty.t;
  inj_slot : int;
  inj_bit : int;
  inj_weight : int;
}

type state = Wait_first of int | Wait_next of int | Done

type t = {
  spec : Spec.t;
  rng : Prng.t;
  forced_first : (int * int * int) option;
  spacing : [ `Faulty | `Golden ];
  mutable state : state;
  mutable cand_seen : int;
  mutable last_target : int; (* scheduled dyn of the previous injection *)
  mutable performed : injection list; (* reversed *)
  mutable n_performed : int;
}

let create ~spec ~candidates ?(spacing = `Faulty) ?first rng =
  if candidates <= 0 then invalid_arg "Injector.create: no candidates";
  let target =
    match first with
    | Some (cand, _, _) ->
        if cand < 0 || cand >= candidates then
          invalid_arg "Injector.create: forced candidate out of range";
        cand
    | None -> Prng.int rng candidates
  in
  {
    spec;
    rng;
    forced_first = first;
    spacing;
    state = Wait_first target;
    cand_seen = 0;
    last_target = -1;
    performed = [];
    n_performed = 0;
  }

let reg_width (frame : Vm.Exec.frame) reg =
  let ty = frame.reg_ty.(reg) in
  if Ir.Ty.is_float ty then 64 else Ir.Ty.width ty

let flip_reg (frame : Vm.Exec.frame) reg bit =
  let ty = frame.reg_ty.(reg) in
  if Ir.Ty.is_float ty then
    frame.flts.(reg) <- Ir.Bits.flip_float ~bit frame.flts.(reg)
  else frame.ints.(reg) <- Ir.Bits.flip ty ~bit frame.ints.(reg)

(* Which register does an injection of this technique target, given the
   instruction metadata?  Read -> one of the source slots; Write -> dst. *)
let choose_target t (meta : Vm.Meta.t) ~forced_slot =
  match t.spec.technique with
  | Technique.Read ->
      let n = Array.length meta.srcs in
      let slot =
        match forced_slot with
        | Some s when s >= 0 && s < n -> s
        | Some _ | None -> if n = 1 then 0 else Prng.int t.rng n
      in
      (meta.srcs.(slot), slot)
  | Technique.Write -> (meta.dst, -1)

(* Equivalence-class weight of an injection (Barbosa et al., the paper's
   §III-A1): for inject-on-read, the number of dynamic instructions the
   register stayed unmodified before this read — every fault arriving in
   that span is equivalent to this one; for inject-on-write the class is
   the write event itself. *)
let weight_of t (frame : Vm.Exec.frame) ~dyn reg =
  match t.spec.technique with
  | Technique.Write -> 1
  | Technique.Read ->
      let lw = frame.last_write.(reg) in
      if lw < 0 then dyn + 1 else max 1 (dyn - lw)

let record t frame ~dyn ~cand ~reg ~ty ~slot ~bit =
  t.performed <-
    {
      inj_dyn = dyn;
      inj_cand = cand;
      inj_reg = reg;
      inj_ty = ty;
      inj_slot = slot;
      inj_bit = bit;
      inj_weight = weight_of t frame ~dyn reg;
    }
    :: t.performed;
  t.n_performed <- t.n_performed + 1

let after_injection t ~dyn =
  if t.n_performed >= t.spec.max_mbf then t.state <- Done
  else begin
    let w = Win.sample t.spec.win t.rng in
    (* `Faulty (the default, and the model of the paper) spaces windows
       from where the previous flip actually landed in the perturbed run;
       `Golden pre-commits the schedule from the first flip onward, as if
       distances were measured on the fault-free trace. *)
    let base =
      match t.spacing with
      | `Faulty -> dyn
      | `Golden -> if t.last_target >= 0 then t.last_target else dyn
    in
    t.last_target <- base + w;
    t.state <- Wait_next (base + w)
  end

let fire_first t ~dyn frame meta =
  let forced_slot, forced_bit =
    match t.forced_first with
    | Some (_, slot, bit) -> (Some slot, Some bit)
    | None -> (None, None)
  in
  let reg, slot = choose_target t meta ~forced_slot in
  let width = reg_width frame reg in
  let win0_multi =
    t.spec.max_mbf > 1 && Win.equal t.spec.win (Fixed 0)
  in
  if win0_multi then begin
    (* All flips at once: distinct bits of the same register operand,
       capped by the register width. *)
    let k = min t.spec.max_mbf width in
    let bits =
      match forced_bit with
      | Some b ->
          let rest =
            Prng.sample_distinct t.rng ~k:(k - 1) ~n:(width - 1)
            |> List.map (fun x -> if x >= b then x + 1 else x)
          in
          b :: rest
      | None -> Prng.sample_distinct t.rng ~k ~n:width
    in
    List.iteri
      (fun i bit ->
        flip_reg frame reg bit;
        record t frame ~dyn
          ~cand:(if i = 0 then t.cand_seen else -1)
          ~reg ~ty:frame.reg_ty.(reg) ~slot ~bit)
      bits;
    t.state <- Done
  end
  else begin
    let bit =
      match forced_bit with Some b -> b | None -> Prng.int t.rng width
    in
    flip_reg frame reg bit;
    record t frame ~dyn ~cand:t.cand_seen ~reg ~ty:frame.reg_ty.(reg) ~slot
      ~bit;
    after_injection t ~dyn
  end

let fire_next t ~dyn frame meta =
  let reg, slot = choose_target t meta ~forced_slot:None in
  let width = reg_width frame reg in
  let bit = Prng.int t.rng width in
  flip_reg frame reg bit;
  record t frame ~dyn ~cand:(-1) ~reg ~ty:frame.reg_ty.(reg) ~slot ~bit;
  after_injection t ~dyn

let on_candidate t ~dyn frame meta =
  match t.state with
  | Done -> ()
  | Wait_first target ->
      if t.cand_seen = target then fire_first t ~dyn frame meta;
      t.cand_seen <- t.cand_seen + 1
  | Wait_next target_dyn -> if dyn >= target_dyn then fire_next t ~dyn frame meta

(* ---- run-until-event schedule (compiled backend) ---- *)

(* Next watched-candidate ordinal the injector must observe, or max_int
   when none is pending on the ordinal axis. *)
let next_cand t = match t.state with Wait_first c -> c | _ -> max_int

(* Next dynamic index of interest, or max_int. *)
let next_dyn t = match t.state with Wait_next d -> d | _ -> max_int

(* Unlike [on_candidate], the compiled loop maintains the candidate
   ordinal itself and only enters the slow path at a scheduled event, so
   [cand_seen] is assigned (not incremented) from the ordinal the loop
   hands us. *)
let on_event t ~dyn ~cand frame meta =
  match t.state with
  | Done -> ()
  | Wait_first target ->
      if cand = target then begin
        t.cand_seen <- cand;
        fire_first t ~dyn frame meta
      end
  | Wait_next target_dyn ->
      if dyn >= target_dyn then fire_next t ~dyn frame meta

let events t : Vm.Code.events =
  let watch =
    match t.spec.technique with
    | Technique.Read -> `Read
    | Technique.Write -> `Write
  in
  let rec ev =
    {
      Vm.Code.watch;
      ev_cand = next_cand t;
      ev_dyn = next_dyn t;
      handle =
        (fun ~dyn ~cand frame meta ->
          on_event t ~dyn ~cand frame meta;
          ev.Vm.Code.ev_cand <- next_cand t;
          ev.Vm.Code.ev_dyn <- next_dyn t);
    }
  in
  ev

let hooks t : Vm.Exec.hooks =
  match t.spec.technique with
  | Technique.Read ->
      {
        pre = (fun ~dyn frame meta -> on_candidate t ~dyn frame meta);
        post = (fun ~dyn:_ _ _ -> ());
      }
  | Technique.Write ->
      {
        pre = (fun ~dyn:_ _ _ -> ());
        post = (fun ~dyn frame meta -> on_candidate t ~dyn frame meta);
      }

(* The first flip's scheduled candidate ordinal — fixed at creation, so
   the checkpoint layer can fast-forward the golden prefix before any
   injector state or randomness is touched. *)
let first_target t = match t.state with Wait_first c -> Some c | _ -> None

let activated t = t.n_performed
let injections t = List.rev t.performed

let first_injection t =
  match List.rev t.performed with [] -> None | first :: _ -> Some first
