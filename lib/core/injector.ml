type injection = {
  inj_domain : Domain.t;
  inj_dyn : int;
  inj_cand : int;
  inj_loc : int;
  inj_ty : Ir.Ty.t;
  inj_slot : int;
  inj_bit : int;
  inj_weight : int;
}

type state = Wait_first of int | Wait_next of int | Done

(* Per-domain target material, attached after creation: the state
   machine (time axis, windows, budget) is domain-independent; only the
   location sampler and flip effector differ. *)
type binding =
  | Unbound
  | Breg
  | Bmem of { addrs : int array; mem : Vm.Memory.t }
  | Bcode of {
      sites : Vm.Codeflip.sites;
      image : Vm.Program.t;
      apply :
        (fidx:int -> bidx:int -> idx:int -> Vm.Codeflip.patch -> unit) option;
    }

type t = {
  spec : Spec.t;
  rng : Prng.t;
  forced_first : (int * int * int) option;
  spacing : [ `Faulty | `Golden ];
  mutable binding : binding;
  mutable state : state;
  mutable cand_seen : int;
  mutable last_target : int; (* scheduled dyn of the previous injection *)
  mutable performed : injection list; (* reversed *)
  mutable n_performed : int;
}

let create ~spec ~candidates ?(spacing = `Faulty) ?first rng =
  if candidates <= 0 then invalid_arg "Injector.create: no candidates";
  let target =
    match first with
    | Some (cand, _, _) ->
        if cand < 0 || cand >= candidates then
          invalid_arg "Injector.create: forced candidate out of range";
        cand
    | None -> Prng.int rng candidates
  in
  {
    spec;
    rng;
    forced_first = first;
    spacing;
    binding =
      (match spec.Spec.domain with Domain.Reg -> Breg | Mem | Code -> Unbound);
    state = Wait_first target;
    cand_seen = 0;
    last_target = -1;
    performed = [];
    n_performed = 0;
  }

let domain t = t.spec.Spec.domain

let bind_mem t ~addrs ~mem =
  (match t.spec.Spec.domain with
  | Domain.Mem -> ()
  | _ -> invalid_arg "Injector.bind_mem: not a Mem-domain injector");
  t.binding <- Bmem { addrs; mem }

let bind_code t ~sites ~image ?apply () =
  (match t.spec.Spec.domain with
  | Domain.Code -> ()
  | _ -> invalid_arg "Injector.bind_code: not a Code-domain injector");
  t.binding <- Bcode { sites; image; apply }

let reg_width (frame : Vm.Exec.frame) reg =
  let ty = frame.reg_ty.(reg) in
  if Ir.Ty.is_float ty then 64 else Ir.Ty.width ty

let flip_reg (frame : Vm.Exec.frame) reg bit =
  let ty = frame.reg_ty.(reg) in
  if Ir.Ty.is_float ty then
    frame.flts.(reg) <- Ir.Bits.flip_float ~bit frame.flts.(reg)
  else frame.ints.(reg) <- Ir.Bits.flip ty ~bit frame.ints.(reg)

(* Which register does an injection of this technique target, given the
   instruction metadata?  Read -> one of the source slots; Write -> dst. *)
let choose_target t (meta : Vm.Meta.t) ~forced_slot =
  match t.spec.technique with
  | Technique.Read ->
      let n = Array.length meta.srcs in
      let slot =
        match forced_slot with
        | Some s when s >= 0 && s < n -> s
        | Some _ | None -> if n = 1 then 0 else Prng.int t.rng n
      in
      (meta.srcs.(slot), slot)
  | Technique.Write -> (meta.dst, -1)

(* Equivalence-class weight of an injection (Barbosa et al., the paper's
   §III-A1): for inject-on-read, the number of dynamic instructions the
   register stayed unmodified before this read — every fault arriving in
   that span is equivalent to this one; for inject-on-write the class is
   the write event itself.  The Mem/Code domains have no per-flip
   register context, so their weight is 1 (each event its own class). *)
let weight_of t (frame : Vm.Exec.frame) ~dyn reg =
  match t.spec.technique with
  | Technique.Write -> 1
  | Technique.Read ->
      let lw = frame.last_write.(reg) in
      if lw < 0 then dyn + 1 else max 1 (dyn - lw)

let record t frame ~dyn ~cand ~reg ~ty ~slot ~bit =
  t.performed <-
    {
      inj_domain = Domain.Reg;
      inj_dyn = dyn;
      inj_cand = cand;
      inj_loc = reg;
      inj_ty = ty;
      inj_slot = slot;
      inj_bit = bit;
      inj_weight = weight_of t frame ~dyn reg;
    }
    :: t.performed;
  t.n_performed <- t.n_performed + 1

(* Mem/Code injection log entry: [loc] is the arena address (Mem) or the
   site ordinal (Code); weight is 1, there is no operand slot. *)
let record_at t ~dyn ~cand ~loc ~ty ~bit =
  t.performed <-
    {
      inj_domain = t.spec.Spec.domain;
      inj_dyn = dyn;
      inj_cand = cand;
      inj_loc = loc;
      inj_ty = ty;
      inj_slot = -1;
      inj_bit = bit;
      inj_weight = 1;
    }
    :: t.performed;
  t.n_performed <- t.n_performed + 1

let after_injection t ~dyn =
  if t.n_performed >= t.spec.max_mbf then t.state <- Done
  else begin
    let w = Win.sample t.spec.win t.rng in
    (* `Faulty (the default, and the model of the paper) spaces windows
       from where the previous flip actually landed in the perturbed run;
       `Golden pre-commits the schedule from the first flip onward, as if
       distances were measured on the fault-free trace. *)
    let base =
      match t.spacing with
      | `Faulty -> dyn
      | `Golden -> if t.last_target >= 0 then t.last_target else dyn
    in
    t.last_target <- base + w;
    t.state <- Wait_next (base + w)
  end

let win0_multi t =
  t.spec.max_mbf > 1 && Win.equal t.spec.win (Fixed 0)

let fire_first t ~dyn frame meta =
  let forced_slot, forced_bit =
    match t.forced_first with
    | Some (_, slot, bit) -> (Some slot, Some bit)
    | None -> (None, None)
  in
  let reg, slot = choose_target t meta ~forced_slot in
  let width = reg_width frame reg in
  if win0_multi t then begin
    (* All flips at once: distinct bits of the same register operand,
       capped by the register width. *)
    let k = min t.spec.max_mbf width in
    let bits =
      match forced_bit with
      | Some b ->
          let rest =
            Prng.sample_distinct t.rng ~k:(k - 1) ~n:(width - 1)
            |> List.map (fun x -> if x >= b then x + 1 else x)
          in
          b :: rest
      | None -> Prng.sample_distinct t.rng ~k ~n:width
    in
    List.iteri
      (fun i bit ->
        flip_reg frame reg bit;
        record t frame ~dyn
          ~cand:(if i = 0 then t.cand_seen else -1)
          ~reg ~ty:frame.reg_ty.(reg) ~slot ~bit)
      bits;
    t.state <- Done
  end
  else begin
    let bit =
      match forced_bit with Some b -> b | None -> Prng.int t.rng width
    in
    flip_reg frame reg bit;
    record t frame ~dyn ~cand:t.cand_seen ~reg ~ty:frame.reg_ty.(reg) ~slot
      ~bit;
    after_injection t ~dyn
  end

let fire_next t ~dyn frame meta =
  let reg, slot = choose_target t meta ~forced_slot:None in
  let width = reg_width frame reg in
  let bit = Prng.int t.rng width in
  flip_reg frame reg bit;
  record t frame ~dyn ~cand:(-1) ~reg ~ty:frame.reg_ty.(reg) ~slot ~bit;
  after_injection t ~dyn

(* ---- Mem / Code effectors ---- *)

(* Flip a uniform bit of a uniform live (mapped) arena byte.  The flip
   marks the page dirty, so undo-tracking working memories restore it
   like any program store. *)
let fire_mem t ~dyn ~first addrs mem =
  let n = Array.length addrs in
  if n = 0 then t.state <- Done
  else begin
    let forced_bit =
      if first then
        match t.forced_first with
        | Some (_, _, b) when b >= 0 && b < 8 -> Some b
        | _ -> None
      else None
    in
    let addr = addrs.(Prng.int t.rng n) in
    if first && win0_multi t then begin
      let k = min t.spec.max_mbf 8 in
      let bits =
        match forced_bit with
        | Some b ->
            let rest =
              Prng.sample_distinct t.rng ~k:(k - 1) ~n:7
              |> List.map (fun x -> if x >= b then x + 1 else x)
            in
            b :: rest
        | None -> Prng.sample_distinct t.rng ~k ~n:8
      in
      List.iteri
        (fun i bit ->
          Vm.Memory.flip_bit mem ~addr ~bit;
          record_at t ~dyn
            ~cand:(if i = 0 then dyn else -1)
            ~loc:addr ~ty:Ir.Ty.I8 ~bit)
        bits;
      t.state <- Done
    end
    else begin
      let bit =
        match forced_bit with Some b -> b | None -> Prng.int t.rng 8
      in
      Vm.Memory.flip_bit mem ~addr ~bit;
      record_at t ~dyn ~cand:(if first then dyn else -1) ~loc:addr
        ~ty:Ir.Ty.I8 ~bit;
      after_injection t ~dyn
    end
  end

(* Flip a uniform bit of the program's flippable-field space.  The
   injection is recorded *before* the flip is applied: an undecodable
   result raises [Trap.Trap Ill_instr] out of the effector (through the
   run loop — the decode-stage detection), and the log must still show
   the flip that killed the run. *)
let fire_code t ~dyn ~first sites image apply =
  let total = Vm.Codeflip.total_bits sites in
  if total = 0 then t.state <- Done
  else begin
    let forced_bit =
      if first then
        match t.forced_first with
        | Some (_, _, b) when b >= 0 && b < total -> Some b
        | _ -> None
      else None
    in
    let g =
      match forced_bit with Some b -> b | None -> Prng.int t.rng total
    in
    let site, sbit = Vm.Codeflip.locate sites g in
    let do_flip ~cand bit =
      record_at t ~dyn ~cand ~loc:site ~ty:Ir.Ty.I64 ~bit;
      let patch = Vm.Codeflip.flip sites image ~site ~bit in
      match apply with
      | Some f ->
          let fidx, bidx, idx = Vm.Codeflip.site_coords sites site in
          f ~fidx ~bidx ~idx patch
      | None -> ()
    in
    if first && win0_multi t then begin
      let sb = Vm.Codeflip.site_bits sites site in
      let k = min t.spec.max_mbf sb in
      let bits =
        sbit
        :: (Prng.sample_distinct t.rng ~k:(k - 1) ~n:(sb - 1)
           |> List.map (fun x -> if x >= sbit then x + 1 else x))
      in
      (* Mark Done before applying: a flip may raise Ill_instr and the
         state machine must not be re-entered by an outer handler. *)
      t.state <- Done;
      List.iteri
        (fun i bit -> do_flip ~cand:(if i = 0 then dyn else -1) bit)
        bits
    end
    else begin
      do_flip ~cand:(if first then dyn else -1) sbit;
      after_injection t ~dyn
    end
  end

let fire_domain t ~dyn ~first =
  match t.binding with
  | Bmem { addrs; mem } -> fire_mem t ~dyn ~first addrs mem
  | Bcode { sites; image; apply } -> fire_code t ~dyn ~first sites image apply
  | Breg -> assert false
  | Unbound ->
      failwith "Injector: Mem/Code domain not bound (bind_mem/bind_code)"

let on_candidate t ~dyn frame meta =
  match t.state with
  | Done -> ()
  | Wait_first target ->
      if t.cand_seen = target then fire_first t ~dyn frame meta;
      t.cand_seen <- t.cand_seen + 1
  | Wait_next target_dyn -> if dyn >= target_dyn then fire_next t ~dyn frame meta

(* Mem/Code time axis: the raw dynamic-instruction stream.  Fires at the
   first instruction whose dynamic index reaches the target — before it
   executes, between dynamic instructions. *)
let on_dyn t ~dyn _frame _meta =
  match t.state with
  | Done -> ()
  | Wait_first target -> if dyn >= target then fire_domain t ~dyn ~first:true
  | Wait_next target -> if dyn >= target then fire_domain t ~dyn ~first:false

(* ---- run-until-event schedule (compiled backend) ---- *)

let is_reg t = Domain.equal t.spec.Spec.domain Domain.Reg

(* Next watched-candidate ordinal the injector must observe, or max_int
   when none is pending on the ordinal axis. *)
let next_cand t =
  match t.state with Wait_first c when is_reg t -> c | _ -> max_int

(* Next dynamic index of interest, or max_int.  For Mem/Code the first
   target lives on the dyn axis too. *)
let next_dyn t =
  match t.state with
  | Wait_next d -> d
  | Wait_first d when not (is_reg t) -> d
  | _ -> max_int

(* Unlike [on_candidate], the compiled loop maintains the candidate
   ordinal itself and only enters the slow path at a scheduled event, so
   [cand_seen] is assigned (not incremented) from the ordinal the loop
   hands us. *)
let on_event t ~dyn ~cand frame meta =
  match t.state with
  | Done -> ()
  | Wait_first target ->
      if cand = target then begin
        t.cand_seen <- cand;
        fire_first t ~dyn frame meta
      end
  | Wait_next target_dyn ->
      if dyn >= target_dyn then fire_next t ~dyn frame meta

let events t : Vm.Code.events =
  match t.spec.Spec.domain with
  | Domain.Reg ->
      let watch =
        match t.spec.technique with
        | Technique.Read -> `Read
        | Technique.Write -> `Write
      in
      let rec ev =
        {
          Vm.Code.watch;
          ev_cand = next_cand t;
          ev_dyn = next_dyn t;
          handle =
            (fun ~dyn ~cand frame meta ->
              on_event t ~dyn ~cand frame meta;
              ev.Vm.Code.ev_cand <- next_cand t;
              ev.Vm.Code.ev_dyn <- next_dyn t);
        }
      in
      ev
  | Mem | Code ->
      let rec ev =
        {
          Vm.Code.watch = `Dyn;
          ev_cand = max_int;
          ev_dyn = next_dyn t;
          handle =
            (fun ~dyn ~cand:_ frame meta ->
              on_dyn t ~dyn frame meta;
              ev.Vm.Code.ev_dyn <- next_dyn t);
        }
      in
      ev

let hooks t : Vm.Exec.hooks =
  match t.spec.Spec.domain with
  | Domain.Mem | Domain.Code ->
      {
        pre = Vm.Exec.no_hook;
        post = Vm.Exec.no_hook;
        at = (fun ~dyn frame meta -> on_dyn t ~dyn frame meta);
      }
  | Domain.Reg -> (
      match t.spec.technique with
      | Technique.Read ->
          {
            pre = (fun ~dyn frame meta -> on_candidate t ~dyn frame meta);
            post = Vm.Exec.no_hook;
            at = Vm.Exec.no_hook;
          }
      | Technique.Write ->
          {
            pre = Vm.Exec.no_hook;
            post = (fun ~dyn frame meta -> on_candidate t ~dyn frame meta);
            at = Vm.Exec.no_hook;
          })

(* The first flip's scheduled target — a candidate ordinal (Reg) or a
   dynamic index (Mem/Code) — fixed at creation, so the checkpoint layer
   can fast-forward the golden prefix before any injector state or
   randomness is touched. *)
let first_target t = match t.state with Wait_first c -> Some c | _ -> None

let activated t = t.n_performed
let injections t = List.rev t.performed

let first_injection t =
  match List.rev t.performed with [] -> None | first :: _ -> Some first
