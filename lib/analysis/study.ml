type t = { runner : Core.Runner.t; workloads : Core.Workload.t list }

let make ?n ?seed ?runner ?programs () =
  let entries =
    match programs with
    | None -> Bench_suite.Registry.all
    | Some names ->
        List.map
          (fun name ->
            match Bench_suite.Registry.find name with
            | Some e -> e
            | None -> invalid_arg ("Study.make: unknown program " ^ name))
          names
  in
  let workloads =
    List.map
      (fun (e : Bench_suite.Desc.t) ->
        Core.Workload.make ~name:e.name ~expected_output:(e.reference ())
          (e.build ()))
      entries
  in
  let runner =
    match runner with
    | Some r -> r
    | None -> Core.Runner.create ?n ?seed ()
  in
  { runner; workloads }

let workload t name =
  match
    List.find_opt (fun (w : Core.Workload.t) -> w.name = name) t.workloads
  with
  | Some w -> w
  | None -> invalid_arg ("Study.workload: unknown program " ^ name)

let names t = List.map (fun (w : Core.Workload.t) -> w.name) t.workloads
