(** Table II analogue: per-program candidate-instruction counts.

    Reports each workload's dynamic instruction count and the number of
    inject-on-read / inject-on-write candidates in the golden run.  The
    paper's structural property — read candidates exceed write candidates
    because stores, branches and outputs have no destination register —
    must hold for every program.

    [pred_reads]/[pred_writes] are the {e static} counts predicted by
    {!Dataflow.Candidates} from the program's CFG weighted by the
    golden-run block profile; they must equal the dynamic counts exactly
    (or are [-1] for programs not in the registry). *)

type row = {
  program : string;
  package : string;
  suite : string;
  dyn_count : int;
  read_cands : int;
  write_cands : int;
  pred_reads : int;
  pred_writes : int;
}

val compute : Study.t -> row list
