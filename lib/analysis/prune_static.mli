(** Static error-space pruning study (the [PS] experiment).

    For every workload, sizes the dynamic single-bit error space the
    injector samples from and how much of it {!Dataflow.Prune} discharges
    without a faulty run — either provably benign (the flipped bit is
    dead) or redundant (the experiment replays another site's outcome).

    The classifier is then validated dynamically: injections are forced
    at sampled provably-benign sites with {!Core.Experiment.run_at} and
    every outcome must be [Benign].  A nonzero [misclassified] count is a
    soundness bug in the bit-width analysis. *)

type row = {
  program : string;
  summary : Dataflow.Prune.summary;
  read_checked : int;
      (** injections forced at provably-benign inject-on-read sites *)
  write_checked : int;  (** same, inject-on-write *)
  misclassified : int;
      (** of those, outcomes that were not [Benign] — must be 0 *)
}

val pruned_fraction : Dataflow.Prune.summary -> float
(** Pruned share of the combined read+write error space. *)

val read_fraction : Dataflow.Prune.summary -> float
val write_fraction : Dataflow.Prune.summary -> float

val compute : ?validate_n:int -> ?seed:int64 -> Study.t -> row list
(** [validate_n] (default 40) injections per technique per program are
    forced at sampled benign sites, skipping techniques with no benign
    site.  Deterministic in [seed]. *)
