type row = {
  program : string;
  summary : Dataflow.Prune.summary;
  read_checked : int;
  write_checked : int;
  misclassified : int;
}

let pruned_fraction (s : Dataflow.Prune.summary) =
  Dataflow.Prune.benign_fraction
    ~total:(s.read_total + s.write_total)
    ~benign:(s.read_benign + s.read_redundant + s.write_benign + s.write_redundant)

let read_fraction (s : Dataflow.Prune.summary) =
  Dataflow.Prune.benign_fraction ~total:s.read_total
    ~benign:(s.read_benign + s.read_redundant)

let write_fraction (s : Dataflow.Prune.summary) =
  Dataflow.Prune.benign_fraction ~total:s.write_total
    ~benign:(s.write_benign + s.write_redundant)

(* Replay the golden run once, recording the per-candidate static
   identities; candidate ordinal [i] of the stream is exactly the [i]-th
   pre-hook (read) or post-hook (write) event, matching the ordinal
   [Injector] counts when forcing a first injection. *)
let collect_metas (w : Core.Workload.t) =
  let reads = ref [] and writes = ref [] in
  let hooks =
    {
      Vm.Exec.pre = (fun ~dyn:_ _ m -> reads := m :: !reads);
      post = (fun ~dyn:_ _ m -> writes := m :: !writes);
      at = Vm.Exec.no_hook;
    }
  in
  ignore (Vm.Exec.run ~hooks ~budget:w.budget w.prog);
  (Array.of_list (List.rev !reads), Array.of_list (List.rev !writes))

(* A dynamic fault site with at least one provably-benign bit. *)
type site = { ordinal : int; slot : int; ty : Ir.Ty.t; demand : int }

let read_pool prunes (reg_tys : Ir.Ty.t array array) metas =
  let pool = ref [] in
  Array.iteri
    (fun i (m : Vm.Meta.t) ->
      Array.iteri
        (fun slot reg ->
          let ty = reg_tys.(m.fidx).(reg) in
          let demand =
            Dataflow.Prune.read_demand prunes.(m.fidx) ~bidx:m.bidx
              ~idx:m.idx ~reg
          in
          if Dataflow.Prune.benign_bits ty ~demand > 0 then
            pool := { ordinal = i; slot; ty; demand } :: !pool)
        m.srcs)
    metas;
  Array.of_list (List.rev !pool)

let write_pool prunes (reg_tys : Ir.Ty.t array array) metas =
  let pool = ref [] in
  Array.iteri
    (fun i (m : Vm.Meta.t) ->
      let ty = reg_tys.(m.fidx).(m.dst) in
      let demand =
        Dataflow.Prune.write_demand prunes.(m.fidx) ~bidx:m.bidx ~idx:m.idx
      in
      if Dataflow.Prune.benign_bits ty ~demand > 0 then
        pool := { ordinal = i; slot = -1; ty; demand } :: !pool)
    metas;
  Array.of_list (List.rev !pool)

let sample_benign_bit rng ty demand =
  let w = Dataflow.Prune.flip_width ty in
  let rec go () =
    let bit = Prng.int rng w in
    if Dataflow.Prune.is_benign ty ~demand ~bit then bit else go ()
  in
  go ()

let validate w pool tech ~n rng =
  if Array.length pool = 0 then (0, 0)
  else begin
    let bad = ref 0 in
    for k = 0 to n - 1 do
      let s = Prng.pick rng pool in
      let bit = sample_benign_bit rng s.ty s.demand in
      let e =
        Core.Experiment.run_at w (Core.Spec.single tech)
          ~first:(s.ordinal, s.slot, bit)
          (Prng.split_at rng k)
      in
      if e.outcome <> Core.Outcome.Benign then incr bad
    done;
    (n, !bad)
  end

let compute ?(validate_n = 40) ?(seed = 0x5EED_0BADL) (study : Study.t) =
  List.mapi
    (fun i (w : Core.Workload.t) ->
      let m =
        match Bench_suite.Registry.find w.name with
        | Some e -> e.build ()
        | None ->
            invalid_arg
              (Printf.sprintf "Prune_static: %s is not a registry program"
                 w.name)
      in
      let summary = Dataflow.Prune.summarise m ~profile:w.profile in
      let prunes =
        Array.of_list (List.map Dataflow.Prune.analyse m.m_funcs)
      in
      let reg_tys =
        Array.of_list
          (List.map (fun (f : Ir.Func.t) -> f.f_reg_ty) m.m_funcs)
      in
      let read_metas, write_metas = collect_metas w in
      let rng = Prng.split_at (Prng.of_seed seed) i in
      let read_checked, bad_r =
        validate w
          (read_pool prunes reg_tys read_metas)
          Core.Technique.Read ~n:validate_n (Prng.split_at rng 0)
      in
      let write_checked, bad_w =
        validate w
          (write_pool prunes reg_tys write_metas)
          Core.Technique.Write ~n:validate_n (Prng.split_at rng 1)
      in
      {
        program = w.name;
        summary;
        read_checked;
        write_checked;
        misclassified = bad_r + bad_w;
      })
    study.workloads
