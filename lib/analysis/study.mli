(** Study context: the 15 workloads plus a memoising campaign runner.

    Every figure/table analysis takes a [Study.t], so a bench or test can
    scale the per-campaign experiment count without touching the
    analyses. *)

type t = { runner : Core.Runner.t; workloads : Core.Workload.t list }

val make :
  ?n:int -> ?seed:int64 -> ?runner:Core.Runner.t -> ?programs:string list ->
  unit -> t
(** Build workloads for the named programs (default: all 15), asserting
    each golden run matches its native reference.  [n] is the per-campaign
    experiment count (default 200).  [runner] substitutes a pre-built
    campaign runner — how the bench harness and CLI plug in the parallel,
    store-backed engine ([Engine.runner]) without this library depending
    on it; when given, [n] and [seed] are ignored in its favour. *)

val workload : t -> string -> Core.Workload.t
(** @raise Invalid_argument on unknown name. *)

val names : t -> string list
