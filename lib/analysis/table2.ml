type row = {
  program : string;
  package : string;
  suite : string;
  dyn_count : int;
  read_cands : int;
  write_cands : int;
  pred_reads : int;
  pred_writes : int;
}

let compute (study : Study.t) =
  List.map
    (fun (w : Core.Workload.t) ->
      let pred =
        (* The workload's compiled code already carries per-block site
           tables; no need to rebuild and re-walk the IR. *)
        Dataflow.Candidates.predict_sites
          ~reads:(Vm.Code.site_reads w.code)
          ~writes:(Vm.Code.site_writes w.code)
          ~profile:w.profile
      in
      let package, suite =
        match Bench_suite.Registry.find w.name with
        | Some e -> (e.package, e.suite)
        | None -> ("?", "?")
      in
      {
        program = w.name;
        package;
        suite;
        dyn_count = w.golden.dyn_count;
        read_cands = w.golden.read_cands;
        write_cands = w.golden.write_cands;
        pred_reads = pred.reads;
        pred_writes = pred.writes;
      })
    study.workloads
