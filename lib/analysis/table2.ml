type row = {
  program : string;
  package : string;
  suite : string;
  dyn_count : int;
  read_cands : int;
  write_cands : int;
  pred_reads : int;
  pred_writes : int;
}

let compute (study : Study.t) =
  List.map
    (fun (w : Core.Workload.t) ->
      let package, suite, pred =
        match Bench_suite.Registry.find w.name with
        | Some e ->
            let p =
              Dataflow.Candidates.predict (e.build ()) ~profile:w.profile
            in
            (e.package, e.suite, Some p)
        | None -> ("?", "?", None)
      in
      {
        program = w.name;
        package;
        suite;
        dyn_count = w.golden.dyn_count;
        read_cands = w.golden.read_cands;
        write_cands = w.golden.write_cands;
        pred_reads = (match pred with Some p -> p.reads | None -> -1);
        pred_writes = (match pred with Some p -> p.writes | None -> -1);
      })
    study.workloads
