(* A deliberately small JSON codec for the result store.

   The store needs exactly one property beyond round-tripping: a parsed
   value must reserialise to the very byte string it was parsed from, so
   that record checksums can be recomputed from the parsed tree.  The
   writer therefore has one canonical rendering per value (no whitespace,
   "%.17g" numbers) and the reader maps canonical text back to the same
   tree. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr x =
  (* %.17g round-trips every finite double; integral values print without
     a point ("123"), which is also how the reader re-renders the Int it
     parses them as — the checksum stays stable either way. *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float x -> Buffer.add_string b (float_repr x)
  | Str s -> escape_string b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'u' ->
               if !pos + 4 >= n then fail "short \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 0x80 ->
                   Buffer.add_char b (Char.chr code)
               | Some _ -> Buffer.add_char b '?'
               | None -> fail "bad \\u escape");
               pos := !pos + 5
           | _ -> fail "bad escape");
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if is_float then
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some x -> Float x
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* Accessors; all total, returning options. *)

let mem key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
