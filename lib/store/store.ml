(* Append-only, checksummed, segmented result store.

   Layout: a directory of `seg-NNNNNN.jsonl` files.  Each line is one
   record `{"c":"<md5>","k":KEY,"v":VALUE}` where the checksum is the md5
   of the canonical serialisation of `{"k":KEY,"v":VALUE}`.  Appends go to
   the highest-numbered segment and are flushed record-by-record, so a
   killed run loses at most the record being written — which the loader
   recognises as a truncated tail and drops.  Compaction (gc) writes the
   live records to a fresh segment under a temporary name, fsyncs it, and
   renames it into place before unlinking the old segments; rename is the
   atomic commit point. *)

module Jsonx = Jsonx

type key = {
  program : string;
  digest : string;  (* md5 hex of the printed IR *)
  technique : string;
  max_mbf : int;
  win : string;
  domain : string;  (* fault domain; "reg" for stores written before
                       domains existed *)
  n : int;
  seed : int64;
  lo : int;
  hi : int;
}

let key ~program ~digest ~(spec : Core.Spec.t) ~n ~seed ~lo ~hi =
  {
    program;
    digest;
    technique = Core.Technique.to_string spec.technique;
    max_mbf = spec.max_mbf;
    win = Core.Win.to_string spec.win;
    domain = Core.Domain.to_string spec.domain;
    n;
    seed;
    lo;
    hi;
  }

(* The "dom" member is omitted for the register domain: the canonical
   key serialisation doubles as the index key, so emitting it would
   orphan every record written before fault domains existed.  Readers
   default a missing "dom" to "reg". *)
let key_json k =
  let open Jsonx in
  Obj
    ([
       ("p", Str k.program);
       ("d", Str k.digest);
       ("t", Str k.technique);
       ("m", Int k.max_mbf);
       ("w", Str k.win);
       ("n", Int k.n);
       ("s", Str (Int64.to_string k.seed));
       ("lo", Int k.lo);
       ("hi", Int k.hi);
     ]
    @ if String.equal k.domain "reg" then [] else [ ("dom", Str k.domain) ])

type pkey = {
  pk_program : string;
  pk_func : string;
  pk_fdigest : string;  (* identity digest of the function *)
  pk_env : string;  (* environment digest of the module *)
  pk_technique : string;
  pk_max_mbf : int;
  pk_win : string;
  pk_domain : string;
  pk_n : int;
  pk_seed : int64;
}

let profile_key ~program ~func ~fdigest ~env ~(spec : Core.Spec.t) ~n ~seed =
  {
    pk_program = program;
    pk_func = func;
    pk_fdigest = fdigest;
    pk_env = env;
    pk_technique = Core.Technique.to_string spec.technique;
    pk_max_mbf = spec.max_mbf;
    pk_win = Core.Win.to_string spec.win;
    pk_domain = Core.Domain.to_string spec.domain;
    pk_n = n;
    pk_seed = seed;
  }

(* The leading "r" discriminator keeps profile keys disjoint from shard
   keys; shard keys stay exactly as they always were, so stores written
   before profiles existed load unchanged. *)
let pkey_json k =
  let open Jsonx in
  Obj
    ([
       ("r", Str "prof");
       ("p", Str k.pk_program);
       ("f", Str k.pk_func);
       ("fd", Str k.pk_fdigest);
       ("e", Str k.pk_env);
       ("t", Str k.pk_technique);
       ("m", Int k.pk_max_mbf);
       ("w", Str k.pk_win);
       ("n", Int k.pk_n);
       ("s", Str (Int64.to_string k.pk_seed));
     ]
    @
    if String.equal k.pk_domain "reg" then []
    else [ ("dom", Str k.pk_domain) ])

let pkey_of_json j =
  let open Jsonx in
  let ( let* ) = Option.bind in
  let* p = Option.bind (mem "p" j) to_str in
  let* f = Option.bind (mem "f" j) to_str in
  let* fd = Option.bind (mem "fd" j) to_str in
  let* e = Option.bind (mem "e" j) to_str in
  let* t = Option.bind (mem "t" j) to_str in
  let* m = Option.bind (mem "m" j) to_int in
  let* w = Option.bind (mem "w" j) to_str in
  let* n = Option.bind (mem "n" j) to_int in
  let* s = Option.bind (mem "s" j) to_str in
  let* seed = Int64.of_string_opt s in
  let dom =
    match Option.bind (mem "dom" j) to_str with Some d -> d | None -> "reg"
  in
  Some
    {
      pk_program = p;
      pk_func = f;
      pk_fdigest = fd;
      pk_env = e;
      pk_technique = t;
      pk_max_mbf = m;
      pk_win = w;
      pk_domain = dom;
      pk_n = n;
      pk_seed = seed;
    }

let key_of_json j =
  let open Jsonx in
  let ( let* ) = Option.bind in
  let* p = Option.bind (mem "p" j) to_str in
  let* d = Option.bind (mem "d" j) to_str in
  let* t = Option.bind (mem "t" j) to_str in
  let* m = Option.bind (mem "m" j) to_int in
  let* w = Option.bind (mem "w" j) to_str in
  let* n = Option.bind (mem "n" j) to_int in
  let* s = Option.bind (mem "s" j) to_str in
  let* seed = Int64.of_string_opt s in
  let* lo = Option.bind (mem "lo" j) to_int in
  let* hi = Option.bind (mem "hi" j) to_int in
  let dom =
    match Option.bind (mem "dom" j) to_str with Some d -> d | None -> "reg"
  in
  Some
    { program = p; digest = d; technique = t; max_mbf = m; win = w;
      domain = dom; n; seed; lo; hi }

let shard_json (s : Core.Campaign.shard) =
  Jsonx.Obj
    [
      ("b", Int s.s_benign);
      ("det", Int s.s_detected);
      ("h", Int s.s_hang);
      ("no", Int s.s_no_output);
      ("sdc", Int s.s_sdc);
      ( "traps",
        Arr
          (List.map
             (fun (t, c) ->
               Jsonx.Arr [ Str (Vm.Trap.to_string t); Int c ])
             s.s_traps) );
      ( "act",
        Arr
          (List.map (fun (k, c) -> Jsonx.Arr [ Int k; Int c ]) s.s_activation)
      );
      ("ws", Float s.s_weighted_sdc);
      ("wt", Float s.s_weighted_total);
    ]

let shard_of_json ~lo ~hi j : Core.Campaign.shard option =
  let open Jsonx in
  let ( let* ) = Option.bind in
  let* b = Option.bind (mem "b" j) to_int in
  let* det = Option.bind (mem "det" j) to_int in
  let* h = Option.bind (mem "h" j) to_int in
  let* no = Option.bind (mem "no" j) to_int in
  let* sdc = Option.bind (mem "sdc" j) to_int in
  let* traps_j = Option.bind (mem "traps" j) to_list in
  let* act_j = Option.bind (mem "act" j) to_list in
  let* ws = Option.bind (mem "ws" j) to_float in
  let* wt = Option.bind (mem "wt" j) to_float in
  let* traps =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Arr [ Str name; Int c ] ->
            let* trap = Vm.Trap.of_string name in
            Some ((trap, c) :: acc)
        | _ -> None)
      (Some []) traps_j
  in
  let* act =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Arr [ Int k; Int c ] -> Some ((k, c) :: acc)
        | _ -> None)
      (Some []) act_j
  in
  Some
    {
      Core.Campaign.lo;
      hi;
      s_benign = b;
      s_detected = det;
      s_hang = h;
      s_no_output = no;
      s_sdc = sdc;
      s_traps = List.rev traps;
      s_activation = List.rev act;
      s_weighted_sdc = ws;
      s_weighted_total = wt;
      s_experiments = [||];
    }

let profile_json (p : Core.Campaign.profile) =
  Jsonx.Obj
    [
      ("e", Int p.p_exps);
      ("b", Int p.p_benign);
      ("det", Int p.p_detected);
      ("h", Int p.p_hang);
      ("no", Int p.p_no_output);
      ("sdc", Int p.p_sdc);
      ( "traps",
        Arr
          (List.map
             (fun (t, c) ->
               Jsonx.Arr [ Str (Vm.Trap.to_string t); Int c ])
             p.p_traps) );
      ( "act",
        Arr
          (List.map (fun (k, c) -> Jsonx.Arr [ Int k; Int c ]) p.p_activation)
      );
      ("ws", Float p.p_weighted_sdc);
      ("wt", Float p.p_weighted_total);
    ]

let profile_of_json j : Core.Campaign.profile option =
  let open Jsonx in
  let ( let* ) = Option.bind in
  let* e = Option.bind (mem "e" j) to_int in
  let* b = Option.bind (mem "b" j) to_int in
  let* det = Option.bind (mem "det" j) to_int in
  let* h = Option.bind (mem "h" j) to_int in
  let* no = Option.bind (mem "no" j) to_int in
  let* sdc = Option.bind (mem "sdc" j) to_int in
  let* traps_j = Option.bind (mem "traps" j) to_list in
  let* act_j = Option.bind (mem "act" j) to_list in
  let* ws = Option.bind (mem "ws" j) to_float in
  let* wt = Option.bind (mem "wt" j) to_float in
  let* traps =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Arr [ Str name; Int c ] ->
            let* trap = Vm.Trap.of_string name in
            Some ((trap, c) :: acc)
        | _ -> None)
      (Some []) traps_j
  in
  let* act =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Arr [ Int k; Int c ] -> Some ((k, c) :: acc)
        | _ -> None)
      (Some []) act_j
  in
  Some
    {
      Core.Campaign.p_exps = e;
      p_benign = b;
      p_detected = det;
      p_hang = h;
      p_no_output = no;
      p_sdc = sdc;
      p_traps = List.rev traps;
      p_activation = List.rev act;
      p_weighted_sdc = ws;
      p_weighted_total = wt;
    }

type record =
  | Shard of key * Core.Campaign.shard
  | Profile of pkey * Core.Campaign.profile

let record_key_json = function
  | Shard (k, _) -> key_json k
  | Profile (k, _) -> pkey_json k

let record_value_json = function
  | Shard (_, s) -> shard_json s
  | Profile (_, p) -> profile_json p

let record_line_of r =
  let payload =
    Jsonx.to_string
      (Obj [ ("k", record_key_json r); ("v", record_value_json r) ])
  in
  let sum = Digest.to_hex (Digest.string payload) in
  Printf.sprintf "{\"c\":\"%s\",%s" sum
    (String.sub payload 1 (String.length payload - 1))

(* Decode one line; distinguishes a well-formed record from damage. *)
let decode_line line : (record, [ `Damaged ]) result =
  match Jsonx.of_string line with
  | Error _ -> Error `Damaged
  | Ok j -> (
      let open Jsonx in
      match (mem "c" j, mem "k" j, mem "v" j) with
      | Some (Str sum), Some kj, Some vj -> (
          let payload = to_string (Obj [ ("k", kj); ("v", vj) ]) in
          if not (String.equal sum (Digest.to_hex (Digest.string payload)))
          then Error `Damaged
          else
            match mem "r" kj with
            | Some (Str "prof") -> (
                match (pkey_of_json kj, profile_of_json vj) with
                | Some k, Some p -> Ok (Profile (k, p))
                | _ -> Error `Damaged)
            | Some _ -> Error `Damaged
            | None -> (
                match key_of_json kj with
                | None -> Error `Damaged
                | Some k -> (
                    match shard_of_json ~lo:k.lo ~hi:k.hi vj with
                    | Some shard -> Ok (Shard (k, shard))
                    | None -> Error `Damaged)))
      | _ -> Error `Damaged)

type stats = {
  records : int;
  segments : int;
  bytes : int;
  truncated : int;  (** incomplete tail records dropped at open *)
  corrupt : int;  (** checksum/shape-rejected records dropped at open *)
}

type gc_report = {
  live_records : int;
  dropped_duplicates : int;
  segments_before : int;
  segments_after : int;
  bytes_before : int;
  bytes_after : int;
}

let m_appends = Obs.Metrics.counter "onebit_store_appends_total"
let m_rotations = Obs.Metrics.counter "onebit_store_rotations_total"
let m_lookup_hits = Obs.Metrics.counter "onebit_store_lookup_hits_total"
let m_lookup_misses = Obs.Metrics.counter "onebit_store_lookup_misses_total"
let m_truncated = Obs.Metrics.counter "onebit_store_truncated_records_total"
let m_corrupt = Obs.Metrics.counter "onebit_store_corrupt_records_total"
let m_fsync = Obs.Metrics.histogram "onebit_store_fsync_seconds"

exception Busy of int list

type t = {
  dir : string;
  segment_bytes : int;
  fsync : bool;
  index : (string, record) Hashtbl.t;
  lock : Mutex.t;
  lock_fd : Unix.file_descr;  (* <dir>/.lock, advisory inter-process lock *)
  mutable active : int;
  mutable chan : out_channel;
  mutable active_bytes : int;
  mutable segment_list : int list;  (* ascending segment numbers *)
  mutable truncated : int;
  mutable corrupt : int;
  mutable duplicates : int;  (* records shadowed by a later same-key record *)
  mutable lease_count : int;  (* live writer registrations by this handle *)
}

let segment_name i = Printf.sprintf "seg-%06d.jsonl" i
let segment_path t i = Filename.concat t.dir (segment_name i)

let parse_segment_name name =
  if
    String.length name = 16
    && String.sub name 0 4 = "seg-"
    && Filename.check_suffix name ".jsonl"
  then int_of_string_opt (String.sub name 4 6)
  else None

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map parse_segment_name
  |> List.sort compare

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let canonical_key k = Jsonx.to_string (key_json k)
let canonical_pkey k = Jsonx.to_string (pkey_json k)

let canonical_record = function
  | Shard (k, _) -> canonical_key k
  | Profile (k, _) -> canonical_pkey k

let load_segment t ~is_last path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  let len = String.length text in
  let ends_with_newline = len > 0 && text.[len - 1] = '\n' in
  let lines = String.split_on_char '\n' text in
  (* split_on_char leaves a trailing "" when the text ends with '\n'. *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let total = List.length lines in
  List.iteri
    (fun i line ->
      if String.length line > 0 then
        match decode_line line with
        | Ok r ->
            let ck = canonical_record r in
            if Hashtbl.mem t.index ck then t.duplicates <- t.duplicates + 1;
            Hashtbl.replace t.index ck r
        | Error `Damaged ->
            (* An unterminated final line of the newest segment is the
               signature of a run killed mid-append; anything else is
               corruption. *)
            if is_last && i = total - 1 && not ends_with_newline then begin
              t.truncated <- t.truncated + 1;
              Obs.Metrics.incr m_truncated
            end
            else begin
              t.corrupt <- t.corrupt + 1;
              Obs.Metrics.incr m_corrupt
            end)
    lines

let file_size path = (Unix.stat path).Unix.st_size

let open_dir ?(segment_bytes = 8 * 1024 * 1024) ?(fsync = false) dir =
  mkdir_p dir;
  let lock_fd =
    Unix.openfile (Filename.concat dir ".lock")
      [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  let segments = list_segments dir in
  let t =
    {
      dir;
      segment_bytes;
      fsync;
      index = Hashtbl.create 1024;
      lock = Mutex.create ();
      lock_fd;
      active = (match List.rev segments with s :: _ -> s | [] -> 1);
      chan = stdout (* replaced below *);
      active_bytes = 0;
      segment_list = (match segments with [] -> [ 1 ] | l -> l);
      truncated = 0;
      corrupt = 0;
      duplicates = 0;
      lease_count = 0;
    }
  in
  let last = List.length segments - 1 in
  List.iteri
    (fun i s ->
      load_segment t ~is_last:(i = last) (segment_path t s))
    segments;
  let active_path = segment_path t t.active in
  t.chan <-
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 active_path;
  t.active_bytes <- file_size active_path;
  t

let flush_chan t =
  flush t.chan;
  if t.fsync then
    if Obs.Metrics.enabled () then begin
      let t0 = Unix.gettimeofday () in
      Unix.fsync (Unix.descr_of_out_channel t.chan);
      Obs.Metrics.observe m_fsync (Unix.gettimeofday () -. t0)
    end
    else Unix.fsync (Unix.descr_of_out_channel t.chan)

(* Advisory inter-process exclusion around segment mutation (appends and
   the gc rewrite).  Intra-process exclusion is [t.lock]; this extends it
   to separate processes sharing the directory, so two writers cannot
   interleave partial lines and an append cannot race a gc rename.  The
   lock is fcntl-style ([Unix.lockf]) on a dedicated [.lock] file, so
   closing segment files never drops it. *)
let with_file_lock t f =
  ignore (Unix.lseek t.lock_fd 0 Unix.SEEK_SET);
  Unix.lockf t.lock_fd Unix.F_LOCK 0;
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.lseek t.lock_fd 0 Unix.SEEK_SET);
      try Unix.lockf t.lock_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
    f

(* ---- writer leases ----

   A lease marks this process as a live writer of the store: a
   [lease-<pid>] marker file that [gc] (possibly run from another
   process) refuses to compact over.  Lease files from dead processes are
   stale and swept on inspection, so a SIGKILLed writer never wedges the
   store. *)

let leases_dir t = Filename.concat t.dir "leases"
let lease_path t pid = Filename.concat (leases_dir t) (Printf.sprintf "lease-%d" pid)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) ->
      (* EPERM etc.: the process exists but is not ours. *)
      true

let live_leases t =
  match Sys.readdir (leases_dir t) with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             match String.length name > 6 && String.sub name 0 6 = "lease-" with
             | false -> None
             | true -> (
                 match
                   int_of_string_opt
                     (String.sub name 6 (String.length name - 6))
                 with
                 | Some pid when pid_alive pid -> Some pid
                 | Some pid ->
                     (* Stale marker from a dead writer: sweep it. *)
                     (try Sys.remove (lease_path t pid) with Sys_error _ -> ());
                     None
                 | None -> None))
      |> List.sort_uniq compare

let lease t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.lease_count = 0 then begin
        mkdir_p (leases_dir t);
        let path = lease_path t (Unix.getpid ()) in
        Out_channel.with_open_bin path (fun oc ->
            output_string oc (string_of_int (Unix.getpid ()));
            output_char oc '\n')
      end;
      t.lease_count <- t.lease_count + 1)

let release_lease t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.lease_count > 0 then begin
        t.lease_count <- t.lease_count - 1;
        if t.lease_count = 0 then
          try Sys.remove (lease_path t (Unix.getpid ()))
          with Sys_error _ -> ()
      end)

let rotate_locked t =
  flush_chan t;
  Obs.Metrics.incr m_rotations;
  close_out t.chan;
  t.active <- t.active + 1;
  t.segment_list <- t.segment_list @ [ t.active ];
  t.chan <-
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644 (segment_path t t.active);
  t.active_bytes <- 0

let add_record t r =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let ck = canonical_record r in
      if not (Hashtbl.mem t.index ck) then begin
        let line = record_line_of r in
        if
          t.active_bytes > 0
          && t.active_bytes + String.length line + 1 > t.segment_bytes
        then rotate_locked t;
        (* The file lock spans buffer-fill to flush so the appended line
           reaches the segment as one unit even when another process
           shares the directory. *)
        with_file_lock t (fun () ->
            output_string t.chan line;
            output_char t.chan '\n';
            flush_chan t);
        Obs.Metrics.incr m_appends;
        t.active_bytes <- t.active_bytes + String.length line + 1;
        Hashtbl.replace t.index ck r
      end)

let add t k shard =
  add_record t
    (Shard (k, { shard with Core.Campaign.s_experiments = [||] }))

let add_profile t k profile = add_record t (Profile (k, profile))

let lookup_record t ck =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let hit = Hashtbl.find_opt t.index ck in
      Obs.Metrics.incr
        (match hit with Some _ -> m_lookup_hits | None -> m_lookup_misses);
      hit)

let lookup t k =
  match lookup_record t (canonical_key k) with
  | Some (Shard (_, s)) -> Some s
  | Some (Profile _) | None -> None

let lookup_profile t k =
  match lookup_record t (canonical_pkey k) with
  | Some (Profile (_, p)) -> Some p
  | Some (Shard _) | None -> None

let fold t f acc =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      Hashtbl.fold
        (fun _ r acc ->
          match r with Shard (k, shard) -> f k shard acc | Profile _ -> acc)
        t.index acc)

let fold_profiles t f acc =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      Hashtbl.fold
        (fun _ r acc ->
          match r with Profile (k, p) -> f k p acc | Shard _ -> acc)
        t.index acc)

let stats t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      flush t.chan;
      let bytes =
        List.fold_left
          (fun acc s ->
            let p = segment_path t s in
            acc + (if Sys.file_exists p then file_size p else 0))
          0 t.segment_list
      in
      {
        records = Hashtbl.length t.index;
        segments = List.length t.segment_list;
        bytes;
        truncated = t.truncated;
        corrupt = t.corrupt;
      })

let gc t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (* Compacting renames segments out from under concurrent appenders;
         refuse while any *other* live process has registered as a writer
         (our own lease cannot deadlock us: this handle holds [t.lock]). *)
      let foreign =
        List.filter (fun pid -> pid <> Unix.getpid ()) (live_leases t)
      in
      if foreign <> [] then raise (Busy foreign);
      with_file_lock t @@ fun () ->
      flush t.chan;
      let bytes_before =
        List.fold_left
          (fun acc s ->
            let p = segment_path t s in
            acc + (if Sys.file_exists p then file_size p else 0))
          0 t.segment_list
      in
      let segments_before = List.length t.segment_list in
      let old_segments = t.segment_list in
      close_out t.chan;
      let fresh = t.active + 1 in
      let final_path = segment_path t fresh in
      let tmp_path = final_path ^ ".tmp" in
      let oc = open_out_bin tmp_path in
      let live =
        Hashtbl.fold (fun ck r acc -> (ck, r) :: acc) t.index []
        |> List.sort (fun ((a : string), _) (b, _) -> compare a b)
      in
      List.iter
        (fun (_, r) ->
          output_string oc (record_line_of r);
          output_char oc '\n')
        live;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc);
      close_out oc;
      Sys.rename tmp_path final_path;
      List.iter
        (fun s ->
          let p = segment_path t s in
          if Sys.file_exists p then Sys.remove p)
        old_segments;
      t.active <- fresh;
      t.segment_list <- [ fresh ];
      t.chan <-
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 final_path;
      t.active_bytes <- file_size final_path;
      let dropped = t.duplicates in
      t.duplicates <- 0;
      {
        live_records = List.length live;
        dropped_duplicates = dropped;
        segments_before;
        segments_after = 1;
        bytes_before;
        bytes_after = t.active_bytes;
      })

let close t =
  while t.lease_count > 0 do
    release_lease t
  done;
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      flush t.chan;
      (try Unix.fsync (Unix.descr_of_out_channel t.chan)
       with Unix.Unix_error _ -> ());
      close_out t.chan;
      try Unix.close t.lock_fd with Unix.Unix_error _ -> ())

let dir t = t.dir
