(** Minimal JSON codec with a canonical rendering.

    The store checksums each record over its serialised form, so the one
    property this codec guarantees beyond round-tripping is that
    [to_string] of a parsed canonical document reproduces the input bytes
    exactly (no whitespace, ["%.17g"] numbers, integral floats printed as
    integers). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val of_string : string -> (t, string) result

val mem : string -> t -> t option
(** Object field lookup. *)

val to_int : t -> int option
val to_float : t -> float option
(** Also accepts [Int] (integral floats render without a point). *)

val to_str : t -> string option
val to_list : t -> t list option
