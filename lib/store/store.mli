(** Crash-tolerant, append-only campaign result store.

    Results are stored at shard granularity, keyed by (program, IR digest,
    spec, n, seed, shard range), as checksummed JSONL records in numbered
    segment files.  Appends are flushed record-by-record so a killed run
    loses at most the record being written; the loader drops an
    unterminated tail record and rejects any record whose checksum or
    shape is wrong.  Compaction rewrites the live records into a fresh
    segment with an atomic rename.

    The store is safe to share between the engine's worker domains: all
    operations take an internal lock. *)

module Jsonx : module type of Jsonx
(** The canonical JSON codec used for records (re-exported for tests). *)

type t

type key = {
  program : string;
  digest : string;  (** md5 hex of the printed IR ({!Core.Workload.digest}) *)
  technique : string;
  max_mbf : int;
  win : string;
  domain : string;
      (** fault domain ({!Core.Domain.to_string}); serialised as an
          optional trailing "dom" member omitted for ["reg"], so stores
          written before fault domains existed load (and index) as
          register-domain records unchanged *)
  n : int;  (** campaign size the shard belongs to *)
  seed : int64;
  lo : int;
  hi : int;
}

val key :
  program:string ->
  digest:string ->
  spec:Core.Spec.t ->
  n:int -> seed:int64 -> lo:int -> hi:int -> key

type pkey = {
  pk_program : string;
  pk_func : string;  (** function name within the program *)
  pk_fdigest : string;
      (** identity digest of the function ([Ir.Fingerprint.func]) *)
  pk_env : string;
      (** environment digest of the module
          ([Ir.Fingerprint.environment]) *)
  pk_technique : string;
  pk_max_mbf : int;
  pk_win : string;
  pk_domain : string;  (** fault domain; same legacy encoding as {!key} *)
  pk_n : int;  (** campaign size the profile was partitioned from *)
  pk_seed : int64;
}
(** Key of a cached per-function outcome profile
    ({!Core.Campaign.profile}).  The identity digest pins the function's
    own source form; the environment digest pins everything else that
    determines the experiment partition, so a hit is exact — see
    [Engine.Incremental]. *)

val profile_key :
  program:string ->
  func:string ->
  fdigest:string ->
  env:string ->
  spec:Core.Spec.t ->
  n:int -> seed:int64 -> pkey

type stats = {
  records : int;
  segments : int;
  bytes : int;
  truncated : int;  (** incomplete tail records dropped at open *)
  corrupt : int;  (** checksum/shape-rejected records dropped at open *)
}

type gc_report = {
  live_records : int;
  dropped_duplicates : int;
  segments_before : int;
  segments_after : int;
  bytes_before : int;
  bytes_after : int;
}

val open_dir : ?segment_bytes:int -> ?fsync:bool -> string -> t
(** Open (creating if necessary) a store directory.  [segment_bytes]
    (default 8 MiB) bounds a segment before rotation; [fsync] (default
    false) additionally fsyncs after every appended record — record
    flushes alone already survive a killed process, fsync extends that to
    a crashed machine. *)

val lookup : t -> key -> Core.Campaign.shard option
val add : t -> key -> Core.Campaign.shard -> unit
(** Durably append one shard result (no-op if the key is already
    present).  Kept experiment records are not persisted. *)

val lookup_profile : t -> pkey -> Core.Campaign.profile option
val add_profile : t -> pkey -> Core.Campaign.profile -> unit
(** Durably append one per-function outcome profile (no-op if the key
    is already present).  Profile records share the segment files with
    shard records; stores written before profiles existed load
    unchanged. *)

val fold : t -> (key -> Core.Campaign.shard -> 'a -> 'a) -> 'a -> 'a
(** Shard records only. *)

val fold_profiles : t -> (pkey -> Core.Campaign.profile -> 'a -> 'a) -> 'a -> 'a
(** Profile records only. *)

val stats : t -> stats

exception Busy of int list
(** Raised by {!gc} when other live processes hold writer leases on the
    store; carries their pids. *)

val gc : t -> gc_report
(** Compact: rewrite live records into one fresh segment (fsync + atomic
    rename), then unlink the old segments.  The rewrite holds the same
    advisory inter-process file lock appends take, so it can never
    interleave with a concurrent writer's append.

    @raise Busy if another live process holds a writer lease
    ({!lease}) — compacting would rename segments out from under it. *)

val lease : t -> unit
(** Register this process as a live writer of the store (a
    [leases/lease-<pid>] marker).  Re-entrant: calls nest, and the marker
    is removed when the last one is released (or at {!close}).  Markers
    of dead processes are stale and swept automatically, so a SIGKILLed
    writer never wedges the store. *)

val release_lease : t -> unit

val live_leases : t -> int list
(** Pids of live processes holding writer leases (stale markers swept). *)

val shard_json : Core.Campaign.shard -> Jsonx.t
val shard_of_json : lo:int -> hi:int -> Jsonx.t -> Core.Campaign.shard option
(** The shard payload codec (re-exported for the fleet wire protocol,
    which ships shards in exactly their store representation). *)

val close : t -> unit
val dir : t -> string
