(** IR linter built on the dataflow analyses.

    Findings are smells, not validity errors ([Ir.Validate] owns those):
    a program with findings still runs, but dead or unreachable code
    inflates the injection-candidate space with sites whose outcomes are
    foregone, skewing campaign statistics.  The bench suite is required
    to lint clean (see the [@lint] dune alias). *)

type rule =
  | Unreachable_code
      (** a non-empty block no path from the entry reaches (empty
          unreachable join blocks, which the Build EDSL emits, pass) *)
  | Dead_store
      (** a pure instruction writing a register that is dead afterwards *)
  | Unused_register  (** a non-parameter register never read nor written *)
  | Read_never_written
      (** a non-parameter register that is read somewhere but never
          written — it can only ever hold the VM's zero-initialisation *)
  | Constant_branch
      (** a conditional branch whose condition is an immediate, or whose
          every reaching definition is the same-truthiness constant *)
  | Uncalled_function
      (** a non-entry function not reachable from the entry over direct
          calls — its injection sites can never be exercised, so it
          silently distorts nothing but is certainly dead weight *)
  | Call_arity_mismatch
      (** a call to a module function with the wrong argument count
          ([Ir.Validate] rejects these; the rule covers modules built
          outside the validated pipeline) *)

val rule_name : rule -> string

type finding = { fn : string; block : string; rule : rule; detail : string }

val to_string : finding -> string

val check_func : Ir.Func.t -> finding list
(** Intraprocedural rules only. *)

val check_module : ?entry:string -> Ir.Func.modl -> finding list
(** The interprocedural rules ([Uncalled_function],
    [Call_arity_mismatch]); [entry] defaults to ["main"].  If the entry
    is not a module function every function counts as called. *)

val check : ?entry:string -> Ir.Func.modl -> finding list
(** All rules: [check_func] on every function plus [check_module]. *)
