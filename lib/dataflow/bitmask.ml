(* Backward demanded-bits analysis (BEC-style).

   The abstract state maps each register to a mask of the bits whose value
   can still influence anything observable (output bytes, traps, control
   flow, memory) on some path from the current point.  A flipped bit
   outside the mask is provably benign.

   Integer masks live in the canonical-value bit positions 0..width-1;
   [I64] at 63 bits fills the native int exactly, so its full mask is -1.
   F64 registers cannot be tracked per-bit in a native int (64 > 63 bits),
   so their demand is boolean: 0 = no path reads the register, -1 = some
   path may.  All transfer functions preserve that invariant because float
   demands are only ever created as 0 or -1.

   Soundness convention: an operand whose corruption could change a trap
   condition (division by zero, a memory address, [Guard]), escape the
   register file (memory, calls, [Output], [Ret]) or redirect control flow
   ([Cbr]) is fully demanded regardless of whether the result register is
   dead.  Pure operators scale their operand demand from the demand on
   their destination, which is what turns dead registers and masked-off
   high bits into prunable fault sites. *)

let full_width w = if w >= Sys.int_size then -1 else (1 lsl w) - 1

let full_of ty = if Ir.Ty.is_float ty then -1 else full_width (Ir.Ty.width ty)

(* All bits at or below the highest demanded bit: the carry cone of
   addition-like operators only propagates upward. *)
let spread_down d =
  let d = d lor (d lsr 1) in
  let d = d lor (d lsr 2) in
  let d = d lor (d lsr 4) in
  let d = d lor (d lsr 8) in
  let d = d lor (d lsr 16) in
  d lor (d lsr 32)

let is_pow2 m = m > 0 && m land (m - 1) = 0

let log2 m =
  let rec go k m = if m <= 1 then k else go (k + 1) (m lsr 1) in
  go 0 m

(* Demand contributed by an instruction to each of its register source
   operands, given the demand [after] holding after the instruction.
   Pairs are aligned with [Ir.Instr.src_regs] order (one per Reg slot). *)
let instr_uses ?(call_demand = fun _ -> None) (reg_ty : Ir.Ty.t array)
    (ins : Ir.Instr.t) ~(after : int array) =
  let use op d =
    match (op : Ir.Instr.operand) with
    | Reg r -> [ (r, d land full_of reg_ty.(r)) ]
    | Imm _ | FImm _ | Glob _ -> []
  in
  let full_use op =
    match (op : Ir.Instr.operand) with
    | Reg r -> [ (r, full_of reg_ty.(r)) ]
    | Imm _ | FImm _ | Glob _ -> []
  in
  match ins with
  | Binop { op; ty; dst; a; b } -> (
      let w = Ir.Ty.width ty in
      let fw = full_width w in
      let d = after.(dst) land fw in
      let both da db = use a da @ use b db in
      let scaled = if d = 0 then 0 else fw in
      match op with
      | Add | Sub | Mul ->
          let s = spread_down d in
          both s s
      | And ->
          let da = match b with Imm m -> d land m | _ -> d in
          let db = match a with Imm m -> d land m | _ -> d in
          both da db
      | Or ->
          let da = match b with Imm m -> d land lnot m land fw | _ -> d in
          let db = match a with Imm m -> d land lnot m land fw | _ -> d in
          both da db
      | Xor -> both d d
      | Shl -> (
          match b with
          | Imm s when s >= 0 && s < w -> both (d lsr s) 0
          | Imm _ -> both 0 0 (* out-of-range shift: constant 0 *)
          | _ -> both scaled scaled)
      | Lshr -> (
          match b with
          | Imm s when s >= 0 && s < w -> both (d lsl s land fw) 0
          | Imm _ -> both 0 0
          | _ -> both scaled scaled)
      | Ashr -> (
          match b with
          | Imm s when s >= 0 && s < w ->
              (* result bits >= w-1-s replicate the sign bit *)
              let low = full_width (w - 1 - s) in
              let sign = if d land lnot low land fw <> 0 then 1 lsl (w - 1) else 0 in
              both ((d lsl s land fw) lor sign) 0
          | Imm _ ->
              let sign = if d <> 0 then 1 lsl (w - 1) else 0 in
              both sign 0
          | _ -> both scaled scaled)
      | Sdiv | Srem -> (
          (* a zero divisor traps, so a register divisor is always fully
             demanded; a non-zero immediate divisor cannot trap *)
          match b with
          | Imm 0 -> both fw fw (* always traps; never executes in a
                                   finishing golden run *)
          | Imm _ -> both scaled 0
          | _ -> both scaled fw)
      | Udiv -> (
          match b with
          | Imm m when is_pow2 m -> both (d lsl log2 m land fw) 0
          | Imm 0 -> both fw fw
          | Imm _ -> both scaled 0
          | _ -> both scaled fw)
      | Urem -> (
          match b with
          | Imm m when is_pow2 m -> both (d land (m - 1)) 0
          | Imm 0 -> both fw fw
          | Imm _ -> both scaled 0
          | _ -> both scaled fw))
  | Fbinop { dst; a; b; _ } ->
      (* IEEE arithmetic cannot trap in this VM *)
      let d = if after.(dst) <> 0 then -1 else 0 in
      use a d @ use b d
  | Icmp { ty; dst; a; b; _ } ->
      let d = if after.(dst) land 1 <> 0 then full_width (Ir.Ty.width ty) else 0 in
      use a d @ use b d
  | Fcmp { dst; a; b; _ } ->
      let d = if after.(dst) land 1 <> 0 then -1 else 0 in
      use a d @ use b d
  | Select { ty; dst; cond; a; b } ->
      let d = after.(dst) land full_of ty in
      let dc = if d <> 0 then 1 else 0 in
      use cond dc @ use a d @ use b d
  | Cast { op; from_ty; dst; a; _ } ->
      let d = after.(dst) in
      let wf = Ir.Ty.width from_ty in
      let demand =
        match op with
        | Trunc | Zext | Ptrtoint | Inttoptr -> d land full_width wf
        | Sext ->
            let low = d land full_width (wf - 1) in
            let sign =
              if d land lnot (full_width (wf - 1)) <> 0 then 1 lsl (wf - 1)
              else 0
            in
            low lor sign
        | Fptosi -> if d <> 0 then -1 else 0
        | Sitofp -> if d <> 0 then full_width wf else 0
      in
      use a demand
  | Mov { dst; a; _ } -> use a after.(dst)
  | Load { addr; _ } ->
      (* a corrupted address can trap even if the loaded value is dead *)
      full_use addr
  | Store { value; addr; _ } ->
      (* memory is not tracked: the stored value escapes *)
      full_use value @ full_use addr
  | Gep { dst; base; index; _ } ->
      (* pure pointer arithmetic: traps happen at the memory access *)
      let d = after.(dst) land full_width 32 in
      if d = 0 then use base 0 @ use index 0
      else
        use base (spread_down d)
        @ (match index with
          | Reg r ->
              (* only the low 32 bits of the index register are read *)
              [ (r, full_of reg_ty.(r) land full_width 32) ]
          | _ -> [])
  | Call { dst; callee; args } -> (
      match Ir.Builtins.signature callee with
      | Some _ ->
          (* builtins are pure float functions: demand scales *)
          let d =
            match dst with
            | Some r -> if after.(r) <> 0 then -1 else 0
            | None -> 0
          in
          List.concat_map (fun a -> use a d) args
      | None -> (
          (* user function: without a summary the arguments escape
             interprocedurally; with one, each argument is demanded
             exactly as the callee's entry state demands its parameter
             (the callee mask already accounts for everything the callee
             can do with it — outputs, stores, traps, further calls) *)
          match call_demand callee with
          | Some masks when Array.length masks = List.length args ->
              List.concat (List.mapi (fun i a -> use a masks.(i)) args)
          | _ -> List.concat_map full_use args))
  | Output { value; _ } -> full_use value
  | Guard { a; b; _ } -> full_use a @ full_use b
  | Abort -> []

let term_uses (reg_ty : Ir.Ty.t array) (t : Ir.Instr.terminator) =
  let full_use op =
    match (op : Ir.Instr.operand) with
    | Reg r -> [ (r, full_of reg_ty.(r)) ]
    | Imm _ | FImm _ | Glob _ -> []
  in
  match t with
  | Br _ | Unreachable | Ret None -> []
  | Cbr { cond; _ } -> full_use cond
  | Ret (Some v) -> full_use v

type t = { cfg : Cfg.t; before : int array array array }

module Solver = Fixpoint.Make (struct
  type t = int array

  let equal (a : t) b = a = b
  let join a b = Array.mapi (fun i x -> x lor b.(i)) a
end)

let apply_uses state uses =
  List.iter (fun (r, d) -> state.(r) <- state.(r) lor d) uses

let instr_step ?call_demand reg_ty state (ins : Ir.Instr.t) =
  let uses = instr_uses ?call_demand reg_ty ins ~after:(Array.copy state) in
  (match Ir.Instr.dst_reg ins with Some d -> state.(d) <- 0 | None -> ());
  apply_uses state uses

let block_entry ?call_demand (f : Ir.Func.t) bidx exit_state =
  let b = f.f_blocks.(bidx) in
  let state = Array.copy exit_state in
  apply_uses state (term_uses f.f_reg_ty b.b_term);
  for i = Array.length b.b_instrs - 1 downto 0 do
    instr_step ?call_demand f.f_reg_ty state b.b_instrs.(i)
  done;
  state

let analyse_cfg ?call_demand (cfg : Cfg.t) =
  let f = cfg.func in
  let nregs = Array.length f.f_reg_ty in
  let { Solver.input = exits; _ } =
    Solver.solve ~cfg ~direction:Backward
      ~init:(fun _ -> Array.make nregs 0)
      ~transfer:(fun b s -> block_entry ?call_demand f b s)
  in
  let before =
    Array.mapi
      (fun bidx (b : Ir.Func.block) ->
        let n = Array.length b.b_instrs in
        let states = Array.make (n + 2) exits.(bidx) in
        let state = Array.copy exits.(bidx) in
        apply_uses state (term_uses f.f_reg_ty b.b_term);
        states.(n) <- Array.copy state;
        for i = n - 1 downto 0 do
          instr_step ?call_demand f.f_reg_ty state b.b_instrs.(i);
          states.(i) <- Array.copy state
        done;
        states)
      f.f_blocks
  in
  { cfg; before }

let analyse ?call_demand f = analyse_cfg ?call_demand (Cfg.of_func f)

let demand_before t ~bidx ~idx = t.before.(bidx).(idx)

let demand_after t ~bidx ~idx = t.before.(bidx).(idx + 1)
