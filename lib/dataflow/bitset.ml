type t = int array

let bpw = Sys.int_size

let create n = Array.make ((n + bpw - 1) / bpw) 0
let copy = Array.copy
let mem t i = t.(i / bpw) land (1 lsl (i mod bpw)) <> 0
let add t i = t.(i / bpw) <- t.(i / bpw) lor (1 lsl (i mod bpw))
let remove t i = t.(i / bpw) <- t.(i / bpw) land lnot (1 lsl (i mod bpw))
let equal (a : t) b = a = b
let union a b = Array.mapi (fun i x -> x lor b.(i)) a
let union_into ~into b = Array.iteri (fun i x -> into.(i) <- into.(i) lor x) b
let diff_into ~into b = Array.iteri (fun i x -> into.(i) <- into.(i) land lnot x) b
let is_empty t = Array.for_all (fun x -> x = 0) t

let iter f t =
  Array.iteri
    (fun w bits ->
      if bits <> 0 then
        for j = 0 to bpw - 1 do
          if bits land (1 lsl j) <> 0 then f ((w * bpw) + j)
        done)
    t

let cardinal t = Array.fold_left (fun acc x -> acc + Ir.Bits.popcount x) 0 t

let elements t =
  let l = ref [] in
  iter (fun i -> l := i :: !l) t;
  List.rev !l
