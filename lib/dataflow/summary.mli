(** Interprocedural fault-propagation summaries.

    One summary per module function, characterising how a fault injected
    while that function's own instructions execute can cross its
    boundary: which return-value bits can deviate from the golden run,
    whether memory, the output stream, traps or termination can be
    affected (each transitively over the call graph), and which bits of
    each parameter the function demands (an interprocedural fixpoint
    over {!Bitmask}, so callers know which argument bits are benign).

    Summaries are reporting and composition aids — cached-profile
    validity in the incremental campaign scheduler is decided by
    [Ir.Fingerprint] digests.  Their load-bearing prediction is
    {!sdc_free_single}. *)

type t = {
  fn : string;
  params_demanded : int array;
      (** per-parameter demanded-bits mask at entry (interprocedural);
        a caller-side flip outside the mask is provably benign for
        this callee *)
  ret_corrupt : int;
      (** mask of return-value bits a fault inside the function can
        corrupt; [0] for void returns and single-constant returns *)
  corrupts_memory : bool;  (** may store, transitively *)
  emits_output : bool;  (** may append to the output stream, transitively *)
  may_trap : bool;  (** a fault inside may raise a trap, transitively *)
  may_loop : bool;  (** CFG cycle or call-graph recursion, transitively *)
  callees : string list;  (** direct callees, first-occurrence order *)
  globals : string list;  (** globals referenced, transitively, sorted *)
}

val analyse : Ir.Func.modl -> t list
(** Summaries in module function order.  Requires a module whose branch
    targets are in range (i.e. one that passes [Ir.Validate.check]). *)

val find : t list -> string -> t option

val sdc_free_single : t -> bool
(** No boundary value channel: constant-or-void return, no stores, no
    output.  Under a single-bit-flip campaign, an experiment whose flip
    lands on this function's own instructions cannot end in SDC — only
    benign, detected or hung. *)

val render : t -> string
(** Compact one-line form (what [onebit digests] prints and [digest]
    hashes). *)

val digest : t -> string
(** MD5 hex of [render]. *)
