type def = { def_reg : int; def_bidx : int; def_idx : int }

let is_entry d = d.def_bidx < 0

type t = {
  cfg : Cfg.t;
  defs : def array;
  def_ids : int array array;  (* def_ids.(b).(i) = def id of point i, or -1 *)
  kill : Bitset.t array;  (* kill.(r) = all defs of register r *)
  entry_ids : int array;  (* entry pseudo-def id of each register *)
  reach_in : Bitset.t array;  (* per block *)
}

module Solver = Fixpoint.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let join = Bitset.union
end)

let analyse (cfg : Cfg.t) =
  let f = cfg.func in
  let nregs = Array.length f.f_reg_ty in
  let defs = ref [] in
  let ndefs = ref 0 in
  let new_def d =
    defs := d :: !defs;
    incr ndefs;
    !ndefs - 1
  in
  (* Every register has an entry pseudo-definition: parameters get the
     argument value, the rest the VM's zero-initialisation. *)
  let entry_ids =
    Array.init nregs (fun r -> new_def { def_reg = r; def_bidx = -1; def_idx = -1 })
  in
  let def_ids =
    Array.mapi
      (fun bidx (b : Ir.Func.block) ->
        Array.mapi
          (fun idx ins ->
            match Ir.Instr.dst_reg ins with
            | Some d -> new_def { def_reg = d; def_bidx = bidx; def_idx = idx }
            | None -> -1)
          b.b_instrs)
      f.f_blocks
  in
  let defs = Array.of_list (List.rev !defs) in
  let kill = Array.init nregs (fun _ -> Bitset.create !ndefs) in
  Array.iteri (fun i d -> Bitset.add kill.(d.def_reg) i) defs;
  let step state bidx idx =
    let id = def_ids.(bidx).(idx) in
    if id >= 0 then begin
      Bitset.diff_into ~into:state kill.(defs.(id).def_reg);
      Bitset.add state id
    end
  in
  let transfer bidx input =
    let state = Bitset.copy input in
    let n = Array.length f.f_blocks.(bidx).b_instrs in
    for i = 0 to n - 1 do
      step state bidx i
    done;
    state
  in
  let boundary = Bitset.create !ndefs in
  Array.iter (Bitset.add boundary) entry_ids;
  let init b = if b = 0 then Bitset.copy boundary else Bitset.create !ndefs in
  let { Solver.input = reach_in; _ } =
    Solver.solve ~cfg ~direction:Forward ~init ~transfer
  in
  { cfg; defs; def_ids; kill; entry_ids; reach_in }

let defs t = t.defs

let reaching_before t ~bidx ~idx =
  let state = Bitset.copy t.reach_in.(bidx) in
  for i = 0 to min idx (Array.length t.def_ids.(bidx)) - 1 do
    let id = t.def_ids.(bidx).(i) in
    if id >= 0 then begin
      Bitset.diff_into ~into:state t.kill.(t.defs.(id).def_reg);
      Bitset.add state id
    end
  done;
  state

let reaching_of_reg t ~bidx ~idx ~reg =
  let state = reaching_before t ~bidx ~idx in
  let l = ref [] in
  Bitset.iter
    (fun id -> if t.defs.(id).def_reg = reg then l := t.defs.(id) :: !l)
    state;
  List.rev !l

(* def id -> the (bidx, idx) points whose instruction (idx = block length:
   terminator) may read that definition's value *)
let def_uses t =
  let uses = Array.make (Array.length t.defs) [] in
  Array.iteri
    (fun bidx (b : Ir.Func.block) ->
      let n = Array.length b.b_instrs in
      let state = Bitset.copy t.reach_in.(bidx) in
      let record idx srcs =
        List.iter
          (fun r ->
            Bitset.iter
              (fun id ->
                if t.defs.(id).def_reg = r then
                  uses.(id) <- (bidx, idx) :: uses.(id))
              state)
          srcs
      in
      for i = 0 to n - 1 do
        record i (Ir.Instr.src_regs b.b_instrs.(i));
        let id = t.def_ids.(bidx).(i) in
        if id >= 0 then begin
          Bitset.diff_into ~into:state t.kill.(t.defs.(id).def_reg);
          Bitset.add state id
        end
      done;
      record n (Ir.Instr.term_src_regs b.b_term))
    t.cfg.func.f_blocks;
  Array.map (fun l -> List.sort_uniq compare (List.rev l)) uses
