module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = { input : L.t array; output : L.t array }

  let solve ~(cfg : Cfg.t) ~direction ~init ~transfer =
    let n = cfg.nblocks in
    let upstream =
      match direction with Forward -> cfg.preds | Backward -> cfg.succs
    in
    (* Iterate reachable blocks in a direction-friendly order, then the
       unreachable ones (they still get a well-defined fixpoint so that
       per-point queries never hit an uninitialised block). *)
    let order =
      let m = Array.length cfg.rpo in
      let o = Array.make n 0 in
      (match direction with
      | Forward -> Array.blit cfg.rpo 0 o 0 m
      | Backward -> Array.iteri (fun i b -> o.(m - 1 - i) <- b) cfg.rpo);
      let k = ref m in
      for b = 0 to n - 1 do
        if not cfg.reachable.(b) then begin
          o.(!k) <- b;
          incr k
        end
      done;
      o
    in
    let input = Array.init n init in
    let output = Array.init n (fun b -> transfer b input.(b)) in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          let inb =
            Array.fold_left
              (fun acc u -> L.join acc output.(u))
              (init b) upstream.(b)
          in
          input.(b) <- inb;
          let outb = transfer b inb in
          if not (L.equal outb output.(b)) then begin
            output.(b) <- outb;
            changed := true
          end)
        order
    done;
    { input; output }
end
