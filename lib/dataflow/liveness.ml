type t = { cfg : Cfg.t; before : Bitset.t array array }

module Solver = Fixpoint.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
  let join = Bitset.union
end)

(* live-before = (live-after \ def) ∪ uses *)
let instr_step live (ins : Ir.Instr.t) =
  (match Ir.Instr.dst_reg ins with
  | Some d -> Bitset.remove live d
  | None -> ());
  List.iter (Bitset.add live) (Ir.Instr.src_regs ins)

let block_entry (b : Ir.Func.block) exit_live =
  let live = Bitset.copy exit_live in
  List.iter (Bitset.add live) (Ir.Instr.term_src_regs b.b_term);
  for i = Array.length b.b_instrs - 1 downto 0 do
    instr_step live b.b_instrs.(i)
  done;
  live

let analyse (cfg : Cfg.t) =
  let f = cfg.func in
  let nregs = Array.length f.f_reg_ty in
  let { Solver.input = exits; _ } =
    Solver.solve ~cfg ~direction:Backward
      ~init:(fun _ -> Bitset.create nregs)
      ~transfer:(fun b s -> block_entry f.f_blocks.(b) s)
  in
  let before =
    Array.mapi
      (fun bidx (b : Ir.Func.block) ->
        let n = Array.length b.b_instrs in
        let states = Array.make (n + 2) exits.(bidx) in
        let live = Bitset.copy exits.(bidx) in
        List.iter (Bitset.add live) (Ir.Instr.term_src_regs b.b_term);
        states.(n) <- Bitset.copy live;
        for i = n - 1 downto 0 do
          instr_step live b.b_instrs.(i);
          states.(i) <- Bitset.copy live
        done;
        states)
      f.f_blocks
  in
  { cfg; before }

let live_before t ~bidx ~idx = t.before.(bidx).(idx)

let live_after t ~bidx ~idx = t.before.(bidx).(idx + 1)

let live_in t bidx = t.before.(bidx).(0)

let live_out t bidx =
  let s = t.before.(bidx) in
  s.(Array.length s - 1)
