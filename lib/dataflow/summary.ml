(* Interprocedural propagation summaries.

   For every function of a module, characterise how a fault injected
   while the function's own instructions execute can escape across its
   boundary:

   - [ret_corrupt]: which bits of the return value can deviate from the
     golden run.  A flip can land on the register operand of a [Ret]
     itself, so any register return corrupts up to its full type width;
     the refinement comes from the type, from [void] returns and from
     constant returns (a function whose every reachable return is the
     same immediate cannot return a wrong value — it can only trap or
     hang).
   - [corrupts_memory] / [emits_output] / [may_trap] / [may_loop]:
     whether the function (or anything it transitively calls) stores to
     memory, appends to the output stream, can raise a trap, or can
     fail to terminate (CFG cycle or call-graph recursion).
   - [params_demanded]: per-parameter demanded-bits masks at function
     entry, solved as an interprocedural fixpoint over {!Bitmask} — a
     flip in a caller's argument bit outside the mask is provably
     benign for this callee.

   The booleans and globals are a transitive closure over the call
   graph, iterated to a fixpoint; the demand masks iterate downward
   from the conservative intraprocedural solution (full escape at call
   sites) and only shrink, so both loops terminate.

   The summaries are reporting and composition aids: cached-profile
   validity is decided by [Ir.Fingerprint] digests alone.  Their one
   load-bearing prediction is {!sdc_free_single}: a function with no
   boundary value channel (constant-or-void return, no stores, no
   output) cannot cause silent data corruption under a single-bit-flip
   campaign when the flip lands on its own instructions — every such
   experiment is benign, detected or hung. *)

type t = {
  fn : string;
  params_demanded : int array;
  ret_corrupt : int;
  corrupts_memory : bool;
  emits_output : bool;
  may_trap : bool;
  may_loop : bool;
  callees : string list;
  globals : string list;
}

let operands (i : Ir.Instr.t) : Ir.Instr.operand list =
  match i with
  | Binop { a; b; _ }
  | Fbinop { a; b; _ }
  | Icmp { a; b; _ }
  | Fcmp { a; b; _ }
  | Guard { a; b; _ } ->
      [ a; b ]
  | Select { cond; a; b; _ } -> [ cond; a; b ]
  | Cast { a; _ } | Mov { a; _ } -> [ a ]
  | Load { addr; _ } -> [ addr ]
  | Store { value; addr; _ } -> [ value; addr ]
  | Gep { base; index; _ } -> [ base; index ]
  | Call { args; _ } -> args
  | Output { value; _ } -> [ value ]
  | Abort -> []

let term_operands (t : Ir.Instr.terminator) : Ir.Instr.operand list =
  match t with
  | Br _ | Unreachable | Ret None -> []
  | Cbr { cond; _ } -> [ cond ]
  | Ret (Some v) -> [ v ]

(* Can this instruction raise a trap on some (possibly faulty) run?
   Memory accesses can go out of bounds under a corrupted address; a
   register (or zero-immediate) divisor can be(come) zero; [Guard] and
   [Abort] trap by design.  Pure arithmetic never traps. *)
let instr_may_trap (i : Ir.Instr.t) =
  match i with
  | Load _ | Store _ | Guard _ | Abort -> true
  | Binop { op = Sdiv | Udiv | Srem | Urem; b; _ } -> (
      match b with Imm n -> n = 0 | _ -> true)
  | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Mov _ | Gep _
  | Output _ ->
      false
  | Call _ -> false (* accounted via the call graph; builtins are pure *)

let has_cycle (cfg : Cfg.t) =
  let state = Array.make cfg.nblocks 0 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let rec visit b =
    if state.(b) = 1 then true
    else if state.(b) = 2 then false
    else begin
      state.(b) <- 1;
      let cyc = Array.exists visit cfg.succs.(b) in
      state.(b) <- 2;
      cyc
    end
  in
  visit 0

(* Per-function facts before call-graph propagation. *)
type direct = {
  d_fn : string;
  d_ret : int;
  mutable d_mem : bool;
  mutable d_out : bool;
  mutable d_trap : bool;
  d_cycle : bool;
  d_callees : string list; (* module functions only *)
  all_callees : string list;
  mutable d_globals : string list;
}

let full_of = Bitmask.full_of

let ret_corrupt (cfg : Cfg.t) =
  let f = cfg.func in
  match f.f_ret with
  | None -> 0
  | Some ty ->
      let imms = ref [] and other = ref false and any = ref false in
      Array.iteri
        (fun bidx (b : Ir.Func.block) ->
          if cfg.reachable.(bidx) then
            match b.b_term with
            | Ret (Some (Imm n)) ->
                any := true;
                imms := n :: !imms
            | Ret (Some _) ->
                any := true;
                other := true
            | _ -> ())
        f.f_blocks;
      if not !any then 0
      else if !other then full_of ty
      else
        (* constant returns only: the deviation between any two runs is
           contained in the union of the set bits, and a single constant
           cannot deviate at all *)
        let distinct = List.sort_uniq compare !imms in
        if List.length distinct <= 1 then 0
        else List.fold_left ( lor ) 0 distinct land full_of ty

let direct_of (m : Ir.Func.modl) (f : Ir.Func.t) =
  let cfg = Cfg.of_func f in
  let is_module n = Ir.Func.find_func m n <> None in
  let all_callees = Ir.Fingerprint.callees f in
  let d =
    {
      d_fn = f.f_name;
      d_ret = ret_corrupt cfg;
      d_mem = false;
      d_out = false;
      d_trap = false;
      d_cycle = has_cycle cfg;
      d_callees = List.filter is_module all_callees;
      all_callees;
      d_globals = [];
    }
  in
  let glob op =
    match (op : Ir.Instr.operand) with
    | Glob g -> if not (List.mem g d.d_globals) then d.d_globals <- g :: d.d_globals
    | _ -> ()
  in
  Array.iteri
    (fun bidx (b : Ir.Func.block) ->
      if cfg.reachable.(bidx) then begin
        Array.iter
          (fun i ->
            (match i with
            | Ir.Instr.Store _ -> d.d_mem <- true
            | Output _ -> d.d_out <- true
            | _ -> ());
            if instr_may_trap i then d.d_trap <- true;
            List.iter glob (operands i))
          b.b_instrs;
        (match b.b_term with Unreachable -> d.d_trap <- true | _ -> ());
        List.iter glob (term_operands b.b_term)
      end)
    f.f_blocks;
  d.d_globals <- List.rev d.d_globals;
  d

(* Interprocedural demanded-bits fixpoint: start from the conservative
   intraprocedural answer and re-analyse with callee masks until stable
   (masks only shrink, so this terminates; the bound is a backstop). *)
let solve_demands (m : Ir.Func.modl) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.Func.t) ->
      Hashtbl.replace tbl f.f_name
        (Array.of_list (List.map full_of f.f_params)))
    m.m_funcs;
  let entry_masks f call_demand =
    let bm = Bitmask.analyse ~call_demand f in
    let before = Bitmask.demand_before bm ~bidx:0 ~idx:0 in
    Array.of_list
      (List.mapi (fun i ty -> before.(i) land full_of ty) f.f_params)
  in
  let call_demand name = Hashtbl.find_opt tbl name in
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < 20 do
    changed := false;
    incr rounds;
    List.iter
      (fun (f : Ir.Func.t) ->
        let masks = entry_masks f call_demand in
        let old = Hashtbl.find tbl f.f_name in
        (* monotone: never let a mask grow back *)
        let masks = Array.mapi (fun i v -> v land old.(i)) masks in
        if masks <> old then begin
          Hashtbl.replace tbl f.f_name masks;
          changed := true
        end)
      m.m_funcs
  done;
  tbl

let analyse (m : Ir.Func.modl) : t list =
  let directs = List.map (direct_of m) m.m_funcs in
  let by_name = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace by_name d.d_fn d) directs;
  (* call-graph reachability per function (includes self when on a
     recursion cycle), for the transitive effect flags *)
  let reach d =
    let seen = Hashtbl.create 8 in
    let rec visit first n =
      match Hashtbl.find_opt by_name n with
      | None -> ()
      | Some dn ->
          if first || not (Hashtbl.mem seen n) then begin
            if not first then Hashtbl.replace seen n ();
            List.iter (visit false) dn.d_callees
          end
    in
    visit true d.d_fn;
    seen
  in
  let demands = solve_demands m in
  List.map
    (fun d ->
      let r = reach d in
      let over pred = pred d || Hashtbl.fold (fun n () acc ->
          acc || match Hashtbl.find_opt by_name n with
          | Some dn -> pred dn
          | None -> false) r false
      in
      let recursive = Hashtbl.mem r d.d_fn in
      let globals =
        Hashtbl.fold
          (fun n () acc ->
            match Hashtbl.find_opt by_name n with
            | Some dn ->
                List.fold_left
                  (fun acc g -> if List.mem g acc then acc else g :: acc)
                  acc dn.d_globals
            | None -> acc)
          r d.d_globals
      in
      {
        fn = d.d_fn;
        params_demanded =
          (match Hashtbl.find_opt demands d.d_fn with
          | Some a -> a
          | None -> [||]);
        ret_corrupt = d.d_ret;
        corrupts_memory = over (fun x -> x.d_mem);
        emits_output = over (fun x -> x.d_out);
        may_trap = over (fun x -> x.d_trap);
        may_loop = over (fun x -> x.d_cycle) || recursive;
        callees = d.all_callees;
        globals = List.sort compare globals;
      })
    directs

let find ts name = List.find_opt (fun t -> t.fn = name) ts

let sdc_free_single t =
  t.ret_corrupt = 0 && not t.corrupts_memory && not t.emits_output

let render t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "params=[%s]"
       (String.concat ","
          (Array.to_list
             (Array.map (Printf.sprintf "0x%x") t.params_demanded))));
  Buffer.add_string buf (Printf.sprintf " ret=0x%x" t.ret_corrupt);
  if t.corrupts_memory then Buffer.add_string buf " mem";
  if t.emits_output then Buffer.add_string buf " out";
  if t.may_trap then Buffer.add_string buf " trap";
  if t.may_loop then Buffer.add_string buf " loop";
  if t.callees <> [] then
    Buffer.add_string buf
      (Printf.sprintf " calls=[%s]" (String.concat "," t.callees));
  if t.globals <> [] then
    Buffer.add_string buf
      (Printf.sprintf " globals=[%s]" (String.concat "," t.globals));
  Buffer.contents buf

let digest t = Digest.to_hex (Digest.string (render t))
