type rule =
  | Unreachable_code
  | Dead_store
  | Unused_register
  | Read_never_written
  | Constant_branch
  | Uncalled_function
  | Call_arity_mismatch

let rule_name = function
  | Unreachable_code -> "unreachable-code"
  | Dead_store -> "dead-store"
  | Unused_register -> "unused-register"
  | Read_never_written -> "read-never-written"
  | Constant_branch -> "constant-branch"
  | Uncalled_function -> "uncalled-function"
  | Call_arity_mismatch -> "call-arity-mismatch"

type finding = { fn : string; block : string; rule : rule; detail : string }

let to_string f =
  Printf.sprintf "%s: %s: [%s] %s" f.fn f.block (rule_name f.rule) f.detail

(* Instructions a dead destination makes removable: no trap, no side
   effect.  Division only counts when the divisor is a non-zero constant. *)
let pure (i : Ir.Instr.t) =
  match i with
  | Binop { op = Sdiv | Udiv | Srem | Urem; b = Imm m; _ } -> m <> 0
  | Binop { op = Sdiv | Udiv | Srem | Urem; _ } -> false
  | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Mov _ | Gep _ ->
      true
  | Load _ | Call _ | Store _ | Output _ | Guard _ | Abort -> false

let check_func (f : Ir.Func.t) =
  let findings = ref [] in
  let report bidx rule detail =
    findings :=
      { fn = f.f_name; block = f.f_blocks.(bidx).b_name; rule; detail }
      :: !findings
  in
  let cfg = Cfg.of_func f in
  let nregs = Array.length f.f_reg_ty in
  let nparams = List.length f.f_params in
  (* unreachable code: blocks no path reaches.  Empty unreachable blocks
     are tolerated — the Build EDSL emits them as join points after
     branches whose arms both return. *)
  List.iter
    (fun b ->
      if Array.length f.f_blocks.(b).b_instrs > 0 then
        report b Unreachable_code
          (Printf.sprintf "%d unreachable instruction(s)"
             (Array.length f.f_blocks.(b).b_instrs)))
    (Cfg.unreachable_blocks cfg);
  (* dead stores: a pure instruction whose destination is dead *)
  let live = Liveness.analyse cfg in
  Array.iteri
    (fun bidx (b : Ir.Func.block) ->
      if cfg.reachable.(bidx) then
        Array.iteri
          (fun idx ins ->
            match Ir.Instr.dst_reg ins with
            | Some d
              when pure ins && not (Bitset.mem (Liveness.live_after live ~bidx ~idx) d)
              ->
                report bidx Dead_store
                  (Printf.sprintf "instruction %d writes dead register %%%d"
                     idx d)
            | Some _ | None -> ())
          b.b_instrs)
    f.f_blocks;
  (* register usage, over all blocks including unreachable ones *)
  let read = Array.make nregs false in
  let written = Array.make nregs false in
  Array.iter
    (fun (b : Ir.Func.block) ->
      Array.iter
        (fun ins ->
          List.iter (fun r -> read.(r) <- true) (Ir.Instr.src_regs ins);
          match Ir.Instr.dst_reg ins with
          | Some d -> written.(d) <- true
          | None -> ())
        b.b_instrs;
      List.iter (fun r -> read.(r) <- true) (Ir.Instr.term_src_regs b.b_term))
    f.f_blocks;
  for r = nparams to nregs - 1 do
    if not (read.(r) || written.(r)) then
      report 0 Unused_register (Printf.sprintf "register %%%d is never used" r)
    else if read.(r) && not written.(r) then
      report 0 Read_never_written
        (Printf.sprintf "register %%%d is read but never written" r)
  done;
  (* constant-condition branches *)
  let reaching = lazy (Reaching.analyse cfg) in
  let truthiness_of_def (d : Reaching.def) =
    if Reaching.is_entry d then None
    else
      match f.f_blocks.(d.def_bidx).b_instrs.(d.def_idx) with
      | Mov { a = Imm v; _ } -> Some (v <> 0)
      | _ -> None
  in
  Array.iteri
    (fun bidx (b : Ir.Func.block) ->
      if cfg.reachable.(bidx) then
        match b.b_term with
        | Cbr { cond = Imm v; _ } ->
            report bidx Constant_branch
              (Printf.sprintf "branch condition is the constant %d" v)
        | Cbr { cond = Reg r; _ } -> (
            let n = Array.length b.b_instrs in
            let defs =
              Reaching.reaching_of_reg (Lazy.force reaching) ~bidx ~idx:n
                ~reg:r
            in
            match List.map truthiness_of_def defs with
            | [] -> ()
            | t0 :: rest
              when t0 <> None && List.for_all (fun t -> t = t0) rest ->
                report bidx Constant_branch
                  (Printf.sprintf
                     "condition %%%d is the constant %b at every reaching \
                      definition"
                     r (Option.get t0))
            | _ -> ())
        | _ -> ())
    f.f_blocks;
  List.rev !findings

(* Module-level, interprocedural rules.  [Ir.Validate] rejects arity
   mismatches outright, so that rule only ever fires on modules built
   outside the validated pipeline — but lint must stand on its own. *)
let check_module ?(entry = "main") (m : Ir.Func.modl) =
  let findings = ref [] in
  let report fn block rule detail =
    findings := { fn; block; rule; detail } :: !findings
  in
  let live = Ir.Fingerprint.reachable ~entry m in
  List.iter
    (fun (f : Ir.Func.t) ->
      if f.f_name <> entry && not (List.mem f.f_name live) then
        report f.f_name "-" Uncalled_function
          (Printf.sprintf "function @%s is never called from @%s" f.f_name
             entry))
    m.m_funcs;
  List.iter
    (fun (f : Ir.Func.t) ->
      Array.iter
        (fun (b : Ir.Func.block) ->
          Array.iter
            (function
              | Ir.Instr.Call { callee; args; _ } -> (
                  match Ir.Func.find_func m callee with
                  | Some callee_f ->
                      let want = List.length callee_f.f_params in
                      let got = List.length args in
                      if got <> want then
                        report f.f_name b.b_name Call_arity_mismatch
                          (Printf.sprintf
                             "call @%s passes %d argument(s), @%s takes %d"
                             callee got callee want)
                  | None -> ())
              | _ -> ())
            b.b_instrs)
        f.f_blocks)
    m.m_funcs;
  List.rev !findings

let check ?entry (m : Ir.Func.modl) =
  List.concat_map check_func m.m_funcs @ check_module ?entry m
