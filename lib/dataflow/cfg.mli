(** Control-flow graph of one IR function.

    Nodes are block indices into [func.f_blocks]; edges come from the
    block terminators ([Cbr] with equal arms contributes a single edge).
    Block 0 is the entry. *)

type t = {
  func : Ir.Func.t;
  nblocks : int;
  succs : int array array;  (** successor block indices, per block *)
  preds : int array array;  (** predecessor block indices, per block *)
  rpo : int array;
      (** the blocks reachable from the entry, in reverse postorder (the
          natural iteration order for forward analyses) *)
  reachable : bool array;  (** whether each block is reachable from entry *)
}

val term_succs : Ir.Instr.terminator -> int list
(** Successor targets of a terminator, deduplicated. *)

val of_func : Ir.Func.t -> t
(** Requires branch targets in range (i.e. a module that passed
    [Ir.Validate.check]). *)

val unreachable_blocks : t -> int list
