(** Static error-space pruning.

    Classifies single-bit fault sites — (instruction, register, bit) for
    inject-on-read, (instruction, bit of the destination) for
    inject-on-write — as [Provably_benign] (the flipped bit is dead under
    {!Bitmask}: no execution can observe it) or [Must_run] (a fault
    injection experiment is required).  The paper's RQ5 shows most of the
    error space is predictable from cheaper experiments; this is the
    static-analysis counterpart: pruned sites need no run at all. *)

type verdict = Provably_benign | Must_run

type t

val analyse : Ir.Func.t -> t

val read_demand : t -> bidx:int -> idx:int -> reg:int -> int
(** Demand mask governing a flip of [reg] just before point [idx] of
    block [bidx] executes ([idx] = block length: the terminator).  Covers
    both the instruction's own reads of [reg] and, unless it redefines
    [reg], all downstream consumers. *)

val write_demand : t -> bidx:int -> idx:int -> int
(** Demand mask on the destination register just after instruction [idx]
    of block [bidx] writes it.
    @raise Invalid_argument if the instruction has no destination. *)

val is_benign : Ir.Ty.t -> demand:int -> bit:int -> bool
val flip_width : Ir.Ty.t -> int
(** Bit positions the injector targets: [Ty.width], except 64 for f64. *)

val benign_bits : Ir.Ty.t -> demand:int -> int
(** How many of [flip_width] bit positions are provably benign. *)

val classify_read : t -> bidx:int -> idx:int -> reg:int -> bit:int -> verdict
val classify_write : t -> bidx:int -> idx:int -> bit:int -> verdict

val forwarded_write : t -> bidx:int -> idx:int -> int option
(** If the next same-block mention of instruction [idx]'s destination is
    a read at point [j] (possibly the terminator, at [j] = block length),
    returns [Some j]: a write-site flip there is outcome-equivalent to
    the read-site flip of the same register and bit at [j], because the
    instructions in between never touch the register and hence execute
    exactly as in the fault-free run.  Such write experiments are
    {e redundant} — predictable from the read campaign without a run. *)

type summary = {
  read_total : int;  (** single-bit error-space elements, inject-on-read *)
  read_benign : int;
  read_redundant : int;
      (** elements of duplicate same-register operand slots: the injector
          flips the register, so they replay another slot's experiment *)
  write_total : int;
  write_benign : int;
  write_redundant : int;  (** non-benign bits of forwarded write sites *)
}

val summarise : Ir.Func.modl -> profile:int array array -> summary
(** Weight every static site by its golden-run execution frequency (the
    [Core.Workload.profile] matrix) so the totals measure the {e dynamic}
    single-bit error space the injector samples from.  [benign] and
    [redundant] are disjoint: a pruned element is counted as benign when
    its bit is provably dead and as redundant otherwise. *)

val benign_fraction : total:int -> benign:int -> float
