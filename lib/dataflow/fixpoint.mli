(** Generic worklist fixpoint engine, functorised over a join-semilattice
    of abstract block states.

    The engine is direction-agnostic: [input] is the state flowing into a
    block from its "upstream" neighbours (predecessors for a forward
    analysis, successors for a backward one) and [output] the result of
    the block transfer on it.  For a forward analysis [input]/[output]
    are the block entry/exit states; for a backward one they are the
    block {e exit}/{e entry} states. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Must be pure: the arguments may be live states of other blocks. *)
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = { input : L.t array; output : L.t array }

  val solve :
    cfg:Cfg.t ->
    direction:direction ->
    init:(int -> L.t) ->
    transfer:(int -> L.t -> L.t) ->
    result
  (** [init b] is the boundary contribution joined into block [b]'s input
      on every round — the lattice bottom for interior blocks, the
      boundary state for the entry (forward) or exit blocks (backward).
      [transfer b s] must be pure.  Termination requires the usual finite
      ascending-chain condition on the lattice. *)
end
