(** Dense bit sets over a fixed universe [0 .. n-1], used as dataflow
    lattice values (register sets for liveness, definition-id sets for
    reaching definitions).

    [add]/[remove]/[union_into]/[diff_into] mutate in place — copy first
    when the original must survive; [union] is pure and suits lattice
    joins directly. *)

type t

val create : int -> t
(** All-empty set over a universe of the given size. *)

val copy : t -> t
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val equal : t -> t -> bool
val union : t -> t -> t
val union_into : into:t -> t -> unit
val diff_into : into:t -> t -> unit
(** Remove every element of the second set from [into]. *)

val is_empty : t -> bool
val iter : (int -> unit) -> t -> unit
val cardinal : t -> int
val elements : t -> int list
