type counts = { reads : int; writes : int }

let zero = { reads = 0; writes = 0 }
let add a b = { reads = a.reads + b.reads; writes = a.writes + b.writes }
let scale k c = { reads = k * c.reads; writes = k * c.writes }

(* Candidacy is purely syntactic and invariant under the loader's operand
   canonicalisation (Glob -> Imm never touches Reg operands), so these
   static counts line up exactly with what Vm.Exec counts dynamically. *)
let block_counts (b : Ir.Func.block) =
  let reads = ref 0 and writes = ref 0 in
  Array.iter
    (fun ins ->
      if Ir.Instr.src_regs ins <> [] then incr reads;
      if Ir.Instr.dst_reg ins <> None then incr writes)
    b.b_instrs;
  if Ir.Instr.term_src_regs b.b_term <> [] then incr reads;
  { reads = !reads; writes = !writes }

let func_counts (f : Ir.Func.t) = Array.map block_counts f.f_blocks

let static_counts (m : Ir.Func.modl) =
  List.fold_left
    (fun acc f -> Array.fold_left add acc (func_counts f))
    zero m.m_funcs

(* Same weighting as [predict], but over pre-counted per-block site
   tables (e.g. Vm.Code's packed tables) instead of a fresh IR walk.
   Plain int arrays keep this library independent of the VM. *)
let predict_sites ~(reads : int array array) ~(writes : int array array)
    ~(profile : int array array) =
  let acc = ref zero in
  Array.iteri
    (fun fidx per_block ->
      Array.iteri
        (fun bidx r ->
          let k = profile.(fidx).(bidx) in
          acc :=
            add !acc
              { reads = k * r; writes = k * writes.(fidx).(bidx) })
        per_block)
    reads;
  !acc

let predict (m : Ir.Func.modl) ~(profile : int array array) =
  List.fold_left
    (fun acc (fidx, f) ->
      let per_block = func_counts f in
      let acc = ref acc in
      Array.iteri
        (fun bidx c -> acc := add !acc (scale profile.(fidx).(bidx) c))
        per_block;
      !acc)
    zero
    (List.mapi (fun i f -> (i, f)) m.m_funcs)
