(** Classic backward may-liveness of virtual registers.

    A register is {e live} at a program point if some path from that
    point reads it before (or without) overwriting it.  A bit-flip landing
    in a register that is dead at the flip point can never change the
    program's behaviour — the coarse, whole-register version of the
    pruning argument that {!Bitmask} refines to individual bits. *)

type t

val analyse : Cfg.t -> t

val live_before : t -> bidx:int -> idx:int -> Bitset.t
(** Registers live just before point [idx] of block [bidx]; [idx] equal
    to the block's instruction count designates the terminator. *)

val live_after : t -> bidx:int -> idx:int -> Bitset.t
(** Registers live just after point [idx] (after the terminator this is
    the block's exit state: the join of the successors' entry states). *)

val live_in : t -> int -> Bitset.t
(** Live registers at a block's entry. *)

val live_out : t -> int -> Bitset.t
(** Live registers at a block's exit. *)
