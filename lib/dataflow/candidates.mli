(** Static prediction of the dynamic injection-candidate counts.

    An instruction is an inject-on-read candidate iff it has at least one
    register source operand, an inject-on-write candidate iff it writes a
    register — the same predicate [Vm.Exec] applies per dynamic
    instruction.  Weighting each block's static counts by its golden-run
    execution frequency therefore reproduces the dynamic Table II counts
    {e exactly}, which the test suite asserts for every bench program. *)

type counts = { reads : int; writes : int }

val zero : counts
val add : counts -> counts -> counts

val block_counts : Ir.Func.block -> counts
val func_counts : Ir.Func.t -> counts array

val static_counts : Ir.Func.modl -> counts
(** Unweighted totals over all blocks (each static site counted once). *)

val predict : Ir.Func.modl -> profile:int array array -> counts
(** Static per-block counts weighted by the golden-run block execution
    frequencies recorded in [Core.Workload.profile]. *)

val predict_sites :
  reads:int array array ->
  writes:int array array ->
  profile:int array array ->
  counts
(** Like {!predict}, but consuming pre-counted per-block site tables
    (indexed [fidx].[bidx], as produced by [Vm.Code.site_reads]/
    [site_writes]) instead of re-walking the IR; plain arrays so this
    library stays VM-independent. *)
