(** Reaching definitions and def-use chains.

    A {e definition} is an instruction writing a register, plus one
    {e entry pseudo-definition} per register (parameter binding or the
    VM's zero-initialisation) so that every read has at least one
    reaching definition.  A definition {e reaches} a point if some path
    from the definition to the point does not overwrite the register. *)

type def = {
  def_reg : int;
  def_bidx : int;  (** -1 for an entry pseudo-definition *)
  def_idx : int;
}

val is_entry : def -> bool

type t

val analyse : Cfg.t -> t
val defs : t -> def array

val reaching_before : t -> bidx:int -> idx:int -> Bitset.t
(** Ids (indices into [defs]) of the definitions reaching the point just
    before [idx] in block [bidx]; [idx] at or past the instruction count
    designates the terminator. *)

val reaching_of_reg : t -> bidx:int -> idx:int -> reg:int -> def list
(** The reaching definitions of one register at a point — the def-use
    chain entry for that use. *)

val def_uses : t -> (int * int) list array
(** For each definition id, the [(bidx, idx)] points whose instruction
    (or terminator, at [idx] = block length) may read its value. *)
