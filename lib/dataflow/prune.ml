type verdict = Provably_benign | Must_run

type t = { func : Ir.Func.t; bm : Bitmask.t }

let analyse f = { func = f; bm = Bitmask.analyse f }

(* An inject-on-read flip lands in the register itself immediately before
   the instruction executes, so it is seen by (a) every operand slot of
   the instruction that names the register and (b) — unless the
   instruction overwrites the register — every later consumer.  The
   demand at the site is therefore the union of the instruction's own use
   demands for that register and the residual demand after it. *)
let read_demand t ~bidx ~idx ~reg =
  let b = t.func.f_blocks.(bidx) in
  let n = Array.length b.b_instrs in
  let after = Bitmask.demand_after t.bm ~bidx ~idx in
  let uses =
    if idx = n then Bitmask.term_uses t.func.f_reg_ty b.b_term
    else Bitmask.instr_uses t.func.f_reg_ty b.b_instrs.(idx) ~after
  in
  let use_demand =
    List.fold_left
      (fun acc (r, d) -> if r = reg then acc lor d else acc)
      0 uses
  in
  let redefines =
    idx < n && Ir.Instr.dst_reg b.b_instrs.(idx) = Some reg
  in
  let residual = if redefines then 0 else after.(reg) in
  use_demand lor residual

(* An inject-on-write flip lands in the destination register right after
   the instruction writes it: only the demand downstream matters. *)
let write_demand t ~bidx ~idx =
  let b = t.func.f_blocks.(bidx) in
  let dst =
    match Ir.Instr.dst_reg b.b_instrs.(idx) with
    | Some d -> d
    | None -> invalid_arg "Prune.write_demand: instruction has no destination"
  in
  (Bitmask.demand_after t.bm ~bidx ~idx).(dst)

let is_benign ty ~demand ~bit =
  if Ir.Ty.is_float ty then demand = 0 else (demand lsr bit) land 1 = 0

(* Bit positions the injector can target: [Ty.width], except f64 where it
   flips any of the 64 IEEE representation bits. *)
let flip_width ty = if Ir.Ty.is_float ty then 64 else Ir.Ty.width ty

let benign_bits ty ~demand =
  if Ir.Ty.is_float ty then (if demand = 0 then 64 else 0)
  else
    let w = Ir.Ty.width ty in
    w - Ir.Bits.popcount (demand land Bitmask.full_width w)

let classify_read t ~bidx ~idx ~reg ~bit =
  let demand = read_demand t ~bidx ~idx ~reg in
  if is_benign t.func.f_reg_ty.(reg) ~demand ~bit then Provably_benign
  else Must_run

let classify_write t ~bidx ~idx ~bit =
  let b = t.func.f_blocks.(bidx) in
  let dst = Option.get (Ir.Instr.dst_reg b.b_instrs.(idx)) in
  let demand = write_demand t ~bidx ~idx in
  if is_benign t.func.f_reg_ty.(dst) ~demand ~bit then Provably_benign
  else Must_run

(* A write-site flip of [dst] whose next same-block mention of [dst] is a
   read at point [j] is outcome-equivalent to the read-site flip at [j]
   with the same bit: the instructions in between do not touch the
   register, execute exactly as in the fault-free run (so no trap or hang
   can separate the two sites), and both occurrences sit in the same
   block, hence execute in lockstep.  Such experiments are redundant —
   their outcome is predictable from the read campaign (FastFlip-style
   composition). *)
let forwarded_write t ~bidx ~idx =
  let b = t.func.f_blocks.(bidx) in
  let n = Array.length b.b_instrs in
  match Ir.Instr.dst_reg b.b_instrs.(idx) with
  | None -> None
  | Some r ->
      let rec scan j =
        if j >= n then
          if List.mem r (Ir.Instr.term_src_regs b.b_term) then Some n
          else None
        else
          let ins = b.b_instrs.(j) in
          if List.mem r (Ir.Instr.src_regs ins) then Some j
          else if Ir.Instr.dst_reg ins = Some r then None
          else scan (j + 1)
      in
      scan (idx + 1)

type summary = {
  read_total : int;
  read_benign : int;
  read_redundant : int;
  write_total : int;
  write_benign : int;
  write_redundant : int;
}

(* Size of the single-bit error space: one element per (dynamic candidate,
   operand slot, bit position) for reads, (dynamic candidate, bit) for
   writes — exactly the population the injector samples uniformly.
   [profile] gives the golden-run execution count of each (function,
   block), as recorded by [Core.Workload]. *)
let summarise (m : Ir.Func.modl) ~(profile : int array array) =
  let acc =
    ref
      {
        read_total = 0;
        read_benign = 0;
        read_redundant = 0;
        write_total = 0;
        write_benign = 0;
        write_redundant = 0;
      }
  in
  List.iteri
    (fun fidx (f : Ir.Func.t) ->
      let t = analyse f in
      Array.iteri
        (fun bidx (b : Ir.Func.block) ->
          let freq = profile.(fidx).(bidx) in
          if freq > 0 then begin
            let n = Array.length b.b_instrs in
            (* Duplicate slots of the same register at one instruction are
               redundant: the injector flips the register, so every slot
               naming it yields the same faulty run. *)
            let site idx srcs =
              let seen = ref [] in
              List.iter
                (fun reg ->
                  let ty = f.f_reg_ty.(reg) in
                  let w = flip_width ty in
                  let demand = read_demand t ~bidx ~idx ~reg in
                  let benign = benign_bits ty ~demand in
                  let dup = List.mem reg !seen in
                  seen := reg :: !seen;
                  acc :=
                    {
                      !acc with
                      read_total = !acc.read_total + (freq * w);
                      read_benign = !acc.read_benign + (freq * benign);
                      read_redundant =
                        (!acc.read_redundant
                        + if dup then freq * (w - benign) else 0);
                    })
                srcs
            in
            Array.iteri (fun idx ins -> site idx (Ir.Instr.src_regs ins)) b.b_instrs;
            site n (Ir.Instr.term_src_regs b.b_term);
            Array.iteri
              (fun idx ins ->
                match Ir.Instr.dst_reg ins with
                | None -> ()
                | Some dst ->
                    let ty = f.f_reg_ty.(dst) in
                    let w = flip_width ty in
                    let demand = write_demand t ~bidx ~idx in
                    let benign = benign_bits ty ~demand in
                    let fwd = forwarded_write t ~bidx ~idx <> None in
                    acc :=
                      {
                        !acc with
                        write_total = !acc.write_total + (freq * w);
                        write_benign = !acc.write_benign + (freq * benign);
                        write_redundant =
                          (!acc.write_redundant
                          + if fwd then freq * (w - benign) else 0);
                      })
              b.b_instrs
          end)
        f.f_blocks)
    m.m_funcs;
  !acc

let benign_fraction ~total ~benign =
  if total = 0 then 0.0 else float_of_int benign /. float_of_int total
