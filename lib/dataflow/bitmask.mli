(** Backward demanded-bits analysis (in the style of BEC's bit-level
    static analysis, PAPERS.md).

    For every program point and register, computes a mask of the bits
    whose value can still influence something observable — output bytes,
    traps, control flow or memory — on some path from that point.  A bit
    outside the mask is {e dead}: flipping it there is provably benign,
    which is what {!Prune} exploits.

    Integer masks use canonical bit positions [0 .. width-1].  F64
    registers cannot be tracked per-bit in a native int, so their demand
    is boolean: [0] (no path reads the register — all 64 bits dead) or
    [-1] (possibly read — all bits demanded). *)

val full_width : int -> int
(** Mask of a given bit width ([-1] at the native word size). *)

val full_of : Ir.Ty.t -> int
(** Full demand mask of a register of the given type. *)

val instr_uses :
  ?call_demand:(string -> int array option) ->
  Ir.Ty.t array ->
  Ir.Instr.t ->
  after:int array ->
  (int * int) list
(** [(register, demand)] contributed by each Reg source-operand slot of
    the instruction, aligned with [Ir.Instr.src_regs] order, given the
    per-register demand [after] the instruction.

    [call_demand callee] may supply per-parameter entry demand masks for
    a module function, refining the default assumption that call
    arguments escape fully.  The masks must be a sound fixpoint for the
    callee (everything the callee can observably do with each parameter
    bit), e.g. the [params_demanded] of {!Summary}. *)

val term_uses : Ir.Ty.t array -> Ir.Instr.terminator -> (int * int) list
(** Same for a terminator (control flow and returns demand fully). *)

type t

val analyse : ?call_demand:(string -> int array option) -> Ir.Func.t -> t
val analyse_cfg : ?call_demand:(string -> int array option) -> Cfg.t -> t

val demand_before : t -> bidx:int -> idx:int -> int array
(** Per-register demand just before point [idx] of block [bidx]; [idx]
    equal to the block's instruction count designates the terminator.
    The returned array must not be mutated. *)

val demand_after : t -> bidx:int -> idx:int -> int array
(** Demand just after point [idx]; after the terminator this is the
    block-exit state (join of successor entry states). *)
