type t = {
  func : Ir.Func.t;
  nblocks : int;
  succs : int array array;
  preds : int array array;
  rpo : int array;
  reachable : bool array;
}

let term_succs (t : Ir.Instr.terminator) =
  match t with
  | Br l -> [ l ]
  | Cbr { if_true; if_false; _ } ->
      if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Ret _ | Unreachable -> []

let of_func (f : Ir.Func.t) =
  let n = Array.length f.f_blocks in
  let succs =
    Array.map
      (fun (b : Ir.Func.block) -> Array.of_list (term_succs b.b_term))
      f.f_blocks
  in
  let pred_lists = Array.make n [] in
  Array.iteri
    (fun b ss -> Array.iter (fun s -> pred_lists.(s) <- b :: pred_lists.(s)) ss)
    succs;
  let preds = Array.map (fun l -> Array.of_list (List.rev l)) pred_lists in
  let reachable = Array.make n false in
  let post = ref [] in
  let rec dfs b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      Array.iter dfs succs.(b);
      post := b :: !post
    end
  in
  if n > 0 then dfs 0;
  { func = f; nblocks = n; succs; preds; rpo = Array.of_list !post; reachable }

let unreachable_blocks t =
  let l = ref [] in
  for b = t.nblocks - 1 downto 0 do
    if not t.reachable.(b) then l := b :: !l
  done;
  !l
