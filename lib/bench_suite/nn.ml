(* Fixed-point neural-network inference: a two-layer Q8.8 MLP classifying
   8x8 digit bitmaps.

   The first ten hidden units are matched filters for the ten digit
   prototypes (positive weight on the prototype's pixels, a small
   negative weight elsewhere); the remaining units carry pseudo-random
   weights so the weight arena has realistic mass and entropy.  The
   output layer passes each matched filter straight through to its
   class, so the argmax over the ten scores is the digit whose
   prototype the input most resembles.  The input set is prototypes
   with one pixel toggled — a known-answer test (ground truth below,
   asserted by the suite tests).

   All arithmetic is Q8.8 fixed point on I32: weights are raw
   fractional values (256 = 1.0), pixels are 0 or 256, and every
   product is rescaled with an arithmetic shift right by 8.
   Magnitudes stay far below 2^31, so the OCaml reference mirrors the
   VM byte-exactly with plain int arithmetic.

   The weight arena is deliberately the largest memory image in the
   suite (~54 KB small, ~69 KB large): weight-bit flips a la
   BitFlipScope/SBFA are a huge, extremely skewed error space — most
   flips land in low-order bits or in filters the argmax ignores — and
   that skew is exactly what the adaptive sampler (Engine.Adaptive) is
   for. *)

module B = Ir.Build

let side = 8
let npix = side * side
let nclasses = 10

(* 8x8 digit prototypes; '#' = pixel on. *)
let glyphs =
  [|
    (* 0 *)
    [| "........";
       ".####...";
       "#....#..";
       "#....#..";
       "#....#..";
       "#....#..";
       ".####...";
       "........" |];
    (* 1 *)
    [| "........";
       "..##....";
       ".#.#....";
       "...#....";
       "...#....";
       "...#....";
       ".#####..";
       "........" |];
    (* 2 *)
    [| "........";
       ".####...";
       "#....#..";
       "....#...";
       "...#....";
       "..#.....";
       "######..";
       "........" |];
    (* 3 *)
    [| "........";
       "#####...";
       ".....#..";
       "..###...";
       ".....#..";
       "#....#..";
       ".####...";
       "........" |];
    (* 4 *)
    [| "........";
       "...##...";
       "..#.#...";
       ".#..#...";
       "######..";
       "....#...";
       "....#...";
       "........" |];
    (* 5 *)
    [| "........";
       "######..";
       "#.......";
       "#####...";
       ".....#..";
       "#....#..";
       ".####...";
       "........" |];
    (* 6 *)
    [| "........";
       "..###...";
       ".#......";
       "#####...";
       "#....#..";
       "#....#..";
       ".####...";
       "........" |];
    (* 7 *)
    [| "........";
       "######..";
       ".....#..";
       "....#...";
       "...#....";
       "..#.....";
       "..#.....";
       "........" |];
    (* 8 *)
    [| "........";
       ".####...";
       "#....#..";
       ".####...";
       "#....#..";
       "#....#..";
       ".####...";
       "........" |];
    (* 9 *)
    [| "........";
       ".####...";
       "#....#..";
       "#....#..";
       ".#####..";
       "......#.";
       ".####...";
       "........" |];
  |]

let proto d =
  Array.init npix (fun i ->
      if glyphs.(d).(i / side).[i mod side] = '#' then 1 else 0)

(* ---- baked parameters, shared by the IR build and the reference ---- *)

(* Row j < 10 is the matched filter for digit j; rows beyond are
   pseudo-random ballast in [-32, 32]. *)
let w1 ~hidden =
  let noise = Util.gen ~seed:88 ~n:(hidden * npix) ~bound:65 in
  Array.init (hidden * npix) (fun idx ->
      let j = idx / npix and i = idx mod npix in
      if j < nclasses then if (proto j).(i) = 1 then 48 else -12
      else noise.(idx) - 32)

let b1 ~hidden =
  let noise = Util.gen ~seed:89 ~n:hidden ~bound:33 in
  Array.init hidden (fun j -> if j < nclasses then 0 else noise.(j) - 16)

(* Identity passthrough for the matched filters; zero elsewhere (zero
   weights are still injection targets — a flipped bit turns one on). *)
let w2 ~hidden =
  Array.init (nclasses * hidden) (fun idx ->
      let k = idx / hidden and j = idx mod hidden in
      if j = k then 256 else 0)

let b2 = Array.make nclasses 0

(* The known-answer input set: each listed digit's prototype with one
   deterministically chosen pixel toggled. *)
let inputs_of labels =
  List.map
    (fun d ->
      let px = proto d in
      let t = ((13 * d) + 5) mod npix in
      px.(t) <- 1 - px.(t);
      px)
    labels

(* ---- the program ---- *)

let make ~name ~hidden ~labels =
  let inputs = inputs_of labels in
  let ninputs = List.length inputs in
  let input_bytes = Array.concat inputs in
  let w1 = w1 ~hidden and b1 = b1 ~hidden and w2 = w2 ~hidden in
  let build () =
    let m = B.create () in
    B.global_u8s m "inputs" input_bytes;
    B.global_i32s m "w1" w1;
    B.global_i32s m "b1" b1;
    B.global_i32s m "w2" w2;
    B.global_i32s m "b2" b2;
    B.global_zeros m "xq" (npix * 4);
    B.global_zeros m "hidden" (hidden * 4);
    B.func m "main" ~params:[] ~ret:None (fun f ->
        B.for_ f ~from_:(B.ci 0) ~below:(B.ci ninputs) (fun p ->
            (* Quantise this input's pixels to Q8.8 (0 or 256). *)
            let base = B.mul f I32 p (B.ci npix) in
            B.for_ f ~from_:(B.ci 0) ~below:(B.ci npix) (fun i ->
                let bp =
                  B.gep f ~base:(B.glob "inputs")
                    ~index:(B.add f I32 base i) ~scale:1
                in
                let pix = B.cast f Zext ~from_ty:I8 ~to_ty:I32 (B.load f I8 bp) in
                let q = B.shl f I32 pix (B.ci 8) in
                let xp = B.gep f ~base:(B.glob "xq") ~index:i ~scale:4 in
                B.store f I32 ~value:q ~addr:xp);
            (* Hidden layer: h_j = relu(b1_j + sum_i (w1_ji * x_i) >> 8). *)
            B.for_ f ~from_:(B.ci 0) ~below:(B.ci hidden) (fun j ->
                let acc =
                  B.local_init f I32
                    (B.load f I32 (B.gep f ~base:(B.glob "b1") ~index:j ~scale:4))
                in
                let row = B.mul f I32 j (B.ci npix) in
                B.for_ f ~from_:(B.ci 0) ~below:(B.ci npix) (fun i ->
                    let wp =
                      B.gep f ~base:(B.glob "w1")
                        ~index:(B.add f I32 row i) ~scale:4
                    in
                    let w = B.load f I32 wp in
                    let x = B.load f I32 (B.gep f ~base:(B.glob "xq") ~index:i ~scale:4) in
                    let prod = B.ashr f I32 (B.mul f I32 w x) (B.ci 8) in
                    B.set f acc (B.add f I32 (B.r acc) prod));
                let pos = B.sgt f I32 (B.r acc) (B.ci 0) in
                let h = B.select f I32 ~cond:pos (B.r acc) (B.ci 0) in
                B.store f I32 ~value:h
                  ~addr:(B.gep f ~base:(B.glob "hidden") ~index:j ~scale:4));
            (* Output layer + argmax; every score is emitted, then the
               predicted class. *)
            let best = B.local_init f I32 (B.ci (-0x40000000)) in
            let bidx = B.local_init f I32 (B.ci 0) in
            B.for_ f ~from_:(B.ci 0) ~below:(B.ci nclasses) (fun k ->
                let acc =
                  B.local_init f I32
                    (B.load f I32 (B.gep f ~base:(B.glob "b2") ~index:k ~scale:4))
                in
                let row = B.mul f I32 k (B.ci hidden) in
                B.for_ f ~from_:(B.ci 0) ~below:(B.ci hidden) (fun j ->
                    let wp =
                      B.gep f ~base:(B.glob "w2")
                        ~index:(B.add f I32 row j) ~scale:4
                    in
                    let w = B.load f I32 wp in
                    let h =
                      B.load f I32
                        (B.gep f ~base:(B.glob "hidden") ~index:j ~scale:4)
                    in
                    let prod = B.ashr f I32 (B.mul f I32 w h) (B.ci 8) in
                    B.set f acc (B.add f I32 (B.r acc) prod));
                B.output f I32 (B.r acc);
                let gt = B.sgt f I32 (B.r acc) (B.r best) in
                B.set f bidx (B.select f I32 ~cond:gt k (B.r bidx));
                B.set f best (B.select f I32 ~cond:gt (B.r acc) (B.r best)));
            B.output f I32 (B.r bidx)));
    B.finish m
  in
  let reference () =
    let out = Util.Out.create () in
    List.iter
      (fun px ->
        let x = Array.map (fun p -> p lsl 8) px in
        let h =
          Array.init hidden (fun j ->
              let acc = ref b1.(j) in
              for i = 0 to npix - 1 do
                acc := !acc + ((w1.((j * npix) + i) * x.(i)) asr 8)
              done;
              if !acc > 0 then !acc else 0)
        in
        let best = ref (-0x40000000) and bidx = ref 0 in
        for k = 0 to nclasses - 1 do
          let acc = ref b2.(k) in
          for j = 0 to hidden - 1 do
            acc := !acc + ((w2.((k * hidden) + j) * h.(j)) asr 8)
          done;
          Util.Out.i32 out !acc;
          if !acc > !best then begin
            best := !acc;
            bidx := k
          end
        done;
        Util.Out.i32 out !bidx)
      inputs;
    Util.Out.contents out
  in
  {
    Desc.name;
    suite = "parboil";
    package = "nn";
    description =
      Printf.sprintf
        "fixed-point Q8.8 two-layer MLP (%d hidden units, ~%d KB of baked \
         weights) classifying %d perturbed 8x8 digit bitmaps; scores and \
         argmax emitted per input"
        hidden
        (((hidden * npix) + (nclasses * hidden)) * 4 / 1024)
        ninputs;
    build;
    reference;
  }

(* Ground-truth classes of each entry's input set, for the known-answer
   tests: the classifier must label a one-pixel-perturbed prototype with
   its source digit. *)
let labels = [ 3; 7 ]
let labels_large = [ 0; 1; 4; 8; 9 ]
let entry = make ~name:"nn" ~hidden:176 ~labels
let entry_large = make ~name:"nn-large" ~hidden:224 ~labels:labels_large

(* The class index emitted after each input's ten scores, decoded from
   an output stream (little-endian i32s, 11 per input). *)
let predictions output =
  let n = String.length output / (4 * (nclasses + 1)) in
  List.init n (fun p ->
      let off = ((p * (nclasses + 1)) + nclasses) * 4 in
      Int32.to_int (String.get_int32_le output off))
