(** The benchmark programs of the study (Table II of the paper).

    MiBench ships a small and a large input per program and the paper runs
    the small ones; both are provided here.  [all] is the paper's
    15-program small-input suite; [large] carries the same programs at
    4-10x the dynamic length under names suffixed ["-large"]. *)

val all : Desc.t list
(** Small inputs, in the paper's Table II order: the 11 MiBench programs
    followed by the 4 Parboil programs. *)

val large : Desc.t list
(** The large-input variants, same order. *)

val extras : Desc.t list
(** Programs beyond the paper's Table II suite (currently the
    fixed-point NN inference pair ["nn"]/["nn-large"]).  Not part of
    [all], so the paper-study tables keep the study's 15 programs;
    {!find} resolves them. *)

val names : string list
(** Names of [all] (small inputs only). *)

val find : string -> Desc.t option
(** Looks up both suites, e.g. ["crc32"] or ["crc32-large"]. *)
