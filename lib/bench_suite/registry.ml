let all =
  [
    Basicmath.entry;
    Qsort.entry;
    Susan.corners;
    Susan.edges;
    Susan.smoothing;
    Fft.fft;
    Fft.ifft;
    Crc32.entry;
    Dijkstra.entry;
    Sha.entry;
    Stringsearch.entry;
    Bfs.entry;
    Histo.entry;
    Sad.entry;
    Spmv.entry;
  ]

let large =
  [
    Basicmath.entry_large;
    Qsort.entry_large;
    Susan.corners_large;
    Susan.edges_large;
    Susan.smoothing_large;
    Fft.fft_large;
    Fft.ifft_large;
    Crc32.entry_large;
    Dijkstra.entry_large;
    Sha.entry_large;
    Stringsearch.entry_large;
    Bfs.entry_large;
    Histo.entry_large;
    Sad.entry_large;
    Spmv.entry_large;
  ]

(* Programs beyond the paper's Table II suite.  Kept out of [all] so the
   paper-study tables and tests stay at the study's 15 programs; [find]
   resolves them for campaigns, benches and the CLI. *)
let extras = [ Nn.entry; Nn.entry_large ]

let names = List.map (fun (e : Desc.t) -> e.name) all

let find name =
  List.find_opt (fun (e : Desc.t) -> e.name = name) (all @ large @ extras)
