(** Instructions of the intermediate representation.

    The operand structure mirrors what an LLFI-style injector targets: each
    instruction has zero or more {e register source operands} (inject-on-read
    candidates) and at most one {e destination register} (inject-on-write
    candidate).  [Store], branches and [Ret] have no destination, which is
    why the inject-on-write candidate set is smaller than the inject-on-read
    set — the asymmetry Table II of the paper reports. *)

type operand =
  | Reg of int  (** virtual register of the enclosing function *)
  | Imm of int  (** integer/pointer immediate, canonicalised by the loader *)
  | FImm of float  (** floating-point immediate *)
  | Glob of string  (** address of a global; resolved to [Imm] at load time *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge
type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge

type cast =
  | Trunc  (** to a narrower integer type *)
  | Zext  (** to a wider integer type, zero-extending *)
  | Sext  (** to a wider integer type, sign-extending *)
  | Fptosi  (** f64 to signed integer, truncating toward zero *)
  | Sitofp  (** signed integer to f64 *)
  | Ptrtoint  (** ptr to integer type *)
  | Inttoptr  (** integer type to ptr *)

type t =
  | Binop of { op : binop; ty : Ty.t; dst : int; a : operand; b : operand }
  | Fbinop of { op : fbinop; dst : int; a : operand; b : operand }
  | Icmp of { op : icmp; ty : Ty.t; dst : int; a : operand; b : operand }
      (** [ty] is the type of the compared operands; [dst] is [I1]. *)
  | Fcmp of { op : fcmp; dst : int; a : operand; b : operand }
  | Select of { ty : Ty.t; dst : int; cond : operand; a : operand; b : operand }
  | Cast of { op : cast; from_ty : Ty.t; to_ty : Ty.t; dst : int; a : operand }
  | Mov of { ty : Ty.t; dst : int; a : operand }
  | Load of { ty : Ty.t; dst : int; addr : operand }
  | Store of { ty : Ty.t; value : operand; addr : operand }
  | Gep of { dst : int; base : operand; index : operand; scale : int }
      (** [dst = base + sext32(index) * scale], pointer arithmetic.
          [index] is read as a 32-bit signed value. *)
  | Call of { dst : int option; callee : string; args : operand list }
  | Output of { ty : Ty.t; value : operand }
      (** Append the value, as [Ty.bytes ty] little-endian bytes, to the
          program's output stream (SDC detection is a bitwise comparison of
          this stream against the fault-free run). *)
  | Guard of { ty : Ty.t; a : operand; b : operand }
      (** Software error detector: trap with [Guard_violation] unless the
          two operands are bitwise equal ([F64] compares IEEE bit patterns,
          so duplicated NaNs pass).  This is the check instruction that
          duplication-based hardening passes (SWIFT/EDDI style) insert; its
          operands are ordinary inject-on-read candidates. *)
  | Abort  (** raise the Abort trap, as a program calling [abort()] *)

type terminator =
  | Br of int  (** unconditional jump to a block index *)
  | Cbr of { cond : operand; if_true : int; if_false : int }
  | Ret of operand option
  | Unreachable  (** traps as [Abort] if ever executed *)

val src_regs : t -> int list
(** Register source operands, in operand order (duplicates preserved:
    [add r1, r1] lists r1 twice, and a flip targets one operand slot). *)

val dst_reg : t -> int option

val term_src_regs : terminator -> int list

val map_regs : (int -> int) -> t -> t
(** Rewrite every register operand and the destination through a renaming
    function.  Immediates, globals and structure are untouched. *)

val term_map_regs : (int -> int) -> terminator -> terminator

val binop_name : binop -> string
val fbinop_name : fbinop -> string
val icmp_name : icmp -> string
val fcmp_name : fcmp -> string
val cast_name : cast -> string
