(** Content digests for functions and modules.

    The compositional campaign cache ([Engine.Incremental]) keys
    per-function outcome profiles by the function's {e identity} digest
    together with the module's {e environment} digest.  The identity
    digest pins the exact source form of the function; the environment
    digest pins everything that determines the golden run and the
    candidate/PRNG stream (globals in layout order plus the semantic
    digests of all functions reachable from the entry).  Editing one
    function in a way that preserves its semantic digest — renaming
    registers or block labels — therefore invalidates only that
    function's own profiles. *)

val func : Func.t -> string
(** Identity digest: MD5 hex of the printed function plus its
    register-type table.  Changes iff the function's source form
    changes. *)

val func_semantic : Func.t -> string
(** Semantic digest: MD5 hex of the alpha-renamed canonical form
    ([canonical]).  Stable under register renumbering, block-label
    renaming and unused-register padding. *)

val canonical : Func.t -> Func.t
(** The canonical alpha-renamed form: parameters keep indices
    [0..k-1], other registers are renumbered by first occurrence,
    never-occurring registers are dropped, block labels become
    [b<index>], and the name is erased.  For digesting only — the
    result is printable but not necessarily validated. *)

val modl : Func.modl -> string
(** Whole-module digest: MD5 hex of [Pp.modl].  This is the digest the
    workload cache and decode cache key on. *)

val callees : Func.t -> string list
(** Direct callee names in first-occurrence order, deduplicated;
    includes builtins. *)

val reachable : ?entry:string -> Func.modl -> string list
(** Names of module functions reachable from [entry] (default
    ["main"]) over direct calls, in module order.  If [entry] is not a
    module function every function is returned. *)

val environment : ?entry:string -> Func.modl -> string
(** Environment digest: MD5 hex over the globals (in module order —
    layout assigns addresses by position) and the sorted
    [(name, semantic digest)] pairs of the functions reachable from
    [entry]. *)
