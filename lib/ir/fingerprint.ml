(* Content digests for functions and modules.

   Two digests are computed per function.  The *identity* digest hashes
   the function exactly as written (name, block labels, register
   numbering, register-type table), so it changes whenever the source
   form of the function changes at all — this is the key under which
   per-function outcome profiles are cached.  The *semantic* digest
   hashes an alpha-renamed canonical form in which block labels and
   non-parameter register numbers are replaced by discovery order, so it
   is stable under renamings that cannot affect execution.  The
   environment digest of a function folds together the globals (in
   module order, because layout assigns addresses by position) and the
   semantic digests of every function reachable from the entry point: if
   it is unchanged, the golden run, the candidate stream and every PRNG
   draw of a campaign are unchanged, which is what makes cached
   per-function profiles sound to reuse. *)

let md5 s = Digest.to_hex (Digest.string s)

(* [Pp.func] does not print the register-type table; registers used by
   instructions have their types implied, but the table also sizes the
   frame, so fold it in explicitly. *)
let reg_ty_footer (tys : Ty.t array) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "; regs:";
  Array.iter
    (fun t ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Ty.to_string t))
    tys;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let func_print (f : Func.t) = Pp.func f ^ reg_ty_footer f.f_reg_ty

let func f = md5 (func_print f)

(* Canonical form: parameters keep their indices, every other register is
   renumbered by first occurrence (sources before destination, blocks in
   order), registers that never occur are dropped, block labels become
   their indices, and the function name is erased. *)
let canonical (f : Func.t) : Func.t =
  let nparams = List.length f.f_params in
  let map = Hashtbl.create 32 in
  let next = ref nparams in
  let tys = ref [] in
  for i = 0 to nparams - 1 do
    Hashtbl.replace map i i
  done;
  let touch r =
    if not (Hashtbl.mem map r) then begin
      Hashtbl.replace map r !next;
      tys := f.f_reg_ty.(r) :: !tys;
      incr next
    end
  in
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (fun i ->
          List.iter touch (Instr.src_regs i);
          Option.iter touch (Instr.dst_reg i))
        b.b_instrs;
      List.iter touch (Instr.term_src_regs b.b_term))
    f.f_blocks;
  let rename r = Hashtbl.find map r in
  let blocks =
    Array.mapi
      (fun bidx (b : Func.block) ->
        {
          Func.b_name = Printf.sprintf "b%d" bidx;
          b_instrs = Array.map (Instr.map_regs rename) b.b_instrs;
          b_term = Instr.term_map_regs rename b.b_term;
        })
      f.f_blocks
  in
  let param_tys = Array.of_list f.f_params in
  let reg_ty =
    Array.init !next (fun _ -> Ty.I64)
  in
  Array.iteri (fun i t -> reg_ty.(i) <- t) param_tys;
  List.iteri
    (fun i t -> reg_ty.(!next - 1 - i) <- t)
    !tys;
  { f with f_name = "f"; f_blocks = blocks; f_reg_ty = reg_ty }

let func_semantic f = md5 (func_print (canonical f))

let modl (m : Func.modl) = md5 (Pp.modl m)

let callees (f : Func.t) =
  let acc = ref [] in
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (function
          | Instr.Call { callee; _ } ->
              if not (List.mem callee !acc) then acc := callee :: !acc
          | _ -> ())
        b.b_instrs)
    f.f_blocks;
  List.rev !acc

let reachable ?(entry = "main") (m : Func.modl) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (f : Func.t) -> Hashtbl.replace tbl f.f_name f) m.m_funcs;
  if not (Hashtbl.mem tbl entry) then
    (* no such entry: be conservative, everything matters *)
    List.map (fun (f : Func.t) -> f.f_name) m.m_funcs
  else begin
    let seen = Hashtbl.create 16 in
    let rec visit name =
      match Hashtbl.find_opt tbl name with
      | None -> () (* builtin *)
      | Some f ->
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.replace seen name ();
            List.iter visit (callees f)
          end
    in
    visit entry;
    List.filter_map
      (fun (f : Func.t) ->
        if Hashtbl.mem seen f.f_name then Some f.f_name else None)
      m.m_funcs
  end

let environment ?(entry = "main") (m : Func.modl) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (g : Func.global) ->
      Buffer.add_string buf ("@" ^ g.g_name ^ "=");
      Bytes.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
        g.g_init;
      Buffer.add_char buf '\n')
    m.m_globals;
  Buffer.add_string buf ("entry=" ^ entry ^ "\n");
  let names = List.sort compare (reachable ~entry m) in
  List.iter
    (fun name ->
      match Func.find_func m name with
      | Some f ->
          Buffer.add_string buf (name ^ ":" ^ func_semantic f ^ "\n")
      | None -> ())
    names;
  md5 (Buffer.contents buf)
