let check (m : Func.modl) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Globals: unique, non-empty. *)
  let global_names = Hashtbl.create 16 in
  List.iter
    (fun (g : Func.global) ->
      if Hashtbl.mem global_names g.g_name then
        err "global %s: duplicate name" g.g_name;
      Hashtbl.replace global_names g.g_name ();
      if Bytes.length g.g_init = 0 then err "global %s: empty" g.g_name)
    m.m_globals;
  (* Function signatures. *)
  let sigs = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      if Hashtbl.mem sigs f.f_name then
        err "function %s: duplicate name" f.f_name;
      if Builtins.signature f.f_name <> None then
        err "function %s: shadows a builtin" f.f_name;
      Hashtbl.replace sigs f.f_name (f.f_params, f.f_ret))
    m.m_funcs;
  let signature name =
    match Hashtbl.find_opt sigs name with
    | Some s -> Some s
    | None -> Builtins.signature name
  in
  let check_func (f : Func.t) =
    let nregs = Array.length f.f_reg_ty in
    let nblocks = Array.length f.f_blocks in
    let where = ref "" in
    let err fmt =
      Format.kasprintf
        (fun s -> errors := Printf.sprintf "%s: %s%s" f.f_name !where s :: !errors)
        fmt
    in
    if nblocks = 0 then err "no blocks";
    if List.length f.f_params > nregs then err "more params than registers";
    List.iteri
      (fun i ty ->
        if i < nregs && not (Ty.equal f.f_reg_ty.(i) ty) then
          err "param %d: register type %s differs from param type %s" i
            (Ty.to_string f.f_reg_ty.(i))
            (Ty.to_string ty))
      f.f_params;
    let reg_ty r =
      if r < 0 || r >= nregs then (
        err "register %%%d out of range" r;
        None)
      else Some f.f_reg_ty.(r)
    in
    let operand expected (o : Instr.operand) =
      match o with
      | Reg r -> (
          match reg_ty r with
          | None -> ()
          | Some t ->
              if not (Ty.equal t expected) then
                err "%%%d has type %s, expected %s" r (Ty.to_string t)
                  (Ty.to_string expected))
      | Imm _ ->
          if Ty.is_float expected then err "integer immediate where f64 expected"
      | FImm _ ->
          if not (Ty.is_float expected) then
            err "float immediate where %s expected" (Ty.to_string expected)
      | Glob g ->
          if not (Ty.equal expected Ptr) then
            err "global @%s where %s expected" g (Ty.to_string expected);
          if not (Hashtbl.mem global_names g) then err "unknown global @%s" g
    in
    let dst expected r =
      match reg_ty r with
      | None -> ()
      | Some t ->
          if not (Ty.equal t expected) then
            err "destination %%%d has type %s, expected %s" r (Ty.to_string t)
              (Ty.to_string expected)
    in
    let target l = if l < 0 || l >= nblocks then err "branch target %d out of range" l in
    let check_instr (i : Instr.t) =
      match i with
      | Binop { ty; dst = d; a; b; _ } ->
          if Ty.is_float ty then err "binop on f64 (use fadd etc.)";
          dst ty d;
          operand ty a;
          operand ty b
      | Fbinop { dst = d; a; b; _ } ->
          dst F64 d;
          operand F64 a;
          operand F64 b
      | Icmp { ty; dst = d; a; b; _ } ->
          if Ty.is_float ty then err "icmp on f64 (use fcmp)";
          dst I1 d;
          operand ty a;
          operand ty b
      | Fcmp { dst = d; a; b; _ } ->
          dst I1 d;
          operand F64 a;
          operand F64 b
      | Select { ty; dst = d; cond; a; b } ->
          dst ty d;
          operand I1 cond;
          operand ty a;
          operand ty b
      | Cast { op; from_ty; to_ty; dst = d; a } ->
          dst to_ty d;
          operand from_ty a;
          let wf = Ty.width from_ty and wt = Ty.width to_ty in
          let bad reason = err "%s: %s" (Instr.cast_name op) reason in
          (match op with
          | Trunc ->
              if Ty.is_float from_ty || Ty.is_float to_ty then bad "needs int types"
              else if wt >= wf then bad "target not narrower"
          | Zext | Sext ->
              if Ty.is_float from_ty || Ty.is_float to_ty then bad "needs int types"
              else if wt <= wf then bad "target not wider"
          | Fptosi ->
              if (not (Ty.is_float from_ty)) || Ty.is_float to_ty then
                bad "needs f64 -> int"
          | Sitofp ->
              if Ty.is_float from_ty || not (Ty.is_float to_ty) then
                bad "needs int -> f64"
          | Ptrtoint ->
              if from_ty <> Ptr || Ty.is_float to_ty || to_ty = Ptr then
                bad "needs ptr -> int"
          | Inttoptr ->
              if Ty.is_float from_ty || from_ty = Ptr || to_ty <> Ptr then
                bad "needs int -> ptr")
      | Mov { ty; dst = d; a } ->
          dst ty d;
          operand ty a
      | Load { ty; dst = d; addr } ->
          dst ty d;
          operand Ptr addr
      | Store { ty; value; addr } ->
          operand ty value;
          operand Ptr addr
      | Gep { dst = d; base; index; scale } ->
          dst Ptr d;
          operand Ptr base;
          (match index with
          | Reg r -> (
              match reg_ty r with
              | Some t when Ty.is_float t -> err "gep index must be an integer"
              | Some _ | None -> ())
          | Imm _ -> ()
          | FImm _ -> err "gep index must be an integer"
          | Glob _ -> err "gep index must be an integer");
          if scale <= 0 then err "gep scale must be positive"
      | Call { dst = d; callee; args } -> (
          match signature callee with
          | None -> err "unknown callee %s" callee
          | Some (params, ret) ->
              if List.length args <> List.length params then
                err "call %s: %d args, expected %d" callee (List.length args)
                  (List.length params)
              else List.iter2 (fun p a -> operand p a) params args;
              (match (d, ret) with
              | Some _, None -> err "call %s: captures result of void callee" callee
              | Some r, Some rt -> dst rt r
              | None, _ -> ()))
      | Output { ty; value } -> operand ty value
      | Guard { ty; a; b } ->
          operand ty a;
          operand ty b
      | Abort -> ()
    in
    let check_term (t : Instr.terminator) =
      match t with
      | Br l -> target l
      | Cbr { cond; if_true; if_false } ->
          operand I1 cond;
          target if_true;
          target if_false
      | Ret None ->
          if f.f_ret <> None then err "ret void in non-void function"
      | Ret (Some v) -> (
          match f.f_ret with
          | None -> err "ret value in void function"
          | Some ty -> operand ty v)
      | Unreachable -> ()
    in
    Array.iteri
      (fun bi (b : Func.block) ->
        Array.iteri
          (fun ii ins ->
            where := Printf.sprintf "%s[%d]: " b.b_name ii;
            check_instr ins)
          b.b_instrs;
        where := Printf.sprintf "%s[term]: " b.b_name;
        check_term b.b_term;
        ignore bi)
      f.f_blocks;
    where := "";
    (* CFG facts.  (The richer analyses live in onebit.dataflow, which
       depends on this library; these few are re-derived locally.) *)
    if nblocks > 0 then begin
      let entry = f.f_blocks.(0) in
      if
        entry.b_term = Instr.Unreachable
        && not (Array.exists (fun i -> i = Instr.Abort) entry.b_instrs)
      then err "entry block terminates in unreachable without an abort"
    end;
    let targets_of (t : Instr.terminator) =
      match t with
      | Br l -> [ l ]
      | Cbr { if_true; if_false; _ } -> [ if_true; if_false ]
      | Ret _ | Unreachable -> []
    in
    let structurally_ok =
      nblocks > 0
      && Array.for_all
           (fun (b : Func.block) ->
             List.for_all
               (fun l -> l >= 0 && l < nblocks)
               (targets_of b.b_term))
           f.f_blocks
    in
    if structurally_ok then begin
      let succs =
        Array.map (fun (b : Func.block) -> targets_of b.b_term) f.f_blocks
      in
      let reachable = Array.make nblocks false in
      let rec dfs b =
        if not reachable.(b) then begin
          reachable.(b) <- true;
          List.iter dfs succs.(b)
        end
      in
      dfs 0;
      let preds = Array.make nblocks [] in
      Array.iteri
        (fun b ss ->
          if reachable.(b) then
            List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
        succs;
      (* Must-initialisation: a register read on some reachable path
         before any definition only ever observes the VM's silent
         zero-initialisation — almost certainly a bug in the program.
         Forward analysis, intersection join, parameters initialised. *)
      let top () = Array.make nregs true in
      let entry_in = Array.make nregs false in
      List.iteri
        (fun i _ -> if i < nregs then entry_in.(i) <- true)
        f.f_params;
      let transfer bidx st =
        let st = Array.copy st in
        Array.iter
          (fun ins ->
            match Instr.dst_reg ins with
            | Some d when d >= 0 && d < nregs -> st.(d) <- true
            | Some _ | None -> ())
          f.f_blocks.(bidx).b_instrs;
        st
      in
      let input =
        Array.init nblocks (fun b ->
            if b = 0 then Array.copy entry_in else top ())
      in
      let output = Array.init nblocks (fun b -> transfer b input.(b)) in
      let changed = ref true in
      while !changed do
        changed := false;
        for b = 0 to nblocks - 1 do
          if reachable.(b) then begin
            let inb =
              List.fold_left
                (fun acc p -> Array.map2 ( && ) acc output.(p))
                (if b = 0 then Array.copy entry_in else top ())
                preds.(b)
            in
            input.(b) <- inb;
            let outb = transfer b inb in
            if outb <> output.(b) then begin
              output.(b) <- outb;
              changed := true
            end
          end
        done
      done;
      Array.iteri
        (fun bi (b : Func.block) ->
          if reachable.(bi) then begin
            let st = Array.copy input.(bi) in
            let check_srcs srcs =
              List.iter
                (fun r ->
                  if r >= 0 && r < nregs && not st.(r) then
                    err "register %%%d may be read before initialisation" r)
                srcs
            in
            Array.iteri
              (fun ii ins ->
                where := Printf.sprintf "%s[%d]: " b.b_name ii;
                check_srcs (Instr.src_regs ins);
                match Instr.dst_reg ins with
                | Some d when d >= 0 && d < nregs -> st.(d) <- true
                | Some _ | None -> ())
              b.b_instrs;
            where := Printf.sprintf "%s[term]: " b.b_name;
            check_srcs (Instr.term_src_regs b.b_term)
          end)
        f.f_blocks;
      where := ""
    end
  in
  List.iter check_func m.m_funcs;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_exn m =
  match check m with
  | Ok () -> ()
  | Error es -> invalid_arg ("Ir.Validate: " ^ String.concat "; " es)
