type operand = Reg of int | Imm of int | FImm of float | Glob of string

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv
type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge
type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge

type cast = Trunc | Zext | Sext | Fptosi | Sitofp | Ptrtoint | Inttoptr

type t =
  | Binop of { op : binop; ty : Ty.t; dst : int; a : operand; b : operand }
  | Fbinop of { op : fbinop; dst : int; a : operand; b : operand }
  | Icmp of { op : icmp; ty : Ty.t; dst : int; a : operand; b : operand }
  | Fcmp of { op : fcmp; dst : int; a : operand; b : operand }
  | Select of { ty : Ty.t; dst : int; cond : operand; a : operand; b : operand }
  | Cast of { op : cast; from_ty : Ty.t; to_ty : Ty.t; dst : int; a : operand }
  | Mov of { ty : Ty.t; dst : int; a : operand }
  | Load of { ty : Ty.t; dst : int; addr : operand }
  | Store of { ty : Ty.t; value : operand; addr : operand }
  | Gep of { dst : int; base : operand; index : operand; scale : int }
  | Call of { dst : int option; callee : string; args : operand list }
  | Output of { ty : Ty.t; value : operand }
  | Guard of { ty : Ty.t; a : operand; b : operand }
  | Abort

type terminator =
  | Br of int
  | Cbr of { cond : operand; if_true : int; if_false : int }
  | Ret of operand option
  | Unreachable

let reg_of = function Reg r -> [ r ] | Imm _ | FImm _ | Glob _ -> []

let src_regs = function
  | Binop { a; b; _ } | Fbinop { a; b; _ } | Icmp { a; b; _ } | Fcmp { a; b; _ }
    ->
      reg_of a @ reg_of b
  | Select { cond; a; b; _ } -> reg_of cond @ reg_of a @ reg_of b
  | Cast { a; _ } | Mov { a; _ } -> reg_of a
  | Load { addr; _ } -> reg_of addr
  | Store { value; addr; _ } -> reg_of value @ reg_of addr
  | Gep { base; index; _ } -> reg_of base @ reg_of index
  | Call { args; _ } -> List.concat_map reg_of args
  | Output { value; _ } -> reg_of value
  | Guard { a; b; _ } -> reg_of a @ reg_of b
  | Abort -> []

let dst_reg = function
  | Binop { dst; _ }
  | Fbinop { dst; _ }
  | Icmp { dst; _ }
  | Fcmp { dst; _ }
  | Select { dst; _ }
  | Cast { dst; _ }
  | Mov { dst; _ }
  | Load { dst; _ }
  | Gep { dst; _ } ->
      Some dst
  | Call { dst; _ } -> dst
  | Store _ | Output _ | Guard _ | Abort -> None

let term_src_regs = function
  | Br _ | Unreachable | Ret None -> []
  | Cbr { cond; _ } -> reg_of cond
  | Ret (Some v) -> reg_of v

let map_operand f = function
  | Reg r -> Reg (f r)
  | (Imm _ | FImm _ | Glob _) as op -> op

let map_regs f (i : t) : t =
  let m = map_operand f in
  match i with
  | Binop x -> Binop { x with dst = f x.dst; a = m x.a; b = m x.b }
  | Fbinop x -> Fbinop { x with dst = f x.dst; a = m x.a; b = m x.b }
  | Icmp x -> Icmp { x with dst = f x.dst; a = m x.a; b = m x.b }
  | Fcmp x -> Fcmp { x with dst = f x.dst; a = m x.a; b = m x.b }
  | Select x ->
      Select { x with dst = f x.dst; cond = m x.cond; a = m x.a; b = m x.b }
  | Cast x -> Cast { x with dst = f x.dst; a = m x.a }
  | Mov x -> Mov { x with dst = f x.dst; a = m x.a }
  | Load x -> Load { x with dst = f x.dst; addr = m x.addr }
  | Store x -> Store { x with value = m x.value; addr = m x.addr }
  | Gep x -> Gep { x with dst = f x.dst; base = m x.base; index = m x.index }
  | Call x ->
      Call { x with dst = Option.map f x.dst; args = List.map m x.args }
  | Output x -> Output { x with value = m x.value }
  | Guard x -> Guard { x with a = m x.a; b = m x.b }
  | Abort -> Abort

let term_map_regs f (t : terminator) : terminator =
  let m = map_operand f in
  match t with
  | Br _ | Unreachable | Ret None -> t
  | Cbr x -> Cbr { x with cond = m x.cond }
  | Ret (Some v) -> Ret (Some (m v))

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Udiv -> "udiv"
  | Srem -> "srem"
  | Urem -> "urem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let fbinop_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let icmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Ugt -> "ugt"
  | Uge -> "uge"

let fcmp_name = function
  | Foeq -> "oeq"
  | Fone -> "one"
  | Folt -> "olt"
  | Fole -> "ole"
  | Fogt -> "ogt"
  | Foge -> "oge"

let cast_name = function
  | Trunc -> "trunc"
  | Zext -> "zext"
  | Sext -> "sext"
  | Fptosi -> "fptosi"
  | Sitofp -> "sitofp"
  | Ptrtoint -> "ptrtoint"
  | Inttoptr -> "inttoptr"
