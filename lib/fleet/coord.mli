(** Fleet coordinator: owns a campaign grid, leases its shards to
    workers, reassigns expired or orphaned leases, and merges completed
    shards into results that are bit-identical to [Core.Campaign.run].

    The state machine is pure with respect to time — every transition
    takes an explicit [now] — so the whole failure matrix (expiry,
    duplicate completion, worker death at any point) is unit-testable
    without sockets or clocks.  {!listen}/{!serve} wrap it in a
    newline-delimited-JSON socket server ({!Proto}) with one thread per
    connection; a connection dropping (worker SIGKILL) immediately
    orphans its leases, so reassignment does not wait for the TTL.

    Crash tolerance composes with the result store: given [?store],
    shards already present are marked complete at creation (a restarted
    coordinator resumes where the last one died) and every completed
    shard is appended durably.  Duplicate completions — a reassigned
    shard finished by both the slow original worker and its replacement —
    are exact no-ops, because a shard's content depends only on
    (program, spec, seed, lo, hi). *)

type t

val create :
  ?ttl:float ->
  ?shard_size:int ->
  ?store:Store.t ->
  ?ci_target:float ->
  ?initial:int ->
  ?round_budget:int ->
  cells:Proto.cell list ->
  unit -> t
(** [ttl] (default 30s) is the lease deadline extended by heartbeats;
    [shard_size] defaults to the [Core.Config.of_env] resolution, and the
    tiling is [Engine.shards_of] — the same shards a single-process
    engine run would store.

    With [ci_target], the coordinator leases adaptive rounds instead of
    a fixed grid ({!Engine.Adaptive.Control}): each cell's [c_n] becomes
    its cap, and at every round barrier — all granted shards completed —
    the controller closes cells whose SDC Wilson half-width reached
    [ci_target] and appends the next round's grants.  Allocation reads
    only merged prefix results at barriers, so any fleet shape or kill
    history produces the identical experiment set, equal to the
    in-process {!Engine.Adaptive.run_grid} schedule.  [initial] and
    [round_budget] are the controller's knobs; the wire protocol is
    unchanged (workers cannot tell the modes apart).

    @raise Invalid_argument on an empty grid or a non-positive [n]. *)

val ttl : t -> float
val total_tasks : t -> int

val handle : t -> now:float -> conn:int -> Proto.msg -> Proto.msg
(** Process one request and produce its reply.  [conn] identifies the
    transport connection (any integer unique per connection; tests may
    use worker indices). *)

val disconnect : t -> now:float -> conn:int -> unit
(** The connection dropped: mark its worker disconnected and make every
    lease it held immediately reassignable. *)

val finished : t -> bool

val state : t -> now:float -> Proto.state

val results : t -> (Proto.cell * Core.Campaign.result) list
(** Merged per-cell results, in grid order.  Adaptive cells merge at
    their stopping point ([result.n] is the closed-at N, a shard
    boundary of the cap tiling), byte-identical to a fixed-N campaign
    of that N.

    @raise Invalid_argument unless {!finished}. *)

val adaptive_summary : t -> (Proto.cell * int * bool) list option
(** In adaptive mode, [(cell, closed_at, met)] per cell — [met] is
    false when the cap ran out before the CI target; [None] when the
    coordinator leases a fixed grid. *)

(** {1 Socket server} *)

type server

val listen : t -> Unix.sockaddr -> server
(** Bind and listen (unlinking a stale Unix-domain socket path first). *)

val bound_addr : server -> Unix.sockaddr

val serve : server -> unit
(** Accept and serve connections until the grid is complete, then close
    the listening socket and wait for the connection handlers to drain.
    An HTTP [GET] on the same socket is answered with the process's
    Prometheus metrics dump ({!Obs.render}) — the fleet dashboard
    endpoint, aggregating the coordinator's per-worker lease/completion
    counters. *)
