module Proto = Proto
module Coord = Coord
module Worker = Worker

let resolve_tcp host port =
  match int_of_string_opt port with
  | None -> Error (Printf.sprintf "fleet: bad port %S" port)
  | Some p when p < 0 || p > 0xffff ->
      Error (Printf.sprintf "fleet: bad port %S" port)
  | Some p -> (
      match Unix.inet_addr_of_string host with
      | ip -> Ok (Unix.ADDR_INET (ip, p))
      | exception Failure _ -> (
          match
            Unix.getaddrinfo host ""
              [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
          with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ ->
              Ok (Unix.ADDR_INET (ip, p))
          | _ -> Error (Printf.sprintf "fleet: cannot resolve host %S" host)))

let parse_addr s =
  if s = "" then Error "fleet: empty address"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix.ADDR_UNIX (String.sub s 5 (String.length s - 5)))
  else
    let rest =
      if String.length s > 4 && String.sub s 0 4 = "tcp:" then
        Some (String.sub s 4 (String.length s - 4))
      else None
    in
    match rest with
    | Some rest -> (
        match String.rindex_opt rest ':' with
        | Some i ->
            resolve_tcp (String.sub rest 0 i)
              (String.sub rest (i + 1) (String.length rest - i - 1))
        | None -> Error (Printf.sprintf "fleet: tcp address %S needs HOST:PORT" s))
    | None -> (
        if String.contains s '/' then Ok (Unix.ADDR_UNIX s)
        else
          match String.rindex_opt s ':' with
          | Some i ->
              resolve_tcp (String.sub s 0 i)
                (String.sub s (i + 1) (String.length s - i - 1))
          | None -> Ok (Unix.ADDR_UNIX s))

let addr_to_string = function
  | Unix.ADDR_UNIX path -> "unix:" ^ path
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
