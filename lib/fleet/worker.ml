(* Fleet worker: lease / compute / complete loop over one coordinator
   socket.

   All socket traffic goes through [rpc], a mutex-guarded write+read
   transaction, so the heartbeat thread can interleave with the main
   loop on the same connection without tearing the request/reply
   pairing. *)

let m_computed = Obs.Metrics.counter "onebit_worker_shards_computed_total"
let m_reused = Obs.Metrics.counter "onebit_worker_shards_reused_total"

type conn = { ic : in_channel; oc : out_channel; rpc_lock : Mutex.t }

let rpc conn msg =
  Mutex.lock conn.rpc_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.rpc_lock)
    (fun () ->
      Proto.write conn.oc msg;
      match Proto.read conn.ic with
      | Ok reply -> reply
      | Error `Eof -> failwith "fleet worker: coordinator closed connection"
      | Error (`Malformed e) -> failwith ("fleet worker: " ^ e))

let store_key (cell : Proto.cell) ~lo ~hi =
  Store.key ~program:cell.c_program ~digest:cell.c_digest ~spec:cell.c_spec
    ~n:cell.c_n ~seed:cell.c_seed ~lo ~hi

(* Compute (or fetch from the local store) the shard for one granted
   task.  Every experiment runs on Prng.split_at of the cell's base
   seed, so the result is identical no matter which worker computes
   it — the property the whole lease/reassign design rests on. *)
let compute_shard ~store ~workload (cell : Proto.cell) ~lo ~hi =
  let key = store_key cell ~lo ~hi in
  match Option.bind store (fun st -> Store.lookup st key) with
  | Some shard ->
      Obs.Metrics.incr m_reused;
      shard
  | None ->
      let w = workload () in
      ignore (Core.Workload.ensure_checkpoints w : Vm.Checkpoint.set option);
      let shard = Core.Campaign.run_shard w cell.c_spec ~seed:cell.c_seed ~lo ~hi in
      Obs.Metrics.incr m_computed;
      (match store with Some st -> Store.add st key shard | None -> ());
      shard

let with_heartbeat conn ~id ~task ~interval f =
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        let rec loop () =
          (* Sleep in short slices so a finished shard stops the
             heartbeat promptly instead of after a full interval. *)
          let slept = ref 0. in
          while (not (Atomic.get stop)) && !slept < interval do
            Thread.delay 0.05;
            slept := !slept +. 0.05
          done;
          if not (Atomic.get stop) then begin
            (match rpc conn (Proto.Heartbeat { worker = id; task }) with
            | Proto.Ack _ -> ()
            | _ -> ());
            loop ()
          end
        in
        try loop () with _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join th)
    f

let connect_sock addr =
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect sock addr
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  sock

let run ?id ?store ~connect ~load () =
  (match Sys.os_type with
  | "Unix" -> ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  | _ -> ());
  let id =
    match id with Some id -> id | None -> Printf.sprintf "worker-%d" (Unix.getpid ())
  in
  let sock = connect_sock connect in
  let conn =
    {
      ic = Unix.in_channel_of_descr sock;
      oc = Unix.out_channel_of_descr sock;
      rpc_lock = Mutex.create ();
    }
  in
  let workloads : (string, Core.Workload.t) Hashtbl.t = Hashtbl.create 4 in
  let workload_for (cell : Proto.cell) () =
    let w =
      match Hashtbl.find_opt workloads cell.c_program with
      | Some w -> w
      | None ->
          let w = load cell.c_program in
          Hashtbl.replace workloads cell.c_program w;
          w
    in
    if w.Core.Workload.digest <> cell.c_digest then
      failwith
        (Printf.sprintf
           "fleet worker: program %s digest mismatch (coordinator %s, \
            worker %s) — sources differ"
           cell.c_program cell.c_digest w.Core.Workload.digest);
    w
  in
  (match store with Some st -> Store.lease st | None -> ());
  Fun.protect
    ~finally:(fun () ->
      (match store with Some st -> Store.release_lease st | None -> ());
      (try Unix.shutdown sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ttl, cells =
    match rpc conn (Proto.Hello { worker = id; pid = Unix.getpid () }) with
    | Proto.Welcome { proto; ttl; cells } ->
        if proto <> Proto.version then
          failwith
            (Printf.sprintf "fleet worker: protocol mismatch (%d vs %d)" proto
               Proto.version);
        (ttl, cells)
    | Proto.Error e -> failwith ("fleet worker: " ^ e)
    | _ -> failwith "fleet worker: expected welcome"
  in
  let hb_interval = max 0.05 (ttl /. 3.) in
  let completed = ref 0 in
  let rec loop () =
    match rpc conn (Proto.Lease { worker = id }) with
    | Proto.Done -> ()
    | Proto.Wait { backoff } ->
        (* The coordinator's backoff is the earliest a lease expiry can
           free a task, but a completion can finish the grid sooner —
           cap the sleep so an idle worker notices Done promptly. *)
        Thread.delay (max 0.05 (min backoff 0.5));
        loop ()
    | Proto.Grant { task; ttl = _ } ->
        let cell = cells.(task.Proto.t_cell) in
        let shard =
          with_heartbeat conn ~id ~task:task.Proto.t_id ~interval:hb_interval
            (fun () ->
              compute_shard ~store ~workload:(workload_for cell) cell
                ~lo:task.Proto.t_lo ~hi:task.Proto.t_hi)
        in
        (match
           rpc conn (Proto.Complete { worker = id; task = task.Proto.t_id; shard })
         with
        | Proto.Ack { dup } -> if not dup then incr completed
        | Proto.Error e -> failwith ("fleet worker: " ^ e)
        | _ -> failwith "fleet worker: expected ack");
        loop ()
    | Proto.Error e -> failwith ("fleet worker: " ^ e)
    | _ -> failwith "fleet worker: expected grant/wait/done"
  in
  loop ();
  !completed
