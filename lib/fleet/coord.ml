(* Fleet coordinator: grid ownership, shard leasing, crash-tolerant
   merge.

   The state machine is time-explicit (every transition takes ~now) and
   transport-agnostic; the socket server at the bottom of this file is a
   thin wrapper that feeds it decoded Proto messages and reports
   connection drops.  All state is guarded by one mutex, so connection
   handler threads and the test suite drive it the same way. *)

type task_status =
  | Todo
  | Leased of { worker : string; mutable deadline : float }
  | Completed

type slot = {
  task : Proto.task;
  mutable status : task_status;
  mutable shard : Core.Campaign.shard option;
}

type wstate = {
  w_id : string;
  mutable w_completed : int;
  mutable w_last_seen : float;
  mutable w_conn : int option;
}

type t = {
  cells : Proto.cell array;
  lease_ttl : float;
  shard_size : int;
  store : Store.t option;
  mutable slots : slot array;
      (* fixed-N: the full grid tiling, immutable after create.
         Adaptive: grows by one round's grants at each barrier. *)
  adaptive : Engine.Adaptive.Control.t option;
  workers : (string, wstate) Hashtbl.t;
  lock : Mutex.t;
  mutable n_completed : int;
  mutable n_reassigned : int;
  mutable n_duplicates : int;
}

let m_granted = Obs.Metrics.counter "onebit_fleet_leases_granted_total"
let m_reassigned = Obs.Metrics.counter "onebit_fleet_leases_reassigned_total"
let m_completed = Obs.Metrics.counter "onebit_fleet_shards_completed_total"
let m_duplicates = Obs.Metrics.counter "onebit_fleet_duplicate_completes_total"
let m_heartbeats = Obs.Metrics.counter "onebit_fleet_heartbeats_total"
let m_workers = Obs.Metrics.gauge "onebit_fleet_workers_connected"

(* Per-worker completion counters: the Prometheus endpoint aggregates
   them into the fleet dashboard. *)
let worker_counter id =
  Obs.Metrics.counter ~labels:[ ("worker", id) ]
    "onebit_fleet_worker_shards_completed_total"

let store_key (cell : Proto.cell) ~lo ~hi =
  Store.key ~program:cell.c_program ~digest:cell.c_digest ~spec:cell.c_spec
    ~n:cell.c_n ~seed:cell.c_seed ~lo ~hi

(* Merged observations of a cell's completed shards; at a round barrier
   every granted shard is completed, so this is the granted prefix. *)
let obs_locked t ci =
  let trials = ref 0 and sdc = ref 0 in
  Array.iter
    (fun s ->
      if s.task.Proto.t_cell = ci then
        match s.shard with
        | Some (sh : Core.Campaign.shard) ->
            trials := !trials + (sh.hi - sh.lo);
            sdc := !sdc + sh.s_sdc
        | None -> ())
    t.slots;
  (!trials, !sdc)

let all_completed_locked t =
  Array.for_all (fun s -> s.status = Completed) t.slots

(* Adaptive round barrier: when every granted slot has completed, step
   the controller on the merged prefix observations and append the next
   round's grants as fresh slots — prefilled from the store where
   possible, so a restarted coordinator (or one sharing a store with an
   engine run) replays the deterministic round schedule and re-leases
   only what never completed.  Loops because a fully prefilled round is
   itself a completed barrier. *)
let advance_locked t =
  match t.adaptive with
  | None -> ()
  | Some ctl ->
      let continue_ = ref true in
      while
        !continue_ && all_completed_locked t
        && not (Engine.Adaptive.Control.finished ctl)
      do
        match Engine.Adaptive.Control.step ctl ~obs:(obs_locked t) with
        | [] -> continue_ := false
        | grants ->
            let next = ref (Array.length t.slots) in
            let fresh = ref [] in
            List.iter
              (fun (ci, ranges) ->
                List.iter
                  (fun (lo, hi) ->
                    let task =
                      { Proto.t_id = !next; t_cell = ci; t_lo = lo; t_hi = hi }
                    in
                    incr next;
                    let shard =
                      Option.bind t.store (fun st ->
                          Store.lookup st (store_key t.cells.(ci) ~lo ~hi))
                    in
                    let status, shard =
                      match shard with
                      | Some s ->
                          t.n_completed <- t.n_completed + 1;
                          (Completed, Some s)
                      | None -> (Todo, None)
                    in
                    fresh := { task; status; shard } :: !fresh)
                  ranges)
              grants;
            t.slots <-
              Array.append t.slots (Array.of_list (List.rev !fresh))
      done

let create ?(ttl = 30.) ?shard_size ?store ?ci_target ?initial ?round_budget
    ~cells () =
  if cells = [] then invalid_arg "Coord.create: empty grid";
  if ttl <= 0. then invalid_arg "Coord.create: ttl must be positive";
  let shard_size =
    match shard_size with
    | Some s when s > 0 -> s
    | Some _ | None -> (Core.Config.of_env ()).Core.Config.shard_size
  in
  let cells = Array.of_list cells in
  Array.iter
    (fun (cell : Proto.cell) ->
      if cell.c_n <= 0 then invalid_arg "Coord.create: n must be positive")
    cells;
  let adaptive =
    match ci_target with
    | None -> None
    | Some target ->
        Some
          (Engine.Adaptive.Control.create ?initial ?round_budget ~target
             ~shard_size
             (Array.map (fun (c : Proto.cell) -> c.c_n) cells))
  in
  let slots = ref [] in
  let next = ref 0 in
  if adaptive = None then
    Array.iteri
      (fun ci (cell : Proto.cell) ->
        List.iter
          (fun (lo, hi) ->
            let task =
              { Proto.t_id = !next; t_cell = ci; t_lo = lo; t_hi = hi }
            in
            incr next;
            (* Resume: a shard already in the store was completed by an
               earlier coordinator (or any engine run sharing the store) —
               it never needs a lease. *)
            let shard =
              Option.bind store (fun st ->
                  Store.lookup st (store_key cell ~lo ~hi))
            in
            let status, shard =
              match shard with
              | Some s -> (Completed, Some s)
              | None -> (Todo, None)
            in
            slots := { task; status; shard } :: !slots)
          (Engine.shards_of ~n:cell.c_n ~shard_size))
      cells;
  let slots = Array.of_list (List.rev !slots) in
  let n_completed =
    Array.fold_left
      (fun acc s -> if s.status = Completed then acc + 1 else acc)
      0 slots
  in
  (match store with Some st -> Store.lease st | None -> ());
  let t =
    {
      cells;
      lease_ttl = ttl;
      shard_size;
      store;
      slots;
      adaptive;
      workers = Hashtbl.create 8;
      lock = Mutex.create ();
      n_completed;
      n_reassigned = 0;
      n_duplicates = 0;
    }
  in
  (* Adaptive: grant the first round (replaying any store-resumable
     prefix of the schedule). *)
  advance_locked t;
  t

let ttl t = t.lease_ttl
let total_tasks t = Array.length t.slots

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let finished_locked t =
  t.n_completed = Array.length t.slots
  && (match t.adaptive with
     | None -> true
     | Some ctl -> Engine.Adaptive.Control.finished ctl)

let finished t = locked t (fun () -> finished_locked t)

let touch t ~now ~conn worker =
  match Hashtbl.find_opt t.workers worker with
  | Some w ->
      w.w_last_seen <- now;
      if w.w_conn <> Some conn then w.w_conn <- Some conn;
      w
  | None ->
      let w =
        { w_id = worker; w_completed = 0; w_last_seen = now; w_conn = Some conn }
      in
      Hashtbl.replace t.workers worker w;
      Obs.Metrics.set m_workers
        (float_of_int
           (Hashtbl.fold
              (fun _ w acc -> if w.w_conn <> None then acc + 1 else acc)
              t.workers 0));
      w

(* Grant search: lowest-id Todo task first; failing that, the
   lowest-id expired lease (deadline at-or-before now), counting the
   handover as a reassignment. *)
let find_grant t ~now =
  let todo = ref None and expired = ref None in
  Array.iter
    (fun s ->
      match s.status with
      | Todo -> if !todo = None then todo := Some s
      | Leased l -> if l.deadline <= now && !expired = None then expired := Some s
      | Completed -> ())
    t.slots;
  match (!todo, !expired) with
  | Some s, _ -> Some (s, false)
  | None, Some s -> Some (s, true)
  | None, None -> None

let min_remaining t ~now =
  Array.fold_left
    (fun acc s ->
      match s.status with
      | Leased l -> min acc (l.deadline -. now)
      | Todo | Completed -> acc)
    t.lease_ttl t.slots

let complete_slot t ~(worker : wstate option) slot shard =
  slot.status <- Completed;
  slot.shard <- Some shard;
  t.n_completed <- t.n_completed + 1;
  Obs.Metrics.incr m_completed;
  (match worker with
  | Some w ->
      w.w_completed <- w.w_completed + 1;
      Obs.Metrics.incr (worker_counter w.w_id)
  | None -> ());
  match t.store with
  | Some st ->
      let cell = t.cells.(slot.task.Proto.t_cell) in
      Store.add st
        (store_key cell ~lo:slot.task.Proto.t_lo ~hi:slot.task.Proto.t_hi)
        shard
  | None -> ()

let state_locked t ~now =
  let workers =
    Hashtbl.fold (fun _ w acc -> w :: acc) t.workers []
    |> List.sort (fun a b -> compare a.w_id b.w_id)
    |> List.map (fun w ->
           let inflight =
             Array.fold_left
               (fun acc s ->
                 match s.status with
                 | Leased l when l.worker = w.w_id -> acc + 1
                 | _ -> acc)
               0 t.slots
           in
           {
             Proto.wi_id = w.w_id;
             wi_completed = w.w_completed;
             wi_inflight = inflight;
             wi_heartbeat_age = max 0. (now -. w.w_last_seen);
             wi_connected = w.w_conn <> None;
           })
  in
  let leases =
    Array.to_list t.slots
    |> List.filter_map (fun s ->
           match s.status with
           | Leased l ->
               Some
                 {
                   Proto.li_task = s.task.Proto.t_id;
                   li_worker = l.worker;
                   li_remaining = l.deadline -. now;
                 }
           | Todo | Completed -> None)
  in
  let rounds, open_ =
    match t.adaptive with
    | None -> (0, 0)
    | Some ctl ->
        let open_ = ref 0 in
        for i = 0 to Engine.Adaptive.Control.n_cells ctl - 1 do
          if not (Engine.Adaptive.Control.closed ctl i) then incr open_
        done;
        (Engine.Adaptive.Control.rounds ctl, !open_)
  in
  {
    Proto.st_cells = Array.length t.cells;
    st_tasks = Array.length t.slots;
    st_completed = t.n_completed;
    st_reassigned = t.n_reassigned;
    st_finished = finished_locked t;
    st_workers = workers;
    st_leases = leases;
    st_adaptive = t.adaptive <> None;
    st_rounds = rounds;
    st_open = open_;
  }

let state t ~now = locked t (fun () -> state_locked t ~now)

let handle t ~now ~conn (msg : Proto.msg) : Proto.msg =
  locked t @@ fun () ->
  match msg with
  | Proto.Hello { worker; pid = _ } ->
      ignore (touch t ~now ~conn worker : wstate);
      Proto.Welcome { proto = Proto.version; ttl = t.lease_ttl; cells = t.cells }
  | Proto.Lease { worker } -> (
      ignore (touch t ~now ~conn worker : wstate);
      if finished_locked t then Proto.Done
      else
        match find_grant t ~now with
        | Some (slot, reassigned) ->
            if reassigned then begin
              t.n_reassigned <- t.n_reassigned + 1;
              Obs.Metrics.incr m_reassigned
            end;
            slot.status <- Leased { worker; deadline = now +. t.lease_ttl };
            Obs.Metrics.incr m_granted;
            Proto.Grant { task = slot.task; ttl = t.lease_ttl }
        | None ->
            Proto.Wait
              { backoff = min t.lease_ttl (max 0.05 (min_remaining t ~now)) })
  | Proto.Heartbeat { worker; task } -> (
      ignore (touch t ~now ~conn worker : wstate);
      Obs.Metrics.incr m_heartbeats;
      if task < 0 || task >= Array.length t.slots then
        Proto.Error (Printf.sprintf "heartbeat: unknown task %d" task)
      else
        let slot = t.slots.(task) in
        match slot.status with
        | Leased l when l.worker = worker ->
            l.deadline <- now +. t.lease_ttl;
            Proto.Ack { dup = false }
        | Leased _ | Todo | Completed ->
            (* The lease expired and moved on (or the shard is already
               done).  The worker may keep computing: its completion is
               an exact no-op if it loses the race. *)
            Proto.Ack { dup = true })
  | Proto.Complete { worker; task; shard } ->
      let w = touch t ~now ~conn worker in
      if task < 0 || task >= Array.length t.slots then
        Proto.Error (Printf.sprintf "complete: unknown task %d" task)
      else
        let slot = t.slots.(task) in
        if
          shard.Core.Campaign.lo <> slot.task.Proto.t_lo
          || shard.Core.Campaign.hi <> slot.task.Proto.t_hi
        then
          Proto.Error
            (Printf.sprintf "complete: shard [%d,%d) does not match task %d"
               shard.Core.Campaign.lo shard.Core.Campaign.hi task)
        else if slot.status = Completed then begin
          t.n_duplicates <- t.n_duplicates + 1;
          Obs.Metrics.incr m_duplicates;
          Proto.Ack { dup = true }
        end
        else begin
          complete_slot t ~worker:(Some w) slot shard;
          (* An adaptive round barrier may have been reached: grant the
             next round before replying, so the next Lease sees it. *)
          advance_locked t;
          Proto.Ack { dup = false }
        end
  | Proto.Drain -> Proto.State (state_locked t ~now)
  | Proto.Welcome _ | Proto.Grant _ | Proto.Wait _ | Proto.Done
  | Proto.Ack _ | Proto.State _ | Proto.Error _ ->
      Proto.Error "unexpected message"

let disconnect t ~now ~conn =
  locked t @@ fun () ->
  Hashtbl.iter
    (fun _ w ->
      if w.w_conn = Some conn then begin
        w.w_conn <- None;
        (* Orphan this worker's leases: immediately reassignable, so a
           SIGKILLed worker costs its in-flight shards and nothing else —
           no TTL wait. *)
        Array.iter
          (fun s ->
            match s.status with
            | Leased l when l.worker = w.w_id -> l.deadline <- now
            | _ -> ())
          t.slots
      end)
    t.workers;
  Obs.Metrics.set m_workers
    (float_of_int
       (Hashtbl.fold
          (fun _ w acc -> if w.w_conn <> None then acc + 1 else acc)
          t.workers 0))

let results t =
  locked t @@ fun () ->
  if not (finished_locked t) then
    invalid_arg "Coord.results: grid not finished";
  Array.to_list
    (Array.mapi
       (fun ci (cell : Proto.cell) ->
         let shards =
           Array.to_list t.slots
           |> List.filter_map (fun s ->
                  if s.task.Proto.t_cell = ci then s.shard else None)
         in
         (* Adaptive cells merge at their stopping point — a shard
            boundary of the cap tiling, so the result is byte-identical
            to a fixed-N campaign of that N. *)
         let n =
           match t.adaptive with
           | None -> cell.c_n
           | Some ctl -> Engine.Adaptive.Control.closed_at ctl ci
         in
         let result =
           Core.Campaign.merge ~workload_name:cell.c_program cell.c_spec ~n
             ~seed:cell.c_seed shards
         in
         (cell, result))
       t.cells)

let adaptive_summary t =
  locked t @@ fun () ->
  match t.adaptive with
  | None -> None
  | Some ctl ->
      Some
        (Array.to_list
           (Array.mapi
              (fun ci (cell : Proto.cell) ->
                ( cell,
                  Engine.Adaptive.Control.closed_at ctl ci,
                  Engine.Adaptive.Control.met ctl ci ))
              t.cells))

(* ---- socket server ---- *)

type server = {
  coord : t;
  lsock : Unix.file_descr;
  addr : Unix.sockaddr;
  mutable conn_threads : Thread.t list;
  threads_lock : Mutex.t;
}

let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  | _ -> ()

let listen coord addr =
  ignore_sigpipe ();
  (match addr with
  | Unix.ADDR_UNIX path when Sys.file_exists path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let domain = Unix.domain_of_sockaddr addr in
  let lsock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match domain with
  | Unix.PF_INET | Unix.PF_INET6 ->
      Unix.setsockopt lsock Unix.SO_REUSEADDR true
  | _ -> ());
  Unix.bind lsock addr;
  Unix.listen lsock 64;
  {
    coord;
    lsock;
    addr = Unix.getsockname lsock;
    conn_threads = [];
    threads_lock = Mutex.create ();
  }

let bound_addr srv = srv.addr

let http_get_prefix = "GET "

(* One thread per connection: strictly alternating request/reply lines.
   An HTTP GET is answered with the Prometheus dump and closed — the
   coordinator socket doubles as the fleet metrics endpoint. *)
let handle_conn srv conn_id fd =
  let coord = srv.coord in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        let n = String.length http_get_prefix in
        if String.length line >= n && String.sub line 0 n = http_get_prefix
        then begin
          output_string oc (Obs.http_response ());
          flush oc
        end
        else begin
          (match Proto.of_line line with
          | Ok msg ->
              Proto.write oc
                (handle coord ~now:(Unix.gettimeofday ()) ~conn:conn_id msg)
          | Error e -> Proto.write oc (Proto.Error e));
          loop ()
        end
  in
  (try loop () with _ -> ());
  disconnect coord ~now:(Unix.gettimeofday ()) ~conn:conn_id;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve srv =
  ignore_sigpipe ();
  let conn_counter = ref 0 in
  let rec accept_loop () =
    if finished srv.coord then ()
    else
      match Unix.select [ srv.lsock ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ ->
          let fd, _peer = Unix.accept srv.lsock in
          incr conn_counter;
          let conn_id = !conn_counter in
          let th = Thread.create (fun () -> handle_conn srv conn_id fd) () in
          Mutex.lock srv.threads_lock;
          srv.conn_threads <- th :: srv.conn_threads;
          Mutex.unlock srv.threads_lock;
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ();
  (try Unix.close srv.lsock with Unix.Unix_error _ -> ());
  (match srv.addr with
  | Unix.ADDR_UNIX path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  (* Workers drain after their final Done; join so their completions are
     all processed before the caller merges. *)
  Mutex.lock srv.threads_lock;
  let threads = srv.conn_threads in
  srv.conn_threads <- [];
  Mutex.unlock srv.threads_lock;
  List.iter Thread.join threads
