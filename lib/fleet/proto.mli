(** Wire protocol of the campaign fleet.

    Coordinator and workers exchange newline-delimited JSON messages over
    a Unix or TCP stream socket.  Every request is answered by exactly one
    reply, so a connection is a sequence of strictly alternating
    request/reply lines and a reader never has to match replies to
    requests.

    The conversation: a worker sends [Hello] and receives [Welcome] (the
    campaign grid and the lease TTL), then loops sending [Lease] —
    answered by [Grant] (a shard lease with a deadline), [Wait] (all
    shards are leased out; back off and retry) or [Done] (the grid is
    complete).  While executing a shard the worker sends [Heartbeat] to
    extend its lease; when the shard finishes it sends [Complete]
    carrying the shard result, answered by [Ack].  [Drain] may be sent by
    anyone (workers, [onebit engine status]) and is answered by [State],
    a snapshot of leases, workers and reassignment counts.

    Because a shard's content depends only on (program, spec, seed, lo,
    hi) — never on who ran it — a [Complete] for an already-completed
    task is acknowledged as a duplicate and dropped: completions are
    exact no-ops to replay, which is what makes lease reassignment after
    a worker crash safe. *)

type cell = {
  c_program : string;  (** registry program name *)
  c_digest : string;
      (** md5 hex of the printed IR; workers refuse to run a cell whose
          locally-loaded digest differs, so a heterogeneous fleet cannot
          silently mix program versions *)
  c_spec : Core.Spec.t;
  c_n : int;
  c_seed : int64;
}
(** One campaign of the grid the coordinator owns. *)

type task = {
  t_id : int;  (** stable index into the coordinator's task table *)
  t_cell : int;  (** index into the [Welcome] cell array *)
  t_lo : int;
  t_hi : int;
}
(** One shard lease: experiments [t_lo..t_hi-1] of cell [t_cell].  The
    tiling is the engine's own ([Engine.shards_of]), so fleet shards are
    interchangeable with single-process store shards. *)

type lease_info = {
  li_task : int;
  li_worker : string;
  li_remaining : float;  (** seconds until the lease expires (<= ttl) *)
}

type worker_info = {
  wi_id : string;
  wi_completed : int;  (** shards completed by this worker *)
  wi_inflight : int;  (** live leases held *)
  wi_heartbeat_age : float;  (** seconds since the worker's last message *)
  wi_connected : bool;
}

type state = {
  st_cells : int;
  st_tasks : int;
  st_completed : int;
  st_reassigned : int;  (** expired or orphaned leases handed to another worker *)
  st_finished : bool;
  st_workers : worker_info list;  (** sorted by worker id *)
  st_leases : lease_info list;  (** live leases, sorted by task id *)
  st_adaptive : bool;
      (** coordinator is leasing adaptive rounds ({!Coord.create} with
          [ci_target]); [st_tasks] then grows as rounds are granted *)
  st_rounds : int;  (** adaptive round barriers crossed (0 when fixed-N) *)
  st_open : int;
      (** adaptive cells still below the CI target (0 when fixed-N).
          All three decode leniently — a state from a pre-adaptive peer
          reads as a fixed-N grid. *)
}

type msg =
  | Hello of { worker : string; pid : int }
  | Welcome of { proto : int; ttl : float; cells : cell array }
  | Lease of { worker : string }
  | Grant of { task : task; ttl : float }
  | Wait of { backoff : float }
  | Done
  | Heartbeat of { worker : string; task : int }
  | Complete of { worker : string; task : int; shard : Core.Campaign.shard }
  | Ack of { dup : bool }
  | Drain
  | State of state
  | Error of string

val version : int
(** Protocol version carried in [Welcome]. *)

val to_json : msg -> Store.Jsonx.t
val of_json : Store.Jsonx.t -> (msg, string) result

val to_line : msg -> string
(** One line, no newline, canonical {!Store.Jsonx} rendering. *)

val of_line : string -> (msg, string) result

val write : out_channel -> msg -> unit
(** [to_line] plus newline plus flush. *)

val read : in_channel -> (msg, [ `Eof | `Malformed of string ]) result
(** Read one message line; [`Eof] when the peer closed the stream. *)

val equal : msg -> msg -> bool
(** Structural equality (shards compared field-wise, kept experiments
    ignored — the wire never carries them).  Backs the codec round-trip
    tests. *)
