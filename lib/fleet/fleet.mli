(** onebit.fleet — distributed campaign execution.

    A {!Coord} owns a campaign grid, tiles it into exactly the shards a
    single-process engine run would produce ([Engine.shards_of]), and
    leases them to {!Worker} processes over the newline-delimited-JSON
    protocol in {!Proto}.  Leases expire and are reassigned, duplicate
    completions are exact no-ops, and the merged result is bit-identical
    to [Core.Campaign.run] regardless of fleet shape or kill history —
    every experiment runs on its own split-off generator, so a shard's
    content depends only on (program, spec, seed, range), never on the
    worker that computed it. *)

module Proto = Proto
module Coord = Coord
module Worker = Worker

val parse_addr : string -> (Unix.sockaddr, string) result
(** Coordinator address spellings: [unix:PATH] (or any string containing
    a [/]) for a Unix-domain socket; [tcp:HOST:PORT] or [HOST:PORT] for
    TCP ([HOST] a numeric address or name resolvable via
    [getaddrinfo]). *)

val addr_to_string : Unix.sockaddr -> string
(** Inverse spelling of {!parse_addr} ([unix:PATH] / [HOST:PORT]). *)
