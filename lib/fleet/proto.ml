(* Newline-delimited JSON wire protocol for the campaign fleet.

   Each message is one canonical-Jsonx line tagged by a "t" field.  The
   shard payload of Complete reuses the result store's codec
   (Store.shard_json / shard_of_json) so a shard crosses the wire in
   exactly the bytes it would occupy in a store segment. *)

module J = Store.Jsonx

let version = 1

type cell = {
  c_program : string;
  c_digest : string;
  c_spec : Core.Spec.t;
  c_n : int;
  c_seed : int64;
}

type task = { t_id : int; t_cell : int; t_lo : int; t_hi : int }

type lease_info = { li_task : int; li_worker : string; li_remaining : float }

type worker_info = {
  wi_id : string;
  wi_completed : int;
  wi_inflight : int;
  wi_heartbeat_age : float;
  wi_connected : bool;
}

type state = {
  st_cells : int;
  st_tasks : int;
  st_completed : int;
  st_reassigned : int;
  st_finished : bool;
  st_workers : worker_info list;
  st_leases : lease_info list;
  st_adaptive : bool;
  st_rounds : int;  (* adaptive round barriers crossed; 0 when fixed-N *)
  st_open : int;  (* adaptive cells still open; 0 when fixed-N *)
}

type msg =
  | Hello of { worker : string; pid : int }
  | Welcome of { proto : int; ttl : float; cells : cell array }
  | Lease of { worker : string }
  | Grant of { task : task; ttl : float }
  | Wait of { backoff : float }
  | Done
  | Heartbeat of { worker : string; task : int }
  | Complete of { worker : string; task : int; shard : Core.Campaign.shard }
  | Ack of { dup : bool }
  | Drain
  | State of state
  | Error of string

(* ---- encoding ---- *)

let win_json : Core.Win.t -> J.t = function
  | Fixed w -> J.Int w
  | Rnd (lo, hi) -> J.Arr [ J.Int lo; J.Int hi ]

(* "dom" is omitted for the register domain so pre-domain coordinators
   and workers interoperate unchanged with new peers on reg campaigns. *)
let cell_json c =
  J.Obj
    ([
       ("p", J.Str c.c_program);
       ("d", J.Str c.c_digest);
       ("tech", J.Str (Core.Technique.to_string c.c_spec.technique));
       ("m", J.Int c.c_spec.max_mbf);
       ("win", win_json c.c_spec.win);
       ("n", J.Int c.c_n);
       ("seed", J.Str (Int64.to_string c.c_seed));
     ]
    @
    match c.c_spec.domain with
    | Core.Domain.Reg -> []
    | d -> [ ("dom", J.Str (Core.Domain.to_string d)) ])

let task_json t =
  J.Obj
    [
      ("id", J.Int t.t_id);
      ("cell", J.Int t.t_cell);
      ("lo", J.Int t.t_lo);
      ("hi", J.Int t.t_hi);
    ]

let state_json s =
  J.Obj
    [
      ("cells", J.Int s.st_cells);
      ("tasks", J.Int s.st_tasks);
      ("completed", J.Int s.st_completed);
      ("reassigned", J.Int s.st_reassigned);
      ("finished", J.Bool s.st_finished);
      ( "workers",
        J.Arr
          (List.map
             (fun w ->
               J.Obj
                 [
                   ("id", J.Str w.wi_id);
                   ("done", J.Int w.wi_completed);
                   ("inflight", J.Int w.wi_inflight);
                   ("hb", J.Float w.wi_heartbeat_age);
                   ("conn", J.Bool w.wi_connected);
                 ])
             s.st_workers) );
      ( "leases",
        J.Arr
          (List.map
             (fun l ->
               J.Obj
                 [
                   ("task", J.Int l.li_task);
                   ("w", J.Str l.li_worker);
                   ("remaining", J.Float l.li_remaining);
                 ])
             s.st_leases) );
      ("adaptive", J.Bool s.st_adaptive);
      ("rounds", J.Int s.st_rounds);
      ("open", J.Int s.st_open);
    ]

let state_fields s =
  match state_json s with J.Obj fields -> fields | _ -> assert false

let to_json = function
  | Hello { worker; pid } ->
      J.Obj [ ("t", J.Str "hello"); ("w", J.Str worker); ("pid", J.Int pid) ]
  | Welcome { proto; ttl; cells } ->
      J.Obj
        [
          ("t", J.Str "welcome");
          ("proto", J.Int proto);
          ("ttl", J.Float ttl);
          ("cells", J.Arr (Array.to_list (Array.map cell_json cells)));
        ]
  | Lease { worker } -> J.Obj [ ("t", J.Str "lease"); ("w", J.Str worker) ]
  | Grant { task; ttl } ->
      J.Obj
        [ ("t", J.Str "grant"); ("task", task_json task); ("ttl", J.Float ttl) ]
  | Wait { backoff } ->
      J.Obj [ ("t", J.Str "wait"); ("backoff", J.Float backoff) ]
  | Done -> J.Obj [ ("t", J.Str "done") ]
  | Heartbeat { worker; task } ->
      J.Obj
        [ ("t", J.Str "heartbeat"); ("w", J.Str worker); ("task", J.Int task) ]
  | Complete { worker; task; shard } ->
      J.Obj
        [
          ("t", J.Str "complete");
          ("w", J.Str worker);
          ("task", J.Int task);
          ("lo", J.Int shard.Core.Campaign.lo);
          ("hi", J.Int shard.Core.Campaign.hi);
          ("shard", Store.shard_json shard);
        ]
  | Ack { dup } -> J.Obj [ ("t", J.Str "ack"); ("dup", J.Bool dup) ]
  | Drain -> J.Obj [ ("t", J.Str "drain") ]
  | State s -> J.Obj (("t", J.Str "state") :: state_fields s)
  | Error msg -> J.Obj [ ("t", J.Str "error"); ("msg", J.Str msg) ]

(* ---- decoding ---- *)

let ( let* ) = Option.bind

let int_field name j = Option.bind (J.mem name j) J.to_int
let float_field name j = Option.bind (J.mem name j) J.to_float
let str_field name j = Option.bind (J.mem name j) J.to_str

let bool_field name j =
  match J.mem name j with Some (J.Bool b) -> Some b | _ -> None

let win_of_json : J.t -> Core.Win.t option = function
  | J.Int w when w >= 0 -> Some (Core.Win.Fixed w)
  | J.Arr [ J.Int lo; J.Int hi ] when 0 <= lo && lo <= hi ->
      Some (Core.Win.Rnd (lo, hi))
  | _ -> None

let cell_of_json j =
  let* p = str_field "p" j in
  let* d = str_field "d" j in
  let* tech = Option.bind (str_field "tech" j) Core.Technique.of_string in
  let* m = int_field "m" j in
  let* win = Option.bind (J.mem "win" j) win_of_json in
  let* n = int_field "n" j in
  let* seed = Option.bind (str_field "seed" j) Int64.of_string_opt in
  let* domain =
    match str_field "dom" j with
    | None -> Some Core.Domain.Reg (* pre-domain peer *)
    | Some d -> Core.Domain.of_string d
  in
  let spec =
    if m <= 1 then Core.Spec.single ~domain tech
    else Core.Spec.multi ~domain tech ~max_mbf:m ~win
  in
  Some { c_program = p; c_digest = d; c_spec = spec; c_n = n; c_seed = seed }

let task_of_json j =
  let* id = int_field "id" j in
  let* cell = int_field "cell" j in
  let* lo = int_field "lo" j in
  let* hi = int_field "hi" j in
  Some { t_id = id; t_cell = cell; t_lo = lo; t_hi = hi }

let worker_info_of_json j =
  let* id = str_field "id" j in
  let* completed = int_field "done" j in
  let* inflight = int_field "inflight" j in
  let* hb = float_field "hb" j in
  let* conn = bool_field "conn" j in
  Some
    {
      wi_id = id;
      wi_completed = completed;
      wi_inflight = inflight;
      wi_heartbeat_age = hb;
      wi_connected = conn;
    }

let lease_info_of_json j =
  let* task = int_field "task" j in
  let* w = str_field "w" j in
  let* remaining = float_field "remaining" j in
  Some { li_task = task; li_worker = w; li_remaining = remaining }

let all_some l =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* x = x in
      Some (x :: acc))
    l (Some [])

let state_of_json j =
  let* cells = int_field "cells" j in
  let* tasks = int_field "tasks" j in
  let* completed = int_field "completed" j in
  let* reassigned = int_field "reassigned" j in
  let* finished = bool_field "finished" j in
  let* workers_j = Option.bind (J.mem "workers" j) J.to_list in
  let* leases_j = Option.bind (J.mem "leases" j) J.to_list in
  let* workers = all_some (List.map worker_info_of_json workers_j) in
  let* leases = all_some (List.map lease_info_of_json leases_j) in
  (* Adaptive fields default for states from pre-adaptive peers. *)
  let adaptive =
    match bool_field "adaptive" j with Some b -> b | None -> false
  in
  let rounds = match int_field "rounds" j with Some r -> r | None -> 0 in
  let open_ = match int_field "open" j with Some o -> o | None -> 0 in
  Some
    {
      st_cells = cells;
      st_tasks = tasks;
      st_completed = completed;
      st_reassigned = reassigned;
      st_finished = finished;
      st_workers = workers;
      st_leases = leases;
      st_adaptive = adaptive;
      st_rounds = rounds;
      st_open = open_;
    }

let of_json j : (msg, string) result =
  let need what = Stdlib.Error ("fleet proto: malformed " ^ what) in
  match str_field "t" j with
  | None -> Stdlib.Error "fleet proto: missing message tag"
  | Some tag -> (
      match tag with
      | "hello" -> (
          match (str_field "w" j, int_field "pid" j) with
          | Some worker, Some pid -> Ok (Hello { worker; pid })
          | _ -> need "hello")
      | "welcome" -> (
          match
            ( int_field "proto" j,
              float_field "ttl" j,
              Option.bind (J.mem "cells" j) J.to_list )
          with
          | Some proto, Some ttl, Some cells_j -> (
              match all_some (List.map cell_of_json cells_j) with
              | Some cells ->
                  Ok (Welcome { proto; ttl; cells = Array.of_list cells })
              | None -> need "welcome")
          | _ -> need "welcome")
      | "lease" -> (
          match str_field "w" j with
          | Some worker -> Ok (Lease { worker })
          | None -> need "lease")
      | "grant" -> (
          match
            (Option.bind (J.mem "task" j) task_of_json, float_field "ttl" j)
          with
          | Some task, Some ttl -> Ok (Grant { task; ttl })
          | _ -> need "grant")
      | "wait" -> (
          match float_field "backoff" j with
          | Some backoff -> Ok (Wait { backoff })
          | None -> need "wait")
      | "done" -> Ok Done
      | "heartbeat" -> (
          match (str_field "w" j, int_field "task" j) with
          | Some worker, Some task -> Ok (Heartbeat { worker; task })
          | _ -> need "heartbeat")
      | "complete" -> (
          match
            ( str_field "w" j,
              int_field "task" j,
              int_field "lo" j,
              int_field "hi" j,
              J.mem "shard" j )
          with
          | Some worker, Some task, Some lo, Some hi, Some shard_j -> (
              match Store.shard_of_json ~lo ~hi shard_j with
              | Some shard -> Ok (Complete { worker; task; shard })
              | None -> need "complete shard")
          | _ -> need "complete")
      | "ack" -> (
          match bool_field "dup" j with
          | Some dup -> Ok (Ack { dup })
          | None -> need "ack")
      | "drain" -> Ok Drain
      | "state" -> (
          match state_of_json j with
          | Some s -> Ok (State s)
          | None -> need "state")
      | "error" -> (
          match str_field "msg" j with
          | Some msg -> Ok (Error msg)
          | None -> need "error")
      | other -> Stdlib.Error ("fleet proto: unknown message tag " ^ other))

let to_line m = J.to_string (to_json m)

let of_line line =
  match J.of_string line with
  | Stdlib.Error e -> Stdlib.Error ("fleet proto: bad JSON: " ^ e)
  | Ok j -> of_json j

let write oc m =
  output_string oc (to_line m);
  output_char oc '\n';
  flush oc

let read ic =
  match input_line ic with
  | exception End_of_file -> Stdlib.Error `Eof
  | line -> (
      match of_line line with
      | Ok m -> Ok m
      | Stdlib.Error e -> Stdlib.Error (`Malformed e))

(* Kept experiments never cross the wire; strip them so equality is
   insensitive to how the shard was produced. *)
let strip = function
  | Complete c ->
      Complete
        {
          c with
          shard = { c.shard with Core.Campaign.s_experiments = [||] };
        }
  | m -> m

let equal a b = strip a = strip b
