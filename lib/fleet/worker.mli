(** Fleet worker: connects to a coordinator, leases shards, computes
    them with the same per-experiment generators a single-process run
    uses, and reports completions.

    One socket carries everything; a background thread heartbeats the
    in-flight lease (every ttl/3) while the main thread computes, so a
    shard that outlives its TTL is not reassigned under a live worker.
    Given [?store], shards already present locally are returned without
    recomputation and fresh completions are appended durably — the
    worker holds a writer lease ({!Store.lease}) for the duration, which
    is what makes [onebit engine gc] refuse to compact under it. *)

val run :
  ?id:string ->
  ?store:Store.t ->
  connect:Unix.sockaddr ->
  load:(string -> Core.Workload.t) ->
  unit -> int
(** Serve until the coordinator answers a lease request with [done];
    returns the number of shards this worker completed (first-completion
    acks only — duplicates of reassigned shards don't count).  [id]
    defaults to ["worker-<pid>"]; [load] maps a cell's program name to
    its workload and is called at most once per program.

    @raise Failure on protocol errors, a coordinator/worker program
    digest mismatch, or a lost connection. *)
