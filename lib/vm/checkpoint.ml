(* Golden-prefix checkpoints for the compiled VM.

   Every experiment is fault-free up to its first flip, whose candidate
   ordinal is drawn at injector creation.  A single instrumented golden
   run per program records interval checkpoints of the complete VM state
   (call stack with register files and last-write tables, dirty memory
   pages, output length, dyn/candidate counters); an experiment then
   restores the nearest checkpoint at-or-before its first target and
   executes only the suffix.

   Checkpoints are captured at the top of the interpreter loop — before
   the dyn increment and before the instruction's candidate blocks — and
   annotated with both the read- and the write-candidate ordinal, so one
   digest-keyed set serves both injection techniques.  Because the
   injector draws no randomness and fires no events during the golden
   prefix, resuming from a checkpoint is observationally identical to
   full execution: same injections, outputs, counters.  The differential
   suite (test/suite_checkpoint.ml) and the CI checkpoint smoke enforce
   this bit-for-bit. *)

type frame_snap = {
  fs_fidx : int;
  fs_pc : int;
      (* innermost frame: pc to resume at; outer frames: pc of the
         in-progress Ucall *)
  fs_call_dyn : int;
      (* outer frames: the call instruction's dynamic index, needed to
         replay its write-candidate post-block exactly *)
  fs_ints : int array;
  fs_flts : float array;
  fs_lw : int array;
}

type point = {
  ck_dyn : int;
  ck_rc : int; (* read-candidate ordinals consumed before this point *)
  ck_wc : int; (* write-candidate ordinals consumed *)
  ck_out : string; (* output emitted so far *)
  ck_stack : frame_snap array; (* outermost first *)
  ck_pages : (int * bytes) array; (* dirty pages at capture *)
}

type set = { interval : int; points : point array }

type recorder = {
  mutable interval : int;
  mutable next_rc : int; (* capture when rc or wc reaches these *)
  mutable next_wc : int;
  mutable rev_points : point list;
  mutable n_points : int;
}

(* Never triggers: both thresholds stay at max_int.  The run loop keeps a
   recorder unconditionally so the hot path is one bool test. *)
let null_recorder =
  {
    interval = max_int;
    next_rc = max_int;
    next_wc = max_int;
    rev_points = [];
    n_points = 0;
  }

(* Cap on points per program: when reached, every other point is dropped
   and the interval doubles, bounding memory at ~2x the cap for any
   program length while keeping the skip granularity proportional. *)
let max_points = 1024

(* Plain counters maintained unconditionally (a handful per experiment,
   not per instruction) so tests observe checkpoint behaviour without
   enabling metrics; the Obs probes mirror them when collection is on. *)
let points_total = Atomic.make 0
let restores_total = Atomic.make 0
let m_points = Obs.Metrics.counter "onebit_vm_checkpoints_total"
let m_hits = Obs.Metrics.counter "onebit_vm_checkpoint_hits_total"
let m_sets = Obs.Metrics.gauge "onebit_vm_checkpoint_cached_sets"

let m_pages_saved =
  Obs.Metrics.counter "onebit_vm_checkpoint_pages_saved_total"

let m_pages_restored =
  Obs.Metrics.counter "onebit_vm_checkpoint_pages_restored_total"

let m_distance =
  Obs.Metrics.histogram ~buckets:Obs.Metrics.count_buckets
    "onebit_vm_checkpoint_restore_distance"

let stats () = (Atomic.get points_total, Atomic.get restores_total)

let recorder ~interval =
  if interval <= 0 then invalid_arg "Checkpoint.recorder: interval <= 0";
  {
    interval;
    next_rc = interval;
    next_wc = interval;
    rev_points = [];
    n_points = 0;
  }

let add r p =
  r.rev_points <- p :: r.rev_points;
  r.n_points <- r.n_points + 1;
  if r.n_points >= max_points then begin
    let kept =
      List.filteri (fun i _ -> i land 1 = 0) (List.rev r.rev_points)
    in
    r.rev_points <- List.rev kept;
    r.n_points <- List.length kept;
    r.interval <- 2 * r.interval
  end;
  r.next_rc <- ((p.ck_rc / r.interval) + 1) * r.interval;
  r.next_wc <- ((p.ck_wc / r.interval) + 1) * r.interval;
  Atomic.incr points_total;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_points;
    Obs.Metrics.add m_pages_saved (Array.length p.ck_pages)
  end

let finish r =
  { interval = r.interval; points = Array.of_list (List.rev r.rev_points) }

let note_restore (p : point) =
  Atomic.incr restores_total;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_hits;
    Obs.Metrics.add m_pages_restored (Array.length p.ck_pages);
    Obs.Metrics.observe m_distance (float_of_int p.ck_dyn)
  end

(* Greatest point whose consumed ordinal count on the watched axis is
   <= target: the first candidate at ordinal [target] has then not yet
   been executed, so the suffix reaches it exactly as a full run would. *)
let select set ~axis ~target =
  let ord (p : point) =
    match axis with `Read -> p.ck_rc | `Write -> p.ck_wc | `Dyn -> p.ck_dyn
  in
  let pts = set.points in
  let n = Array.length pts in
  if n = 0 || ord pts.(0) > target then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if ord pts.(mid) <= target then lo := mid else hi := mid - 1
    done;
    Some pts.(!lo)
  end

(* ---- process-wide cache, shared across engine domains ---- *)

module SM = Map.Make (String)

(* Lock-free lookups: an immutable map swapped by CAS.  Experiments hit
   [find] once each, concurrently from every domain, so the read path
   must not take the lock the (rare, once-per-digest) recording path
   holds across its instrumented golden run. *)
let cache : set SM.t Atomic.t = Atomic.make SM.empty
let record_lock = Mutex.create ()

let find digest = SM.find_opt digest (Atomic.get cache)

let store digest set =
  let rec swap () =
    let m = Atomic.get cache in
    if not (Atomic.compare_and_set cache m (SM.add digest set m)) then swap ()
  in
  swap ();
  if Obs.Metrics.enabled () then
    Obs.Metrics.set m_sets (float_of_int (SM.cardinal (Atomic.get cache)))

let ensure digest ~record =
  match find digest with
  | Some s -> Some s
  | None ->
      Mutex.protect record_lock (fun () ->
          match find digest with
          | Some s -> Some s
          | None -> (
              match record () with
              | Some s ->
                  store digest s;
                  Some s
              | None -> None))

(* ---- per-domain working memory ---- *)

(* Engine domains run their shards sequentially, so one undo-tracking
   memory per (domain, program) can be reset/restored between
   experiments instead of cloning the arena each time. *)
let working : (string, Memory.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let working_mem ~digest template =
  let tbl = Domain.DLS.get working in
  match Hashtbl.find_opt tbl digest with
  | Some m -> m
  | None ->
      let m = Memory.with_undo template in
      Hashtbl.add tbl digest m;
      m
