(** Decode-once, run-many execution pipeline.

    {!compile} lowers a loaded {!Program.t} into flat per-function
    micro-op arrays: opcodes are pre-split into int/float variants with
    masks and shift counts baked in, operands are register-file slots
    (immediates interned into constant slots past the real registers, so
    every operand read is one array load), call targets and block
    successors are integer indices, and the per-site candidate metadata
    ({!Meta.t}) plus packed candidate flags ride alongside each micro-op.
    A program is decoded once — keyed by its IR digest — and the
    resulting code is immutable, shared freely across engine domains.

    {!run} executes compiled code with run-until-event fault scheduling:
    the fast path costs one packed-flags load and at most one integer
    compare per candidate instruction; the injector's slow path runs only
    when a scheduled event threshold is crossed.  With no [events] (or
    thresholds of [max_int] after the final flip) the loop never leaves
    the fast path — this is what golden runs and post-injection execution
    pay.

    Behaviour is bit-identical to the seed interpreter {!Exec.run}: same
    outputs, statuses, dynamic counts, candidate ordinals, [last_write]
    contents at every hook, and [block_hook] call sequence.  The
    differential suite and CI pipeline smoke enforce this. *)

type t
(** Compiled form of a program.  Immutable — except through {!patch} on
    a private {!fork}, the code-domain fault injector's entry point. *)

type events = {
  watch : [ `Read | `Write | `Dyn ];
      (** which stream carries the scheduled events: a candidate stream,
          or ([`Dyn]) the raw dynamic-instruction stream — the
          [Mem]/[Code] fault domains' time axis *)
  mutable ev_cand : int;
      (** fire when the watched candidate ordinal reaches this
          (unused, keep at [max_int], for [`Dyn]) *)
  mutable ev_dyn : int;
      (** or when, at a watched candidate (any instruction for [`Dyn]),
          the dynamic index reaches this; either threshold triggers,
          [max_int] disables *)
  handle : dyn:int -> cand:int -> Exec.frame -> Meta.t -> unit;
      (** the slow path.  Fires at the same point the corresponding
          {!Exec.hooks} callback would ([pre] for [`Read], [post] for
          [`Write], [at] for [`Dyn], where [cand] is [-1]) and must
          refresh [ev_cand]/[ev_dyn] before returning. *)
}

val compile : ?digest:string -> Program.t -> t
(** Lower a loaded program.  When [digest] (the workload's IR digest) is
    given, compiled code is cached process-wide and shared: compiling the
    same digest again returns the existing code.  Thread-safe. *)

val program : t -> Program.t
(** The program this code was compiled from. *)

val run :
  ?events:events ->
  ?block_hook:(fidx:int -> bidx:int -> unit) ->
  ?record:Checkpoint.recorder ->
  ?mem:Memory.t ->
  budget:int ->
  t ->
  Exec.result
(** Execute the entry function; semantics of [budget], traps, call depth
    and the result fields are exactly those of {!Exec.run}.

    [record] captures golden-prefix checkpoints into the recorder every
    time a candidate ordinal crosses its interval (see {!Checkpoint});
    recording runs execute on a private undo-tracking memory so each
    point can snapshot its dirty pages.

    [mem] supplies the memory to execute against instead of cloning the
    template — it must be in template state ({!Memory.reset} /
    {!Memory.restore_pages} it first); the caller retains ownership
    across runs.  This is what lets one per-domain memory serve a whole
    shard of experiments. *)

val resume :
  events:events ->
  mem:Memory.t ->
  point:Checkpoint.point ->
  ?orig:t ->
  budget:int ->
  t ->
  Exec.result
(** Restore [point] (counters, output prefix, call stack, dirty pages —
    [mem] must be the undo-tracking working memory for this program) and
    execute only the suffix.  The result is field-for-field what {!run}
    with the same [events] would return: [dyn_count]/candidate ordinals
    continue from the restored counters, so they count the whole logical
    run, not just the suffix.  [budget] keeps its whole-run meaning.

    When executing a {!fork} that {!patch} may rewrite mid-run (the code
    fault domain), pass the pristine original as [orig]: the restored
    stack's in-progress calls complete with their pre-flip destination
    registers, matching non-checkpoint execution, where the call record
    is destructured at dispatch and thus immune to later patches. *)

val resume_prepared :
  events:events ->
  mem:Memory.t ->
  point:Checkpoint.point ->
  ?orig:t ->
  budget:int ->
  t ->
  Exec.result
(** {!resume} minus the page restore: the caller has already positioned
    [mem] at [point]'s memory image ({!Memory.set_baseline} /
    {!Memory.reset_to_baseline}) — the batch scheduler's entry point,
    letting one full restore serve a whole group of experiments that
    share a checkpoint.  Restore-hit accounting ({!Checkpoint.stats})
    is identical to {!resume}. *)

val fork : t -> t
(** A private copy whose micro-op arrays may be {!patch}ed — the
    decode-cache invalidation analog of the code fault domain: the
    digest-keyed decode cache only ever holds pristine code, and a
    mutated experiment runs on a throwaway fork (one array copy per
    function; flags, metas, constant pools and the source program are
    shared). *)

val patch :
  t ->
  fidx:int ->
  bidx:int ->
  idx:int ->
  [ `Instr of Ir.Instr.t | `Term of Ir.Instr.terminator ] ->
  unit
(** Install a (bit-flipped) source instruction at its site, replacing
    the decoded micro-op with a generic interpreting fallback.  [idx] is
    the instruction index within the block ([Array.length instrs] for
    the terminator — {!Meta.t}'s numbering).  The site keeps its
    original candidate flags and metadata, so candidate ordinals and
    [last_write] bookkeeping still follow the golden program structure
    while execution follows the mutated instruction — mirroring the seed
    interpreter on a {!Codeflip} image, with which it stays
    bit-identical.  Only call on a {!fork}. *)

val site_reads : t -> int array array
(** [site_reads code].(fidx).(bidx) is the number of static
    inject-on-read candidate sites in that block (instructions and
    terminator with at least one register source). *)

val site_writes : t -> int array array
(** Static inject-on-write candidate sites per block (instructions with a
    destination register). *)

val cache_stats : unit -> int * int
(** [(decodes, cache_hits)] since process start; counted even when
    metrics collection is disabled.  The Obs mirror counters are
    [onebit_vm_decodes_total] and [onebit_vm_decode_cache_hits_total]. *)
