type t =
  | Segfault
  | Misaligned
  | Div_by_zero
  | Abort_called
  | Stack_overflow
  | Guard_violation
  | Ill_instr

exception Trap of t

let to_string = function
  | Segfault -> "segfault"
  | Misaligned -> "misaligned"
  | Div_by_zero -> "div-by-zero"
  | Abort_called -> "abort"
  | Stack_overflow -> "stack-overflow"
  | Guard_violation -> "guard-violation"
  | Ill_instr -> "ill-instr"

let all =
  [
    Segfault;
    Misaligned;
    Div_by_zero;
    Abort_called;
    Stack_overflow;
    Guard_violation;
    Ill_instr;
  ]

let of_string s = List.find_opt (fun t -> String.equal (to_string t) s) all

let index = function
  | Segfault -> 0
  | Misaligned -> 1
  | Div_by_zero -> 2
  | Abort_called -> 3
  | Stack_overflow -> 4
  | Guard_violation -> 5
  | Ill_instr -> 6
