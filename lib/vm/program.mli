(** Loaded (linked) programs, ready for execution.

    Loading validates the module, lays out globals in the arena (4 KiB null
    page, 8-byte alignment, 64-byte guard gaps), resolves [Glob] operands
    to immediate addresses, canonicalises integer immediates to their
    context type's width, and precomputes {!Meta.t} for every instruction
    and terminator. *)

type lblock = {
  instrs : Ir.Instr.t array;
  mutable term : Ir.Instr.terminator;
      (** mutable so code-domain fault injection ({!Codeflip}) can flip
          bits of a {e private copy}'s terminator in place; loaded
          programs themselves are never mutated *)
  metas : Meta.t array;  (** length [Array.length instrs + 1]; last = term *)
}

type lfunc = {
  name : string;
  params : Ir.Ty.t array;
  ret : Ir.Ty.t option;
  blocks : lblock array;
  reg_ty : Ir.Ty.t array;
}

type target =
  | Fn of int
  | B1 of (float -> float)
  | B2 of (float -> float -> float)

type t = {
  funcs : lfunc array;
  targets : (string, target) Hashtbl.t;
  main : int;  (** index of the entry function *)
  mem_template : Memory.t;
  globals : (string * int * int) list;  (** (name, address, size) *)
  global_addrs : (string, int) Hashtbl.t;
      (** name-keyed view of [globals], built at load; what [load]'s
          operand resolution and {!global_addr} look up *)
}

val load : ?entry:string -> Ir.Func.modl -> t
(** @raise Invalid_argument on validation failure, missing entry function,
    or an entry function with parameters. *)

val global_addr : t -> string -> int
(** @raise Not_found for unknown globals. *)
