(* Stored-program (instruction-cache analog) fault model.

   Every static instruction and terminator of a loaded program is a
   *site*; each site exposes the bit fields an encoded instruction would
   carry, in a fixed canonical order: the destination register, then the
   source operands in operand order, then branch targets.  Register and
   block-target fields are 8 bits wide (a register-file / displacement
   field); integer immediates are as wide as their context type; float
   immediates are the 64 IEEE bits.  Opcodes and structure are never
   flipped — a flip perturbs *which* register/target/constant an
   instruction names, not *what* it does.

   A flip that produces an out-of-range register or block target is an
   undecodable instruction: the effector raises
   {!Trap.Trap}[ Ill_instr], the decode-stage detection analog.
   Immediate flips are always decodable (flipping within the type width
   keeps the canonical form the loader established).

   Flips mutate a private deep copy ([image]) of the program in place,
   so consecutive flips of one experiment accumulate and the seed
   interpreter can execute the image directly (its instruction arrays
   are read afresh each block iteration).  The compiled backend mirrors
   each flip into a {!Code.fork} via the returned patch. *)

let reg_field_width = 8

let op_width ty (op : Ir.Instr.operand) =
  match op with
  | Ir.Instr.Reg _ -> reg_field_width
  | Imm _ -> Ir.Ty.width ty
  | FImm _ -> 64
  | Glob _ -> assert false (* canonicalised away by Program.load *)

let flip_op ~nregs ty (op : Ir.Instr.operand) bit =
  match op with
  | Ir.Instr.Reg r ->
      let r' = r lxor (1 lsl bit) in
      if r' >= nregs then raise (Trap.Trap Trap.Ill_instr);
      Ir.Instr.Reg r'
  | Imm n -> Imm (Ir.Bits.flip ty ~bit n)
  | FImm x -> FImm (Ir.Bits.flip_float ~bit x)
  | Glob _ -> assert false

(* An instruction's fields: [(width, flip_at_bit)] in canonical order.
   Closure-building is fine here — this is the injector's slow path (and
   a once-per-workload width scan). *)
let instr_fields ~nregs ~param_tys (ins : Ir.Instr.t) :
    (int * (int -> Ir.Instr.t)) list =
  let dstf d rebuild =
    ( reg_field_width,
      fun bit ->
        let d' = d lxor (1 lsl bit) in
        if d' >= nregs then raise (Trap.Trap Trap.Ill_instr);
        rebuild d' )
  in
  let opf ty op rebuild =
    (op_width ty op, fun bit -> rebuild (flip_op ~nregs ty op bit))
  in
  match ins with
  | Ir.Instr.Binop b ->
      [
        dstf b.dst (fun dst -> Ir.Instr.Binop { b with dst });
        opf b.ty b.a (fun a -> Ir.Instr.Binop { b with a });
        opf b.ty b.b (fun v -> Ir.Instr.Binop { b with b = v });
      ]
  | Fbinop f ->
      [
        dstf f.dst (fun dst -> Ir.Instr.Fbinop { f with dst });
        opf F64 f.a (fun a -> Ir.Instr.Fbinop { f with a });
        opf F64 f.b (fun v -> Ir.Instr.Fbinop { f with b = v });
      ]
  | Icmp c ->
      [
        dstf c.dst (fun dst -> Ir.Instr.Icmp { c with dst });
        opf c.ty c.a (fun a -> Ir.Instr.Icmp { c with a });
        opf c.ty c.b (fun v -> Ir.Instr.Icmp { c with b = v });
      ]
  | Fcmp c ->
      [
        dstf c.dst (fun dst -> Ir.Instr.Fcmp { c with dst });
        opf F64 c.a (fun a -> Ir.Instr.Fcmp { c with a });
        opf F64 c.b (fun v -> Ir.Instr.Fcmp { c with b = v });
      ]
  | Select s ->
      let va_ty = s.ty in
      [
        dstf s.dst (fun dst -> Ir.Instr.Select { s with dst });
        opf I1 s.cond (fun cond -> Ir.Instr.Select { s with cond });
        opf va_ty s.a (fun a -> Ir.Instr.Select { s with a });
        opf va_ty s.b (fun v -> Ir.Instr.Select { s with b = v });
      ]
  | Cast c ->
      [
        dstf c.dst (fun dst -> Ir.Instr.Cast { c with dst });
        opf c.from_ty c.a (fun a -> Ir.Instr.Cast { c with a });
      ]
  | Mov m ->
      [
        dstf m.dst (fun dst -> Ir.Instr.Mov { m with dst });
        opf m.ty m.a (fun a -> Ir.Instr.Mov { m with a });
      ]
  | Load l ->
      [
        dstf l.dst (fun dst -> Ir.Instr.Load { l with dst });
        opf Ptr l.addr (fun addr -> Ir.Instr.Load { l with addr });
      ]
  | Store s ->
      [
        opf s.ty s.value (fun value -> Ir.Instr.Store { s with value });
        opf Ptr s.addr (fun addr -> Ir.Instr.Store { s with addr });
      ]
  | Gep g ->
      [
        dstf g.dst (fun dst -> Ir.Instr.Gep { g with dst });
        opf Ptr g.base (fun base -> Ir.Instr.Gep { g with base });
        opf I32 g.index (fun index -> Ir.Instr.Gep { g with index });
      ]
  | Call c ->
      let dst_fields =
        match c.dst with
        | Some d ->
            [ dstf d (fun d' -> Ir.Instr.Call { c with dst = Some d' }) ]
        | None -> []
      in
      let params = param_tys c.callee in
      let nth_ty j =
        match List.nth_opt params j with Some ty -> ty | None -> Ir.Ty.F64
      in
      let arg_fields =
        List.mapi
          (fun j arg ->
            opf (nth_ty j) arg (fun a ->
                Ir.Instr.Call
                  {
                    c with
                    args = List.mapi (fun k x -> if k = j then a else x) c.args;
                  }))
          c.args
      in
      dst_fields @ arg_fields
  | Output o -> [ opf o.ty o.value (fun value -> Ir.Instr.Output { o with value }) ]
  | Guard g ->
      [
        opf g.ty g.a (fun a -> Ir.Instr.Guard { g with a });
        opf g.ty g.b (fun v -> Ir.Instr.Guard { g with b = v });
      ]
  | Abort -> []

let term_fields ~nregs ~nblocks ~ret (tm : Ir.Instr.terminator) :
    (int * (int -> Ir.Instr.terminator)) list =
  let blkf l rebuild =
    ( reg_field_width,
      fun bit ->
        let l' = l lxor (1 lsl bit) in
        if l' >= nblocks then raise (Trap.Trap Trap.Ill_instr);
        rebuild l' )
  in
  let opf ty op rebuild =
    (op_width ty op, fun bit -> rebuild (flip_op ~nregs ty op bit))
  in
  match tm with
  | Ir.Instr.Br l -> [ blkf l (fun l' -> Ir.Instr.Br l') ]
  | Cbr c ->
      [
        opf I1 c.cond (fun cond -> Ir.Instr.Cbr { c with cond });
        blkf c.if_true (fun t -> Ir.Instr.Cbr { c with if_true = t });
        blkf c.if_false (fun t -> Ir.Instr.Cbr { c with if_false = t });
      ]
  | Ret None -> []
  | Ret (Some v) -> (
      match ret with
      | Some ty -> [ opf ty v (fun v' -> Ir.Instr.Ret (Some v')) ]
      | None -> [])
  | Unreachable -> []

(* ---- the site table ---- *)

type site = {
  s_fidx : int;
  s_bidx : int;
  s_idx : int;  (* instruction index; n_instrs = the terminator *)
  s_bits : int;
  s_off : int;  (* cumulative bit offset; the global bit space is dense *)
}

type sites = {
  tab : site array;
  total_bits : int;
  param_tys : string -> Ir.Ty.t list;
}

let total_bits s = s.total_bits
let site_count s = Array.length s.tab

let param_resolver (p : Program.t) callee =
  match Hashtbl.find_opt p.Program.targets callee with
  | Some (Program.Fn i) -> Array.to_list p.Program.funcs.(i).Program.params
  | Some (B1 _) -> [ Ir.Ty.F64 ]
  | Some (B2 _) -> [ Ir.Ty.F64; Ir.Ty.F64 ]
  | None -> (
      match Ir.Builtins.signature callee with
      | Some (params, _) -> params
      | None -> [])

let sum_widths fields = List.fold_left (fun a (w, _) -> a + w) 0 fields

(* Field widths are flip-invariant (a flip never changes an operand's
   kind or an instruction's structure), so the table built from the
   pristine program stays valid for every image however many flips it
   has absorbed. *)
let sites (p : Program.t) =
  let param_tys = param_resolver p in
  let acc = ref [] and off = ref 0 in
  Array.iteri
    (fun fidx (f : Program.lfunc) ->
      let nregs = Array.length f.Program.reg_ty in
      let nblocks = Array.length f.Program.blocks in
      Array.iteri
        (fun bidx (b : Program.lblock) ->
          let add idx bits =
            acc :=
              { s_fidx = fidx; s_bidx = bidx; s_idx = idx; s_bits = bits;
                s_off = !off }
              :: !acc;
            off := !off + bits
          in
          Array.iteri
            (fun idx ins ->
              add idx (sum_widths (instr_fields ~nregs ~param_tys ins)))
            b.Program.instrs;
          add
            (Array.length b.Program.instrs)
            (sum_widths
               (term_fields ~nregs ~nblocks ~ret:f.Program.ret b.Program.term)))
        f.Program.blocks)
    p.Program.funcs;
  { tab = Array.of_list (List.rev !acc); total_bits = !off; param_tys }

(* Global bit ordinal -> (site ordinal, bit within the site).  Binary
   search over the cumulative offsets. *)
let locate s g =
  if g < 0 || g >= s.total_bits then invalid_arg "Codeflip.locate";
  let lo = ref 0 and hi = ref (Array.length s.tab - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if s.tab.(mid).s_off <= g then lo := mid else hi := mid - 1
  done;
  (!lo, g - s.tab.(!lo).s_off)

let site_bits s i = s.tab.(i).s_bits

(* ---- images ---- *)

(* A deep private copy: fresh block records (their [term] cell is
   mutable) and fresh instruction arrays; metas, reg_ty, memory template
   and targets are shared — flips never touch them. *)
let image (p : Program.t) : Program.t =
  {
    p with
    funcs =
      Array.map
        (fun (f : Program.lfunc) ->
          {
            f with
            Program.blocks =
              Array.map
                (fun (b : Program.lblock) ->
                  { b with Program.instrs = Array.copy b.Program.instrs })
                f.Program.blocks;
          })
        p.Program.funcs;
  }

type patch =
  [ `Instr of Ir.Instr.t | `Term of Ir.Instr.terminator ]

(* Apply field flip [bit] (site-relative) to the image's *current*
   instruction at [site], so flips accumulate.  Returns the patch for
   the compiled backend plus the site coordinates.  Raises
   [Trap.Trap Ill_instr] if the flip is undecodable (the image is left
   unchanged in that case — the run is dead anyway). *)
let flip s (img : Program.t) ~site ~bit =
  let st = s.tab.(site) in
  let f = img.Program.funcs.(st.s_fidx) in
  let b = f.Program.blocks.(st.s_bidx) in
  let nregs = Array.length f.Program.reg_ty in
  let nblocks = Array.length f.Program.blocks in
  let rec pick k = function
    | [] -> invalid_arg "Codeflip.flip: bit out of range"
    | (w, apply) :: rest -> if k < w then apply k else pick (k - w) rest
  in
  if st.s_idx < Array.length b.Program.instrs then begin
    let fields =
      instr_fields ~nregs ~param_tys:s.param_tys b.Program.instrs.(st.s_idx)
    in
    let ins' = pick bit fields in
    b.Program.instrs.(st.s_idx) <- ins';
    (`Instr ins' : patch)
  end
  else begin
    let fields = term_fields ~nregs ~nblocks ~ret:f.Program.ret b.Program.term in
    let tm' = pick bit fields in
    b.Program.term <- tm';
    (`Term tm' : patch)
  end

let site_coords s i =
  let st = s.tab.(i) in
  (st.s_fidx, st.s_bidx, st.s_idx)
