(** Hardware-exception analogues raised during execution.

    These are the "Detected by Hardware Exceptions" events of the paper's
    outcome classification (§III-E): segmentation faults, misaligned
    accesses, arithmetic errors and aborts.  [Stack_overflow] models a
    fault-induced runaway recursion hitting the guard page. *)

type t =
  | Segfault
  | Misaligned
  | Div_by_zero
  | Abort_called
  | Stack_overflow
  | Guard_violation
      (** a software [Guard] detector (inserted by a hardening pass) fired *)
  | Ill_instr
      (** a code-domain bit flip produced an undecodable instruction (an
          out-of-range register or branch-target field); the decode-stage
          illegal-instruction exception analog *)

exception Trap of t

val to_string : t -> string
val all : t list

val of_string : string -> t option
(** Inverse of {!to_string}; how the result store deserialises trap
    breakdowns. *)

val index : t -> int
(** Position of the trap in {!all}; a dense index for array-backed
    per-trap tables (e.g. the VM's trap counters). *)
