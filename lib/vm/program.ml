type lblock = {
  instrs : Ir.Instr.t array;
  mutable term : Ir.Instr.terminator;
  metas : Meta.t array;
}

type lfunc = {
  name : string;
  params : Ir.Ty.t array;
  ret : Ir.Ty.t option;
  blocks : lblock array;
  reg_ty : Ir.Ty.t array;
}

type target =
  | Fn of int
  | B1 of (float -> float)
  | B2 of (float -> float -> float)

type t = {
  funcs : lfunc array;
  targets : (string, target) Hashtbl.t;
  main : int;
  mem_template : Memory.t;
  globals : (string * int * int) list;
  global_addrs : (string, int) Hashtbl.t;
      (* name -> base address; same contents as [globals], O(1) lookup *)
}

let null_page = 4096
let guard_gap = 64

let layout_globals (globals : Ir.Func.global list) =
  let addr = ref null_page in
  let placed =
    List.map
      (fun (g : Ir.Func.global) ->
        (* 8-byte alignment satisfies every access width. *)
        addr := (!addr + 7) land lnot 7;
        let base = !addr in
        addr := base + Bytes.length g.g_init + guard_gap;
        (g.g_name, base, Bytes.length g.g_init, g.g_init))
      globals
  in
  let size = !addr + null_page in
  (placed, size)

let builtin_impl name : target option =
  match name with
  | "sqrt" -> Some (B1 sqrt)
  | "sin" -> Some (B1 sin)
  | "cos" -> Some (B1 cos)
  | "tan" -> Some (B1 tan)
  | "acos" -> Some (B1 acos)
  | "asin" -> Some (B1 asin)
  | "atan" -> Some (B1 atan)
  | "exp" -> Some (B1 exp)
  | "log" -> Some (B1 log)
  | "fabs" -> Some (B1 abs_float)
  | "floor" -> Some (B1 floor)
  | "ceil" -> Some (B1 ceil)
  | "pow" -> Some (B2 ( ** ))
  | "atan2" -> Some (B2 atan2)
  | "fmod" -> Some (B2 Float.rem)
  | _ -> None

(* Resolve [Glob] to an immediate address and canonicalise integer
   immediates to the width of their context type. *)
let canon_operand resolve ty (op : Ir.Instr.operand) : Ir.Instr.operand =
  match op with
  | Glob g -> Imm (resolve g)
  | Imm n -> Imm (Ir.Bits.mask ty n)
  | Reg _ | FImm _ -> op

(* Set by [load] so [canon_instr] can canonicalise call arguments against
   the callee's parameter types. *)
let lookup_params : (string -> Ir.Ty.t list option) ref = ref (fun _ -> None)

let canon_instr resolve (i : Ir.Instr.t) : Ir.Instr.t =
  let c = canon_operand resolve in
  match i with
  | Binop b -> Binop { b with a = c b.ty b.a; b = c b.ty b.b }
  | Fbinop f -> Fbinop { f with a = c F64 f.a; b = c F64 f.b }
  | Icmp x -> Icmp { x with a = c x.ty x.a; b = c x.ty x.b }
  | Fcmp x -> Fcmp { x with a = c F64 x.a; b = c F64 x.b }
  | Select s ->
      Select { s with cond = c I1 s.cond; a = c s.ty s.a; b = c s.ty s.b }
  | Cast x -> Cast { x with a = c x.from_ty x.a }
  | Mov m -> Mov { m with a = c m.ty m.a }
  | Load l -> Load { l with addr = c Ptr l.addr }
  | Store s -> Store { s with value = c s.ty s.value; addr = c Ptr s.addr }
  | Gep g -> Gep { g with base = c Ptr g.base; index = c I32 g.index }
  | Call { dst; callee; args } ->
      let params =
        match Ir.Builtins.signature callee with
        | Some (p, _) -> p
        | None -> (
            (* module function; parameter types looked up by the caller *)
            match !lookup_params callee with Some p -> p | None -> [])
      in
      let args =
        if List.length params = List.length args then
          List.map2 (fun p a -> c p a) params args
        else args
      in
      Call { dst; callee; args }
  | Output o -> Output { o with value = c o.ty o.value }
  | Guard g -> Guard { g with a = c g.ty g.a; b = c g.ty g.b }
  | Abort -> Abort

let canon_term resolve (t : Ir.Instr.terminator) ret_ty : Ir.Instr.terminator =
  let c = canon_operand resolve in
  match t with
  | Br _ | Unreachable | Ret None -> t
  | Cbr x -> Cbr { x with cond = c I1 x.cond }
  | Ret (Some v) -> (
      match ret_ty with Some ty -> Ret (Some (c ty v)) | None -> Ret (Some v))

let load ?(entry = "main") (m : Ir.Func.modl) =
  Ir.Validate.check_exn m;
  let placed, size = layout_globals m.m_globals in
  let regions = List.map (fun (_, base, _, init) -> (base, init)) placed in
  let mem_template = Memory.create_template ~size ~regions in
  let globals = List.map (fun (n, b, s, _) -> (n, b, s)) placed in
  let global_addrs = Hashtbl.create (List.length globals + 1) in
  List.iter (fun (n, base, _) -> Hashtbl.replace global_addrs n base) globals;
  let resolve g =
    match Hashtbl.find_opt global_addrs g with
    | Some base -> base
    | None -> invalid_arg ("Program.load: unknown global " ^ g)
  in
  let param_tys name =
    Option.map
      (fun (f : Ir.Func.t) -> f.f_params)
      (Ir.Func.find_func m name)
  in
  lookup_params := param_tys;
  let load_func fidx (f : Ir.Func.t) =
    let blocks =
      Array.mapi
        (fun bidx (b : Ir.Func.block) ->
          let instrs = Array.map (canon_instr resolve) b.b_instrs in
          let term = canon_term resolve b.b_term f.f_ret in
          let n = Array.length instrs in
          let metas = Array.make (n + 1) Meta.no_operands in
          Array.iteri
            (fun i ins -> metas.(i) <- Meta.of_instr ~fidx ~bidx ~idx:i ins)
            instrs;
          metas.(n) <- Meta.of_term ~fidx ~bidx ~idx:n term;
          { instrs; term; metas })
        f.f_blocks
    in
    {
      name = f.f_name;
      params = Array.of_list f.f_params;
      ret = f.f_ret;
      blocks;
      reg_ty = f.f_reg_ty;
    }
  in
  let funcs = Array.of_list (List.mapi load_func m.m_funcs) in
  let targets = Hashtbl.create 32 in
  Array.iteri (fun i (f : lfunc) -> Hashtbl.replace targets f.name (Fn i)) funcs;
  List.iter
    (fun name ->
      match builtin_impl name with
      | Some t -> if not (Hashtbl.mem targets name) then Hashtbl.replace targets name t
      | None -> ())
    Ir.Builtins.names;
  let main =
    let rec find i =
      if i >= Array.length funcs then
        invalid_arg ("Program.load: no entry function " ^ entry)
      else if funcs.(i).name = entry then i
      else find (i + 1)
    in
    find 0
  in
  if Array.length funcs.(main).params > 0 then
    invalid_arg "Program.load: entry function must take no parameters";
  { funcs; targets; main; mem_template; globals; global_addrs }

let global_addr t name =
  match Hashtbl.find_opt t.global_addrs name with
  | Some base -> base
  | None -> raise Not_found
