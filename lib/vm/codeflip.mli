(** Stored-program (code) fault domain: bit flips in the encoded
    instruction fields of a loaded program — the instruction-cache
    analog of the register-domain model.

    Every static instruction and terminator is a {e site}.  A site's
    flippable fields, in canonical encoding order (destination register,
    source operands in operand order, branch targets), are:

    - register fields — 8 bits wide (a register-file address field);
    - block-target fields — 8 bits wide (a branch displacement field);
    - integer immediates — as wide as their context type
      ({!Ir.Ty.width});
    - float immediates — the 64 IEEE bits.

    Opcodes, structure, callee names and arity never flip: a fault
    perturbs {e which} register/target/constant an instruction names,
    never {e what} it does.  A flip that produces a register or block
    target out of the function's range is an undecodable encoding — the
    effector raises {!Trap.Trap}[ Ill_instr], the decode-stage detection
    analog.  Immediate flips are always decodable.

    The global bit space over all sites is dense, so the injector draws
    one ordinal in [0, total_bits) and {!locate}s it. *)

type sites
(** Per-program static table: every site's field widths and cumulative
    bit offsets.  Widths are flip-invariant (flips never change an
    operand's kind), so one table serves every image of the program no
    matter how many flips it has absorbed. *)

val sites : Program.t -> sites
(** Build the table.  Cost is one pass over the static program. *)

val total_bits : sites -> int
(** Size of the program's flippable-bit space — the code domain's
    location-sampling range. *)

val site_count : sites -> int

val site_bits : sites -> int -> int
(** Flippable bits of one site (0 for [Abort] / [Ret None] /
    [Unreachable]) — the multi-bit win-0 burst's per-site range. *)

val locate : sites -> int -> int * int
(** [locate s g] maps a global bit ordinal to
    [(site ordinal, bit within site)]. *)

val site_coords : sites -> int -> int * int * int
(** [(fidx, bidx, idx)] of a site; [idx] is the instruction index within
    the block, [Array.length instrs] for the terminator — {!Meta.t}'s
    numbering, as {!Code.patch} expects. *)

val image : Program.t -> Program.t
(** A deep private copy whose instruction arrays and terminator cells
    may be mutated by {!flip}.  Metas, register types, memory template
    and call targets are shared with the original.  The seed interpreter
    executes an image directly; the compiled backend mirrors its flips
    into a {!Code.fork} via the returned patches. *)

type patch = [ `Instr of Ir.Instr.t | `Term of Ir.Instr.terminator ]

val flip : sites -> Program.t -> site:int -> bit:int -> patch
(** Flip [bit] (site-relative ordinal into the site's field space) of
    the image's {e current} instruction at [site], in place — so
    consecutive flips of one experiment accumulate.  Returns the
    mutated instruction as a patch for {!Code.patch}.

    @raise Trap.Trap [Ill_instr] when the flip is undecodable; the image
    is left unchanged (the run is dead at that point anyway). *)
