(** Golden-prefix checkpoints for the compiled VM.

    Every experiment is deterministic and fault-free up to its first
    flip, whose candidate ordinal is known at injector creation.  One
    instrumented golden run per program ({!Code.run} with a {!recorder})
    captures the complete VM state every [interval] candidate
    instructions; {!select} then finds the nearest checkpoint
    at-or-before an experiment's first target and {!Code.resume}
    executes only the suffix.

    A checkpoint is taken at the top of the interpreter loop — before
    the instruction's dyn increment and candidate blocks — and carries
    {e both} the read- and write-candidate ordinals consumed so far, so
    a single digest-keyed set serves both injection techniques.  The
    golden prefix fires no injector events and consumes no randomness,
    which is why a resumed run is bit-identical to a full one (enforced
    by test/suite_checkpoint.ml and the CI checkpoint smoke). *)

type frame_snap = {
  fs_fidx : int;  (** compiled-function index *)
  fs_pc : int;
      (** innermost frame: pc to resume at; outer frames: pc of the
          in-progress call instruction *)
  fs_call_dyn : int;
      (** outer frames: the call's dynamic index, used to replay its
          write-candidate post-block exactly; 0 for the innermost *)
  fs_ints : int array;
  fs_flts : float array;
  fs_lw : int array;
}
(** One frame of the captured call stack (private copies). *)

type point = {
  ck_dyn : int;  (** dynamic instructions executed before this point *)
  ck_rc : int;  (** read-candidate ordinals consumed *)
  ck_wc : int;  (** write-candidate ordinals consumed *)
  ck_out : string;  (** output emitted so far *)
  ck_stack : frame_snap array;  (** outermost first *)
  ck_pages : (int * bytes) array;
      (** dirty pages at capture; with the pristine template this is the
          whole memory image *)
}

type set = { interval : int; points : point array }
(** All checkpoints of one golden run; ordinals increase with index. *)

type recorder = {
  mutable interval : int;
  mutable next_rc : int;
  mutable next_wc : int;
  mutable rev_points : point list;
  mutable n_points : int;
}
(** Mutable capture state threaded through a recording {!Code.run}.
    Transparent so the run loop's trigger test ([rc >= next_rc || wc >=
    next_wc]) is two field loads; treat as opaque elsewhere. *)

val recorder : interval:int -> recorder
(** A fresh recorder capturing every [interval] candidate instructions
    (on either ordinal axis).  When a program accumulates more than an
    internal cap (1024 points) the set is thinned to every other point
    and the interval doubles, bounding memory for any program length.
    Raises [Invalid_argument] if [interval <= 0]. *)

val finish : recorder -> set
val add : recorder -> point -> unit
(** Used by {!Code.run}'s capture path; re-arms the trigger thresholds. *)

val null_recorder : recorder
(** Thresholds pinned at [max_int]; never captures.  The run loop's
    placeholder for non-recording runs. *)

val select :
  set -> axis:[ `Read | `Write | `Dyn ] -> target:int -> point option
(** Greatest point whose consumed-ordinal count on [axis] is [<= target]
    (binary search), or [None] if even the first checkpoint lies beyond
    the target.  [`Dyn] selects on the raw dynamic-instruction counter —
    the [Mem]/[Code] fault domains' time axis; a captured call frame's
    call ran strictly before [ck_dyn], so resuming cannot skip the
    target's top-of-loop event. *)

val note_restore : point -> unit
(** Count a restore (plain counter + Obs hit/distance/pages probes). *)

val stats : unit -> int * int
(** [(points captured, restores)] since process start; counted even when
    metrics collection is disabled.  Obs mirrors:
    [onebit_vm_checkpoints_total], [onebit_vm_checkpoint_hits_total],
    the [onebit_vm_checkpoint_restore_distance] histogram and the
    saved/restored page counters. *)

(** {1 Process-wide cache}

    Like the decode cache, checkpoint sets are keyed by IR digest and
    shared across engine domains.  Lookups are lock-free (an immutable
    map behind an atomic); recording happens at most once per digest
    under a lock. *)

val find : string -> set option
val store : string -> set -> unit

val ensure : string -> record:(unit -> set option) -> set option
(** [find], or run [record] (under the recording lock, double-checked)
    and cache its result.  [record] returning [None] — e.g. a golden run
    that did not finish — caches nothing and disables checkpointing for
    this digest. *)

val working_mem : digest:string -> Memory.t -> Memory.t
(** The calling domain's reusable undo-tracking memory for [digest],
    created from [template] on first use (domain-local storage).  Callers
    must {!Memory.reset} or {!Memory.restore_pages} it before each run;
    domains execute their experiments sequentially, so one memory per
    (domain, program) suffices. *)
