(** The execution engine.

    [run] interprets a loaded program deterministically, producing the
    output stream, the dynamic instruction count and the two candidate
    counts (Table II of the paper).  The optional {!hooks} are the fault
    injector's entry points:

    - [pre] fires {e before} an instruction (or terminator) that has at
      least one register source operand executes — the inject-on-read
      window;
    - [post] fires {e after} an instruction that wrote a destination
      register — the inject-on-write window.

    Both receive the current frame so they can flip live register bits in
    place, plus the instruction's dynamic index (0-based position in the
    dynamic instruction stream). *)

type status = Finished | Trapped of Trap.t | Hung

type result = {
  status : status;
  output : string;  (** bytes appended by [Output] instructions *)
  dyn_count : int;  (** dynamic instructions executed, terminators included *)
  read_cands : int;  (** dynamic inject-on-read candidates encountered *)
  write_cands : int;  (** dynamic inject-on-write candidates encountered *)
}

type frame = {
  ints : int array;  (** integer/pointer registers, canonical form *)
  flts : float array;  (** f64 registers *)
  reg_ty : Ir.Ty.t array;
  last_write : int array;
      (** dynamic index of each register's most recent write, -1 before the
          first; the distance [dyn - last_write.(r)] at a read is the size
          of the read's pre-injection equivalence class (Barbosa et al.'s
          weight, discussed in the paper's §III-A1) *)
}

type hooks = {
  pre : dyn:int -> frame -> Meta.t -> unit;
  post : dyn:int -> frame -> Meta.t -> unit;
  at : dyn:int -> frame -> Meta.t -> unit;
      (** fires before {e every} dynamic instruction and terminator,
          candidate or not — the time axis of the [Mem]/[Code] fault
          domains, whose flips land between dynamic instructions *)
}

val no_hook : dyn:int -> frame -> Meta.t -> unit
(** A no-op hook body, for callers that only need one or two of the
    three entry points. *)

val run :
  ?hooks:hooks ->
  ?block_hook:(fidx:int -> bidx:int -> unit) ->
  ?mem:Memory.t ->
  budget:int ->
  Program.t ->
  result
(** Execute the entry function.  [budget] bounds the number of dynamic
    instructions; exceeding it yields [Hung] (the paper's watchdog).  Call
    depth beyond 1000 frames traps as [Stack_overflow].  [mem], when
    given, is executed against directly instead of a fresh clone of the
    program's template — the memory-domain injector passes a
    pre-faulted or undo-tracking memory here. *)

val golden_budget : int
(** A generous default budget for fault-free runs (100M instructions). *)

val max_call_depth : int
(** Frame-depth limit shared by both execution backends (1000). *)

val record_run : result -> unit
(** Whole-run observability accounting (runs / instructions / traps /
    hangs).  Called by [run] itself and by the compiled pipeline
    ({!Code.run}), so the vm_* metrics are backend-independent.
    Self-gates on [Obs.Metrics.enabled]. *)

(** {2 Shared instruction semantics}

    The single definition of each operator's semantics, used by this
    interpreter and by the compiled pipeline's generic fallback uop
    ([Code]'s [Uinterp], which executes code-domain-mutated
    instructions) so a flipped instruction means exactly the same thing
    on both backends. *)

val exec_binop : Ir.Instr.binop -> Ir.Ty.t -> int -> int -> int
val exec_fbinop : Ir.Instr.fbinop -> float -> float -> float
val exec_icmp : Ir.Instr.icmp -> Ir.Ty.t -> int -> int -> int
val exec_fcmp : Ir.Instr.fcmp -> float -> float -> int
val float_to_int : Ir.Ty.t -> float -> int
val ucompare : int -> int -> int
val to_u64 : int -> int64

val add_output : Buffer.t -> Ir.Ty.t -> int -> float -> unit
(** Append one [Output] value to the stream ([iv] for integer types,
    [fv] for [F64]). *)
