(* An arena plus an optional dirty-page undo log.

   Plain clones pay a whole-arena [Bytes.copy] per run.  Undo-tracking
   memories ([with_undo]) instead remember which 256-byte pages a run
   touched and rewind only those from the pristine template, so resetting
   between experiments costs O(dirty pages) rather than O(arena).  The
   checkpoint layer additionally snapshots/restores the dirty page set to
   re-create a mid-run memory image exactly. *)

(* 256-byte pages: small enough that a short experiment touches a
   handful, large enough that the page table stays tiny. *)
let page_bits = 8
let page_size = 1 lsl page_bits

type undo = {
  template : Bytes.t; (* the pristine arena, shared with the template *)
  dirty_flag : Bytes.t; (* one byte per page *)
  mutable dirty : int array; (* stack of dirty page indexes *)
  mutable n_dirty : int;
  mutable baseline : (int * Bytes.t) array option;
      (* batch baseline overlay: the installed snapshot, page-indexable
         through [overlay].  While installed, the dirty set tracks only
         pages written since the baseline; a plain [reset] rewinds those
         and the overlay's own pages to the template before dropping the
         overlay. *)
  overlay : Bytes.t option array;
      (* direct-mapped page -> baseline bytes (length = page count); all
         [None] when no baseline is installed.  An array, not a hash
         table: [reset_to_baseline] probes it once per dirty page on the
         batch hot path. *)
}

type t = {
  arena : Bytes.t;
  mapped : Bytes.t;  (* one flag byte per arena byte; shared across clones *)
  size : int;
  undo : undo option;
}

let m_pages_reset = Obs.Metrics.counter "onebit_vm_dirty_pages_reset_total"
let m_restores_full = Obs.Metrics.counter "onebit_vm_restores_full_total"
let m_resets_undo = Obs.Metrics.counter "onebit_vm_resets_undo_total"

(* Kept unconditionally (plain atomics, no Obs gate) so tests and the
   bench harness can observe restore amortisation even with metrics
   collection disabled. *)
let full_total = Atomic.make 0
let undo_total = Atomic.make 0
let restore_stats () = (Atomic.get full_total, Atomic.get undo_total)

let create_template ~size ~regions =
  let arena = Bytes.make size '\000' in
  let mapped = Bytes.make size '\000' in
  List.iter
    (fun (base, init) ->
      let len = Bytes.length init in
      if base < 0 || base + len > size then
        invalid_arg "Memory.create_template: region out of bounds";
      for i = base to base + len - 1 do
        if Bytes.get mapped i <> '\000' then
          invalid_arg "Memory.create_template: overlapping regions";
        Bytes.set mapped i '\001'
      done;
      Bytes.blit init 0 arena base len)
    regions;
  { arena; mapped; size; undo = None }

let clone t =
  { arena = Bytes.copy t.arena; mapped = t.mapped; size = t.size; undo = None }

let with_undo t =
  let npages = (t.size + page_size - 1) / page_size in
  {
    arena = Bytes.copy t.arena;
    mapped = t.mapped;
    size = t.size;
    undo =
      Some
        {
          template = t.arena;
          dirty_flag = Bytes.make npages '\000';
          dirty = Array.make 64 0;
          n_dirty = 0;
          baseline = None;
          overlay = Array.make npages None;
        };
  }

let size t = t.size
let tracks_undo t = Option.is_some t.undo

let dirty_pages t =
  match t.undo with Some u -> u.n_dirty | None -> 0

let mark_page u p =
  if Bytes.unsafe_get u.dirty_flag p = '\000' then begin
    Bytes.unsafe_set u.dirty_flag p '\001';
    let n = u.n_dirty in
    if n = Array.length u.dirty then begin
      let grown = Array.make (2 * n) 0 in
      Array.blit u.dirty 0 grown 0 n;
      u.dirty <- grown
    end;
    Array.unsafe_set u.dirty n p;
    u.n_dirty <- n + 1
  end

(* An aligned access can still straddle a page boundary (8-byte stores
   are only 4-aligned), so mark the pages of both the first and last
   byte. *)
let mark t ~width ~addr =
  match t.undo with
  | None -> ()
  | Some u ->
      let p0 = addr lsr page_bits in
      let p1 = (addr + width - 1) lsr page_bits in
      mark_page u p0;
      if p1 <> p0 then mark_page u p1

let page_len t p =
  let off = p lsl page_bits in
  min page_size (t.size - off)

let reset t =
  match t.undo with
  | None -> invalid_arg "Memory.reset: not an undo-tracking memory"
  | Some u ->
      for k = 0 to u.n_dirty - 1 do
        let p = Array.unsafe_get u.dirty k in
        let off = p lsl page_bits in
        Bytes.blit u.template off t.arena off (page_len t p);
        Bytes.unsafe_set u.dirty_flag p '\000'
      done;
      if Obs.Metrics.enabled () then Obs.Metrics.add m_pages_reset u.n_dirty;
      u.n_dirty <- 0;
      (* Baseline pages are tracked in the overlay, not the dirty set;
         rewind them to the template too (re-blitting a page that was also
         dirty is harmless) and drop the overlay. *)
      match u.baseline with
      | None -> ()
      | Some pages ->
          u.baseline <- None;
          Array.iter
            (fun (p, _) ->
              u.overlay.(p) <- None;
              let off = p lsl page_bits in
              Bytes.blit u.template off t.arena off (page_len t p))
            pages;
          if Obs.Metrics.enabled () then
            Obs.Metrics.add m_pages_reset (Array.length pages)

let snapshot_pages t =
  match t.undo with
  | None -> invalid_arg "Memory.snapshot_pages: not an undo-tracking memory"
  | Some u ->
      if u.baseline <> None then
        invalid_arg "Memory.snapshot_pages: baseline overlay installed";
      let pages = Array.sub u.dirty 0 u.n_dirty in
      Array.sort compare pages;
      Array.map
        (fun p -> (p, Bytes.sub t.arena (p lsl page_bits) (page_len t p)))
        pages

let restore_pages t pages =
  (match t.undo with
  | None -> invalid_arg "Memory.restore_pages: not an undo-tracking memory"
  | Some _ -> ());
  reset t;
  let u = Option.get t.undo in
  Array.iter
    (fun (p, b) ->
      Bytes.blit b 0 t.arena (p lsl page_bits) (Bytes.length b);
      mark_page u p)
    pages;
  Atomic.incr full_total;
  if Obs.Metrics.enabled () then Obs.Metrics.incr m_restores_full

(* Batch-group entry points: [set_baseline] is a full restore that
   additionally remembers the snapshot as an overlay and empties the
   dirty set, so from here on the log records only divergence *from the
   baseline*; [reset_to_baseline] then reproduces [restore_pages t pages]
   in O(pages written since the baseline) — each such page is rewound to
   its overlay image if it belongs to the baseline, to the template
   otherwise. *)
let set_baseline t pages =
  restore_pages t pages;
  let u = Option.get t.undo in
  (* The restore marked the baseline pages dirty; forget that — the
     overlay owns them now, and [reset] knows to rewind them. *)
  for k = 0 to u.n_dirty - 1 do
    Bytes.unsafe_set u.dirty_flag (Array.unsafe_get u.dirty k) '\000'
  done;
  u.n_dirty <- 0;
  Array.iter (fun (p, b) -> u.overlay.(p) <- Some b) pages;
  u.baseline <- Some pages

let reset_to_baseline t =
  match t.undo with
  | None -> invalid_arg "Memory.reset_to_baseline: not an undo-tracking memory"
  | Some u ->
      if u.baseline = None then
        invalid_arg "Memory.reset_to_baseline: no baseline installed";
      for k = 0 to u.n_dirty - 1 do
        let p = Array.unsafe_get u.dirty k in
        let off = p lsl page_bits in
        (match Array.unsafe_get u.overlay p with
        | Some b -> Bytes.blit b 0 t.arena off (Bytes.length b)
        | None -> Bytes.blit u.template off t.arena off (page_len t p));
        Bytes.unsafe_set u.dirty_flag p '\000'
      done;
      if Obs.Metrics.enabled () then Obs.Metrics.add m_pages_reset u.n_dirty;
      u.n_dirty <- 0;
      Atomic.incr undo_total;
      if Obs.Metrics.enabled () then Obs.Metrics.incr m_resets_undo

let check t ~width ~addr =
  if addr < 0 || addr + width > t.size then raise (Trap.Trap Trap.Segfault);
  let align = if width < 4 then width else 4 in
  if addr land (align - 1) <> 0 then raise (Trap.Trap Trap.Misaligned);
  (* Guard gaps exceed the largest access width, so checking the first and
     last byte of the access suffices. *)
  if Bytes.unsafe_get t.mapped addr = '\000'
     || Bytes.unsafe_get t.mapped (addr + width - 1) = '\000'
  then raise (Trap.Trap Trap.Segfault)

let read_int t ~width ~addr =
  check t ~width ~addr;
  match width with
  | 1 -> Bytes.get_uint8 t.arena addr
  | 2 -> Bytes.get_uint16_le t.arena addr
  | 4 -> Int32.to_int (Bytes.get_int32_le t.arena addr) land 0xFFFFFFFF
  | 8 -> Int64.to_int (Bytes.get_int64_le t.arena addr)
  | _ -> invalid_arg "Memory.read_int: bad width"

let write_int t ~width ~addr v =
  check t ~width ~addr;
  mark t ~width ~addr;
  match width with
  | 1 -> Bytes.set_uint8 t.arena addr (v land 0xFF)
  | 2 -> Bytes.set_uint16_le t.arena addr (v land 0xFFFF)
  | 4 -> Bytes.set_int32_le t.arena addr (Int32.of_int v)
  | 8 -> Bytes.set_int64_le t.arena addr (Int64.of_int v)
  | _ -> invalid_arg "Memory.write_int: bad width"

let read_f64 t ~addr =
  check t ~width:8 ~addr;
  Int64.float_of_bits (Bytes.get_int64_le t.arena addr)

let write_f64 t ~addr v =
  check t ~width:8 ~addr;
  mark t ~width:8 ~addr;
  Bytes.set_int64_le t.arena addr (Int64.bits_of_float v)

(* Fault injection: flip one bit of a mapped arena byte.  Bypasses the
   alignment/width checks (a particle strike does not obey the ABI) but
   still refuses unmapped addresses, and marks the page dirty so
   undo-tracking memories rewind the flip like any ordinary write. *)
let flip_bit t ~addr ~bit =
  if addr < 0 || addr >= t.size then
    invalid_arg "Memory.flip_bit: address out of bounds";
  if bit < 0 || bit > 7 then invalid_arg "Memory.flip_bit: bit out of range";
  if Bytes.unsafe_get t.mapped addr = '\000' then
    invalid_arg "Memory.flip_bit: unmapped address";
  mark t ~width:1 ~addr;
  Bytes.set_uint8 t.arena addr (Bytes.get_uint8 t.arena addr lxor (1 lsl bit))

(* The mapped (flippable) addresses of the arena, in address order.  The
   mapped table is immutable and shared across clones, so this is a pure
   function of the program's layout — compute it once per workload. *)
let mapped_addrs t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if Bytes.unsafe_get t.mapped i <> '\000' then incr n
  done;
  let out = Array.make !n 0 in
  let k = ref 0 in
  for i = 0 to t.size - 1 do
    if Bytes.unsafe_get t.mapped i <> '\000' then begin
      out.(!k) <- i;
      incr k
    end
  done;
  out

let peek_bytes t ~addr ~len =
  if addr < 0 || len < 0 || addr + len > t.size then
    invalid_arg "Memory.peek_bytes: out of bounds";
  Bytes.sub t.arena addr len
