(* Decode-once, run-many execution pipeline.

   [compile] lowers a loaded {!Program.t} into flat per-function micro-op
   arrays: opcodes are pre-split into int/float variants with their
   masks/shift counts precomputed, every operand is resolved to a slot in
   the frame's register file (immediates are interned into constant slots
   appended after the real registers, so an operand read is always one
   array load — no [Reg|Imm|Glob] match), call targets and block
   successors are integer indices, and list-typed call arguments are
   arrays.  The per-site candidate metadata ({!Meta.t}) and packed
   candidate flags ride alongside each micro-op.

   [run] is an event-driven loop: the fast path pays one flags load and
   at most one integer compare per candidate instruction; the hooked slow
   path (the fault injector) is entered only when the scheduled event
   threshold is crossed, after which execution resumes at full speed.
   Golden runs and post-final-flip execution see thresholds of [max_int]
   and never leave the fast path.

   The decode is behaviour-preserving by construction: every micro-op's
   semantics is the specialisation of the corresponding [Exec.step] case
   with the operand resolution and type dispatch hoisted to decode time.
   The differential suite (test/suite_vm_code.ml) and the CI pipeline
   smoke hold the two backends bit-identical. *)

type events = {
  watch : [ `Read | `Write | `Dyn ];
      (* which stream is monitored for events: a candidate stream, or
         (`Dyn) the raw dynamic-instruction stream — the Mem/Code fault
         domains' time axis, firing via ev_dyn with cand = -1 *)
  mutable ev_cand : int;
      (* fire when the watched candidate ordinal reaches this *)
  mutable ev_dyn : int;
      (* or when, at a watched candidate, dyn reaches this *)
  handle : dyn:int -> cand:int -> Exec.frame -> Meta.t -> unit;
      (* the slow path; must refresh ev_cand/ev_dyn before returning *)
}

type callrec = {
  c_dst : int; (* destination register; -1 = result discarded *)
  c_dst_f : bool; (* callee returns f64 *)
  c_callee : int; (* cfunc index *)
  c_args : int array; (* caller slots, one per callee parameter *)
  c_arg_f : bool array; (* per parameter: float register file *)
}

(* Micro-ops.  All fields are immediate ints (slots, masks, shift counts,
   pc targets) except the builtin closures and the call record, so a
   fetched micro-op costs one tag dispatch and unboxed field reads.
   Naming: [m] = result mask (-1 when the type is full-width), [k] = the
   sign-extension shift (63 - width, 0 when full-width), [w] = width. *)
type uop =
  | Uadd of int * int * int * int (* dst, a, b, m *)
  | Usub of int * int * int * int
  | Umul of int * int * int * int
  | Usdiv of int * int * int * int * int (* dst, a, b, k, m *)
  | Uudiv_s of int * int * int (* dst, a, b; width <= 32 *)
  | Uudiv_l of int * int * int * int (* dst, a, b, m; 64-bit path *)
  | Usrem of int * int * int * int * int (* dst, a, b, k, m *)
  | Uurem_s of int * int * int
  | Uurem_l of int * int * int * int
  | Uand of int * int * int
  | Uor of int * int * int
  | Uxor of int * int * int
  | Ushl of int * int * int * int * int (* dst, a, b, w, m *)
  | Ulshr of int * int * int * int (* dst, a, b, w *)
  | Uashr of int * int * int * int * int * int (* dst, a, b, w, k, m *)
  | Uicmp of int * int * int * int * int (* op, k, dst, a, b *)
  | Ufadd of int * int * int (* dst, a, b over flts *)
  | Ufsub of int * int * int
  | Ufmul of int * int * int
  | Ufdiv of int * int * int
  | Ufcmp of int * int * int * int (* op, dst, a, b *)
  | Usel_i of int * int * int * int (* dst, cond, a, b *)
  | Usel_f of int * int * int * int
  | Umask of int * int * int (* dst, a, m: trunc/ptrtoint/inttoptr *)
  | Usext of int * int * int * int (* dst, a, k(from), m(to) *)
  | Ufptosi of int * int * int (* dst, a(f), m(to) *)
  | Usitofp of int * int * int (* dst(f), a, k(from) *)
  | Umov_i of int * int (* dst, a; also zext *)
  | Umov_f of int * int
  | Uload_i of int * int * int (* dst, addr, width-bytes *)
  | Uload_f of int * int
  | Ustore_i of int * int * int (* value, addr, width-bytes *)
  | Ustore_f of int * int
  | Ugep of int * int * int * int (* dst, base, index, scale *)
  | Ucall of callrec
  | Ucall_b1 of int * (float -> float) * int (* dst(-1 = none), f, a *)
  | Ucall_b2 of int * (float -> float -> float) * int * int
  | Uout_i of int * int (* slot, size tag 0:u8 1:u16 2:u32 3:u64 *)
  | Uout_f of int
  | Uguard_i of int * int
  | Uguard_f of int * int
  | Uabort (* Abort instruction and Unreachable terminator *)
  | Ujmp of int * int (* pc, bidx *)
  | Ucbr of int * int * int * int * int (* cond, tpc, tbidx, fpc, fbidx *)
  | Uret
  | Uret_i of int
  | Uret_f of int
  (* Generic fallback uops holding a (possibly bit-flipped) source
     instruction, installed by [patch] when the code domain mutates a
     site of a forked copy.  They interpret the IR instruction directly
     against the frame — semantics shared with the seed interpreter via
     the Exec.exec_* helpers, so a flipped instruction means exactly the
     same thing on both backends.  Slow, but a code-domain experiment
     executes at most [max_mbf] of them per dynamic occurrence. *)
  | Uinterp of Ir.Instr.t
  | Uinterp_t of Ir.Instr.terminator

type cfunc = {
  name : string;
  uops : uop array; (* blocks flattened in order; block b at block_off.(b) *)
  flags : int array;
      (* per-uop: bit0 read-candidate, bit1 write-candidate,
         bits 2.. destination register + 1 (0 = no destination) *)
  metas : Meta.t array; (* per-uop; only touched on the slow path *)
  block_off : int array;
  int_init : int array; (* nslots; constant slots pre-filled *)
  flt_init : float array;
  lw_init : int array; (* nregs of -1 *)
  reg_ty : Ir.Ty.t array; (* the real registers only *)
  site_reads : int array; (* per block: static read-candidate sites *)
  site_writes : int array;
}

type t = {
  funcs : cfunc array;
  main : int;
  mem_template : Memory.t;
  source : Program.t;
}

let program t = t.source

(* ---- decode ---- *)

let mask_of ty =
  let w = Ir.Ty.width ty in
  if w >= 63 then -1 else (1 lsl w) - 1

let sext_shift ty =
  let w = Ir.Ty.width ty in
  if w >= 63 then 0 else 63 - w

let icmp_tag : Ir.Instr.icmp -> int = function
  | Eq -> 0
  | Ne -> 1
  | Slt -> 2
  | Sle -> 3
  | Sgt -> 4
  | Sge -> 5
  | Ult -> 6
  | Ule -> 7
  | Ugt -> 8
  | Uge -> 9

let fcmp_tag : Ir.Instr.fcmp -> int = function
  | Foeq -> 0
  | Fone -> 1
  | Folt -> 2
  | Fole -> 3
  | Fogt -> 4
  | Foge -> 5

let out_tag : Ir.Ty.t -> int = function
  | I1 | I8 -> 0
  | I16 -> 1
  | I32 | Ptr -> 2
  | I64 -> 3
  | F64 -> assert false

let compile_func (p : Program.t) (f : Program.lfunc) : cfunc =
  let nregs = Array.length f.reg_ty in
  let next = ref nregs in
  let iconsts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let fconsts : (int64, int) Hashtbl.t = Hashtbl.create 4 in
  let ivals = ref [] and fvals = ref [] in
  let reg r =
    assert (r >= 0 && r < nregs);
    r
  in
  let islot (op : Ir.Instr.operand) =
    match op with
    | Reg r -> reg r
    | Imm n -> (
        match Hashtbl.find_opt iconsts n with
        | Some s -> s
        | None ->
            let s = !next in
            incr next;
            Hashtbl.add iconsts n s;
            ivals := (s, n) :: !ivals;
            s)
    | FImm _ | Glob _ -> assert false (* canonicalised by Program.load *)
  in
  let fslot (op : Ir.Instr.operand) =
    match op with
    | Reg r -> reg r
    | FImm x -> (
        let bits = Int64.bits_of_float x in
        match Hashtbl.find_opt fconsts bits with
        | Some s -> s
        | None ->
            let s = !next in
            incr next;
            Hashtbl.add fconsts bits s;
            fvals := (s, x) :: !fvals;
            s)
    | Imm _ | Glob _ -> assert false
  in
  let block_off = Array.make (Array.length f.blocks) 0 in
  let total = ref 0 in
  Array.iteri
    (fun b (blk : Program.lblock) ->
      block_off.(b) <- !total;
      total := !total + Array.length blk.instrs + 1)
    f.blocks;
  let decode_instr (ins : Ir.Instr.t) : uop =
    match ins with
    | Binop { op; ty; dst; a; b } -> (
        let dst = reg dst and a = islot a and b = islot b in
        let m = mask_of ty and k = sext_shift ty and w = Ir.Ty.width ty in
        match op with
        | Add -> Uadd (dst, a, b, m)
        | Sub -> Usub (dst, a, b, m)
        | Mul -> Umul (dst, a, b, m)
        | Sdiv -> Usdiv (dst, a, b, k, m)
        | Udiv -> if w <= 32 then Uudiv_s (dst, a, b) else Uudiv_l (dst, a, b, m)
        | Srem -> Usrem (dst, a, b, k, m)
        | Urem -> if w <= 32 then Uurem_s (dst, a, b) else Uurem_l (dst, a, b, m)
        | And -> Uand (dst, a, b)
        | Or -> Uor (dst, a, b)
        | Xor -> Uxor (dst, a, b)
        | Shl -> Ushl (dst, a, b, w, m)
        | Lshr -> Ulshr (dst, a, b, w)
        | Ashr -> Uashr (dst, a, b, w, k, m))
    | Fbinop { op; dst; a; b } -> (
        let dst = reg dst and a = fslot a and b = fslot b in
        match op with
        | Fadd -> Ufadd (dst, a, b)
        | Fsub -> Ufsub (dst, a, b)
        | Fmul -> Ufmul (dst, a, b)
        | Fdiv -> Ufdiv (dst, a, b))
    | Icmp { op; ty; dst; a; b } ->
        Uicmp (icmp_tag op, sext_shift ty, reg dst, islot a, islot b)
    | Fcmp { op; dst; a; b } -> Ufcmp (fcmp_tag op, reg dst, fslot a, fslot b)
    | Select { ty; dst; cond; a; b } ->
        if Ir.Ty.is_float ty then
          Usel_f (reg dst, islot cond, fslot a, fslot b)
        else Usel_i (reg dst, islot cond, islot a, islot b)
    | Cast { op; from_ty; to_ty; dst; a } -> (
        match op with
        | Trunc | Ptrtoint | Inttoptr -> Umask (reg dst, islot a, mask_of to_ty)
        | Zext -> Umov_i (reg dst, islot a)
        | Sext -> Usext (reg dst, islot a, sext_shift from_ty, mask_of to_ty)
        | Fptosi -> Ufptosi (reg dst, fslot a, mask_of to_ty)
        | Sitofp -> Usitofp (reg dst, islot a, sext_shift from_ty))
    | Mov { ty; dst; a } ->
        if Ir.Ty.is_float ty then Umov_f (reg dst, fslot a)
        else Umov_i (reg dst, islot a)
    | Load { ty; dst; addr } ->
        if Ir.Ty.is_float ty then Uload_f (reg dst, islot addr)
        else Uload_i (reg dst, islot addr, Ir.Ty.bytes ty)
    | Store { ty; value; addr } ->
        if Ir.Ty.is_float ty then Ustore_f (fslot value, islot addr)
        else Ustore_i (islot value, islot addr, Ir.Ty.bytes ty)
    | Gep { dst; base; index; scale } ->
        Ugep (reg dst, islot base, islot index, scale)
    | Call { dst; callee; args } -> (
        match Hashtbl.find_opt p.targets callee with
        | None -> assert false (* validated *)
        | Some (B1 fn) ->
            Ucall_b1
              ( (match dst with Some d -> reg d | None -> -1),
                fn,
                fslot (List.hd args) )
        | Some (B2 fn) -> (
            match args with
            | [ a; b ] ->
                Ucall_b2
                  ( (match dst with Some d -> reg d | None -> -1),
                    fn,
                    fslot a,
                    fslot b )
            | _ -> assert false)
        | Some (Fn cidx) ->
            let cf = p.funcs.(cidx) in
            let c_arg_f = Array.map Ir.Ty.is_float cf.params in
            let c_args =
              Array.of_list
                (List.mapi
                   (fun i arg -> if c_arg_f.(i) then fslot arg else islot arg)
                   args)
            in
            let c_dst, c_dst_f =
              match (dst, cf.ret) with
              | Some d, Some rt -> (reg d, Ir.Ty.is_float rt)
              | _ -> (-1, false)
            in
            Ucall { c_dst; c_dst_f; c_callee = cidx; c_args; c_arg_f })
    | Output { ty; value } ->
        if Ir.Ty.is_float ty then Uout_f (fslot value)
        else Uout_i (islot value, out_tag ty)
    | Guard { ty; a; b } ->
        if Ir.Ty.is_float ty then Uguard_f (fslot a, fslot b)
        else Uguard_i (islot a, islot b)
    | Abort -> Uabort
  in
  let decode_term (t : Ir.Instr.terminator) : uop =
    match t with
    | Br l -> Ujmp (block_off.(l), l)
    | Cbr { cond; if_true; if_false } ->
        Ucbr (islot cond, block_off.(if_true), if_true, block_off.(if_false),
              if_false)
    | Ret None -> Uret
    | Ret (Some v) -> (
        match f.ret with
        | Some rt when Ir.Ty.is_float rt -> Uret_f (fslot v)
        | Some _ -> Uret_i (islot v)
        | None -> Uret)
    | Unreachable -> Uabort
  in
  let uops = Array.make !total Uret in
  let metas = Array.make !total Meta.no_operands in
  let flags = Array.make !total 0 in
  let nblocks = Array.length f.blocks in
  let site_reads = Array.make nblocks 0 in
  let site_writes = Array.make nblocks 0 in
  Array.iteri
    (fun b (blk : Program.lblock) ->
      let off = block_off.(b) in
      let n = Array.length blk.instrs in
      for k = 0 to n - 1 do
        uops.(off + k) <- decode_instr blk.instrs.(k)
      done;
      uops.(off + n) <- decode_term blk.term;
      for k = 0 to n do
        let m = blk.metas.(k) in
        metas.(off + k) <- m;
        let rd = if Array.length m.srcs > 0 then 1 else 0 in
        let wr = if m.dst >= 0 then 2 else 0 in
        flags.(off + k) <- rd lor wr lor ((m.dst + 1) lsl 2);
        site_reads.(b) <- site_reads.(b) + rd;
        if wr <> 0 then site_writes.(b) <- site_writes.(b) + 1
      done)
    f.blocks;
  let nslots = !next in
  let int_init = Array.make nslots 0 in
  let flt_init = Array.make nslots 0.0 in
  List.iter (fun (s, v) -> int_init.(s) <- v) !ivals;
  List.iter (fun (s, v) -> flt_init.(s) <- v) !fvals;
  {
    name = f.name;
    uops;
    flags;
    metas;
    block_off;
    int_init;
    flt_init;
    lw_init = Array.make nregs (-1);
    reg_ty = f.reg_ty;
    site_reads;
    site_writes;
  }

(* ---- decode cache ---- *)

(* Plain counters are maintained unconditionally (they are two atomics
   per *decode*, not per instruction) so tests can observe cache
   behaviour without enabling metrics; the Obs counters mirror them when
   collection is on. *)
let decode_count = Atomic.make 0
let hit_count = Atomic.make 0
let m_decodes = Obs.Metrics.counter "onebit_vm_decodes_total"
let m_cache_hits = Obs.Metrics.counter "onebit_vm_decode_cache_hits_total"
let m_cache_entries = Obs.Metrics.gauge "onebit_vm_decode_cache_entries"

let cache : (string, t) Hashtbl.t = Hashtbl.create 16
let cache_lock = Mutex.create ()

let cache_stats () = (Atomic.get decode_count, Atomic.get hit_count)

let compile_uncached (p : Program.t) : t =
  Atomic.incr decode_count;
  if Obs.Metrics.enabled () then Obs.Metrics.incr m_decodes;
  {
    funcs = Array.map (compile_func p) p.funcs;
    main = p.main;
    mem_template = p.mem_template;
    source = p;
  }

let compile ?digest (p : Program.t) : t =
  match digest with
  | None -> compile_uncached p
  | Some dg ->
      Mutex.protect cache_lock (fun () ->
          match Hashtbl.find_opt cache dg with
          | Some c ->
              Atomic.incr hit_count;
              if Obs.Metrics.enabled () then Obs.Metrics.incr m_cache_hits;
              c
          | None ->
              let c = compile_uncached p in
              Hashtbl.replace cache dg c;
              if Obs.Metrics.enabled () then
                Obs.Metrics.set m_cache_entries
                  (float_of_int (Hashtbl.length cache));
              c)

let site_reads t = Array.map (fun cf -> Array.copy cf.site_reads) t.funcs
let site_writes t = Array.map (fun cf -> Array.copy cf.site_writes) t.funcs

(* ---- code-domain mutation ---- *)

(* A private copy whose uop arrays may be patched: the decode-cache
   invalidation analog.  Everything else (flags, metas, inits, source)
   is immutable and shared, so a fork costs one array copy per function.
   The digest-keyed cache only ever holds pristine code — forks are
   created per experiment and dropped. *)
let fork t =
  {
    t with
    funcs = Array.map (fun cf -> { cf with uops = Array.copy cf.uops }) t.funcs;
  }

(* Install a mutated instruction (from Codeflip) at its site.  The site
   keeps its original flags/metas: candidate accounting and last_write
   bookkeeping follow the golden program structure while execution
   follows the flipped instruction, exactly like the seed interpreter
   running the mutated image (whose metas are also untouched). *)
let patch t ~fidx ~bidx ~idx p =
  let cf = t.funcs.(fidx) in
  let off = cf.block_off.(bidx) + idx in
  cf.uops.(off) <-
    (match p with `Instr ins -> Uinterp ins | `Term tm -> Uinterp_t tm)

(* ---- execution ---- *)

exception Hang_exn

type rstate = {
  mutable dyn : int;
  mutable rc : int;
  mutable wc : int;
  mutable ret_i : int;
  mutable ret_f : float;
}

(* Shared placeholder for eventless runs; its thresholds are never read
   because the watch flags are false, and it is never mutated. *)
let no_events =
  {
    watch = `Read;
    ev_cand = max_int;
    ev_dyn = max_int;
    handle = (fun ~dyn:_ ~cand:_ _ _ -> ());
  }

let to_u64 v = Int64.logand (Int64.of_int v) 0x7FFFFFFFFFFFFFFFL

(* Operand reads for the generic [Uinterp] path.  Register slots 0..nregs-1
   of a compiled frame hold exactly the seed interpreter's register values
   (the backends' core bit-identity invariant), so reading a flipped
   register index out of them matches the seed run on the mutated image. *)
let igeti (frame : Exec.frame) (op : Ir.Instr.operand) =
  match op with
  | Ir.Instr.Reg r -> frame.Exec.ints.(r)
  | Imm n -> n
  | FImm _ | Glob _ -> assert false (* canonicalised; flips preserve kind *)

let igetf (frame : Exec.frame) (op : Ir.Instr.operand) =
  match op with
  | Ir.Instr.Reg r -> frame.Exec.flts.(r)
  | FImm x -> x
  | Imm _ | Glob _ -> assert false

(* The one interpreter loop behind [run] and [resume].

   Recording ([record]): a golden run additionally maintains a shadow
   call stack and, at the top of the loop whenever a candidate-ordinal
   counter crosses the recorder's threshold, captures a {!Checkpoint.point}
   — before the instruction's dyn increment and candidate blocks, so the
   point is valid for both the read and the write ordinal axis.

   Resuming ([resume]): counters, output and memory pages are restored
   from the point, then the captured call stack is re-entered outermost
   first: each outer frame's in-progress [Ucall] is completed exactly as
   the original iteration would have (return-value assignment, then the
   call's write-candidate post-block using the call's own dynamic index)
   before that frame continues at the following pc.  [st.ret_i]/[st.ret_f]
   are dead at the top of the loop, so zero-initialising them is exact. *)
let run_internal ?events ?block_hook ?record ?mem ?resume ?orig ~budget
    (code : t) =
  let mem =
    match mem with
    | Some m -> m
    | None ->
        if Option.is_some record then Memory.with_undo code.mem_template
        else Memory.clone code.mem_template
  in
  let out = Buffer.create 256 in
  let st = { dyn = 0; rc = 0; wc = 0; ret_i = 0; ret_f = 0.0 } in
  (match resume with
  | Some (p : Checkpoint.point) ->
      Buffer.add_string out p.ck_out;
      st.dyn <- p.ck_dyn;
      st.rc <- p.ck_rc;
      st.wc <- p.ck_wc
  | None -> ());
  let watch_read, watch_write, watch_dyn, ev =
    match events with
    | Some e -> (e.watch = `Read, e.watch = `Write, e.watch = `Dyn, e)
    | None -> (false, false, false, no_events)
  in
  let has_bh = Option.is_some block_hook in
  let bh =
    match block_hook with Some h -> h | None -> fun ~fidx:_ ~bidx:_ -> ()
  in
  let rec_on = Option.is_some record in
  let recd =
    match record with Some r -> r | None -> Checkpoint.null_recorder
  in
  (* Shadow call stack, innermost first: (fidx, frame, call pc, call dyn)
     of every in-progress Ucall.  Maintained only when recording. *)
  let rstack : (int * Exec.frame * int * int) list ref = ref [] in
  let funcs = code.funcs in
  let capture fidx (frame : Exec.frame) i =
    let snap_of (fidx, (fr : Exec.frame), pc, calld) =
      {
        Checkpoint.fs_fidx = fidx;
        fs_pc = pc;
        fs_call_dyn = calld;
        fs_ints = Array.copy fr.Exec.ints;
        fs_flts = Array.copy fr.Exec.flts;
        fs_lw = Array.copy fr.Exec.last_write;
      }
    in
    let stack =
      Array.of_list (List.rev_map snap_of ((fidx, frame, i, 0) :: !rstack))
    in
    Checkpoint.add recd
      {
        Checkpoint.ck_dyn = st.dyn;
        ck_rc = st.rc;
        ck_wc = st.wc;
        ck_out = Buffer.contents out;
        ck_stack = stack;
        ck_pages = Memory.snapshot_pages mem;
      }
  in
  let rec exec_fn fidx (frame : Exec.frame) depth ~start ~hook0 =
    let cf = Array.unsafe_get funcs fidx in
    let uops = cf.uops and flags = cf.flags and metas = cf.metas in
    let ints = frame.Exec.ints
    and flts = frame.Exec.flts
    and lw = frame.Exec.last_write in
    if has_bh && hook0 then bh ~fidx ~bidx:0;
    let pc = ref start in
    let running = ref true in
    while !running do
      let i = !pc in
      if rec_on && (st.rc >= recd.Checkpoint.next_rc
                    || st.wc >= recd.Checkpoint.next_wc)
      then capture fidx frame i;
      let d = st.dyn in
      st.dyn <- d + 1;
      if d >= budget then raise Hang_exn;
      if watch_dyn && d >= ev.ev_dyn then
        ev.handle ~dyn:d ~cand:(-1) frame (Array.unsafe_get metas i);
      let fl = Array.unsafe_get flags i in
      if fl land 1 <> 0 then begin
        let c = st.rc in
        st.rc <- c + 1;
        if watch_read && (c >= ev.ev_cand || d >= ev.ev_dyn) then
          ev.handle ~dyn:d ~cand:c frame (Array.unsafe_get metas i)
      end;
      (match Array.unsafe_get uops i with
      | Uadd (dst, a, b, m) ->
          Array.unsafe_set ints dst
            ((Array.unsafe_get ints a + Array.unsafe_get ints b) land m);
          pc := i + 1
      | Usub (dst, a, b, m) ->
          Array.unsafe_set ints dst
            ((Array.unsafe_get ints a - Array.unsafe_get ints b) land m);
          pc := i + 1
      | Umul (dst, a, b, m) ->
          Array.unsafe_set ints dst
            ((Array.unsafe_get ints a * Array.unsafe_get ints b) land m);
          pc := i + 1
      | Usdiv (dst, a, b, k, m) ->
          let y = Array.unsafe_get ints b in
          if y = 0 then raise (Trap.Trap Div_by_zero);
          let x = Array.unsafe_get ints a in
          Array.unsafe_set ints dst
            ((((x lsl k) asr k) / ((y lsl k) asr k)) land m);
          pc := i + 1
      | Uudiv_s (dst, a, b) ->
          let y = Array.unsafe_get ints b in
          if y = 0 then raise (Trap.Trap Div_by_zero);
          Array.unsafe_set ints dst (Array.unsafe_get ints a / y);
          pc := i + 1
      | Uudiv_l (dst, a, b, m) ->
          let y = Array.unsafe_get ints b in
          if y = 0 then raise (Trap.Trap Div_by_zero);
          let x = Array.unsafe_get ints a in
          Array.unsafe_set ints dst
            (Int64.to_int (Int64.div (to_u64 x) (to_u64 y)) land m);
          pc := i + 1
      | Usrem (dst, a, b, k, m) ->
          let y = Array.unsafe_get ints b in
          if y = 0 then raise (Trap.Trap Div_by_zero);
          let x = Array.unsafe_get ints a in
          Array.unsafe_set ints dst
            (Stdlib.( mod ) ((x lsl k) asr k) ((y lsl k) asr k) land m);
          pc := i + 1
      | Uurem_s (dst, a, b) ->
          let y = Array.unsafe_get ints b in
          if y = 0 then raise (Trap.Trap Div_by_zero);
          Array.unsafe_set ints dst (Stdlib.( mod ) (Array.unsafe_get ints a) y);
          pc := i + 1
      | Uurem_l (dst, a, b, m) ->
          let y = Array.unsafe_get ints b in
          if y = 0 then raise (Trap.Trap Div_by_zero);
          let x = Array.unsafe_get ints a in
          Array.unsafe_set ints dst
            (Int64.to_int (Int64.rem (to_u64 x) (to_u64 y)) land m);
          pc := i + 1
      | Uand (dst, a, b) ->
          Array.unsafe_set ints dst
            (Array.unsafe_get ints a land Array.unsafe_get ints b);
          pc := i + 1
      | Uor (dst, a, b) ->
          Array.unsafe_set ints dst
            (Array.unsafe_get ints a lor Array.unsafe_get ints b);
          pc := i + 1
      | Uxor (dst, a, b) ->
          Array.unsafe_set ints dst
            (Array.unsafe_get ints a lxor Array.unsafe_get ints b);
          pc := i + 1
      | Ushl (dst, a, b, w, m) ->
          let y = Array.unsafe_get ints b in
          Array.unsafe_set ints dst
            (if y < 0 || y >= w then 0
             else (Array.unsafe_get ints a lsl y) land m);
          pc := i + 1
      | Ulshr (dst, a, b, w) ->
          let y = Array.unsafe_get ints b in
          Array.unsafe_set ints dst
            (if y < 0 || y >= w then 0 else Array.unsafe_get ints a lsr y);
          pc := i + 1
      | Uashr (dst, a, b, w, k, m) ->
          let y = Array.unsafe_get ints b in
          let s = if y < 0 || y >= w then w - 1 else y in
          Array.unsafe_set ints dst
            ((((Array.unsafe_get ints a lsl k) asr k) asr s) land m);
          pc := i + 1
      | Uicmp (op, k, dst, a, b) ->
          let x = Array.unsafe_get ints a and y = Array.unsafe_get ints b in
          let r =
            match op with
            | 0 -> x = y
            | 1 -> x <> y
            | 2 -> (x lsl k) asr k < (y lsl k) asr k
            | 3 -> (x lsl k) asr k <= (y lsl k) asr k
            | 4 -> (x lsl k) asr k > (y lsl k) asr k
            | 5 -> (x lsl k) asr k >= (y lsl k) asr k
            | 6 -> x lxor min_int < y lxor min_int
            | 7 -> x lxor min_int <= y lxor min_int
            | 8 -> x lxor min_int > y lxor min_int
            | _ -> x lxor min_int >= y lxor min_int
          in
          Array.unsafe_set ints dst (if r then 1 else 0);
          pc := i + 1
      | Ufadd (dst, a, b) ->
          Array.unsafe_set flts dst
            (Array.unsafe_get flts a +. Array.unsafe_get flts b);
          pc := i + 1
      | Ufsub (dst, a, b) ->
          Array.unsafe_set flts dst
            (Array.unsafe_get flts a -. Array.unsafe_get flts b);
          pc := i + 1
      | Ufmul (dst, a, b) ->
          Array.unsafe_set flts dst
            (Array.unsafe_get flts a *. Array.unsafe_get flts b);
          pc := i + 1
      | Ufdiv (dst, a, b) ->
          Array.unsafe_set flts dst
            (Array.unsafe_get flts a /. Array.unsafe_get flts b);
          pc := i + 1
      | Ufcmp (op, dst, a, b) ->
          let x = Array.unsafe_get flts a and y = Array.unsafe_get flts b in
          let ordered = (not (Float.is_nan x)) && not (Float.is_nan y) in
          let r =
            match op with
            | 0 -> ordered && x = y
            | 1 -> ordered && x <> y
            | 2 -> x < y
            | 3 -> x <= y
            | 4 -> x > y
            | _ -> x >= y
          in
          Array.unsafe_set ints dst (if r then 1 else 0);
          pc := i + 1
      | Usel_i (dst, c, a, b) ->
          Array.unsafe_set ints dst
            (if Array.unsafe_get ints c <> 0 then Array.unsafe_get ints a
             else Array.unsafe_get ints b);
          pc := i + 1
      | Usel_f (dst, c, a, b) ->
          Array.unsafe_set flts dst
            (if Array.unsafe_get ints c <> 0 then Array.unsafe_get flts a
             else Array.unsafe_get flts b);
          pc := i + 1
      | Umask (dst, a, m) ->
          Array.unsafe_set ints dst (Array.unsafe_get ints a land m);
          pc := i + 1
      | Usext (dst, a, k, m) ->
          Array.unsafe_set ints dst
            (((Array.unsafe_get ints a lsl k) asr k) land m);
          pc := i + 1
      | Ufptosi (dst, a, m) ->
          let x = Array.unsafe_get flts a in
          Array.unsafe_set ints dst
            (if Float.is_nan x || Float.abs x >= 4.611686018427387904e18 then 0
             else int_of_float x land m);
          pc := i + 1
      | Usitofp (dst, a, k) ->
          Array.unsafe_set flts dst
            (float_of_int ((Array.unsafe_get ints a lsl k) asr k));
          pc := i + 1
      | Umov_i (dst, a) ->
          Array.unsafe_set ints dst (Array.unsafe_get ints a);
          pc := i + 1
      | Umov_f (dst, a) ->
          Array.unsafe_set flts dst (Array.unsafe_get flts a);
          pc := i + 1
      | Uload_i (dst, addr, w) ->
          Array.unsafe_set ints dst
            (Memory.read_int mem ~width:w ~addr:(Array.unsafe_get ints addr));
          pc := i + 1
      | Uload_f (dst, addr) ->
          Array.unsafe_set flts dst
            (Memory.read_f64 mem ~addr:(Array.unsafe_get ints addr));
          pc := i + 1
      | Ustore_i (v, addr, w) ->
          Memory.write_int mem ~width:w
            ~addr:(Array.unsafe_get ints addr)
            (Array.unsafe_get ints v);
          pc := i + 1
      | Ustore_f (v, addr) ->
          Memory.write_f64 mem
            ~addr:(Array.unsafe_get ints addr)
            (Array.unsafe_get flts v);
          pc := i + 1
      | Ugep (dst, base, index, scale) ->
          let idx =
            ((Array.unsafe_get ints index land 0xFFFFFFFF) lsl 31) asr 31
          in
          Array.unsafe_set ints dst
            ((Array.unsafe_get ints base + (idx * scale)) land 0xFFFFFFFF);
          pc := i + 1
      | Ucall cr ->
          if depth >= Exec.max_call_depth then
            raise (Trap.Trap Stack_overflow);
          let cf2 = Array.unsafe_get funcs cr.c_callee in
          let cframe =
            {
              Exec.ints = Array.copy cf2.int_init;
              flts = Array.copy cf2.flt_init;
              reg_ty = cf2.reg_ty;
              last_write = Array.copy cf2.lw_init;
            }
          in
          let n = Array.length cr.c_args in
          for j = 0 to n - 1 do
            if cr.c_arg_f.(j) then
              cframe.Exec.flts.(j) <- Array.unsafe_get flts cr.c_args.(j)
            else cframe.Exec.ints.(j) <- Array.unsafe_get ints cr.c_args.(j)
          done;
          if rec_on then rstack := (fidx, frame, i, d) :: !rstack;
          exec_fn cr.c_callee cframe (depth + 1) ~start:0 ~hook0:true;
          if rec_on then rstack := List.tl !rstack;
          if cr.c_dst >= 0 then
            if cr.c_dst_f then Array.unsafe_set flts cr.c_dst st.ret_f
            else Array.unsafe_set ints cr.c_dst st.ret_i;
          pc := i + 1
      | Ucall_b1 (dst, fn, a) ->
          let r = fn (Array.unsafe_get flts a) in
          if dst >= 0 then Array.unsafe_set flts dst r;
          pc := i + 1
      | Ucall_b2 (dst, fn, a, b) ->
          let r = fn (Array.unsafe_get flts a) (Array.unsafe_get flts b) in
          if dst >= 0 then Array.unsafe_set flts dst r;
          pc := i + 1
      | Uout_i (s, tag) ->
          let v = Array.unsafe_get ints s in
          (match tag with
          | 0 -> Buffer.add_uint8 out (v land 0xFF)
          | 1 -> Buffer.add_uint16_le out v
          | 2 -> Buffer.add_int32_le out (Int32.of_int v)
          | _ -> Buffer.add_int64_le out (to_u64 v));
          pc := i + 1
      | Uout_f s ->
          Buffer.add_int64_le out (Int64.bits_of_float (Array.unsafe_get flts s));
          pc := i + 1
      | Uguard_i (a, b) ->
          if Array.unsafe_get ints a <> Array.unsafe_get ints b then
            raise (Trap.Trap Guard_violation);
          pc := i + 1
      | Uguard_f (a, b) ->
          if
            not
              (Int64.equal
                 (Int64.bits_of_float (Array.unsafe_get flts a))
                 (Int64.bits_of_float (Array.unsafe_get flts b)))
          then raise (Trap.Trap Guard_violation);
          pc := i + 1
      | Uabort -> raise (Trap.Trap Abort_called)
      | Ujmp (p, bidx) ->
          pc := p;
          if has_bh then bh ~fidx ~bidx
      | Ucbr (c, tpc, tb, fpc, fb) ->
          if Array.unsafe_get ints c <> 0 then begin
            pc := tpc;
            if has_bh then bh ~fidx ~bidx:tb
          end
          else begin
            pc := fpc;
            if has_bh then bh ~fidx ~bidx:fb
          end
      | Uret -> running := false
      | Uret_i s ->
          st.ret_i <- Array.unsafe_get ints s;
          running := false
      | Uret_f s ->
          st.ret_f <- Array.unsafe_get flts s;
          running := false
      | Uinterp ins ->
          interp_step frame depth ins;
          pc := i + 1
      | Uinterp_t tm -> (
          match tm with
          | Br l ->
              pc := cf.block_off.(l);
              if has_bh then bh ~fidx ~bidx:l
          | Cbr { cond; if_true; if_false } ->
              let l = if igeti frame cond <> 0 then if_true else if_false in
              pc := cf.block_off.(l);
              if has_bh then bh ~fidx ~bidx:l
          | Ret None -> running := false
          | Ret (Some v) ->
              (match code.source.Program.funcs.(fidx).Program.ret with
              | Some rt when Ir.Ty.is_float rt -> st.ret_f <- igetf frame v
              | Some _ -> st.ret_i <- igeti frame v
              | None -> ());
              running := false
          | Unreachable -> raise (Trap.Trap Abort_called)));
      if fl land 2 <> 0 then begin
        let c = st.wc in
        st.wc <- c + 1;
        Array.unsafe_set lw ((fl lsr 2) - 1) d;
        if watch_write && (c >= ev.ev_cand || d >= ev.ev_dyn) then
          ev.handle ~dyn:d ~cand:c frame (Array.unsafe_get metas i)
      end
    done
  (* One mutated instruction, interpreted generically — the mirror of the
     seed interpreter's [step] over the same (flipped) [Ir.Instr.t], with
     calls re-entering compiled code. *)
  and interp_step (frame : Exec.frame) depth (ins : Ir.Instr.t) =
    let ints = frame.Exec.ints and flts = frame.Exec.flts in
    match ins with
    | Binop { op; ty; dst; a; b } ->
        ints.(dst) <- Exec.exec_binop op ty (igeti frame a) (igeti frame b)
    | Fbinop { op; dst; a; b } ->
        flts.(dst) <- Exec.exec_fbinop op (igetf frame a) (igetf frame b)
    | Icmp { op; ty; dst; a; b } ->
        ints.(dst) <- Exec.exec_icmp op ty (igeti frame a) (igeti frame b)
    | Fcmp { op; dst; a; b } ->
        ints.(dst) <- Exec.exec_fcmp op (igetf frame a) (igetf frame b)
    | Select { ty; dst; cond; a; b } ->
        if Ir.Ty.is_float ty then
          flts.(dst) <-
            (if igeti frame cond <> 0 then igetf frame a else igetf frame b)
        else
          ints.(dst) <-
            (if igeti frame cond <> 0 then igeti frame a else igeti frame b)
    | Cast { op; from_ty; to_ty; dst; a } -> (
        match op with
        | Trunc | Ptrtoint | Inttoptr ->
            ints.(dst) <- Ir.Bits.mask to_ty (igeti frame a)
        | Zext -> ints.(dst) <- igeti frame a
        | Sext ->
            ints.(dst) <-
              Ir.Bits.mask to_ty (Ir.Bits.sext from_ty (igeti frame a))
        | Fptosi -> ints.(dst) <- Exec.float_to_int to_ty (igetf frame a)
        | Sitofp ->
            flts.(dst) <- float_of_int (Ir.Bits.sext from_ty (igeti frame a)))
    | Mov { ty; dst; a } ->
        if Ir.Ty.is_float ty then flts.(dst) <- igetf frame a
        else ints.(dst) <- igeti frame a
    | Load { ty; dst; addr } ->
        let a = igeti frame addr in
        if Ir.Ty.is_float ty then flts.(dst) <- Memory.read_f64 mem ~addr:a
        else ints.(dst) <- Memory.read_int mem ~width:(Ir.Ty.bytes ty) ~addr:a
    | Store { ty; value; addr } ->
        let a = igeti frame addr in
        if Ir.Ty.is_float ty then
          Memory.write_f64 mem ~addr:a (igetf frame value)
        else
          Memory.write_int mem ~width:(Ir.Ty.bytes ty) ~addr:a
            (igeti frame value)
    | Gep { dst; base; index; scale } ->
        let idx = Ir.Bits.sext I32 (Ir.Bits.mask I32 (igeti frame index)) in
        ints.(dst) <- Ir.Bits.mask Ptr (igeti frame base + (idx * scale))
    | Call { dst; callee; args } -> (
        match Hashtbl.find_opt code.source.Program.targets callee with
        | None -> assert false (* validated; flips never touch names *)
        | Some (Program.B1 f) ->
            let r = f (igetf frame (List.hd args)) in
            (match dst with Some d -> flts.(d) <- r | None -> ())
        | Some (Program.B2 f) -> (
            match args with
            | [ a; b ] ->
                let r = f (igetf frame a) (igetf frame b) in
                (match dst with Some d -> flts.(d) <- r | None -> ())
            | _ -> assert false)
        | Some (Program.Fn cidx) ->
            if depth >= Exec.max_call_depth then
              raise (Trap.Trap Stack_overflow);
            let cf2 = funcs.(cidx) in
            let cframe =
              {
                Exec.ints = Array.copy cf2.int_init;
                flts = Array.copy cf2.flt_init;
                reg_ty = cf2.reg_ty;
                last_write = Array.copy cf2.lw_init;
              }
            in
            let src = code.source.Program.funcs.(cidx) in
            List.iteri
              (fun j arg ->
                if Ir.Ty.is_float src.Program.params.(j) then
                  cframe.Exec.flts.(j) <- igetf frame arg
                else cframe.Exec.ints.(j) <- igeti frame arg)
              args;
            exec_fn cidx cframe (depth + 1) ~start:0 ~hook0:true;
            (match (dst, src.Program.ret) with
            | Some d, Some rt ->
                if Ir.Ty.is_float rt then flts.(d) <- st.ret_f
                else ints.(d) <- st.ret_i
            | _ -> ()))
    | Output { ty; value } ->
        if Ir.Ty.is_float ty then
          Exec.add_output out ty 0 (igetf frame value)
        else Exec.add_output out ty (igeti frame value) 0.0
    | Guard { ty; a; b } ->
        let equal =
          if Ir.Ty.is_float ty then
            Int64.equal
              (Int64.bits_of_float (igetf frame a))
              (Int64.bits_of_float (igetf frame b))
          else igeti frame a = igeti frame b
        in
        if not equal then raise (Trap.Trap Guard_violation)
    | Abort -> raise (Trap.Trap Abort_called)
  in
  (* Complete an outer frame's in-progress call exactly as the original
     Ucall iteration would have after its callee returned: assign the
     return value, then run the call's write-candidate post-block with
     the call's own dynamic index [calld].  The iteration's budget check
     and read-candidate pre-block already happened in the prefix.  The
     call record is read from the PRISTINE code ([orig], when given):
     checkpoints capture pre-flip prefixes, and non-checkpoint execution
     on both backends destructures the call record at dispatch, so an
     in-flight call completes with its original destination even if a
     stored-program flip later patches that slot. *)
  let orig_funcs =
    match orig with Some (o : t) -> o.funcs | None -> funcs
  in
  let complete_call fidx (frame : Exec.frame) i calld =
    let cf = funcs.(fidx) in
    (match orig_funcs.(fidx).uops.(i) with
    | Ucall cr ->
        if cr.c_dst >= 0 then
          if cr.c_dst_f then frame.Exec.flts.(cr.c_dst) <- st.ret_f
          else frame.Exec.ints.(cr.c_dst) <- st.ret_i
    | _ -> assert false);
    let fl = cf.flags.(i) in
    if fl land 2 <> 0 then begin
      let c = st.wc in
      st.wc <- c + 1;
      frame.Exec.last_write.((fl lsr 2) - 1) <- calld;
      if watch_write && (c >= ev.ev_cand || calld >= ev.ev_dyn) then
        ev.handle ~dyn:calld ~cand:c frame cf.metas.(i)
    end
  in
  let rebuild (s : Checkpoint.frame_snap) =
    {
      Exec.ints = Array.copy s.fs_ints;
      flts = Array.copy s.fs_flts;
      reg_ty = funcs.(s.fs_fidx).reg_ty;
      last_write = Array.copy s.fs_lw;
    }
  in
  (* Re-enter the captured stack: the innermost frame runs to completion
     first, then each outer frame completes its call and continues. *)
  let rec resume_stack snaps depth =
    match snaps with
    | [] -> assert false
    | [ (inner : Checkpoint.frame_snap) ] ->
        exec_fn inner.fs_fidx (rebuild inner) depth ~start:inner.fs_pc
          ~hook0:false
    | (outer : Checkpoint.frame_snap) :: rest ->
        let frame = rebuild outer in
        resume_stack rest (depth + 1);
        complete_call outer.fs_fidx frame outer.fs_pc outer.fs_call_dyn;
        exec_fn outer.fs_fidx frame depth ~start:(outer.fs_pc + 1)
          ~hook0:false
  in
  let status =
    try
      (match resume with
      | Some p -> resume_stack (Array.to_list p.Checkpoint.ck_stack) 0
      | None ->
          let mainf = funcs.(code.main) in
          let frame =
            {
              Exec.ints = Array.copy mainf.int_init;
              flts = Array.copy mainf.flt_init;
              reg_ty = mainf.reg_ty;
              last_write = Array.copy mainf.lw_init;
            }
          in
          exec_fn code.main frame 0 ~start:0 ~hook0:true);
      Exec.Finished
    with
    | Trap.Trap t -> Exec.Trapped t
    | Hang_exn -> Exec.Hung
  in
  let result =
    {
      Exec.status;
      output = Buffer.contents out;
      dyn_count = st.dyn;
      read_cands = st.rc;
      write_cands = st.wc;
    }
  in
  Exec.record_run result;
  result

let run ?events ?block_hook ?record ?mem ~budget code =
  run_internal ?events ?block_hook ?record ?mem ~budget code

let resume ~events ~mem ~(point : Checkpoint.point) ?orig ~budget code =
  Checkpoint.note_restore point;
  Memory.restore_pages mem point.ck_pages;
  run_internal ~events ~mem ~resume:point ?orig ~budget code

let resume_prepared ~events ~mem ~(point : Checkpoint.point) ?orig ~budget code
    =
  Checkpoint.note_restore point;
  run_internal ~events ~mem ~resume:point ?orig ~budget code
