type status = Finished | Trapped of Trap.t | Hung

type result = {
  status : status;
  output : string;
  dyn_count : int;
  read_cands : int;
  write_cands : int;
}

type frame = {
  ints : int array;
  flts : float array;
  reg_ty : Ir.Ty.t array;
  last_write : int array;
      (* dyn index of each register's most recent write; -1 = never *)
}

type hooks = {
  pre : dyn:int -> frame -> Meta.t -> unit;
  post : dyn:int -> frame -> Meta.t -> unit;
  at : dyn:int -> frame -> Meta.t -> unit;
}

let no_hook ~dyn:_ _ _ = ()

exception Hang_exn

(* Observability: whole-run accounting only — the interpreter loop is
   untouched, so recording cannot perturb execution and costs nothing
   per instruction.  The counters are registered once at module init;
   recording self-gates on [Obs.Metrics.enabled]. *)
let m_runs = Obs.Metrics.counter "onebit_vm_runs_total"
let m_instructions = Obs.Metrics.counter "onebit_vm_instructions_total"
let m_hangs = Obs.Metrics.counter "onebit_vm_hangs_total"

(* Dense [Trap.index]-ed counter array, built once at module init, so
   recording a trap is an array load rather than an assoc-list walk. *)
let m_traps =
  let arr =
    Array.of_list
      (List.map
         (fun t ->
           Obs.Metrics.counter
             ~labels:[ ("kind", Trap.to_string t) ]
             "onebit_vm_traps_total")
         Trap.all)
  in
  List.iteri (fun i t -> assert (Trap.index t = i)) Trap.all;
  arr

(* Shared end-of-run probe for both backends.  [dyn_count] is the run's
   logical length: a checkpoint-resumed run (Code.resume) reports the
   counter it restored plus the suffix it executed, so the instruction
   counter measures campaign work in full-execution-equivalent units
   (the skipped distance is observable separately in the
   onebit_vm_checkpoint_restore_distance histogram). *)
let record_run result =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_runs;
    Obs.Metrics.add m_instructions result.dyn_count;
    match result.status with
    | Finished -> ()
    | Hung -> Obs.Metrics.incr m_hangs
    | Trapped t -> Obs.Metrics.incr m_traps.(Trap.index t)
  end

let golden_budget = 100_000_000
let max_call_depth = 1000

(* Unsigned comparison of canonical values (works for every width,
   including the 63-bit I64 whose canonical form uses the native sign
   bit as its top bit). *)
let ucompare x y = compare (x lxor min_int) (y lxor min_int)

let to_u64 v = Int64.logand (Int64.of_int v) 0x7FFFFFFFFFFFFFFFL

let exec_binop (op : Ir.Instr.binop) ty x y =
  let mask = Ir.Bits.mask ty in
  let sext = Ir.Bits.sext ty in
  let w = Ir.Ty.width ty in
  match op with
  | Add -> mask (x + y)
  | Sub -> mask (x - y)
  | Mul -> mask (x * y)
  | Sdiv ->
      if y = 0 then raise (Trap.Trap Div_by_zero)
      else mask (sext x / sext y)
  | Udiv ->
      if y = 0 then raise (Trap.Trap Div_by_zero)
      else if w <= 32 then x / y
      else mask (Int64.to_int (Int64.div (to_u64 x) (to_u64 y)))
  | Srem ->
      if y = 0 then raise (Trap.Trap Div_by_zero)
      else mask (Stdlib.( mod ) (sext x) (sext y))
  | Urem ->
      if y = 0 then raise (Trap.Trap Div_by_zero)
      else if w <= 32 then Stdlib.( mod ) x y
      else mask (Int64.to_int (Int64.rem (to_u64 x) (to_u64 y)))
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Shl -> if y < 0 || y >= w then 0 else mask (x lsl y)
  | Lshr -> if y < 0 || y >= w then 0 else x lsr y
  | Ashr ->
      let s = if y < 0 || y >= w then w - 1 else y in
      mask (sext x asr s)

let exec_fbinop (op : Ir.Instr.fbinop) x y =
  match op with
  | Fadd -> x +. y
  | Fsub -> x -. y
  | Fmul -> x *. y
  | Fdiv -> x /. y

let exec_icmp (op : Ir.Instr.icmp) ty x y =
  let sext = Ir.Bits.sext ty in
  let r =
    match op with
    | Eq -> x = y
    | Ne -> x <> y
    | Slt -> sext x < sext y
    | Sle -> sext x <= sext y
    | Sgt -> sext x > sext y
    | Sge -> sext x >= sext y
    | Ult -> ucompare x y < 0
    | Ule -> ucompare x y <= 0
    | Ugt -> ucompare x y > 0
    | Uge -> ucompare x y >= 0
  in
  if r then 1 else 0

let exec_fcmp (op : Ir.Instr.fcmp) x y =
  let ordered = (not (Float.is_nan x)) && not (Float.is_nan y) in
  let r =
    match op with
    | Foeq -> ordered && x = y
    | Fone -> ordered && x <> y
    | Folt -> x < y
    | Fole -> x <= y
    | Fogt -> x > y
    | Foge -> x >= y
  in
  if r then 1 else 0

let float_to_int ty x =
  if Float.is_nan x || Float.abs x >= 4.611686018427387904e18 then 0
  else Ir.Bits.mask ty (int_of_float x)

let add_output buf ty (iv : int) (fv : float) =
  let open Buffer in
  match (ty : Ir.Ty.t) with
  | I1 | I8 -> add_uint8 buf (iv land 0xFF)
  | I16 -> add_uint16_le buf iv
  | I32 | Ptr -> add_int32_le buf (Int32.of_int iv)
  | I64 -> add_int64_le buf (to_u64 iv)
  | F64 -> add_int64_le buf (Int64.bits_of_float fv)

let run ?hooks ?block_hook ?mem ~budget (prog : Program.t) =
  let mem =
    match mem with Some m -> m | None -> Memory.clone prog.mem_template
  in
  let out = Buffer.create 256 in
  let dyn = ref 0 in
  let read_cands = ref 0 in
  let write_cands = ref 0 in
  let ret_i = ref 0 in
  let ret_f = ref 0.0 in
  let rec exec_fn fidx (frame : frame) depth =
    let f = prog.funcs.(fidx) in
    let geti (op : Ir.Instr.operand) =
      match op with
      | Reg r -> frame.ints.(r)
      | Imm n -> n
      | FImm _ | Glob _ -> assert false
    in
    let getf (op : Ir.Instr.operand) =
      match op with
      | Reg r -> frame.flts.(r)
      | FImm x -> x
      | Imm _ | Glob _ -> assert false
    in
    let step (ins : Ir.Instr.t) =
      match ins with
      | Binop { op; ty; dst; a; b } ->
          frame.ints.(dst) <- exec_binop op ty (geti a) (geti b)
      | Fbinop { op; dst; a; b } ->
          frame.flts.(dst) <- exec_fbinop op (getf a) (getf b)
      | Icmp { op; ty; dst; a; b } ->
          frame.ints.(dst) <- exec_icmp op ty (geti a) (geti b)
      | Fcmp { op; dst; a; b } ->
          frame.ints.(dst) <- exec_fcmp op (getf a) (getf b)
      | Select { ty; dst; cond; a; b } ->
          if Ir.Ty.is_float ty then
            frame.flts.(dst) <- (if geti cond <> 0 then getf a else getf b)
          else frame.ints.(dst) <- (if geti cond <> 0 then geti a else geti b)
      | Cast { op; from_ty; to_ty; dst; a } -> (
          match op with
          | Trunc | Ptrtoint | Inttoptr ->
              frame.ints.(dst) <- Ir.Bits.mask to_ty (geti a)
          | Zext -> frame.ints.(dst) <- geti a
          | Sext ->
              frame.ints.(dst) <- Ir.Bits.mask to_ty (Ir.Bits.sext from_ty (geti a))
          | Fptosi -> frame.ints.(dst) <- float_to_int to_ty (getf a)
          | Sitofp ->
              frame.flts.(dst) <- float_of_int (Ir.Bits.sext from_ty (geti a)))
      | Mov { ty; dst; a } ->
          if Ir.Ty.is_float ty then frame.flts.(dst) <- getf a
          else frame.ints.(dst) <- geti a
      | Load { ty; dst; addr } ->
          let a = geti addr in
          if Ir.Ty.is_float ty then frame.flts.(dst) <- Memory.read_f64 mem ~addr:a
          else
            frame.ints.(dst) <-
              Memory.read_int mem ~width:(Ir.Ty.bytes ty) ~addr:a
      | Store { ty; value; addr } ->
          let a = geti addr in
          if Ir.Ty.is_float ty then Memory.write_f64 mem ~addr:a (getf value)
          else Memory.write_int mem ~width:(Ir.Ty.bytes ty) ~addr:a (geti value)
      | Gep { dst; base; index; scale } ->
          let idx = Ir.Bits.sext I32 (Ir.Bits.mask I32 (geti index)) in
          frame.ints.(dst) <- Ir.Bits.mask Ptr (geti base + (idx * scale))
      | Call { dst; callee; args } -> (
          match Hashtbl.find_opt prog.targets callee with
          | None -> assert false (* validated *)
          | Some (B1 f) ->
              let x = getf (List.hd args) in
              let r = f x in
              (match dst with Some d -> frame.flts.(d) <- r | None -> ())
          | Some (B2 f) -> (
              match args with
              | [ a; b ] ->
                  let r = f (getf a) (getf b) in
                  (match dst with Some d -> frame.flts.(d) <- r | None -> ())
              | _ -> assert false)
          | Some (Fn callee_idx) ->
              if depth >= max_call_depth then
                raise (Trap.Trap Stack_overflow);
              let cf = prog.funcs.(callee_idx) in
              let nregs = Array.length cf.reg_ty in
              let callee_frame =
                {
                  ints = Array.make nregs 0;
                  flts = Array.make nregs 0.0;
                  reg_ty = cf.reg_ty;
                  last_write = Array.make nregs (-1);
                }
              in
              List.iteri
                (fun i arg ->
                  if Ir.Ty.is_float cf.params.(i) then
                    callee_frame.flts.(i) <- getf arg
                  else callee_frame.ints.(i) <- geti arg)
                args;
              exec_fn callee_idx callee_frame (depth + 1);
              (match (dst, cf.ret) with
              | Some d, Some rt ->
                  if Ir.Ty.is_float rt then frame.flts.(d) <- !ret_f
                  else frame.ints.(d) <- !ret_i
              | _ -> ()))
      | Output { ty; value } ->
          if Ir.Ty.is_float ty then add_output out ty 0 (getf value)
          else add_output out ty (geti value) 0.0
      | Guard { ty; a; b } ->
          let equal =
            if Ir.Ty.is_float ty then
              Int64.equal
                (Int64.bits_of_float (getf a))
                (Int64.bits_of_float (getf b))
            else geti a = geti b
          in
          if not equal then raise (Trap.Trap Guard_violation)
      | Abort -> raise (Trap.Trap Abort_called)
    in
    let rec run_block bidx =
      (match block_hook with Some h -> h ~fidx ~bidx | None -> ());
      let b = f.blocks.(bidx) in
      let n = Array.length b.instrs in
      for k = 0 to n - 1 do
        let m = b.metas.(k) in
        let d = !dyn in
        incr dyn;
        if !dyn > budget then raise Hang_exn;
        (match hooks with Some h -> h.at ~dyn:d frame m | None -> ());
        if Array.length m.srcs > 0 then begin
          incr read_cands;
          match hooks with Some h -> h.pre ~dyn:d frame m | None -> ()
        end;
        step b.instrs.(k);
        if m.dst >= 0 then begin
          incr write_cands;
          frame.last_write.(m.dst) <- d;
          match hooks with Some h -> h.post ~dyn:d frame m | None -> ()
        end
      done;
      let m = b.metas.(n) in
      let d = !dyn in
      incr dyn;
      if !dyn > budget then raise Hang_exn;
      (match hooks with Some h -> h.at ~dyn:d frame m | None -> ());
      if Array.length m.srcs > 0 then begin
        incr read_cands;
        match hooks with Some h -> h.pre ~dyn:d frame m | None -> ()
      end;
      match b.term with
      | Br l -> run_block l
      | Cbr { cond; if_true; if_false } ->
          run_block (if geti cond <> 0 then if_true else if_false)
      | Ret None -> ()
      | Ret (Some v) -> (
          match f.ret with
          | Some rt when Ir.Ty.is_float rt -> ret_f := getf v
          | Some _ -> ret_i := geti v
          | None -> ())
      | Unreachable -> raise (Trap.Trap Abort_called)
    in
    run_block 0
  in
  let main = prog.funcs.(prog.main) in
  let nregs = Array.length main.reg_ty in
  let frame =
    {
      ints = Array.make nregs 0;
      flts = Array.make nregs 0.0;
      reg_ty = main.reg_ty;
      last_write = Array.make nregs (-1);
    }
  in
  let status =
    try
      exec_fn prog.main frame 0;
      Finished
    with
    | Trap.Trap t -> Trapped t
    | Hang_exn -> Hung
  in
  let result =
    {
      status;
      output = Buffer.contents out;
      dyn_count = !dyn;
      read_cands = !read_cands;
      write_cands = !write_cands;
    }
  in
  record_run result;
  result
