(* Per-instruction operand metadata handed to injection hooks, plus the
   static identity of the instruction (function / block / index within the
   block, where index = block length denotes the terminator).  The identity
   is what lets analyses map a dynamic candidate ordinal back to a static
   program point (Dataflow.Prune, Analysis.Prune_static). *)

type t = { srcs : int array; dst : int; fidx : int; bidx : int; idx : int }

let no_operands = { srcs = [||]; dst = -1; fidx = -1; bidx = -1; idx = -1 }

let of_instr ~fidx ~bidx ~idx i =
  {
    srcs = Array.of_list (Ir.Instr.src_regs i);
    dst = (match Ir.Instr.dst_reg i with Some d -> d | None -> -1);
    fidx;
    bidx;
    idx;
  }

let of_term ~fidx ~bidx ~idx t =
  {
    srcs = Array.of_list (Ir.Instr.term_src_regs t);
    dst = -1;
    fidx;
    bidx;
    idx;
  }
