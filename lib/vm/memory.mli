(** Byte-addressable segmented memory.

    The loader lays globals out with guard gaps between them and a 4 KiB
    null page at address 0; any access touching an unmapped byte raises
    {!Trap.Trap}[ Segfault], and accesses not aligned to
    [min (size, 4)] bytes raise [Misaligned] (the paper counts 4-byte
    alignment violations as hardware exceptions).  All multi-byte accesses
    are little-endian. *)

type t

val create_template : size:int -> regions:(int * bytes) list -> t
(** A template with the given initialised, mapped regions.  Regions must be
    disjoint and in-bounds.  Templates are never executed against directly;
    every run gets a [clone]. *)

val clone : t -> t
(** Copy the arena (cheap, a single [Bytes.copy]); the mapped-byte table is
    immutable and shared.  The clone does not track dirty pages. *)

val with_undo : t -> t
(** An executable copy of a {e template} that additionally records which
    256-byte pages are written, keeping a shared reference to the
    template's pristine arena.  {!reset} rewinds exactly the dirty pages
    — O(dirty) instead of [clone]'s O(arena) — which is what lets one
    long-lived per-domain memory be reused across experiments. *)

val page_size : int
(** Dirty-tracking granularity in bytes (256). *)

val tracks_undo : t -> bool

val dirty_pages : t -> int
(** Number of pages written since the last {!reset} (0 for plain
    clones). *)

val reset : t -> unit
(** Rewind every dirty page to the template image and clear the dirty
    set.  Exact regardless of how the previous run ended (normal end,
    trap mid-run, hang): never-written pages already equal the template.
    If a baseline overlay is installed, its pages are rewound to the
    template too and the overlay is dropped.  Raises [Invalid_argument]
    on a memory without undo tracking. *)

val snapshot_pages : t -> (int * bytes) array
(** Copies of the currently dirty pages, sorted by page index.  Together
    with the template this is a complete mid-run memory image: restoring
    it onto a [reset] memory reproduces the arena byte-for-byte. *)

val restore_pages : t -> (int * bytes) array -> unit
(** [reset] followed by blitting the snapshot pages back in (re-marking
    them dirty, so a later [reset] rewinds them too).  Counted as a
    {e full} restore in {!restore_stats}. *)

val set_baseline : t -> (int * bytes) array -> unit
(** Like {!restore_pages}, but additionally installs the snapshot as the
    memory's {e baseline overlay} — the shared restore point of a batch
    group — and empties the dirty set, so the undo log tracks only pages
    written {e since} the baseline.  Subsequent {!reset_to_baseline}
    calls rewind to this image in O(pages written since the baseline)
    without touching the snapshot again.  The overlay is
    dropped by the next {!reset}, {!restore_pages} or {!set_baseline};
    while installed, {!snapshot_pages} is refused (recording and batch
    execution never share a memory). *)

val reset_to_baseline : t -> unit
(** Rewind every dirty page to the baseline image — overlay bytes for
    baseline pages, template bytes for the rest — leaving the arena
    byte-for-byte as {!restore_pages} with the baseline snapshot would,
    at undo-log cost.  This is the intra-group step between batch
    members.  Raises [Invalid_argument] if no baseline is installed. *)

val restore_stats : unit -> int * int
(** [(full, undo)] — process-wide counts of full page-restores
    ({!restore_pages} / {!set_baseline}) and O(dirty) baseline resets
    ({!reset_to_baseline}) since process start; counted even when metrics
    collection is disabled.  The Obs mirrors are
    [onebit_vm_restores_full_total] and [onebit_vm_resets_undo_total]. *)

val size : t -> int

val read_int : t -> width:int -> addr:int -> int
(** [width] is 1, 2, 4 or 8 bytes; the result is the zero-extended value
    (an 8-byte read yields the low 63 bits). Raises {!Trap.Trap}. *)

val write_int : t -> width:int -> addr:int -> int -> unit
val read_f64 : t -> addr:int -> float
val write_f64 : t -> addr:int -> float -> unit

val flip_bit : t -> addr:int -> bit:int -> unit
(** Flip bit [bit] (0–7) of the mapped arena byte at [addr] — the
    memory-domain fault effector.  No alignment check (faults ignore the
    ABI); the touched page is marked dirty so undo-tracking memories
    rewind the flip on {!reset} exactly like a program store.  Raises
    [Invalid_argument] on an out-of-bounds or unmapped address. *)

val mapped_addrs : t -> int array
(** All mapped arena addresses in increasing order — the memory-domain
    fault target space.  Determined entirely by the program's global
    layout (shared by every clone of a template), so it can be computed
    once per workload. *)

val peek_bytes : t -> addr:int -> len:int -> bytes
(** Unchecked snapshot for tests and debugging (still bounds-checked). *)
