(** Precomputed per-instruction operand metadata.

    The injector decides candidacy from this: an instruction is an
    inject-on-read candidate iff [srcs] is non-empty, and an
    inject-on-write candidate iff [dst >= 0].  Computed once at load time
    so the interpreter's hot loop does no list allocation.

    The [fidx]/[bidx]/[idx] triple is the instruction's static identity
    (function index, block index, position within the block; [idx] equal
    to the block's instruction count denotes the terminator).  It lets
    analyses map a dynamic candidate back to a static program point
    ([Dataflow.Prune], [Analysis.Prune_static]). *)

type t = {
  srcs : int array;
      (** register source operand slots, in operand order, duplicates kept *)
  dst : int;  (** destination register, or -1 *)
  fidx : int;  (** function index in the loaded program *)
  bidx : int;  (** block index within the function *)
  idx : int;  (** instruction index within the block; [n] = terminator *)
}

val no_operands : t
val of_instr : fidx:int -> bidx:int -> idx:int -> Ir.Instr.t -> t
val of_term : fidx:int -> bidx:int -> idx:int -> Ir.Instr.terminator -> t
