(** Live progress/metrics channel for engine runs.

    Worker domains report each finished shard; any thread can take a
    consistent {!snapshot} with throughput (experiments/sec), per-outcome
    counters, an ETA for the in-flight campaign and per-domain
    utilisation.  {!with_reporter} renders snapshots to stderr on a
    ticker thread, keeping stdout byte-identical to a silent run. *)

type t

val create : unit -> t
val begin_campaign : t -> label:string -> total:int -> unit

val record_shard :
  t -> ?worker:int -> ?busy:float -> from_store:bool ->
  Core.Campaign.shard -> unit
(** Thread-safe; called by workers as shards complete ([busy] is the
    wall-clock seconds the shard took on [worker]). *)

type snapshot = {
  elapsed : float;
  rate : float;  (** executed experiments per second (store hits excluded) *)
  eta : float;  (** seconds until the current campaign completes; 0 if idle *)
  campaign_label : string;
  campaign_done : int;
  campaign_total : int;
  campaigns_started : int;
  experiments : int;
  from_store : int;
  benign : int;
  detected : int;
  hang : int;
  no_output : int;
  sdc : int;
  per_worker : (int * float) array;  (** per-domain (shards run, busy s) *)
}

val snapshot : t -> snapshot
val render : snapshot -> string

val with_reporter : ?interval:float -> ?enabled:bool -> t -> (unit -> 'a) -> 'a
(** Run [f] with a stderr progress line refreshed every [interval]
    seconds (default 0.5); [enabled] defaults to the [ONEBIT_PROGRESS]
    resolution of {!Core.Config.of_env}.  Always prints a final snapshot
    line when enabled. *)
