(* Live progress/metrics channel for engine runs.

   Workers report finished shards; any thread may take a consistent
   snapshot.  A small reporter thread renders snapshots to stderr so that
   stdout stays byte-identical to a silent run. *)

type counters = {
  mutable experiments : int;  (* executed this process *)
  mutable from_store : int;  (* experiments answered by the store *)
  mutable benign : int;
  mutable detected : int;
  mutable hang : int;
  mutable no_output : int;
  mutable sdc : int;
}

type t = {
  lock : Mutex.t;
  started : float;
  cum : counters;
  mutable campaign_label : string;
  mutable campaign_total : int;  (* experiments in the current campaign *)
  mutable campaign_done : int;
  mutable campaigns_started : int;
  mutable workers : (int * float) array;  (* per-domain (shards, busy s) *)
}

let create () =
  {
    lock = Mutex.create ();
    started = Unix.gettimeofday ();
    cum =
      {
        experiments = 0;
        from_store = 0;
        benign = 0;
        detected = 0;
        hang = 0;
        no_output = 0;
        sdc = 0;
      };
    campaign_label = "";
    campaign_total = 0;
    campaign_done = 0;
    campaigns_started = 0;
    workers = [||];
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let begin_campaign t ~label ~total =
  locked t (fun () ->
      t.campaign_label <- label;
      t.campaign_total <- total;
      t.campaign_done <- 0;
      t.campaigns_started <- t.campaigns_started + 1)

let ensure_worker t w =
  let len = Array.length t.workers in
  if w >= len then begin
    let workers = Array.make (max (w + 1) (2 * max 1 len)) (0, 0.0) in
    Array.blit t.workers 0 workers 0 len;
    t.workers <- workers
  end

let record_shard t ?worker ?(busy = 0.0) ~from_store
    (s : Core.Campaign.shard) =
  locked t (fun () ->
      let size = s.hi - s.lo in
      t.campaign_done <- t.campaign_done + size;
      if from_store then t.cum.from_store <- t.cum.from_store + size
      else t.cum.experiments <- t.cum.experiments + size;
      t.cum.benign <- t.cum.benign + s.s_benign;
      t.cum.detected <- t.cum.detected + s.s_detected;
      t.cum.hang <- t.cum.hang + s.s_hang;
      t.cum.no_output <- t.cum.no_output + s.s_no_output;
      t.cum.sdc <- t.cum.sdc + s.s_sdc;
      match worker with
      | Some w ->
          ensure_worker t w;
          let shards, acc = t.workers.(w) in
          t.workers.(w) <- (shards + 1, acc +. busy)
      | None -> ())

type snapshot = {
  elapsed : float;
  rate : float;  (** executed experiments per second (store hits excluded) *)
  eta : float;  (** seconds until the current campaign completes; 0 if idle *)
  campaign_label : string;
  campaign_done : int;
  campaign_total : int;
  campaigns_started : int;
  experiments : int;
  from_store : int;
  benign : int;
  detected : int;
  hang : int;
  no_output : int;
  sdc : int;
  per_worker : (int * float) array;
}

let snapshot t =
  locked t (fun () ->
      let elapsed = Unix.gettimeofday () -. t.started in
      let rate =
        if elapsed > 0.0 then float_of_int t.cum.experiments /. elapsed
        else 0.0
      in
      let eta =
        let left = t.campaign_total - t.campaign_done in
        if left > 0 && rate > 0.0 then float_of_int left /. rate else 0.0
      in
      {
        elapsed;
        rate;
        eta;
        campaign_label = t.campaign_label;
        campaign_done = t.campaign_done;
        campaign_total = t.campaign_total;
        campaigns_started = t.campaigns_started;
        experiments = t.cum.experiments;
        from_store = t.cum.from_store;
        benign = t.cum.benign;
        detected = t.cum.detected;
        hang = t.cum.hang;
        no_output = t.cum.no_output;
        sdc = t.cum.sdc;
        per_worker = Array.copy t.workers;
      })

(* Live VM-instruction throughput from the metrics registry, when the
   observability layer is collecting; empty otherwise so a plain
   progress line is unchanged. *)
let obs_suffix elapsed =
  if (not (Obs.Metrics.enabled ())) || elapsed <= 0.0 then ""
  else
    match Obs.Metrics.find "onebit_vm_instructions_total" with
    | Some (Obs.Metrics.Counter n) when n > 0 ->
        Printf.sprintf " | %.1fM vm-instr/s"
          (float_of_int n /. elapsed /. 1e6)
    | _ -> ""

let render s =
  let util =
    if Array.length s.per_worker = 0 || s.elapsed <= 0.0 then ""
    else
      let parts =
        Array.to_list s.per_worker
        |> List.mapi (fun i (_, busy) ->
               Printf.sprintf "d%d:%.0f%%" i
                 (100.0 *. busy /. s.elapsed))
      in
      " [" ^ String.concat " " parts ^ "]"
  in
  Printf.sprintf
    "%s %d/%d | %.0f exp/s | eta %.0fs | cum %d run + %d stored | b:%d d:%d \
     h:%d n:%d s:%d%s%s"
    s.campaign_label s.campaign_done s.campaign_total s.rate s.eta
    s.experiments s.from_store s.benign s.detected s.hang s.no_output s.sdc
    util (obs_suffix s.elapsed)

let with_reporter ?(interval = 0.5) ?enabled t f =
  let enabled =
    match enabled with
    | Some e -> e
    | None -> (Core.Config.of_env ()).Core.Config.progress
  in
  if not enabled then f ()
  else begin
    let stop = Atomic.make false in
    let reporter =
      Thread.create
        (fun () ->
          while not (Atomic.get stop) do
            Printf.eprintf "\r\027[K%s%!" (render (snapshot t));
            Thread.delay interval
          done)
        ()
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Thread.join reporter;
        Printf.eprintf "\r\027[K%s\n%!" (render (snapshot t)))
      f
  end
