(** Mutex-protected work-stealing deque.

    One deque per worker: the owner pushes/pops at the bottom, idle
    workers steal from the top.  Shard tasks are coarse enough that the
    lock never shows up next to the work it hands out. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val push_bottom : 'a t -> 'a -> unit
val pop_bottom : 'a t -> 'a option
val steal_top : 'a t -> 'a option
val length : 'a t -> int
