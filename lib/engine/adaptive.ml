(* CI-targeted sequential sampling over a multi-cell campaign grid.

   A fixed-N study spends the same budget on every cell of the grid even
   though most cells' outcome proportions are dead-certain long before N
   is exhausted.  Adaptive sampling runs the grid in rounds: each round
   grants every still-open cell a deterministic batch of shards, waits
   for all of them (the round barrier), recomputes each cell's Wilson
   interval on its SDC proportion, closes cells whose half-width has hit
   the target, and sizes the next round's grants from the sample-size
   planner — widest intervals first when a round budget caps the total.

   Determinism is the load-bearing property.  Every experiment the
   sampler runs is the one a fixed-N campaign would run: shard
   boundaries come from the canonical cap tiling ([Shards.tile ~n:cap],
   not the adaptive stopping point), and experiment [i] always runs on
   [Prng.split_at base i].  Because a prefix of the cap tiling up to any
   shard boundary IS the tiling of that boundary, a cell closed at
   [closed_at] merges into a result byte-identical to
   [Engine.run_campaign ~n:closed_at].  And because allocation decisions
   read only merged prefix results at round barriers — never arrival
   order — any execution (one process, any pool size, any fleet shape,
   any kill history) grants the identical experiment set.

   Store keys use [~n:cap], so adaptive shards are a prefix-compatible
   subset of a fixed-N(cap) run's records: either run can resume or
   extend the other. *)

let m_rounds = Obs.Metrics.counter "onebit_adaptive_rounds_total"
let m_saved = Obs.Metrics.counter "onebit_adaptive_exps_saved_total"

let m_closed_at =
  Obs.Metrics.histogram ~buckets:Obs.Metrics.count_buckets
    "onebit_adaptive_closed_at"

module Control = struct
  (* The pure allocation state machine, shard-granular and generic over
     what a "cell" is: the in-process runner below and the fleet
     coordinator both drive one of these, which is what makes the two
     produce the identical experiment set. *)

  type cell = {
    cap : int;
    ranges : (int * int) array;  (* the fixed cap tiling *)
    mutable granted : int;  (* shards granted so far (a tiling prefix) *)
    mutable closed : bool;
    mutable met : bool;  (* closed because the CI target was reached *)
    mutable hw : float;  (* half-width at the last barrier; 1.0 = no data *)
  }

  type t = {
    cells : cell array;
    shard_size : int;
    target : float;
    initial : int;  (* first grant per cell, in experiments *)
    round_budget : int option;  (* per-round grant cap, in experiments *)
    mutable rounds : int;
  }

  let create ?initial ?round_budget ~target ~shard_size caps =
    if not (target > 0. && target < 1.) then
      invalid_arg "Adaptive.Control.create: target must be in (0, 1)";
    let shard_size = max 1 shard_size in
    let initial =
      match initial with Some i when i > 0 -> i | _ -> 2 * shard_size
    in
    let cells =
      Array.map
        (fun cap ->
          if cap <= 0 then
            invalid_arg "Adaptive.Control.create: cap must be positive";
          {
            cap;
            ranges = Array.of_list (Shards.tile ~n:cap ~shard_size);
            granted = 0;
            closed = false;
            met = false;
            hw = 1.0;
          })
        caps
    in
    { cells; shard_size; target; initial; round_budget; rounds = 0 }

  let n_cells t = Array.length t.cells

  (* Experiments covered by the granted shard prefix. *)
  let granted_exps c = if c.granted = 0 then 0 else snd c.ranges.(c.granted - 1)

  let closed t i = t.cells.(i).closed
  let met t i = t.cells.(i).met
  let closed_at t i = granted_exps t.cells.(i)
  let granted_shards t i = t.cells.(i).granted
  let half_width t i = t.cells.(i).hw
  let rounds t = t.rounds
  let finished t = Array.for_all (fun c -> c.closed) t.cells

  (* Fewest whole shards covering [exps] more experiments (all remaining
     shards if the cap runs out first). *)
  let shards_for c exps =
    if exps <= 0 then 0
    else begin
      let have = granted_exps c in
      let total = Array.length c.ranges in
      let k = ref 0 in
      while
        c.granted + !k < total && snd c.ranges.(c.granted + !k) - have < exps
      do
        incr k
      done;
      if c.granted + !k < total then !k + 1 else !k
    end

  (* One round barrier.  [obs i] is the merged (trials, sdc successes)
     of cell [i]'s granted prefix — every granted shard has completed,
     which is what the caller's barrier guarantees.  Closes what can
     close, then returns the next round's grants as
     [(cell index, (lo, hi) list)]; [] means the grid is done.
     Deterministic in the observations alone. *)
  let step t ~obs =
    Array.iteri
      (fun i c ->
        if not c.closed then begin
          let trials, sdc = obs i in
          let hw =
            if trials <= 0 then 1.0
            else
              Stats.Proportion.half_width
                (Stats.Proportion.wilson ~successes:sdc ~trials ())
          in
          c.hw <- hw;
          if trials > 0 && hw <= t.target then begin
            c.closed <- true;
            c.met <- true
          end
          else if c.granted >= Array.length c.ranges then begin
            (* Cap exhausted before the target: close unmet. *)
            c.closed <- true;
            c.met <- false
          end
        end)
      t.cells;
    let opens =
      Array.to_list (Array.mapi (fun i c -> (i, c)) t.cells)
      |> List.filter (fun (_, c) -> not c.closed)
    in
    if opens = [] then []
    else begin
      (* Desired grant per open cell: what the planner says is still
         missing to reach the target at the current estimate, clamped to
         at most double the evidence so one lucky early sample cannot
         commit the whole budget, and to at least one shard so every
         open cell makes progress. *)
      let desired =
        List.map
          (fun (i, c) ->
            let trials, sdc = obs i in
            let d =
              if trials = 0 then t.initial
              else
                let p = float_of_int sdc /. float_of_int trials in
                let needed =
                  Stats.Proportion.needed_trials ~p ~half_width:t.target ()
                in
                min (max (needed - trials) t.shard_size) trials
            in
            (i, c, shards_for c d))
          opens
      in
      (* Widest interval first; index order breaks ties so the schedule
         is totally ordered whatever produced the observations. *)
      let desired =
        List.stable_sort
          (fun (i, a, _) (j, b, _) ->
            match compare b.hw a.hw with 0 -> compare i j | k -> k)
          desired
      in
      let budget =
        ref (match t.round_budget with Some b -> max 1 b | None -> max_int)
      in
      let grants =
        List.filter_map
          (fun (i, c, k) ->
            if !budget <= 0 then None
            else begin
              let have = granted_exps c in
              (* Trim to the remaining budget but keep at least one
                 shard: the head of the queue always progresses, which
                 guarantees termination. *)
              let k = ref k in
              while
                !k > 1 && snd c.ranges.(c.granted + !k - 1) - have > !budget
              do
                decr k
              done;
              let first = c.granted in
              c.granted <- c.granted + !k;
              budget := !budget - (granted_exps c - have);
              Some (i, Array.to_list (Array.sub c.ranges first !k))
            end)
          desired
      in
      t.rounds <- t.rounds + 1;
      grants
    end
end

type cell = {
  c_workload : Core.Workload.t;
  c_spec : Core.Spec.t;
  c_cap : int;
  c_seed : int64;
}

type cell_result = {
  r_cell : cell;
  r_result : Core.Campaign.result;  (* n = closed_at: a fixed-N prefix *)
  r_closed_at : int;
  r_met : bool;
}

type grid_stats = {
  g_rounds : int;
  g_executed : int;  (* experiments actually run by this invocation *)
  g_from_store : int;  (* experiments satisfied by the store *)
  g_saved : int;  (* sum over cells of cap - closed_at *)
}

let run_grid ?(jobs = 1) ?shard_size ?store ?initial ?round_budget ?log
    ~target cells =
  if cells = [] then invalid_arg "Adaptive.run_grid: empty grid";
  let jobs = Core.Config.resolve_jobs jobs in
  let shard_size =
    match shard_size with
    | Some s -> max 1 s
    | None -> (Core.Config.of_env ()).Core.Config.shard_size
  in
  let cells = Array.of_list cells in
  let ctl =
    Control.create ?initial ?round_budget ~target ~shard_size
      (Array.map (fun c -> c.c_cap) cells)
  in
  (* Completed shards per cell, indexed like the cap tiling. *)
  let shards =
    Array.map
      (fun c ->
        Array.make
          (List.length (Shards.tile ~n:c.c_cap ~shard_size))
          (None : Core.Campaign.shard option))
      cells
  in
  (* Hold a writer lease for the run, as the fixed-N engine does. *)
  (match store with Some st -> Store.lease st | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match store with Some st -> Store.release_lease st | None -> ())
  @@ fun () ->
  let key_of cell (lo, hi) =
    match store with
    | None -> None
    | Some st ->
        Some
          ( st,
            Store.key ~program:cell.c_workload.Core.Workload.name
              ~digest:cell.c_workload.Core.Workload.digest ~spec:cell.c_spec
              ~n:cell.c_cap ~seed:cell.c_seed ~lo ~hi )
  in
  let executed = ref 0 and from_store = ref 0 in
  let warmed = Hashtbl.create 7 in
  let obs i =
    let trials = ref 0 and sdc = ref 0 in
    Array.iter
      (function
        | Some (s : Core.Campaign.shard) ->
            trials := !trials + (s.hi - s.lo);
            sdc := !sdc + s.s_sdc
        | None -> ())
      shards.(i);
    (!trials, !sdc)
  in
  let rec loop () =
    match Control.step ctl ~obs with
    | [] -> ()
    | grants ->
        (* Satisfy what the store already has; run the rest in one pool
           dispatch spanning every granted cell. *)
        let todo = ref [] in
        let granted_exps = ref 0 and round_hits = ref 0 in
        List.iter
          (fun (i, ranges) ->
            List.iter
              (fun (lo, hi) ->
                granted_exps := !granted_exps + (hi - lo);
                let idx = lo / shard_size in
                let hit =
                  match key_of cells.(i) (lo, hi) with
                  | Some (st, key) -> Store.lookup st key
                  | None -> None
                in
                match hit with
                | Some shard ->
                    shards.(i).(idx) <- Some shard;
                    from_store := !from_store + (hi - lo);
                    round_hits := !round_hits + (hi - lo)
                | None -> todo := (i, idx, lo, hi) :: !todo)
              ranges)
          grants;
        let todo = Array.of_list (List.rev !todo) in
        (* Warm each workload's golden-prefix checkpoint set before
           spawning workers, exactly as the fixed-N engine does. *)
        Array.iter
          (fun (i, _, _, _) ->
            let w = cells.(i).c_workload in
            if not (Hashtbl.mem warmed w.Core.Workload.digest) then begin
              Hashtbl.add warmed w.Core.Workload.digest ();
              ignore
                (Core.Workload.ensure_checkpoints w : Vm.Checkpoint.set option)
            end)
          todo;
        let task (i, idx, lo, hi) ~worker:_ =
          let cell = cells.(i) in
          let shard =
            Core.Campaign.run_shard cell.c_workload cell.c_spec
              ~seed:cell.c_seed ~lo ~hi
          in
          shards.(i).(idx) <- Some shard;
          match key_of cell (lo, hi) with
          | Some (st, key) -> Store.add st key shard
          | None -> ()
        in
        Pool.run ~jobs (Array.map (fun t -> task t) todo);
        Array.iter
          (fun (_, _, lo, hi) -> executed := !executed + (hi - lo))
          todo;
        (match log with
        | Some f ->
            let open_cells = ref 0 in
            for i = 0 to Control.n_cells ctl - 1 do
              if not (Control.closed ctl i) then incr open_cells
            done;
            f
              (Printf.sprintf
                 "adaptive round %d: %d cells open, %d experiments granted \
                  (%d from store)"
                 (Control.rounds ctl) !open_cells !granted_exps !round_hits)
        | None -> ());
        loop ()
  in
  loop ();
  let results =
    Array.mapi
      (fun i cell ->
        let closed_at = Control.closed_at ctl i in
        let taken =
          Array.sub shards.(i) 0 (Control.granted_shards ctl i)
          |> Array.to_list
          |> List.map (function Some s -> s | None -> assert false)
        in
        Obs.Metrics.observe m_closed_at (float_of_int closed_at);
        {
          r_cell = cell;
          r_result =
            Core.Campaign.merge
              ~workload_name:cell.c_workload.Core.Workload.name cell.c_spec
              ~n:closed_at ~seed:cell.c_seed taken;
          r_closed_at = closed_at;
          r_met = Control.met ctl i;
        })
      cells
  in
  let saved =
    Array.to_list (Array.mapi (fun i c -> c.c_cap - Control.closed_at ctl i) cells)
    |> List.fold_left ( + ) 0
  in
  Obs.Metrics.add m_rounds (Control.rounds ctl);
  Obs.Metrics.add m_saved saved;
  ( Array.to_list results,
    {
      g_rounds = Control.rounds ctl;
      g_executed = !executed;
      g_from_store = !from_store;
      g_saved = saved;
    } )
