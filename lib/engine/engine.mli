(** Multicore campaign execution engine.

    Campaigns are split into fixed-size shards executed by a pool of
    worker domains over work-stealing deques ({!Pool}); per-experiment
    seeds come from the splittable PRNG ([Prng.split_at base i]), so the
    merged result is bit-identical regardless of worker count or
    scheduling order.  Shard boundaries depend only on (n, shard size),
    never on the worker count, which is what lets a durable {!Store}
    populated by one run satisfy any later run and lets a killed run
    resume by executing only its missing shards.

    Runtime knobs (worker count, shard size, store path, …) resolve in
    {!Core.Config}. *)

module Deque = Deque
module Pool = Pool
module Progress = Progress
module Incremental = Incremental
module Adaptive = Adaptive

val default_shard_size : int
(** 25 experiments per shard. *)

val shards_of : n:int -> shard_size:int -> (int * int) list
(** The canonical [(lo, hi)] tiling of [0, n). *)

type run_stats = Obs.Snapshot.t = {
  mem_hits : int;
  dispatched : int;
  shards_from_store : int;
  shards_executed : int;
  experiments_from_store : int;
  experiments_executed : int;
}
(** Per-call accounting, now the unified {!Obs.Snapshot.t} shared with
    {!Core.Runner}.  An engine call leaves [mem_hits] and [dispatched]
    zero — those belong to the memoising runner; use
    {!Obs.Snapshot.add} to accumulate across calls. *)

val run_campaign_stats :
  ?jobs:int ->
  ?shard_size:int ->
  ?store:Store.t ->
  ?progress:Progress.t ->
  ?keep_experiments:bool ->
  Core.Workload.t -> Core.Spec.t -> n:int -> seed:int64 ->
  Core.Campaign.result * run_stats
(** Run one campaign.  [jobs <= 0] means one worker per recommended
    domain; [jobs] defaults to 1 and [shard_size] to the
    [Core.Config.of_env] resolution of [ONEBIT_SHARD].  With a [store],
    shards already present are not re-executed and newly computed shards
    are appended durably as they finish ([keep_experiments] campaigns
    bypass the store: per-experiment records are not persisted). *)

val run_campaign :
  ?jobs:int ->
  ?shard_size:int ->
  ?store:Store.t ->
  ?progress:Progress.t ->
  ?keep_experiments:bool ->
  Core.Workload.t -> Core.Spec.t -> n:int -> seed:int64 ->
  Core.Campaign.result

val dispatch :
  ?jobs:int ->
  ?shard_size:int ->
  ?store:Store.t ->
  ?progress:Progress.t ->
  unit -> Core.Runner.dispatch
(** A {!Core.Runner.dispatch} backed by this engine; store hits and
    executed shards are accounted in the runner's
    {!Core.Runner.cache_stats}. *)

val runner :
  ?n:int ->
  ?seed:int64 ->
  ?jobs:int ->
  ?shard_size:int ->
  ?store:Store.t ->
  ?progress:Progress.t ->
  unit -> Core.Runner.t
(** A memoising runner whose cache misses run on this engine. *)
