(* Fixed pool of worker domains over a work-stealing deque per worker.

   Tasks are distributed round-robin across the deques up front; each
   worker drains its own deque bottom-first and steals from its neighbours
   (oldest task first) when empty.  The calling domain participates as
   worker 0, so [jobs = 1] spawns no domains at all and runs the tasks
   inline.  Tasks never spawn tasks, so a worker that finds every deque
   empty is done for good; [Domain.join] is the completion barrier.

   Observability: task and steal counts plus per-worker busy/idle wall
   time go to the default metrics registry.  Timing is only taken when
   collection is enabled, so a disabled run pays one flag check per
   pool invocation. *)

let m_tasks = Obs.Metrics.counter "onebit_engine_tasks_total"
let m_steals = Obs.Metrics.counter "onebit_engine_steals_total"

let worker_gauge name w =
  Obs.Metrics.gauge ~labels:[ ("worker", string_of_int w) ] name

(* Run every task of one worker through [f], accounting busy time; the
   idle remainder of the worker's lifetime is recorded on exit. *)
let instrumented me loop =
  if not (Obs.Metrics.enabled ()) then loop (fun f -> f ())
  else begin
    let busy = ref 0.0 in
    let started = Unix.gettimeofday () in
    let timed f =
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () -> busy := !busy +. (Unix.gettimeofday () -. t0))
        f
    in
    Fun.protect
      ~finally:(fun () ->
        let total = Unix.gettimeofday () -. started in
        Obs.Metrics.gadd (worker_gauge "onebit_engine_worker_busy_seconds" me)
          !busy;
        Obs.Metrics.gadd (worker_gauge "onebit_engine_worker_idle_seconds" me)
          (Float.max 0.0 (total -. !busy)))
      (fun () -> loop timed)
  end

let run ~jobs (tasks : (worker:int -> unit) array) =
  let ntasks = Array.length tasks in
  if ntasks = 0 then ()
  else begin
    let jobs = max 1 (min jobs ntasks) in
    if jobs = 1 then
      instrumented 0 (fun timed ->
          Array.iter
            (fun f ->
              Obs.Metrics.incr m_tasks;
              timed (fun () -> f ~worker:0))
            tasks)
    else begin
      let deques = Array.init jobs (fun _ -> Deque.create ()) in
      Array.iteri (fun i _ -> Deque.push_bottom deques.(i mod jobs) i) tasks;
      let take me =
        match Deque.pop_bottom deques.(me) with
        | Some _ as t -> t
        | None ->
            let rec steal k =
              if k >= jobs then None
              else
                match Deque.steal_top deques.((me + k) mod jobs) with
                | Some _ as t ->
                    Obs.Metrics.incr m_steals;
                    t
                | None -> steal (k + 1)
            in
            steal 1
      in
      (* Tasks are all enqueued before any domain starts and never spawn
         tasks, so deque emptiness is monotone: once [take] finds every
         deque empty, no task will ever appear again and the worker can
         exit instead of waiting — in-flight tasks finish on the workers
         that claimed them, and [Domain.join] below is the barrier. *)
      let worker me =
        instrumented me (fun timed ->
            let rec loop () =
              match take me with
              | Some i ->
                  Obs.Metrics.incr m_tasks;
                  timed (fun () -> tasks.(i) ~worker:me);
                  loop ()
              | None -> ()
            in
            loop ())
      in
      let failure = Atomic.make None in
      let guarded me () =
        try worker me
        with exn ->
          (* Record the first failure; this worker's unclaimed tasks are
             picked up by thieves, and the error re-raises after joins. *)
          ignore (Atomic.compare_and_set failure None (Some exn))
      in
      let domains =
        Array.init (jobs - 1) (fun i ->
            Domain.spawn (fun () -> guarded (i + 1) ()))
      in
      guarded 0 ();
      Array.iter Domain.join domains;
      match Atomic.get failure with Some exn -> raise exn | None -> ()
    end
  end
