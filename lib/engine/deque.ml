(* A mutex-protected double-ended work queue.

   Tasks here are coarse (a shard is tens of whole-program fault-injection
   runs, ~10-100 ms), so a lock per operation is noise next to the work it
   hands out; in exchange the deque is trivially correct under any
   interleaving, unlike a Chase-Lev implementation.  The owner pushes and
   pops at the bottom (LIFO, cache-warm); thieves steal from the top
   (FIFO, oldest shard first). *)

type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;  (* index of the top (steal) end *)
  mutable len : int;
  lock : Mutex.t;
}

let create ?(capacity = 64) () =
  {
    buf = Array.make (max 1 capacity) None;
    head = 0;
    len = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push_bottom t x =
  locked t (fun () ->
      if t.len = Array.length t.buf then grow t;
      t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
      t.len <- t.len + 1)

let pop_bottom t =
  locked t (fun () ->
      if t.len = 0 then None
      else begin
        let i = (t.head + t.len - 1) mod Array.length t.buf in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        t.len <- t.len - 1;
        x
      end)

let steal_top t =
  locked t (fun () ->
      if t.len = 0 then None
      else begin
        let x = t.buf.(t.head) in
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        x
      end)

let length t = locked t (fun () -> t.len)
