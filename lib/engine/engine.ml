(* Multicore campaign execution engine.

   A campaign of n experiments is split into fixed-size shards; shards are
   the unit of parallel dispatch (Pool, over work-stealing deques) and of
   durable storage (Store).  Results are bit-identical at any worker
   count because experiment i always runs on the private generator
   [Prng.split_at base i] and shard merging is exact (Campaign.merge).

   Shard boundaries depend only on (n, shard_size) — never on [jobs] — so
   a store populated by one run is hit by any later run, whatever its
   parallelism, and a killed run resumes by re-executing only the shards
   that never made it to the store.

   Within a shard, execution is plan-then-run: Campaign.run_shard hands
   its index range to the batch scheduler (Core.Batch), which groups the
   experiments by their selected golden-prefix checkpoint and amortises
   one full page-restore per group.  Batching is invisible at this layer
   by construction — results come back in index order whatever the
   execution order — so shard tiling, store keys and fleet merges are
   untouched and results stay byte-identical at any [jobs] count with
   batching on or off. *)

module Deque = Deque
module Pool = Pool
module Progress = Progress
module Incremental = Incremental
module Adaptive = Adaptive

let default_shard_size = 25

let resolve_jobs = Core.Config.resolve_jobs

let shards_of = Shards.tile

type run_stats = Obs.Snapshot.t = {
  mem_hits : int;
  dispatched : int;
  shards_from_store : int;
  shards_executed : int;
  experiments_from_store : int;
  experiments_executed : int;
}

let span_if_tracing name f =
  if Obs.Trace.enabled () then Obs.Trace.with_span name f else f ()

let run_campaign_stats ?(jobs = 1) ?shard_size ?store ?progress
    ?(keep_experiments = false) workload spec ~n ~seed =
  if n <= 0 then invalid_arg "Engine.run_campaign: n must be positive";
  let jobs = resolve_jobs jobs in
  let shard_size =
    match shard_size with
    | Some s -> max 1 s
    | None -> (Core.Config.of_env ()).Core.Config.shard_size
  in
  let label = workload.Core.Workload.name ^ " " ^ Core.Spec.label spec in
  span_if_tracing ("campaign " ^ label) @@ fun () ->
  let ranges = Array.of_list (shards_of ~n ~shard_size) in
  let nshards = Array.length ranges in
  let results : Core.Campaign.shard option array = Array.make nshards None in
  (* Kept experiment records are never persisted, so a kept campaign is
     computed in full (still in parallel) rather than read back. *)
  let store = if keep_experiments then None else store in
  (* Hold a writer lease for the run: `onebit engine gc` refuses to
     compact segments out from under a live writer. *)
  (match store with Some st -> Store.lease st | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match store with Some st -> Store.release_lease st | None -> ())
  @@ fun () ->
  let key_of (lo, hi) =
    match store with
    | None -> None
    | Some st ->
        Some
          ( st,
            Store.key ~program:workload.Core.Workload.name
              ~digest:workload.Core.Workload.digest ~spec ~n ~seed ~lo ~hi )
  in
  (match progress with
  | Some p -> Progress.begin_campaign p ~label ~total:n
  | None -> ());
  let from_store = ref 0 and exp_from_store = ref 0 in
  let todo = ref [] in
  Array.iteri
    (fun i range ->
      let hit =
        match key_of range with
        | Some (st, key) -> Store.lookup st key
        | None -> None
      in
      match hit with
      | Some shard ->
          results.(i) <- Some shard;
          incr from_store;
          exp_from_store := !exp_from_store + (shard.hi - shard.lo);
          (match progress with
          | Some p -> Progress.record_shard p ~from_store:true shard
          | None -> ())
      | None -> todo := i :: !todo)
    ranges;
  let todo = Array.of_list (List.rev !todo) in
  let task i ~worker =
    let lo, hi = ranges.(i) in
    span_if_tracing (Printf.sprintf "shard %d-%d %s" lo hi label) @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let shard =
      Core.Campaign.run_shard ~keep_experiments workload spec ~seed ~lo ~hi
    in
    results.(i) <- Some shard;
    (match key_of ranges.(i) with
    | Some (st, key) -> Store.add st key shard
    | None -> ());
    match progress with
    | Some p ->
        Progress.record_shard p ~worker
          ~busy:(Unix.gettimeofday () -. t0)
          ~from_store:false shard
    | None -> ()
  in
  (* Warm the workload's golden-prefix checkpoint set (recorded once per
     digest, process-wide) before spawning workers, so domains share it
     from their first experiment instead of queueing on the recording
     lock. *)
  if Array.length todo > 0 then
    ignore (Core.Workload.ensure_checkpoints workload : Vm.Checkpoint.set option);
  Pool.run ~jobs (Array.map (fun i -> task i) todo);
  let shards =
    Array.to_list results
    |> List.map (function Some s -> s | None -> assert false)
  in
  let result =
    Core.Campaign.merge ~workload_name:workload.Core.Workload.name spec ~n
      ~seed shards
  in
  let stats =
    {
      Obs.Snapshot.zero with
      shards_from_store = !from_store;
      shards_executed = Array.length todo;
      experiments_from_store = !exp_from_store;
      experiments_executed = n - !exp_from_store;
    }
  in
  Obs.Snapshot.count stats;
  (result, stats)

let run_campaign ?jobs ?shard_size ?store ?progress ?keep_experiments
    workload spec ~n ~seed =
  fst
    (run_campaign_stats ?jobs ?shard_size ?store ?progress ?keep_experiments
       workload spec ~n ~seed)

let dispatch ?(jobs = 1) ?shard_size ?store ?progress () :
    Core.Runner.dispatch =
 fun stats ~keep_experiments workload spec ~n ~seed ->
  let result, rs =
    run_campaign_stats ~jobs ?shard_size ?store ?progress ~keep_experiments
      workload spec ~n ~seed
  in
  stats.Core.Runner.store_shard_hits <-
    stats.Core.Runner.store_shard_hits + rs.shards_from_store;
  stats.Core.Runner.shards_executed <-
    stats.Core.Runner.shards_executed + rs.shards_executed;
  result

let runner ?n ?seed ?(jobs = 1) ?shard_size ?store ?progress () =
  Core.Runner.create ?n ?seed
    ~dispatch:(dispatch ~jobs ?shard_size ?store ?progress ())
    ()
