(** Compositional campaign execution over cached per-function profiles.

    The campaign's experiments are partitioned by the function owning
    each experiment's first flip; every partition's outcome counts form
    a {!Core.Campaign.profile} cached in the store under the function's
    identity digest and the module's environment digest
    ([Ir.Fingerprint]).  While the environment digest is unchanged the
    partition and every experiment's course are unchanged, so composing
    cached profiles reproduces the full campaign result exactly; editing
    one function invalidates only that function's profiles, and a rerun
    re-executes only that function's share of the experiments.

    Partitions owned by a provably-benign function are {e skipped}: if
    the campaign is single-flip and the owner has no boundary value
    channel ({!Dataflow.Summary.sdc_free_single}), cannot trap, cannot
    loop (checked over every transitively reachable summary) and even
    its worst-case acyclic path fits the watchdog budget, every
    experiment in its partition is Benign with one activation, so the
    profile — including exact weighted sums, replayed from recorded
    per-candidate weights — is synthesized and cached without running
    anything.  Composed results stay exact; skipped counts appear in
    {!stats} and the [onebit_profile_skip_total] /
    [onebit_profile_funcs_skipped_total] counters.

    Reuse is reported through the [onebit_profile_reuse_total] /
    [onebit_profile_recompute_total] counters (experiments) and their
    [_funcs_] counterparts (functions), plus the returned {!stats}. *)

type stats = {
  funcs_total : int;
  funcs_reused : int;  (** profiles composed from the store *)
  funcs_recomputed : int;  (** profiles (re-)executed this run *)
  funcs_skipped : int;  (** profiles synthesized as provably benign *)
  exps_reused : int;
  exps_recomputed : int;
  exps_skipped : int;  (** experiments covered by synthesized profiles *)
}

val owners_of : Core.Workload.t -> Core.Technique.t -> int array
(** Candidate-ordinal -> owning function index for a technique, from one
    instrumented fault-free run (cached per workload digest,
    process-wide).

    @raise Invalid_argument if the instrumented run diverges from the
    workload's golden run (it cannot, short of a VM bug). *)

val partition :
  Core.Workload.t -> Core.Spec.t -> n:int -> seed:int64 -> int array array
(** [partition w spec ~n ~seed].(fidx) lists, in increasing order, the
    experiment indices whose first flip lands on an instruction of
    function [fidx].  Depends only on [(w, spec, n, seed)] — the same
    draw [Campaign.run] would make. *)

val run :
  ?jobs:int ->
  ?shard_size:int ->
  store:Store.t ->
  Core.Workload.t ->
  Core.Spec.t ->
  n:int ->
  seed:int64 ->
  Core.Campaign.result * stats
(** Compose the campaign from cached profiles, re-executing only
    functions with no valid cached profile (in parallel, [shard_size]
    experiments per task).  The composed result equals
    [Campaign.run ~keep_experiments:false] exactly — same counters, trap
    breakdown, activation histogram and weighted sums. *)
