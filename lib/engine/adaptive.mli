(** CI-targeted sequential sampling over a multi-cell campaign grid.

    A fixed-N study spends the same budget on every cell even though
    most cells' outcome proportions are dead-certain long before N is
    exhausted.  The adaptive sampler runs the grid in rounds: each round
    grants every still-open cell a deterministic batch of shards, waits
    for all of them (the round barrier), recomputes each cell's Wilson
    interval on its SDC proportion, closes cells whose half-width has
    reached the target, and sizes the next round's grants from
    {!Stats.Proportion.needed_trials} — widest intervals first when a
    round budget caps the total.

    Every experiment the sampler runs is the one a fixed-N campaign
    would run (shard boundaries come from the cap tiling, experiment [i]
    always runs on [Prng.split_at base i]), so a cell closed at
    [closed_at] merges into a result byte-identical to
    [Engine.run_campaign ~n:closed_at], and because allocation reads
    only merged prefix results at round barriers, any execution — one
    process, any pool size, any fleet shape, any kill history — grants
    the identical experiment set.  Store keys use the cap, so adaptive
    records are a prefix-compatible subset of a fixed-N(cap) run's. *)

module Control : sig
  type t
  (** The pure allocation state machine, shard-granular and generic over
      what a cell is.  {!run_grid} and the fleet coordinator both drive
      one of these, which is what makes in-process and fleet adaptive
      runs produce the identical experiment set. *)

  val create :
    ?initial:int ->
    ?round_budget:int ->
    target:float ->
    shard_size:int ->
    int array -> t
  (** [create ~target ~shard_size caps] plans one cell per cap (its
      fixed-N ceiling).  [target] is the Wilson 95% CI half-width at
      which a cell closes, in (0, 1).  [initial] is the first grant per
      cell in experiments (default [2 * shard_size]); [round_budget]
      caps each round's total grant in experiments (default
      unlimited). *)

  val step : t -> obs:(int -> int * int) -> (int * (int * int) list) list
  (** One round barrier.  [obs i] must return the merged
      [(trials, sdc successes)] of cell [i]'s granted prefix, every
      granted shard having completed.  Closes cells whose half-width
      reached the target (or whose cap is exhausted) and returns the
      next round's grants as [(cell index, shard ranges)]; [[]] means
      every cell is closed.  Deterministic in the observations alone —
      the determinism-at-round-barriers property. *)

  val n_cells : t -> int
  val closed : t -> int -> bool
  val met : t -> int -> bool
  (** Closed because the target was reached (as opposed to cap
      exhaustion). *)

  val closed_at : t -> int -> int
  (** Experiments covered by the granted prefix — the cell's effective
      N, a shard boundary of the cap tiling. *)

  val granted_shards : t -> int -> int
  val half_width : t -> int -> float
  (** SDC half-width at the last barrier; 1.0 before any data. *)

  val rounds : t -> int
  val finished : t -> bool
end

type cell = {
  c_workload : Core.Workload.t;
  c_spec : Core.Spec.t;
  c_cap : int;  (** fixed-N ceiling: adaptive never exceeds it *)
  c_seed : int64;
}

type cell_result = {
  r_cell : cell;
  r_result : Core.Campaign.result;
      (** [n = closed_at]; byte-identical to the fixed-N campaign of
          that N *)
  r_closed_at : int;
  r_met : bool;  (** reached the CI target (vs. ran into the cap) *)
}

type grid_stats = {
  g_rounds : int;
  g_executed : int;  (** experiments actually run by this invocation *)
  g_from_store : int;  (** experiments satisfied by the store *)
  g_saved : int;  (** sum over cells of [cap - closed_at] *)
}

val run_grid :
  ?jobs:int ->
  ?shard_size:int ->
  ?store:Store.t ->
  ?initial:int ->
  ?round_budget:int ->
  ?log:(string -> unit) ->
  target:float ->
  cell list ->
  cell_result list * grid_stats
(** Run the grid adaptively in-process.  Results are returned in cell
    order.  With a [store], shards already present are not re-executed
    and new shards are appended durably as they finish (keys use each
    cell's cap), so a killed adaptive run resumes: the re-run replays
    the same deterministic round schedule and hits the store for
    everything that completed.  [log], when given, receives one progress
    line per round.  Raises [Invalid_argument] on an empty grid, a
    non-positive cap, or a [target] outside (0, 1). *)
