val tile : n:int -> shard_size:int -> (int * int) list
(** The canonical [(lo, hi)] shard tiling of [0, n); requires [n > 0].
    A prefix of the tiling up to any shard boundary [b] equals
    [tile ~n:b ~shard_size]. *)
