(** Fixed worker-domain pool with work stealing.

    [run ~jobs tasks] executes every task, using the calling domain as
    worker 0 plus [jobs - 1] spawned domains (none for [jobs = 1]).
    Each task receives the id of the worker that ran it.  Returns when
    all tasks have finished; if a task raises, the first such exception
    is re-raised in the caller after all workers have stopped. *)

val run : jobs:int -> (worker:int -> unit) array -> unit
