(* Compositional campaign execution: per-function outcome profiles,
   cached and recomposed.

   A campaign's n experiments are partitioned by the function that owns
   each experiment's FIRST flip: experiment i draws its first candidate
   ordinal at injector creation ([Injector.first_target]), and one
   instrumented fault-free run maps every candidate ordinal to the
   function index of its instruction.  The partition — and every
   experiment's entire course — depends only on (workload, spec, n,
   seed), never on this module, so profiles over the partition compose
   into exactly the result [Campaign.run] produces.

   Each function's profile is cached in the store under
   (program, function name, identity digest, environment digest, spec,
   n, seed).  The environment digest ([Ir.Fingerprint.environment])
   covers the globals and the semantic digests of every function
   reachable from the entry; while it is unchanged, the golden run, the
   candidate stream, the ordinal->owner map and all PRNG draws are
   unchanged, so a cached profile is the exact counts its function's
   partition would produce if re-run.  The identity digest pins the
   function's own source form, so editing one function invalidates
   exactly that function's profiles: everything else composes from
   cache, and the edited function re-runs only its share of the
   experiments. *)

let m_reuse = Obs.Metrics.counter "onebit_profile_reuse_total"
let m_recompute = Obs.Metrics.counter "onebit_profile_recompute_total"
let m_funcs_reused = Obs.Metrics.counter "onebit_profile_funcs_reused_total"

let m_funcs_recomputed =
  Obs.Metrics.counter "onebit_profile_funcs_recomputed_total"

let m_skip = Obs.Metrics.counter "onebit_profile_skip_total"
let m_funcs_skipped = Obs.Metrics.counter "onebit_profile_funcs_skipped_total"

type stats = {
  funcs_total : int;
  funcs_reused : int;
  funcs_recomputed : int;
  funcs_skipped : int;
  exps_reused : int;
  exps_recomputed : int;
  exps_skipped : int;
}

let span_if_tracing name f =
  if Obs.Trace.enabled () then Obs.Trace.with_span name f else f ()

(* Candidate-ordinal -> owning function index, for both techniques, from
   one instrumented fault-free run on the seed interpreter (its hooks
   fire once per candidate, carrying the instruction's static identity).
   The same run also records each read candidate's per-operand-slot
   equivalence-class weights (Barbosa et al., last-write distance) so a
   skipped partition's weighted sums can be synthesized without running
   anything.  Cached per workload digest, like compiled code and
   checkpoints. *)
let attribution : (string, int array * int array * int array array) Hashtbl.t =
  Hashtbl.create 8

let attribution_lock = Mutex.create ()

let owners (w : Core.Workload.t) =
  Mutex.lock attribution_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock attribution_lock)
    (fun () ->
      match Hashtbl.find_opt attribution w.digest with
      | Some o -> o
      | None ->
          let reads = Array.make (max 1 w.golden.read_cands) (-1) in
          let writes = Array.make (max 1 w.golden.write_cands) (-1) in
          let rweights = Array.make (max 1 w.golden.read_cands) [||] in
          let nr = ref 0 and nw = ref 0 in
          let hooks =
            {
              Vm.Exec.pre =
                (fun ~dyn (frame : Vm.Exec.frame) (m : Vm.Meta.t) ->
                  reads.(!nr) <- m.fidx;
                  rweights.(!nr) <-
                    Array.map
                      (fun reg ->
                        let lw = frame.Vm.Exec.last_write.(reg) in
                        if lw < 0 then dyn + 1 else max 1 (dyn - lw))
                      m.srcs;
                  incr nr);
              post =
                (fun ~dyn:_ _ (m : Vm.Meta.t) ->
                  writes.(!nw) <- m.fidx;
                  incr nw);
              at = Vm.Exec.no_hook;
            }
          in
          let r = Vm.Exec.run ~hooks ~budget:Vm.Exec.golden_budget w.prog in
          if
            r.status <> Vm.Exec.Finished
            || !nr <> w.golden.read_cands
            || !nw <> w.golden.write_cands
          then
            invalid_arg
              ("Incremental.owners: attribution run diverged from the \
                golden run of " ^ w.name);
          Hashtbl.replace attribution w.digest (reads, writes, rweights);
          (reads, writes, rweights))

let owners_of w (technique : Core.Technique.t) =
  let reads, writes, _ = owners w in
  match technique with Read -> reads | Write -> writes

let read_weights w =
  let _, _, rweights = owners w in
  rweights

(* Experiment indices of each function's partition, in index order;
   result.(fidx) lists the experiments whose first flip lands on an
   instruction of function fidx. *)
let partition (w : Core.Workload.t) (spec : Core.Spec.t) ~n ~seed =
  if n <= 0 then invalid_arg "Incremental.partition: n must be positive";
  let own = owners_of w spec.technique in
  let candidates = Core.Workload.candidates w spec in
  let base = Prng.of_seed seed in
  let nfuncs = Array.length w.prog.funcs in
  let parts = Array.make nfuncs [] in
  for i = n - 1 downto 0 do
    let inj =
      Core.Injector.create ~spec ~candidates (Prng.split_at base i)
    in
    match Core.Injector.first_target inj with
    | Some c -> parts.(own.(c)) <- i :: parts.(own.(c))
    | None -> assert false (* drawn at creation, nothing has fired *)
  done;
  Array.map Array.of_list parts

(* --- Provably-benign partition skipping ------------------------------

   A single-bit-flip experiment whose first (and only) flip lands on a
   function with no boundary value channel ([Summary.sdc_free_single]:
   constant-or-void return, no stores, no output) perturbs only that
   invocation's register file — the rest of the run is the golden run.
   If additionally no instruction reachable from the function can trap
   ([may_trap], transitive), no reachable function can loop or recurse
   (checked over every reachable summary, closing [may_loop]'s
   callee-self-recursion gap), and even the longest acyclic path through
   the function fits the watchdog budget, then every experiment in its
   partition is provably Benign with exactly one activation — the
   profile can be synthesized instead of executed. *)

(* Cost saturation bound: far above any real path, far below overflow. *)
let inf_cost = max_int / 4

let sat_add a b = if a >= inf_cost || b >= inf_cost then inf_cost else a + b

(* Worst-case dynamic instruction count of one invocation: a longest-path
   DP over the CFG, with callee costs folded into block weights.  Cycles
   and recursion saturate to [inf_cost] — callers reject those via the
   may_loop check anyway, this is defence in depth.  Builtin callees
   execute no IR instructions and cost 0. *)
let wc_cost_of (modl : Ir.Func.modl) =
  let by_name : (string, Ir.Func.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.Func.t) -> Hashtbl.replace by_name f.f_name f)
    modl.m_funcs;
  let memo : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rec fn_cost stack name =
    match Hashtbl.find_opt memo name with
    | Some c -> c
    | None ->
        if List.mem name stack then inf_cost (* recursion *)
        else
          let c =
            match Hashtbl.find_opt by_name name with
            | None -> 0 (* builtin *)
            | Some f -> func_cost (name :: stack) f
          in
          Hashtbl.replace memo name c;
          c
  and func_cost stack (f : Ir.Func.t) =
    let cfg = Dataflow.Cfg.of_func f in
    let nb = Array.length f.f_blocks in
    let bmemo = Array.make nb (-1) in
    let bactive = Array.make nb false in
    let rec bcost b =
      if bmemo.(b) >= 0 then bmemo.(b)
      else if bactive.(b) then inf_cost (* CFG cycle *)
      else begin
        bactive.(b) <- true;
        let blk = f.f_blocks.(b) in
        let w = ref (Array.length blk.Ir.Func.b_instrs + 1) in
        Array.iter
          (function
            | Ir.Instr.Call { callee; _ } -> w := sat_add !w (fn_cost stack callee)
            | _ -> ())
          blk.Ir.Func.b_instrs;
        let best =
          Array.fold_left
            (fun acc s -> max acc (bcost s))
            0 cfg.Dataflow.Cfg.succs.(b)
        in
        bactive.(b) <- false;
        let c = sat_add !w best in
        bmemo.(b) <- c;
        c
      end
    in
    bcost 0
  in
  fun name -> fn_cost [] name

(* may_loop = false for the function and every summary transitively
   reachable from it (a callee's self-recursion is in its own may_loop
   but not its callers'); unknown callees are builtins — loop-free. *)
let loops_free summaries (s : Dataflow.Summary.t) =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec go (s : Dataflow.Summary.t) =
    (not s.may_loop)
    && List.for_all
         (fun callee ->
           Hashtbl.mem seen callee
           ||
           (Hashtbl.replace seen callee ();
            match Dataflow.Summary.find summaries callee with
            | Some cs -> go cs
            | None -> true))
         s.callees
  in
  Hashtbl.replace seen s.fn ();
  go s

(* The synthesized profile of a skipped partition: all Benign, exactly
   one activation each, weighted sums replayed from the attribution
   run's recorded weights with the same PRNG draws [Injector.create] and
   its first-flip slot choice would make (weights are small integers, so
   the float sums are exact in any order). *)
let synth_profile (w : Core.Workload.t) (spec : Core.Spec.t) ~seed part =
  let nexp = Array.length part in
  let weighted_total =
    match spec.Core.Spec.technique with
    | Core.Technique.Write -> float_of_int nexp
    | Core.Technique.Read ->
        let rweights = read_weights w in
        let candidates = Core.Workload.candidates w spec in
        let base = Prng.of_seed seed in
        Array.fold_left
          (fun acc i ->
            let rng = Prng.split_at base i in
            let target = Prng.int rng candidates in
            let ws = rweights.(target) in
            let slot =
              if Array.length ws = 1 then 0 else Prng.int rng (Array.length ws)
            in
            acc +. float_of_int ws.(slot))
          0.0 part
  in
  {
    Core.Campaign.p_exps = nexp;
    p_benign = nexp;
    p_detected = 0;
    p_hang = 0;
    p_no_output = 0;
    p_sdc = 0;
    p_traps = [];
    p_activation = (if nexp = 0 then [] else [ (1, nexp) ]);
    p_weighted_sdc = 0.0;
    p_weighted_total = weighted_total;
  }

let chunks_of indices size =
  let n = Array.length indices in
  let size = max 1 size in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else go (lo + size) (Array.sub indices lo (min size (n - lo)) :: acc)
  in
  go 0 []

let run ?(jobs = 1) ?shard_size ~store (w : Core.Workload.t)
    (spec : Core.Spec.t) ~n ~seed =
  if n <= 0 then invalid_arg "Incremental.run: n must be positive";
  let jobs = Core.Config.resolve_jobs jobs in
  let shard_size =
    match shard_size with
    | Some s -> max 1 s
    | None -> (Core.Config.of_env ()).Core.Config.shard_size
  in
  let label = w.name ^ " " ^ Core.Spec.label spec ^ " (incremental)" in
  span_if_tracing ("campaign " ^ label) @@ fun () ->
  if not (Core.Domain.equal spec.Core.Spec.domain Core.Domain.Reg) then begin
    (* Function-level profile reuse keys the first flip's candidate
       ordinal to the function that owns the instruction — a
       register-domain notion.  Mem/Code targets live on the raw dynamic
       axis and their effects are not function-local (a flipped byte or
       stored instruction is visible from anywhere), so caching would be
       unsound: run the campaign in full, counted as recomputed. *)
    let nfuncs = Array.length w.prog.funcs in
    let rec shards lo acc =
      if lo >= n then List.rev acc
      else shards (lo + shard_size) ((lo, min n (lo + shard_size)) :: acc)
    in
    let ranges = Array.of_list (shards 0 []) in
    let slots : Core.Campaign.shard option array =
      Array.make (Array.length ranges) None
    in
    let tasks =
      Array.mapi
        (fun i (lo, hi) ->
          fun ~worker:_ ->
           span_if_tracing (Printf.sprintf "shard %d-%d %s" lo hi label)
           @@ fun () ->
           slots.(i) <- Some (Core.Campaign.run_shard w spec ~seed ~lo ~hi))
        ranges
    in
    if Array.length tasks > 0 then
      ignore (Core.Workload.ensure_checkpoints w : Vm.Checkpoint.set option);
    Pool.run ~jobs tasks;
    let result =
      Core.Campaign.merge ~workload_name:w.name spec ~n ~seed
        (Array.to_list slots
        |> List.map (function Some s -> s | None -> assert false))
    in
    Obs.Metrics.add m_recompute n;
    Obs.Metrics.add m_funcs_recomputed nfuncs;
    ( result,
      {
        funcs_total = nfuncs;
        funcs_reused = 0;
        funcs_recomputed = nfuncs;
        funcs_skipped = 0;
        exps_reused = 0;
        exps_recomputed = n;
        exps_skipped = 0;
      } )
  end
  else begin
  let funcs = Array.of_list w.modl.m_funcs in
  let nfuncs = Array.length funcs in
  if nfuncs <> Array.length w.prog.funcs then
    invalid_arg "Incremental.run: module/program function mismatch";
  let env = Ir.Fingerprint.environment w.modl in
  let fdigests = Array.map Ir.Fingerprint.func funcs in
  let parts = partition w spec ~n ~seed in
  let key_of fidx =
    Store.profile_key ~program:w.name
      ~func:(funcs.(fidx) : Ir.Func.t).f_name ~fdigest:fdigests.(fidx) ~env
      ~spec ~n ~seed
  in
  let profiles : Core.Campaign.profile option array = Array.make nfuncs None in
  let todo = ref [] in
  let exps_reused = ref 0 and funcs_reused = ref 0 in
  let exps_skipped = ref 0 and funcs_skipped = ref 0 in
  (* Provably-benign skip predicate, computed lazily: only single-flip
     campaigns qualify (a second flip of a multi-flip experiment can land
     outside the owning function, so nothing is provable about it). *)
  let skip_ctx =
    lazy
      (let summaries = Dataflow.Summary.analyse w.modl in
       let wc_cost = wc_cost_of w.modl in
       (summaries, wc_cost))
  in
  let skippable fidx =
    spec.Core.Spec.max_mbf = 1
    &&
    let summaries, wc_cost = Lazy.force skip_ctx in
    match
      Dataflow.Summary.find summaries (funcs.(fidx) : Ir.Func.t).f_name
    with
    | None -> false
    | Some s ->
        Dataflow.Summary.sdc_free_single s
        && (not s.may_trap)
        && loops_free summaries s
        && sat_add w.golden.dyn_count (wc_cost s.fn) <= w.budget
  in
  for fidx = 0 to nfuncs - 1 do
    if skippable fidx then begin
      (* Synthesize and cache like any computed profile, so warm runs
         and [diff-campaign] compose it the ordinary way. *)
      let p = synth_profile w spec ~seed parts.(fidx) in
      Store.add_profile store (key_of fidx) p;
      profiles.(fidx) <- Some p;
      incr funcs_skipped;
      exps_skipped := !exps_skipped + p.Core.Campaign.p_exps
    end
    else
      match Store.lookup_profile store (key_of fidx) with
      | Some p when p.p_exps = Array.length parts.(fidx) ->
          profiles.(fidx) <- Some p;
          incr funcs_reused;
          exps_reused := !exps_reused + p.p_exps
      | Some _ (* stale size: treat as a miss *) | None ->
          todo := fidx :: !todo
  done;
  let todo = Array.of_list (List.rev !todo) in
  (* one slot per (function, chunk); merged in order afterwards so the
     result is independent of worker scheduling *)
  let tasks = ref [] in
  let chunk_slots =
    Array.map
      (fun fidx ->
        let chunks = Array.of_list (chunks_of parts.(fidx) shard_size) in
        let slots =
          Array.make (Array.length chunks) Core.Campaign.empty_profile
        in
        Array.iteri
          (fun ci chunk ->
            tasks :=
              (fun ~worker:_ ->
                span_if_tracing
                  (Printf.sprintf "profile %s/%d %s"
                     (funcs.(fidx) : Ir.Func.t).f_name ci label)
                @@ fun () ->
                slots.(ci) <-
                  Core.Campaign.run_profile w spec ~seed ~indices:chunk)
              :: !tasks)
          chunks;
        (fidx, slots))
      todo
  in
  let tasks = Array.of_list (List.rev !tasks) in
  if Array.length tasks > 0 then
    ignore (Core.Workload.ensure_checkpoints w : Vm.Checkpoint.set option);
  Pool.run ~jobs tasks;
  Array.iter
    (fun (fidx, slots) ->
      let p =
        Array.fold_left Core.Campaign.merge_profiles
          Core.Campaign.empty_profile slots
      in
      Store.add_profile store (key_of fidx) p;
      profiles.(fidx) <- Some p)
    chunk_slots;
  let exps_recomputed = n - !exps_reused - !exps_skipped in
  Obs.Metrics.add m_reuse !exps_reused;
  Obs.Metrics.add m_recompute exps_recomputed;
  Obs.Metrics.add m_funcs_reused !funcs_reused;
  Obs.Metrics.add m_funcs_recomputed (Array.length todo);
  Obs.Metrics.add m_skip !exps_skipped;
  Obs.Metrics.add m_funcs_skipped !funcs_skipped;
  let result =
    Core.Campaign.result_of_profiles ~workload_name:w.name spec ~n ~seed
      (Array.to_list profiles
      |> List.map (function Some p -> p | None -> assert false))
  in
  ( result,
    {
      funcs_total = nfuncs;
      funcs_reused = !funcs_reused;
      funcs_recomputed = Array.length todo;
      funcs_skipped = !funcs_skipped;
      exps_reused = !exps_reused;
      exps_recomputed;
      exps_skipped = !exps_skipped;
    } )
  end
