(* Compositional campaign execution: per-function outcome profiles,
   cached and recomposed.

   A campaign's n experiments are partitioned by the function that owns
   each experiment's FIRST flip: experiment i draws its first candidate
   ordinal at injector creation ([Injector.first_target]), and one
   instrumented fault-free run maps every candidate ordinal to the
   function index of its instruction.  The partition — and every
   experiment's entire course — depends only on (workload, spec, n,
   seed), never on this module, so profiles over the partition compose
   into exactly the result [Campaign.run] produces.

   Each function's profile is cached in the store under
   (program, function name, identity digest, environment digest, spec,
   n, seed).  The environment digest ([Ir.Fingerprint.environment])
   covers the globals and the semantic digests of every function
   reachable from the entry; while it is unchanged, the golden run, the
   candidate stream, the ordinal->owner map and all PRNG draws are
   unchanged, so a cached profile is the exact counts its function's
   partition would produce if re-run.  The identity digest pins the
   function's own source form, so editing one function invalidates
   exactly that function's profiles: everything else composes from
   cache, and the edited function re-runs only its share of the
   experiments. *)

let m_reuse = Obs.Metrics.counter "onebit_profile_reuse_total"
let m_recompute = Obs.Metrics.counter "onebit_profile_recompute_total"
let m_funcs_reused = Obs.Metrics.counter "onebit_profile_funcs_reused_total"

let m_funcs_recomputed =
  Obs.Metrics.counter "onebit_profile_funcs_recomputed_total"

type stats = {
  funcs_total : int;
  funcs_reused : int;
  funcs_recomputed : int;
  exps_reused : int;
  exps_recomputed : int;
}

let span_if_tracing name f =
  if Obs.Trace.enabled () then Obs.Trace.with_span name f else f ()

(* Candidate-ordinal -> owning function index, for both techniques, from
   one instrumented fault-free run on the seed interpreter (its hooks
   fire once per candidate, carrying the instruction's static identity).
   Cached per workload digest, like compiled code and checkpoints. *)
let attribution : (string, int array * int array) Hashtbl.t =
  Hashtbl.create 8

let attribution_lock = Mutex.create ()

let owners (w : Core.Workload.t) =
  Mutex.lock attribution_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock attribution_lock)
    (fun () ->
      match Hashtbl.find_opt attribution w.digest with
      | Some o -> o
      | None ->
          let reads = Array.make (max 1 w.golden.read_cands) (-1) in
          let writes = Array.make (max 1 w.golden.write_cands) (-1) in
          let nr = ref 0 and nw = ref 0 in
          let hooks =
            {
              Vm.Exec.pre =
                (fun ~dyn:_ _ (m : Vm.Meta.t) ->
                  reads.(!nr) <- m.fidx;
                  incr nr);
              post =
                (fun ~dyn:_ _ (m : Vm.Meta.t) ->
                  writes.(!nw) <- m.fidx;
                  incr nw);
              at = Vm.Exec.no_hook;
            }
          in
          let r = Vm.Exec.run ~hooks ~budget:Vm.Exec.golden_budget w.prog in
          if
            r.status <> Vm.Exec.Finished
            || !nr <> w.golden.read_cands
            || !nw <> w.golden.write_cands
          then
            invalid_arg
              ("Incremental.owners: attribution run diverged from the \
                golden run of " ^ w.name);
          Hashtbl.replace attribution w.digest (reads, writes);
          (reads, writes))

let owners_of w (technique : Core.Technique.t) =
  let reads, writes = owners w in
  match technique with Read -> reads | Write -> writes

(* Experiment indices of each function's partition, in index order;
   result.(fidx) lists the experiments whose first flip lands on an
   instruction of function fidx. *)
let partition (w : Core.Workload.t) (spec : Core.Spec.t) ~n ~seed =
  if n <= 0 then invalid_arg "Incremental.partition: n must be positive";
  let own = owners_of w spec.technique in
  let candidates = Core.Workload.candidates w spec in
  let base = Prng.of_seed seed in
  let nfuncs = Array.length w.prog.funcs in
  let parts = Array.make nfuncs [] in
  for i = n - 1 downto 0 do
    let inj =
      Core.Injector.create ~spec ~candidates (Prng.split_at base i)
    in
    match Core.Injector.first_target inj with
    | Some c -> parts.(own.(c)) <- i :: parts.(own.(c))
    | None -> assert false (* drawn at creation, nothing has fired *)
  done;
  Array.map Array.of_list parts

let chunks_of indices size =
  let n = Array.length indices in
  let size = max 1 size in
  let rec go lo acc =
    if lo >= n then List.rev acc
    else go (lo + size) (Array.sub indices lo (min size (n - lo)) :: acc)
  in
  go 0 []

let run ?(jobs = 1) ?shard_size ~store (w : Core.Workload.t)
    (spec : Core.Spec.t) ~n ~seed =
  if n <= 0 then invalid_arg "Incremental.run: n must be positive";
  let jobs = Core.Config.resolve_jobs jobs in
  let shard_size =
    match shard_size with
    | Some s -> max 1 s
    | None -> (Core.Config.of_env ()).Core.Config.shard_size
  in
  let label = w.name ^ " " ^ Core.Spec.label spec ^ " (incremental)" in
  span_if_tracing ("campaign " ^ label) @@ fun () ->
  if not (Core.Domain.equal spec.Core.Spec.domain Core.Domain.Reg) then begin
    (* Function-level profile reuse keys the first flip's candidate
       ordinal to the function that owns the instruction — a
       register-domain notion.  Mem/Code targets live on the raw dynamic
       axis and their effects are not function-local (a flipped byte or
       stored instruction is visible from anywhere), so caching would be
       unsound: run the campaign in full, counted as recomputed. *)
    let nfuncs = Array.length w.prog.funcs in
    let rec shards lo acc =
      if lo >= n then List.rev acc
      else shards (lo + shard_size) ((lo, min n (lo + shard_size)) :: acc)
    in
    let ranges = Array.of_list (shards 0 []) in
    let slots : Core.Campaign.shard option array =
      Array.make (Array.length ranges) None
    in
    let tasks =
      Array.mapi
        (fun i (lo, hi) ->
          fun ~worker:_ ->
           span_if_tracing (Printf.sprintf "shard %d-%d %s" lo hi label)
           @@ fun () ->
           slots.(i) <- Some (Core.Campaign.run_shard w spec ~seed ~lo ~hi))
        ranges
    in
    if Array.length tasks > 0 then
      ignore (Core.Workload.ensure_checkpoints w : Vm.Checkpoint.set option);
    Pool.run ~jobs tasks;
    let result =
      Core.Campaign.merge ~workload_name:w.name spec ~n ~seed
        (Array.to_list slots
        |> List.map (function Some s -> s | None -> assert false))
    in
    Obs.Metrics.add m_recompute n;
    Obs.Metrics.add m_funcs_recomputed nfuncs;
    ( result,
      {
        funcs_total = nfuncs;
        funcs_reused = 0;
        funcs_recomputed = nfuncs;
        exps_reused = 0;
        exps_recomputed = n;
      } )
  end
  else begin
  let funcs = Array.of_list w.modl.m_funcs in
  let nfuncs = Array.length funcs in
  if nfuncs <> Array.length w.prog.funcs then
    invalid_arg "Incremental.run: module/program function mismatch";
  let env = Ir.Fingerprint.environment w.modl in
  let fdigests = Array.map Ir.Fingerprint.func funcs in
  let parts = partition w spec ~n ~seed in
  let key_of fidx =
    Store.profile_key ~program:w.name
      ~func:(funcs.(fidx) : Ir.Func.t).f_name ~fdigest:fdigests.(fidx) ~env
      ~spec ~n ~seed
  in
  let profiles : Core.Campaign.profile option array = Array.make nfuncs None in
  let todo = ref [] in
  let exps_reused = ref 0 and funcs_reused = ref 0 in
  for fidx = 0 to nfuncs - 1 do
    match Store.lookup_profile store (key_of fidx) with
    | Some p when p.p_exps = Array.length parts.(fidx) ->
        profiles.(fidx) <- Some p;
        incr funcs_reused;
        exps_reused := !exps_reused + p.p_exps
    | Some _ (* stale size: treat as a miss *) | None ->
        todo := fidx :: !todo
  done;
  let todo = Array.of_list (List.rev !todo) in
  (* one slot per (function, chunk); merged in order afterwards so the
     result is independent of worker scheduling *)
  let tasks = ref [] in
  let chunk_slots =
    Array.map
      (fun fidx ->
        let chunks = Array.of_list (chunks_of parts.(fidx) shard_size) in
        let slots =
          Array.make (Array.length chunks) Core.Campaign.empty_profile
        in
        Array.iteri
          (fun ci chunk ->
            tasks :=
              (fun ~worker:_ ->
                span_if_tracing
                  (Printf.sprintf "profile %s/%d %s"
                     (funcs.(fidx) : Ir.Func.t).f_name ci label)
                @@ fun () ->
                slots.(ci) <-
                  Core.Campaign.run_profile w spec ~seed ~indices:chunk)
              :: !tasks)
          chunks;
        (fidx, slots))
      todo
  in
  let tasks = Array.of_list (List.rev !tasks) in
  if Array.length tasks > 0 then
    ignore (Core.Workload.ensure_checkpoints w : Vm.Checkpoint.set option);
  Pool.run ~jobs tasks;
  Array.iter
    (fun (fidx, slots) ->
      let p =
        Array.fold_left Core.Campaign.merge_profiles
          Core.Campaign.empty_profile slots
      in
      Store.add_profile store (key_of fidx) p;
      profiles.(fidx) <- Some p)
    chunk_slots;
  let exps_recomputed = n - !exps_reused in
  Obs.Metrics.add m_reuse !exps_reused;
  Obs.Metrics.add m_recompute exps_recomputed;
  Obs.Metrics.add m_funcs_reused !funcs_reused;
  Obs.Metrics.add m_funcs_recomputed (Array.length todo);
  let result =
    Core.Campaign.result_of_profiles ~workload_name:w.name spec ~n ~seed
      (Array.to_list profiles
      |> List.map (function Some p -> p | None -> assert false))
  in
  ( result,
    {
      funcs_total = nfuncs;
      funcs_reused = !funcs_reused;
      funcs_recomputed = Array.length todo;
      exps_reused = !exps_reused;
      exps_recomputed;
    } )
  end
