(* The canonical (lo, hi) shard tiling of [0, n).  Shared by the fixed-N
   engine and the adaptive sampler: boundaries depend only on
   (n, shard_size), and a prefix of the tiling up to any boundary b is
   itself [tile ~n:b ~shard_size] — the property that makes adaptive
   prefixes byte-identical to fixed-N campaigns. *)

let tile ~n ~shard_size =
  if n <= 0 then invalid_arg "Engine.shards_of: n must be positive";
  let s = max 1 shard_size in
  let rec go lo acc =
    if lo >= n then List.rev acc else go (lo + s) ((lo, min n (lo + s)) :: acc)
  in
  go 0 []
