(** Estimation helpers for fault-injection campaigns.

    The paper reports outcome percentages with 95% confidence intervals
    (§III-E).  [Proportion] provides the binomial estimators used for every
    table and figure; [Histogram] accumulates the activated-error
    distributions behind Fig. 3; [Running] is a small streaming
    mean/variance accumulator for the performance benches. *)

module Proportion : sig
  type ci = {
    p : float;  (** point estimate, in \[0, 1\] *)
    lo : float;  (** lower bound of the interval, clamped to \[0, 1\] *)
    hi : float;  (** upper bound of the interval, clamped to \[0, 1\] *)
  }

  val z95 : float
  (** 1.959964..., the two-sided 95% normal quantile. *)

  val wald : ?z:float -> successes:int -> trials:int -> unit -> ci
  (** Normal-approximation interval, the estimator used in the paper's
      error bars.  Requires [trials > 0]. *)

  val wilson : ?z:float -> successes:int -> trials:int -> unit -> ci
  (** Wilson score interval; better behaved at small [trials] or extreme
      proportions.  Requires [trials > 0]. *)

  val half_width : ci -> float
  (** [(hi - lo) / 2], the ± value quoted in the paper. *)

  val percent : ci -> float * float * float
  (** [(p, lo, hi)] scaled to percentages. *)

  val plan_half_width : ?z:float -> p:float -> int -> float
  (** Unclamped Wilson half-width at a real-valued proportion [p] and
      trial count; strictly decreasing in the trial count for fixed [p].
      The planning-side analogue of [half_width (wilson ...)]. *)

  val needed_trials : ?z:float -> p:float -> half_width:float -> unit -> int
  (** Least [n] such that [plan_half_width ~p n <= half_width] — the
      sample size at which a proportion near [p] reaches the requested
      Wilson CI half-width.  Inverse of [plan_half_width] in the sense
      that [plan_half_width ~p (needed_trials ~p ~half_width ())
      <= half_width] while any smaller [n] is still too wide.
      Requires [p] in \[0, 1\] and [half_width > 0]. *)

  val met : ci -> target:float -> bool
  (** Stopping rule: has this interval's half-width reached [target]? *)
end

module Histogram : sig
  type t
  (** Counts over small non-negative integer keys. *)

  val create : unit -> t
  val add : t -> int -> unit

  val add_count : t -> int -> int -> unit
  (** [add_count t key c] records [c] occurrences of [key] at once; how
      shard histograms are folded back together after a parallel run. *)

  val count : t -> int -> int
  val total : t -> int

  val max_key : t -> int
  (** Largest key with a non-zero count; -1 when empty. *)

  val range_count : t -> lo:int -> hi:int -> int
  (** Total count over the inclusive key range. *)

  val merge : t -> t -> t
  (** Pointwise sum; inputs are unchanged. *)

  val to_alist : t -> (int * int) list
  (** Key-sorted (key, count) pairs, zero counts omitted. *)
end

module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 for fewer than two observations. *)

  val stddev : t -> float
end
