module Proportion = struct
  type ci = { p : float; lo : float; hi : float }

  let z95 = 1.959963984540054

  let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

  let wald ?(z = z95) ~successes ~trials () =
    if trials <= 0 then invalid_arg "Proportion.wald: trials must be positive";
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let half = z *. sqrt (p *. (1. -. p) /. n) in
    { p; lo = clamp01 (p -. half); hi = clamp01 (p +. half) }

  let wilson ?(z = z95) ~successes ~trials () =
    if trials <= 0 then
      invalid_arg "Proportion.wilson: trials must be positive";
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let centre = (p +. (z2 /. (2. *. n))) /. denom in
    let half =
      z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) /. denom
    in
    { p; lo = clamp01 (centre -. half); hi = clamp01 (centre +. half) }

  let half_width ci = (ci.hi -. ci.lo) /. 2.
  let percent ci = (100. *. ci.p, 100. *. ci.lo, 100. *. ci.hi)

  (* Wilson half-width at a real-valued proportion [p] and trial count
     [n]; the unclamped analogue of [half_width (wilson ...)].  Strictly
     decreasing in [n] for fixed [p], which is what makes the planner's
     binary search and the adaptive engine's stopping rule sound. *)
  let plan_half_width ?(z = z95) ~p n =
    let n = float_of_int n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) /. denom

  let needed_trials ?(z = z95) ~p ~half_width () =
    if not (Float.is_finite p) || p < 0. || p > 1. then
      invalid_arg "Proportion.needed_trials: p must be in [0, 1]";
    if not (half_width > 0.) then
      invalid_arg "Proportion.needed_trials: half_width must be positive";
    if plan_half_width ~z ~p 1 <= half_width then 1
    else begin
      (* Exponential bracket then bisect: find the least n with
         hw(n) <= half_width.  hw is monotone decreasing in n. *)
      let hi = ref 2 in
      while plan_half_width ~z ~p !hi > half_width && !hi < max_int / 2 do
        hi := !hi * 2
      done;
      let lo = ref (!hi / 2) and hi = ref !hi in
      while !hi - !lo > 1 do
        let mid = !lo + ((!hi - !lo) / 2) in
        if plan_half_width ~z ~p mid <= half_width then hi := mid
        else lo := mid
      done;
      !hi
    end

  let met ci ~target = half_width ci <= target
end

module Histogram = struct
  type t = { mutable counts : int array; mutable total : int }

  let create () = { counts = Array.make 16 0; total = 0 }

  let ensure t key =
    let len = Array.length t.counts in
    if key >= len then begin
      let counts = Array.make (max (key + 1) (2 * len)) 0 in
      Array.blit t.counts 0 counts 0 len;
      t.counts <- counts
    end

  let add t key =
    if key < 0 then invalid_arg "Histogram.add: negative key";
    ensure t key;
    t.counts.(key) <- t.counts.(key) + 1;
    t.total <- t.total + 1

  let add_count t key count =
    if key < 0 then invalid_arg "Histogram.add_count: negative key";
    if count < 0 then invalid_arg "Histogram.add_count: negative count";
    if count > 0 then begin
      ensure t key;
      t.counts.(key) <- t.counts.(key) + count;
      t.total <- t.total + count
    end

  let count t key =
    if key < 0 || key >= Array.length t.counts then 0 else t.counts.(key)

  let total t = t.total

  let max_key t =
    let rec scan i = if i < 0 then -1 else if t.counts.(i) > 0 then i else scan (i - 1) in
    scan (Array.length t.counts - 1)

  let range_count t ~lo ~hi =
    let acc = ref 0 in
    for k = max lo 0 to min hi (Array.length t.counts - 1) do
      acc := !acc + t.counts.(k)
    done;
    !acc

  let merge a b =
    let t = create () in
    let keep src =
      Array.iteri
        (fun k c ->
          if c > 0 then begin
            ensure t k;
            t.counts.(k) <- t.counts.(k) + c;
            t.total <- t.total + c
          end)
        src.counts
    in
    keep a;
    keep b;
    t

  let to_alist t =
    let acc = ref [] in
    for k = Array.length t.counts - 1 downto 0 do
      if t.counts.(k) > 0 then acc := (k, t.counts.(k)) :: !acc
    done;
    !acc
end

module Running = struct
  (* Welford's online algorithm. *)
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let n t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
end
