(* Parallel campaigns with a crash-tolerant result store.

   Run with:  dune exec examples/parallel.exe

   The engine shards a campaign into fixed [lo, hi) ranges and executes
   them on a pool of worker domains.  Each experiment draws its seed from
   `Prng.split_at base i`, so the merged result is bit-identical at any
   worker count.  With a store attached, finished shards are appended
   durably as they complete: a killed run resumes where it stopped, and a
   later run with the same (program, spec, n, seed) reuses the records. *)

let () =
  let entry = Option.get (Bench_suite.Registry.find "spmv") in
  let workload =
    Core.Workload.make ~name:entry.name ~expected_output:(entry.reference ())
      (entry.build ())
  in
  let spec = Core.Spec.multi Core.Technique.Read ~max_mbf:4 ~win:(Fixed 10) in
  let n = 400 and seed = 42L in

  (* 1. Sequential reference. *)
  let seq = Core.Campaign.run workload spec ~n ~seed in

  (* 2. Same campaign on 4 worker domains: identical result, by design. *)
  let par = Engine.run_campaign ~jobs:4 workload spec ~n ~seed in
  Printf.printf "4 domains vs sequential: %s\n"
    (if Core.Campaign.equal_result seq par then "bit-identical" else "DIFFER");

  (* 3. Attach a store.  The first run executes and persists every shard;
        the second finds them all and executes nothing. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "onebit-example" in
  let store = Store.open_dir dir in
  let r1, s1 = Engine.run_campaign_stats ~jobs:4 ~store workload spec ~n ~seed in
  let r2, s2 = Engine.run_campaign_stats ~jobs:4 ~store workload spec ~n ~seed in
  Printf.printf "first run:  %d shards executed, %d from store\n"
    s1.shards_executed s1.shards_from_store;
  Printf.printf "second run: %d shards executed, %d from store\n"
    s2.shards_executed s2.shards_from_store;
  Printf.printf "stored result: %s\n"
    (if Core.Campaign.equal_result seq r1 && Core.Campaign.equal_result seq r2
     then "bit-identical" else "DIFFER");

  (* 4. A memoising runner whose misses run on the engine — the same
        object `bench/main.exe` hands to every analysis. *)
  let runner = Engine.runner ~n ~seed ~jobs:4 ~store () in
  ignore (Core.Runner.campaign runner workload spec);
  ignore (Core.Runner.campaign runner workload spec);
  print_endline (Core.Runner.pp_stats (Core.Runner.cache_stats runner));
  Store.close store;
  Printf.printf "sdc: %d/%d (%.1f%%)\n" seq.sdc seq.n (Core.Campaign.sdc_pct seq)
