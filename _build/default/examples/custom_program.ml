(* Bring your own program: write IR with the builder, then measure it.

   Run with:  dune exec examples/custom_program.exe

   The library is not tied to the bundled benchmarks — anything expressible
   in the IR can be studied.  This example implements a tiny fixed-point
   moving-average filter with a parity check over its own output (a simple
   software error-detection mechanism) and measures how the check changes
   the outcome distribution under single and double bit-flips: the use case
   the paper names for error-resilience measurement, evaluating
   software-implemented error handling. *)

module B = Ir.Build

let samples = Bench_suite.Util.gen ~seed:5 ~n:64 ~bound:1024

(* The filter outputs each 4-sample moving average; when [checked] it also
   accumulates a parity word over everything it emits and calls abort() at
   the end if the recomputed parity disagrees — turning would-be SDCs into
   detections. *)
let build_filter ~checked () =
  let m = B.create () in
  B.global_i32s m "samples" samples;
  B.global_zeros m "out" (64 * 4);
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let acc = B.local_init f I32 (B.ci 0) in
      let parity = B.local_init f I32 (B.ci 0) in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 64) (fun i ->
          let p = B.gep f ~base:(B.glob "samples") ~index:i ~scale:4 in
          let v = B.load f I32 p in
          B.set f acc (B.add f I32 (B.r acc) v);
          B.if_then f (B.sge f I32 i (B.ci 4)) (fun () ->
              let old =
                B.load f I32
                  (B.gep f ~base:(B.glob "samples")
                     ~index:(B.sub f I32 i (B.ci 4))
                     ~scale:4)
              in
              B.set f acc (B.sub f I32 (B.r acc) old));
          let avg = B.sdiv f I32 (B.r acc) (B.ci 4) in
          let op = B.gep f ~base:(B.glob "out") ~index:i ~scale:4 in
          B.store f I32 ~value:avg ~addr:op;
          B.output f I32 avg;
          if checked then B.set f parity (B.bxor f I32 (B.r parity) avg));
      if checked then begin
        (* recompute parity from the stored outputs and compare *)
        let check = B.local_init f I32 (B.ci 0) in
        B.for_ f ~from_:(B.ci 0) ~below:(B.ci 64) (fun i ->
            let op = B.gep f ~base:(B.glob "out") ~index:i ~scale:4 in
            B.set f check (B.bxor f I32 (B.r check) (B.load f I32 op)));
        B.if_then f (B.ne f I32 (B.r check) (B.r parity)) (fun () ->
            B.abort_ f)
      end);
  B.finish m

let measure name modl =
  let w = Core.Workload.make ~name modl in
  Printf.printf "%s: golden %d dyn instrs\n" name w.golden.dyn_count;
  List.iter
    (fun (label, spec) ->
      let r = Core.Campaign.run w spec ~n:400 ~seed:3L in
      Printf.printf
        "  %-14s benign=%3d detected=%3d hang=%2d no-out=%2d sdc=%3d (%.1f%%)\n"
        label r.benign r.detected r.hang r.no_output r.sdc
        (Core.Campaign.sdc_pct r))
    [
      ("single/read", Core.Spec.single Read);
      ("single/write", Core.Spec.single Write);
      ("double/write", Core.Spec.multi Write ~max_mbf:2 ~win:(Fixed 1));
    ];
  print_newline ()

let () =
  measure "filter (unchecked)" (build_filter ~checked:false ());
  measure "filter (parity-checked)" (build_filter ~checked:true ());
  print_endline
    "The parity check converts part of the SDC mass into detections (abort\n\
     traps) for flips that corrupt the emitted averages after the parity\n\
     was accumulated — the coverage measurement the paper's fault models\n\
     are built to support."
