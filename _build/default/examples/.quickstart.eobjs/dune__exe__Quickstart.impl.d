examples/quickstart.ml: Bench_suite Core Option Printf Stats String
