examples/single_vs_multi.ml: Bench_suite Core List Option Report
