examples/quickstart.mli:
