examples/hardening.mli:
