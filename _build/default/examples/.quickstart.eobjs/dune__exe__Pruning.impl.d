examples/pruning.ml: Array Bench_suite Core List Option Printf Prng
