examples/single_vs_multi.mli:
