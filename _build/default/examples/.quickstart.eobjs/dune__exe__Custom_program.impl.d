examples/custom_program.ml: Bench_suite Core Ir List Printf
