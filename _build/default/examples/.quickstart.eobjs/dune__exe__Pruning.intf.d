examples/pruning.mli:
