examples/hardening.ml: Bench_suite Core Harden List Option Printf Report
