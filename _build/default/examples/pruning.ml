(* Error-space pruning via location sensitivity (the paper's RQ5 / Fig. 6).

   Run with:  dune exec examples/pruning.exe

   1. Run a single bit-flip campaign, remembering each experiment's
      injection location (candidate ordinal, operand slot, bit) and
      outcome.
   2. Partition locations into Detection / Benign / SDC classes.
   3. Replay Detection and Benign locations under a multi-bit cluster and
      count how many turn into SDCs (Transitions I and II of Fig. 6).

   Transition I is rare, so multi-bit campaigns can skip every location
   already covered as Detection or SDC by the cheap single-bit campaign —
   that is the paper's third pruning rule. *)

let program = "qsort"
let n = 600

let () =
  let entry = Option.get (Bench_suite.Registry.find program) in
  let w =
    Core.Workload.make ~name:program ~expected_output:(entry.reference ())
      (entry.build ())
  in
  let tech = Core.Technique.Write in
  let single =
    Core.Campaign.run ~keep_experiments:true w (Core.Spec.single tech) ~n
      ~seed:11L
  in
  let locations pred =
    Array.to_list single.experiments
    |> List.filter_map (fun (e : Core.Experiment.t) ->
           match e.first with
           | Some inj when pred e.outcome ->
               Some (inj.inj_cand, inj.inj_slot, inj.inj_bit)
           | Some _ | None -> None)
  in
  let detection = locations Core.Outcome.is_detection in
  let benign = locations (function Core.Outcome.Benign -> true | _ -> false) in
  let sdc = locations Core.Outcome.is_sdc in
  Printf.printf "single bit-flip campaign on %s (%s, n=%d):\n" program
    (Core.Technique.to_string tech) n;
  Printf.printf "  detection locations: %d\n" (List.length detection);
  Printf.printf "  benign locations:    %d\n" (List.length benign);
  Printf.printf "  sdc locations:       %d\n\n" (List.length sdc);

  (* Replay under the multi-bit model (3 flips, 1 instruction apart: the
     kind of cluster Table III finds for inject-on-write). *)
  let multi = Core.Spec.multi tech ~max_mbf:3 ~win:(Fixed 1) in
  let replay locations =
    let base = Prng.of_seed 1234L in
    let sdc_count = ref 0 in
    List.iteri
      (fun i first ->
        let e = Core.Experiment.run_at w multi ~first (Prng.split_at base i) in
        if Core.Outcome.is_sdc e.outcome then incr sdc_count)
      locations;
    !sdc_count
  in
  let t1 = replay detection and t2 = replay benign in
  let pct a b = if b = 0 then 0. else 100. *. float_of_int a /. float_of_int b in
  Printf.printf "replaying under %s:\n" (Core.Spec.label multi);
  Printf.printf "  Transition I  (Detection -> SDC): %d/%d = %.1f%%\n" t1
    (List.length detection)
    (pct t1 (List.length detection));
  Printf.printf "  Transition II (Benign -> SDC):    %d/%d = %.1f%%\n" t2
    (List.length benign)
    (pct t2 (List.length benign));
  Printf.printf
    "\npruning rule: seed multi-bit experiments only at Benign locations —\n\
     here that skips %d of %d locations (%.0f%%) at the cost of the few\n\
     Transition-I SDCs above.\n"
    (List.length detection + List.length sdc)
    n
    (pct (List.length detection + List.length sdc) n)
