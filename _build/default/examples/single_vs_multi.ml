(* Single vs. multiple bit-flips: a miniature of the paper's Figures 4/5.

   Run with:  dune exec examples/single_vs_multi.exe

   For three programs and both injection techniques, compares the SDC
   percentage of the single bit-flip model against multi-bit clusters
   (max-MBF = 2, 3 and 10) at a small window.  The headline result of the
   paper shows up directly: the single-bit model is usually pessimistic or
   close, and where it is not (e.g. crc32), two or three errors already
   reach the worst case while ten errors crash too often to add SDCs. *)

let programs = [ "crc32"; "qsort"; "sha" ]
let n = 400

let () =
  let header =
    [ "program"; "technique"; "single"; "m=2"; "m=3"; "m=10" ]
  in
  let rows =
    List.concat_map
      (fun name ->
        let entry = Option.get (Bench_suite.Registry.find name) in
        let w =
          Core.Workload.make ~name ~expected_output:(entry.reference ())
            (entry.build ())
        in
        List.map
          (fun tech ->
            let sdc spec =
              let r = Core.Campaign.run w spec ~n ~seed:7L in
              Report.Table.pct (Core.Campaign.sdc_pct r)
            in
            [
              name;
              (match tech with Core.Technique.Read -> "read" | Write -> "write");
              sdc (Core.Spec.single tech);
              sdc (Core.Spec.multi tech ~max_mbf:2 ~win:(Fixed 4));
              sdc (Core.Spec.multi tech ~max_mbf:3 ~win:(Fixed 4));
              sdc (Core.Spec.multi tech ~max_mbf:10 ~win:(Fixed 4));
            ])
          Core.Technique.all)
      programs
  in
  print_string (Report.Table.render ~header rows);
  print_endline
    "\nSDC% by fault model (n=400 per cell, win-size=4 for multi-bit)."
