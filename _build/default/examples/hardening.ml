(* Hardening a program with SWIFT-style duplication and measuring its
   coverage — the paper's named future-work experiment.

   Run with:  dune exec examples/hardening.exe

   Harden.Swift.apply duplicates every computation into shadow registers and
   inserts Guard checks at stores, loads, outputs, calls, branches and
   returns.  Fault-free behaviour is unchanged (the hardened golden run
   still matches the native reference); under injection, most would-be
   SDCs become guard-violation detections.  Comparing single- against
   multi-bit campaigns shows whether the single-bit model is an adequate
   proxy when evaluating such a mechanism. *)

let program = "sha"
let n = 400

let () =
  let entry = Option.get (Bench_suite.Registry.find program) in
  let base_modl = entry.build () in
  let hard_modl = Harden.Swift.apply ~level:`Full base_modl in
  Printf.printf "static instruction overhead: x%.2f\n"
    (Harden.Swift.static_overhead base_modl hard_modl);
  let expected = entry.reference () in
  let base = Core.Workload.make ~name:program ~expected_output:expected base_modl in
  let hard =
    Core.Workload.make ~name:(program ^ "+swift") ~expected_output:expected
      hard_modl
  in
  Printf.printf "dynamic overhead: x%.2f (%d -> %d instructions)\n\n"
    (float_of_int hard.golden.dyn_count /. float_of_int base.golden.dyn_count)
    base.golden.dyn_count hard.golden.dyn_count;
  let specs =
    [
      ("single/write", Core.Spec.single Write);
      ("m=2,w=1/write", Core.Spec.multi Write ~max_mbf:2 ~win:(Fixed 1));
      ("m=3,w=1/write", Core.Spec.multi Write ~max_mbf:3 ~win:(Fixed 1));
    ]
  in
  let row w =
    List.map
      (fun (_, spec) ->
        let r = Core.Campaign.run w spec ~n ~seed:13L in
        Printf.sprintf "%.1f" (Core.Campaign.sdc_pct r))
      specs
  in
  let header = "workload" :: List.map fst specs in
  print_string
    (Report.Table.render ~header
       [ (program :: row base); ((program ^ "+swift") :: row hard) ]);
  Printf.printf
    "\nSDC%% per fault model (n=%d).  Duplication-based checking turns most\n\
     SDCs into guard-violation detections under both fault models; what\n\
     remains are faults that strike after the last check of a value (e.g.\n\
     in the output instruction's own operand read).\n"
    n
