(* Quickstart: measure a program's error resilience with the single
   bit-flip model.

   Run with:  dune exec examples/quickstart.exe

   The five steps below are the whole public API surface a basic user
   needs: pick a benchmark, build its workload (golden run included),
   choose a fault model, run a campaign, read the outcome counts. *)

let () =
  (* 1. Pick one of the 15 bundled benchmark programs. *)
  let entry = Option.get (Bench_suite.Registry.find "crc32") in

  (* 2. Build the workload: loads the IR, runs the fault-free execution and
        checks it against the native reference implementation. *)
  let workload =
    Core.Workload.make ~name:entry.name ~expected_output:(entry.reference ())
      (entry.build ())
  in
  Printf.printf "golden run: %d dynamic instructions, %d output bytes\n"
    workload.golden.dyn_count
    (String.length workload.golden.output);

  (* 3. Choose a fault model: single bit-flips, inject-on-read. *)
  let spec = Core.Spec.single Core.Technique.Read in

  (* 4. Run a 500-experiment campaign.  Everything is deterministic in the
        seed, so this prints the same numbers on every machine. *)
  let r = Core.Campaign.run workload spec ~n:500 ~seed:42L in

  (* 5. Read the results. *)
  let ci = Core.Campaign.sdc_ci r in
  Printf.printf "outcomes over %d injections into live registers:\n" r.n;
  Printf.printf "  benign:      %4d\n" r.benign;
  Printf.printf "  hw-detected: %4d\n" r.detected;
  Printf.printf "  hang:        %4d\n" r.hang;
  Printf.printf "  no-output:   %4d\n" r.no_output;
  Printf.printf "  SDC:         %4d   (%.1f%% ±%.1f)\n" r.sdc
    (Core.Campaign.sdc_pct r)
    (100. *. Stats.Proportion.half_width ci);
  Printf.printf "error resilience (1 - P(SDC)): %.1f%%\n"
    (100. -. Core.Campaign.sdc_pct r)
