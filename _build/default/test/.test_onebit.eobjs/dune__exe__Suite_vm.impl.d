test/suite_vm.ml: Alcotest Array Ir List String Thelpers Vm
