test/suite_prng.ml: Alcotest Array List Prng QCheck QCheck_alcotest
