test/test_onebit.mli:
