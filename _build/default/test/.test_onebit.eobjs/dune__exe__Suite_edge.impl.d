test/suite_edge.ml: Alcotest Bench_suite Bytes Char Core Filename In_channel Int64 Ir List Option String Sys Thelpers Vm
