test/suite_bench.ml: Alcotest Array Bench_suite Bytes Char Int32 Ir List Option String Thelpers Vm
