test/suite_severity.ml: Alcotest Analysis Core Lazy List
