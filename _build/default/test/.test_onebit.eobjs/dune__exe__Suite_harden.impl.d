test/suite_harden.ml: Alcotest Analysis Bench_suite Core Float Harden Ir List Option Result String Thelpers Vm
