test/suite_parse.ml: Alcotest Bench_suite Harden Ir List Option Printf String Thelpers Vm
