test/suite_analysis.ml: Alcotest Analysis Core Float Lazy List Stats
