test/thelpers.ml: Alcotest Bytes Format Int32 Int64 Ir Option String Vm
