test/suite_core.ml: Alcotest Array Bench_suite Core Float Int64 Ir Lazy List Option Prng QCheck QCheck_alcotest Stats String Vm
