test/suite_ir.ml: Alcotest Array Func Instr Ir List QCheck QCheck_alcotest Result Thelpers Validate
