test/suite_targets.ml: Alcotest Analysis Core Ir Lazy List
