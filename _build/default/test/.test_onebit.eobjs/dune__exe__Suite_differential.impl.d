test/suite_differential.ml: Array Buffer Float Int64 Ir List QCheck QCheck_alcotest String Vm
