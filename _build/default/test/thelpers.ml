(* Shared helpers for the test suites. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* Build, load and run a one-function module in one step. *)
let run_main ?budget build_body =
  let m = Ir.Build.create () in
  Ir.Build.func m "main" ~params:[] ~ret:None build_body;
  let prog = Vm.Program.load (Ir.Build.finish m) in
  Vm.Exec.run ?hooks:None ~budget:(Option.value budget ~default:Vm.Exec.golden_budget) prog

(* Little-endian encoders matching the VM's output stream format. *)
let le32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Bytes.to_string b

let le64_of_float x =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float x);
  Bytes.to_string b

let status_testable =
  let pp fmt (s : Vm.Exec.status) =
    Format.pp_print_string fmt
      (match s with
      | Finished -> "finished"
      | Trapped t -> "trapped:" ^ Vm.Trap.to_string t
      | Hung -> "hung")
  in
  Alcotest.testable pp ( = )
