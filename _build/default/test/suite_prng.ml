(* Unit and property tests for the deterministic PRNG. *)

let test_determinism () =
  let a = Prng.of_seed 42L and b = Prng.of_seed 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.of_seed 1L and b = Prng.of_seed 2L in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_zero_seed_ok () =
  let g = Prng.of_seed 0L in
  let x = Prng.next_int64 g and y = Prng.next_int64 g in
  Alcotest.(check bool) "non-constant" true (x <> y)

let test_copy_replays () =
  let g = Prng.of_seed 7L in
  ignore (Prng.next_int64 g);
  let c = Prng.copy g in
  let expected = List.init 10 (fun _ -> Prng.next_int64 c) in
  let actual = List.init 10 (fun _ -> Prng.next_int64 g) in
  Alcotest.(check (list int64)) "copy replays" expected actual

let test_split_independent () =
  let g = Prng.of_seed 5L in
  let child = Prng.split g in
  let a = Prng.next_int64 child and b = Prng.next_int64 g in
  Alcotest.(check bool) "child differs from parent" true (a <> b)

let test_split_at_pure () =
  let g = Prng.of_seed 9L in
  let c1 = Prng.split_at g 3 and c2 = Prng.split_at g 3 in
  Alcotest.(check int64) "same child stream" (Prng.next_int64 c1)
    (Prng.next_int64 c2);
  let c3 = Prng.split_at g 4 in
  let c1' = Prng.split_at g 3 in
  ignore (Prng.next_int64 c1');
  Alcotest.(check bool) "distinct indices distinct streams" true
    (Prng.next_int64 c3 <> Prng.next_int64 (Prng.split_at g 3))

let test_int_in_range_bounds () =
  let g = Prng.of_seed 11L in
  for _ = 1 to 1000 do
    let v = Prng.int_in_range g ~lo:2 ~hi:10 in
    Alcotest.(check bool) "in [2,10]" true (v >= 2 && v <= 10)
  done

let test_int_rejects_bad_bound () =
  let g = Prng.of_seed 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let prop_int_bounds =
  QCheck.Test.make ~name:"int stays in [0,bound)" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.of_seed seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_distinct: distinct, in range, size k" ~count:300
    QCheck.(triple int64 (int_range 0 64) (int_range 1 64))
    (fun (seed, k0, n) ->
      let k = min k0 n in
      let g = Prng.of_seed seed in
      let s = Prng.sample_distinct g ~k ~n in
      List.length s = k
      && List.for_all (fun x -> x >= 0 && x < n) s
      && List.length (List.sort_uniq compare s) = k)

let prop_int_uniformish =
  QCheck.Test.make ~name:"int roughly uniform over 4 buckets" ~count:20
    QCheck.int64 (fun seed ->
      let g = Prng.of_seed seed in
      let buckets = Array.make 4 0 in
      let n = 4000 in
      for _ = 1 to n do
        let v = Prng.int g 4 in
        buckets.(v) <- buckets.(v) + 1
      done;
      Array.for_all (fun c -> c > (n / 4) - 300 && c < (n / 4) + 300) buckets)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair int64 (list small_int))
    (fun (seed, l) ->
      let g = Prng.of_seed seed in
      let a = Array.of_list l in
      Prng.shuffle g a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let suites =
  [
    ( "prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "zero seed ok" `Quick test_zero_seed_ok;
        Alcotest.test_case "copy replays" `Quick test_copy_replays;
        Alcotest.test_case "split independent" `Quick test_split_independent;
        Alcotest.test_case "split_at pure" `Quick test_split_at_pure;
        Alcotest.test_case "int_in_range bounds" `Quick test_int_in_range_bounds;
        Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
        QCheck_alcotest.to_alcotest prop_int_bounds;
        QCheck_alcotest.to_alcotest prop_sample_distinct;
        QCheck_alcotest.to_alcotest prop_int_uniformish;
        QCheck_alcotest.to_alcotest prop_shuffle_permutation;
      ] );
  ]
