(* Tests for the IR text parser: round-trips, error reporting, and
   behavioural equivalence of reparsed modules. *)

let roundtrip (e : Bench_suite.Desc.t) () =
  let m = e.build () in
  let text = Ir.Pp.modl m in
  match Ir.Parse.modl text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok m2 ->
      Alcotest.(check string) "print . parse . print is stable" text
        (Ir.Pp.modl m2);
      let r = Vm.Exec.run ~budget:Vm.Exec.golden_budget (Vm.Program.load m2) in
      Alcotest.(check bool) "reparsed module runs to reference output" true
        (String.equal r.output (e.reference ()))

let test_small_module () =
  let text =
    {|
@data = global [8 x i8] 0x0a00000014000000

define i32 @double(i32 %0) {
entry0:
  %1 = add i32 %0, %0
  ret %1
}

define void @main() {
entry0:
  %0 = load i32, @data
  %1 = call @double(%0)
  output i32 %1
  ret void
}
|}
  in
  let m = Ir.Parse.modl_exn text in
  let r = Vm.Exec.run ~budget:1000 (Vm.Program.load m) in
  Alcotest.check Thelpers.status_testable "runs" Finished r.status;
  Alcotest.(check string) "10 doubled" (Thelpers.le32 20) r.output

let test_control_flow_and_floats () =
  let text =
    {|
define void @main() {
entry0:
  %0 = mov f64 0x1.8p+1
  %1 = fmul f64 %0, 2.
  %2 = fcmp ogt f64 %1, 5.
  br %2, %yes1, %no2
yes1:
  output f64 %1
  ret void
no2:
  abort
  ret void
}
|}
  in
  let m = Ir.Parse.modl_exn text in
  let r = Vm.Exec.run ~budget:1000 (Vm.Program.load m) in
  Alcotest.check Thelpers.status_testable "takes the yes branch" Finished
    r.status;
  Alcotest.(check string) "3.0 * 2.0" (Thelpers.le64_of_float 6.0) r.output

let expect_error text fragment =
  match Ir.Parse.modl text with
  | Ok _ -> Alcotest.failf "expected parse error mentioning %S" fragment
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" msg fragment)
        true
        (Thelpers.contains msg fragment)

let test_errors () =
  expect_error "define void @f() {\nentry0:\n  ret void\n" "unterminated";
  expect_error "define void @f() {\nentry0:\n  %0 = frobnicate i32 1, 2\n  ret void\n}"
    "cannot parse instruction";
  expect_error "define void @f() {\nentry0:\n  br %nowhere9\n}" "unknown block label";
  expect_error "define void @f() {\n  output i32 1\n}" "outside a block";
  expect_error "xyzzy" "unexpected line";
  (* type errors are caught by validation after parsing *)
  expect_error
    "define void @f() {\nentry0:\n  %0 = add i32 1, 2\n  output f64 %0\n  ret void\n}"
    "validation"

let test_guard_roundtrip () =
  let m0 = Ir.Build.create () in
  Ir.Build.func m0 "main" ~params:[] ~ret:None (fun f ->
      let x = Ir.Build.add f I32 (Ir.Build.ci 1) (Ir.Build.ci 1) in
      Ir.Build.guard f I32 x (Ir.Build.ci 2);
      Ir.Build.output f I32 x);
  let m = Ir.Build.finish m0 in
  let text = Ir.Pp.modl m in
  let m2 = Ir.Parse.modl_exn text in
  Alcotest.(check string) "guard survives round-trip" text (Ir.Pp.modl m2)

let test_hardened_roundtrip () =
  (* the hardened modules exercise Guard-heavy code paths *)
  let e = Option.get (Bench_suite.Registry.find "spmv") in
  let hard = Harden.Swift.apply (e.build ()) in
  let text = Ir.Pp.modl hard in
  let m2 = Ir.Parse.modl_exn text in
  Alcotest.(check string) "hardened module round-trips" text (Ir.Pp.modl m2);
  let r = Vm.Exec.run ~budget:Vm.Exec.golden_budget (Vm.Program.load m2) in
  Alcotest.(check bool) "and still runs to reference" true
    (String.equal r.output (e.reference ()))

let suites =
  [
    ( "parse",
      List.map
        (fun (e : Bench_suite.Desc.t) ->
          Alcotest.test_case (e.name ^ ": round-trip") `Quick (roundtrip e))
        Bench_suite.Registry.all
      @ [
          Alcotest.test_case "small module" `Quick test_small_module;
          Alcotest.test_case "control flow and floats" `Quick
            test_control_flow_and_floats;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "guard round-trip" `Quick test_guard_roundtrip;
          Alcotest.test_case "hardened round-trip" `Quick
            test_hardened_roundtrip;
        ] );
  ]
