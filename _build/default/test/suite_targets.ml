(* Tests for the register-class sensitivity analysis. *)

let study = lazy (Analysis.Study.make ~n:60 ~seed:5L ~programs:[ "dijkstra"; "crc32" ] ())

let test_cls_of_ty () =
  let open Analysis.Targets in
  Alcotest.(check string) "ptr" "address" (cls_name (cls_of_ty Ptr));
  Alcotest.(check string) "i1" "condition" (cls_name (cls_of_ty I1));
  Alcotest.(check string) "f64" "float-data" (cls_name (cls_of_ty F64));
  List.iter
    (fun ty ->
      Alcotest.(check string) "int" "int-data"
        (cls_name (cls_of_ty ty)))
    [ Ir.Ty.I8; I16; I32; I64 ]

let test_rows_account_for_all_experiments () =
  let s = Lazy.force study in
  List.iter
    (fun (program, rows) ->
      let total =
        List.fold_left (fun acc (r : Analysis.Targets.row) -> acc + r.n) 0 rows
      in
      Alcotest.(check int) (program ^ ": rows cover campaign") 60 total;
      List.iter
        (fun (r : Analysis.Targets.row) ->
          Alcotest.(check bool) "counts consistent" true
            (r.sdc + r.detected + r.benign <= r.n
            && r.sdc >= 0 && r.detected >= 0 && r.benign >= 0))
        rows)
    (Analysis.Targets.compute s Core.Technique.Read)

let test_pooled_matches_sum () =
  let s = Lazy.force study in
  let per_prog = Analysis.Targets.compute s Core.Technique.Write in
  let pooled = Analysis.Targets.pooled s Core.Technique.Write in
  let sum_n =
    List.fold_left
      (fun acc (_, rows) ->
        acc + List.fold_left (fun a (r : Analysis.Targets.row) -> a + r.n) 0 rows)
      0 per_prog
  in
  let pooled_n =
    List.fold_left (fun a (r : Analysis.Targets.row) -> a + r.n) 0 pooled
  in
  Alcotest.(check int) "pooled n = sum" sum_n pooled_n

let test_address_mechanism () =
  (* The mechanism the paper leans on: faults in addresses detect far more
     often than faults in integer data.  dijkstra + crc32 at n=60 each give
     enough address injections to see the gap. *)
  let s = Lazy.force study in
  let pooled = Analysis.Targets.pooled s Core.Technique.Read in
  let find cls =
    List.find_opt (fun (r : Analysis.Targets.row) -> r.cls = cls) pooled
  in
  match (find Analysis.Targets.Address, find Analysis.Targets.Integer_data) with
  | Some addr, Some data when addr.n >= 10 ->
      Alcotest.(check bool)
        "addresses detected more than data" true
        (Analysis.Targets.detection_pct addr
        > Analysis.Targets.detection_pct data)
  | _ -> Alcotest.fail "expected address and int-data rows"

let suites =
  [
    ( "targets",
      [
        Alcotest.test_case "class of type" `Quick test_cls_of_ty;
        Alcotest.test_case "rows account for campaign" `Slow
          test_rows_account_for_all_experiments;
        Alcotest.test_case "pooled = sum" `Slow test_pooled_matches_sum;
        Alcotest.test_case "address detection mechanism" `Slow
          test_address_mechanism;
      ] );
  ]
