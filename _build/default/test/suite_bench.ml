(* Tests for the 15-program benchmark suite: every program's golden run
   must match its native reference bit for bit, and the structural
   properties the paper relies on (candidate asymmetry, determinism) must
   hold for each. *)

let run_entry (e : Bench_suite.Desc.t) =
  let prog = Vm.Program.load (e.build ()) in
  Vm.Exec.run ~budget:Vm.Exec.golden_budget prog

let golden_matches_reference (e : Bench_suite.Desc.t) () =
  let r = run_entry e in
  Alcotest.check Thelpers.status_testable "finishes" Finished r.status;
  let expected = e.reference () in
  Alcotest.(check int) "output length" (String.length expected)
    (String.length r.output);
  Alcotest.(check bool) "output matches reference" true
    (String.equal expected r.output)

let structure_sane (e : Bench_suite.Desc.t) () =
  let r = run_entry e in
  Alcotest.(check bool) "read cands > write cands (Table II asymmetry)" true
    (r.read_cands > r.write_cands);
  Alcotest.(check bool) "has work to inject into" true (r.read_cands > 1000);
  Alcotest.(check bool) "dyn count sane" true
    (r.dyn_count > 1000 && r.dyn_count < 1_000_000);
  Alcotest.(check bool) "produces output" true (String.length r.output > 0)

let deterministic (e : Bench_suite.Desc.t) () =
  let a = run_entry e and b = run_entry e in
  Alcotest.(check string) "same output" a.output b.output;
  Alcotest.(check int) "same dyn count" a.dyn_count b.dyn_count;
  Alcotest.(check int) "same read cands" a.read_cands b.read_cands;
  Alcotest.(check int) "same write cands" a.write_cands b.write_cands

let test_registry () =
  Alcotest.(check int) "15 programs" 15 (List.length Bench_suite.Registry.all);
  let names = Bench_suite.Registry.names in
  Alcotest.(check int) "unique names" 15
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "find hit" true
    (Bench_suite.Registry.find "crc32" <> None);
  Alcotest.(check bool) "find miss" true
    (Bench_suite.Registry.find "nope" = None);
  (* the paper's suite split: 11 MiBench + 4 Parboil *)
  let mibench, parboil =
    List.partition
      (fun (e : Bench_suite.Desc.t) -> e.suite = "mibench")
      Bench_suite.Registry.all
  in
  Alcotest.(check int) "11 mibench" 11 (List.length mibench);
  Alcotest.(check int) "4 parboil" 4 (List.length parboil)

let test_util_gen () =
  let a = Bench_suite.Util.gen ~seed:1 ~n:100 ~bound:50 in
  let b = Bench_suite.Util.gen ~seed:1 ~n:100 ~bound:50 in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check bool) "in range" true
    (Array.for_all (fun v -> v >= 0 && v < 50) a);
  let c = Bench_suite.Util.gen ~seed:2 ~n:100 ~bound:50 in
  Alcotest.(check bool) "seed-sensitive" true (a <> c);
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Util.gen: bound must be positive") (fun () ->
      ignore (Bench_suite.Util.gen ~seed:1 ~n:1 ~bound:0))

let test_util_gen_floats () =
  let a = Bench_suite.Util.gen_floats ~seed:3 ~n:200 ~scale:4.0 in
  Alcotest.(check bool) "in range" true
    (Array.for_all (fun v -> v >= -4.0 && v < 4.0) a)

let test_out_encodings_match_vm () =
  (* The reference Out encoders must agree byte-for-byte with the VM's
     Output instruction. *)
  let module B = Ir.Build in
  let m = B.create () in
  B.func m "main" ~params:[] ~ret:None (fun f ->
      B.output f I8 (B.ci 0xAB);
      B.output f I16 (B.ci 0x1234);
      B.output f I32 (B.ci (-7));
      B.output f F64 (B.cf 3.25));
  let r = Vm.Exec.run ~budget:1000 (Vm.Program.load (B.finish m)) in
  let out = Bench_suite.Util.Out.create () in
  Bench_suite.Util.Out.u8 out 0xAB;
  Bench_suite.Util.Out.i16 out 0x1234;
  Bench_suite.Util.Out.i32 out (-7);
  Bench_suite.Util.Out.f64 out 3.25;
  Alcotest.(check string) "encodings agree"
    (Bench_suite.Util.Out.contents out)
    r.output

let test_basicmath_covers_both_branches () =
  (* The cubic solver must exercise both the three-root and one-root
     branches; count the i32 root-count markers in the output. *)
  let e = Option.get (Bench_suite.Registry.find "basicmath") in
  let r = run_entry e in
  let threes = ref 0 and ones = ref 0 in
  let pos = ref 0 in
  let n_cubics = 20 in
  for _ = 1 to n_cubics do
    let count =
      Char.code r.output.[!pos]
      lor (Char.code r.output.[!pos + 1] lsl 8)
      lor (Char.code r.output.[!pos + 2] lsl 16)
      lor (Char.code r.output.[!pos + 3] lsl 24)
    in
    (match count with
    | 3 ->
        incr threes;
        pos := !pos + 4 + (3 * 8)
    | 1 ->
        incr ones;
        pos := !pos + 4 + 8
    | c -> Alcotest.failf "unexpected root count %d" c)
  done;
  Alcotest.(check bool) "three-root branch hit" true (!threes > 0);
  Alcotest.(check bool) "one-root branch hit" true (!ones > 0)

let test_stringsearch_finds_expected () =
  (* sensor occurs 3 times starting at 40; gearbox and manifold never. *)
  let e = Option.get (Bench_suite.Registry.find "stringsearch") in
  let r = run_entry e in
  let i32_at off =
    Int32.to_int (Bytes.get_int32_le (Bytes.of_string r.output) off)
  in
  Alcotest.(check int) "sensor first" 40 (i32_at 0);
  Alcotest.(check int) "sensor count" 3 (i32_at 4);
  Alcotest.(check int) "gearbox absent" (-1) (i32_at (4 * 8));
  Alcotest.(check int) "gearbox count" 0 (i32_at ((4 * 8) + 4));
  Alcotest.(check int) "manifold absent" (-1) (i32_at (4 * 10))

let test_histo_saturates () =
  (* The hot cluster must drive at least one bin to exactly 255. *)
  let e = Option.get (Bench_suite.Registry.find "histo") in
  let r = run_entry e in
  let saturated = String.exists (fun c -> Char.code c = 255) r.output in
  Alcotest.(check bool) "a bin saturates" true saturated

let test_bfs_costs_valid () =
  let e = Option.get (Bench_suite.Registry.find "bfs") in
  let r = run_entry e in
  let b = Bytes.of_string r.output in
  let cost v = Int32.to_int (Bytes.get_int32_le b (4 * v)) in
  Alcotest.(check int) "source cost 0" 0 (cost 0);
  let all_bounded = ref true in
  for v = 0 to 127 do
    let c = cost v in
    if c < -1 || c > 127 then all_bounded := false
  done;
  Alcotest.(check bool) "costs bounded" true !all_bounded

let large_tests =
  List.map
    (fun (e : Bench_suite.Desc.t) ->
      Alcotest.test_case (e.name ^ ": golden = reference") `Slow
        (golden_matches_reference e))
    Bench_suite.Registry.large

let test_large_registry () =
  Alcotest.(check int) "15 large programs" 15
    (List.length Bench_suite.Registry.large);
  Alcotest.(check bool) "find large" true
    (Bench_suite.Registry.find "crc32-large" <> None);
  (* every large variant runs markedly longer than its small sibling *)
  List.iter2
    (fun (s : Bench_suite.Desc.t) (l : Bench_suite.Desc.t) ->
      Alcotest.(check string) "names correspond" (s.name ^ "-large") l.name)
    Bench_suite.Registry.all Bench_suite.Registry.large

let per_program_tests =
  List.concat_map
    (fun (e : Bench_suite.Desc.t) ->
      [
        Alcotest.test_case (e.name ^ ": golden = reference") `Quick
          (golden_matches_reference e);
        Alcotest.test_case (e.name ^ ": structure") `Quick (structure_sane e);
        Alcotest.test_case (e.name ^ ": deterministic") `Quick
          (deterministic e);
      ])
    Bench_suite.Registry.all

let suites =
  [
    ( "bench_suite",
      per_program_tests
      @ [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "util.gen" `Quick test_util_gen;
          Alcotest.test_case "util.gen_floats" `Quick test_util_gen_floats;
          Alcotest.test_case "out encodings = vm encodings" `Quick
            test_out_encodings_match_vm;
          Alcotest.test_case "basicmath: both cubic branches" `Quick
            test_basicmath_covers_both_branches;
          Alcotest.test_case "stringsearch: expected matches" `Quick
            test_stringsearch_finds_expected;
          Alcotest.test_case "histo: saturation" `Quick test_histo_saturates;
          Alcotest.test_case "bfs: cost vector valid" `Quick
            test_bfs_costs_valid;
          Alcotest.test_case "large registry" `Quick test_large_registry;
        ]
      @ large_tests );
  ]
