(* Tests for the SWIFT-style hardening pass and the Guard instruction. *)

module B = Ir.Build

let test_guard_semantics () =
  let r =
    Thelpers.run_main (fun f ->
        B.guard f I32 (B.ci 5) (B.ci 5);
        let x = B.add f I32 (B.ci 2) (B.ci 2) in
        B.guard f I32 x (B.ci 4);
        B.output f I32 x)
  in
  Alcotest.check Thelpers.status_testable "passing guards" Finished r.status;
  let r2 =
    Thelpers.run_main (fun f ->
        let x = B.add f I32 (B.ci 2) (B.ci 2) in
        B.guard f I32 x (B.ci 5);
        B.output f I32 x)
  in
  Alcotest.check Thelpers.status_testable "failing guard traps"
    (Trapped Guard_violation) r2.status;
  Alcotest.(check string) "no output after failing guard" "" r2.output

let test_guard_float_bitwise () =
  let r =
    Thelpers.run_main (fun f ->
        (* NaN = NaN bitwise: a duplicated NaN must pass its guard *)
        let nan_v = B.fdiv f (B.cf 0.0) (B.cf 0.0) in
        let nan_w = B.fdiv f (B.cf 0.0) (B.cf 0.0) in
        B.guard f F64 nan_v nan_w;
        B.output f I32 (B.ci 1))
  in
  Alcotest.check Thelpers.status_testable "duplicated NaN passes" Finished
    r.status

let golden_of modl =
  Vm.Exec.run ~budget:Vm.Exec.golden_budget (Vm.Program.load modl)

let test_semantics_preserved_all_programs () =
  List.iter
    (fun (e : Bench_suite.Desc.t) ->
      List.iter
        (fun level ->
          let hardened = Harden.Swift.apply ~level (e.build ()) in
          let r = golden_of hardened in
          Alcotest.check Thelpers.status_testable
            (e.name ^ ": hardened run finishes") Finished r.status;
          Alcotest.(check bool)
            (e.name ^ ": hardened output = reference")
            true
            (String.equal r.output (e.reference ())))
        [ `Full; `Light ])
    Bench_suite.Registry.all

let test_overheads () =
  let e = Option.get (Bench_suite.Registry.find "qsort") in
  let base = e.build () in
  let full = Harden.Swift.apply ~level:`Full base in
  let light = Harden.Swift.apply ~level:`Light base in
  let o_full = Harden.Swift.static_overhead base full in
  let o_light = Harden.Swift.static_overhead base light in
  Alcotest.(check bool) "full costs more than light" true (o_full > o_light);
  Alcotest.(check bool) "duplication at least doubles computation" true
    (o_full > 1.5 && o_full < 4.0);
  (* register files double *)
  let f_base = List.hd base.m_funcs and f_full = List.hd full.m_funcs in
  Alcotest.(check int) "registers doubled"
    (2 * Ir.Func.reg_count f_base)
    (Ir.Func.reg_count f_full)

let test_hardened_validates () =
  List.iter
    (fun name ->
      let e = Option.get (Bench_suite.Registry.find name) in
      Alcotest.(check bool)
        (name ^ " hardened validates")
        true
        (Result.is_ok (Ir.Validate.check (Harden.Swift.apply (e.build ())))))
    [ "crc32"; "fft"; "dijkstra" ]

let test_coverage_improves () =
  (* The whole point: SDC% must drop sharply under hardening, and the
     drop must hold for multi-bit errors too. *)
  let e = Option.get (Bench_suite.Registry.find "spmv") in
  let expected = e.reference () in
  let base = Core.Workload.make ~name:"spmv" ~expected_output:expected (e.build ()) in
  let hard =
    Core.Workload.make ~name:"spmv+swift" ~expected_output:expected
      (Harden.Swift.apply (e.build ()))
  in
  List.iter
    (fun spec ->
      let cb = Core.Campaign.run base spec ~n:150 ~seed:5L in
      let ch = Core.Campaign.run hard spec ~n:150 ~seed:5L in
      Alcotest.(check bool)
        ("sdc drops under " ^ Core.Spec.label spec)
        true
        (Core.Campaign.sdc_pct ch < Core.Campaign.sdc_pct cb /. 2.0);
      Alcotest.(check bool) "guards fire" true
        (List.mem_assoc Vm.Trap.Guard_violation ch.traps))
    [
      Core.Spec.single Write;
      Core.Spec.multi Write ~max_mbf:3 ~win:(Fixed 1);
      Core.Spec.multi Read ~max_mbf:2 ~win:(Fixed 4);
    ]

let test_coverage_analysis_shape () =
  let rows =
    Analysis.Coverage.compute ~n:30 ~programs:[ "spmv" ] ()
  in
  (* 4 variants x 2 techniques *)
  Alcotest.(check int) "row count" 8 (List.length rows);
  List.iter
    (fun (r : Analysis.Coverage.row) ->
      Alcotest.(check int) "three specs" 3 (List.length r.results);
      match r.variant with
      | Analysis.Coverage.Baseline ->
          Alcotest.(check bool) "baseline overhead 1.0" true
            (Float.abs (r.dyn_overhead -. 1.0) < 1e-9)
      | Swift_full | Swift_light | Tmr ->
          Alcotest.(check bool) "hardened costs more" true
            (r.dyn_overhead > 1.2))
    rows

let test_tmr_semantics_preserved_all_programs () =
  List.iter
    (fun (e : Bench_suite.Desc.t) ->
      let r = golden_of (Harden.Tmr.apply (e.build ())) in
      Alcotest.check Thelpers.status_testable (e.name ^ ": tmr run finishes")
        Finished r.status;
      Alcotest.(check bool)
        (e.name ^ ": tmr output = reference")
        true
        (String.equal r.output (e.reference ())))
    Bench_suite.Registry.all

let test_tmr_corrects_instead_of_detects () =
  let e = Option.get (Bench_suite.Registry.find "crc32") in
  let expected = e.reference () in
  let base = Core.Workload.make ~name:"crc32" ~expected_output:expected (e.build ()) in
  let tmr =
    Core.Workload.make ~name:"crc32+tmr" ~expected_output:expected
      (Harden.Tmr.apply (e.build ()))
  in
  let spec = Core.Spec.single Write in
  let cb = Core.Campaign.run base spec ~n:150 ~seed:3L in
  let ct = Core.Campaign.run tmr spec ~n:150 ~seed:3L in
  Alcotest.(check bool) "sdc collapses" true
    (Core.Campaign.sdc_pct ct < Core.Campaign.sdc_pct cb /. 3.0);
  Alcotest.(check bool) "mass moves to benign (correction)" true
    (ct.benign > 3 * cb.benign);
  (* TMR detects nothing by itself: no guard violations *)
  Alcotest.(check bool) "no guard traps" true
    (not (List.mem_assoc Vm.Trap.Guard_violation ct.traps))

let test_tmr_register_bank_tripled_plus_scratch () =
  let e = Option.get (Bench_suite.Registry.find "qsort") in
  let base = e.build () in
  let tmr = Harden.Tmr.apply base in
  let f_base = List.hd base.m_funcs and f_tmr = List.hd tmr.m_funcs in
  Alcotest.(check bool) "at least tripled" true
    (Ir.Func.reg_count f_tmr >= 3 * Ir.Func.reg_count f_base)

let test_guard_is_read_candidate () =
  (* Guards read registers, so they enlarge the inject-on-read candidate
     set but never the inject-on-write set. *)
  let e = Option.get (Bench_suite.Registry.find "qsort") in
  let base = golden_of (e.build ()) in
  let hard = golden_of (Harden.Swift.apply (e.build ())) in
  Alcotest.(check bool) "read candidates grow" true
    (hard.read_cands > base.read_cands);
  Alcotest.(check bool) "asymmetry preserved" true
    (hard.read_cands > hard.write_cands)

let suites =
  [
    ( "harden",
      [
        Alcotest.test_case "guard semantics" `Quick test_guard_semantics;
        Alcotest.test_case "guard float bitwise" `Quick
          test_guard_float_bitwise;
        Alcotest.test_case "semantics preserved (all 15, both levels)" `Slow
          test_semantics_preserved_all_programs;
        Alcotest.test_case "overheads" `Quick test_overheads;
        Alcotest.test_case "hardened validates" `Quick test_hardened_validates;
        Alcotest.test_case "coverage improves" `Slow test_coverage_improves;
        Alcotest.test_case "coverage analysis shape" `Slow
          test_coverage_analysis_shape;
        Alcotest.test_case "guard is read candidate" `Quick
          test_guard_is_read_candidate;
        Alcotest.test_case "tmr: semantics preserved (all 15)" `Slow
          test_tmr_semantics_preserved_all_programs;
        Alcotest.test_case "tmr: corrects instead of detects" `Slow
          test_tmr_corrects_instead_of_detects;
        Alcotest.test_case "tmr: register bank" `Quick
          test_tmr_register_bank_tripled_plus_scratch;
      ] );
  ]
