(* Tests for the SDC severity analysis. *)

let test_extent () =
  let e = Analysis.Severity.extent in
  Alcotest.(check (float 1e-9)) "identical" 0.0 (e ~golden:"abcd" "abcd");
  Alcotest.(check (float 1e-9)) "one of four" 0.25 (e ~golden:"abcd" "abxd");
  Alcotest.(check (float 1e-9)) "all differ" 1.0 (e ~golden:"abcd" "wxyz");
  (* missing tail counts as corrupted *)
  Alcotest.(check (float 1e-9)) "truncated" 0.5 (e ~golden:"abcd" "ab");
  Alcotest.(check (float 1e-9)) "extended" 0.5 (e ~golden:"ab" "abcd");
  Alcotest.(check (float 1e-9)) "both empty" 0.0 (e ~golden:"" "")

let test_onset () =
  let o = Analysis.Severity.onset in
  Alcotest.(check (float 1e-9)) "equal streams" 1.0 (o ~golden:"abcd" "abcd");
  Alcotest.(check (float 1e-9)) "first byte" 0.0 (o ~golden:"abcd" "xbcd");
  Alcotest.(check (float 1e-9)) "halfway" 0.5 (o ~golden:"abcd" "abxd");
  (* equal prefix, differing length: onset at the truncation point *)
  Alcotest.(check (float 1e-9)) "truncation onset" 0.5 (o ~golden:"abcd" "ab")

let study = lazy (Analysis.Study.make ~n:60 ~seed:3L ~programs:[ "crc32"; "spmv" ] ())

let test_compute_shape () =
  let rows = Analysis.Severity.compute (Lazy.force study) Core.Technique.Read in
  Alcotest.(check int) "row per program" 2 (List.length rows);
  List.iter
    (fun (r : Analysis.Severity.row) ->
      Alcotest.(check bool) "extent in range" true
        (r.mean_extent >= 0. && r.mean_extent <= 1.);
      Alcotest.(check bool) "onset in range" true
        (r.mean_onset >= 0. && r.mean_onset <= 1.);
      Alcotest.(check bool) "buckets bounded" true
        (r.single_byte + r.wholesale <= 2 * r.n_sdc))
    rows;
  (* crc32's avalanche makes its SDCs much more damaging than spmv's *)
  match rows with
  | [ crc; spmv ] when crc.n_sdc > 5 && spmv.n_sdc > 5 ->
      Alcotest.(check bool) "crc32 SDCs damage more than spmv's" true
        (crc.mean_extent > spmv.mean_extent)
  | _ -> ()

let test_by_bit () =
  let rows = Analysis.Severity.by_bit (Lazy.force study) Core.Technique.Write in
  let total = List.fold_left (fun a (r : Analysis.Severity.bit_row) -> a + r.n) 0 rows in
  Alcotest.(check int) "all experiments bucketed" 120 total;
  List.iter
    (fun (r : Analysis.Severity.bit_row) ->
      Alcotest.(check bool) "bucket valid" true
        (r.bit_bucket >= 0 && r.bit_bucket <= 7);
      Alcotest.(check bool) "counts bounded" true
        (r.sdc <= r.n && r.detected <= r.n))
    rows

let suites =
  [
    ( "severity",
      [
        Alcotest.test_case "extent" `Quick test_extent;
        Alcotest.test_case "onset" `Quick test_onset;
        Alcotest.test_case "compute shape" `Slow test_compute_shape;
        Alcotest.test_case "by bit" `Slow test_by_bit;
      ] );
  ]
