(* Differential testing of the interpreter: random straight-line programs
   over i32 values are executed by the VM and by an independent evaluator
   written against Int64 arithmetic (the VM uses native ints).  Any
   semantic divergence in masking, sign extension, shifts, division or
   comparisons shows up as an output mismatch. *)

module B = Ir.Build

type op =
  | Bin of int * int * int  (* binop index, lhs, rhs *)
  | Cmp of int * int * int  (* icmp index, lhs, rhs *)
  | Sel of int * int * int  (* cond from cmp of (a, b), then pick a or b *)
  | Narrow of int  (* trunc to i8, zext back *)
  | NarrowS of int  (* trunc to i16, sext back *)
  | FloatTrip of int * int  (* sitofp both, fadd, fptosi *)

let binops : (Ir.Instr.binop * string) array =
  [|
    (Add, "add"); (Sub, "sub"); (Mul, "mul"); (Sdiv, "sdiv"); (Udiv, "udiv");
    (Srem, "srem"); (Urem, "urem"); (And, "and"); (Or, "or"); (Xor, "xor");
    (Shl, "shl"); (Lshr, "lshr"); (Ashr, "ashr");
  |]

let icmps : Ir.Instr.icmp array =
  [| Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge |]

(* ---- independent evaluator over Int64 bit patterns ---- *)

let mask32 v = Int64.logand v 0xFFFFFFFFL
let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32
let mask8 v = Int64.logand v 0xFFL
let sext16 v = Int64.shift_right (Int64.shift_left (Int64.logand v 0xFFFFL) 48) 48

let eval_binop idx a b =
  let open Int64 in
  let sa = sext32 a and sb = sext32 b in
  let shift_amt = to_int b in
  match fst binops.(idx) with
  | Add -> mask32 (add a b)
  | Sub -> mask32 (sub a b)
  | Mul -> mask32 (mul a b)
  | Sdiv -> mask32 (div sa sb)
  | Udiv -> mask32 (div a b) (* canonical values are non-negative *)
  | Srem -> mask32 (rem sa sb)
  | Urem -> mask32 (rem a b)
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl -> if shift_amt >= 32 || shift_amt < 0 then 0L else mask32 (shift_left a shift_amt)
  | Lshr -> if shift_amt >= 32 || shift_amt < 0 then 0L else shift_right_logical a shift_amt
  | Ashr ->
      let s = if shift_amt >= 32 || shift_amt < 0 then 31 else shift_amt in
      mask32 (shift_right sa s)

let eval_icmp idx a b =
  let sa = sext32 a and sb = sext32 b in
  let u = Int64.unsigned_compare a b in
  let r =
    match icmps.(idx) with
    | Eq -> a = b
    | Ne -> a <> b
    | Slt -> sa < sb
    | Sle -> sa <= sb
    | Sgt -> sa > sb
    | Sge -> sa >= sb
    | Ult -> u < 0
    | Ule -> u <= 0
    | Ugt -> u > 0
    | Uge -> u >= 0
  in
  if r then 1L else 0L

let eval_op pool op =
  let at i = List.nth pool (i mod List.length pool) in
  match op with
  | Bin (k, i, j) -> eval_binop (k mod Array.length binops) (at i) (at j)
  | Cmp (k, i, j) -> eval_icmp (k mod Array.length icmps) (at i) (at j)
  | Sel (k, i, j) ->
      if eval_icmp (k mod Array.length icmps) (at i) (at j) = 1L then at i
      else at j
  | Narrow i -> mask8 (at i)
  | NarrowS i -> mask32 (sext16 (at i))
  | FloatTrip (i, j) ->
      let x = Int64.to_float (sext32 (at i)) +. Int64.to_float (sext32 (at j)) in
      if Float.is_nan x || Float.abs x >= 4.611686018427387904e18 then 0L
      else mask32 (Int64.of_float x)

(* Division by zero would trap; rewrite offending ops into Adds, exactly
   as the generator's evaluation sees them. *)
let sanitize ops seeds =
  let pool = ref (List.map mask32 seeds) in
  List.map
    (fun op ->
      let op =
        match op with
        | Bin (k, i, j) -> (
            let at i = List.nth !pool (i mod List.length !pool) in
            match fst binops.(k mod Array.length binops) with
            | Sdiv | Udiv | Srem | Urem when at j = 0L -> Bin (0, i, j)
            | _ -> op)
        | Cmp _ | Sel _ | Narrow _ | NarrowS _ | FloatTrip _ -> op
      in
      pool := !pool @ [ eval_op !pool op ];
      op)
    ops

let expected_output ops seeds =
  let pool = ref (List.map mask32 seeds) in
  List.iter (fun op -> pool := !pool @ [ eval_op !pool op ]) ops;
  let buf = Buffer.create 64 in
  List.iter (fun v -> Buffer.add_int32_le buf (Int64.to_int32 v)) !pool;
  Buffer.contents buf

(* ---- IR construction mirroring eval_op ---- *)

let build_program ops seeds =
  let m = B.create () in
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let pool = ref [] in
      List.iter
        (fun s ->
          let r = B.local_init f I32 (B.ci (Int64.to_int (mask32 s))) in
          pool := !pool @ [ B.r r ])
        seeds;
      let at i = List.nth !pool (i mod List.length !pool) in
      List.iter
        (fun op ->
          let v =
            match op with
            | Bin (k, i, j) ->
                let bop = fst binops.(k mod Array.length binops) in
                B.binop f bop I32 (at i) (at j)
            | Cmp (k, i, j) ->
                let c = B.icmp f icmps.(k mod Array.length icmps) I32 (at i) (at j) in
                B.cast f Zext ~from_ty:I1 ~to_ty:I32 c
            | Sel (k, i, j) ->
                let c = B.icmp f icmps.(k mod Array.length icmps) I32 (at i) (at j) in
                B.select f I32 ~cond:c (at i) (at j)
            | Narrow i ->
                let t = B.cast f Trunc ~from_ty:I32 ~to_ty:I8 (at i) in
                B.cast f Zext ~from_ty:I8 ~to_ty:I32 t
            | NarrowS i ->
                let t = B.cast f Trunc ~from_ty:I32 ~to_ty:I16 (at i) in
                B.cast f Sext ~from_ty:I16 ~to_ty:I32 t
            | FloatTrip (i, j) ->
                let x = B.cast f Sitofp ~from_ty:I32 ~to_ty:F64 (at i) in
                let y = B.cast f Sitofp ~from_ty:I32 ~to_ty:F64 (at j) in
                B.cast f Fptosi ~from_ty:F64 ~to_ty:I32 (B.fadd f x y)
          in
          pool := !pool @ [ v ])
        ops;
      List.iter (fun v -> B.output f I32 v) !pool);
  B.finish m

(* ---- the property ---- *)

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map3 (fun k i j -> Bin (k, i, j)) (int_bound 12) (int_bound 40) (int_bound 40);
        map3 (fun k i j -> Cmp (k, i, j)) (int_bound 9) (int_bound 40) (int_bound 40);
        map3 (fun k i j -> Sel (k, i, j)) (int_bound 9) (int_bound 40) (int_bound 40);
        map (fun i -> Narrow i) (int_bound 40);
        map (fun i -> NarrowS i) (int_bound 40);
        map2 (fun i j -> FloatTrip (i, j)) (int_bound 40) (int_bound 40);
      ])

let seeds_gen =
  QCheck.Gen.(
    list_size (int_range 2 5)
      (oneof
         [
           map Int64.of_int int;
           oneofl [ 0L; 1L; 0xFFFFFFFFL; 0x80000000L; 0x7FFFFFFFL; 2L ];
         ]))

let case_gen = QCheck.Gen.(pair (list_size (int_range 1 30) op_gen) seeds_gen)

let prop_vm_matches_evaluator =
  QCheck.Test.make ~name:"VM matches independent Int64 evaluator" ~count:300
    (QCheck.make case_gen) (fun (ops, seeds) ->
      let seeds = if seeds = [] then [ 1L ] else seeds in
      let ops = sanitize ops seeds in
      let prog = Vm.Program.load (build_program ops seeds) in
      let r = Vm.Exec.run ~budget:1_000_000 prog in
      match r.status with
      | Finished -> String.equal r.output (expected_output ops seeds)
      | Trapped _ | Hung -> false)

(* The same random programs double as parser fodder: print, reparse,
   reprint must be stable, and the reparsed module must behave
   identically. *)
let prop_parser_roundtrip_random =
  QCheck.Test.make ~name:"parser round-trips random programs" ~count:100
    (QCheck.make case_gen) (fun (ops, seeds) ->
      let seeds = if seeds = [] then [ 1L ] else seeds in
      let ops = sanitize ops seeds in
      let m = build_program ops seeds in
      let text = Ir.Pp.modl m in
      match Ir.Parse.modl text with
      | Error _ -> false
      | Ok m2 ->
          String.equal text (Ir.Pp.modl m2)
          &&
          let r = Vm.Exec.run ~budget:1_000_000 (Vm.Program.load m2) in
          String.equal r.output (expected_output ops seeds))

let suites =
  [
    ( "differential",
      [
        QCheck_alcotest.to_alcotest prop_vm_matches_evaluator;
        QCheck_alcotest.to_alcotest prop_parser_roundtrip_random;
      ] );
  ]
