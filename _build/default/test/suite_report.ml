(* Tests for the table renderer. *)

let test_render_alignment () =
  let s =
    Report.Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "longer"; "12345" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check int) "rule as wide as header" (String.length header)
        (String.length rule);
      Alcotest.(check bool) "rule is dashes" true
        (String.for_all (fun c -> c = '-' || c = ' ') rule)
  | _ -> Alcotest.fail "expected at least two lines");
  (* every data line has equal width (right-aligned numeric column) *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  Alcotest.(check int) "all lines equal width" 1
    (List.length (List.sort_uniq compare widths))

let test_render_pads_short_rows () =
  let s = Report.Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  Alcotest.(check bool) "contains x" true (Thelpers.contains s "x")

let test_pct_formats () =
  Alcotest.(check string) "pct" "42.5" (Report.Table.pct 42.51);
  Alcotest.(check string) "pct zero" "0.0" (Report.Table.pct 0.0);
  Alcotest.(check string) "pct ci" "42.5±1.9" (Report.Table.pct_ci 42.5 1.9)

let test_render_empty_body () =
  let s = Report.Table.render ~header:[ "only" ] [] in
  Alcotest.(check bool) "header present" true (Thelpers.contains s "only")

let suites =
  [
    ( "report",
      [
        Alcotest.test_case "alignment" `Quick test_render_alignment;
        Alcotest.test_case "pads short rows" `Quick test_render_pads_short_rows;
        Alcotest.test_case "pct formats" `Quick test_pct_formats;
        Alcotest.test_case "empty body" `Quick test_render_empty_body;
      ] );
  ]
