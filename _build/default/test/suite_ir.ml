(* Tests for IR types, bit helpers, builder and validator. *)

module B = Ir.Build

let test_widths () =
  let open Ir.Ty in
  Alcotest.(check (list int))
    "widths"
    [ 1; 8; 16; 32; 63; 64; 32 ]
    (List.map width [ I1; I8; I16; I32; I64; F64; Ptr ]);
  Alcotest.(check (list int))
    "bytes"
    [ 1; 1; 2; 4; 8; 8; 4 ]
    (List.map bytes [ I1; I8; I16; I32; I64; F64; Ptr ])

let test_mask_sext () =
  Alcotest.(check int) "mask i8" 0x34 (Ir.Bits.mask I8 0x1234);
  Alcotest.(check int) "mask i32 of -1" 0xFFFFFFFF (Ir.Bits.mask I32 (-1));
  Alcotest.(check int) "sext i8 0x80" (-128) (Ir.Bits.sext I8 0x80);
  Alcotest.(check int) "sext i8 0x7F" 127 (Ir.Bits.sext I8 0x7F);
  Alcotest.(check int) "sext i32 0xFFFFFFFF" (-1) (Ir.Bits.sext I32 0xFFFFFFFF);
  Alcotest.(check int) "sext i1 1" (-1) (Ir.Bits.sext I1 1)

let test_flip () =
  Alcotest.(check int) "flip bit 0" 1 (Ir.Bits.flip I32 ~bit:0 0);
  Alcotest.(check int) "flip bit 31" 0x80000000 (Ir.Bits.flip I32 ~bit:31 0);
  Alcotest.(check int) "flip twice restores" 42
    (Ir.Bits.flip I32 ~bit:7 (Ir.Bits.flip I32 ~bit:7 42));
  Alcotest.check_raises "flip out of range"
    (Invalid_argument "Bits.flip: bit out of range") (fun () ->
      ignore (Ir.Bits.flip I8 ~bit:8 0))

let test_flip_float () =
  let x = 1.5 in
  Alcotest.(check bool) "flip changes value" true
    (Ir.Bits.flip_float ~bit:63 x <> x);
  Alcotest.(check (float 0.0)) "flip twice restores" x
    (Ir.Bits.flip_float ~bit:52 (Ir.Bits.flip_float ~bit:52 x))

let prop_flip_involution =
  QCheck.Test.make ~name:"flip is an involution on canonical values" ~count:500
    QCheck.(pair (int_bound 62) int)
    (fun (bit, v0) ->
      let ty = Ir.Ty.I64 in
      let v = Ir.Bits.mask ty v0 in
      Ir.Bits.flip ty ~bit (Ir.Bits.flip ty ~bit v) = v)

let prop_mask_idempotent =
  QCheck.Test.make ~name:"mask idempotent, sext-mask roundtrip" ~count:500
    QCheck.int (fun v ->
      List.for_all
        (fun ty ->
          let m = Ir.Bits.mask ty v in
          Ir.Bits.mask ty m = m && Ir.Bits.mask ty (Ir.Bits.sext ty m) = m)
        [ Ir.Ty.I1; I8; I16; I32; I64; Ptr ])

let test_src_dst_metadata () =
  let open Ir.Instr in
  let i = Binop { op = Add; ty = I32; dst = 3; a = Reg 1; b = Reg 1 } in
  Alcotest.(check (list int)) "dup srcs kept" [ 1; 1 ] (src_regs i);
  Alcotest.(check (option int)) "dst" (Some 3) (dst_reg i);
  let s = Store { ty = I32; value = Reg 2; addr = Reg 4 } in
  Alcotest.(check (list int)) "store srcs" [ 2; 4 ] (src_regs s);
  Alcotest.(check (option int)) "store has no dst" None (dst_reg s);
  let t = Cbr { cond = Reg 7; if_true = 0; if_false = 1 } in
  Alcotest.(check (list int)) "cbr srcs" [ 7 ] (term_src_regs t);
  Alcotest.(check (list int)) "ret srcs" [ 9 ] (term_src_regs (Ret (Some (Reg 9))))

let build_trivial () =
  let m = B.create () in
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let x = B.add f I32 (B.ci 2) (B.ci 3) in
      B.output f I32 x;
      B.ret f None);
  B.finish m

let test_builder_trivial () =
  let m = build_trivial () in
  Alcotest.(check int) "one function" 1 (List.length m.m_funcs);
  match Ir.Func.find_func m "main" with
  | None -> Alcotest.fail "main not found"
  | Some f ->
      Alcotest.(check bool) "has blocks" true (Array.length f.f_blocks >= 1)

let test_builder_control_flow_shapes () =
  let m = B.create () in
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let acc = B.local_init f I32 (B.ci 0) in
      B.for_ f ~from_:(B.ci 0) ~below:(B.ci 10) (fun i ->
          B.if_ f
            (B.slt f I32 i (B.ci 5))
            ~then_:(fun () -> B.set f acc (B.add f I32 (B.r acc) i))
            ~else_:(fun () -> B.set f acc (B.sub f I32 (B.r acc) i)));
      B.output f I32 (B.r acc));
  let m = B.finish m in
  match Ir.Func.find_func m "main" with
  | None -> Alcotest.fail "main not found"
  | Some f ->
      (* entry + loop blocks + if blocks *)
      Alcotest.(check bool) "several blocks" true (Array.length f.f_blocks > 5)

let test_builder_duplicate_function_rejected () =
  let m = B.create () in
  B.func m "f" ~params:[] ~ret:None (fun f -> B.ret f None);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Build.func: duplicate function f") (fun () ->
      B.func m "f" ~params:[] ~ret:None (fun f -> B.ret f None))

let test_builder_unknown_callee_rejected () =
  let m = B.create () in
  let raised = ref false in
  (try
     B.func m "main" ~params:[] ~ret:None (fun f ->
         ignore (B.call f "nonexistent" []);
         B.ret f None)
   with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "raises" true !raised

let test_validator_catches_type_error () =
  let open Ir in
  let bad : Func.modl =
    {
      m_funcs =
        [
          {
            f_name = "main";
            f_params = [];
            f_ret = None;
            f_blocks =
              [|
                {
                  b_name = "entry";
                  b_instrs =
                    [|
                      (* dst register 0 is F64 but binop says I32 *)
                      Instr.Binop
                        { op = Add; ty = I32; dst = 0; a = Imm 1; b = Imm 2 };
                    |];
                  b_term = Ret None;
                };
              |];
            f_reg_ty = [| F64 |];
          };
        ];
      m_globals = [];
    }
  in
  match Validate.check bad with
  | Ok () -> Alcotest.fail "expected validation error"
  | Error es -> Alcotest.(check bool) "has errors" true (List.length es > 0)

let test_validator_catches_bad_branch () =
  let open Ir in
  let bad : Func.modl =
    {
      m_funcs =
        [
          {
            f_name = "main";
            f_params = [];
            f_ret = None;
            f_blocks =
              [| { b_name = "entry"; b_instrs = [||]; b_term = Br 7 } |];
            f_reg_ty = [||];
          };
        ];
      m_globals = [];
    }
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Validate.check bad))

let test_validator_accepts_builder_output () =
  Alcotest.(check bool) "trivial module validates" true
    (Result.is_ok (Ir.Validate.check (build_trivial ())))

let test_pp_smoke () =
  let s = Ir.Pp.modl (build_trivial ()) in
  Alcotest.(check bool) "mentions main" true
    (Thelpers.contains s "define void @main")

let suites =
  [
    ( "ir",
      [
        Alcotest.test_case "type widths" `Quick test_widths;
        Alcotest.test_case "mask/sext" `Quick test_mask_sext;
        Alcotest.test_case "flip" `Quick test_flip;
        Alcotest.test_case "flip float" `Quick test_flip_float;
        QCheck_alcotest.to_alcotest prop_flip_involution;
        QCheck_alcotest.to_alcotest prop_mask_idempotent;
        Alcotest.test_case "src/dst metadata" `Quick test_src_dst_metadata;
        Alcotest.test_case "builder trivial" `Quick test_builder_trivial;
        Alcotest.test_case "builder control flow" `Quick
          test_builder_control_flow_shapes;
        Alcotest.test_case "builder rejects duplicates" `Quick
          test_builder_duplicate_function_rejected;
        Alcotest.test_case "builder rejects unknown callee" `Quick
          test_builder_unknown_callee_rejected;
        Alcotest.test_case "validator: type error" `Quick
          test_validator_catches_type_error;
        Alcotest.test_case "validator: bad branch" `Quick
          test_validator_catches_bad_branch;
        Alcotest.test_case "validator: accepts builder output" `Quick
          test_validator_accepts_builder_output;
        Alcotest.test_case "pretty-printer smoke" `Quick test_pp_smoke;
      ] );
  ]
