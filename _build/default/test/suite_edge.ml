(* Edge-case tests: memory access widths and alignment, I64 (63-bit)
   semantics, validator cast rules, builder corner cases, and CSV
   emission. *)

module B = Ir.Build

let run = Thelpers.run_main
let check_status = Alcotest.check Thelpers.status_testable

(* ---- memory ---- *)

let test_memory_template_validation () =
  Alcotest.(check bool) "out of bounds region rejected" true
    (match
       Vm.Memory.create_template ~size:16 ~regions:[ (8, Bytes.create 16) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "overlapping regions rejected" true
    (match
       Vm.Memory.create_template ~size:64
         ~regions:[ (0, Bytes.create 8); (4, Bytes.create 8) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_memory_widths () =
  let mem =
    Vm.Memory.clone
      (Vm.Memory.create_template ~size:64 ~regions:[ (0, Bytes.create 32) ])
  in
  Vm.Memory.write_int mem ~width:8 ~addr:0 0x0102030405060708;
  Alcotest.(check int) "8-byte roundtrip" 0x0102030405060708
    (Vm.Memory.read_int mem ~width:8 ~addr:0);
  Alcotest.(check int) "low byte LE" 0x08 (Vm.Memory.read_int mem ~width:1 ~addr:0);
  Alcotest.(check int) "second halfword" 0x0506
    (Vm.Memory.read_int mem ~width:2 ~addr:2);
  Vm.Memory.write_f64 mem ~addr:8 (-0.5);
  Alcotest.(check (float 0.0)) "f64 roundtrip" (-0.5)
    (Vm.Memory.read_f64 mem ~addr:8);
  (* halfword alignment: odd address traps *)
  Alcotest.(check bool) "misaligned halfword" true
    (match Vm.Memory.read_int mem ~width:2 ~addr:1 with
    | exception Vm.Trap.Trap Vm.Trap.Misaligned -> true
    | _ -> false);
  (* 8-byte access at 4-byte alignment is allowed (paper: 4-byte rule) *)
  Alcotest.(check bool) "8-byte at +4 allowed" true
    (match Vm.Memory.read_int mem ~width:8 ~addr:4 with
    | _ -> true
    | exception _ -> false)

let test_memory_peek () =
  let t = Vm.Memory.create_template ~size:32 ~regions:[ (0, Bytes.of_string "abcd") ] in
  Alcotest.(check string) "peek" "bc"
    (Bytes.to_string (Vm.Memory.peek_bytes t ~addr:1 ~len:2));
  Alcotest.(check bool) "peek out of bounds" true
    (match Vm.Memory.peek_bytes t ~addr:30 ~len:4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- I64 (63-bit) semantics ---- *)

let test_i64_width_63 () =
  let r =
    run (fun f ->
        (* shifting 1 left by 62 reaches the top bit; by 63 overshifts to 0 *)
        let one = B.mov f I64 (B.ci 1) in
        let hi = B.shl f I64 one (B.ci 62) in
        let over = B.shl f I64 one (B.ci 63) in
        B.output f I64 hi;
        B.output f I64 over;
        (* unsigned compare sees the top-bit value as huge *)
        let big = B.ugt f I64 hi (B.ci 1000) in
        B.output f I1 big;
        (* signed compare sees it as negative *)
        let neg = B.slt f I64 hi (B.ci 0) in
        B.output f I1 neg;
        (* unsigned division of the huge value *)
        let q = B.udiv f I64 hi (B.ci 2) in
        B.output f I64 q)
  in
  check_status "finished" Finished r.status;
  let b = Bytes.of_string r.output in
  Alcotest.(check int64) "1 << 62" (Int64.shift_left 1L 62) (Bytes.get_int64_le b 0);
  Alcotest.(check int64) "overshift = 0" 0L (Bytes.get_int64_le b 8);
  Alcotest.(check int) "ugt" 1 (Char.code (Bytes.get b 16));
  Alcotest.(check int) "slt" 1 (Char.code (Bytes.get b 17));
  Alcotest.(check int64) "udiv" (Int64.shift_left 1L 61) (Bytes.get_int64_le b 18)

let test_i64_memory_roundtrip () =
  let m = B.create () in
  B.global_zeros m "cell" 8;
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let v = B.shl f I64 (B.mov f I64 (B.ci 0x1234)) (B.ci 40) in
      B.store f I64 ~value:v ~addr:(B.glob "cell");
      B.output f I64 (B.load f I64 (B.glob "cell")));
  let r = Vm.Exec.run ~budget:1000 (Vm.Program.load (B.finish m)) in
  Alcotest.(check int64) "i64 store/load"
    (Int64.shift_left 0x1234L 40)
    (Bytes.get_int64_le (Bytes.of_string r.output) 0)

(* ---- validator cast rules ---- *)

let expect_invalid body =
  let m = B.create () in
  Alcotest.(check bool) "rejected" true
    (match
       B.func m "main" ~params:[] ~ret:None body;
       B.finish m
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_validator_cast_rules () =
  (* trunc must narrow *)
  expect_invalid (fun f -> ignore (B.cast f Trunc ~from_ty:I8 ~to_ty:I32 (B.ci 0)));
  (* zext must widen *)
  expect_invalid (fun f -> ignore (B.cast f Zext ~from_ty:I32 ~to_ty:I8 (B.ci 0)));
  (* sitofp needs int source *)
  expect_invalid (fun f -> ignore (B.cast f Sitofp ~from_ty:F64 ~to_ty:F64 (B.cf 1.)));
  (* ptrtoint needs ptr source *)
  expect_invalid (fun f -> ignore (B.cast f Ptrtoint ~from_ty:I32 ~to_ty:I32 (B.ci 0)))

let test_validator_gep_rules () =
  expect_invalid (fun f ->
      ignore (B.gep f ~base:(B.ci 0) ~index:(B.cf 1.0) ~scale:4));
  expect_invalid (fun f -> ignore (B.gep f ~base:(B.ci 0) ~index:(B.ci 1) ~scale:0))

let test_validator_ret_rules () =
  let m = B.create () in
  Alcotest.(check bool) "void fn returning value rejected" true
    (match
       B.func m "main" ~params:[] ~ret:None (fun f -> B.ret f (Some (B.ci 1)));
       B.finish m
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- ptrtoint / inttoptr ---- *)

let test_pointer_casts () =
  let m = B.create () in
  B.global_i32s m "cell" [| 77 |];
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let p = B.mov f Ptr (B.glob "cell") in
      let n = B.cast f Ptrtoint ~from_ty:Ptr ~to_ty:I32 p in
      let p2 = B.cast f Inttoptr ~from_ty:I32 ~to_ty:Ptr n in
      B.output f I32 (B.load f I32 p2));
  let r = Vm.Exec.run ~budget:1000 (Vm.Program.load (B.finish m)) in
  Alcotest.(check string) "roundtrip pointer" (Thelpers.le32 77) r.output

(* ---- builder off ---- *)

let test_builder_off () =
  let m = B.create () in
  B.global_i32s m "a" [| 5; 6 |];
  B.func m "main" ~params:[] ~ret:None (fun f ->
      let p = B.mov f Ptr (B.glob "a") in
      B.output f I32 (B.load f I32 (B.off f p 4));
      (* off by 0 is the identity *)
      B.output f I32 (B.load f I32 (B.off f p 0)));
  let r = Vm.Exec.run ~budget:1000 (Vm.Program.load (B.finish m)) in
  Alcotest.(check string) "offsets" (Thelpers.le32 6 ^ Thelpers.le32 5) r.output

(* ---- csv write ---- *)

let test_csv_write () =
  let e = Option.get (Bench_suite.Registry.find "spmv") in
  let w = Core.Workload.make ~name:e.name (e.build ()) in
  let r1 = Core.Campaign.run w (Core.Spec.single Read) ~n:20 ~seed:1L in
  let r2 = Core.Campaign.run w (Core.Spec.multi Write ~max_mbf:2 ~win:(Fixed 1)) ~n:20 ~seed:1L in
  let path = Filename.temp_file "onebit" ".csv" in
  let oc = open_out path in
  Core.Csv.write oc [ r1; r2 ];
  close_out oc;
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Sys.remove path;
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header first" Core.Csv.header (List.hd lines)

let suites =
  [
    ( "edge",
      [
        Alcotest.test_case "memory template validation" `Quick
          test_memory_template_validation;
        Alcotest.test_case "memory widths" `Quick test_memory_widths;
        Alcotest.test_case "memory peek" `Quick test_memory_peek;
        Alcotest.test_case "i64 63-bit semantics" `Quick test_i64_width_63;
        Alcotest.test_case "i64 memory roundtrip" `Quick
          test_i64_memory_roundtrip;
        Alcotest.test_case "validator cast rules" `Quick
          test_validator_cast_rules;
        Alcotest.test_case "validator gep rules" `Quick test_validator_gep_rules;
        Alcotest.test_case "validator ret rules" `Quick test_validator_ret_rules;
        Alcotest.test_case "pointer casts" `Quick test_pointer_casts;
        Alcotest.test_case "builder off" `Quick test_builder_off;
        Alcotest.test_case "csv write" `Quick test_csv_write;
      ] );
  ]
