let max_mbf_values = [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 30 ]

let win_values =
  [
    Win.Fixed 0;
    Fixed 1;
    Fixed 4;
    Rnd (2, 10);
    Fixed 10;
    Rnd (11, 100);
    Fixed 100;
    Rnd (101, 1000);
    Fixed 1000;
  ]

let win_positive = List.filter (fun w -> not (Win.equal w (Fixed 0))) win_values

let multi_specs technique =
  List.concat_map
    (fun max_mbf ->
      List.map (fun win -> Spec.multi technique ~max_mbf ~win) win_values)
    max_mbf_values

let specs technique = Spec.single technique :: multi_specs technique
let all_specs = specs Technique.Read @ specs Technique.Write
