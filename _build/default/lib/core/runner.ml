type t = {
  n : int;
  seed : int64;
  cache : (string, Campaign.result) Hashtbl.t;
}

let create ?(n = 200) ?(seed = 20170626L) () =
  { n; seed; cache = Hashtbl.create 512 }

let n t = t.n

let derived_seed t workload_name spec =
  (* Stable, collision-resistant enough for seeding: hash the identifying
     string into the base seed. *)
  let s = workload_name ^ "|" ^ Spec.label spec in
  let h = ref t.seed in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let run_key kept workload_name spec n =
  Printf.sprintf "%s|%s|%d|%b" workload_name (Spec.label spec) n kept

let get t ~kept workload spec =
  let key = run_key kept workload.Workload.name spec t.n in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
      let seed = derived_seed t workload.Workload.name spec in
      let r =
        Campaign.run ~keep_experiments:kept workload spec ~n:t.n ~seed
      in
      Hashtbl.replace t.cache key r;
      r

let campaign t workload spec = get t ~kept:false workload spec
let campaign_kept t workload spec = get t ~kept:true workload spec
let cache_size t = Hashtbl.length t.cache
