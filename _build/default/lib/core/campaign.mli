(** A fault-injection campaign: [n] independent experiments of one fault
    model on one workload (§III-E).

    Each experiment [i] uses the private generator [Prng.split_at base i],
    so campaigns are deterministic in [(seed, i)] and any experiment can be
    replayed in isolation. *)

type result = {
  workload_name : string;
  spec : Spec.t;
  n : int;
  seed : int64;
  benign : int;
  detected : int;  (** by hardware exception *)
  hang : int;
  no_output : int;
  sdc : int;
  traps : (Vm.Trap.t * int) list;  (** breakdown of [detected] *)
  activation : Stats.Histogram.t;  (** activated flips per experiment *)
  experiments : Experiment.t array;  (** empty unless [keep_experiments] *)
  weighted_sdc : float;
      (** sum of first-injection equivalence-class weights over SDC
          experiments (see {!Injector.injection}) *)
  weighted_total : float;  (** sum of weights over all experiments *)
}

val run :
  ?keep_experiments:bool ->
  ?spacing:[ `Faulty | `Golden ] ->
  Workload.t -> Spec.t -> n:int -> seed:int64 -> result
(** Requires [n > 0].  [?spacing] as in {!Injector.create}. *)

val sdc_ci : result -> Stats.Proportion.ci
val detection_ci : result -> Stats.Proportion.ci
(** Detected + Hang + No_output, the paper's Detection super-category. *)

val benign_ci : result -> Stats.Proportion.ci
val sdc_pct : result -> float
(** SDC percentage (0..100). *)

val weighted_sdc_pct : result -> float
(** Equivalence-class-weighted SDC percentage.  The paper deliberately
    reports unweighted percentages (§III-A1: the aim is comparing fault
    models, not absolute dependability); the weighted estimator is what
    pre-injection-analysis tools would report, provided for the ablation
    study. *)
