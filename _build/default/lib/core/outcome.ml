type t =
  | Benign
  | Detected of Vm.Trap.t
  | Hang
  | No_output
  | Sdc

let classify ~golden_output (r : Vm.Exec.result) =
  match r.status with
  | Trapped t -> Detected t
  | Hung -> Hang
  | Finished ->
      if String.equal r.output golden_output then Benign
      else if String.length r.output = 0 then No_output
      else Sdc

let is_sdc = function Sdc -> true | Benign | Detected _ | Hang | No_output -> false

let is_detection = function
  | Detected _ | Hang | No_output -> true
  | Benign | Sdc -> false

let to_string = function
  | Benign -> "benign"
  | Detected t -> "detected:" ^ Vm.Trap.to_string t
  | Hang -> "hang"
  | No_output -> "no-output"
  | Sdc -> "sdc"
