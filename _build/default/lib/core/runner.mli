(** Memoising campaign runner.

    The analyses reuse many campaigns (the Fig. 4/5 grids feed Table III,
    whose best configurations feed Table IV), so the runner caches results
    keyed by (workload, spec, n, seed).  Results are deterministic, which
    makes the cache semantically transparent. *)

type t

val create : ?n:int -> ?seed:int64 -> unit -> t
(** Default experiment count per campaign and base seed (defaults: 200
    experiments, seed 20170626 — the DSN'17 conference date).  The seed of
    a given campaign is derived from the base seed, the workload name and
    the spec label, so distinct campaigns never share experiment streams. *)

val n : t -> int

val campaign : t -> Workload.t -> Spec.t -> Campaign.result
(** Run (or recall) one campaign. *)

val campaign_kept : t -> Workload.t -> Spec.t -> Campaign.result
(** Like {!campaign} but with per-experiment records retained; cached
    separately. *)

val cache_size : t -> int
