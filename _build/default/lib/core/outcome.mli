(** Outcome classification of a fault-injection experiment (§III-E).

    [Benign], [Detected], [Hang] and [No_output] all contribute to error
    resilience; [Sdc] — normal termination with a bitwise-different output
    — is the failure class the study measures. *)

type t =
  | Benign
  | Detected of Vm.Trap.t  (** detected by a hardware exception *)
  | Hang  (** exceeded the watchdog budget *)
  | No_output  (** terminated normally but produced no output *)
  | Sdc  (** silent data corruption *)

val classify : golden_output:string -> Vm.Exec.result -> t

val is_sdc : t -> bool
val is_detection : t -> bool
(** Detected, Hang or No_output — the paper's "Detection" super-category. *)

val to_string : t -> string
