type t = { technique : Technique.t; max_mbf : int; win : Win.t }

let single technique = { technique; max_mbf = 1; win = Fixed 0 }

let multi technique ~max_mbf ~win =
  if max_mbf < 2 then invalid_arg "Spec.multi: max_mbf must be >= 2";
  { technique; max_mbf; win }

let is_single t = t.max_mbf = 1

let label t =
  let tech = match t.technique with Technique.Read -> "read" | Write -> "write" in
  if is_single t then Printf.sprintf "%s/single" tech
  else Printf.sprintf "%s/m=%d/w=%s" tech t.max_mbf (Win.to_string t.win)

let equal a b =
  a.technique = b.technique && a.max_mbf = b.max_mbf && Win.equal a.win b.win
