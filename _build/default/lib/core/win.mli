(** The dynamic window size (win-size) between consecutive injections
    (§III-C, Table I).

    A window of 0 means every flip of the experiment lands in the same
    register at the same dynamic instruction.  A window of [w > 0] means
    the next flip targets the first candidate instruction at dynamic
    distance at least [w] from the previous injection, in the {e faulty}
    execution.  The randomised variants draw a fresh value per injection
    from their inclusive range, as the paper's RND(α, β) configurations. *)

type t = Fixed of int | Rnd of int * int

val sample : t -> Prng.t -> int
val to_string : t -> string
(** e.g. ["0"], ["100"], ["RND(2-10)"] — matching the paper's figures. *)

val equal : t -> t -> bool
