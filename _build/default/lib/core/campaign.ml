type result = {
  workload_name : string;
  spec : Spec.t;
  n : int;
  seed : int64;
  benign : int;
  detected : int;
  hang : int;
  no_output : int;
  sdc : int;
  traps : (Vm.Trap.t * int) list;
  activation : Stats.Histogram.t;
  experiments : Experiment.t array;
  weighted_sdc : float;
  weighted_total : float;
}

let run ?(keep_experiments = false) ?spacing workload spec ~n ~seed =
  if n <= 0 then invalid_arg "Campaign.run: n must be positive";
  let base = Prng.of_seed seed in
  let benign = ref 0
  and detected = ref 0
  and hang = ref 0
  and no_output = ref 0
  and sdc = ref 0 in
  let traps = Hashtbl.create 8 in
  let activation = Stats.Histogram.create () in
  let weighted_sdc = ref 0.0 and weighted_total = ref 0.0 in
  let kept = if keep_experiments then Array.make n None else [||] in
  for i = 0 to n - 1 do
    let rng = Prng.split_at base i in
    let e = Experiment.run ?spacing workload spec rng in
    (match e.outcome with
    | Benign -> incr benign
    | Detected trap ->
        incr detected;
        Hashtbl.replace traps trap (1 + Option.value ~default:0 (Hashtbl.find_opt traps trap))
    | Hang -> incr hang
    | No_output -> incr no_output
    | Sdc -> incr sdc);
    Stats.Histogram.add activation e.activated;
    (match e.first with
    | Some inj ->
        let w = float_of_int inj.inj_weight in
        weighted_total := !weighted_total +. w;
        if Outcome.is_sdc e.outcome then weighted_sdc := !weighted_sdc +. w
    | None -> ());
    if keep_experiments then kept.(i) <- Some e
  done;
  let experiments =
    if keep_experiments then
      Array.map (function Some e -> e | None -> assert false) kept
    else [||]
  in
  {
    workload_name = workload.Workload.name;
    spec;
    n;
    seed;
    benign = !benign;
    detected = !detected;
    hang = !hang;
    no_output = !no_output;
    sdc = !sdc;
    traps = Hashtbl.fold (fun t c acc -> (t, c) :: acc) traps [];
    activation;
    experiments;
    weighted_sdc = !weighted_sdc;
    weighted_total = !weighted_total;
  }

let sdc_ci r = Stats.Proportion.wald ~successes:r.sdc ~trials:r.n ()

let detection_ci r =
  Stats.Proportion.wald ~successes:(r.detected + r.hang + r.no_output) ~trials:r.n ()

let benign_ci r = Stats.Proportion.wald ~successes:r.benign ~trials:r.n ()
let sdc_pct r = 100. *. float_of_int r.sdc /. float_of_int r.n

let weighted_sdc_pct r =
  if r.weighted_total <= 0.0 then 0.0
  else 100. *. r.weighted_sdc /. r.weighted_total
