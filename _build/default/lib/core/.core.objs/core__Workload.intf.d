lib/core/workload.mli: Ir Technique Vm
