lib/core/experiment.mli: Injector Outcome Prng Spec Workload
