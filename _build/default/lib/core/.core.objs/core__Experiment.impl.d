lib/core/experiment.ml: Injector Outcome Spec Vm Workload
