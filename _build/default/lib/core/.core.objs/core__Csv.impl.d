lib/core/csv.ml: Campaign List Printf Stats Technique Win
