lib/core/spec.mli: Technique Win
