lib/core/outcome.ml: String Vm
