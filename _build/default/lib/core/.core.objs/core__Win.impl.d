lib/core/win.ml: Printf Prng
