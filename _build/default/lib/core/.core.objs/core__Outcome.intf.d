lib/core/outcome.mli: Vm
