lib/core/csv.mli: Campaign
