lib/core/spec.ml: Printf Technique Win
