lib/core/technique.mli:
