lib/core/injector.mli: Ir Prng Spec Vm
