lib/core/workload.ml: Printf String Technique Vm
