lib/core/campaign.mli: Experiment Spec Stats Vm Workload
