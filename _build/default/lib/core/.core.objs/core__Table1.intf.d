lib/core/table1.mli: Spec Technique Win
