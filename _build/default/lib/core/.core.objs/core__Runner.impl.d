lib/core/runner.ml: Campaign Char Hashtbl Int64 Printf Spec String Workload
