lib/core/injector.ml: Array Ir List Prng Spec Technique Vm Win
