lib/core/campaign.ml: Array Experiment Hashtbl Option Outcome Prng Spec Stats Vm Workload
