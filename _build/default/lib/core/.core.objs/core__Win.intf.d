lib/core/win.mli: Prng
