lib/core/runner.mli: Campaign Spec Workload
