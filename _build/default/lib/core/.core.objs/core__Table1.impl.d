lib/core/table1.ml: List Spec Technique Win
