lib/core/technique.ml:
