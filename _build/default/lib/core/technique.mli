(** The two fault-injection techniques of the study (§III-A).

    [Read] (inject-on-read) flips bits of a register source operand just
    before an instruction reads it — emulating an error that propagated
    into a live register, e.g. a direct particle hit.  [Write]
    (inject-on-write) flips bits of the destination register right after an
    instruction writes it — emulating computation errors in ALUs and
    pipeline registers.  Both only ever touch live registers, which is what
    keeps fault activation near 100%. *)

type t = Read | Write

val to_string : t -> string
val of_string : string -> t option
val all : t list
