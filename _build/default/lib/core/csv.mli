(** CSV serialisation of campaign results, for offline analysis. *)

val header : string
(** Column names for {!row}. *)

val row : Campaign.result -> string
(** One comma-separated line per campaign: workload, technique, max-MBF,
    win-size, n, outcome counts, SDC%, and the 95% CI half-width. *)

val write : out_channel -> Campaign.result list -> unit
(** Header plus one row per result. *)
