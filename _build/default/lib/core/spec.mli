(** A fault-model specification: one error cluster of the study.

    The paper clusters the multiple-bit error space by (max-MBF, win-size);
    together with the technique this identifies a campaign's fault model.
    [max_mbf = 1] is the single bit-flip model (win-size is irrelevant and
    normalised to [Fixed 0]). *)

type t = { technique : Technique.t; max_mbf : int; win : Win.t }

val single : Technique.t -> t
val multi : Technique.t -> max_mbf:int -> win:Win.t -> t
(** @raise Invalid_argument if [max_mbf < 2]. *)

val is_single : t -> bool
val label : t -> string
(** e.g. ["read/m=3/w=RND(2-10)"]. *)

val equal : t -> t -> bool
