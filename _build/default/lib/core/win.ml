type t = Fixed of int | Rnd of int * int

let sample t rng =
  match t with
  | Fixed w -> w
  | Rnd (lo, hi) -> Prng.int_in_range rng ~lo ~hi

let to_string = function
  | Fixed w -> string_of_int w
  | Rnd (lo, hi) -> Printf.sprintf "RND(%d-%d)" lo hi

let equal (a : t) b = a = b
