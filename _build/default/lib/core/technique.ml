type t = Read | Write

let to_string = function Read -> "inject-on-read" | Write -> "inject-on-write"

let of_string = function
  | "read" | "inject-on-read" -> Some Read
  | "write" | "inject-on-write" -> Some Write
  | _ -> None

let all = [ Read; Write ]
