type t = {
  name : string;
  prog : Vm.Program.t;
  golden : Vm.Exec.result;
  budget : int;
}

let make ?(hang_factor = 10) ?expected_output ~name m =
  let prog = Vm.Program.load m in
  let golden = Vm.Exec.run ~budget:Vm.Exec.golden_budget prog in
  (match golden.status with
  | Finished -> ()
  | Trapped trap ->
      invalid_arg
        (Printf.sprintf "Workload.make: %s golden run trapped (%s)" name
           (Vm.Trap.to_string trap))
  | Hung -> invalid_arg ("Workload.make: " ^ name ^ " golden run hung"));
  (match expected_output with
  | Some expected when not (String.equal expected golden.output) ->
      invalid_arg ("Workload.make: " ^ name ^ " golden output mismatch")
  | Some _ | None -> ());
  if golden.read_cands = 0 || golden.write_cands = 0 then
    invalid_arg ("Workload.make: " ^ name ^ " has no injection candidates");
  { name; prog; golden; budget = (hang_factor * golden.dyn_count) + 1000 }

let candidates t = function
  | Technique.Read -> t.golden.read_cands
  | Technique.Write -> t.golden.write_cands
