(** The parameter grid of Table I and the 182-campaign experiment plan.

    Per program the paper runs, for each technique: one single bit-flip
    campaign plus one campaign per (max-MBF, win-size) pair —
    1 + 10 x 9 = 91 campaigns, 182 over both techniques. *)

val max_mbf_values : int list
(** m1..m10: 2, 3, 4, 5, 6, 7, 8, 9, 10, 30. *)

val win_values : Win.t list
(** w1..w9: 0, 1, 4, RND(2-10), 10, RND(11-100), 100, RND(101-1000), 1000. *)

val win_positive : Win.t list
(** w2..w9 — the windows used for multi-register experiments (§IV-C). *)

val multi_specs : Technique.t -> Spec.t list
(** The 90 multiple-bit clusters for one technique, max-MBF-major order. *)

val specs : Technique.t -> Spec.t list
(** Single first, then {!multi_specs}: 91 specs. *)

val all_specs : Spec.t list
(** Both techniques: the paper's 182 campaigns per program. *)
