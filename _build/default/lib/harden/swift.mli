(** Software-implemented hardware fault tolerance: a SWIFT-style
    instruction-duplication pass.

    The paper's future work asks for specific fault-tolerance techniques
    whose coverage can be measured under the single- and multiple-bit
    models; this module provides one.  Following SWIFT (Reis et al., CGO
    2005), every computation writes both its original register and a
    shadow copy computed from shadow operands, and [Guard] checks compare
    original against shadow at synchronisation points.  A diverging pair
    raises [Guard_violation], turning a would-be SDC into a detection.

    Memory is not duplicated (SWIFT assumes ECC-protected memory): loads
    copy the loaded value into the shadow register, and stores/outputs are
    preceded by checks of both value and address.  Calls are executed once,
    with checked register arguments and a shadowed result.

    Check placement levels:
    - [`Full]: checks before every store (value + address), load address,
      output, call argument, conditional branch and return — SWIFT's
      placement;
    - [`Light]: duplication with checks only before outputs and stores —
      a cheaper detector with a larger vulnerability window.

    The pass is semantics-preserving on fault-free runs: the hardened
    program's output equals the original's (asserted by the test suite for
    all 15 benchmarks). *)

val apply : ?level:[ `Full | `Light ] -> Ir.Func.modl -> Ir.Func.modl
(** Harden every function of a validated module (default [`Full]).
    The result validates; register count per function doubles. *)

val static_overhead : Ir.Func.modl -> Ir.Func.modl -> float
(** [static_overhead base hardened] is the static instruction-count ratio
    (hardened / base), the usual headline cost of SWIFT-style schemes. *)
