(** Triple modular redundancy: a correcting (rather than detecting)
    software fault-tolerance pass, the classic alternative to SWIFT-style
    duplication.

    Every computation is triplicated into two shadow copies; at each
    synchronisation point (store value/address, load address, output,
    conditional branch, call argument, return value) the three copies are
    {e voted} and the majority value used.  Integer and pointer registers
    vote bitwise — [(a & b) | ((a | b) & c)] — which corrects any fault
    confined to one copy, bit by bit; [f64] registers vote by equality
    selection.  A corrupted copy is thus masked instead of detected: under
    fault injection TMR converts would-be SDCs into {e Benign} outcomes,
    where SWIFT converts them into detections.

    Voting repairs the value at the point of use but does not write back
    into the diverged copy, so a second fault hitting a different copy of
    the same register later in the run can defeat the vote — which is
    exactly what makes TMR an interesting subject for the multiple bit-flip
    study. *)

val apply : Ir.Func.modl -> Ir.Func.modl
(** Triplicate every function of a validated module.  The result
    validates; fault-free behaviour is unchanged (asserted by the test
    suite for all 15 benchmarks). *)
