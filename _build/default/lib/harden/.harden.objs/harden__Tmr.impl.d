lib/harden/tmr.ml: Array Builtins Func Hashtbl Instr Ir List Ty Validate
