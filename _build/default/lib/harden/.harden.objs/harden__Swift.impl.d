lib/harden/swift.ml: Array Builtins Func Hashtbl Instr Ir List Ty Validate
