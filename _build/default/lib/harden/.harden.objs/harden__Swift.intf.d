lib/harden/swift.mli: Ir
