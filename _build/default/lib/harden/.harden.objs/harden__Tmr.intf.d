lib/harden/tmr.mli: Ir
