open Ir

(* Shadow register of [r] in a function with [n] original registers. *)
let sh_reg n r = r + n

let sh_operand n (op : Instr.operand) : Instr.operand =
  match op with
  | Reg r -> Reg (sh_reg n r)
  | Imm _ | FImm _ | Glob _ -> op

(* A guard comparing an operand against its shadow; pointless (and
   omitted) for immediates, whose shadow is themselves. *)
let guard_of n ty (op : Instr.operand) : Instr.t list =
  match op with
  | Reg _ -> [ Instr.Guard { ty; a = op; b = sh_operand n op } ]
  | Imm _ | FImm _ | Glob _ -> []

let apply ?(level = `Full) (m : Func.modl) =
  Validate.check_exn m;
  let full = level = `Full in
  let sigs = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace sigs f.f_name (f.f_params, f.f_ret))
    m.m_funcs;
  let signature name =
    match Hashtbl.find_opt sigs name with
    | Some s -> Some s
    | None -> Builtins.signature name
  in
  let harden_func (f : Func.t) =
    let n = Array.length f.f_reg_ty in
    let sh = sh_operand n in
    let harden_instr (i : Instr.t) : Instr.t list =
      match i with
      | Binop { op; ty; dst; a; b } ->
          [ i; Binop { op; ty; dst = sh_reg n dst; a = sh a; b = sh b } ]
      | Fbinop { op; dst; a; b } ->
          [ i; Fbinop { op; dst = sh_reg n dst; a = sh a; b = sh b } ]
      | Icmp { op; ty; dst; a; b } ->
          [ i; Icmp { op; ty; dst = sh_reg n dst; a = sh a; b = sh b } ]
      | Fcmp { op; dst; a; b } ->
          [ i; Fcmp { op; dst = sh_reg n dst; a = sh a; b = sh b } ]
      | Select { ty; dst; cond; a; b } ->
          [
            i;
            Select
              { ty; dst = sh_reg n dst; cond = sh cond; a = sh a; b = sh b };
          ]
      | Cast { op; from_ty; to_ty; dst; a } ->
          [ i; Cast { op; from_ty; to_ty; dst = sh_reg n dst; a = sh a } ]
      | Mov { ty; dst; a } -> [ i; Mov { ty; dst = sh_reg n dst; a = sh a } ]
      | Gep { dst; base; index; scale } ->
          [
            i;
            Gep { dst = sh_reg n dst; base = sh base; index = sh index; scale };
          ]
      | Load { ty; dst; addr } ->
          (* Memory carries one copy (ECC assumption): check the address,
             load once, refresh the shadow from the loaded value. *)
          (if full then guard_of n Ptr addr else [])
          @ [ i; Mov { ty; dst = sh_reg n dst; a = Reg dst } ]
      | Store { ty; value; addr } ->
          guard_of n ty value @ guard_of n Ptr addr @ [ i ]
      | Call { dst; callee; args } ->
          let params, ret =
            match signature callee with
            | Some (p, r) -> (p, r)
            | None -> ([], None)
          in
          let arg_guards =
            if full && List.length params = List.length args then
              List.concat (List.map2 (fun ty a -> guard_of n ty a) params args)
            else []
          in
          let shadow_result =
            match (dst, ret) with
            | Some d, Some ty ->
                [ Instr.Mov { ty; dst = sh_reg n d; a = Reg d } ]
            | (Some _ | None), _ -> []
          in
          arg_guards @ (i :: shadow_result)
      | Output { ty; value } -> guard_of n ty value @ [ i ]
      | Guard _ | Abort -> [ i ]
    in
    let blocks =
      Array.mapi
        (fun bi (b : Func.block) ->
          let prologue =
            if bi = 0 then
              List.mapi
                (fun p ty -> Instr.Mov { ty; dst = sh_reg n p; a = Instr.Reg p })
                f.f_params
            else []
          in
          let body = List.concat_map harden_instr (Array.to_list b.b_instrs) in
          let term_guards =
            match b.b_term with
            | Cbr { cond; _ } when full -> guard_of n Ty.I1 cond
            | Ret (Some v) when full -> (
                match f.f_ret with Some ty -> guard_of n ty v | None -> [])
            | Cbr _ | Ret _ | Br _ | Unreachable -> []
          in
          { b with b_instrs = Array.of_list (prologue @ body @ term_guards) })
        f.f_blocks
    in
    {
      f with
      f_blocks = blocks;
      f_reg_ty = Array.append f.f_reg_ty f.f_reg_ty;
    }
  in
  let hardened = { m with m_funcs = List.map harden_func m.m_funcs } in
  Validate.check_exn hardened;
  hardened

let static_overhead base hardened =
  let count (m : Func.modl) =
    List.fold_left (fun acc f -> acc + Func.static_instr_count f) 0 m.m_funcs
  in
  float_of_int (count hardened) /. float_of_int (count base)
