open Ir

(* Register bank layout: original r, first shadow r + n, second shadow
   r + 2n; voting scratch registers are appended after 3n. *)

type ctx = {
  n : int;
  mutable extra : Ty.t list; (* reversed scratch types *)
  mutable next_reg : int;
}

let fresh ctx ty =
  let r = ctx.next_reg in
  ctx.next_reg <- r + 1;
  ctx.extra <- ty :: ctx.extra;
  r

let shift ctx k (op : Instr.operand) : Instr.operand =
  match op with
  | Reg r -> Reg (r + (k * ctx.n))
  | Imm _ | FImm _ | Glob _ -> op

(* Majority vote of the three copies of a register operand.  Returns the
   instructions computing the vote and the operand to use instead.
   Immediates are their own majority. *)
let vote ctx ty (op : Instr.operand) : Instr.t list * Instr.operand =
  match op with
  | Imm _ | FImm _ | Glob _ -> ([], op)
  | Reg _ ->
      let a = op and b = shift ctx 1 op and c = shift ctx 2 op in
      if Ty.is_float ty then begin
        (* v = if a = b then a else (if a = c then a else b) *)
        let e_ab = fresh ctx I1 and e_ac = fresh ctx I1 in
        let alt = fresh ctx ty and v = fresh ctx ty in
        ( [
            Instr.Fcmp { op = Foeq; dst = e_ab; a; b };
            Instr.Fcmp { op = Foeq; dst = e_ac; a; b = c };
            Instr.Select { ty; dst = alt; cond = Reg e_ac; a; b };
            Instr.Select { ty; dst = v; cond = Reg e_ab; a; b = Reg alt };
          ],
          Reg v )
      end
      else begin
        (* bitwise majority: (a & b) | ((a | b) & c) *)
        let t1 = fresh ctx ty and t2 = fresh ctx ty in
        let t3 = fresh ctx ty and v = fresh ctx ty in
        ( [
            Instr.Binop { op = And; ty; dst = t1; a; b };
            Instr.Binop { op = Or; ty; dst = t2; a; b };
            Instr.Binop { op = And; ty; dst = t3; a = Reg t2; b = c };
            Instr.Binop { op = Or; ty; dst = v; a = Reg t1; b = Reg t3 };
          ],
          Reg v )
      end

let apply (m : Func.modl) =
  Validate.check_exn m;
  let sigs = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace sigs f.f_name (f.f_params, f.f_ret))
    m.m_funcs;
  let signature name =
    match Hashtbl.find_opt sigs name with
    | Some s -> Some s
    | None -> Builtins.signature name
  in
  let transform_func (f : Func.t) =
    let n = Array.length f.f_reg_ty in
    let ctx = { n; extra = []; next_reg = 3 * n } in
    let copy k (i : Instr.t) : Instr.t =
      let s op = shift ctx k op in
      let d r = r + (k * n) in
      match i with
      | Binop { op; ty; dst; a; b } ->
          Binop { op; ty; dst = d dst; a = s a; b = s b }
      | Fbinop { op; dst; a; b } -> Fbinop { op; dst = d dst; a = s a; b = s b }
      | Icmp { op; ty; dst; a; b } ->
          Icmp { op; ty; dst = d dst; a = s a; b = s b }
      | Fcmp { op; dst; a; b } -> Fcmp { op; dst = d dst; a = s a; b = s b }
      | Select { ty; dst; cond; a; b } ->
          Select { ty; dst = d dst; cond = s cond; a = s a; b = s b }
      | Cast { op; from_ty; to_ty; dst; a } ->
          Cast { op; from_ty; to_ty; dst = d dst; a = s a }
      | Mov { ty; dst; a } -> Mov { ty; dst = d dst; a = s a }
      | Gep { dst; base; index; scale } ->
          Gep { dst = d dst; base = s base; index = s index; scale }
      | Load _ | Store _ | Call _ | Output _ | Guard _ | Abort ->
          invalid_arg "Tmr.copy: not a pure computation"
    in
    let transform_instr (i : Instr.t) : Instr.t list =
      match i with
      | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Mov _
      | Gep _ ->
          [ i; copy 1 i; copy 2 i ]
      | Load { ty; dst; addr } ->
          let va, addr' = vote ctx Ptr addr in
          va
          @ [
              Load { ty; dst; addr = addr' };
              Mov { ty; dst = dst + n; a = Reg dst };
              Mov { ty; dst = dst + (2 * n); a = Reg dst };
            ]
      | Store { ty; value; addr } ->
          let vv, value' = vote ctx ty value in
          let va, addr' = vote ctx Ptr addr in
          vv @ va @ [ Store { ty; value = value'; addr = addr' } ]
      | Call { dst; callee; args } ->
          let params, ret =
            match signature callee with
            | Some (p, r) -> (p, r)
            | None -> ([], None)
          in
          let votes, args' =
            if List.length params = List.length args then
              List.fold_right2
                (fun ty a (vs, args') ->
                  let v, a' = vote ctx ty a in
                  (v @ vs, a' :: args'))
                params args ([], [])
            else ([], args)
          in
          let shadow_results =
            match (dst, ret) with
            | Some d, Some ty ->
                [
                  Instr.Mov { ty; dst = d + n; a = Reg d };
                  Instr.Mov { ty; dst = d + (2 * n); a = Reg d };
                ]
            | (Some _ | None), _ -> []
          in
          votes @ (Call { dst; callee; args = args' } :: shadow_results)
      | Output { ty; value } ->
          let vv, value' = vote ctx ty value in
          vv @ [ Output { ty; value = value' } ]
      | Guard { ty; a; b } ->
          let va, a' = vote ctx ty a in
          let vb, b' = vote ctx ty b in
          va @ vb @ [ Guard { ty; a = a'; b = b' } ]
      | Abort -> [ i ]
    in
    let blocks =
      Array.mapi
        (fun bi (b : Func.block) ->
          let prologue =
            if bi = 0 then
              List.concat
                (List.mapi
                   (fun p ty ->
                     [
                       Instr.Mov { ty; dst = p + n; a = Instr.Reg p };
                       Instr.Mov { ty; dst = p + (2 * n); a = Instr.Reg p };
                     ])
                   f.f_params)
            else []
          in
          let body =
            List.concat_map transform_instr (Array.to_list b.b_instrs)
          in
          let tail_votes, term =
            match b.b_term with
            | Cbr { cond; if_true; if_false } ->
                let vc, cond' = vote ctx Ty.I1 cond in
                (vc, Instr.Cbr { cond = cond'; if_true; if_false })
            | Ret (Some v) -> (
                match f.f_ret with
                | Some ty ->
                    let vv, v' = vote ctx ty v in
                    (vv, Instr.Ret (Some v'))
                | None -> ([], b.b_term))
            | Br _ | Ret None | Unreachable -> ([], b.b_term)
          in
          {
            Func.b_name = b.b_name;
            b_instrs = Array.of_list (prologue @ body @ tail_votes);
            b_term = term;
          })
        f.f_blocks
    in
    let reg_ty =
      Array.concat
        [
          f.f_reg_ty;
          f.f_reg_ty;
          f.f_reg_ty;
          Array.of_list (List.rev ctx.extra);
        ]
    in
    { f with f_blocks = blocks; f_reg_ty = reg_ty }
  in
  let out = { m with m_funcs = List.map transform_func m.m_funcs } in
  Validate.check_exn out;
  out
