type row = {
  program : string;
  technique : Core.Technique.t;
  single : Core.Campaign.result;
  cells : (Core.Spec.t * Core.Campaign.result) list;
}

let compute (study : Study.t) technique =
  List.map
    (fun (w : Core.Workload.t) ->
      let single =
        Core.Runner.campaign study.runner w (Core.Spec.single technique)
      in
      let cells =
        List.concat_map
          (fun max_mbf ->
            List.map
              (fun win ->
                let spec = Core.Spec.multi technique ~max_mbf ~win in
                (spec, Core.Runner.campaign study.runner w spec))
              Core.Table1.win_positive)
          Core.Table1.max_mbf_values
      in
      { program = w.name; technique; single; cells })
    study.workloads

let best_multi row =
  match row.cells with
  | [] -> invalid_arg "Grid.best_multi: empty grid"
  | first :: rest ->
      List.fold_left
        (fun ((_, br) as best) ((_, r) as cell) ->
          if Core.Campaign.sdc_pct r > Core.Campaign.sdc_pct br then cell
          else best)
        first rest

let ci_half_pp r = 100. *. Stats.Proportion.half_width (Core.Campaign.sdc_ci r)

(* Standard error (in percentage points) of the difference between two
   campaigns' SDC shares. *)
let se_diff_pp (a : Core.Campaign.result) (b : Core.Campaign.result) =
  let se (r : Core.Campaign.result) =
    let p = float_of_int r.sdc /. float_of_int r.n in
    p *. (1. -. p) /. float_of_int r.n
  in
  100. *. sqrt (se a +. se b)

let single_is_pessimistic ?slack_pp row =
  match slack_pp with
  | Some slack ->
      let _, best = best_multi row in
      Core.Campaign.sdc_pct row.single >= Core.Campaign.sdc_pct best -. slack
  | None ->
      (* The paper (n = 10,000) calls the single-bit model pessimistic when
         no multi-bit cluster beats it by more than about one percentage
         point.  Comparing a single campaign against the maximum of 80
         noisy cells is a multiple-comparison problem, so at smaller n each
         cell must exceed the single-bit estimate by a Bonferroni-corrected
         margin (z ~ 3.3 for 80 one-sided tests at the 5% family level)
         before it disqualifies pessimism; the paper's 1 pp resolution is
         kept as the floor.  As n grows the margin tightens toward the
         paper's own comparison. *)
      let single_pct = Core.Campaign.sdc_pct row.single in
      let z = 3.3 in
      List.for_all
        (fun (_, cell) ->
          let margin = Float.max 1.0 (z *. se_diff_pp row.single cell) in
          Core.Campaign.sdc_pct cell <= single_pct +. margin)
        row.cells

let min_mbf_reaching_best row ~win =
  let column =
    List.filter
      (fun ((spec : Core.Spec.t), _) -> Core.Win.equal spec.win win)
      row.cells
  in
  match column with
  | [] -> None
  | _ ->
      let best_pct =
        List.fold_left
          (fun acc (_, r) -> max acc (Core.Campaign.sdc_pct r)) 0. column
      in
      let tolerance_of r =
        100. *. Stats.Proportion.half_width (Core.Campaign.sdc_ci r)
      in
      column
      |> List.filter (fun (_, r) ->
             Core.Campaign.sdc_pct r >= best_pct -. tolerance_of r)
      |> List.map (fun ((spec : Core.Spec.t), _) -> spec.max_mbf)
      |> List.fold_left min max_int
      |> fun m -> if m = max_int then None else Some m
