type row = {
  program : string;
  technique : Core.Technique.t;
  n_sdc : int;
  mean_extent : float;
  mean_onset : float;
  single_byte : int;
  wholesale : int;
}

let extent ~golden faulty =
  let lg = String.length golden and lf = String.length faulty in
  let longer = max lg lf in
  if longer = 0 then 0.
  else begin
    let diff = ref 0 in
    for i = 0 to longer - 1 do
      let g = if i < lg then Some golden.[i] else None in
      let f = if i < lf then Some faulty.[i] else None in
      if g <> f then incr diff
    done;
    float_of_int !diff /. float_of_int longer
  end

let onset ~golden faulty =
  let lg = String.length golden and lf = String.length faulty in
  let common = min lg lf in
  let rec first i =
    if i >= common then if lg = lf then None else Some common
    else if golden.[i] <> faulty.[i] then Some i
    else first (i + 1)
  in
  match first 0 with
  | None -> 1.0
  | Some i ->
      let longer = max lg lf in
      if longer = 0 then 1.0 else float_of_int i /. float_of_int longer

let diff_bytes ~golden faulty =
  let lg = String.length golden and lf = String.length faulty in
  let longer = max lg lf in
  let diff = ref 0 in
  for i = 0 to longer - 1 do
    let g = if i < lg then Some golden.[i] else None in
    let f = if i < lf then Some faulty.[i] else None in
    if g <> f then incr diff
  done;
  !diff

let compute (study : Study.t) technique =
  List.map
    (fun (w : Core.Workload.t) ->
      let c =
        Core.Runner.campaign_kept study.runner w (Core.Spec.single technique)
      in
      let golden = w.golden.output in
      let sdcs =
        Array.to_list c.experiments
        |> List.filter (fun (e : Core.Experiment.t) ->
               Core.Outcome.is_sdc e.outcome)
      in
      let n_sdc = List.length sdcs in
      let sum f = List.fold_left (fun acc e -> acc +. f e) 0.0 sdcs in
      let mean f = if n_sdc = 0 then 0.0 else sum f /. float_of_int n_sdc in
      {
        program = w.name;
        technique;
        n_sdc;
        mean_extent = mean (fun (e : Core.Experiment.t) -> extent ~golden e.output);
        mean_onset = mean (fun (e : Core.Experiment.t) -> onset ~golden e.output);
        single_byte =
          List.length
            (List.filter
               (fun (e : Core.Experiment.t) -> diff_bytes ~golden e.output = 1)
               sdcs);
        wholesale =
          List.length
            (List.filter
               (fun (e : Core.Experiment.t) ->
                 extent ~golden e.output > 0.5)
               sdcs);
      })
    study.workloads

type bit_row = { bit_bucket : int; n : int; sdc : int; detected : int }

let by_bit (study : Study.t) technique =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (w : Core.Workload.t) ->
      let c =
        Core.Runner.campaign_kept study.runner w (Core.Spec.single technique)
      in
      Array.iter
        (fun (e : Core.Experiment.t) ->
          match e.first with
          | None -> ()
          | Some inj ->
              let bucket = inj.inj_bit / 8 in
              let n, sdc, det =
                Option.value ~default:(0, 0, 0) (Hashtbl.find_opt counts bucket)
              in
              Hashtbl.replace counts bucket
                ( n + 1,
                  (if Core.Outcome.is_sdc e.outcome then sdc + 1 else sdc),
                  if Core.Outcome.is_detection e.outcome then det + 1 else det ))
        c.experiments)
    study.workloads;
  Hashtbl.fold
    (fun bit_bucket (n, sdc, detected) acc ->
      { bit_bucket; n; sdc; detected } :: acc)
    counts []
  |> List.sort (fun a b -> compare a.bit_bucket b.bit_bucket)
