(** Fault-tolerance coverage under single and multiple bit-flip models.

    The paper's future work proposes taking a specific fault-tolerance
    technique and measuring its coverage under both fault models.  This
    analysis does that for the SWIFT-style duplication pass of
    [Onebit.Harden]: each program is measured unhardened and hardened (full
    and light check placement), under the single-bit model and two
    representative multi-bit clusters, for both techniques. *)

type variant = Baseline | Swift_full | Swift_light | Tmr

type row = {
  program : string;
  variant : variant;
  technique : Core.Technique.t;
  dyn_overhead : float;  (** golden dynamic length vs. baseline *)
  results : (Core.Spec.t * Core.Campaign.result) list;
      (** single, then (m=2, w=1) and (m=3, w=1) *)
}

val specs_measured : Core.Technique.t -> Core.Spec.t list

val compute :
  ?n:int -> ?seed:int64 -> ?programs:string list -> unit -> row list
(** Defaults: n = 200, the five programs qsort, crc32, sha, fft, spmv
    (diverse integer/float/pointer mixes), both techniques, all four
    variants.  Rows are grouped program-major, baseline first. *)

val variant_name : variant -> string
