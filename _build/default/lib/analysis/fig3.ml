type dist = {
  technique : Core.Technique.t;
  histogram : Stats.Histogram.t;
  total : int;
}

let compute (study : Study.t) technique =
  let histogram =
    List.fold_left
      (fun acc (w : Core.Workload.t) ->
        List.fold_left
          (fun acc win ->
            let spec = Core.Spec.multi technique ~max_mbf:30 ~win in
            let r = Core.Runner.campaign study.runner w spec in
            Stats.Histogram.merge acc r.activation)
          acc Core.Table1.win_positive)
      (Stats.Histogram.create ())
      study.workloads
  in
  { technique; histogram; total = Stats.Histogram.total histogram }

let share d ~lo ~hi =
  if d.total = 0 then 0.
  else
    float_of_int (Stats.Histogram.range_count d.histogram ~lo ~hi)
    /. float_of_int d.total
