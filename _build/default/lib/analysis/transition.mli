(** Table IV analogue: sensitivity of fault-injection locations to
    multiple-bit errors (§IV-C3, Fig. 6).

    For every single bit-flip experiment we know its location — the
    (candidate ordinal, operand slot, bit) of the injection — and its
    outcome.  Replaying each location under the program's worst-case
    multi-bit cluster (Table III) measures the two transitions that would
    add SDCs:

    - Transition I:  single-bit outcome was Detection, multi-bit yields SDC;
    - Transition II: single-bit outcome was Benign, multi-bit yields SDC.

    The paper's pruning rule (RQ5) follows from Transition I being rare:
    multi-bit campaigns need only seed their first error at locations that
    were Benign under the single-bit model. *)

type row = {
  program : string;
  technique : Core.Technique.t;
  best : Core.Spec.t;  (** the multi-bit cluster used for the replay *)
  n_detection : int;  (** single-bit Detection locations replayed *)
  tran1 : int;  (** of those, how many became SDC *)
  n_benign : int;  (** single-bit Benign locations replayed *)
  tran2 : int;  (** of those, how many became SDC *)
}

val compute : ?cap:int -> Study.t -> Core.Technique.t -> row list
(** [cap] bounds the number of locations replayed per class (default 400).
    The best cluster per program is taken from the same study's grids. *)

val tran1_pct : row -> float
val tran2_pct : row -> float
