type activation_summary = {
  share_le5 : float;
  share_6_10 : float;
  share_gt10 : float;
}

type rq3_summary = {
  pairs_total : int;
  pairs_le3 : int;
  max_needed : int;
}

type t = {
  rq1_read : activation_summary;
  rq1_write : activation_summary;
  rq2_campaigns_total : int;
  rq2_campaigns_single_pessimistic : int;
  rq2_programs_read_pessimistic : int;
  rq2_programs_write_pessimistic : int;
  rq3_read : rq3_summary;
  rq3_write : rq3_summary;
  rq4_read_best_wins : (string * Core.Win.t) list;
  rq4_write_best_wins : (string * Core.Win.t) list;
}

let activation_summary dist =
  {
    share_le5 = Fig3.share dist ~lo:0 ~hi:5;
    share_6_10 = Fig3.share dist ~lo:6 ~hi:10;
    share_gt10 = Fig3.share dist ~lo:11 ~hi:max_int;
  }

(* A multi-bit campaign counts as covered by the single-bit model when its
   SDC percentage does not significantly exceed the single-bit campaign's
   (tolerance: the campaign's own CI half-width, at least 1 pp — the
   resolution the paper works at). *)
let rq2_counts grids =
  List.fold_left
    (fun (total, covered) (row : Grid.row) ->
      let single_pct = Core.Campaign.sdc_pct row.single in
      List.fold_left
        (fun (total, covered) (_, r) ->
          let tol = Float.max 1.0 (Grid.ci_half_pp r) in
          ( total + 1,
            if Core.Campaign.sdc_pct r <= single_pct +. tol then covered + 1
            else covered ))
        (total, covered) row.cells)
    (0, 0) grids

let rq3_summary grids =
  let pairs =
    List.concat_map
      (fun (row : Grid.row) ->
        List.filter_map
          (fun win -> Grid.min_mbf_reaching_best row ~win)
          Core.Table1.win_positive)
      grids
  in
  {
    pairs_total = List.length pairs;
    pairs_le3 = List.length (List.filter (fun m -> m <= 3) pairs);
    max_needed = List.fold_left max 0 pairs;
  }

let best_wins grids =
  List.map
    (fun (row : Grid.row) ->
      let spec, _ = Grid.best_multi row in
      (row.program, spec.win))
    grids

let compute study =
  let read = Grid.compute study Core.Technique.Read in
  let write = Grid.compute study Core.Technique.Write in
  let rt, rc = rq2_counts read in
  let wt, wc = rq2_counts write in
  let count_pessimistic = List.filter Grid.single_is_pessimistic in
  {
    rq1_read = activation_summary (Fig3.compute study Core.Technique.Read);
    rq1_write = activation_summary (Fig3.compute study Core.Technique.Write);
    rq2_campaigns_total = rt + wt;
    rq2_campaigns_single_pessimistic = rc + wc;
    rq2_programs_read_pessimistic = List.length (count_pessimistic read);
    rq2_programs_write_pessimistic = List.length (count_pessimistic write);
    rq3_read = rq3_summary read;
    rq3_write = rq3_summary write;
    rq4_read_best_wins = best_wins read;
    rq4_write_best_wins = best_wins write;
  }

let winsize_at_most wins bound =
  List.length
    (List.filter
       (fun (_, w) ->
         match (w : Core.Win.t) with
         | Fixed v -> v <= bound
         | Rnd (lo, _) -> lo <= bound)
       wins)
