lib/analysis/grid.mli: Core Study
