lib/analysis/fig3.mli: Core Stats Study
