lib/analysis/coverage.ml: Bench_suite Core Harden List
