lib/analysis/grid.ml: Core Float List Stats Study
