lib/analysis/fig2.ml: Core List Study
