lib/analysis/targets.mli: Core Ir Study
