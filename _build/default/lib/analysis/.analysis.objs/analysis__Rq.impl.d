lib/analysis/rq.ml: Core Fig3 Float Grid List
