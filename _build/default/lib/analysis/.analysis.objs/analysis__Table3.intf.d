lib/analysis/table3.mli: Core Grid Study
