lib/analysis/coverage.mli: Core
