lib/analysis/transition.mli: Core Study
