lib/analysis/table2.ml: Bench_suite Core List Study
