lib/analysis/severity.mli: Core Study
