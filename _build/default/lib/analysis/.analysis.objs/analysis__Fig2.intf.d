lib/analysis/fig2.mli: Core Study
