lib/analysis/study.ml: Bench_suite Core List
