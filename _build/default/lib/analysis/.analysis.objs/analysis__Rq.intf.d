lib/analysis/rq.mli: Core Study
