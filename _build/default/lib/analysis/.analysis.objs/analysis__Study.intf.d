lib/analysis/study.mli: Core
