lib/analysis/table2.mli: Study
