lib/analysis/table3.ml: Core Grid List
