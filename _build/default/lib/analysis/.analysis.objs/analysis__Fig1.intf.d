lib/analysis/fig1.mli: Core Study
