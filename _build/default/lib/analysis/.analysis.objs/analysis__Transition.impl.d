lib/analysis/transition.ml: Array Core Grid Hashtbl Int64 List Prng Study
