lib/analysis/severity.ml: Array Core Hashtbl List Option String Study
