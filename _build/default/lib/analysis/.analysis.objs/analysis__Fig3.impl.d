lib/analysis/fig3.ml: Core List Stats Study
