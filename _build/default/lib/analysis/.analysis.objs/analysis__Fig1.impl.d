lib/analysis/fig1.ml: Core List Study
