lib/analysis/targets.ml: Array Core Hashtbl Ir List Option Study
