(** Figure 2 analogue: SDC percentage when flipping 1..30 bits of the same
    register (win-size = 0), per program. *)

type row = {
  program : string;
  technique : Core.Technique.t;
  by_mbf : (int * Core.Campaign.result) list;
      (** max-MBF (1 first, then Table I values) paired with its campaign *)
}

val compute : Study.t -> Core.Technique.t -> row list
