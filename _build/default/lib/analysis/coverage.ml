type variant = Baseline | Swift_full | Swift_light | Tmr

type row = {
  program : string;
  variant : variant;
  technique : Core.Technique.t;
  dyn_overhead : float;
  results : (Core.Spec.t * Core.Campaign.result) list;
}

let variant_name = function
  | Baseline -> "baseline"
  | Swift_full -> "swift-full"
  | Swift_light -> "swift-light"
  | Tmr -> "tmr"

let specs_measured technique =
  [
    Core.Spec.single technique;
    Core.Spec.multi technique ~max_mbf:2 ~win:(Fixed 1);
    Core.Spec.multi technique ~max_mbf:3 ~win:(Fixed 1);
  ]

let default_programs = [ "qsort"; "crc32"; "sha"; "fft"; "spmv" ]

let compute ?(n = 200) ?(seed = 20170626L) ?(programs = default_programs) () =
  List.concat_map
    (fun name ->
      let entry =
        match Bench_suite.Registry.find name with
        | Some e -> e
        | None -> invalid_arg ("Coverage.compute: unknown program " ^ name)
      in
      let base_modl = entry.build () in
      let expected = entry.reference () in
      let workload_of variant =
        match variant with
        | Baseline ->
            Core.Workload.make ~name ~expected_output:expected base_modl
        | Swift_full ->
            Core.Workload.make ~name:(name ^ "+swift")
              ~expected_output:expected
              (Harden.Swift.apply ~level:`Full base_modl)
        | Swift_light ->
            Core.Workload.make ~name:(name ^ "+light")
              ~expected_output:expected
              (Harden.Swift.apply ~level:`Light base_modl)
        | Tmr ->
            Core.Workload.make ~name:(name ^ "+tmr") ~expected_output:expected
              (Harden.Tmr.apply base_modl)
      in
      let base_dyn =
        (workload_of Baseline).golden.dyn_count |> float_of_int
      in
      List.concat_map
        (fun variant ->
          let w = workload_of variant in
          List.map
            (fun technique ->
              {
                program = name;
                variant;
                technique;
                dyn_overhead = float_of_int w.golden.dyn_count /. base_dyn;
                results =
                  List.map
                    (fun spec ->
                      (spec, Core.Campaign.run w spec ~n ~seed))
                    (specs_measured technique);
              })
            Core.Technique.all)
        [ Baseline; Swift_full; Swift_light; Tmr ])
    programs
